//! Figs 1 and 4: the ecosystem measurements — dependency-declaration
//! taxonomy and shared-object reuse.
//!
//! Run with: `cargo run --release --example debian_analysis`

use depchaos_graph::{cycles, reuse_counts, DepGraph};
use depchaos_workloads::debian;

fn main() {
    // Fig 1: ~209k dependency declarations by constraint class.
    let tally = debian::fig1_tally(2021, 209_000);
    println!("Fig 1 — Debian package dependencies by type:");
    print!("{}", tally.render_table());
    println!(
        "=> {:.1}% carry no version constraint at all; the archive works only\n\
         because maintainers keep the whole graph consistent by hand.\n",
        100.0 * tally.unversioned_fraction()
    );

    // Fig 4: reuse of shared objects across one installed system.
    let usages = debian::installed_system(2021, 3287, 1400);
    let hist =
        reuse_counts(usages.iter().map(|(b, sos)| (b.as_str(), sos.iter().map(String::as_str))));
    println!("Fig 4 — shared object reuse across {} binaries:", hist.binary_count);
    print!("{}", hist.render_summary(8));
    println!(
        "median object is used by {} binar{} — dynamic linking's sharing\n\
         argument applies to a tiny head of the distribution.",
        hist.median_users(),
        if hist.median_users() == 1 { "y" } else { "ies" }
    );

    // A few points of the rank/frequency series (the figure's curve).
    println!("\nrank  users (series sample)");
    for (rank, users) in hist.series().step_by(hist.object_count() / 10).take(10) {
        println!("{rank:>4}  {users}");
    }

    // Structure of the declaration graph itself: real archives contain
    // mutual-dependency knots, and so does the generated one.
    let decls = debian::repo(2021, 209_000);
    let mut g = DepGraph::new();
    for d in &decls {
        g.depend(&d.from, &d.to);
    }
    let knots = cycles(&g);
    println!(
        "\ndependency graph: {} packages, {} distinct relations, {} mutual-dependency knots \
         (largest: {} packages)",
        g.node_count(),
        g.edge_count(),
        knots.len(),
        knots.iter().map(Vec::len).max().unwrap_or(0)
    );
}

//! §V-B.1: the ROCm RPATH + RUNPATH + LD_LIBRARY_PATH three-way collision,
//! step by step, and the Shrinkwrap fix.
//!
//! Run with: `cargo run --example rocm_conflict`

use depchaos::prelude::*;
use depchaos_workloads::rocm;

fn show(label: &str, r: &depchaos_loader::LoadResult) {
    println!("{label}");
    for o in r.objects.iter().skip(1) {
        println!("  {} [{}]", o.path, o.provenance.tag());
    }
    println!("  versions loaded: {:?}\n", rocm::versions_loaded(r));
}

fn main() {
    let fs = Vfs::local();
    rocm::install_scenario(&fs).unwrap();
    println!(
        "app built against ROCm 4.5 (RPATH → /opt/rocm-4.5.0/lib);\n\
         ROCm libraries carry their own RUNPATH;\n\
         module files set LD_LIBRARY_PATH.\n"
    );

    // Correct module: everything consistent.
    let mut ms = rocm::module_system();
    ms.load("rocm/4.5.0").unwrap();
    let r = GlibcLoader::new(&fs)
        .with_env(ms.environment(Environment::default()))
        .load(rocm::APP)
        .unwrap();
    show("$ module load rocm/4.5.0 && ./gpu_sim", &r);

    // Wrong module: the three factors combine.
    let mut ms = rocm::module_system();
    ms.load("rocm/4.3.0").unwrap();
    let bad_env = ms.environment(Environment::default());
    let r = GlibcLoader::new(&fs).with_env(bad_env.clone()).load(rocm::APP).unwrap();
    show("$ module load rocm/4.3.0 && ./gpu_sim        # SEGFAULT in production", &r);
    println!(
        "why: libamdhip64 came from the app's RPATH (4.5), but its own RUNPATH\n\
         suppressed the RPATH chain for its dependencies, so the loader fell\n\
         through to LD_LIBRARY_PATH — the 4.3 module.\n"
    );

    // Shrinkwrap in the consistent environment, rerun in the broken one.
    let mut ms = rocm::module_system();
    ms.load("rocm/4.5.0").unwrap();
    wrap(&fs, rocm::APP, &ShrinkwrapOptions::new().env(ms.environment(Environment::default())))
        .unwrap();
    let r = GlibcLoader::new(&fs).with_env(bad_env).load(rocm::APP).unwrap();
    show("$ shrinkwrap gpu_sim && module load rocm/4.3.0 && ./gpu_sim   # fixed", &r);
}

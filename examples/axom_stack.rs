//! §I's motivating workload: an Axom-scale application with >200 transitive
//! dependencies, installed Spack-style, loaded, and shrinkwrapped.
//!
//! Run with: `cargo run --release --example axom_stack`

use depchaos::prelude::*;
use depchaos_workloads::axom;

fn main() {
    let fs = Vfs::local();
    let repo = axom::repo(7);
    println!(
        "package universe: {} packages; closure of {}: {} dependencies",
        repo.len(),
        axom::APP,
        axom::closure_size(&repo)
    );

    let mut store = StoreInstaller::spack_like();
    let app = store.install(&fs, &repo, axom::APP).unwrap();
    let bin = format!("{}/{}", app.bin_dir, axom::APP);
    println!("installed into {} store prefixes", fs.list_dir("/store").unwrap().len());

    let env = Environment::bare();
    let before = GlibcLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap();
    println!(
        "\nunwrapped load: {} objects, {} stat/openat ({} wasted misses), runpath len {}",
        before.objects.len(),
        before.stat_openat(),
        before.syscalls.misses,
        depchaos_elf::io::peek_object(&fs, &bin).unwrap().runpath.len(),
    );

    let report = wrap(&fs, &bin, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
    println!(
        "shrinkwrap: froze {} entries ({} lifted from transitive closure)",
        report.frozen_count(),
        report.lifted().len()
    );

    let after = GlibcLoader::new(&fs).with_env(env).load(&bin).unwrap();
    println!(
        "wrapped load:   {} objects, {} stat/openat ({} misses)",
        after.objects.len(),
        after.stat_openat(),
        after.syscalls.misses
    );
    println!(
        "\nsearch-cost reduction: {:.1}x fewer stat/openat",
        before.stat_openat() as f64 / after.stat_openat() as f64
    );
}

//! Listing 1: `libtree dbwrap_tool` shows a `not found` inside a binary
//! that runs fine — the soname dedup cache hides broken search paths.
//!
//! Run with: `cargo run --example libtree_listing1`

use depchaos::prelude::*;
use depchaos_workloads::samba;

fn main() {
    let fs = Vfs::local();
    samba::install(&fs).unwrap();

    println!("$ libtree {}", samba::TOOL_PATH);
    let tree =
        analyze_tree(&fs, samba::TOOL_PATH, &Environment::default(), &LdCache::empty()).unwrap();
    print!("{}", tree.render());

    println!("\n$ {}   # ...and yet:", samba::TOOL_PATH);
    let r = GlibcLoader::new(&fs).load(samba::TOOL_PATH).unwrap();
    println!(
        "exit 0 — {} objects loaded; the missing runpath was papered over by\n\
         an earlier load of {} (found via libdbwrap-samba4.so's runpath).",
        r.objects.len(),
        samba::HIDDEN_DEP
    );

    // Show the latent breakage: drop the innocent sibling and rerun.
    ElfEditor::open(&fs, samba::TOOL_PATH).unwrap().remove_needed("libdbwrap-samba4.so").unwrap();
    let r2 = GlibcLoader::new(&fs).load(samba::TOOL_PATH).unwrap();
    println!(
        "\nafter an unrelated 'upgrade' drops libdbwrap from the needed list:\n  success = {} ({})",
        r2.success(),
        r2.failures
            .first()
            .map(|f| format!("{}: cannot open {}", f.requester, f.name))
            .unwrap_or_default()
    );
}

//! §III-C: what a better loader interface would look like — the paper's
//! proposal (prepend/append/inherit + per-dependency pins), running.
//!
//! Run with: `cargo run --example future_loader`

use depchaos::prelude::*;
use depchaos_elf::io::install;
use depchaos_elf::SearchPosition;
use depchaos_workloads::paradox;

fn main() {
    // 1. The Fig 3 paradox, unsolvable with directory lists...
    let fs = Vfs::local();
    paradox::install(&fs).unwrap();
    println!(
        "Fig 3 layout: any RPATH/RUNPATH/LD_LIBRARY_PATH ordering correct? {}",
        paradox::any_ordering_correct(&fs)
    );

    // ...solved by per-dependency pins.
    let pinned = ElfObject::exe("paradox_app")
        .needs("liba.so")
        .needs("libb.so")
        .pin("liba.so", format!("{}/liba.so", paradox::DIR_A))
        .pin("libb.so", format!("{}/libb.so", paradox::DIR_B))
        .build();
    install(&fs, paradox::EXE, &pinned).unwrap();
    let r = FutureLoader::new(&fs).with_env(Environment::bare()).load(paradox::EXE).unwrap();
    println!("future loader with pins: correct = {}\n", paradox::is_correct(&r));

    // 2. The packager/user tension: prepend pins a path against the
    //    environment; append defers to it.
    let fs = Vfs::local();
    install(&fs, "/pkg/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
    install(&fs, "/override/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
    for (mode, pos) in [("prepend", SearchPosition::Prepend), ("append", SearchPosition::Append)] {
        let exe = ElfObject::exe("app").needs("libx.so").search_dir("/pkg", pos, false).build();
        install(&fs, "/bin/app", &exe).unwrap();
        let env = Environment::bare().with_ld_library_path("/override");
        let r = FutureLoader::new(&fs).with_env(env).load("/bin/app").unwrap();
        println!("{mode:>7} + LD_LIBRARY_PATH=/override  ->  loads {}", r.objects[1].path);
        fs.remove("/bin/app").unwrap();
    }

    // 3. The Zircon-style service: content-addressed dependencies with an
    //    offline manifest.
    let fs = Vfs::local();
    let mut svc = HashStoreService::new();
    install(&fs, "/cas/libz.so", &ElfObject::dso("libz.so").build()).unwrap();
    let z = svc.register(&fs, "/cas/libz.so").unwrap();
    install(&fs, "/bin/client", &ElfObject::exe("client").needs(z.clone()).build()).unwrap();
    println!("\ncontent-addressed needed entry: {z}");
    println!("offline manifest: {:?}", svc.manifest(&fs, "/bin/client").unwrap());
    let r = ServiceLoader::new(&fs, svc).load("/bin/client").unwrap();
    println!("service load: success = {}", r.success());
}

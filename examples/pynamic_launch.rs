//! Fig 6: Pynamic time-to-launch from NFS, normal vs shrinkwrapped, at
//! 512 / 1024 / 2048 ranks — plus the §V-A Spindle-broadcast ablation.
//!
//! Run with: `cargo run --release --example pynamic_launch [n_libs]`
//! (defaults to the paper's 900 libraries; use e.g. 200 for a quick run).
//!
//! The whole figure is one scenario-matrix run: the wrap states and cache
//! policies are axes, and the (workload, backend, storage) cell is
//! profiled exactly once however many scenarios share it.

use depchaos::prelude::{
    render_fig6, CachePolicy, ExperimentMatrix, MatrixBackend, ProfileCache, StorageModel,
    WrapState,
};
use depchaos::workloads::{pynamic, Pynamic};

fn main() {
    let n_libs: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(pynamic::N_LIBS_PAPER);

    // The application lives on NFS; caches cold; negative caching off —
    // exactly the paper's measurement conditions.
    println!("pynamic-bigexe: {n_libs} shared libraries, each in its own runpath dir\n");
    let cache = ProfileCache::new();
    let report = ExperimentMatrix::new()
        .workload(Pynamic::new(n_libs))
        .backend(MatrixBackend::glibc())
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .cache_policies(CachePolicy::all())
        .run(&cache);

    let pick = |wrap: WrapState, cache: CachePolicy| {
        report.one(wrap, cache).expect("scenario present in matrix")
    };
    let normal = pick(WrapState::Plain, CachePolicy::Cold);
    let wrapped = pick(WrapState::Wrapped, CachePolicy::Cold);
    println!("one rank, normal:  {} stat/openat ({} misses)", normal.stat_openat, normal.misses);
    println!(
        "one rank, wrapped: {} stat/openat ({} misses)\n",
        wrapped.stat_openat, wrapped.misses
    );
    print!("{}", render_fig6(&report.rank_points, &normal.series, &wrapped.series));

    // The Spindle remark from §V-A: broadcast caching helps the unwrapped
    // case too — composing both is best. Same profile cell, different DES
    // cache policy; nothing was re-profiled.
    let spindled = pick(WrapState::Plain, CachePolicy::Broadcast);
    println!("\nwith a Spindle-style broadcast cache instead of shrinkwrapping:");
    print!("{}", render_fig6(&report.rank_points, &normal.series, &spindled.series));
    assert_eq!(report.cells_profiled, 1, "four scenarios, one profiling run");
}

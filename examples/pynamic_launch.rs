//! Fig 6: Pynamic time-to-launch from NFS, normal vs shrinkwrapped,
//! at 512 / 1024 / 2048 ranks.
//!
//! Run with: `cargo run --release --example pynamic_launch [n_libs]`
//! (defaults to the paper's 900 libraries; use e.g. 200 for a quick run).

use depchaos::prelude::*;
use depchaos_launch::render_fig6;
use depchaos_workloads::pynamic;

fn main() {
    let n_libs: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(pynamic::N_LIBS_PAPER);

    // The application lives on NFS; caches cold; negative caching off —
    // exactly the paper's measurement conditions.
    let fs = Vfs::nfs();
    let w = pynamic::install(&fs, "/apps/pynamic", n_libs).unwrap();
    let env = Environment::bare();
    println!("pynamic-bigexe: {n_libs} shared libraries, each in its own runpath dir\n");

    let normal_ops = profile_load(&fs, &w.exe_path, &env).unwrap();
    println!(
        "one rank, normal:  {} stat/openat ({} misses)",
        normal_ops.stat_openat(),
        normal_ops.misses()
    );

    wrap(&fs, &w.exe_path, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
    let wrapped_ops = profile_load(&fs, &w.exe_path, &env).unwrap();
    println!(
        "one rank, wrapped: {} stat/openat ({} misses)\n",
        wrapped_ops.stat_openat(),
        wrapped_ops.misses()
    );

    let cfg = LaunchConfig::default();
    let points = [512usize, 1024, 2048];
    let normal = sweep_ranks(&normal_ops, &cfg, &points);
    let wrapped = sweep_ranks(&wrapped_ops, &cfg, &points);
    print!("{}", render_fig6(&points, &normal, &wrapped));

    // The Spindle remark from §V-A: broadcast caching helps the unwrapped
    // case too — composing both is best.
    let spindle_cfg = LaunchConfig { broadcast_cache: true, ..LaunchConfig::default() };
    let spindled = sweep_ranks(&normal_ops, &spindle_cfg, &points);
    println!("\nwith a Spindle-style broadcast cache instead of shrinkwrapping:");
    print!("{}", render_fig6(&points, &normal, &spindled));
}

//! Quickstart: build a small Spack-like software stack, watch the loader
//! resolve it, shrinkwrap the binary, and compare.
//!
//! Run with: `cargo run --example quickstart`

use depchaos::prelude::*;

fn main() {
    // 1. A world: an in-memory filesystem and a three-package stack.
    let fs = Vfs::local();
    let mut repo = Repo::new();
    repo.add(PackageDef::new("zlib", "1.2.11").lib(LibDef::new("libz.so.1")));
    repo.add(
        PackageDef::new("openssl", "1.1.1l")
            .dep("zlib")
            .lib(LibDef::new("libcrypto.so.1.1").needs("libz.so.1"))
            .lib(LibDef::new("libssl.so.1.1").needs("libcrypto.so.1.1")),
    );
    repo.add(
        PackageDef::new("curl", "7.79.1")
            .dep("openssl")
            .lib(LibDef::new("libcurl.so.4").needs("libssl.so.1.1"))
            .bin(BinDef::new("curl").needs("libcurl.so.4")),
    );

    // 2. Install into a content-addressed store (RUNPATH style, like Spack).
    let mut store = StoreInstaller::spack_like();
    let curl = store.install(&fs, &repo, "curl").unwrap();
    let bin = format!("{}/curl", curl.bin_dir);
    println!("installed: {}", curl.prefix);

    // 3. Load it and look at the resolution work.
    let before = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&bin).unwrap();
    println!("\nbefore shrinkwrap:");
    for o in &before.objects {
        println!("  {} [{}]", o.path, o.provenance.tag());
    }
    println!(
        "  -> {} stat/openat calls, {} wasted on misses",
        before.stat_openat(),
        before.syscalls.misses
    );

    // 4. Shrinkwrap: absolute paths, closure lifted to the binary.
    let report = wrap(&fs, &bin, &ShrinkwrapOptions::new().env(Environment::bare())).unwrap();
    println!("\n{}", report.render().trim_end());

    // 5. Load again: direct opens, zero search.
    let after = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&bin).unwrap();
    println!("\nafter shrinkwrap:");
    for o in &after.objects {
        println!("  {} [{}]", o.path, o.provenance.tag());
    }
    println!("  -> {} stat/openat calls, {} misses", after.stat_openat(), after.syscalls.misses);

    // 6. And it is auditable.
    let audit = audit(&fs, &bin, &Environment::bare()).unwrap();
    println!(
        "\naudit: fully frozen = {}, musl compatible = {} (the paper's §IV caveat)",
        audit.fully_frozen(),
        audit.musl_ok
    );
}

//! Property-based tests: the VFS against a simple model.

use std::collections::BTreeMap;

use depchaos_vfs::{path as vpath, Vfs};
use proptest::prelude::*;

/// Strategy for path segments: short lowercase names.
fn segment() -> impl Strategy<Value = String> {
    "[a-z]{1,6}".prop_map(|s| s)
}

/// Strategy for absolute paths of 1..=4 segments.
fn abs_path() -> impl Strategy<Value = String> {
    prop::collection::vec(segment(), 1..=4).prop_map(|segs| format!("/{}", segs.join("/")))
}

proptest! {
    /// Writing files through the VFS matches a flat map model, as long as no
    /// path is simultaneously used as both file and directory.
    #[test]
    fn write_read_matches_model(entries in prop::collection::btree_map(abs_path(), prop::collection::vec(any::<u8>(), 0..32), 1..20)) {
        // Filter out prefix conflicts (file at /a and file at /a/b).
        let keys: Vec<&String> = entries.keys().collect();
        let mut ok = BTreeMap::new();
        'outer: for (k, v) in &entries {
            for other in &keys {
                if *other != k && other.starts_with(&format!("{k}/")) {
                    continue 'outer;
                }
                if *other != k && k.starts_with(&format!("{other}/")) {
                    continue 'outer;
                }
            }
            ok.insert(k.clone(), v.clone());
        }
        let fs = Vfs::local();
        for (k, v) in &ok {
            fs.write_file_p(k, v.clone()).unwrap();
        }
        for (k, v) in &ok {
            prop_assert_eq!(&*fs.read_file(k).unwrap(), v);
        }
    }

    /// normalize is idempotent and always yields an absolute path.
    #[test]
    fn normalize_idempotent(p in "(/[a-z.]{0,8}){1,6}/?") {
        if let Some(n1) = vpath::normalize(&p) {
            let n2 = vpath::normalize(&n1).unwrap();
            prop_assert_eq!(&n1, &n2);
            prop_assert!(n1.starts_with('/'));
        }
    }

    /// join(base, rel) always produces a normalized absolute path under base
    /// when rel has no `..`.
    #[test]
    fn join_stays_under_base(base in abs_path(), rel in segment()) {
        let j = vpath::join(&base, &rel);
        prop_assert!(j.starts_with(&base));
        prop_assert_eq!(vpath::basename(&j), rel.as_str());
    }

    /// A chain of symlinks resolves to the final target's contents.
    #[test]
    fn symlink_chain_resolves(depth in 1usize..10) {
        let fs = Vfs::local();
        fs.mkdir_p("/links").unwrap();
        fs.write_file("/links/target", vec![42]).unwrap();
        let mut prev = "target".to_string();
        for i in 0..depth {
            let name = format!("l{i}");
            fs.symlink(&format!("/links/{name}"), &prev).unwrap();
            prev = name;
        }
        prop_assert_eq!(&*fs.read_file(&format!("/links/{prev}")).unwrap(), &vec![42]);
        prop_assert_eq!(fs.canonicalize(&format!("/links/{prev}")).unwrap(), "/links/target".to_string());
    }

    /// Counter totals equal the number of accounted calls issued.
    #[test]
    fn counters_are_exact(n_hits in 0u64..20, n_misses in 0u64..20) {
        let fs = Vfs::local();
        fs.write_file_p("/lib/real", vec![]).unwrap();
        for _ in 0..n_hits { fs.stat("/lib/real").unwrap(); }
        for _ in 0..n_misses { let _ = fs.stat("/lib/ghost"); }
        let s = fs.snapshot();
        prop_assert_eq!(s.stat, n_hits + n_misses);
        prop_assert_eq!(s.misses, n_misses);
    }
}

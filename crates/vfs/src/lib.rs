//! # depchaos-vfs — simulated filesystem substrate
//!
//! An in-memory, thread-safe, POSIX-flavoured filesystem used by the rest of
//! the `depchaos` workspace as the world that binaries, packages, and loaders
//! live in. It exists because the paper's evaluation metrics — `stat`/`openat`
//! counts during process startup (Table II) and metadata-bound launch times on
//! NFS (Fig 6) — are functions of the *filesystem access pattern* of the
//! dynamic loader, not of real disk contents.
//!
//! Three concerns are layered:
//!
//! 1. [`tree`] — the actual namespace: directories, regular files (byte blobs),
//!    symlinks, inodes, component-wise symlink resolution.
//! 2. [`counters`] + [`strace`] — every public operation on [`Vfs`] bumps
//!    syscall counters and (optionally) appends to an strace-style log, so a
//!    test can assert "loading this binary performed 1823 stat/openat calls".
//! 3. [`latency`] — a pluggable cost model mapping each syscall to simulated
//!    nanoseconds: local filesystem (warm/cold dentry cache) or NFS (round
//!    trips, client attribute cache, optional negative caching — LLNL systems
//!    disable it, which is why Fig 6 is so dramatic).
//!
//! The simulated clock is monotone and deterministic: the same op sequence
//! always yields the same total time.
//!
//! ```
//! use depchaos_vfs::{Vfs, Backend};
//!
//! let fs = Vfs::new(Backend::local());
//! fs.mkdir_p("/usr/lib").unwrap();
//! fs.write_file("/usr/lib/libm.so.6", b"elf!".to_vec()).unwrap();
//! fs.symlink("/usr/lib/libm.so", "libm.so.6").unwrap();
//! assert_eq!(*fs.read_file("/usr/lib/libm.so").unwrap(), b"elf!".to_vec());
//! assert!(fs.counters().total() > 0);
//! ```

pub mod counters;
pub mod error;
pub mod intern;
pub mod latency;
pub mod path;
pub mod strace;
pub mod tree;

mod fs;

pub use counters::{CounterSnapshot, SyscallCounters};
pub use error::{VfsError, VfsResult};
pub use fs::Vfs;
pub use intern::{intern, PathId};
pub use latency::{AttrCache, Backend, CostModel, LocalParams, NfsParams, StorageModel};
pub use strace::{Op, Outcome, StraceLog, Syscall};
pub use tree::{FileKind, Inode, Metadata};

//! The public [`Vfs`] type: namespace + accounting + cost model.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::counters::{CounterSnapshot, SyscallCounters};
use crate::error::{VfsError, VfsResult};
use crate::intern::{intern, PathId};
use crate::latency::{Backend, CostModel};
use crate::strace::{Op, Outcome, StraceLog, Syscall};
use crate::tree::{Inode, Metadata, Tree};

/// A thread-safe simulated filesystem.
///
/// **Accounted** operations model syscalls the dynamic loader issues at
/// runtime: [`Vfs::stat`], [`Vfs::try_open`], [`Vfs::open`], [`Vfs::read_file`],
/// [`Vfs::readlink`]. They bump counters, charge simulated time, and append
/// to the strace log when enabled.
///
/// **Unaccounted** (setup) operations build the world before the experiment
/// starts: [`Vfs::mkdir_p`], [`Vfs::write_file`], [`Vfs::symlink`],
/// [`Vfs::remove`], [`Vfs::list_dir`], [`Vfs::exists`]. Installing a package
/// is not part of process startup, so it costs nothing.
pub struct Vfs {
    tree: RwLock<Tree>,
    counters: SyscallCounters,
    cost: Mutex<CostModel>,
    clock_ns: Mutex<u64>,
    log: Mutex<Option<StraceLog>>,
}

impl Vfs {
    /// Create an empty filesystem over the given storage backend.
    pub fn new(backend: Backend) -> Self {
        Vfs {
            tree: RwLock::new(Tree::new()),
            counters: SyscallCounters::new(),
            cost: Mutex::new(CostModel::new(backend)),
            clock_ns: Mutex::new(0),
            log: Mutex::new(None),
        }
    }

    /// Shortcut for a local-backend filesystem.
    pub fn local() -> Self {
        Vfs::new(Backend::local())
    }

    /// Shortcut for an NFS-backend filesystem (negative caching off).
    pub fn nfs() -> Self {
        Vfs::new(Backend::nfs())
    }

    // ---- accounting plumbing -------------------------------------------

    fn charge(&self, op: Op, path: &str, outcome: Outcome, bytes: u64) -> u64 {
        // One interner lookup per accounted op; the id then serves the cost
        // model's caches and the strace log without further allocation.
        let key = intern(path);
        self.charge_keyed(op, key, key, outcome, bytes)
    }

    /// Like [`Vfs::charge`] but with a distinct cache key, for charges that
    /// model a different span of the same file (e.g. mapping segments vs
    /// reading the header).
    fn charge_keyed(
        &self,
        op: Op,
        path: PathId,
        cache_key: PathId,
        outcome: Outcome,
        bytes: u64,
    ) -> u64 {
        let cost = self.cost.lock().op_cost(op, cache_key, outcome, bytes);
        *self.clock_ns.lock() += cost;
        match op {
            Op::Stat => self.counters.bump_stat(),
            Op::Openat => self.counters.bump_openat(),
            Op::Read => self.counters.bump_read(),
            Op::Readlink => self.counters.bump_readlink(),
        }
        if outcome != Outcome::Ok {
            self.counters.bump_miss();
        }
        if let Some(log) = self.log.lock().as_mut() {
            log.push(Syscall { op, path, outcome, cost_ns: cost });
        }
        cost
    }

    fn outcome_of<T>(r: &VfsResult<T>) -> Outcome {
        match r {
            Ok(_) => Outcome::Ok,
            Err(e) if e.is_not_found() => Outcome::Enoent,
            Err(_) => Outcome::Error,
        }
    }

    /// Access the shared counters.
    pub fn counters(&self) -> &SyscallCounters {
        &self.counters
    }

    /// Snapshot counters (convenience).
    pub fn snapshot(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// Simulated elapsed time accumulated by accounted operations.
    pub fn elapsed_ns(&self) -> u64 {
        *self.clock_ns.lock()
    }

    /// Reset the simulated clock (counters are reset separately).
    pub fn reset_clock(&self) {
        *self.clock_ns.lock() = 0;
    }

    /// Switch storage backend (caches are preserved; call
    /// [`Vfs::drop_caches`] for a cold start).
    pub fn set_backend(&self, backend: Backend) {
        self.cost.lock().set_backend(backend);
    }

    /// Current storage backend.
    pub fn backend(&self) -> Backend {
        self.cost.lock().backend()
    }

    /// Make every future access cold again.
    pub fn drop_caches(&self) {
        self.cost.lock().drop_caches();
    }

    /// Begin recording an strace log (replaces any active log).
    pub fn start_trace(&self) {
        *self.log.lock() = Some(StraceLog::new());
    }

    /// Stop recording and return the log (empty if tracing wasn't active).
    pub fn stop_trace(&self) -> StraceLog {
        self.log.lock().take().unwrap_or_default()
    }

    // ---- accounted operations (the loader's syscalls) -------------------

    /// `stat(2)`: follow symlinks, return metadata.
    pub fn stat(&self, path: &str) -> VfsResult<Metadata> {
        let r = self.tree.read().metadata(path, true);
        self.charge(Op::Stat, path, Self::outcome_of(&r), 0);
        r
    }

    /// `lstat(2)`: do not follow a final symlink.
    pub fn lstat(&self, path: &str) -> VfsResult<Metadata> {
        let r = self.tree.read().metadata(path, false);
        self.charge(Op::Stat, path, Self::outcome_of(&r), 0);
        r
    }

    /// `openat(2)` on a file for reading; returns metadata of the opened
    /// inode. Fails on directories.
    pub fn open(&self, path: &str) -> VfsResult<Metadata> {
        let r = self.tree.read().metadata(path, true).and_then(|m| {
            if m.kind == crate::tree::FileKind::Dir {
                Err(VfsError::IsADirectory(path.to_string()))
            } else {
                Ok(m)
            }
        });
        self.charge(Op::Openat, path, Self::outcome_of(&r), 0);
        r
    }

    /// `openat` that treats ENOENT as `None` — the loader's probe of a
    /// search-path candidate.
    pub fn try_open(&self, path: &str) -> Option<Metadata> {
        self.open(path).ok()
    }

    /// `read(2)` of the whole file (the loader mapping an object).
    pub fn read_file(&self, path: &str) -> VfsResult<Arc<Vec<u8>>> {
        let r = self.tree.read().read_file(path);
        let bytes = r.as_ref().map(|d| d.len() as u64).unwrap_or(0);
        self.charge(Op::Read, path, Self::outcome_of(&r), bytes);
        r
    }

    /// Read by inode (after an `open` already resolved it); charged as a read
    /// against the canonical path for cache purposes.
    pub fn read_inode(&self, inode: Inode, path_hint: &str) -> VfsResult<Arc<Vec<u8>>> {
        let r = self.tree.read().read_inode(inode);
        let bytes = r.as_ref().map(|d| d.len() as u64).unwrap_or(0);
        self.charge(Op::Read, path_hint, Self::outcome_of(&r), bytes);
        r
    }

    /// Charge an additional accounted read of `bytes` against `path`
    /// without materialising data — used for objects whose declared
    /// (virtual) size exceeds their stored representation, like the
    /// simulated 213 MiB Pynamic executable.
    pub fn charge_read(&self, path: &str, bytes: u64) {
        // Separate cache key: reading the ELF header does not page in the
        // mapped segments, so the first mapping is cold even after a read.
        // (One transient format per *mapping* charge — object loads, not
        // probe misses — so this stays off the per-op hot path.)
        self.charge_keyed(
            Op::Read,
            intern(path),
            intern(&format!("{path}#map")),
            Outcome::Ok,
            bytes,
        );
    }

    /// `readlink(2)`.
    pub fn readlink(&self, path: &str) -> VfsResult<String> {
        let r = self.tree.read().readlink(path);
        self.charge(Op::Readlink, path, Self::outcome_of(&r), 0);
        r
    }

    // ---- unaccounted (setup) operations ---------------------------------

    /// Create a directory chain (like `mkdir -p`). Not accounted.
    pub fn mkdir_p(&self, path: &str) -> VfsResult<()> {
        self.tree.write().mkdir_p(path)
    }

    /// Create or overwrite a file. Parent must exist. Not accounted.
    pub fn write_file(&self, path: &str, data: Vec<u8>) -> VfsResult<Inode> {
        self.tree.write().write_file(path, data)
    }

    /// Create parents then write. Not accounted.
    pub fn write_file_p(&self, path: &str, data: Vec<u8>) -> VfsResult<Inode> {
        self.tree.write().mkdir_p(&crate::path::parent(path))?;
        self.tree.write().write_file(path, data)
    }

    /// Create a symlink. Not accounted.
    pub fn symlink(&self, path: &str, target: &str) -> VfsResult<()> {
        self.tree.write().symlink(path, target)
    }

    /// Remove a file or empty directory. Not accounted.
    pub fn remove(&self, path: &str) -> VfsResult<()> {
        self.tree.write().remove(path)
    }

    /// Recursively remove a subtree. Not accounted.
    pub fn remove_all(&self, path: &str) -> VfsResult<()> {
        self.tree.write().remove_all(path)
    }

    /// Rename an entry, replacing any existing file/symlink at `to` in one
    /// step (the atomic-switch primitive). Not accounted.
    pub fn rename(&self, from: &str, to: &str) -> VfsResult<()> {
        self.tree.write().rename(from, to)
    }

    /// List directory entries (sorted). Not accounted — used by tooling, not
    /// by the load path.
    pub fn list_dir(&self, path: &str) -> VfsResult<Vec<String>> {
        self.tree.read().list_dir(path)
    }

    /// Existence check without accounting (test/bench setup convenience).
    pub fn exists(&self, path: &str) -> bool {
        self.tree.read().metadata(path, true).is_ok()
    }

    /// Metadata without accounting (tooling convenience).
    pub fn peek(&self, path: &str) -> VfsResult<Metadata> {
        self.tree.read().metadata(path, true)
    }

    /// Read file contents without accounting (tooling convenience).
    pub fn peek_file(&self, path: &str) -> VfsResult<Arc<Vec<u8>>> {
        self.tree.read().read_file(path)
    }

    /// Resolve all symlinks to the physical path. Not accounted.
    pub fn canonicalize(&self, path: &str) -> VfsResult<String> {
        self.tree.read().canonicalize(path)
    }

    /// Number of live inodes (diagnostics; dependency-view symlink-farm cost).
    pub fn inode_count(&self) -> usize {
        self.tree.read().node_count()
    }
}

impl std::fmt::Debug for Vfs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vfs")
            .field("inodes", &self.inode_count())
            .field("counters", &self.counters.snapshot())
            .field("elapsed_ns", &self.elapsed_ns())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounted_ops_bump_counters_and_clock() {
        let fs = Vfs::local();
        fs.mkdir_p("/lib").unwrap();
        fs.write_file("/lib/a", vec![1, 2, 3]).unwrap();
        let before = fs.snapshot();
        assert_eq!(before.total(), 0, "setup is unaccounted");
        fs.stat("/lib/a").unwrap();
        fs.open("/lib/a").unwrap();
        fs.read_file("/lib/a").unwrap();
        assert!(fs.stat("/lib/missing").is_err());
        let after = fs.snapshot();
        assert_eq!(after.stat, 2);
        assert_eq!(after.openat, 1);
        assert_eq!(after.read, 1);
        assert_eq!(after.misses, 1);
        assert!(fs.elapsed_ns() > 0);
    }

    #[test]
    fn trace_scope_captures_ops() {
        let fs = Vfs::local();
        fs.write_file_p("/lib/a", vec![]).unwrap();
        fs.start_trace();
        fs.try_open("/lib/nope");
        fs.try_open("/lib/a");
        let log = fs.stop_trace();
        assert_eq!(log.len(), 2);
        assert_eq!(log.misses(), 1);
        assert_eq!(log.stat_openat(), 2);
        // tracing off afterwards
        fs.try_open("/lib/a");
        assert!(fs.stop_trace().is_empty());
    }

    #[test]
    fn warm_cold_distinction_via_clock() {
        let fs = Vfs::nfs();
        fs.write_file_p("/nfs/lib/a", vec![]).unwrap();
        fs.stat("/nfs/lib/a").unwrap();
        let cold = fs.elapsed_ns();
        fs.reset_clock();
        fs.stat("/nfs/lib/a").unwrap();
        let warm = fs.elapsed_ns();
        assert!(cold > warm * 10, "cold {cold} vs warm {warm}");
    }

    #[test]
    fn try_open_is_quiet_about_missing() {
        let fs = Vfs::local();
        fs.mkdir_p("/lib").unwrap();
        assert!(fs.try_open("/lib/ghost.so").is_none());
        assert_eq!(fs.snapshot().openat, 1);
    }

    #[test]
    fn open_directory_fails() {
        let fs = Vfs::local();
        fs.mkdir_p("/lib").unwrap();
        assert!(matches!(fs.open("/lib"), Err(VfsError::IsADirectory(_))));
    }

    #[test]
    fn write_file_p_creates_parents() {
        let fs = Vfs::local();
        fs.write_file_p("/a/b/c/file", vec![9]).unwrap();
        assert_eq!(*fs.peek_file("/a/b/c/file").unwrap(), vec![9]);
    }

    #[test]
    fn backend_switch_changes_costs() {
        let fs = Vfs::local();
        fs.write_file_p("/lib/a", vec![]).unwrap();
        fs.stat("/lib/a").unwrap();
        fs.reset_clock();
        fs.set_backend(Backend::nfs());
        assert!(matches!(fs.backend(), Backend::Nfs(_)));
        fs.drop_caches();
        fs.stat("/lib/a").unwrap();
        assert!(fs.elapsed_ns() >= 200_000, "cold NFS stat costs a round trip");
    }

    #[test]
    fn rename_through_vfs_facade() {
        let fs = Vfs::local();
        fs.write_file_p("/d/a", vec![1]).unwrap();
        fs.rename("/d/a", "/d/b").unwrap();
        assert!(!fs.exists("/d/a"));
        assert_eq!(*fs.peek_file("/d/b").unwrap(), vec![1]);
    }

    #[test]
    fn threads_share_counters() {
        let fs = std::sync::Arc::new(Vfs::local());
        fs.write_file_p("/lib/a", vec![]).unwrap();
        let mut handles = vec![];
        for _ in 0..8 {
            let fs = std::sync::Arc::clone(&fs);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    fs.stat("/lib/a").unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(fs.snapshot().stat, 800);
    }
}

//! strace-style syscall logging.
//!
//! The paper captures loader behaviour with `strace` (Table II). The VFS can
//! record an equivalent trace: one [`Syscall`] per operation with its path,
//! outcome, and simulated cost. Logging is off by default (big simulations
//! would otherwise accumulate millions of entries) and enabled per-scope.
//!
//! Paths are stored as interned [`PathId`]s, not owned `String`s: appending
//! an entry allocates nothing beyond the log's own vector growth, so tracing
//! a million-op load does a handful of interner inserts (one per *distinct*
//! path) instead of a million string clones.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::intern::{intern, PathId};

/// Which syscall an entry models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    Stat,
    Openat,
    Read,
    Readlink,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Op::Stat => "stat",
            Op::Openat => "openat",
            Op::Read => "read",
            Op::Readlink => "readlink",
        };
        f.write_str(s)
    }
}

/// Success or the errno class the loader distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    Ok,
    Enoent,
    /// Any other error (ELOOP, ENOTDIR, EISDIR...).
    Error,
}

/// One logged syscall. `path` is interned — compare with `==` against other
/// ids, or resolve the text with [`PathId::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Syscall {
    pub op: Op,
    pub path: PathId,
    pub outcome: Outcome,
    /// Simulated cost in nanoseconds under the active backend.
    pub cost_ns: u64,
}

impl Syscall {
    /// Build an entry from path text (interning it).
    pub fn new(op: Op, path: &str, outcome: Outcome, cost_ns: u64) -> Self {
        Syscall { op, path: intern(path), outcome, cost_ns }
    }

    /// The path text of this entry.
    pub fn path_str(&self) -> &'static str {
        self.path.as_str()
    }
}

impl fmt::Display for Syscall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rc = match self.outcome {
            Outcome::Ok => "0",
            Outcome::Enoent => "-1 ENOENT",
            Outcome::Error => "-1 ERR",
        };
        write!(f, "{}(\"{}\") = {} <{:.6}s>", self.op, self.path, rc, self.cost_ns as f64 / 1e9)
    }
}

/// An owned syscall trace with summary helpers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StraceLog {
    pub entries: Vec<Syscall>,
}

impl StraceLog {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, s: Syscall) {
        self.entries.push(s);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Count of entries matching `op`.
    pub fn count(&self, op: Op) -> usize {
        self.entries.iter().filter(|e| e.op == op).count()
    }

    /// stat + openat count — the Table II metric.
    pub fn stat_openat(&self) -> usize {
        self.count(Op::Stat) + self.count(Op::Openat)
    }

    /// Total simulated time across all entries.
    pub fn total_ns(&self) -> u64 {
        self.entries.iter().map(|e| e.cost_ns).sum()
    }

    /// Number of failed lookups — wasted search-path work.
    pub fn misses(&self) -> usize {
        self.entries.iter().filter(|e| e.outcome == Outcome::Enoent).count()
    }

    /// Render the whole log in strace-like lines.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&e.to_string());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc(op: Op, path: &str, outcome: Outcome, cost_ns: u64) -> Syscall {
        Syscall::new(op, path, outcome, cost_ns)
    }

    #[test]
    fn counts_and_totals() {
        let mut log = StraceLog::new();
        log.push(sc(Op::Stat, "/a", Outcome::Enoent, 10));
        log.push(sc(Op::Openat, "/b", Outcome::Ok, 20));
        log.push(sc(Op::Read, "/b", Outcome::Ok, 30));
        assert_eq!(log.stat_openat(), 2);
        assert_eq!(log.misses(), 1);
        assert_eq!(log.total_ns(), 60);
    }

    #[test]
    fn render_resembles_strace() {
        let mut log = StraceLog::new();
        log.push(sc(Op::Openat, "/lib/libm.so", Outcome::Enoent, 200_000));
        let text = log.render();
        assert!(text.contains("openat(\"/lib/libm.so\") = -1 ENOENT"));
    }
}

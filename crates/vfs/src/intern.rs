//! A process-wide path string interner.
//!
//! The profile→simulate hot path used to copy every path it touched: each
//! accounted syscall cloned its path into the strace log, the cost model
//! cloned it again into the attribute caches, and the loader engines cloned
//! request strings into their dedup maps. Millions of simulated ops meant
//! millions of short-lived `String`s for what is, in any one experiment, a
//! few thousand *distinct* paths.
//!
//! [`intern`] maps a path to a [`PathId`] — a 4-byte, `Copy`, hash-friendly
//! handle. The first time a string is seen it is copied **once** and leaked
//! (interned strings live for the process; the set of distinct paths is
//! bounded by the worlds the experiments build, not by op counts), and every
//! later [`intern`] of the same text is a read-locked hash lookup returning
//! the same id. [`PathId::as_str`] resolves back to the text in O(1).
//!
//! Properties the rest of the workspace relies on:
//!
//! * **Content-addressed**: `intern(a) == intern(b)` iff `a == b`, across
//!   threads, for the life of the process — so `PathId` equality *is*
//!   string equality and dedup maps can key on it directly.
//! * **Stable**: ids never move or change meaning; `as_str` hands out
//!   `&'static str` without holding any lock beyond an index read.
//! * **Deterministic displays**: `Debug`/`Display` print the interned text,
//!   so assertion failures stay readable.
//!
//! The canonical workspace-facing home of this module is
//! `depchaos_core::intern`, which re-exports it; it lives here physically
//! because `depchaos-vfs` sits below `depchaos-core` in the crate graph and
//! [`crate::Syscall`] stores a [`PathId`].

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

use parking_lot::RwLock;

/// An interned path: a dense `u32` handle into the process-wide interner.
///
/// `PathId` deliberately does **not** derive `Serialize`/`Deserialize`:
/// the raw `u32` is meaningless outside the process that interned it, so a
/// derived impl would persist interner slot numbers instead of path text.
/// Under the offline serde stand-in the blanket marker impls keep
/// containing types (e.g. [`crate::Syscall`]) compiling; when the real
/// serde returns (vendor/README.md), give `PathId` a custom impl that
/// serializes [`PathId::as_str`] and deserializes through [`intern`] — the
/// missing derive will surface as a compile error right here.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| RwLock::new(Interner { map: HashMap::new(), strings: Vec::new() }))
}

/// Intern `s`, returning the stable [`PathId`] for its text.
///
/// The common (already-interned) case is a shared-lock hash lookup with no
/// allocation; only the first sighting of a string takes the write lock and
/// copies it.
pub fn intern(s: &str) -> PathId {
    let lock = interner();
    if let Some(&id) = lock.read().map.get(s) {
        return PathId(id);
    }
    let mut w = lock.write();
    if let Some(&id) = w.map.get(s) {
        return PathId(id);
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    let id = u32::try_from(w.strings.len()).expect("interner overflow: > 4 billion paths");
    w.strings.push(leaked);
    w.map.insert(leaked, id);
    PathId(id)
}

impl PathId {
    /// The interned text. O(1); the returned reference is `'static` because
    /// interned strings are never freed.
    pub fn as_str(self) -> &'static str {
        interner().read().strings[self.0 as usize]
    }

    /// The raw handle value (diagnostics; dense from 0 in intern order).
    pub fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PathId({:?})", self.as_str())
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for PathId {
    fn from(s: &str) -> Self {
        intern(s)
    }
}

impl PartialEq<&str> for PathId {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<PathId> for &str {
    fn eq(&self, other: &PathId) -> bool {
        *self == other.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_text_same_id() {
        let a = intern("/usr/lib/libm.so.6");
        let b = intern("/usr/lib/libm.so.6");
        let c = intern("/usr/lib/libm.so");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "/usr/lib/libm.so.6");
    }

    #[test]
    fn str_comparisons_and_display() {
        let id = intern("/opt/x");
        assert_eq!(id, "/opt/x");
        assert_eq!("/opt/x", id);
        assert_eq!(id.to_string(), "/opt/x");
        assert_eq!(format!("{id:?}"), "PathId(\"/opt/x\")");
    }

    #[test]
    fn concurrent_interning_converges() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..100).map(|i| intern(&format!("/race/{i}"))).collect::<Vec<_>>()
                })
            })
            .collect();
        let ids: Vec<Vec<PathId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for other in &ids[1..] {
            assert_eq!(&ids[0], other, "every thread sees the same ids");
        }
    }
}

//! The filesystem namespace: inodes, directory tree, symlink resolution.
//!
//! This module is purely functional over an owned tree structure; it knows
//! nothing about syscall counting or latency. [`crate::Vfs`] wraps it with
//! locking and accounting.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::{VfsError, VfsResult};
use crate::path;

/// Maximum symlink traversals before `ELOOP`, matching Linux's limit.
pub const MAX_SYMLINK_HOPS: usize = 40;

/// A unique file identity. Hard identity (dev,ino) collapses to just the
/// inode number since the VFS models a single device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Inode(pub u64);

/// What kind of object an inode is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    File,
    Dir,
    Symlink,
}

/// `stat`-style metadata returned to callers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metadata {
    pub inode: Inode,
    pub kind: FileKind,
    pub size: u64,
}

#[derive(Debug, Clone)]
pub(crate) enum Node {
    File { data: Arc<Vec<u8>> },
    Dir { entries: BTreeMap<String, Inode> },
    Symlink { target: String },
}

impl Node {
    fn kind(&self) -> FileKind {
        match self {
            Node::File { .. } => FileKind::File,
            Node::Dir { .. } => FileKind::Dir,
            Node::Symlink { .. } => FileKind::Symlink,
        }
    }

    fn size(&self) -> u64 {
        match self {
            Node::File { data } => data.len() as u64,
            Node::Dir { entries } => entries.len() as u64,
            Node::Symlink { target } => target.len() as u64,
        }
    }
}

/// The mutable namespace. One instance per [`crate::Vfs`].
///
/// Nodes live in a dense slab indexed by inode number: inodes are allocated
/// sequentially and never recycled, so `nodes[ino]` is a direct vector index
/// — every component hop during resolution is an O(1) array access instead
/// of a `BTreeMap` descent. Removal leaves a `None` tombstone (cheap; the
/// slab is bounded by the number of inodes ever created, which experiment
/// worlds keep in the tens of thousands).
#[derive(Debug)]
pub(crate) struct Tree {
    nodes: Vec<Option<Node>>,
    root: Inode,
    live: usize,
}

impl Tree {
    pub fn new() -> Self {
        // Slot 0 is reserved so inode numbers start at 1, like real
        // filesystems; the root directory is inode 1.
        let nodes = vec![None, Some(Node::Dir { entries: BTreeMap::new() })];
        Tree { nodes, root: Inode(1), live: 1 }
    }

    fn alloc(&mut self, node: Node) -> Inode {
        let ino = Inode(self.nodes.len() as u64);
        self.nodes.push(Some(node));
        self.live += 1;
        ino
    }

    fn free(&mut self, ino: Inode) {
        if let Some(slot) = self.nodes.get_mut(ino.0 as usize) {
            if slot.take().is_some() {
                self.live -= 1;
            }
        }
    }

    fn node(&self, ino: Inode) -> &Node {
        self.nodes[ino.0 as usize].as_ref().expect("dangling inode")
    }

    fn node_mut(&mut self, ino: Inode) -> &mut Node {
        self.nodes[ino.0 as usize].as_mut().expect("dangling inode")
    }

    /// Resolve `path` to an inode, following symlinks in every non-final
    /// component, and in the final component iff `follow_final`.
    pub fn resolve(&self, p: &str, follow_final: bool) -> VfsResult<Inode> {
        let mut hops = 0usize;
        self.resolve_inner(p, follow_final, &mut hops)
    }

    fn resolve_inner(&self, p: &str, follow_final: bool, hops: &mut usize) -> VfsResult<Inode> {
        let comps = path::components(p).ok_or_else(|| VfsError::InvalidPath(p.to_string()))?;
        let mut cur = self.root;
        // The walked-so-far prefix is materialised only when an error
        // message or a relative symlink target needs it: `prefix` stands in
        // for the first `rebased` components (set after traversing a
        // symlink); the rest re-joins from `comps`. The plain success path
        // — every component a directory hop — allocates nothing.
        let mut prefix: Option<String> = None;
        let mut rebased = 0usize;
        let walked = |prefix: &Option<String>, rebased: usize, upto: usize| -> String {
            let mut s = prefix.clone().unwrap_or_default();
            for c in &comps[rebased..upto] {
                s.push('/');
                s.push_str(c);
            }
            s
        };
        for (i, comp) in comps.iter().enumerate() {
            let is_final = i + 1 == comps.len();
            let entries = match self.node(cur) {
                Node::Dir { entries } => entries,
                _ => return Err(VfsError::NotADirectory(walked(&prefix, rebased, i))),
            };
            let child = *entries
                .get(*comp)
                .ok_or_else(|| VfsError::NotFound(walked(&prefix, rebased, i + 1)))?;
            match self.node(child) {
                Node::Symlink { target } if !is_final || follow_final => {
                    *hops += 1;
                    if *hops > MAX_SYMLINK_HOPS {
                        return Err(VfsError::SymlinkLoop(p.to_string()));
                    }
                    let base = walked(&prefix, rebased, i);
                    let abs = path::join(&base, target);
                    cur = self.resolve_inner(&abs, true, hops)?;
                    // Continue the walk from the symlink's resolution.
                    prefix = Some(abs);
                    rebased = i + 1;
                }
                _ => cur = child,
            }
        }
        Ok(cur)
    }

    /// Canonicalize: resolve every symlink and return the normalized physical
    /// path. Errors if the path does not exist.
    pub fn canonicalize(&self, p: &str) -> VfsResult<String> {
        let comps = path::components(p).ok_or_else(|| VfsError::InvalidPath(p.to_string()))?;
        let mut cur = "/".to_string();
        for comp in comps {
            let candidate = path::join(&cur, comp);
            let mut hops = 0usize;
            let mut target = candidate.clone();
            loop {
                let ino = self.resolve_inner(&target, false, &mut 0)?;
                match self.node(ino) {
                    Node::Symlink { target: t } => {
                        hops += 1;
                        if hops > MAX_SYMLINK_HOPS {
                            return Err(VfsError::SymlinkLoop(p.to_string()));
                        }
                        target = path::join(&path::parent(&target), t);
                    }
                    _ => break,
                }
            }
            cur = target;
        }
        Ok(cur)
    }

    pub fn metadata(&self, p: &str, follow: bool) -> VfsResult<Metadata> {
        let ino = self.resolve(p, follow)?;
        let n = self.node(ino);
        Ok(Metadata { inode: ino, kind: n.kind(), size: n.size() })
    }

    pub fn mkdir_p(&mut self, p: &str) -> VfsResult<()> {
        let comps: Vec<String> = path::components(p)
            .ok_or_else(|| VfsError::InvalidPath(p.to_string()))?
            .into_iter()
            .map(|s| s.to_string())
            .collect();
        let mut cur = self.root;
        let mut walked = String::new();
        for comp in &comps {
            walked.push('/');
            walked.push_str(comp);
            let existing = match self.node(cur) {
                Node::Dir { entries } => entries.get(comp).copied(),
                _ => return Err(VfsError::NotADirectory(walked.clone())),
            };
            match existing {
                Some(child) => match self.node(child) {
                    Node::Dir { .. } => cur = child,
                    Node::Symlink { .. } => {
                        let ino = self.resolve(&walked, true)?;
                        match self.node(ino) {
                            Node::Dir { .. } => cur = ino,
                            _ => return Err(VfsError::NotADirectory(walked.clone())),
                        }
                    }
                    _ => return Err(VfsError::NotADirectory(walked.clone())),
                },
                None => {
                    let child = self.alloc(Node::Dir { entries: BTreeMap::new() });
                    match self.node_mut(cur) {
                        Node::Dir { entries } => {
                            entries.insert(comp.clone(), child);
                        }
                        _ => unreachable!(),
                    }
                    cur = child;
                }
            }
        }
        Ok(())
    }

    /// Create or overwrite a regular file. Parent directories must exist.
    pub fn write_file(&mut self, p: &str, data: Vec<u8>) -> VfsResult<Inode> {
        let dir = path::parent(p);
        let name = path::basename(p).to_string();
        if name.is_empty() {
            return Err(VfsError::InvalidPath(p.to_string()));
        }
        let dir_ino = self.resolve(&dir, true)?;
        let existing = match self.node(dir_ino) {
            Node::Dir { entries } => entries.get(&name).copied(),
            _ => return Err(VfsError::NotADirectory(dir)),
        };
        match existing {
            Some(ino) => match self.node_mut(ino) {
                Node::File { data: d } => {
                    *d = Arc::new(data);
                    Ok(ino)
                }
                Node::Dir { .. } => Err(VfsError::IsADirectory(p.to_string())),
                Node::Symlink { .. } => {
                    // Write through the symlink, like open(O_CREAT) would.
                    let target = self.canonicalize(p)?;
                    self.write_file(&target, data)
                }
            },
            None => {
                let ino = self.alloc(Node::File { data: Arc::new(data) });
                match self.node_mut(dir_ino) {
                    Node::Dir { entries } => {
                        entries.insert(name, ino);
                    }
                    _ => unreachable!(),
                }
                Ok(ino)
            }
        }
    }

    /// Create a symlink at `p` pointing to `target` (not resolved now).
    pub fn symlink(&mut self, p: &str, target: &str) -> VfsResult<()> {
        let dir = path::parent(p);
        let name = path::basename(p).to_string();
        if name.is_empty() {
            return Err(VfsError::InvalidPath(p.to_string()));
        }
        let dir_ino = self.resolve(&dir, true)?;
        match self.node_mut(dir_ino) {
            Node::Dir { entries } => {
                if entries.contains_key(&name) {
                    return Err(VfsError::AlreadyExists(p.to_string()));
                }
                let ino = self.alloc(Node::Symlink { target: target.to_string() });
                // Re-borrow after alloc: split into two steps.
                match self.node_mut(dir_ino) {
                    Node::Dir { entries } => {
                        entries.insert(name, ino);
                    }
                    _ => unreachable!(),
                }
                Ok(())
            }
            _ => Err(VfsError::NotADirectory(dir)),
        }
    }

    pub fn read_file(&self, p: &str) -> VfsResult<Arc<Vec<u8>>> {
        let ino = self.resolve(p, true)?;
        match self.node(ino) {
            Node::File { data } => Ok(Arc::clone(data)),
            Node::Dir { .. } => Err(VfsError::IsADirectory(p.to_string())),
            Node::Symlink { .. } => unreachable!("resolve follows final symlink"),
        }
    }

    pub fn read_inode(&self, ino: Inode) -> VfsResult<Arc<Vec<u8>>> {
        match self.nodes.get(ino.0 as usize).and_then(Option::as_ref) {
            Some(Node::File { data }) => Ok(Arc::clone(data)),
            Some(_) => Err(VfsError::IsADirectory(format!("inode {}", ino.0))),
            None => Err(VfsError::NotFound(format!("inode {}", ino.0))),
        }
    }

    pub fn readlink(&self, p: &str) -> VfsResult<String> {
        let ino = self.resolve(p, false)?;
        match self.node(ino) {
            Node::Symlink { target } => Ok(target.clone()),
            _ => Err(VfsError::InvalidPath(p.to_string())),
        }
    }

    pub fn list_dir(&self, p: &str) -> VfsResult<Vec<String>> {
        let ino = self.resolve(p, true)?;
        match self.node(ino) {
            Node::Dir { entries } => Ok(entries.keys().cloned().collect()),
            _ => Err(VfsError::NotADirectory(p.to_string())),
        }
    }

    pub fn remove(&mut self, p: &str) -> VfsResult<()> {
        let dir = path::parent(p);
        let name = path::basename(p).to_string();
        let dir_ino = self.resolve(&dir, true)?;
        let child = match self.node(dir_ino) {
            Node::Dir { entries } => {
                entries.get(&name).copied().ok_or_else(|| VfsError::NotFound(p.to_string()))?
            }
            _ => return Err(VfsError::NotADirectory(dir)),
        };
        if let Node::Dir { entries } = self.node(child) {
            if !entries.is_empty() {
                return Err(VfsError::NotEmpty(p.to_string()));
            }
        }
        match self.node_mut(dir_ino) {
            Node::Dir { entries } => {
                entries.remove(&name);
            }
            _ => unreachable!(),
        }
        self.free(child);
        Ok(())
    }

    /// Rename (move) an entry, replacing any existing file or symlink at the
    /// destination — the primitive behind atomic symlink switches (profile
    /// repointing). Fails if the destination is a non-empty directory.
    pub fn rename(&mut self, from: &str, to: &str) -> VfsResult<()> {
        let from_dir = self.resolve(&path::parent(from), true)?;
        let from_name = path::basename(from).to_string();
        let moved = match self.node(from_dir) {
            Node::Dir { entries } => entries
                .get(&from_name)
                .copied()
                .ok_or_else(|| VfsError::NotFound(from.to_string()))?,
            _ => return Err(VfsError::NotADirectory(path::parent(from))),
        };
        let to_dir = self.resolve(&path::parent(to), true)?;
        let to_name = path::basename(to).to_string();
        if to_name.is_empty() {
            return Err(VfsError::InvalidPath(to.to_string()));
        }
        if let Node::Dir { entries } = self.node(to_dir) {
            if let Some(&existing) = entries.get(&to_name) {
                if let Node::Dir { entries: e } = self.node(existing) {
                    if !e.is_empty() {
                        return Err(VfsError::NotEmpty(to.to_string()));
                    }
                }
                self.free(existing);
            }
        }
        match self.node_mut(from_dir) {
            Node::Dir { entries } => {
                entries.remove(&from_name);
            }
            _ => unreachable!(),
        }
        match self.node_mut(to_dir) {
            Node::Dir { entries } => {
                entries.insert(to_name, moved);
            }
            _ => unreachable!(),
        }
        Ok(())
    }

    /// Recursively remove a subtree (used for package uninstall simulation).
    pub fn remove_all(&mut self, p: &str) -> VfsResult<()> {
        let ino = self.resolve(p, false)?;
        let mut stack = vec![ino];
        let mut to_delete = vec![ino];
        while let Some(cur) = stack.pop() {
            if let Node::Dir { entries } = self.node(cur) {
                for &c in entries.values() {
                    stack.push(c);
                    to_delete.push(c);
                }
            }
        }
        for ino in to_delete {
            self.free(ino);
        }
        let dir = path::parent(p);
        let name = path::basename(p).to_string();
        if let Ok(dir_ino) = self.resolve(&dir, true) {
            if let Node::Dir { entries } = self.node_mut(dir_ino) {
                entries.remove(&name);
            }
        }
        Ok(())
    }

    pub fn node_count(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Tree {
        Tree::new()
    }

    #[test]
    fn mkdir_and_stat() {
        let mut tr = t();
        tr.mkdir_p("/a/b/c").unwrap();
        let m = tr.metadata("/a/b/c", true).unwrap();
        assert_eq!(m.kind, FileKind::Dir);
        // idempotent
        tr.mkdir_p("/a/b/c").unwrap();
    }

    #[test]
    fn write_read_roundtrip() {
        let mut tr = t();
        tr.mkdir_p("/lib").unwrap();
        tr.write_file("/lib/x", vec![1, 2, 3]).unwrap();
        assert_eq!(*tr.read_file("/lib/x").unwrap(), vec![1, 2, 3]);
        // overwrite keeps same inode
        let i1 = tr.metadata("/lib/x", true).unwrap().inode;
        tr.write_file("/lib/x", vec![9]).unwrap();
        let i2 = tr.metadata("/lib/x", true).unwrap().inode;
        assert_eq!(i1, i2);
        assert_eq!(*tr.read_file("/lib/x").unwrap(), vec![9]);
    }

    #[test]
    fn missing_paths_err() {
        let tr = t();
        assert!(matches!(tr.metadata("/nope", true), Err(VfsError::NotFound(_))));
        assert!(matches!(tr.read_file("/nope"), Err(VfsError::NotFound(_))));
    }

    #[test]
    fn symlink_resolution_relative_and_absolute() {
        let mut tr = t();
        tr.mkdir_p("/usr/lib").unwrap();
        tr.write_file("/usr/lib/libm.so.6", vec![7]).unwrap();
        tr.symlink("/usr/lib/libm.so", "libm.so.6").unwrap();
        tr.mkdir_p("/alias").unwrap();
        tr.symlink("/alias/m", "/usr/lib/libm.so").unwrap();
        assert_eq!(*tr.read_file("/alias/m").unwrap(), vec![7]);
        assert_eq!(tr.canonicalize("/alias/m").unwrap(), "/usr/lib/libm.so.6");
        // lstat sees the link itself
        assert_eq!(tr.metadata("/alias/m", false).unwrap().kind, FileKind::Symlink);
        assert_eq!(tr.readlink("/alias/m").unwrap(), "/usr/lib/libm.so");
    }

    #[test]
    fn symlink_through_directories() {
        let mut tr = t();
        tr.mkdir_p("/store/pkg-1.0/lib").unwrap();
        tr.write_file("/store/pkg-1.0/lib/liba.so", vec![1]).unwrap();
        tr.mkdir_p("/opt").unwrap();
        tr.symlink("/opt/pkg", "/store/pkg-1.0").unwrap();
        assert_eq!(*tr.read_file("/opt/pkg/lib/liba.so").unwrap(), vec![1]);
    }

    #[test]
    fn symlink_loop_detected() {
        let mut tr = t();
        tr.mkdir_p("/d").unwrap();
        tr.symlink("/d/a", "b").unwrap();
        tr.symlink("/d/b", "a").unwrap();
        assert!(matches!(tr.read_file("/d/a"), Err(VfsError::SymlinkLoop(_))));
    }

    #[test]
    fn same_inode_through_hardlink_like_symlinks() {
        let mut tr = t();
        tr.mkdir_p("/lib").unwrap();
        tr.write_file("/lib/real.so", vec![5]).unwrap();
        tr.symlink("/lib/alias.so", "real.so").unwrap();
        let a = tr.metadata("/lib/alias.so", true).unwrap().inode;
        let b = tr.metadata("/lib/real.so", true).unwrap().inode;
        assert_eq!(a, b, "musl-style (dev,ino) dedup depends on this");
    }

    #[test]
    fn remove_and_remove_all() {
        let mut tr = t();
        tr.mkdir_p("/a/b").unwrap();
        tr.write_file("/a/b/f", vec![]).unwrap();
        assert!(matches!(tr.remove("/a/b"), Err(VfsError::NotEmpty(_))));
        tr.remove("/a/b/f").unwrap();
        tr.remove("/a/b").unwrap();
        tr.mkdir_p("/a/c/d").unwrap();
        tr.write_file("/a/c/d/f", vec![]).unwrap();
        let before = tr.node_count();
        tr.remove_all("/a/c").unwrap();
        assert!(tr.node_count() < before);
        assert!(tr.metadata("/a/c", true).is_err());
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut tr = t();
        tr.mkdir_p("/p").unwrap();
        tr.write_file("/p/old", vec![1]).unwrap();
        tr.rename("/p/old", "/p/new").unwrap();
        assert!(tr.metadata("/p/old", false).is_err());
        assert_eq!(*tr.read_file("/p/new").unwrap(), vec![1]);
        // replace an existing symlink atomically (the profile switch)
        tr.symlink("/p/current", "new").unwrap();
        tr.symlink("/p/current.tmp", "new").unwrap();
        tr.rename("/p/current.tmp", "/p/current").unwrap();
        assert_eq!(tr.readlink("/p/current").unwrap(), "new");
        // refuse to clobber a non-empty directory
        tr.mkdir_p("/p/dir/sub").unwrap();
        tr.write_file("/p/f", vec![]).unwrap();
        assert!(matches!(tr.rename("/p/f", "/p/dir"), Err(VfsError::NotEmpty(_))));
    }

    #[test]
    fn list_dir_sorted() {
        let mut tr = t();
        tr.mkdir_p("/d").unwrap();
        tr.write_file("/d/b", vec![]).unwrap();
        tr.write_file("/d/a", vec![]).unwrap();
        assert_eq!(tr.list_dir("/d").unwrap(), vec!["a".to_string(), "b".to_string()]);
    }
}

//! Simulated syscall cost models.
//!
//! The paper's performance results hinge on where binaries live:
//!
//! * **Local filesystem** — metadata operations are cheap; a cold dentry
//!   cache costs a few microseconds, a warm one well under one.
//! * **NFS** — every uncached metadata lookup is a network round trip. LLNL
//!   systems additionally run with *negative caching disabled* (the paper
//!   notes this explicitly), so repeated misses for the same nonexistent
//!   path pay the round trip every time. This is the regime in which a
//!   3,600-lookup `emacs` startup or a 512-rank Pynamic launch becomes
//!   catastrophically slow (Table II, Fig 6).
//!
//! Costs are deterministic simulated nanoseconds so experiments are exactly
//! reproducible. Absolute values are calibrated to commodity hardware; only
//! ratios matter for the reproduction.

use std::collections::HashSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::intern::PathId;
use crate::strace::{Op, Outcome};

/// Parameters for the local-filesystem cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalParams {
    /// Cost of a metadata op that hits the dentry/page cache.
    pub warm_ns: u64,
    /// Cost of a metadata op that must touch the backing store.
    pub cold_ns: u64,
    /// Per-byte cost of reading file data (cold).
    pub read_ns_per_kib: u64,
}

impl Default for LocalParams {
    fn default() -> Self {
        // ~600ns warm stat, ~6us cold, ~1us/KiB cold read.
        LocalParams { warm_ns: 600, cold_ns: 6_000, read_ns_per_kib: 1_000 }
    }
}

/// Parameters for the NFS cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NfsParams {
    /// One metadata round trip to the server (LOOKUP/GETATTR/OPEN).
    pub rtt_ns: u64,
    /// Cost when the client attribute cache already has the answer.
    pub warm_ns: u64,
    /// Whether the client caches negative lookups. The paper's LLNL systems
    /// disable this, making failed searches maximally expensive.
    pub negative_caching: bool,
    /// Per-KiB cost of reading file data over the wire.
    pub read_ns_per_kib: u64,
}

impl Default for NfsParams {
    fn default() -> Self {
        // ~200us RTT (datacenter NFS under light load), 1us client-cache hit.
        NfsParams {
            rtt_ns: 200_000,
            warm_ns: 1_000,
            negative_caching: false,
            read_ns_per_kib: 4_000,
        }
    }
}

/// Which storage backend a [`crate::Vfs`] simulates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    Local(LocalParams),
    Nfs(NfsParams),
}

impl Backend {
    /// Local filesystem with default calibration.
    pub fn local() -> Self {
        Backend::Local(LocalParams::default())
    }

    /// NFS with default calibration (negative caching **off**, as on the
    /// paper's LLNL systems).
    pub fn nfs() -> Self {
        Backend::Nfs(NfsParams::default())
    }

    /// NFS with negative caching enabled, for ablations.
    pub fn nfs_with_negative_caching() -> Self {
        Backend::Nfs(NfsParams { negative_caching: true, ..NfsParams::default() })
    }
}

/// A *nameable* storage configuration — the data form of [`Backend`] that
/// experiment matrices enumerate, serialize, and print. Where [`Backend`]
/// carries calibration parameters, a `StorageModel` is pure identity: the
/// scenario axis "where do the binaries live".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageModel {
    /// Local filesystem (warm/cold dentry cache).
    Local,
    /// NFS with negative caching disabled — the paper's LLNL configuration
    /// and the regime Fig 6 measures.
    Nfs,
    /// NFS with negative caching enabled, the ablation the paper mentions.
    NfsNegativeCaching,
}

impl StorageModel {
    /// Every storage model, for sweeps.
    pub fn all() -> [StorageModel; 3] {
        [StorageModel::Local, StorageModel::Nfs, StorageModel::NfsNegativeCaching]
    }

    /// Stable display/report name.
    pub fn name(&self) -> &'static str {
        match self {
            StorageModel::Local => "local",
            StorageModel::Nfs => "nfs",
            StorageModel::NfsNegativeCaching => "nfs+negcache",
        }
    }

    /// Inverse of [`StorageModel::name`] — report and serve front ends
    /// parse the storage axis by the exact names the sweeps print.
    pub fn parse(s: &str) -> Option<StorageModel> {
        StorageModel::all().into_iter().find(|m| m.name() == s)
    }

    /// The calibrated [`Backend`] this model names.
    pub fn backend(&self) -> Backend {
        match self {
            StorageModel::Local => Backend::local(),
            StorageModel::Nfs => Backend::nfs(),
            StorageModel::NfsNegativeCaching => Backend::nfs_with_negative_caching(),
        }
    }
}

impl fmt::Display for StorageModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tracks which (path, outcome) pairs are cached, i.e. warm.
///
/// Keyed by interned [`PathId`] — recording a cache entry stores a 4-byte
/// id, not a cloned `String`, so the per-op cost of the model is a couple of
/// integer hash probes and zero allocation.
///
/// A positive entry means attributes are cached, a negative entry means the
/// *absence* is cached (only honoured when the backend enables negative
/// caching).
#[derive(Debug, Default)]
pub struct AttrCache {
    positive: HashSet<PathId>,
    negative: HashSet<PathId>,
    /// File *contents* cached (page cache) — separate from attributes: an
    /// `openat` warms the dentry/attr path but the first `read` still moves
    /// the bytes.
    data: HashSet<PathId>,
}

impl AttrCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drop everything — simulates `echo 3 > /proc/sys/vm/drop_caches` or a
    /// fresh client mount. Benchmarks call this to measure cold-start.
    pub fn drop_caches(&mut self) {
        self.positive.clear();
        self.negative.clear();
        self.data.clear();
    }

    pub fn data_is_warm(&self, path: PathId) -> bool {
        self.data.contains(&path)
    }

    pub fn record_data(&mut self, path: PathId) {
        self.data.insert(path);
    }

    pub fn is_warm(&self, path: PathId, ok: bool, negative_caching: bool) -> bool {
        if ok {
            self.positive.contains(&path)
        } else {
            negative_caching && self.negative.contains(&path)
        }
    }

    pub fn record(&mut self, path: PathId, ok: bool) {
        if ok {
            self.positive.insert(path);
            self.negative.remove(&path);
        } else {
            self.negative.insert(path);
        }
    }

    /// Number of cached entries (diagnostics).
    pub fn len(&self) -> usize {
        self.positive.len() + self.negative.len()
    }

    pub fn is_empty(&self) -> bool {
        self.positive.is_empty() && self.negative.is_empty()
    }
}

/// Computes simulated cost per syscall and maintains the cache.
#[derive(Debug)]
pub struct CostModel {
    backend: Backend,
    cache: AttrCache,
}

impl CostModel {
    pub fn new(backend: Backend) -> Self {
        CostModel { backend, cache: AttrCache::new() }
    }

    pub fn backend(&self) -> Backend {
        self.backend
    }

    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    pub fn drop_caches(&mut self) {
        self.cache.drop_caches();
    }

    pub fn cache(&self) -> &AttrCache {
        &self.cache
    }

    /// Cost of one metadata syscall (`stat`/`openat`/`readlink`) against
    /// `path` with the given outcome; updates the cache.
    pub fn metadata_cost(&mut self, path: PathId, outcome: Outcome) -> u64 {
        let ok = outcome == Outcome::Ok;
        let (warm_ns, cold_ns, negative_caching) = match self.backend {
            Backend::Local(p) => (p.warm_ns, p.cold_ns, true),
            Backend::Nfs(p) => (p.warm_ns, p.rtt_ns, p.negative_caching),
        };
        let warm = self.cache.is_warm(path, ok, negative_caching);
        self.cache.record(path, ok);
        if warm {
            warm_ns
        } else {
            cold_ns
        }
    }

    /// Cost of reading `bytes` of file data from `path`.
    pub fn read_cost(&mut self, path: PathId, bytes: u64) -> u64 {
        let (per_kib, base) = match self.backend {
            Backend::Local(p) => (p.read_ns_per_kib, p.warm_ns),
            Backend::Nfs(p) => (p.read_ns_per_kib, p.warm_ns),
        };
        let warm = self.cache.data_is_warm(path);
        self.cache.record_data(path);
        self.cache.record(path, true);
        let kib = bytes.div_ceil(1024).max(1);
        if warm {
            base + kib * per_kib / 8
        } else {
            base + kib * per_kib
        }
    }

    /// Cost of one op, dispatching on kind.
    pub fn op_cost(&mut self, op: Op, path: PathId, outcome: Outcome, bytes: u64) -> u64 {
        match op {
            Op::Read => self.read_cost(path, bytes),
            _ => self.metadata_cost(path, outcome),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern::intern;

    #[test]
    fn storage_models_name_their_backends() {
        assert_eq!(StorageModel::Local.backend(), Backend::local());
        assert_eq!(StorageModel::Nfs.backend(), Backend::nfs());
        assert_eq!(
            StorageModel::NfsNegativeCaching.backend(),
            Backend::nfs_with_negative_caching()
        );
        let names: Vec<&str> = StorageModel::all().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["local", "nfs", "nfs+negcache"]);
    }

    #[test]
    fn local_warm_after_first_touch() {
        let mut m = CostModel::new(Backend::local());
        let c1 = m.metadata_cost(intern("/lib/x"), Outcome::Ok);
        let c2 = m.metadata_cost(intern("/lib/x"), Outcome::Ok);
        assert!(c1 > c2, "first access cold ({c1}) then warm ({c2})");
    }

    #[test]
    fn nfs_negative_caching_off_pays_rtt_every_time() {
        let mut m = CostModel::new(Backend::nfs());
        let c1 = m.metadata_cost(intern("/lib/missing"), Outcome::Enoent);
        let c2 = m.metadata_cost(intern("/lib/missing"), Outcome::Enoent);
        assert_eq!(c1, c2, "misses never warm without negative caching");
        assert_eq!(c1, NfsParams::default().rtt_ns);
    }

    #[test]
    fn nfs_negative_caching_on_warms_misses() {
        let mut m = CostModel::new(Backend::nfs_with_negative_caching());
        let c1 = m.metadata_cost(intern("/lib/missing"), Outcome::Enoent);
        let c2 = m.metadata_cost(intern("/lib/missing"), Outcome::Enoent);
        assert!(c2 < c1);
    }

    #[test]
    fn drop_caches_makes_cold_again() {
        let mut m = CostModel::new(Backend::local());
        m.metadata_cost(intern("/lib/x"), Outcome::Ok);
        m.drop_caches();
        let c = m.metadata_cost(intern("/lib/x"), Outcome::Ok);
        assert_eq!(c, LocalParams::default().cold_ns);
    }

    #[test]
    fn reads_scale_with_size() {
        let mut m = CostModel::new(Backend::nfs());
        let small = m.read_cost(intern("/lib/a"), 1024);
        m.drop_caches();
        let big = m.read_cost(intern("/lib/b"), 1024 * 1024);
        assert!(big > small * 100);
    }

    #[test]
    fn success_then_failure_not_confused() {
        let mut m = CostModel::new(Backend::nfs_with_negative_caching());
        m.metadata_cost(intern("/p"), Outcome::Enoent);
        // Now the file "appears": positive lookup must not be treated warm.
        let c = m.metadata_cost(intern("/p"), Outcome::Ok);
        assert_eq!(c, NfsParams::default().rtt_ns);
        // and the positive result overwrites the negative entry
        let c2 = m.metadata_cost(intern("/p"), Outcome::Ok);
        assert!(c2 < c);
    }
}

//! Syscall accounting.
//!
//! Table II of the paper reports `stat`/`openat` counts during process
//! startup, captured with `strace`. Every [`crate::Vfs`] operation increments
//! these counters; tests and benches take [`SyscallCounters::snapshot`]
//! deltas around the region of interest.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone syscall counters. Cheap to share; all methods are `&self`.
#[derive(Debug, Default)]
pub struct SyscallCounters {
    stat: AtomicU64,
    openat: AtomicU64,
    read: AtomicU64,
    readlink: AtomicU64,
    /// Failed `stat`/`openat` lookups (ENOENT et al.) — the wasted work the
    /// paper attributes to long search paths.
    misses: AtomicU64,
}

/// A point-in-time copy of the counters, with arithmetic for deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub stat: u64,
    pub openat: u64,
    pub read: u64,
    pub readlink: u64,
    pub misses: u64,
}

impl CounterSnapshot {
    /// Total of the syscalls the paper counts in Table II (stat + openat).
    pub fn stat_openat(&self) -> u64 {
        self.stat + self.openat
    }

    /// Grand total of all recorded syscalls.
    pub fn total(&self) -> u64 {
        self.stat + self.openat + self.read + self.readlink
    }

    /// Component-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            stat: self.stat.saturating_sub(earlier.stat),
            openat: self.openat.saturating_sub(earlier.openat),
            read: self.read.saturating_sub(earlier.read),
            readlink: self.readlink.saturating_sub(earlier.readlink),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

impl SyscallCounters {
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn bump_stat(&self) {
        self.stat.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_openat(&self) {
        self.openat.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_read(&self) {
        self.read.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_readlink(&self) {
        self.readlink.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn bump_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Copy out the current values.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            stat: self.stat.load(Ordering::Relaxed),
            openat: self.openat.load(Ordering::Relaxed),
            read: self.read.load(Ordering::Relaxed),
            readlink: self.readlink.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Grand total of all syscalls so far.
    pub fn total(&self) -> u64 {
        self.snapshot().total()
    }

    /// Reset everything to zero (between experiment runs).
    pub fn reset(&self) {
        self.stat.store(0, Ordering::Relaxed);
        self.openat.store(0, Ordering::Relaxed);
        self.read.store(0, Ordering::Relaxed);
        self.readlink.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let c = SyscallCounters::new();
        c.bump_stat();
        c.bump_stat();
        c.bump_openat();
        c.bump_miss();
        let s1 = c.snapshot();
        assert_eq!(s1.stat, 2);
        assert_eq!(s1.stat_openat(), 3);
        c.bump_openat();
        let s2 = c.snapshot();
        let d = s2.since(&s1);
        assert_eq!(d.openat, 1);
        assert_eq!(d.stat, 0);
        c.reset();
        assert_eq!(c.snapshot().total(), 0);
    }
}

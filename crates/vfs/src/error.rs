//! Error type for simulated filesystem operations.

use std::fmt;

/// Result alias used across the crate.
pub type VfsResult<T> = Result<T, VfsError>;

/// Errors mirroring the POSIX errno values the dynamic loader cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VfsError {
    /// `ENOENT` — a path component or the final entry does not exist.
    NotFound(String),
    /// `ENOTDIR` — a non-final path component is not a directory.
    NotADirectory(String),
    /// `EISDIR` — a file operation was attempted on a directory.
    IsADirectory(String),
    /// `EEXIST` — entry already exists and overwrite was not requested.
    AlreadyExists(String),
    /// `ELOOP` — too many levels of symbolic links.
    SymlinkLoop(String),
    /// A path that is empty, relative where absolute is required, etc.
    InvalidPath(String),
    /// `ENOTEMPTY` — directory removal on a non-empty directory.
    NotEmpty(String),
}

impl VfsError {
    /// The path the error refers to.
    pub fn path(&self) -> &str {
        match self {
            VfsError::NotFound(p)
            | VfsError::NotADirectory(p)
            | VfsError::IsADirectory(p)
            | VfsError::AlreadyExists(p)
            | VfsError::SymlinkLoop(p)
            | VfsError::InvalidPath(p)
            | VfsError::NotEmpty(p) => p,
        }
    }

    /// True for errors that a searching loader treats as "keep looking"
    /// rather than "abort".
    pub fn is_not_found(&self) -> bool {
        matches!(self, VfsError::NotFound(_) | VfsError::NotADirectory(_))
    }
}

impl fmt::Display for VfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VfsError::NotFound(p) => write!(f, "ENOENT: no such file or directory: {p}"),
            VfsError::NotADirectory(p) => write!(f, "ENOTDIR: not a directory: {p}"),
            VfsError::IsADirectory(p) => write!(f, "EISDIR: is a directory: {p}"),
            VfsError::AlreadyExists(p) => write!(f, "EEXIST: file exists: {p}"),
            VfsError::SymlinkLoop(p) => write!(f, "ELOOP: too many symlinks: {p}"),
            VfsError::InvalidPath(p) => write!(f, "EINVAL: invalid path: {p}"),
            VfsError::NotEmpty(p) => write!(f, "ENOTEMPTY: directory not empty: {p}"),
        }
    }
}

impl std::error::Error for VfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn not_found_classification() {
        assert!(VfsError::NotFound("/x".into()).is_not_found());
        assert!(VfsError::NotADirectory("/x".into()).is_not_found());
        assert!(!VfsError::SymlinkLoop("/x".into()).is_not_found());
    }

    #[test]
    fn display_contains_path() {
        let e = VfsError::NotFound("/usr/lib/libfoo.so".into());
        assert!(e.to_string().contains("/usr/lib/libfoo.so"));
        assert_eq!(e.path(), "/usr/lib/libfoo.so");
    }
}

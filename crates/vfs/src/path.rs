//! Lexical path manipulation for the simulated filesystem.
//!
//! All VFS paths are absolute, `/`-separated strings. These helpers are purely
//! lexical; symlink-aware resolution lives in [`crate::tree`].

/// Split an absolute path into its components, ignoring empty segments and
/// `.`, and applying `..` lexically.
///
/// Returns `None` if the path is not absolute.
pub fn components(path: &str) -> Option<Vec<&str>> {
    if !path.starts_with('/') {
        return None;
    }
    let mut out: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "" | "." => {}
            ".." => {
                out.pop();
            }
            s => out.push(s),
        }
    }
    Some(out)
}

/// Normalize an absolute path: collapse `//`, `.`, and lexical `..`.
///
/// `normalize("/a/b/../c/") == "/a/c"`. The root normalizes to `"/"`.
pub fn normalize(path: &str) -> Option<String> {
    let comps = components(path)?;
    if comps.is_empty() {
        return Some("/".to_string());
    }
    let mut s = String::with_capacity(path.len());
    for c in &comps {
        s.push('/');
        s.push_str(c);
    }
    Some(s)
}

/// Join a base path and a possibly-relative component list.
///
/// If `rel` is absolute it wins outright (like `Path::join`).
pub fn join(base: &str, rel: &str) -> String {
    if rel.starts_with('/') {
        normalize(rel).unwrap_or_else(|| "/".to_string())
    } else {
        let mut s = String::with_capacity(base.len() + rel.len() + 1);
        s.push_str(base);
        if !base.ends_with('/') {
            s.push('/');
        }
        s.push_str(rel);
        normalize(&s).unwrap_or_else(|| "/".to_string())
    }
}

/// Parent directory of a normalized absolute path (`/` is its own parent).
pub fn parent(path: &str) -> String {
    match path.rfind('/') {
        Some(0) | None => "/".to_string(),
        Some(i) => path[..i].to_string(),
    }
}

/// Final component of a path (empty for `/`).
pub fn basename(path: &str) -> &str {
    match path.rfind('/') {
        Some(i) => &path[i + 1..],
        None => path,
    }
}

/// Expand the ELF `$ORIGIN` token (and its `${ORIGIN}` spelling) against the
/// directory containing the object, per the System V gABI dynamic-string
/// token rules used by `RPATH`/`RUNPATH` entries.
pub fn expand_origin(entry: &str, object_dir: &str) -> String {
    expand_tokens(entry, object_dir, "lib64", "x86_64")
}

/// Full dynamic-string-token expansion: `$ORIGIN`, `$LIB` (the multilib
/// library directory name), and `$PLATFORM` (the processor string), in both
/// bare and braced spellings — the glibc token set.
pub fn expand_tokens(entry: &str, object_dir: &str, lib: &str, platform: &str) -> String {
    let expanded = entry
        .replace("${ORIGIN}", object_dir)
        .replace("$ORIGIN", object_dir)
        .replace("${LIB}", lib)
        .replace("$LIB", lib)
        .replace("${PLATFORM}", platform)
        .replace("$PLATFORM", platform);
    normalize(&expanded).unwrap_or(expanded)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_basic() {
        assert_eq!(normalize("/a/b/c").unwrap(), "/a/b/c");
        assert_eq!(normalize("/a//b/./c/").unwrap(), "/a/b/c");
        assert_eq!(normalize("/a/b/../c").unwrap(), "/a/c");
        assert_eq!(normalize("/../..").unwrap(), "/");
        assert_eq!(normalize("/").unwrap(), "/");
        assert!(normalize("relative/path").is_none());
    }

    #[test]
    fn join_relative_and_absolute() {
        assert_eq!(join("/usr/lib", "libm.so"), "/usr/lib/libm.so");
        assert_eq!(join("/usr/lib/", "../bin/ls"), "/usr/bin/ls");
        assert_eq!(join("/usr/lib", "/etc/passwd"), "/etc/passwd");
    }

    #[test]
    fn parent_and_basename() {
        assert_eq!(parent("/usr/lib/libm.so"), "/usr/lib");
        assert_eq!(parent("/usr"), "/");
        assert_eq!(parent("/"), "/");
        assert_eq!(basename("/usr/lib/libm.so"), "libm.so");
        assert_eq!(basename("/"), "");
    }

    #[test]
    fn origin_expansion() {
        assert_eq!(expand_origin("$ORIGIN/../lib", "/opt/app/bin"), "/opt/app/lib");
        assert_eq!(expand_origin("${ORIGIN}", "/opt/app/bin"), "/opt/app/bin");
        assert_eq!(expand_origin("/abs/path", "/opt/app/bin"), "/abs/path");
    }

    #[test]
    fn lib_and_platform_tokens() {
        assert_eq!(expand_tokens("/opt/pkg/$LIB", "/x", "lib64", "x86_64"), "/opt/pkg/lib64");
        assert_eq!(
            expand_tokens("$ORIGIN/../${LIB}/${PLATFORM}", "/opt/app/bin", "lib", "ppc64le"),
            "/opt/app/lib/ppc64le"
        );
    }
}

//! # depchaos-workloads — seeded generators for every experiment
//!
//! The paper's evaluation runs on artifacts we cannot ship: the Debian
//! archive, the Nix store, LLNL's Pynamic builds, ROCm installs. Each module
//! here builds a synthetic equivalent calibrated to the published shape
//! (DESIGN.md records each substitution):
//!
//! | module | paper artifact |
//! |---|---|
//! | [`debian`] | Fig 1 (dependency-spec taxonomy) and Fig 4 (shared-object reuse) |
//! | [`nix_ruby`] | Fig 2 (the 453-derivation Ruby closure) |
//! | [`emacs`] | Table II (emacs: 103 deps across 36 runpath dirs) |
//! | [`pynamic`] | Fig 6 (the ~900-library MPI application) |
//! | [`samba`] | Listing 1 (`dbwrap_tool`'s hidden `not found`) |
//! | [`paradox`] | Fig 3 (the unsolvable two-directory layout) |
//! | [`rocm`] | §V-B.1 (mixed-version ROCm segfault) |
//! | [`openmp`] | §V-B.2 (libomp vs libompstubs duplicate symbols) |
//! | [`axom`] | §I (the >200-dependency Axom application stack) |
//!
//! Everything is deterministic given a seed; generators return the paths and
//! metadata the experiments need. The [`Workload`] trait adapts generators
//! for the scenario-matrix engine — [`Pynamic`], [`PynamicRpath`],
//! [`Emacs`], [`Axom`], and [`Rocm`] (matched or deliberately mixed-ABI)
//! are its stock implementations.

pub mod axom;
pub mod debian;
pub mod emacs;
pub mod nix_ruby;
pub mod openmp;
pub mod paradox;
pub mod pynamic;
pub mod rocm;
pub mod samba;
pub mod workload;

mod rng;

pub use rng::SplitMix;
pub use workload::{Axom, Emacs, InstalledWorkload, Poison, Pynamic, PynamicRpath, Rocm, Workload};

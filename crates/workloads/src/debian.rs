//! Debian-archive-shaped synthetic data (Fig 1, Fig 4).
//!
//! **Substitution note (DESIGN.md):** the paper analyzed the real Debian
//! archive of November 2021 (~209k dependency declarations, "nearly 3/4 ...
//! completely unversioned") and a local install of 3,287 binaries ("only 4%
//! of shared object files are used by more than 5% of the binaries"). We
//! generate archives/installs with the same published marginals so the same
//! analysis code runs at the same scale.

use depchaos_graph::{ConstraintTally, DependencyDecl, VersionConstraint};

use crate::rng::SplitMix;

/// Mix of constraint classes observed in the Nov-2021 Debian snapshot.
/// (~72% unversioned, ~21% range, ~7% exact — read off Fig 1's bars.)
pub const P_UNVERSIONED: f64 = 0.72;
pub const P_RANGE: f64 = 0.21;

/// Generate a Debian-like archive's dependency declarations.
///
/// `n_relations` declarations are spread over `n_relations / 7` packages
/// (the archive averages a handful of Depends per package).
pub fn repo(seed: u64, n_relations: usize) -> Vec<DependencyDecl> {
    let mut rng = SplitMix::new(seed);
    let n_packages = (n_relations / 7).max(2);
    let mut out = Vec::with_capacity(n_relations);
    for i in 0..n_relations {
        let a = rng.below(n_packages as u64);
        let mut b = rng.below(n_packages as u64);
        if b == a {
            // No package depends on itself.
            b = (b + 1) % n_packages as u64;
        }
        let from = format!("pkg{a}");
        let to = format!("pkg{b}");
        let u = rng.unit();
        let constraint = if u < P_UNVERSIONED {
            VersionConstraint::Unversioned
        } else if u < P_UNVERSIONED + P_RANGE {
            VersionConstraint::Range
        } else {
            VersionConstraint::Exact
        };
        let _ = i;
        out.push(DependencyDecl { from, to, constraint });
    }
    out
}

/// Tally a generated archive — the Fig 1 bars.
pub fn fig1_tally(seed: u64, n_relations: usize) -> ConstraintTally {
    ConstraintTally::tally(&repo(seed, n_relations))
}

/// A binary→shared-objects usage relation shaped like the paper's surveyed
/// machine: `n_binaries` binaries over a pool of `n_sos` shared objects with
/// Zipf-like popularity plus a libc-style universal head.
///
/// Returns `(binary name, used sonames)` pairs.
pub fn installed_system(seed: u64, n_binaries: usize, n_sos: usize) -> Vec<(String, Vec<String>)> {
    let mut rng = SplitMix::new(seed);
    // Two-population model matching the Fig 4 curve: a small *core* of
    // system libraries that most binaries share (libc at the extreme), and
    // a long tail of special-purpose objects each used by a handful of
    // binaries. The core is ~4–5% of the pool; the tail dominates counts.
    let n_core = (n_sos / 25).max(4); // ≈4% of objects form the shared head
    let tail = n_sos.saturating_sub(n_core).max(1);
    // Tail popularity falls off steeply (Zipf-ish).
    let mut cum = Vec::with_capacity(tail);
    let mut total = 0.0f64;
    for i in 0..tail {
        total += 1.0 / ((i + 1) as f64).powf(1.8);
        cum.push(total);
    }
    let so_name = |i: usize| {
        if i == 0 {
            "libc.so.6".to_string()
        } else if i < n_core {
            format!("libcore{i}.so")
        } else {
            format!("libso{}.so", i - n_core)
        }
    };
    let mut out = Vec::with_capacity(n_binaries);
    for b in 0..n_binaries {
        // Every binary links libc, a handful of core libraries, a few tail
        // draws, and one "its own" library (plugins, private helpers) that
        // guarantees full pool coverage.
        let mut used = vec![so_name(0)];
        let n_core_draws = 3 + rng.below(5) as usize;
        for _ in 0..n_core_draws {
            let name = so_name(1 + rng.below((n_core - 1) as u64) as usize);
            if !used.contains(&name) {
                used.push(name);
            }
        }
        let n_tail_draws = 2 + rng.below(5) as usize;
        for _ in 0..n_tail_draws {
            let name = so_name(n_core + rng.weighted(&cum));
            if !used.contains(&name) {
                used.push(name);
            }
        }
        let private = so_name(n_core + b % tail);
        if !used.contains(&private) {
            used.push(private);
        }
        out.push((format!("bin{b}"), used));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_graph::reuse_counts;

    #[test]
    fn fig1_marginals_match_paper() {
        let t = fig1_tally(2021, 209_000);
        assert_eq!(t.total(), 209_000);
        let f = t.unversioned_fraction();
        assert!((0.70..0.75).contains(&f), "nearly 3/4 unversioned, got {f:.3}");
        assert!(t.exact < t.range, "exact is the smallest class");
    }

    #[test]
    fn repo_is_deterministic() {
        assert_eq!(repo(1, 100), repo(1, 100));
        assert_ne!(repo(1, 100), repo(2, 100));
    }

    #[test]
    fn fig4_headline_shape() {
        // 3287 binaries over ~1400 shared objects, like the paper's survey.
        let usages = installed_system(2021, 3287, 1400);
        let h = reuse_counts(
            usages.iter().map(|(b, sos)| (b.as_str(), sos.iter().map(String::as_str))),
        );
        assert_eq!(h.binary_count, 3287);
        let frac = h.fraction_above(0.05);
        assert!(
            frac < 0.08,
            "only a few percent of objects used by >5% of binaries, got {:.1}%",
            frac * 100.0
        );
        // libc heads the ranking, used by everything.
        assert_eq!(h.ranked[0].0, "libc.so.6");
        assert_eq!(h.ranked[0].1, 3287);
        // ...and the median object is used by almost nobody.
        assert!(h.median_users() <= 3);
    }

    #[test]
    fn installed_system_no_duplicate_uses() {
        for (_, sos) in installed_system(7, 50, 100) {
            let mut sorted = sos.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), sos.len());
        }
    }
}

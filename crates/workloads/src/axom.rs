//! An Axom-scale application stack (paper §I).
//!
//! > "Today the Axom library, a common support library for Livermore codes,
//! > can require more than 200 total dependencies."
//!
//! This generator builds a layered, Spack-installable package universe of
//! that scale: an application atop an axom-like support library, component
//! libraries, third-party packages (the hdf5/mfem/raja band), a wide layer
//! of utility libraries, and base system packages. Dependencies always point
//! downward (a DAG by construction), with seeded fan-out, so the closure of
//! the application exceeds 200 packages — the stack the paper's introduction
//! motivates everything with.

use depchaos_store::{BinDef, LibDef, PackageDef, Repo};

use crate::rng::SplitMix;

/// Name of the root application package.
pub const APP: &str = "multiphysics-app";

/// Layer sizes, top to bottom (≈ 215 packages + the app).
const LAYERS: &[(&str, usize)] = &[("axom-component", 8), ("tpl", 40), ("util", 85), ("base", 82)];

/// Build the repository. `seed` controls the fan-out wiring only; layer
/// structure and scale are fixed.
pub fn repo(seed: u64) -> Repo {
    let mut rng = SplitMix::new(seed);
    let mut repo = Repo::new();

    // Collect package names per layer, bottom-up.
    let mut layer_names: Vec<Vec<String>> = Vec::new();
    for (label, count) in LAYERS.iter().rev() {
        let names: Vec<String> = (0..*count).map(|i| format!("{label}-{i:02}")).collect();
        layer_names.push(names);
    }
    layer_names.reverse(); // back to top-down order, matching LAYERS

    // Create bottom layer first so deps always exist. Each package takes a
    // deterministic share of the layer below (so the whole stack is in the
    // app's closure — real Spack concretizations pull in everything) plus
    // seeded random extras (the cross-links that make the graph a snarl).
    for li in (0..layer_names.len()).rev() {
        let below: Option<Vec<String>> = layer_names.get(li + 1).cloned();
        let cur_len = layer_names[li].len();
        for (i, name) in layer_names[li].clone().iter().enumerate() {
            let mut pkg = PackageDef::new(name.clone(), "1.0");
            let mut lib = LibDef::new(format!("lib{name}.so"));
            if let Some(below) = &below {
                let mut chosen: Vec<&String> = below
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| j % cur_len == i)
                    .map(|(_, d)| d)
                    .collect();
                for _ in 0..1 + rng.below(3) {
                    let d = &below[rng.below(below.len() as u64) as usize];
                    if !chosen.contains(&d) {
                        chosen.push(d);
                    }
                }
                for d in chosen {
                    pkg = pkg.dep(d.clone());
                    lib = lib.needs(format!("lib{d}.so"));
                }
            }
            pkg = pkg.lib(lib);
            repo.add(pkg);
        }
    }

    // The axom library spans every component.
    let mut axom = PackageDef::new("axom", "0.7.0");
    let mut axom_lib = LibDef::new("libaxom.so");
    for c in &layer_names[0] {
        axom = axom.dep(c.clone());
        axom_lib = axom_lib.needs(format!("lib{c}.so"));
    }
    repo.add(axom.lib(axom_lib));

    // The application: axom plus a few TPLs directly.
    let mut app = PackageDef::new(APP, "2.4.1").dep("axom");
    let mut app_bin = BinDef::new(APP).needs("libaxom.so");
    for d in layer_names[1].iter().take(4) {
        app = app.dep(d.clone());
        app_bin = app_bin.needs(format!("lib{d}.so"));
    }
    repo.add(app.bin(app_bin));
    repo
}

/// Number of packages in the application's transitive closure.
pub fn closure_size(repo: &Repo) -> usize {
    repo.closure(APP).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_core::{wrap, ShrinkwrapOptions};
    use depchaos_loader::{Environment, GlibcLoader};
    use depchaos_store::StoreInstaller;
    use depchaos_vfs::Vfs;

    #[test]
    fn closure_exceeds_200_dependencies() {
        let r = repo(7);
        let n = closure_size(&r);
        assert!(n > 200, "the paper's Axom claim: got {n}");
        assert!(!r.dep_graph().has_cycle());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(closure_size(&repo(7)), closure_size(&repo(7)));
    }

    #[test]
    fn installs_and_loads_from_a_store() {
        let fs = Vfs::local();
        let r = repo(7);
        let mut store = StoreInstaller::spack_like();
        let app = store.install(&fs, &r, APP).unwrap();
        let bin = format!("{}/{APP}", app.bin_dir);
        let res = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&bin).unwrap();
        assert!(res.success(), "{:?}", res.failures.first());
        assert!(res.library_count() > 200, "loaded {}", res.library_count());
    }

    #[test]
    fn shrinkwrap_pays_off_at_axom_scale() {
        let fs = Vfs::local();
        let r = repo(7);
        let mut store = StoreInstaller::spack_like();
        let app = store.install(&fs, &r, APP).unwrap();
        let bin = format!("{}/{APP}", app.bin_dir);
        let env = Environment::bare();
        let before = GlibcLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap();
        wrap(&fs, &bin, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
        let after = GlibcLoader::new(&fs).with_env(env).load(&bin).unwrap();
        assert!(after.success());
        assert_eq!(after.syscalls.misses, 0);
        assert!(
            before.stat_openat() > 3 * after.stat_openat(),
            "search elimination: {} -> {}",
            before.stat_openat(),
            after.stat_openat()
        );
    }
}

//! The §V-B.2 case study: `libomp.so` vs `libompstubs.so`.
//!
//! The vendor toolchain links `libomp.so` when compiling with OpenMP and
//! `libompstubs.so` otherwise, so OpenMP runtime calls always resolve. Both
//! define the same strong symbols. When parts of an application pull in each
//! one, runtime behaviour depends on load order (first wins); and the
//! needy-executables workaround of §III-D2 — putting the whole closure on
//! the link line — fails with duplicate-symbol errors. Shrinkwrap encodes
//! the load order without a link step, so it preserves whichever order the
//! user built.

use depchaos_elf::{io, ElfObject, Symbol};
use depchaos_vfs::{Vfs, VfsError};

pub const APP: &str = "/work/bin/hybrid_app";
pub const VENDOR_LIB: &str = "/opt/vendor/lib";

/// The OpenMP API surface both libraries export.
pub const OMP_SYMBOLS: &[&str] =
    &["omp_get_num_threads", "omp_get_thread_num", "omp_set_num_threads"];

fn omp_lib(name: &str, real: bool) -> ElfObject {
    let mut b = ElfObject::dso(name).runpath(VENDOR_LIB);
    for s in OMP_SYMBOLS {
        b = b.defines(Symbol::strong(*s));
    }
    // The real runtime also exposes offload entry points.
    if real {
        b = b.defines(Symbol::strong("__tgt_target_kernel"));
    }
    b.build()
}

/// Install the vendor runtime pair and an application whose components pull
/// in both. One runtime is linked directly by the app (loads first, wins the
/// symbol race); the other arrives through a solver library one level down.
/// `stubs_first = true` models the app compiled *without* OpenMP linking an
/// OpenMP-enabled solver — the silent no-threading configuration.
pub fn install_scenario(fs: &Vfs, stubs_first: bool) -> Result<(), VfsError> {
    io::install(fs, &format!("{VENDOR_LIB}/libomp.so"), &omp_lib("libomp.so", true))?;
    io::install(fs, &format!("{VENDOR_LIB}/libompstubs.so"), &omp_lib("libompstubs.so", false))?;
    let (direct, via_solver) =
        if stubs_first { ("libompstubs.so", "libomp.so") } else { ("libomp.so", "libompstubs.so") };
    io::install(
        fs,
        &format!("{VENDOR_LIB}/libsolver.so"),
        &ElfObject::dso("libsolver.so").needs(via_solver).runpath(VENDOR_LIB).build(),
    )?;
    let app = ElfObject::exe("hybrid_app")
        .runpath(VENDOR_LIB)
        .needs(direct)
        .needs("libsolver.so")
        .build();
    io::install(fs, APP, &app)?;
    Ok(())
}

/// Which runtime provides `omp_get_num_threads` after loading?
pub fn winning_runtime(r: &depchaos_loader::LoadResult) -> Option<String> {
    r.bindings().get("omp_get_num_threads").cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::check_link;
    use depchaos_loader::GlibcLoader;

    #[test]
    fn load_order_decides_threading() {
        // App pulled libomp first → real runtime wins → threading works.
        let fs = Vfs::local();
        install_scenario(&fs, false).unwrap();
        let r = GlibcLoader::new(&fs).load(APP).unwrap();
        assert!(r.success());
        assert!(winning_runtime(&r).unwrap().ends_with("libomp.so"));

        // Solver (and its stubs) first → stubs win → silent no-threading.
        let fs2 = Vfs::local();
        install_scenario(&fs2, true).unwrap();
        let r2 = GlibcLoader::new(&fs2).load(APP).unwrap();
        assert!(r2.success(), "loads fine — the bug is behavioural");
        assert!(winning_runtime(&r2).unwrap().ends_with("libompstubs.so"));
    }

    #[test]
    fn needy_executables_link_fails_on_duplicates() {
        // §III-D2's workaround needs both libraries on one link line.
        let fs = Vfs::local();
        install_scenario(&fs, false).unwrap();
        let omp = depchaos_elf::io::peek_object(&fs, &format!("{VENDOR_LIB}/libomp.so")).unwrap();
        let stubs =
            depchaos_elf::io::peek_object(&fs, &format!("{VENDOR_LIB}/libompstubs.so")).unwrap();
        let err = check_link([
            ("libomp.so", omp.symbols.as_slice()),
            ("libompstubs.so", stubs.symbols.as_slice()),
        ])
        .unwrap_err();
        assert!(OMP_SYMBOLS.contains(&err.symbol.as_str()));
    }

    #[test]
    fn both_runtimes_coexist_at_runtime() {
        // At runtime both load without error; interposition handles it.
        let fs = Vfs::local();
        install_scenario(&fs, false).unwrap();
        let r = GlibcLoader::new(&fs).load(APP).unwrap();
        assert!(r.find("libomp.so").is_some());
        assert!(r.find("libompstubs.so").is_some());
    }
}

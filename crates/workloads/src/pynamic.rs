//! The Fig 6 workload: a Pynamic-style MPI application.
//!
//! **Substitution note (DESIGN.md):** LLNL's Pynamic benchmark builds a
//! python/MPI executable with ~900 generated shared libraries. The paper's
//! "bigexe" configuration lists every module as a needed entry on the
//! executable and places "each of them in its own rpath directory" — the
//! worst case for directory-list search. We generate exactly that layout:
//! `n_libs` libraries, each alone in its own directory, all listed as bare
//! needed entries on the executable whose RUNPATH contains all `n_libs`
//! directories.

use depchaos_elf::{io, ElfObject};
use depchaos_vfs::{Vfs, VfsError};

/// Paper configuration: ~900 shared libraries, 213 MiB executable.
pub const N_LIBS_PAPER: usize = 900;
pub const EXE_SIZE_BYTES: u64 = 213 * 1024 * 1024;

/// The generated layout.
#[derive(Debug, Clone)]
pub struct PynamicWorkload {
    pub exe_path: String,
    pub n_libs: usize,
    pub lib_dirs: Vec<String>,
}

impl PynamicWorkload {
    /// Absolute path of every installed module library (one per directory).
    pub fn lib_paths(&self) -> Vec<String> {
        self.lib_dirs.iter().enumerate().map(|(i, d)| format!("{d}/{}", soname_of(i))).collect()
    }
}

fn dir_of(root: &str, i: usize) -> String {
    format!("{root}/pymodule-{i:03}")
}

fn soname_of(i: usize) -> String {
    format!("libpymodule{i:03}.so")
}

/// Install a Pynamic-like application under `root` with `n_libs` modules.
pub fn install(fs: &Vfs, root: &str, n_libs: usize) -> Result<PynamicWorkload, VfsError> {
    let mut lib_dirs = Vec::with_capacity(n_libs);
    for i in 0..n_libs {
        let dir = dir_of(root, i);
        let lib = ElfObject::dso(soname_of(i)).virtual_size(1 << 20).build();
        io::install(fs, &format!("{dir}/{}", soname_of(i)), &lib)?;
        lib_dirs.push(dir);
    }
    let exe_path = format!("{root}/bin/pynamic-bigexe");
    let exe = ElfObject::exe("pynamic-bigexe")
        .needs_all((0..n_libs).map(soname_of))
        .runpath_all(lib_dirs.clone())
        .virtual_size(EXE_SIZE_BYTES)
        .build();
    io::install(fs, &exe_path, &exe)?;
    Ok(PynamicWorkload { exe_path, n_libs, lib_dirs })
}

/// Install at the paper's scale.
pub fn install_paper(fs: &Vfs, root: &str) -> Result<PynamicWorkload, VfsError> {
    install(fs, root, N_LIBS_PAPER)
}

/// The RPATH variant: same per-directory module layout, but the executable
/// carries the directory list as `RPATH` rather than `RUNPATH`, and every
/// module is *also* staged into one flat directory (`{root}/flat`) meant for
/// `LD_LIBRARY_PATH`. Loader semantics then diverge observably: glibc
/// consults RPATH before the environment (quadratic directory scan), musl
/// consults the environment first (one flat-directory hit per module) — the
/// cross-backend contrast the scenario matrix measures.
pub fn install_rpath_variant(
    fs: &Vfs,
    root: &str,
    n_libs: usize,
) -> Result<PynamicWorkload, VfsError> {
    let flat = flat_dir(root);
    let mut lib_dirs = Vec::with_capacity(n_libs);
    for i in 0..n_libs {
        let dir = dir_of(root, i);
        let lib = ElfObject::dso(soname_of(i)).virtual_size(1 << 20).build();
        io::install(fs, &format!("{dir}/{}", soname_of(i)), &lib)?;
        io::install(fs, &format!("{flat}/{}", soname_of(i)), &lib)?;
        lib_dirs.push(dir);
    }
    let exe_path = format!("{root}/bin/pynamic-rpath");
    // A modest executable: this variant exists to expose *search-path*
    // semantics, so metadata traffic — not the 213 MiB bigexe transfer —
    // should dominate its launch profile.
    let exe = ElfObject::exe("pynamic-rpath")
        .needs_all((0..n_libs).map(soname_of))
        .rpath_all(lib_dirs.clone())
        .virtual_size(16 << 20)
        .build();
    io::install(fs, &exe_path, &exe)?;
    Ok(PynamicWorkload { exe_path, n_libs, lib_dirs })
}

/// The flat staging directory [`install_rpath_variant`] fills — the
/// `LD_LIBRARY_PATH` entry of that scenario's environment.
pub fn flat_dir(root: &str) -> String {
    format!("{root}/flat")
}

/// The dlopen variant: python modules loaded at runtime rather than linked.
/// "Shrinkwrap applies because even though the libraries and Python modules
/// are loaded dynamically by the application, they are known at build time
/// and included in the needed list" — this layout models the state *before*
/// that inclusion, for the `declare_dlopens` path.
pub fn install_dlopen_variant(
    fs: &Vfs,
    root: &str,
    n_libs: usize,
) -> Result<PynamicWorkload, VfsError> {
    let mut lib_dirs = Vec::with_capacity(n_libs);
    for i in 0..n_libs {
        let dir = dir_of(root, i);
        io::install(fs, &format!("{dir}/{}", soname_of(i)), &ElfObject::dso(soname_of(i)).build())?;
        lib_dirs.push(dir);
    }
    let exe_path = format!("{root}/bin/pynamic-dlopen");
    let mut b = ElfObject::exe("pynamic-dlopen").runpath_all(lib_dirs.clone());
    for i in 0..n_libs {
        b = b.dlopens(soname_of(i));
    }
    io::install(fs, &exe_path, &b.build())?;
    Ok(PynamicWorkload { exe_path, n_libs, lib_dirs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_loader::{Environment, GlibcLoader};

    #[test]
    fn small_instance_loads() {
        let fs = Vfs::local();
        let w = install(&fs, "/apps/pynamic", 30).unwrap();
        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&w.exe_path).unwrap();
        assert!(r.success(), "{:?}", r.failures);
        assert_eq!(r.library_count(), 30);
    }

    #[test]
    fn search_cost_is_quadratic_in_libs() {
        // Each lib i sits in directory i of the runpath: finding it costs
        // ~i+1 probes, so total stat/openat grows quadratically — the
        // pathology Fig 6 amplifies through NFS.
        let fs = Vfs::local();
        let w = install(&fs, "/apps/pynamic", 40).unwrap();
        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&w.exe_path).unwrap();
        let calls = r.stat_openat();
        let quadratic = (40 * 41) / 2;
        assert!(calls as usize >= quadratic, "expected ≥ {quadratic} probes, got {calls}");
    }

    #[test]
    fn dlopen_variant_wraps_via_declare_dlopens() {
        use depchaos_core::{wrap, OnMissing, ShrinkwrapOptions};
        let fs = Vfs::local();
        let w = install_dlopen_variant(&fs, "/apps/pyd", 25).unwrap();
        let env = Environment::bare();

        // A plain load links nothing: the modules are runtime loads.
        let plain = GlibcLoader::new(&fs).with_env(env.clone()).load(&w.exe_path).unwrap();
        assert_eq!(plain.library_count(), 0);
        // dlopen replay finds them all (searched per call).
        let dl = GlibcLoader::new(&fs).with_env(env.clone()).load_with_dlopen(&w.exe_path).unwrap();
        assert_eq!(dl.library_count(), 25);

        // Shrinkwrap without declaring dlopens freezes nothing but warns.
        // (Wrapping rewrites the binary, so each variant gets a fresh world.)
        let fs_a = Vfs::local();
        let wa = install_dlopen_variant(&fs_a, "/apps/pyd", 25).unwrap();
        let rep = wrap(
            &fs_a,
            &wa.exe_path,
            &ShrinkwrapOptions::new().env(env.clone()).on_missing(OnMissing::Keep),
        )
        .unwrap();
        assert_eq!(rep.frozen_count(), 0);
        assert_eq!(rep.warnings.len(), 25, "one UndeclaredDlopen per module");

        // With declare_dlopens, all 25 are promoted and frozen absolute.
        let rep2 = wrap(
            &fs,
            &w.exe_path,
            &ShrinkwrapOptions::new().env(env.clone()).declare_dlopens(true),
        )
        .unwrap();
        assert_eq!(rep2.frozen_count(), 25);
        let r = GlibcLoader::new(&fs).with_env(env).load(&w.exe_path).unwrap();
        assert_eq!(r.library_count(), 25, "now linked up-front, search-free");
        assert_eq!(r.syscalls.misses, 0);
    }

    #[test]
    fn rpath_variant_diverges_between_glibc_and_musl() {
        use depchaos_loader::MuslLoader;
        let fs = Vfs::local();
        let w = install_rpath_variant(&fs, "/apps/pyr", 20).unwrap();
        let env = Environment::bare().with_ld_library_path(&flat_dir("/apps/pyr"));
        let g = GlibcLoader::new(&fs).with_env(env.clone()).load(&w.exe_path).unwrap();
        let m = MuslLoader::new(&fs).with_env(env).load(&w.exe_path).unwrap();
        assert!(g.success() && m.success());
        // glibc honours RPATH first: quadratic probing of the per-lib dirs.
        assert!(g.stat_openat() as usize >= (20 * 21) / 2);
        // musl checks LD_LIBRARY_PATH first: one flat hit per module.
        assert!((m.stat_openat() as usize) < 3 * 20, "musl went flat: {}", m.stat_openat());
    }

    #[test]
    fn lib_paths_match_layout() {
        let fs = Vfs::local();
        let w = install(&fs, "/a", 5).unwrap();
        let paths = w.lib_paths();
        assert_eq!(paths.len(), 5);
        for p in &paths {
            assert!(fs.exists(p), "{p} installed");
        }
    }

    #[test]
    fn exe_lists_every_module_and_dir() {
        let fs = Vfs::local();
        let w = install(&fs, "/a", 12).unwrap();
        let exe = depchaos_elf::io::peek_object(&fs, &w.exe_path).unwrap();
        assert_eq!(exe.needed.len(), 12);
        assert_eq!(exe.runpath.len(), 12);
        assert_eq!(exe.virtual_size, EXE_SIZE_BYTES);
    }
}

//! A tiny deterministic RNG for workload generation.
//!
//! SplitMix64: stable across platforms and rand-crate versions, so every
//! generated workload is bit-for-bit reproducible from its seed. (The rand
//! crate is still used where distributions are handy; this exists for the
//! hot, stability-critical paths.)

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// An independent substream of `seed`: stream `k` of a seed is a
    /// generator decorrelated from every other stream of the same seed (and
    /// from the base generator itself, except stream 0 which *is*
    /// `SplitMix::new(seed)`). This is how per-node / per-replicate draws
    /// stay reproducible without sharing one sequential generator: consumer
    /// `k` takes `split(seed, k)` and draws at its own pace.
    pub fn split(seed: u64, stream: u64) -> SplitMix {
        if stream == 0 {
            return SplitMix::new(seed);
        }
        // One SplitMix finalisation step over the stream index keeps
        // neighbouring streams far apart in the state space.
        SplitMix { state: seed ^ SplitMix::new(stream).next_u64() }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection-free multiply-shift; bias is negligible for our n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample an index from cumulative weights (binary search).
    /// `cum` must be nondecreasing with a positive final value.
    pub fn weighted(&mut self, cum: &[f64]) -> usize {
        let total = *cum.last().expect("nonempty weights");
        let x = self.unit() * total;
        match cum.binary_search_by(|w| w.partial_cmp(&x).unwrap()) {
            Ok(i) => (i + 1).min(cum.len() - 1),
            Err(i) => i.min(cum.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix::new(43);
        assert_ne!(SplitMix::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn split_streams_are_decorrelated_and_reproducible() {
        // Stream 0 is the base generator; other streams differ from it, from
        // each other, and reproduce from (seed, stream) alone.
        assert_eq!(SplitMix::split(42, 0).next_u64(), SplitMix::new(42).next_u64());
        let firsts: Vec<u64> = (0..64).map(|s| SplitMix::split(42, s).next_u64()).collect();
        let mut uniq = firsts.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), firsts.len(), "streams collide");
        assert_eq!(SplitMix::split(42, 7).next_u64(), SplitMix::split(42, 7).next_u64());
        assert_ne!(SplitMix::split(42, 7).next_u64(), SplitMix::split(43, 7).next_u64());
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut r = SplitMix::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SplitMix::new(9);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn weighted_respects_mass() {
        // weight 0 bucket never drawn; heavy bucket dominates.
        let cum = vec![0.0, 0.9, 1.0];
        let mut r = SplitMix::new(11);
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[r.weighted(&cum)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 5);
    }
}

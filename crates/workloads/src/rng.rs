//! A tiny deterministic RNG for workload generation.
//!
//! SplitMix64: stable across platforms and rand-crate versions, so every
//! generated workload is bit-for-bit reproducible from its seed. (The rand
//! crate is still used where distributions are handy; this exists for the
//! hot, stability-critical paths.)

/// SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Stream domain for DES per-node service-factor draws
    /// (`depchaos-launch`): node `i` of a simulation seed draws from
    /// `split(seed, NODE, i)`.
    pub const NODE: u64 = 0x4E4F_4445_0000_0001;
    /// Stream domain for seeded replicate fan-out: replicate `r ≥ 1` of a
    /// base seed simulates under `split(seed, REPLICATE, r).next_u64()`.
    pub const REPLICATE: u64 = 0x5245_504C_0000_0002;
    /// Stream domain for per-scenario (workload cell) seed derivation: the
    /// experiment engine folds a label digest through
    /// `split(seed, WORKLOAD, digest)`.
    pub const WORKLOAD: u64 = 0x574F_524B_0000_0003;
    /// Stream domain for DES fault-injection draws (`depchaos-launch`):
    /// cold node `i` of a simulation seed draws its RPC-loss verdicts and
    /// straggler membership from `split(seed, FAULT, i)` — decorrelated
    /// from the same node's NODE-domain service factors so a faulted and a
    /// fault-free cell share service draws (common random numbers).
    pub const FAULT: u64 = 0x4641_554C_0000_0004;

    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// The SplitMix64 finalizer: the value `next_u64` would draw from state
    /// `x`. Used by [`SplitMix::split`] to put every derived stream a full
    /// avalanche away from its inputs.
    fn finalize(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// An independent substream of `seed`: stream `k` of a *domain* of a
    /// seed is a generator decorrelated from every other `(domain, stream)`
    /// pair of the same seed, from every stream of every other seed, and
    /// from the base generator `SplitMix::new(seed)` itself. This is how
    /// per-node / per-replicate / per-scenario draws stay reproducible
    /// without sharing one sequential generator: consumer `k` of domain `d`
    /// takes `split(seed, d, k)` and draws at its own pace.
    ///
    /// Both the domain and the stream index go through the **full**
    /// finalizer before touching the seed, and the combined state is
    /// finalized once more. The previous scheme (`seed ^ finalize(stream)`,
    /// stream 0 passed through verbatim) left two aliases the launch crate
    /// actually hit: stream 0 *was* the base generator, and a value drawn
    /// *from* stream `k` (a replicate seed) equalled the raw *state* of
    /// stream `k` in another consumer's domain (node `k`'s service draws) —
    /// correlating numbers that were documented as independent.
    pub fn split(seed: u64, domain: u64, stream: u64) -> SplitMix {
        SplitMix { state: Self::finalize(seed ^ Self::finalize(domain ^ Self::finalize(stream))) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Rejection-free multiply-shift; bias is negligible for our n.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Sample an index from cumulative weights (binary search).
    /// `cum` must be nondecreasing with a positive final value.
    pub fn weighted(&mut self, cum: &[f64]) -> usize {
        let total = *cum.last().expect("nonempty weights");
        let x = self.unit() * total;
        match cum.binary_search_by(|w| w.partial_cmp(&x).unwrap()) {
            Ok(i) => (i + 1).min(cum.len() - 1),
            Err(i) => i.min(cum.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix::new(43);
        assert_ne!(SplitMix::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn split_streams_are_decorrelated_and_reproducible() {
        // Every (domain, stream) differs from the base generator — stream 0
        // included — from each other, and reproduces from (seed, domain,
        // stream) alone.
        assert_ne!(
            SplitMix::split(42, SplitMix::NODE, 0).next_u64(),
            SplitMix::new(42).next_u64(),
            "stream 0 must not alias the base generator"
        );
        let firsts: Vec<u64> =
            (0..64).map(|s| SplitMix::split(42, SplitMix::NODE, s).next_u64()).collect();
        let mut uniq = firsts.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), firsts.len(), "streams collide");
        assert_eq!(
            SplitMix::split(42, SplitMix::NODE, 7).next_u64(),
            SplitMix::split(42, SplitMix::NODE, 7).next_u64()
        );
        assert_ne!(
            SplitMix::split(42, SplitMix::NODE, 7).next_u64(),
            SplitMix::split(43, SplitMix::NODE, 7).next_u64()
        );
    }

    #[test]
    fn domains_are_decorrelated_from_each_other_and_from_states() {
        // The regression the launch crate hit: a value *drawn from* one
        // domain's stream k must collide with neither the first draw nor
        // the raw state of another domain's stream k — across domains,
        // streams, and a spread of seeds.
        let domains = [SplitMix::NODE, SplitMix::REPLICATE, SplitMix::WORKLOAD, SplitMix::FAULT];
        for seed in [0u64, 1, 42, u64::MAX, 0xD15_7A5ED] {
            let mut seen = std::collections::HashSet::new();
            for &d in &domains {
                for k in 0..32u64 {
                    let mut g = SplitMix::split(seed, d, k);
                    let state_alias = SplitMix::split(seed, d, k);
                    assert!(seen.insert(g.next_u64()), "first draw collides ({d:#x}, {k})");
                    // The state itself (what the pre-fix scheme leaked as
                    // another domain's draw) is also unique across domains.
                    assert!(seen.insert(state_alias.state), "state collides ({d:#x}, {k})");
                }
            }
        }
    }

    #[test]
    fn below_in_range_and_covers() {
        let mut r = SplitMix::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SplitMix::new(9);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn weighted_respects_mass() {
        // weight 0 bucket never drawn; heavy bucket dominates.
        let cum = vec![0.0, 0.9, 1.0];
        let mut r = SplitMix::new(11);
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[r.weighted(&cum)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > counts[2] * 5);
    }
}

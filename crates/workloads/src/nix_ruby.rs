//! The Nix Ruby closure (Fig 2): a 453-node build/runtime dependency graph.
//!
//! **Substitution note (DESIGN.md):** Fig 2 renders the actual derivation
//! graph of Ruby 2.7.5 in nixpkgs — "so dense ... it's nigh illegible". The
//! figure's content is qualitative: 453 nodes, a layered bootstrap (stage0→
//! stage4), a band of core toolchain packages, and a fringe of source
//! tarballs and patches. We reconstruct that topology deterministically with
//! names taken from the figure itself.

use depchaos_graph::{DepGraph, NodeId};

use crate::rng::SplitMix;

/// Number of nodes in the paper's figure.
pub const RUBY_CLOSURE_SIZE: usize = 453;

/// Core toolchain derivations named in Fig 2 (one bootstrap copy each is
/// plenty for topology purposes).
const CORE: &[&str] = &[
    "gcc-10.3.0.drv",
    "gcc-wrapper-10.3.0.drv",
    "stdenv-linux.drv",
    "glibc-2.33-56.drv",
    "binutils-2.35.2.drv",
    "binutils-wrapper-2.35.2.drv",
    "coreutils-9.0.drv",
    "bash-5.1-p12.drv",
    "gnumake-4.3.drv",
    "gnused-4.8.drv",
    "gnugrep-3.7.drv",
    "gawk-5.1.1.drv",
    "gnutar-1.34.drv",
    "gzip-1.11.drv",
    "bzip2-1.0.6.0.2.drv",
    "xz-5.2.5.drv",
    "patch-2.7.6.drv",
    "patchelf-0.13.drv",
    "pkg-config-0.29.2.drv",
    "perl-5.34.0.drv",
    "python3-minimal-3.9.6.drv",
    "zlib-1.2.11.drv",
    "diffutils-3.8.drv",
    "findutils-4.8.0.drv",
];

/// Direct dependencies of the ruby derivation, from the figure.
const RUBY_DEPS: &[&str] = &[
    "openssl-1.1.1l.drv",
    "libffi-3.4.2.drv",
    "ncurses-6.2.drv",
    "readline-6.3p08.drv",
    "libyaml-0.2.5.drv",
    "gdbm-1.20.drv",
    "bison-3.8.2.drv",
    "autoconf-2.71.drv",
    "automake-1.16.3.drv",
    "libtool-2.4.6.drv",
    "groff-1.22.4.drv",
    "rubygems.drv",
    "curl-7.79.1.drv",
];

/// Build the Ruby closure graph: exactly [`RUBY_CLOSURE_SIZE`] nodes.
pub fn closure(seed: u64) -> DepGraph {
    let mut g = DepGraph::new();
    let mut rng = SplitMix::new(seed);

    let ruby = g.add_node("ruby-2.7.5.drv");

    // Bootstrap chain: stage4 → stage3 → ... → stage0 → bootstrap-tools.
    let mut stages: Vec<NodeId> = Vec::new();
    for s in (0..5).rev() {
        let id = g.add_node(format!("bootstrap-stage{s}-stdenv-linux.drv"));
        if let Some(&prev) = stages.last() {
            g.add_edge(prev, id);
        }
        stages.push(id);
    }
    let tools = g.add_node("bootstrap-tools.drv");
    g.add_edge(*stages.last().unwrap(), tools);

    // Core toolchain: everything depends on stdenv; stdenv on stage4.
    let mut core_ids = Vec::new();
    for name in CORE {
        let id = g.add_node(*name);
        core_ids.push(id);
    }
    let stdenv = g.lookup("stdenv-linux.drv").unwrap();
    g.add_edge(stdenv, stages[0]);
    for &id in &core_ids {
        if id != stdenv {
            g.add_edge(id, stdenv);
        }
    }

    // Ruby's direct deps, each depending on stdenv and 1–3 random core tools.
    let mut dep_ids = Vec::new();
    for name in RUBY_DEPS {
        let id = g.add_node(*name);
        dep_ids.push(id);
        g.add_edge(ruby, id);
        g.add_edge(id, stdenv);
        for _ in 0..1 + rng.below(3) {
            let t = core_ids[rng.below(core_ids.len() as u64) as usize];
            if t != id {
                g.add_edge(id, t);
            }
        }
    }
    let gcc_wrapper = g.lookup("gcc-wrapper-10.3.0.drv").unwrap();
    g.add_edge(ruby, gcc_wrapper);
    g.add_edge(ruby, stdenv);

    // Fringe: source tarballs, patches, setup hooks — the long tail that
    // makes the figure a snarl. Attach each to a random existing package
    // until the node budget is exactly met.
    let fringe_kinds = ["tar.gz.drv", "tar.xz.drv", "patch.drv", "setup-hook.sh", "builder.sh"];
    let mut owners: Vec<NodeId> = Vec::new();
    owners.push(ruby);
    owners.extend(&core_ids);
    owners.extend(&dep_ids);
    let mut i = 0usize;
    while g.node_count() < RUBY_CLOSURE_SIZE {
        let owner = owners[rng.below(owners.len() as u64) as usize];
        let kind = fringe_kinds[rng.below(fringe_kinds.len() as u64) as usize];
        let leaf = g.add_node(format!("src-{i}-{kind}"));
        g.add_edge(owner, leaf);
        i += 1;
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_453_nodes() {
        let g = closure(2022);
        assert_eq!(g.node_count(), RUBY_CLOSURE_SIZE);
    }

    #[test]
    fn acyclic_and_rooted_at_ruby() {
        let g = closure(2022);
        assert!(!g.has_cycle(), "derivation graphs are DAGs");
        let ruby = g.lookup("ruby-2.7.5.drv").unwrap();
        let reach = g.closure_bfs(ruby);
        // Ruby reaches the overwhelming majority of the closure.
        assert!(reach.len() > RUBY_CLOSURE_SIZE / 2, "reached {}", reach.len());
    }

    #[test]
    fn bootstrap_chain_present() {
        let g = closure(2022);
        let s4 = g.lookup("bootstrap-stage4-stdenv-linux.drv").unwrap();
        let s0 = g.lookup("bootstrap-stage0-stdenv-linux.drv").unwrap();
        assert!(g.closure_bfs(s4).contains(&s0), "stage4 transitively needs stage0");
    }

    #[test]
    fn deterministic() {
        let a = closure(5);
        let b = closure(5);
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn dot_export_renders() {
        let g = closure(2022);
        let dot = depchaos_graph::dot::to_dot(&g, "ruby-2.7.5");
        assert!(dot.contains("ruby-2.7.5.drv"));
        assert!(dot.lines().count() > RUBY_CLOSURE_SIZE);
    }
}

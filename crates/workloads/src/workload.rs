//! The [`Workload`] trait: a nameable, installable application.
//!
//! The scenario-matrix engine (`depchaos-launch`) enumerates workloads as
//! one experiment axis, so each one must be expressible as data: a stable
//! name for cache keys and report rows, an `install` that builds the world
//! into any [`Vfs`], and the environment the application is launched under.
//! The per-module generators ([`crate::pynamic`], [`crate::emacs`], ...)
//! stay the primitive API; implementations here are thin adapters over
//! them.

use depchaos_loader::Environment;
use depchaos_store::{StoreError, StoreInstaller};
use depchaos_vfs::{Vfs, VfsError};

use crate::{axom, emacs, pynamic, rocm};

/// What [`Workload::install`] produced: the executable to launch and the
/// library files placed — enough for harnesses to wrap, profile, or index
/// the world (e.g. building a hash-store manifest) without re-deriving the
/// layout.
#[derive(Debug, Clone)]
pub struct InstalledWorkload {
    pub exe_path: String,
    pub lib_paths: Vec<String>,
}

/// A named, installable application the experiment matrix can enumerate.
pub trait Workload: Send + Sync {
    /// Stable identity: used as a profile-cache key component and a report
    /// column, so two configurations that install different worlds must
    /// carry different names.
    fn name(&self) -> &str;

    /// Build the world into `fs` (unaccounted package installation).
    fn install(&self, fs: &Vfs) -> Result<InstalledWorkload, VfsError>;

    /// The environment the application launches under. Defaults to bare —
    /// the paper's measurement configuration.
    fn environment(&self) -> Environment {
        Environment::bare()
    }
}

/// The Fig 6 workload: Pynamic-style MPI application, `n_libs` modules each
/// alone in its own RUNPATH directory (see [`pynamic::install`]).
#[derive(Debug, Clone)]
pub struct Pynamic {
    name: String,
    n_libs: usize,
}

impl Pynamic {
    pub fn new(n_libs: usize) -> Self {
        Pynamic { name: format!("pynamic-{n_libs}"), n_libs }
    }

    /// The paper's ~900-library configuration.
    pub fn paper() -> Self {
        Self::new(pynamic::N_LIBS_PAPER)
    }

    pub fn n_libs(&self) -> usize {
        self.n_libs
    }
}

impl Workload for Pynamic {
    fn name(&self) -> &str {
        &self.name
    }

    fn install(&self, fs: &Vfs) -> Result<InstalledWorkload, VfsError> {
        let w = pynamic::install(fs, "/apps/pynamic", self.n_libs)?;
        Ok(InstalledWorkload { exe_path: w.exe_path.clone(), lib_paths: w.lib_paths() })
    }
}

/// The RPATH variant of Pynamic (see [`pynamic::install_rpath_variant`]):
/// launched with `LD_LIBRARY_PATH` pointing at the flat staging directory,
/// so glibc (RPATH first) and musl (environment first) produce visibly
/// different op streams over the *same* world.
#[derive(Debug, Clone)]
pub struct PynamicRpath {
    name: String,
    n_libs: usize,
}

impl PynamicRpath {
    const ROOT: &'static str = "/apps/pynamic-rpath";

    pub fn new(n_libs: usize) -> Self {
        PynamicRpath { name: format!("pynamic-rpath-{n_libs}"), n_libs }
    }
}

impl Workload for PynamicRpath {
    fn name(&self) -> &str {
        &self.name
    }

    fn install(&self, fs: &Vfs) -> Result<InstalledWorkload, VfsError> {
        let w = pynamic::install_rpath_variant(fs, Self::ROOT, self.n_libs)?;
        Ok(InstalledWorkload { exe_path: w.exe_path.clone(), lib_paths: w.lib_paths() })
    }

    fn environment(&self) -> Environment {
        Environment::bare().with_ld_library_path(&pynamic::flat_dir(Self::ROOT))
    }
}

/// The Table II workload: emacs-as-built-by-Nix (see [`emacs::install`]).
#[derive(Debug, Clone, Default)]
pub struct Emacs;

impl Workload for Emacs {
    fn name(&self) -> &str {
        "emacs"
    }

    fn install(&self, fs: &Vfs) -> Result<InstalledWorkload, VfsError> {
        let w = emacs::install(fs)?;
        Ok(InstalledWorkload { exe_path: w.exe_path, lib_paths: w.lib_paths })
    }
}

/// The §I motivation workload: a multiphysics application atop an
/// Axom-scale Spack stack (see [`axom::repo`]) — >200 packages in the
/// closure, every library RUNPATH-linked through a content-addressed
/// store. The seed wires the cross-layer fan-out; layer structure and
/// scale are fixed.
#[derive(Debug, Clone)]
pub struct Axom {
    name: String,
    seed: u64,
}

impl Axom {
    pub fn new(seed: u64) -> Self {
        Axom { name: format!("axom-{seed}"), seed }
    }

    /// The seed the in-repo Axom experiments use throughout.
    pub fn paper() -> Self {
        Self::new(7)
    }
}

impl Workload for Axom {
    fn name(&self) -> &str {
        &self.name
    }

    fn install(&self, fs: &Vfs) -> Result<InstalledWorkload, VfsError> {
        let repo = axom::repo(self.seed);
        let mut store = StoreInstaller::spack_like();
        let app = store.install(fs, &repo, axom::APP).map_err(|e| match e {
            StoreError::Fs(e) => e,
            // Unreachable for a generated repo; surface it as a lookup miss.
            StoreError::UnknownPackage(p) => VfsError::NotFound(p),
        })?;
        let exe_path = format!("{}/{}", app.bin_dir, axom::APP);
        let mut lib_paths = Vec::new();
        for pkg in repo.closure(axom::APP) {
            if let (Some(installed), Some(def)) = (store.get(&pkg), repo.get(&pkg)) {
                for soname in def.provided_sonames() {
                    lib_paths.push(format!("{}/{soname}", installed.lib_dir));
                }
            }
        }
        Ok(InstalledWorkload { exe_path, lib_paths })
    }
}

/// The §V-B.1 workload: the ROCm GPU application (app built against 4.5,
/// both 4.5 and 4.3 on disk, site modules setting `LD_LIBRARY_PATH`).
/// [`Rocm::matched`] loads the matching `rocm/4.5.0` module — a consistent
/// world with a RUNPATH/LD_LIBRARY_PATH-shaped op stream unlike any
/// Pynamic variant. [`Rocm::mixed`] loads the wrong `rocm/4.3.0` module:
/// the load *succeeds* while mixing ABI versions, so the matrix carries the
/// paper's segfault scenario as an ordinary cell.
#[derive(Debug, Clone)]
pub struct Rocm {
    name: &'static str,
    module: &'static str,
    module_version: &'static str,
}

impl Rocm {
    /// App and module agree on ROCm 4.5 — the healthy configuration.
    pub fn matched() -> Self {
        Rocm { name: "rocm-4.5", module: "rocm/4.5.0", module_version: "4.5.0" }
    }

    /// The 4.3 module under the 4.5 app — the mixed-ABI load of §V-B.1.
    pub fn mixed() -> Self {
        Rocm { name: "rocm-mixed", module: "rocm/4.3.0", module_version: "4.3.0" }
    }
}

impl Workload for Rocm {
    fn name(&self) -> &str {
        self.name
    }

    fn install(&self, fs: &Vfs) -> Result<InstalledWorkload, VfsError> {
        rocm::install_scenario(fs)?;
        // Report the module version's libraries: the set LD_LIBRARY_PATH
        // exposes, and (for `matched`) the one the load resolves against.
        Ok(InstalledWorkload {
            exe_path: rocm::APP.to_string(),
            lib_paths: rocm::lib_paths(self.module_version),
        })
    }

    fn environment(&self) -> Environment {
        let mut ms = rocm::module_system();
        ms.load(self.module).expect("static module tree provides every rocm module");
        ms.environment(Environment::default())
    }
}

/// A workload whose install **panics** (not an `Err`) — the fault-injection
/// fixture for the serve layer's panic isolation: one poisoned cell in a
/// batch must not take the rest of the batch (or the process) down. Never
/// enumerated by default; callers opt in by name.
#[derive(Debug, Clone, Default)]
pub struct Poison;

impl Workload for Poison {
    fn name(&self) -> &str {
        "poison"
    }

    fn install(&self, _fs: &Vfs) -> Result<InstalledWorkload, VfsError> {
        panic!("poison workload: deliberate install panic");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_loader::{GlibcLoader, Loader};

    fn loads_clean(w: &dyn Workload) {
        let fs = Vfs::local();
        let inst = w.install(&fs).unwrap();
        let loader = GlibcLoader::new(&fs).with_env(w.environment());
        let r = Loader::load(&loader, &inst.exe_path).unwrap();
        assert!(r.success(), "{} should load: {:?}", w.name(), r.failures);
        for p in &inst.lib_paths {
            assert!(fs.exists(p), "{}: reported lib {p} missing", w.name());
        }
    }

    #[test]
    fn every_stock_workload_installs_and_loads() {
        loads_clean(&Pynamic::new(25));
        loads_clean(&PynamicRpath::new(25));
        loads_clean(&Emacs);
        loads_clean(&Axom::new(7));
        loads_clean(&Rocm::matched());
        loads_clean(&Rocm::mixed()); // loads fine — that's the insidious part
    }

    #[test]
    fn names_encode_scale() {
        assert_eq!(Pynamic::new(200).name(), "pynamic-200");
        assert_eq!(Pynamic::paper().name(), "pynamic-900");
        assert_eq!(PynamicRpath::new(64).name(), "pynamic-rpath-64");
        assert_eq!(Emacs.name(), "emacs");
        assert_eq!(Axom::paper().name(), "axom-7");
        assert_eq!(Rocm::matched().name(), "rocm-4.5");
        assert_eq!(Rocm::mixed().name(), "rocm-mixed");
    }

    #[test]
    fn axom_reports_its_whole_closure() {
        let fs = Vfs::local();
        let inst = Axom::paper().install(&fs).unwrap();
        assert!(inst.lib_paths.len() > 200, "the paper's >200-dependency claim");
        let uniq: std::collections::HashSet<&String> = inst.lib_paths.iter().collect();
        assert_eq!(uniq.len(), inst.lib_paths.len(), "no duplicate lib files");
    }

    #[test]
    fn rocm_variants_differ_only_in_module_environment() {
        let fs = Vfs::local();
        let matched = Rocm::matched().install(&fs).unwrap();
        let mixed = Rocm::mixed().install(&Vfs::local()).unwrap();
        assert_eq!(matched.exe_path, mixed.exe_path);
        assert_ne!(matched.lib_paths, mixed.lib_paths, "each reports its module's world");
        // The mixed module really mixes ABI versions at load time.
        let loader = GlibcLoader::new(&fs).with_env(Rocm::mixed().environment());
        let r = Loader::load(&loader, &matched.exe_path).unwrap();
        assert!(r.success());
        assert_eq!(crate::rocm::versions_loaded(&r), vec!["4.3.0", "4.5.0"]);
    }

    #[test]
    fn workloads_are_object_safe_and_shareable() {
        let ws: Vec<std::sync::Arc<dyn Workload>> =
            vec![std::sync::Arc::new(Pynamic::new(10)), std::sync::Arc::new(Emacs)];
        let names: Vec<&str> = ws.iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["pynamic-10", "emacs"]);
    }
}

//! The [`Workload`] trait: a nameable, installable application.
//!
//! The scenario-matrix engine (`depchaos-launch`) enumerates workloads as
//! one experiment axis, so each one must be expressible as data: a stable
//! name for cache keys and report rows, an `install` that builds the world
//! into any [`Vfs`], and the environment the application is launched under.
//! The per-module generators ([`crate::pynamic`], [`crate::emacs`], ...)
//! stay the primitive API; implementations here are thin adapters over
//! them.

use depchaos_loader::Environment;
use depchaos_vfs::{Vfs, VfsError};

use crate::{emacs, pynamic};

/// What [`Workload::install`] produced: the executable to launch and the
/// library files placed — enough for harnesses to wrap, profile, or index
/// the world (e.g. building a hash-store manifest) without re-deriving the
/// layout.
#[derive(Debug, Clone)]
pub struct InstalledWorkload {
    pub exe_path: String,
    pub lib_paths: Vec<String>,
}

/// A named, installable application the experiment matrix can enumerate.
pub trait Workload: Send + Sync {
    /// Stable identity: used as a profile-cache key component and a report
    /// column, so two configurations that install different worlds must
    /// carry different names.
    fn name(&self) -> &str;

    /// Build the world into `fs` (unaccounted package installation).
    fn install(&self, fs: &Vfs) -> Result<InstalledWorkload, VfsError>;

    /// The environment the application launches under. Defaults to bare —
    /// the paper's measurement configuration.
    fn environment(&self) -> Environment {
        Environment::bare()
    }
}

/// The Fig 6 workload: Pynamic-style MPI application, `n_libs` modules each
/// alone in its own RUNPATH directory (see [`pynamic::install`]).
#[derive(Debug, Clone)]
pub struct Pynamic {
    name: String,
    n_libs: usize,
}

impl Pynamic {
    pub fn new(n_libs: usize) -> Self {
        Pynamic { name: format!("pynamic-{n_libs}"), n_libs }
    }

    /// The paper's ~900-library configuration.
    pub fn paper() -> Self {
        Self::new(pynamic::N_LIBS_PAPER)
    }

    pub fn n_libs(&self) -> usize {
        self.n_libs
    }
}

impl Workload for Pynamic {
    fn name(&self) -> &str {
        &self.name
    }

    fn install(&self, fs: &Vfs) -> Result<InstalledWorkload, VfsError> {
        let w = pynamic::install(fs, "/apps/pynamic", self.n_libs)?;
        Ok(InstalledWorkload { exe_path: w.exe_path.clone(), lib_paths: w.lib_paths() })
    }
}

/// The RPATH variant of Pynamic (see [`pynamic::install_rpath_variant`]):
/// launched with `LD_LIBRARY_PATH` pointing at the flat staging directory,
/// so glibc (RPATH first) and musl (environment first) produce visibly
/// different op streams over the *same* world.
#[derive(Debug, Clone)]
pub struct PynamicRpath {
    name: String,
    n_libs: usize,
}

impl PynamicRpath {
    const ROOT: &'static str = "/apps/pynamic-rpath";

    pub fn new(n_libs: usize) -> Self {
        PynamicRpath { name: format!("pynamic-rpath-{n_libs}"), n_libs }
    }
}

impl Workload for PynamicRpath {
    fn name(&self) -> &str {
        &self.name
    }

    fn install(&self, fs: &Vfs) -> Result<InstalledWorkload, VfsError> {
        let w = pynamic::install_rpath_variant(fs, Self::ROOT, self.n_libs)?;
        Ok(InstalledWorkload { exe_path: w.exe_path.clone(), lib_paths: w.lib_paths() })
    }

    fn environment(&self) -> Environment {
        Environment::bare().with_ld_library_path(&pynamic::flat_dir(Self::ROOT))
    }
}

/// The Table II workload: emacs-as-built-by-Nix (see [`emacs::install`]).
#[derive(Debug, Clone, Default)]
pub struct Emacs;

impl Workload for Emacs {
    fn name(&self) -> &str {
        "emacs"
    }

    fn install(&self, fs: &Vfs) -> Result<InstalledWorkload, VfsError> {
        let w = emacs::install(fs)?;
        Ok(InstalledWorkload { exe_path: w.exe_path, lib_paths: w.lib_paths })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_loader::{GlibcLoader, Loader};

    fn loads_clean(w: &dyn Workload) {
        let fs = Vfs::local();
        let inst = w.install(&fs).unwrap();
        let loader = GlibcLoader::new(&fs).with_env(w.environment());
        let r = Loader::load(&loader, &inst.exe_path).unwrap();
        assert!(r.success(), "{} should load: {:?}", w.name(), r.failures);
        for p in &inst.lib_paths {
            assert!(fs.exists(p), "{}: reported lib {p} missing", w.name());
        }
    }

    #[test]
    fn every_stock_workload_installs_and_loads() {
        loads_clean(&Pynamic::new(25));
        loads_clean(&PynamicRpath::new(25));
        loads_clean(&Emacs);
    }

    #[test]
    fn names_encode_scale() {
        assert_eq!(Pynamic::new(200).name(), "pynamic-200");
        assert_eq!(Pynamic::paper().name(), "pynamic-900");
        assert_eq!(PynamicRpath::new(64).name(), "pynamic-rpath-64");
        assert_eq!(Emacs.name(), "emacs");
    }

    #[test]
    fn workloads_are_object_safe_and_shareable() {
        let ws: Vec<std::sync::Arc<dyn Workload>> =
            vec![std::sync::Arc::new(Pynamic::new(10)), std::sync::Arc::new(Emacs)];
        let names: Vec<&str> = ws.iter().map(|w| w.name()).collect();
        assert_eq!(names, vec!["pynamic-10", "emacs"]);
    }
}

//! The Fig 3 paradox: no search-path ordering can be correct.
//!
//! Two directories each contain a `liba.so` and a `libb.so`; the desired
//! pair is `dirA/liba.so` and `dirB/libb.so`. Because `RPATH`, `RUNPATH`,
//! and `LD_LIBRARY_PATH` are *directory* lists applied uniformly to every
//! lookup, whichever directory is searched first supplies **both**
//! libraries. [`any_ordering_correct`] proves the impossibility by
//! exhaustion; Shrinkwrap dissolves it with per-dependency absolute paths.

use depchaos_elf::{io, ElfObject, Symbol};
use depchaos_vfs::{Vfs, VfsError};

pub const DIR_A: &str = "/opt/dirA";
pub const DIR_B: &str = "/opt/dirB";
pub const EXE: &str = "/opt/bin/paradox_app";

/// Marker symbol carried only by the *wanted* copies.
pub const WANTED: &str = "wanted_version";

/// Install the layout. The wanted copies (`dirA/liba.so`, `dirB/libb.so`)
/// define [`WANTED`]; the decoys don't.
pub fn install(fs: &Vfs) -> Result<(), VfsError> {
    let wanted = |name: &str| ElfObject::dso(name).defines(Symbol::strong(WANTED)).build();
    let decoy = |name: &str| ElfObject::dso(name).build();
    io::install(fs, &format!("{DIR_A}/liba.so"), &wanted("liba.so"))?;
    io::install(fs, &format!("{DIR_A}/libb.so"), &decoy("libb.so"))?;
    io::install(fs, &format!("{DIR_B}/liba.so"), &decoy("liba.so"))?;
    io::install(fs, &format!("{DIR_B}/libb.so"), &wanted("libb.so"))?;
    io::install(fs, EXE, &ElfObject::exe("paradox_app").needs("liba.so").needs("libb.so").build())?;
    Ok(())
}

/// Did a load resolve the *wanted* pair?
pub fn is_correct(r: &depchaos_loader::LoadResult) -> bool {
    let a_ok = r.find("liba.so").map(|o| o.path == format!("{DIR_A}/liba.so")).unwrap_or(false);
    let b_ok = r.find("libb.so").map(|o| o.path == format!("{DIR_B}/libb.so")).unwrap_or(false);
    a_ok && b_ok
}

/// Run the executable under every ordering of the two directories on each
/// search mechanism (RPATH, RUNPATH, LD_LIBRARY_PATH) and report whether any
/// ordering produced the wanted pair.
pub fn any_ordering_correct(fs: &Vfs) -> bool {
    use depchaos_elf::ElfEditor;
    use depchaos_loader::{Environment, GlibcLoader};

    let orderings =
        [vec![DIR_A.to_string(), DIR_B.to_string()], vec![DIR_B.to_string(), DIR_A.to_string()]];
    for dirs in &orderings {
        // RPATH on the executable.
        ElfEditor::open(fs, EXE).unwrap().set_rpath(dirs.clone()).unwrap();
        let r = GlibcLoader::new(fs).with_env(Environment::bare()).load(EXE).unwrap();
        if is_correct(&r) {
            return true;
        }
        // RUNPATH on the executable.
        ElfEditor::open(fs, EXE).unwrap().set_runpath(dirs.clone()).unwrap();
        let r = GlibcLoader::new(fs).with_env(Environment::bare()).load(EXE).unwrap();
        if is_correct(&r) {
            return true;
        }
        // LD_LIBRARY_PATH, with a clean binary.
        ElfEditor::open(fs, EXE).unwrap().remove_rpath().unwrap();
        let env = Environment::bare().with_ld_library_path(&dirs.join(":"));
        let r = GlibcLoader::new(fs).with_env(env).load(EXE).unwrap();
        if is_correct(&r) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::ElfEditor;
    use depchaos_loader::{Environment, GlibcLoader};

    #[test]
    fn no_ordering_is_correct() {
        let fs = Vfs::local();
        install(&fs).unwrap();
        assert!(!any_ordering_correct(&fs), "Fig 3: the layout is unsolvable by ordering");
    }

    #[test]
    fn absolute_paths_dissolve_the_paradox() {
        // What Shrinkwrap produces: per-dependency paths, not directories.
        let fs = Vfs::local();
        install(&fs).unwrap();
        ElfEditor::open(&fs, EXE)
            .unwrap()
            .set_needed(vec![format!("{DIR_A}/liba.so"), format!("{DIR_B}/libb.so")])
            .unwrap();
        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(EXE).unwrap();
        assert!(r.success());
        assert!(is_correct(&r));
    }

    #[test]
    fn every_ordering_still_loads_something() {
        // The trap: nothing *fails* — the wrong libraries load fine.
        let fs = Vfs::local();
        install(&fs).unwrap();
        ElfEditor::open(&fs, EXE)
            .unwrap()
            .set_runpath(vec![DIR_A.to_string(), DIR_B.to_string()])
            .unwrap();
        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(EXE).unwrap();
        assert!(r.success(), "loads without error");
        assert!(!is_correct(&r), "...but with the wrong libb");
    }
}

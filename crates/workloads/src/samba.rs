//! The Listing 1 scenario: `libtree /usr/bin/dbwrap_tool`.
//!
//! Samba's `dbwrap_tool` and most of its libraries carry a RUNPATH, but
//! `libsamba-modules-samba4.so` — four levels down — has none. It needs
//! `libsamba-debug-samba4.so`, which its own search cannot find; the binary
//! works only because an earlier library with a correct RUNPATH already
//! loaded it into the soname cache. `libtree` (static, per-object analysis)
//! prints `not found` for exactly that edge.

use depchaos_elf::{io, ElfObject};
use depchaos_vfs::{Vfs, VfsError};

/// Where the tool installs.
pub const TOOL_PATH: &str = "/usr/bin/dbwrap_tool";
/// The library whose RUNPATH is missing.
pub const BROKEN_LIB: &str = "libsamba-modules-samba4.so";
/// The dependency that is invisible to it.
pub const HIDDEN_DEP: &str = "libsamba-debug-samba4.so";

const SAMBA_PRIVATE: &str = "/usr/lib/samba/private";

/// Install the scenario. System libraries (`libpopt.so.0`, `libtalloc.so.2`,
/// ...) land in `/usr/lib` and resolve via default paths, matching the
/// `[default path]` tags in the listing.
pub fn install(fs: &Vfs) -> Result<(), VfsError> {
    // System-side libraries.
    for name in [
        "libpopt.so.0",
        "libtalloc.so.2",
        "libsamba-errors.so.1",
        "libsmbconf.so.0",
        "libsamba-util.so.0",
    ] {
        io::install(fs, &format!("/usr/lib/{name}"), &ElfObject::dso(name).build())?;
    }

    // The private samba tree, all with proper RUNPATHs...
    let with_runpath = |name: &str, needs: &[&str]| -> ElfObject {
        let mut b = ElfObject::dso(name).runpath(SAMBA_PRIVATE);
        for n in needs {
            b = b.needs(*n);
        }
        b.build()
    };
    io::install(
        fs,
        &format!("{SAMBA_PRIVATE}/libpopt-samba3-samba4.so"),
        &with_runpath("libpopt-samba3-samba4.so", &["libcli-smb-common-samba4.so", "libpopt.so.0"]),
    )?;
    io::install(
        fs,
        &format!("{SAMBA_PRIVATE}/libcli-smb-common-samba4.so"),
        &with_runpath("libcli-smb-common-samba4.so", &["libiov-buf-samba4.so", "libtalloc.so.2"]),
    )?;
    io::install(
        fs,
        &format!("{SAMBA_PRIVATE}/libiov-buf-samba4.so"),
        &with_runpath("libiov-buf-samba4.so", &["libsmb-transport-samba4.so"]),
    )?;
    io::install(
        fs,
        &format!("{SAMBA_PRIVATE}/libsmb-transport-samba4.so"),
        &with_runpath("libsmb-transport-samba4.so", &["libsamba-sockets-samba4.so"]),
    )?;
    io::install(
        fs,
        &format!("{SAMBA_PRIVATE}/libsamba-sockets-samba4.so"),
        &with_runpath("libsamba-sockets-samba4.so", &["libgensec-samba4.so"]),
    )?;
    io::install(
        fs,
        &format!("{SAMBA_PRIVATE}/libgensec-samba4.so"),
        &with_runpath("libgensec-samba4.so", &[BROKEN_LIB, "libsamba-errors.so.1"]),
    )?;
    // ...except the broken one: no RUNPATH at all. Three of its deps are
    // system libraries found via default paths; the fourth is the hidden one.
    io::install(
        fs,
        &format!("{SAMBA_PRIVATE}/{BROKEN_LIB}"),
        &ElfObject::dso(BROKEN_LIB)
            .needs("libsamba-util.so.0")
            .needs("libtalloc.so.2")
            .needs("libsamba-errors.so.1")
            .needs(HIDDEN_DEP)
            .build(),
    )?;
    // The library that *does* load the hidden dep, earlier in BFS order.
    io::install(
        fs,
        &format!("{SAMBA_PRIVATE}/libdbwrap-samba4.so"),
        &with_runpath("libdbwrap-samba4.so", &["libutil-tdb-samba4.so", HIDDEN_DEP]),
    )?;
    io::install(
        fs,
        &format!("{SAMBA_PRIVATE}/libutil-tdb-samba4.so"),
        &with_runpath("libutil-tdb-samba4.so", &["libtalloc.so.2"]),
    )?;
    io::install(
        fs,
        &format!("{SAMBA_PRIVATE}/{HIDDEN_DEP}"),
        &with_runpath(HIDDEN_DEP, &["libsamba-util.so.0"]),
    )?;

    // The tool: RUNPATH into the private tree. Crucially, libdbwrap comes
    // BEFORE libsamba-modules' request is processed (BFS), so the hidden
    // dep is already cached when the broken library asks for it.
    let tool = ElfObject::exe("dbwrap_tool")
        .needs("libpopt-samba3-samba4.so")
        .needs("libdbwrap-samba4.so")
        .needs("libsmbconf.so.0")
        .needs("libsamba-util.so.0")
        .needs("libpopt.so.0")
        .runpath(SAMBA_PRIVATE)
        .build();
    io::install(fs, TOOL_PATH, &tool)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_loader::{analyze_tree, Environment, GlibcLoader, LdCache, Resolution};

    #[test]
    fn binary_works_dynamically() {
        let fs = Vfs::local();
        install(&fs).unwrap();
        let r = GlibcLoader::new(&fs).load(TOOL_PATH).unwrap();
        assert!(r.success(), "{:?}", r.failures);
        // The broken lib's request was satisfied by dedup, not by search.
        let broken_idx = r.find(BROKEN_LIB).unwrap().idx;
        let e =
            r.events.iter().find(|e| e.requester == broken_idx && e.name == HIDDEN_DEP).unwrap();
        assert!(matches!(e.resolution, Resolution::Deduped { .. }));
    }

    #[test]
    fn libtree_prints_not_found() {
        let fs = Vfs::local();
        install(&fs).unwrap();
        let tree =
            analyze_tree(&fs, TOOL_PATH, &Environment::default(), &LdCache::empty()).unwrap();
        let missing = tree.missing();
        assert_eq!(missing.len(), 1, "{}", tree.render());
        assert_eq!(missing[0].name, HIDDEN_DEP);
        let text = tree.render();
        assert!(text.contains(&format!("{HIDDEN_DEP} not found")));
        assert!(text.contains("[default path]"), "system libs tagged like the listing");
        assert!(text.contains("[runpath]"));
    }

    #[test]
    fn breakage_surfaces_when_order_changes() {
        // The paper: missing entries "may surface later when the binary is
        // run with ... a new version of a library in the tree". Remove the
        // well-behaved libdbwrap (as an upgrade might) and the same binary
        // now fails outright.
        let fs = Vfs::local();
        install(&fs).unwrap();
        let patched = depchaos_elf::ElfEditor::open(&fs, TOOL_PATH).unwrap();
        patched.remove_needed("libdbwrap-samba4.so").unwrap();
        let r = GlibcLoader::new(&fs).load(TOOL_PATH).unwrap();
        assert!(!r.success());
        assert!(r.failures.iter().any(|f| f.name == HIDDEN_DEP));
    }
}

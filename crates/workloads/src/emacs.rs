//! The Table II workload: an emacs-as-built-by-Nix lookalike.
//!
//! The paper: "the emacs editor, as built by Nix, lists 36 directories in
//! its RUNPATH and requires 103 dependencies to be resolved. The result is
//! that the dynamic linker could attempt nearly 3,600 filesystem operations
//! ... every time the process is started." Measured with strace: 1823
//! stat/openat calls before shrinkwrapping, 104 after (36×).
//!
//! We lay out 103 libraries across 36 store-style directories. Every object
//! carries the full 36-entry RUNPATH (Nix accumulates the closure's lib
//! dirs), rotated per object so hits land at varying search depths — giving
//! the ~18-probes-per-dependency average behind the paper's 1823.

use depchaos_elf::{io, ElfObject};
use depchaos_vfs::{Vfs, VfsError};

/// Paper parameters.
pub const N_DEPS: usize = 103;
pub const N_RUNPATH_DIRS: usize = 36;

/// Where the workload lives in the VFS.
pub const EXE_PATH: &str = "/nix/store/emacs-28.1/bin/emacs";

/// The generated layout.
#[derive(Debug, Clone)]
pub struct EmacsWorkload {
    pub exe_path: String,
    pub lib_paths: Vec<String>,
    pub runpath_dirs: Vec<String>,
}

fn dir_of(i: usize) -> String {
    format!("/nix/store/dep{:02}/lib", i % N_RUNPATH_DIRS)
}

fn soname_of(i: usize) -> String {
    format!("libemacsdep{i}.so")
}

/// Install the workload into `fs`. Unaccounted (package installation).
pub fn install(fs: &Vfs) -> Result<EmacsWorkload, VfsError> {
    let runpath_dirs: Vec<String> = (0..N_RUNPATH_DIRS).map(dir_of).collect();

    // The executable needs the first 40 libraries directly; every library
    // needs lib(i+40) and lib(i+41) where those exist, so the whole set of
    // 103 is reachable and most requests are duplicates resolved from the
    // soname cache (as in a real closure).
    let exe_needs: Vec<String> = (0..40).map(soname_of).collect();
    let mut lib_paths = Vec::with_capacity(N_DEPS);
    for i in 0..N_DEPS {
        let mut b = ElfObject::dso(soname_of(i));
        for j in [i + 40, i + 41] {
            if j < N_DEPS {
                b = b.needs(soname_of(j));
            }
        }
        // Nix-style: the full closure runpath, permuted per object (a real
        // store assembles the list in dependency-discovery order, which is
        // effectively uncorrelated with where any one soname lives). The
        // stride-13 rotation decorrelates a library's list from the
        // directories of its own dependencies, giving the ~18-probe average
        // behind the paper's 1823 measured calls.
        let rot: Vec<String> = (0..N_RUNPATH_DIRS)
            .map(|k| runpath_dirs[(k + i * 13) % N_RUNPATH_DIRS].clone())
            .collect();
        b = b.runpath_all(rot);
        let path = format!("{}/{}", dir_of(i), soname_of(i));
        io::install(fs, &path, &b.build())?;
        lib_paths.push(path);
    }

    let exe =
        ElfObject::exe("emacs").needs_all(exe_needs).runpath_all(runpath_dirs.clone()).build();
    io::install(fs, EXE_PATH, &exe)?;

    Ok(EmacsWorkload { exe_path: EXE_PATH.to_string(), lib_paths, runpath_dirs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_loader::{Environment, GlibcLoader};

    #[test]
    fn loads_all_103_dependencies() {
        let fs = Vfs::local();
        install(&fs).unwrap();
        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(EXE_PATH).unwrap();
        assert!(r.success(), "{:?}", r.failures);
        assert_eq!(r.library_count(), N_DEPS);
    }

    #[test]
    fn unwrapped_syscall_count_in_table2_band() {
        let fs = Vfs::local();
        install(&fs).unwrap();
        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(EXE_PATH).unwrap();
        let calls = r.stat_openat();
        // Paper: 1823 (out of a worst case near 3600). Our rotation lands in
        // the same band — what matters is the ~18x gap to the wrapped run.
        assert!((1000..3600).contains(&calls), "expected Table II band, got {calls}");
    }

    #[test]
    fn every_object_carries_36_runpath_dirs() {
        let fs = Vfs::local();
        let w = install(&fs).unwrap();
        let exe = depchaos_elf::io::peek_object(&fs, &w.exe_path).unwrap();
        assert_eq!(exe.runpath.len(), N_RUNPATH_DIRS);
        for p in &w.lib_paths {
            let o = depchaos_elf::io::peek_object(&fs, p).unwrap();
            assert_eq!(o.runpath.len(), N_RUNPATH_DIRS);
        }
    }
}

//! The §V-B.1 case study: the ROCm mixed-version segfault.
//!
//! Three individually-reasonable choices combine into a broken load:
//!
//! 1. the application carries `RPATH` entries pointing at every ROCm 4.5
//!    library;
//! 2. the site's module files set `LD_LIBRARY_PATH` "to help with internal
//!    library search issues in ROCM packages";
//! 3. the ROCm packages themselves use `RUNPATH` (not `RPATH`).
//!
//! Run the 4.5-built app with the 4.3 module loaded: the first ROCm library
//! is found through the app's RPATH (4.5, correct). But that library has a
//! `RUNPATH`, which suppresses the RPATH chain for *its* dependencies, so
//! the loader falls through to `LD_LIBRARY_PATH` — now pointing at 4.3 —
//! and loads 4.3 internals underneath a 4.5 libamdhip64. Segfault.

use depchaos_elf::{io, ElfObject, Symbol};
use depchaos_loader::LoadResult;
use depchaos_store::{Module, ModuleSystem};
use depchaos_vfs::{Vfs, VfsError};

pub const APP: &str = "/work/app/bin/gpu_sim";

/// ROCm library set (enough to exercise the chain).
const ROCM_LIBS: &[(&str, &[&str])] = &[
    ("libamdhip64.so", &["libroctracer64.so", "libhsa-runtime64.so"]),
    ("libroctracer64.so", &["librocm_smi64.so"]),
    ("libhsa-runtime64.so", &[]),
    ("librocm_smi64.so", &[]),
];

fn prefix(version: &str) -> String {
    format!("/opt/rocm-{version}/lib")
}

/// The library files [`install_rocm`] places for `version`, in install
/// order — what a harness needs to index or wrap the world without
/// re-deriving the layout.
pub fn lib_paths(version: &str) -> Vec<String> {
    let dir = prefix(version);
    ROCM_LIBS.iter().map(|(name, _)| format!("{dir}/{name}")).collect()
}

/// Install one ROCm version. Each library defines a version marker symbol
/// and carries a RUNPATH of its own directory (factor 3).
pub fn install_rocm(fs: &Vfs, version: &str) -> Result<(), VfsError> {
    let dir = prefix(version);
    let marker = format!("rocm_abi_{}", version.replace('.', "_"));
    for (name, needs) in ROCM_LIBS {
        let mut b = ElfObject::dso(*name).defines(Symbol::strong(marker.clone())).runpath(&dir);
        for n in *needs {
            b = b.needs(*n);
        }
        io::install(fs, &format!("{dir}/{name}"), &b.build())?;
    }
    Ok(())
}

/// Install the application built against `built_version`: RPATH entries to
/// that version's directory (factor 1).
pub fn install_app(fs: &Vfs, built_version: &str) -> Result<(), VfsError> {
    let app =
        ElfObject::exe("gpu_sim").needs("libamdhip64.so").rpath(prefix(built_version)).build();
    io::install(fs, APP, &app)?;
    Ok(())
}

/// The site module tree: each ROCm module sets LD_LIBRARY_PATH (factor 2).
pub fn module_system() -> ModuleSystem {
    let mut ms = ModuleSystem::new();
    ms.provide(Module::new("rocm/4.3.0").ld_library_path(prefix("4.3.0")));
    ms.provide(Module::new("rocm/4.5.0").ld_library_path(prefix("4.5.0")));
    ms
}

/// Which ROCm versions contributed loaded libraries? More than one element
/// means the mixed-version state that segfaults.
pub fn versions_loaded(r: &LoadResult) -> Vec<String> {
    let mut versions: Vec<String> = r
        .objects
        .iter()
        .filter_map(|o| {
            o.path
                .strip_prefix("/opt/rocm-")
                .and_then(|rest| rest.split('/').next())
                .map(String::from)
        })
        .collect();
    versions.sort();
    versions.dedup();
    versions
}

/// Set up the full scenario: both ROCm versions on disk, app built on 4.5.
pub fn install_scenario(fs: &Vfs) -> Result<(), VfsError> {
    install_rocm(fs, "4.3.0")?;
    install_rocm(fs, "4.5.0")?;
    install_app(fs, "4.5.0")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_loader::{Environment, GlibcLoader, Provenance};

    #[test]
    fn matching_module_loads_consistent_set() {
        let fs = Vfs::local();
        install_scenario(&fs).unwrap();
        let mut ms = module_system();
        ms.load("rocm/4.5.0").unwrap();
        let env = ms.environment(Environment::default());
        let r = GlibcLoader::new(&fs).with_env(env).load(APP).unwrap();
        assert!(r.success());
        assert_eq!(versions_loaded(&r), vec!["4.5.0"]);
    }

    #[test]
    fn mismatched_module_mixes_versions() {
        let fs = Vfs::local();
        install_scenario(&fs).unwrap();
        let mut ms = module_system();
        ms.load("rocm/4.3.0").unwrap(); // the wrong module
        let env = ms.environment(Environment::default());
        let r = GlibcLoader::new(&fs).with_env(env).load(APP).unwrap();
        assert!(r.success(), "it loads — that's the insidious part");
        let versions = versions_loaded(&r);
        assert_eq!(versions, vec!["4.3.0", "4.5.0"], "mixed ABI = segfault at runtime");

        // Verify the causal chain: libamdhip64 came from RPATH (4.5)...
        let hip = r.find("libamdhip64.so").unwrap();
        assert!(hip.path.starts_with("/opt/rocm-4.5.0"));
        assert!(matches!(hip.provenance, Provenance::Rpath { .. }));
        // ...but its dependency came from LD_LIBRARY_PATH (4.3), because
        // libamdhip64's RUNPATH suppressed the app's RPATH chain.
        let tracer = r.find("libroctracer64.so").unwrap();
        assert!(tracer.path.starts_with("/opt/rocm-4.3.0"));
        assert!(matches!(tracer.provenance, Provenance::LdLibraryPath));
    }

    #[test]
    fn any_two_factors_are_harmless() {
        let fs = Vfs::local();
        install_scenario(&fs).unwrap();

        // Without the module (factors 1+3 only): consistent 4.5.
        let r = GlibcLoader::new(&fs).with_env(Environment::default()).load(APP).unwrap();
        assert_eq!(versions_loaded(&r), vec!["4.5.0"]);

        // With the module but ROCm using RPATH instead of RUNPATH
        // (factors 1+2): the library's RPATH chain keeps winning.
        for (name, _) in ROCM_LIBS {
            let p = format!("/opt/rocm-4.5.0/lib/{name}");
            let ed = depchaos_elf::ElfEditor::open(&fs, &p).unwrap();
            let obj = ed.object().unwrap();
            let dirs = obj.runpath.clone();
            ed.set_rpath(dirs).unwrap();
        }
        let mut ms = module_system();
        ms.load("rocm/4.3.0").unwrap();
        let env = ms.environment(Environment::default());
        let r = GlibcLoader::new(&fs).with_env(env).load(APP).unwrap();
        assert_eq!(versions_loaded(&r), vec!["4.5.0"], "RPATH-only ROCm is immune");
    }
}

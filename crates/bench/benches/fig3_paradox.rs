//! Fig 3: exhaustive proof that no search-path ordering resolves the
//! two-directory paradox, vs the O(1) shrinkwrapped resolution.

use criterion::{criterion_group, criterion_main, Criterion};
use depchaos_bench::banner;
use depchaos_elf::ElfEditor;
use depchaos_loader::{Environment, GlibcLoader};
use depchaos_vfs::Vfs;
use depchaos_workloads::paradox;

fn bench(c: &mut Criterion) {
    banner("Fig 3: the RUNPATH paradox");
    let fs = Vfs::local();
    paradox::install(&fs).unwrap();
    println!("any ordering of any mechanism correct? {}", paradox::any_ordering_correct(&fs));

    c.bench_function("fig3/exhaustive_ordering_search", |b| {
        b.iter(|| {
            let fs = Vfs::local();
            paradox::install(&fs).unwrap();
            std::hint::black_box(paradox::any_ordering_correct(&fs))
        })
    });

    c.bench_function("fig3/shrinkwrapped_resolution", |b| {
        let fs = Vfs::local();
        paradox::install(&fs).unwrap();
        ElfEditor::open(&fs, paradox::EXE)
            .unwrap()
            .set_needed(vec![
                format!("{}/liba.so", paradox::DIR_A),
                format!("{}/libb.so", paradox::DIR_B),
            ])
            .unwrap();
        b.iter(|| {
            let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(paradox::EXE).unwrap();
            assert!(paradox::is_correct(&r));
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

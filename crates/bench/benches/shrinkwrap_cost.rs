//! §V intro: the cost of running Shrinkwrap itself.
//!
//! Paper: wrapping a binary with 900 needed entries and a 900-entry RPATH
//! (213 MiB executable) took ~4 s warm / over a minute on cold NFS with the
//! real (python + lief) implementation. Here we measure our wrap() on the
//! same logical workload — absolute numbers differ (no real ELF rewriting),
//! the scaling with closure size is the point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depchaos_bench::banner;
use depchaos_core::{wrap, ShrinkwrapOptions, Strategy};
use depchaos_loader::Environment;
use depchaos_vfs::Vfs;
use depchaos_workloads::{emacs, pynamic};

fn bench(c: &mut Criterion) {
    banner("Shrinkwrap tool cost (paper: ~4s warm for 900 entries)");

    let mut group = c.benchmark_group("shrinkwrap_cost");
    group.sample_size(10);

    for n_libs in [100usize, 300, 900] {
        // wrap() mutates the binary; since it is idempotent, re-wrapping is
        // representative of the warm-cache case the paper times.
        let fs = Vfs::local();
        let w = pynamic::install(&fs, "/apps/pynamic", n_libs).unwrap();
        let opts = ShrinkwrapOptions::new().env(Environment::bare());
        let report = wrap(&fs, &w.exe_path, &opts).unwrap();
        println!("pynamic-{n_libs}: froze {} entries", report.frozen_count());
        group.bench_with_input(BenchmarkId::new("ldd_strategy", n_libs), &n_libs, |b, _| {
            b.iter(|| wrap(&fs, &w.exe_path, &opts).unwrap())
        });
        let native = ShrinkwrapOptions::new().env(Environment::bare()).strategy(Strategy::Native);
        group.bench_with_input(BenchmarkId::new("native_strategy", n_libs), &n_libs, |b, _| {
            b.iter(|| wrap(&fs, &w.exe_path, &native).unwrap())
        });
    }

    // The emacs-scale case for contrast.
    let fs = Vfs::local();
    emacs::install(&fs).unwrap();
    let opts = ShrinkwrapOptions::new().env(Environment::bare());
    wrap(&fs, emacs::EXE_PATH, &opts).unwrap();
    group.bench_function("emacs_103_deps", |b| {
        b.iter(|| wrap(&fs, emacs::EXE_PATH, &opts).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

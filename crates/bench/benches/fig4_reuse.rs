//! Fig 4: shared-object reuse on a 3287-binary installed system.

use criterion::{criterion_group, criterion_main, Criterion};
use depchaos_bench::banner;
use depchaos_graph::reuse_counts;
use depchaos_workloads::debian;

fn bench(c: &mut Criterion) {
    banner("Fig 4: shared object reuse (3287 binaries)");
    let usages = debian::installed_system(2021, 3287, 1400);
    let hist =
        reuse_counts(usages.iter().map(|(b, sos)| (b.as_str(), sos.iter().map(String::as_str))));
    print!("{}", hist.render_summary(5));
    println!(
        "paper: 'only 4% of shared object files are used by more than 5% of the binaries'; \
         measured: {:.1}%",
        100.0 * hist.fraction_above(0.05)
    );

    c.bench_function("fig4/generate_installed_system", |b| {
        b.iter(|| debian::installed_system(std::hint::black_box(2021), 3287, 1400))
    });
    c.bench_function("fig4/reuse_histogram", |b| {
        b.iter(|| {
            reuse_counts(
                usages.iter().map(|(bn, sos)| (bn.as_str(), sos.iter().map(String::as_str))),
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table II: emacs process-startup syscalls, normal vs shrinkwrapped.

use criterion::{criterion_group, criterion_main, Criterion};
use depchaos_bench::banner;
use depchaos_core::{wrap, ShrinkwrapOptions};
use depchaos_loader::{Environment, GlibcLoader};
use depchaos_vfs::Vfs;
use depchaos_workloads::emacs;

fn bench(c: &mut Criterion) {
    banner("Table II: emacs stat/openat syscalls");
    let env = Environment::bare();

    let fs = Vfs::local();
    emacs::install(&fs).unwrap();
    let before = GlibcLoader::new(&fs).with_env(env.clone()).load(emacs::EXE_PATH).unwrap();

    let fs_w = Vfs::local();
    emacs::install(&fs_w).unwrap();
    wrap(&fs_w, emacs::EXE_PATH, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
    let after = GlibcLoader::new(&fs_w).with_env(env.clone()).load(emacs::EXE_PATH).unwrap();

    println!("{:<16} {:>20} {:>16}", "", "Calls (stat/openat)", "SimTime (s)");
    println!("{:<16} {:>20} {:>16.6}", "emacs", before.stat_openat(), before.time_ns as f64 / 1e9);
    println!(
        "{:<16} {:>20} {:>16.6}",
        "emacs-wrapped",
        after.stat_openat(),
        after.time_ns as f64 / 1e9
    );
    println!(
        "paper: 1823 -> 104 calls; measured: {} -> {}",
        before.stat_openat(),
        after.stat_openat()
    );

    // Measure the actual (host) time of the load interpretation itself.
    c.bench_function("table2/load_emacs_normal", |b| {
        b.iter(|| GlibcLoader::new(&fs).with_env(env.clone()).load(emacs::EXE_PATH).unwrap())
    });
    c.bench_function("table2/load_emacs_wrapped", |b| {
        b.iter(|| GlibcLoader::new(&fs_w).with_env(env.clone()).load(emacs::EXE_PATH).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

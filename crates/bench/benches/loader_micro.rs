//! Supporting microbenchmarks: the loader engines themselves.
//!
//! Not a paper artifact, but the substrate all the figures run on: how fast
//! the glibc/musl interpreters and the libtree analysis are, and what one
//! directory probe costs.

use criterion::{criterion_group, criterion_main, Criterion};
use depchaos_bench::banner;
use depchaos_loader::{analyze_tree, Environment, GlibcLoader, LdCache, MuslLoader};
use depchaos_store::{BinDef, LibDef, PackageDef, Repo, StoreInstaller};
use depchaos_vfs::Vfs;

/// A 50-package chain-and-fan stack in a Spack-like store.
fn world() -> (Vfs, String) {
    let mut repo = Repo::new();
    for i in 0..50usize {
        let mut pkg = PackageDef::new(format!("pkg{i}"), "1.0");
        let mut lib = LibDef::new(format!("lib{i}.so"));
        for d in [i * 2 + 1, i * 2 + 2] {
            if d < 50 {
                pkg = pkg.dep(format!("pkg{d}"));
                lib = lib.needs(format!("lib{d}.so"));
            }
        }
        pkg = pkg.lib(lib);
        if i == 0 {
            pkg = pkg.bin(BinDef::new("main").needs("lib0.so"));
        }
        repo.add(pkg);
    }
    let fs = Vfs::local();
    let mut store = StoreInstaller::spack_like();
    let p = store.install(&fs, &repo, "pkg0").unwrap();
    let bin = format!("{}/main", p.bin_dir);
    (fs, bin)
}

fn bench(c: &mut Criterion) {
    banner("Loader microbenchmarks (50-object closure)");
    let (fs, bin) = world();
    let env = Environment::bare();

    let g = GlibcLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap();
    println!(
        "glibc: {} objects, {} stat/openat; musl success: {}",
        g.objects.len(),
        g.stat_openat(),
        MuslLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap().success()
    );

    c.bench_function("loader/glibc_load_50", |b| {
        b.iter(|| GlibcLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap())
    });
    c.bench_function("loader/musl_load_50", |b| {
        b.iter(|| MuslLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap())
    });
    c.bench_function("loader/libtree_analyze_50", |b| {
        b.iter(|| analyze_tree(&fs, &bin, &env, &LdCache::empty()).unwrap())
    });
    c.bench_function("loader/ldconfig_scan", |b| {
        let dirs: Vec<String> = fs
            .list_dir("/store")
            .unwrap()
            .into_iter()
            .map(|d| format!("/store/{d}/lib"))
            .collect();
        b.iter(|| LdCache::ldconfig(&fs, &dirs))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Supporting microbenchmarks: the loader engines themselves.
//!
//! Not a paper artifact, but the substrate all the figures run on: how fast
//! the glibc/musl interpreters and the libtree analysis are, and what one
//! directory probe costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depchaos_bench::banner;
use depchaos_core::LoaderBackend;
use depchaos_loader::{analyze_tree, Environment, GlibcLoader, LdCache, MuslLoader};
use depchaos_store::{BinDef, LibDef, PackageDef, Repo, StoreInstaller};
use depchaos_vfs::Vfs;

/// A 50-package chain-and-fan stack in a Spack-like store.
fn world() -> (Vfs, String) {
    let mut repo = Repo::new();
    for i in 0..50usize {
        let mut pkg = PackageDef::new(format!("pkg{i}"), "1.0");
        let mut lib = LibDef::new(format!("lib{i}.so"));
        for d in [i * 2 + 1, i * 2 + 2] {
            if d < 50 {
                pkg = pkg.dep(format!("pkg{d}"));
                lib = lib.needs(format!("lib{d}.so"));
            }
        }
        pkg = pkg.lib(lib);
        if i == 0 {
            pkg = pkg.bin(BinDef::new("main").needs("lib0.so"));
        }
        repo.add(pkg);
    }
    let fs = Vfs::local();
    let mut store = StoreInstaller::spack_like();
    let p = store.install(&fs, &repo, "pkg0").unwrap();
    let bin = format!("{}/main", p.bin_dir);
    (fs, bin)
}

fn bench(c: &mut Criterion) {
    banner("Loader microbenchmarks (50-object closure)");
    let (fs, bin) = world();
    let env = Environment::bare();

    let g = GlibcLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap();
    println!(
        "glibc: {} objects, {} stat/openat; musl success: {}",
        g.objects.len(),
        g.stat_openat(),
        MuslLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap().success()
    );

    c.bench_function("loader/glibc_load_50", |b| {
        b.iter(|| GlibcLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap())
    });
    c.bench_function("loader/musl_load_50", |b| {
        b.iter(|| MuslLoader::new(&fs).with_env(env.clone()).load(&bin).unwrap())
    });
    // The same closure under every stock backend, through the Loader
    // trait — the engine refactor makes this sweep a loop, not new code.
    // Backends whose semantics cannot resolve this RUNPATH-style world
    // (the future loader) are skipped rather than timed failing fast.
    let mut group = c.benchmark_group("loader/backend_load_50");
    for backend in LoaderBackend::all_stock() {
        if !backend.instantiate(&fs, &env, &LdCache::empty()).load(&bin).unwrap().success() {
            println!("(skipping {}: cannot resolve this world)", backend.name());
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(backend.name()), &backend, |b, bk| {
            b.iter(|| bk.instantiate(&fs, &env, &LdCache::empty()).load(&bin).unwrap())
        });
    }
    group.finish();

    // The profiling configuration: strace capture on, so the interned-path
    // log and dedup maps are what's being exercised — the stream every
    // Fig 6 cell feeds to the DES, now captured without per-op allocation.
    c.bench_function("loader/intern_load_50", |b| {
        let loader = GlibcLoader::new(&fs).with_env(env.clone());
        b.iter(|| {
            fs.start_trace();
            loader.load(&bin).unwrap();
            fs.stop_trace()
        })
    });

    c.bench_function("loader/libtree_analyze_50", |b| {
        b.iter(|| analyze_tree(&fs, &bin, &env, &LdCache::empty()).unwrap())
    });
    c.bench_function("loader/ldconfig_scan", |b| {
        let dirs: Vec<String> =
            fs.list_dir("/store").unwrap().into_iter().map(|d| format!("/store/{d}/lib")).collect();
        b.iter(|| LdCache::ldconfig(&fs, &dirs))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

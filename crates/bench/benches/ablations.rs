//! Ablations of the design choices DESIGN.md calls out, at Axom scale
//! (>200-dependency application from §I).
//!
//! * store path style: Spack-like RUNPATH+transitive lists vs Nix-like
//!   RPATH+direct lists;
//! * dependency views (§III-D1) vs Shrinkwrap (§IV) vs plain store;
//! * the §III-C future loader on the same stack.

use criterion::{criterion_group, criterion_main, Criterion};
use depchaos_bench::banner;
use depchaos_core::{wrap, ShrinkwrapOptions};
use depchaos_elf::ElfEditor;
use depchaos_loader::{Environment, FutureLoader, GlibcLoader};
use depchaos_store::{build_view, views::view_lib_dir, StoreInstaller};
use depchaos_vfs::Vfs;
use depchaos_workloads::axom;

fn syscalls(fs: &Vfs, bin: &str) -> (u64, u64) {
    let r = GlibcLoader::new(fs).with_env(Environment::bare()).load(bin).unwrap();
    assert!(r.success(), "{:?}", r.failures.first());
    (r.stat_openat(), r.syscalls.misses)
}

fn bench(c: &mut Criterion) {
    banner("Ablations: store style, views, shrinkwrap (Axom-scale stack)");
    let repo = axom::repo(7);

    // --- Spack-like vs Nix-like path policy.
    let fs_spack = Vfs::local();
    let app_spack = StoreInstaller::spack_like().install(&fs_spack, &repo, axom::APP).unwrap();
    let bin_spack = format!("{}/{}", app_spack.bin_dir, axom::APP);
    let (calls_spack, misses_spack) = syscalls(&fs_spack, &bin_spack);

    let fs_nix = Vfs::local();
    let app_nix = StoreInstaller::nix_like().install(&fs_nix, &repo, axom::APP).unwrap();
    let bin_nix = format!("{}/{}", app_nix.bin_dir, axom::APP);
    let (calls_nix, misses_nix) = syscalls(&fs_nix, &bin_nix);

    println!("store policy       stat/openat  misses");
    println!("spack-like (RUNPATH, transitive) {calls_spack:>8}  {misses_spack:>6}");
    println!("nix-like   (RPATH, direct)       {calls_nix:>8}  {misses_nix:>6}");

    // --- Dependency view: one search directory for the whole closure.
    let fs_view = Vfs::local();
    let mut st = StoreInstaller::spack_like();
    let app_view = st.install(&fs_view, &repo, axom::APP).unwrap();
    let bin_view = format!("{}/{}", app_view.bin_dir, axom::APP);
    let closure: Vec<_> = std::iter::once(app_view.clone())
        .chain(repo.closure(axom::APP).iter().filter_map(|n| st.get(n).cloned()))
        .collect();
    let refs: Vec<&_> = closure.iter().collect();
    let links = build_view(&fs_view, "/views/app", &refs).unwrap();
    ElfEditor::open(&fs_view, &bin_view)
        .unwrap()
        .set_rpath(vec![view_lib_dir("/views/app")])
        .unwrap();
    for pkg in &closure {
        for name in fs_view.list_dir(&pkg.lib_dir).unwrap() {
            ElfEditor::open(&fs_view, format!("{}/{}", pkg.lib_dir, name))
                .unwrap()
                .remove_rpath()
                .unwrap();
        }
    }
    let (calls_view, misses_view) = syscalls(&fs_view, &bin_view);
    println!("dependency view (one dir, {links} symlinks) {calls_view:>8}  {misses_view:>6}");

    // --- Shrinkwrap.
    let fs_wrap = Vfs::local();
    let app_wrap = StoreInstaller::spack_like().install(&fs_wrap, &repo, axom::APP).unwrap();
    let bin_wrap = format!("{}/{}", app_wrap.bin_dir, axom::APP);
    wrap(&fs_wrap, &bin_wrap, &ShrinkwrapOptions::new().env(Environment::bare())).unwrap();
    let (calls_wrap, misses_wrap) = syscalls(&fs_wrap, &bin_wrap);
    println!("shrinkwrapped                    {calls_wrap:>8}  {misses_wrap:>6}");

    // --- future loader on the shrinkwrapped binary (sanity: same result).
    let fut = FutureLoader::new(&fs_wrap).with_env(Environment::bare()).load(&bin_wrap).unwrap();
    println!("future loader on wrapped binary: success={}", fut.success());

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("load_spack_like", |b| {
        b.iter(|| GlibcLoader::new(&fs_spack).with_env(Environment::bare()).load(&bin_spack))
    });
    group.bench_function("load_nix_like", |b| {
        b.iter(|| GlibcLoader::new(&fs_nix).with_env(Environment::bare()).load(&bin_nix))
    });
    group.bench_function("load_view", |b| {
        b.iter(|| GlibcLoader::new(&fs_view).with_env(Environment::bare()).load(&bin_view))
    });
    group.bench_function("load_shrinkwrapped", |b| {
        b.iter(|| GlibcLoader::new(&fs_wrap).with_env(Environment::bare()).load(&bin_wrap))
    });
    group.bench_function("load_future_loader", |b| {
        b.iter(|| FutureLoader::new(&fs_wrap).with_env(Environment::bare()).load(&bin_wrap))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Fig 2: the Nix Ruby closure snarl (453 derivations).

use criterion::{criterion_group, criterion_main, Criterion};
use depchaos_bench::banner;
use depchaos_graph::dot::to_dot;
use depchaos_workloads::nix_ruby;

fn bench(c: &mut Criterion) {
    banner("Fig 2: Nix Ruby closure");
    let g = nix_ruby::closure(2022);
    let ruby = g.lookup("ruby-2.7.5.drv").unwrap();
    println!(
        "nodes: {} (paper: 453)   edges: {}   reachable from ruby: {}",
        g.node_count(),
        g.edge_count(),
        g.closure_bfs(ruby).len()
    );
    // Write the figure artifact next to the bench results.
    let dot = to_dot(&g, "ruby-2.7.5");
    let path = std::path::Path::new("target/fig2_ruby.dot");
    if std::fs::write(path, &dot).is_ok() {
        println!(
            "figure artifact: {} ({} bytes; render with `dot -Tsvg`)",
            path.display(),
            dot.len()
        );
    }

    c.bench_function("fig2/generate_closure", |b| {
        b.iter(|| nix_ruby::closure(std::hint::black_box(2022)))
    });
    c.bench_function("fig2/bfs_closure", |b| b.iter(|| g.closure_bfs(std::hint::black_box(ruby))));
    c.bench_function("fig2/topo_sort", |b| b.iter(|| g.topo_sort()));
    c.bench_function("fig2/dot_export", |b| b.iter(|| to_dot(&g, "ruby-2.7.5")));
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Fig 1: Debian package dependencies by type (~209k declarations).

use criterion::{criterion_group, criterion_main, Criterion};
use depchaos_bench::banner;
use depchaos_graph::ConstraintTally;
use depchaos_workloads::debian;

fn bench(c: &mut Criterion) {
    banner("Fig 1: Debian package dependencies by type");
    let tally = debian::fig1_tally(2021, 209_000);
    print!("{}", tally.render_table());
    println!("unversioned: {:.1}% (paper: 'nearly 3/4')", 100.0 * tally.unversioned_fraction());

    let decls = debian::repo(2021, 209_000);
    c.bench_function("fig1/tally_209k_declarations", |b| {
        b.iter(|| ConstraintTally::tally(std::hint::black_box(&decls)))
    });
    c.bench_function("fig1/generate_209k_declarations", |b| {
        b.iter(|| debian::repo(std::hint::black_box(2021), 209_000))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Hot-path benchmarks: the allocation-free profile→simulate pipeline.
//!
//! Three surfaces the PR 3 optimisations target, timed directly:
//!
//! * `des_million_ranks` — [`simulate_classified`] at 1Mi–4Mi ranks, the
//!   scale the coalesced DES unlocked (warm-node coalescing + one heap
//!   event per server op).
//! * `vfs_resolve_deep` — slab-tree path resolution: deep component chains
//!   and symlink hops, with lazy error-path construction keeping the
//!   success path allocation-free.
//! * classification itself, since sweeps amortise it across rank points.
//! * `serve/*` — the result-store hot paths: a fully warm one-cell query
//!   (key derivation + store probe + aggregation, the latency every
//!   repeat what-if pays) and a cold cell through the incremental
//!   executor (sweep + record encode + store append, profiling amortised
//!   into a shared cache as the serve layer does).
//! * `batch/*` — the columnar batch planner: the full fig6-backends ×
//!   dist × replicate matrix simulated as one `BatchPlan` pass
//!   (profiling and classification pre-warmed, exactly what a repeat
//!   sweep pays), and raw per-row planner throughput over a
//!   thousand-row single-schedule plan.
//! * `faults/*` — the faulty heap engine on the contended 16Ki shape: a
//!   server brownout (stall-window bookkeeping per event) and a 10% RPC
//!   loss retry storm (a FAULT draw per served op plus the retried server
//!   work) — healthy rows never enter this engine, so these rows are its
//!   only perf gate.
//! * `servers/*` — the multi-server topology axis on the same contended
//!   shape: `flatten_sweep` runs the fig6-servers fleet ladder
//!   (S ∈ {1, 2, 4, 8, 16}, hash-routed) at 16Ki ranks back to back, and
//!   `s8_contended` isolates one S = 8 fleet pass — the S-lane heap's
//!   per-event cost next to the single-lane `contended_16Ki_cold500`
//!   baseline.
//! * `adaptive/*` — adaptive replicate control on the fig6-dist acceptance
//!   matrix: `full_matrix` times the multi-round stopping-rule driver
//!   end-to-end (profiling pre-warmed), and `savings_ratio` records the
//!   fixed-K-sims over adaptive-sims ratio as an integer milli-x — a
//!   deterministic constant per engine, so its bench-diff delta is zero
//!   unless the stopping rule's meaning changes.
//!
//! Besides the criterion `ns/iter` lines, this bench persists a
//! `BENCH_des.json` summary at the repo root — the first entry in the
//! measured perf trajectory. CI runs it in `--test` quick mode (fewer
//! samples, same coverage) and uploads the file as an artifact.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use depchaos_bench::banner;
use depchaos_launch::{
    simulate_classified, AdaptiveControl, BatchPlan, CachePolicy, ClassifiedStream,
    ExperimentMatrix, FaultModel, LaunchConfig, LaunchResult, MatrixBackend, ProfileCache,
    ServerTopology, ServiceDistribution, WrapState,
};
use depchaos_serve::{run_matrix_incremental, ResultStore};
use depchaos_vfs::{Op, Outcome, StorageModel, StraceLog, Syscall, Vfs};
use depchaos_workloads::{Axom, Pynamic, Rocm};

fn cold_stream(n: usize) -> StraceLog {
    let mut log = StraceLog::new();
    for i in 0..n {
        log.push(Syscall::new(Op::Openat, &format!("/lib/l{i}.so"), Outcome::Enoent, 200_000));
    }
    log
}

fn warm_stream(n: usize) -> StraceLog {
    let mut log = StraceLog::new();
    for i in 0..n {
        log.push(Syscall::new(Op::Stat, &format!("/wrapped/l{i}.so"), Outcome::Ok, 1_000));
    }
    log
}

/// One DES scenario in the persisted summary.
struct DesPoint {
    name: &'static str,
    cfg: LaunchConfig,
    ops: StraceLog,
}

fn des_points() -> Vec<DesPoint> {
    let mi = 1024 * 1024;
    vec![
        DesPoint {
            name: "broadcast_4Mi_cold500",
            cfg: LaunchConfig {
                ranks: 4 * mi,
                ranks_per_node: 16,
                broadcast_cache: true,
                ..LaunchConfig::default()
            },
            ops: cold_stream(500),
        },
        DesPoint {
            name: "warm_4Mi_local500",
            cfg: LaunchConfig { ranks: 4 * mi, ranks_per_node: 16, ..LaunchConfig::default() },
            ops: warm_stream(500),
        },
        DesPoint {
            name: "broadcast_1Mi_cold500",
            cfg: LaunchConfig {
                ranks: mi,
                ranks_per_node: 16,
                broadcast_cache: true,
                ..LaunchConfig::default()
            },
            ops: cold_stream(500),
        },
        DesPoint {
            name: "contended_16Ki_cold500",
            cfg: LaunchConfig { ranks: 16 * 1024, ranks_per_node: 16, ..LaunchConfig::default() },
            ops: cold_stream(500),
        },
        DesPoint {
            // The analytic all-cold path: 262,144 cold nodes, no broadcast
            // — the closed form does 500 envelope steps where the heap
            // would schedule 131M events.
            name: "allcold_4Mi_cold500",
            cfg: LaunchConfig { ranks: 4 * mi, ranks_per_node: 16, ..LaunchConfig::default() },
            ops: cold_stream(500),
        },
    ]
}

/// Batches per point: the summary records the *fastest batch's* mean
/// ns/iter. A plain mean over one long run absorbs every scheduler
/// hiccup of a shared CI box into the number the regression gate compares;
/// the min-of-batches estimator converges on the undisturbed cost, which
/// is the thing a code change actually moves.
const BATCHES: u32 = 10;

/// Best-batch mean ns over `iters` total runs, plus one result for the
/// summary row.
fn time_des(point: &DesPoint, iters: u32) -> (u128, LaunchResult) {
    let classified = ClassifiedStream::classify(&point.ops, &point.cfg);
    let result = simulate_classified(&classified, &point.cfg);
    let mean_ns = time_fn(
        || {
            std::hint::black_box(simulate_classified(&classified, &point.cfg));
        },
        iters,
    );
    (mean_ns, result)
}

/// Iterations per point in full mode; anything less is a quick run.
const FULL_ITERS: u32 = 200;

/// Best-batch mean ns of an arbitrary closure over `iters` total runs —
/// the same min-of-batches estimator [`time_des`] uses, for the
/// `vfs_resolve_deep/*` and `classify/*` summary rows the CI gate now
/// watches alongside the DES cases.
fn time_fn(mut f: impl FnMut(), iters: u32) -> u128 {
    let batch_iters = (iters / BATCHES).max(1);
    let mut best_ns = u128::MAX;
    for _ in 0..BATCHES {
        let t0 = Instant::now();
        for _ in 0..batch_iters {
            f();
        }
        best_ns = best_ns.min(t0.elapsed().as_nanos() / batch_iters as u128);
    }
    best_ns
}

/// One persisted summary row: the DES cases carry their simulation
/// outcome, the plain cases just the timing.
enum SummaryRow<'a> {
    Des { point: &'a DesPoint, mean_ns: u128, result: LaunchResult, iters: u32 },
    Plain { name: String, mean_ns: u128, iters: u32 },
}

/// Persist the summary the CI step uploads; returns the JSON it wrote.
/// The recorded mode is derived from the iteration count the rows actually
/// ran with — not from re-sniffing argv — so the file cannot claim "full"
/// for a `--test` quick run (`bench-diff` refuses to compare summaries
/// whose modes differ, which makes an honest label load-bearing).
fn write_summary(rows: &[SummaryRow<'_>], iters: u32) -> String {
    let mut json = String::from("{\n  \"bench\": \"des_hot_path\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"results\": [\n",
        if iters >= FULL_ITERS { "full" } else { "quick" }
    ));
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        match row {
            SummaryRow::Des { point: p, mean_ns, result: r, iters } => {
                json.push_str(&format!(
                    "    {{\"name\": \"des_million_ranks/{}\", \"ranks\": {}, \"nodes\": {}, \
                     \"server_ops\": {}, \"simulated_launch_s\": {:.3}, \
                     \"mean_ns_per_iter\": {}, \"iters\": {}}}{comma}\n",
                    p.name,
                    p.cfg.ranks,
                    r.nodes,
                    r.server_ops,
                    r.seconds(),
                    mean_ns,
                    iters,
                ));
            }
            SummaryRow::Plain { name, mean_ns, iters } => {
                json.push_str(&format!(
                    "    {{\"name\": \"{name}\", \"mean_ns_per_iter\": {mean_ns}, \
                     \"iters\": {iters}}}{comma}\n",
                ));
            }
        }
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_des.json");
    std::fs::write(path, &json).expect("write BENCH_des.json");
    json
}

/// A 64-deep directory chain with a file at the bottom, reachable both
/// directly and through an 8-hop symlink ladder.
fn deep_world() -> (Vfs, String, String) {
    let fs = Vfs::local();
    let deep_dir: String = (0..64).map(|i| format!("/d{i}")).collect();
    fs.mkdir_p(&deep_dir).unwrap();
    let deep_file = format!("{deep_dir}/leaf.so");
    fs.write_file(&deep_file, vec![7; 64]).unwrap();
    fs.mkdir_p("/links").unwrap();
    fs.symlink("/links/hop0", &deep_file).unwrap();
    for i in 1..8 {
        fs.symlink(&format!("/links/hop{i}"), &format!("hop{}", i - 1)).unwrap();
    }
    (fs, deep_file, "/links/hop7".to_string())
}

fn bench(c: &mut Criterion) {
    banner("Hot path: coalesced DES at millions of ranks + slab VFS resolution");
    let quick = std::env::args().any(|a| a == "--test");
    let iters: u32 = if quick { 10 } else { FULL_ITERS };

    // The persisted DES summary (also printed for the bench log).
    let points = des_points();
    let mut rows = Vec::new();
    for p in &points {
        let (mean_ns, r) = time_des(p, iters);
        println!(
            "des_million_ranks/{:<24} ranks {:>8}  nodes {:>7}  sim {:>8.1}s  {:>10} ns/iter",
            p.name,
            p.cfg.ranks,
            r.nodes,
            r.seconds(),
            mean_ns
        );
        rows.push(SummaryRow::Des { point: p, mean_ns, result: r, iters });
    }

    // The vfs/classify rows the widened bench-diff gate watches: same
    // estimator, more inner iterations — these are nanosecond-scale ops,
    // so a batch must be long enough to swamp the timer read.
    let (fs, deep_file, link) = deep_world();
    let ops = cold_stream(500);
    let cfg = LaunchConfig::default();
    let fast_iters = iters.saturating_mul(500);
    let mut plain = |name: &str, mean_ns: u128, row_iters: u32| {
        println!("{name:<42} {mean_ns:>10} ns/iter");
        rows.push(SummaryRow::Plain { name: name.to_string(), mean_ns, iters: row_iters });
    };
    plain(
        "vfs_resolve_deep/stat_64_components",
        time_fn(
            || {
                std::hint::black_box(fs.stat(&deep_file).unwrap());
            },
            fast_iters,
        ),
        fast_iters,
    );
    plain(
        "vfs_resolve_deep/stat_8_symlink_hops",
        time_fn(
            || {
                std::hint::black_box(fs.stat(&link).unwrap());
            },
            fast_iters,
        ),
        fast_iters,
    );
    plain(
        "vfs_resolve_deep/canonicalize_symlink_ladder",
        time_fn(
            || {
                std::hint::black_box(fs.canonicalize(&link).unwrap());
            },
            fast_iters,
        ),
        fast_iters,
    );
    plain(
        "classify/cold500",
        time_fn(
            || {
                std::hint::black_box(ClassifiedStream::classify(&ops, &cfg));
            },
            iters,
        ),
        iters,
    );

    // The fault-injection rows: the contended 16Ki shape (1024 cold nodes
    // queueing on one server) under the two expensive degraded modes. A
    // brownout adds stall bookkeeping to every event; a 10% RPC loss adds
    // the FAULT-domain draw per served op plus ~11% retried server work —
    // both ride the faulty heap engine, which healthy rows never enter,
    // so this is the only place its cost is measured (and gated).
    let contended_cfg =
        LaunchConfig { ranks: 16 * 1024, ranks_per_node: 16, ..LaunchConfig::default() };
    let brownout_cfg = LaunchConfig {
        fault: FaultModel::ServerStall { at_ns: 2_000_000_000, duration_ns: 10_000_000_000 },
        ..contended_cfg.clone()
    };
    let storm_cfg = LaunchConfig {
        fault: FaultModel::RpcLoss {
            loss_milli: 100,
            timeout_ns: 1_000_000_000,
            backoff_base_ns: 250_000_000,
            max_retries: 5,
        },
        ..contended_cfg.clone()
    };
    let brownout_stream = ClassifiedStream::classify(&ops, &brownout_cfg);
    let storm_stream = ClassifiedStream::classify(&ops, &storm_cfg);
    plain(
        "faults/brownout_16Ki",
        time_fn(
            || {
                std::hint::black_box(simulate_classified(&brownout_stream, &brownout_cfg));
            },
            iters,
        ),
        iters,
    );
    plain(
        "faults/retry_storm",
        time_fn(
            || {
                std::hint::black_box(simulate_classified(&storm_stream, &storm_cfg));
            },
            iters,
        ),
        iters,
    );

    // The topology rows: the contended 16Ki shape (1024 cold nodes) routed
    // across metadata fleets. `flatten_sweep` prices the whole fig6-servers
    // ladder — five fleet sizes, the S-lane engines picking the analytic
    // closed form where the round-major guard admits it — and
    // `s8_contended` pins the S = 8 heap pass alone, the direct multi-lane
    // counterpart of `contended_16Ki_cold500`.
    let fleet_cfgs: Vec<LaunchConfig> = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&s| LaunchConfig { topology: ServerTopology::hash(s), ..contended_cfg.clone() })
        .collect();
    let fleet_stream = ClassifiedStream::classify(&ops, &fleet_cfgs[0]);
    plain(
        "servers/flatten_sweep",
        time_fn(
            || {
                for cfg in &fleet_cfgs {
                    std::hint::black_box(simulate_classified(&fleet_stream, cfg));
                }
            },
            iters,
        ),
        iters,
    );
    let s8_cfg = &fleet_cfgs[3];
    plain(
        "servers/s8_contended",
        time_fn(
            || {
                std::hint::black_box(simulate_classified(&fleet_stream, s8_cfg));
            },
            iters,
        ),
        iters,
    );

    // The serve-layer rows the bench-diff gate watches. One deterministic
    // cell (effective replicates clamp to 1) keeps the cold row about the
    // executor's own overhead plus one DES pass, not a whole sweep; the
    // profile cache is pre-warmed once so neither row re-times profiling,
    // which the serve layer amortises across queries exactly this way.
    let serve_matrix = ExperimentMatrix::new()
        .workload(Pynamic::new(25))
        .wrap_states([WrapState::Plain])
        .cache_policies([CachePolicy::Cold])
        .rank_points([512usize]);
    let serve_profiles = ProfileCache::new();
    let warm_store = ResultStore::in_memory();
    run_matrix_incremental(&serve_matrix, &warm_store, &serve_profiles, 1).unwrap();
    plain(
        "serve/warm_query",
        time_fn(
            || {
                let (report, stats) =
                    run_matrix_incremental(&serve_matrix, &warm_store, &serve_profiles, 1).unwrap();
                assert_eq!(stats.cold_cells, 0);
                std::hint::black_box(report);
            },
            fast_iters,
        ),
        fast_iters,
    );
    plain(
        "serve/cold_cell",
        time_fn(
            || {
                let store = ResultStore::in_memory();
                let (report, stats) =
                    run_matrix_incremental(&serve_matrix, &store, &serve_profiles, 1).unwrap();
                assert_eq!(stats.cold_cells, stats.cells_total);
                std::hint::black_box(report);
            },
            iters,
        ),
        iters,
    );

    // The batch-planner rows. `full_matrix` is the ISSUE 7 acceptance
    // shape: the fig6-backends matrix widened by the full distribution
    // axis at the default replicate count, simulated end to end as one
    // BatchPlan pass — profiling and classification pre-warmed outside
    // the timed region (a repeat sweep pays exactly this). A cold run
    // of the same matrix is `cells_profiled` on top, which `serve/*`
    // already prices. The wall clock splits sharply: the deterministic
    // backbone (24 deduped analytic kernels over the musl quadratic
    // segment storm) is tens of milliseconds, and the rest is the 528
    // stochastic replicate sims, whose per-event heap + RNG cost is
    // irreducible under bit-identity and already gated per event by
    // `des_million_ranks/contended_16Ki_cold500`. Seconds per run, so
    // this row gets a reduced iteration count (`time_fn` still takes
    // the min over its ten batches) and stays out of the criterion
    // group. `row_throughput` isolates the planner itself: a thousand
    // rows over one shared cold-500 schedule, every row a distinct
    // cold fleet (no kernel collapse), reported per row.
    let batch_matrix = ExperimentMatrix::new()
        .workload(Pynamic::new(300))
        .backends(MatrixBackend::all())
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .cache_policies([CachePolicy::Cold])
        .distributions(ServiceDistribution::all());
    let batch_profiles = ProfileCache::new();
    batch_matrix.run(&batch_profiles);
    let fm_iters = (iters / 50).max(2);
    plain(
        "batch/full_matrix",
        time_fn(
            || {
                std::hint::black_box(batch_matrix.run(&batch_profiles));
            },
            fm_iters,
        ),
        fm_iters,
    );
    const PLAN_ROWS: usize = 1024;
    let batch_cfg = LaunchConfig { ranks_per_node: 16, ..LaunchConfig::default() };
    let batch_stream = ClassifiedStream::classify(&ops, &batch_cfg);
    let run_plan = || {
        let mut plan = BatchPlan::new();
        let id = plan.stream(&batch_stream);
        for i in 0..PLAN_ROWS {
            plan.push(id, &batch_cfg.clone().with_ranks(16 * (i + 1)));
        }
        plan.execute()
    };
    plain(
        "batch/row_throughput",
        time_fn(
            || {
                std::hint::black_box(run_plan());
            },
            iters,
        ) / PLAN_ROWS as u128,
        iters,
    );

    // The adaptive-control rows. `adaptive/full_matrix` times the
    // fig6-dist acceptance matrix (three real dependency worlds × both
    // wrap states × the full distribution axis) under adaptive replicate
    // control — profiling and classification pre-warmed, so the row
    // prices the multi-round driver plus the replicates the stopping
    // rule actually spends. `adaptive/savings_ratio` records what it
    // saved: replicate sims a fixed-K run would spend over sims the rule
    // spent, as an integer milli-ratio (2560 = 2.56x). The adaptive run
    // is bit-reproducible, so this row is a constant for a given engine
    // — the bench-diff gate's delta on it is zero unless the stopping
    // rule itself changes meaning, which is exactly when it should trip.
    let ctl = AdaptiveControl {
        target_rel_milli: 50,
        min_k: 3,
        max_k: depchaos_launch::DEFAULT_REPLICATES,
        batch: 4,
    };
    let adaptive_matrix = ExperimentMatrix::new()
        .workload(Pynamic::new(200))
        .workload(Axom::paper())
        .workload(Rocm::matched())
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .cache_policies([CachePolicy::Cold])
        .distributions(ServiceDistribution::all())
        .adaptive(ctl);
    let adaptive_profiles = ProfileCache::new();
    let adaptive_report = adaptive_matrix.run(&adaptive_profiles);
    plain(
        "adaptive/full_matrix",
        time_fn(
            || {
                std::hint::black_box(adaptive_matrix.run(&adaptive_profiles));
            },
            fm_iters,
        ),
        fm_iters,
    );
    let spent: usize =
        adaptive_report.results.iter().flat_map(|r| &r.stats).map(|(_, st)| st.replicates).sum();
    let fixed_budget: usize = adaptive_report
        .results
        .iter()
        .map(|r| {
            let per = if r.spec.dist.is_deterministic() && !r.spec.fault.takes_draws() {
                1
            } else {
                depchaos_launch::DEFAULT_REPLICATES
            };
            per * r.stats.len()
        })
        .sum();
    plain("adaptive/savings_ratio", (fixed_budget as u128 * 1000) / spent.max(1) as u128, fm_iters);
    println!(
        "  (adaptive stopping: {spent} replicate sims vs {fixed_budget} fixed — the ratio \
         row above is milli-x, not nanoseconds)"
    );

    let json = write_summary(&rows, iters);
    println!("wrote BENCH_des.json ({} bytes)", json.len());

    let mut group = c.benchmark_group("des_million_ranks");
    group.sample_size(if quick { 3 } else { 10 });
    for p in &points {
        let classified = ClassifiedStream::classify(&p.ops, &p.cfg);
        group.bench_function(p.name, |b| b.iter(|| simulate_classified(&classified, &p.cfg)));
    }
    group.finish();

    let mut group = c.benchmark_group("vfs_resolve_deep");
    group.sample_size(if quick { 3 } else { 10 });
    group.bench_function("stat_64_components", |b| b.iter(|| fs.stat(&deep_file).unwrap()));
    group.bench_function("stat_8_symlink_hops", |b| b.iter(|| fs.stat(&link).unwrap()));
    group.bench_function("canonicalize_symlink_ladder", |b| {
        b.iter(|| fs.canonicalize(&link).unwrap())
    });
    group.finish();

    let mut group = c.benchmark_group("classify");
    group.sample_size(if quick { 3 } else { 10 });
    group.bench_function("cold500", |b| b.iter(|| ClassifiedStream::classify(&ops, &cfg)));
    group.finish();

    let mut group = c.benchmark_group("faults");
    group.sample_size(if quick { 3 } else { 10 });
    group.bench_function("brownout_16Ki", |b| {
        b.iter(|| simulate_classified(&brownout_stream, &brownout_cfg))
    });
    group.bench_function("retry_storm", |b| {
        b.iter(|| simulate_classified(&storm_stream, &storm_cfg))
    });
    group.finish();

    let mut group = c.benchmark_group("servers");
    group.sample_size(if quick { 3 } else { 10 });
    group.bench_function("s8_contended", |b| b.iter(|| simulate_classified(&fleet_stream, s8_cfg)));
    group.finish();

    let mut group = c.benchmark_group("serve");
    group.sample_size(if quick { 3 } else { 10 });
    group.bench_function("warm_query", |b| {
        b.iter(|| run_matrix_incremental(&serve_matrix, &warm_store, &serve_profiles, 1).unwrap())
    });
    group.bench_function("cold_cell", |b| {
        b.iter(|| {
            let store = ResultStore::in_memory();
            run_matrix_incremental(&serve_matrix, &store, &serve_profiles, 1).unwrap()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("batch");
    group.sample_size(if quick { 3 } else { 10 });
    group.bench_function("row_throughput", |b| b.iter(&run_plan));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Fig 6: Pynamic time-to-launch at 512/1024/2048 ranks, normal vs wrapped,
//! plus the Spindle-style broadcast-cache ablation — all one scenario-matrix
//! run at the paper's 900-library scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depchaos_bench::banner;
use depchaos_launch::{
    render_fig6, simulate_launch, CachePolicy, ExperimentMatrix, LaunchConfig, MatrixBackend,
    ProfileCache, WrapState,
};
use depchaos_vfs::StorageModel;
use depchaos_workloads::{Pynamic, Workload};

fn bench(c: &mut Criterion) {
    banner("Fig 6: Pynamic time-to-launch (900 libs, cold NFS)");
    let workload = Pynamic::paper();
    let cache = ProfileCache::new();
    let report = ExperimentMatrix::new()
        .workload(workload.clone())
        .backend(MatrixBackend::glibc())
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .cache_policies(CachePolicy::all())
        .run(&cache);

    let pick = |wrap: WrapState, cp: CachePolicy| report.one(wrap, cp).expect("scenario").clone();
    let normal = pick(WrapState::Plain, CachePolicy::Cold);
    let wrapped = pick(WrapState::Wrapped, CachePolicy::Cold);
    println!(
        "per-rank op streams: normal {} stat/openat, wrapped {} ({} profiling run(s))",
        normal.stat_openat, wrapped.stat_openat, report.cells_profiled
    );
    print!("{}", render_fig6(&report.rank_points, &normal.series, &wrapped.series));
    println!("paper: 169s->30.5s (5.5x) at 512; 344.6s normal at 2048 (7.2x)");

    let spindle = pick(WrapState::Plain, CachePolicy::Broadcast);
    println!("\nablation: normal + Spindle-style broadcast cache");
    print!("{}", render_fig6(&report.rank_points, &normal.series, &spindle.series));

    // Criterion loops re-simulate from the memoized profile cell — the DES
    // itself is what's being timed.
    let cell = cache
        .get(&depchaos_launch::CellKey {
            workload: workload.name().to_string(),
            backend: "glibc".to_string(),
            storage: StorageModel::Nfs,
        })
        .expect("cell profiled by the matrix run");
    let normal_ops = &cell.plain.as_ref().expect("plain profile").log;
    let wrapped_ops = &cell.wrapped.as_ref().expect("wrapped profile").log;
    let cfg = LaunchConfig::default();
    let mut group = c.benchmark_group("fig6/des");
    group.sample_size(10);
    for &ranks in &report.rank_points {
        group.bench_with_input(BenchmarkId::new("normal", ranks), &ranks, |b, &r| {
            b.iter(|| simulate_launch(normal_ops, &cfg.clone().with_ranks(r)))
        });
        group.bench_with_input(BenchmarkId::new("wrapped", ranks), &ranks, |b, &r| {
            b.iter(|| simulate_launch(wrapped_ops, &cfg.clone().with_ranks(r)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Fig 6: Pynamic time-to-launch at 512/1024/2048 ranks, normal vs wrapped,
//! plus the Spindle-style broadcast-cache ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use depchaos_bench::banner;
use depchaos_core::{wrap, ShrinkwrapOptions};
use depchaos_launch::{profile_load, render_fig6, simulate_launch, sweep_ranks, LaunchConfig};
use depchaos_loader::Environment;
use depchaos_vfs::{StraceLog, Vfs};
use depchaos_workloads::pynamic;

fn profiles() -> (StraceLog, StraceLog) {
    let fs = Vfs::nfs();
    let w = pynamic::install_paper(&fs, "/apps/pynamic").unwrap();
    let env = Environment::bare();
    let normal = profile_load(&fs, &w.exe_path, &env).unwrap();
    wrap(&fs, &w.exe_path, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
    let wrapped = profile_load(&fs, &w.exe_path, &env).unwrap();
    (normal, wrapped)
}

fn bench(c: &mut Criterion) {
    banner("Fig 6: Pynamic time-to-launch (900 libs, cold NFS)");
    let (normal, wrapped) = profiles();
    println!(
        "per-rank op streams: normal {} stat/openat, wrapped {}",
        normal.stat_openat(),
        wrapped.stat_openat()
    );
    let cfg = LaunchConfig::default();
    let points = [512usize, 1024, 2048];
    let n = sweep_ranks(&normal, &cfg, &points);
    let w = sweep_ranks(&wrapped, &cfg, &points);
    print!("{}", render_fig6(&points, &n, &w));
    println!("paper: 169s->30.5s (5.5x) at 512; 344.6s normal at 2048 (7.2x)");

    let spindle = LaunchConfig { broadcast_cache: true, ..LaunchConfig::default() };
    let s = sweep_ranks(&normal, &spindle, &points);
    println!("\nablation: normal + Spindle-style broadcast cache");
    print!("{}", render_fig6(&points, &n, &s));

    let mut group = c.benchmark_group("fig6/des");
    group.sample_size(10);
    for &ranks in &points {
        group.bench_with_input(BenchmarkId::new("normal", ranks), &ranks, |b, &r| {
            b.iter(|| simulate_launch(&normal, &cfg.clone().with_ranks(r)))
        });
        group.bench_with_input(BenchmarkId::new("wrapped", ranks), &ranks, |b, &r| {
            b.iter(|| simulate_launch(&wrapped, &cfg.clone().with_ranks(r)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! `bench-diff` — the CI perf-regression gate over `BENCH_des.json`.
//!
//! Usage:
//!
//! ```text
//! bench-diff <baseline.json> <current.json> [--gate PREFIX=PCT]... \
//!            [--threshold-pct N] [--prefix P] [--report FILE]
//! ```
//!
//! Compares the fresh summary against the checked-in baseline and exits
//! non-zero when any watched case's `mean_ns_per_iter` regressed beyond its
//! group's threshold or vanished. `--gate` is repeatable and names one
//! watched group with its own threshold (a case is judged by the first
//! matching gate); with no `--gate`, the legacy single-group flags apply
//! (`--prefix`, default `des_million_ranks/`; `--threshold-pct`, default
//! 25). Exit codes: 0 pass, 1 regression, 2 usage/parse error or mode
//! mismatch (quick vs full summaries are never comparable).

use depchaos_bench::diff::{diff_gates, parse_summary, Gate};

fn fail_usage(msg: &str) -> ! {
    eprintln!("bench-diff: {msg}");
    eprintln!(
        "usage: bench-diff <baseline.json> <current.json> [--gate PREFIX=PCT]... \
         [--threshold-pct N] [--prefix P] [--report FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold_pct = 25.0f64;
    let mut prefix = "des_million_ranks/".to_string();
    let mut gates: Vec<Gate> = Vec::new();
    let mut report_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value_of = |flag: &str| {
            args.next().unwrap_or_else(|| fail_usage(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--gate" => {
                let spec = value_of("--gate");
                let Some((p, pct)) = spec.split_once('=') else {
                    fail_usage("--gate takes PREFIX=PCT");
                };
                let pct: f64 =
                    pct.parse().unwrap_or_else(|_| fail_usage("--gate threshold must be a number"));
                gates.push(Gate::new(p, pct));
            }
            "--threshold-pct" => {
                threshold_pct = value_of("--threshold-pct")
                    .parse()
                    .unwrap_or_else(|_| fail_usage("--threshold-pct must be a number"))
            }
            "--prefix" => prefix = value_of("--prefix"),
            "--report" => report_path = Some(value_of("--report")),
            flag if flag.starts_with("--") => fail_usage(&format!("unknown flag {flag}")),
            path => paths.push(path.to_string()),
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        fail_usage("expected exactly two summary paths");
    };
    if gates.is_empty() {
        gates.push(Gate::new(&prefix, threshold_pct));
    }

    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| fail_usage(&format!("read {p}: {e}")))
    };
    let baseline = parse_summary(&read(baseline_path))
        .unwrap_or_else(|e| fail_usage(&format!("{baseline_path}: {e}")));
    let current = parse_summary(&read(current_path))
        .unwrap_or_else(|e| fail_usage(&format!("{current_path}: {e}")));

    let report = diff_gates(&baseline, &current, &gates).unwrap_or_else(|e| fail_usage(&e));
    let rendered = report.render();
    print!("{rendered}");
    if let Some(p) = report_path {
        if let Err(e) = std::fs::write(&p, &rendered) {
            fail_usage(&format!("write {p}: {e}"));
        }
    }
    std::process::exit(if report.ok() { 0 } else { 1 });
}

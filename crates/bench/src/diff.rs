//! Comparing `BENCH_des.json` summaries: the CI perf-regression gate.
//!
//! The `hotpath` bench persists a summary of the hot-path timings — the
//! DES cases (`des_million_ranks/*`) plus the slab-VFS and classification
//! probes (`vfs_resolve_deep/*`, `classify/*`). [`parse_summary`] reads
//! that file's fixed format, [`diff_gates`] compares a fresh run against
//! the checked-in baseline over any number of watched groups — each
//! [`Gate`] pairs a name prefix with its own regression threshold — and
//! the `bench-diff` binary turns the comparison into an exit code: any
//! gated case whose `mean_ns_per_iter` regresses beyond its group's
//! threshold, or that disappeared from the fresh run, fails the build.
//!
//! Two summaries are only comparable when they were produced in the same
//! mode: a `--test` quick run (few iterations, noisy) measured against a
//! full baseline would gate on noise, so [`diff`] refuses mode mismatches
//! outright instead of producing a misleading report.
//!
//! The parser is deliberately a scanner for the one format
//! `hotpath::write_summary` emits (the workspace has no JSON parser —
//! the vendored serde stand-in only serializes). It fails loudly on
//! anything it does not recognise rather than guessing.

/// One benchmark case from a summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchCase {
    pub name: String,
    pub mean_ns_per_iter: u64,
}

/// A parsed `BENCH_des.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchSummary {
    /// `"full"` or `"quick"` — how many iterations backed each mean.
    pub mode: String,
    pub cases: Vec<BenchCase>,
}

impl BenchSummary {
    pub fn get(&self, name: &str) -> Option<&BenchCase> {
        self.cases.iter().find(|c| c.name == name)
    }
}

/// Extract the JSON string value following `"key":`, if present.
fn string_field(text: &str, key: &str) -> Option<String> {
    let at = text.find(&format!("\"{key}\""))?;
    let rest = &text[at + key.len() + 2..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extract the unsigned integer value following `"key":`, if present.
fn u64_field(text: &str, key: &str) -> Option<u64> {
    let at = text.find(&format!("\"{key}\""))?;
    let rest = &text[at + key.len() + 2..];
    let colon = rest.find(':')?;
    let digits: String =
        rest[colon + 1..].trim_start().chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Parse a `BENCH_des.json` summary. Errors name what is missing.
pub fn parse_summary(text: &str) -> Result<BenchSummary, String> {
    let mode = string_field(text, "mode").ok_or("summary has no \"mode\" field")?;
    let results_at = text.find("\"results\"").ok_or("summary has no \"results\" array")?;
    let mut cases = Vec::new();
    // One `{...}` object per line in the writer's format; scan objects so a
    // reformatted file still parses.
    let mut rest = &text[results_at..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..].find('}').ok_or("unterminated result object")? + open;
        let obj = &rest[open..=close];
        let name = string_field(obj, "name")
            .ok_or_else(|| format!("result object without \"name\": {obj}"))?;
        let mean = u64_field(obj, "mean_ns_per_iter")
            .ok_or_else(|| format!("{name}: no \"mean_ns_per_iter\""))?;
        cases.push(BenchCase { name, mean_ns_per_iter: mean });
        rest = &rest[close + 1..];
    }
    if cases.is_empty() {
        return Err("summary has no result objects".to_string());
    }
    Ok(BenchSummary { mode, cases })
}

/// One watched benchmark group: every baseline case whose name starts with
/// `prefix` is gated at `threshold_pct`. Groups get their own thresholds
/// because their noise floors differ — the DES cases are long and stable,
/// the nanosecond-scale VFS probes wobble more even under the
/// min-of-batches estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct Gate {
    pub prefix: String,
    pub threshold_pct: f64,
}

impl Gate {
    pub fn new(prefix: &str, threshold_pct: f64) -> Gate {
        Gate { prefix: prefix.to_string(), threshold_pct }
    }
}

/// One case's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    pub name: String,
    pub baseline_ns: u64,
    pub current_ns: u64,
    /// Positive = slower than baseline.
    pub delta_pct: f64,
    /// The gate threshold this case was judged against.
    pub threshold_pct: f64,
    pub regressed: bool,
}

/// The gate's verdict over every baseline case under the watched prefixes.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    pub rows: Vec<DiffRow>,
    /// Baseline cases the current run no longer produces — a silent drop
    /// would otherwise read as "no regression".
    pub missing: Vec<String>,
    pub gates: Vec<Gate>,
}

impl DiffReport {
    /// Does the current run pass the gate?
    pub fn ok(&self) -> bool {
        self.missing.is_empty() && self.rows.iter().all(|r| !r.regressed)
    }

    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// The human-readable delta report CI uploads as an artifact.
    pub fn render(&self) -> String {
        let mut s = format!(
            "{:<44} {:>12} {:>12} {:>9} {:>7}  verdict\n",
            "case", "baseline ns", "current ns", "delta", "gate"
        );
        for r in &self.rows {
            s.push_str(&format!(
                "{:<44} {:>12} {:>12} {:>8.1}% {:>6.0}%  {}\n",
                r.name,
                r.baseline_ns,
                r.current_ns,
                r.delta_pct,
                r.threshold_pct,
                if r.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        for m in &self.missing {
            s.push_str(&format!("{m:<44} MISSING from current run\n"));
        }
        let gates: Vec<String> =
            self.gates.iter().map(|g| format!("{}>{:.0}%", g.prefix, g.threshold_pct)).collect();
        s.push_str(&format!(
            "gate: mean_ns_per_iter regression beyond [{}] fails; {}\n",
            gates.join(", "),
            if self.ok() { "PASS" } else { "FAIL" }
        ));
        s
    }
}

/// Compare `current` against `baseline` over every baseline case whose name
/// starts with `prefix`. Errs (rather than reporting) when the two
/// summaries were produced in different modes.
pub fn diff(
    baseline: &BenchSummary,
    current: &BenchSummary,
    prefix: &str,
    threshold_pct: f64,
) -> Result<DiffReport, String> {
    diff_gates(baseline, current, &[Gate::new(prefix, threshold_pct)])
}

/// [`diff`] over several watched groups at once, each with its own
/// threshold. A case is judged by the **first** gate whose prefix matches,
/// so overlapping prefixes behave predictably.
pub fn diff_gates(
    baseline: &BenchSummary,
    current: &BenchSummary,
    gates: &[Gate],
) -> Result<DiffReport, String> {
    if baseline.mode != current.mode {
        return Err(format!(
            "mode mismatch: baseline is \"{}\" but current is \"{}\" — quick-mode means are \
             too noisy to gate against a full baseline; rerun both in one mode",
            baseline.mode, current.mode
        ));
    }
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for b in &baseline.cases {
        let Some(gate) = gates.iter().find(|g| b.name.starts_with(&g.prefix)) else {
            continue;
        };
        match current.get(&b.name) {
            Some(c) => {
                let delta_pct = (c.mean_ns_per_iter as f64 - b.mean_ns_per_iter as f64)
                    / (b.mean_ns_per_iter as f64).max(1.0)
                    * 100.0;
                rows.push(DiffRow {
                    name: b.name.clone(),
                    baseline_ns: b.mean_ns_per_iter,
                    current_ns: c.mean_ns_per_iter,
                    delta_pct,
                    threshold_pct: gate.threshold_pct,
                    regressed: delta_pct > gate.threshold_pct,
                });
            }
            None => missing.push(b.name.clone()),
        }
    }
    Ok(DiffReport { rows, missing, gates: gates.to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(mode: &str, cases: &[(&str, u64)]) -> String {
        let mut s = format!(
            "{{\n  \"bench\": \"des_hot_path\",\n  \"mode\": \"{mode}\",\n  \"results\": [\n"
        );
        for (i, (name, mean)) in cases.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{name}\", \"ranks\": 1, \"nodes\": 1, \"server_ops\": 0, \
                 \"simulated_launch_s\": 1.000, \"mean_ns_per_iter\": {mean}, \"iters\": 200}}{}\n",
                if i + 1 == cases.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    #[test]
    fn parses_the_writer_format() {
        let text = summary("full", &[("des_million_ranks/a", 4000), ("classify/b", 90)]);
        let s = parse_summary(&text).unwrap();
        assert_eq!(s.mode, "full");
        assert_eq!(s.cases.len(), 2);
        assert_eq!(s.get("des_million_ranks/a").unwrap().mean_ns_per_iter, 4000);
    }

    #[test]
    fn parse_errors_name_the_hole() {
        assert!(parse_summary("{}").unwrap_err().contains("mode"));
        assert!(parse_summary("{\"mode\": \"full\"}").unwrap_err().contains("results"));
        let no_mean = "{\"mode\": \"full\", \"results\": [{\"name\": \"x\"}]}";
        assert!(parse_summary(no_mean).unwrap_err().contains("mean_ns_per_iter"));
    }

    #[test]
    fn synthetic_regression_over_threshold_fails_the_gate() {
        // The acceptance demonstration: a >25% des_million_ranks regression
        // must flip the report to FAIL.
        let base = parse_summary(&summary("full", &[("des_million_ranks/hot", 4000)])).unwrap();
        let slow = parse_summary(&summary("full", &[("des_million_ranks/hot", 5100)])).unwrap();
        let report = diff(&base, &slow, "des_million_ranks/", 25.0).unwrap();
        assert!(!report.ok());
        assert_eq!(report.regressions().len(), 1);
        assert!((report.rows[0].delta_pct - 27.5).abs() < 0.01);
        assert!(report.render().contains("REGRESSED"));
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn regressions_within_threshold_and_speedups_pass() {
        let base = parse_summary(&summary(
            "full",
            &[("des_million_ranks/hot", 4000), ("des_million_ranks/cool", 100)],
        ))
        .unwrap();
        let cur = parse_summary(&summary(
            "full",
            &[("des_million_ranks/hot", 4900), ("des_million_ranks/cool", 10)],
        ))
        .unwrap();
        let report = diff(&base, &cur, "des_million_ranks/", 25.0).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(report.render().contains("PASS"));
    }

    #[test]
    fn cases_outside_the_prefix_are_not_gated() {
        let base = parse_summary(&summary("full", &[("classify/cold500", 100)])).unwrap();
        let cur = parse_summary(&summary("full", &[("classify/cold500", 900)])).unwrap();
        let report = diff(&base, &cur, "des_million_ranks/", 25.0).unwrap();
        assert!(report.rows.is_empty() && report.ok());
    }

    #[test]
    fn a_vanished_case_fails_the_gate() {
        let base = parse_summary(&summary(
            "full",
            &[("des_million_ranks/hot", 4000), ("des_million_ranks/gone", 10)],
        ))
        .unwrap();
        let cur = parse_summary(&summary("full", &[("des_million_ranks/hot", 4000)])).unwrap();
        let report = diff(&base, &cur, "des_million_ranks/", 25.0).unwrap();
        assert!(!report.ok());
        assert_eq!(report.missing, vec!["des_million_ranks/gone".to_string()]);
        assert!(report.render().contains("MISSING"));
    }

    #[test]
    fn mismatched_modes_are_refused() {
        let base = parse_summary(&summary("full", &[("des_million_ranks/hot", 4000)])).unwrap();
        let quick = parse_summary(&summary("quick", &[("des_million_ranks/hot", 4000)])).unwrap();
        let err = diff(&base, &quick, "des_million_ranks/", 25.0).unwrap_err();
        assert!(err.contains("mode mismatch"), "{err}");
    }

    #[test]
    fn per_group_thresholds_apply_independently() {
        // 30% on the DES case (gated at 25 → fails), 30% on the vfs case
        // (gated at 40 → passes): one report, two verdicts.
        let base = parse_summary(&summary(
            "full",
            &[("des_million_ranks/hot", 1000), ("vfs_resolve_deep/stat", 1000)],
        ))
        .unwrap();
        let cur = parse_summary(&summary(
            "full",
            &[("des_million_ranks/hot", 1300), ("vfs_resolve_deep/stat", 1300)],
        ))
        .unwrap();
        let gates = [Gate::new("des_million_ranks/", 25.0), Gate::new("vfs_resolve_deep/", 40.0)];
        let report = diff_gates(&base, &cur, &gates).unwrap();
        assert_eq!(report.rows.len(), 2);
        let des = report.rows.iter().find(|r| r.name.starts_with("des_")).unwrap();
        let vfs = report.rows.iter().find(|r| r.name.starts_with("vfs_")).unwrap();
        assert!(des.regressed && des.threshold_pct == 25.0);
        assert!(!vfs.regressed && vfs.threshold_pct == 40.0);
        assert!(!report.ok());
        let rendered = report.render();
        assert!(rendered.contains("des_million_ranks/>25%"), "{rendered}");
        assert!(rendered.contains("vfs_resolve_deep/>40%"), "{rendered}");
    }

    #[test]
    fn ungated_groups_are_ignored_and_vanished_gated_cases_fail() {
        let base =
            parse_summary(&summary("full", &[("classify/cold500", 100), ("loader/other", 100)]))
                .unwrap();
        let cur = parse_summary(&summary("full", &[("loader/other", 9000)])).unwrap();
        let gates = [Gate::new("classify/", 40.0)];
        let report = diff_gates(&base, &cur, &gates).unwrap();
        assert!(report.rows.is_empty(), "loader/ is not gated");
        assert_eq!(report.missing, vec!["classify/cold500".to_string()]);
        assert!(!report.ok());
    }

    #[test]
    fn the_checked_in_baseline_parses() {
        // Guards the writer and parser against drifting apart: the real
        // repo-root baseline must always be readable.
        let text = include_str!("../../../BENCH_des.json");
        let s = parse_summary(text).unwrap();
        assert!(s.cases.iter().any(|c| c.name.starts_with("des_million_ranks/")));
    }
}

//! # depchaos-bench — the paper's evaluation, regenerated
//!
//! One Criterion bench per table/figure. Each bench prints the
//! paper-equivalent rows once (so `cargo bench` output doubles as the
//! experiment record) and then measures the underlying computation.
//!
//! | bench | artifact |
//! |---|---|
//! | `fig1_debian` | Fig 1 — dependency declarations by constraint type |
//! | `fig2_ruby` | Fig 2 — the 453-node Nix Ruby closure |
//! | `fig3_paradox` | Fig 3 — exhaustive ordering search |
//! | `fig4_reuse` | Fig 4 — shared-object reuse histogram |
//! | `table2_emacs` | Table II — emacs syscalls, normal vs wrapped |
//! | `fig6_pynamic` | Fig 6 — Pynamic time-to-launch sweep |
//! | `shrinkwrap_cost` | §V intro — cost of running Shrinkwrap itself |
//! | `loader_micro` | supporting microbenchmarks (glibc vs musl, probe cost) |
//!
//! The `hotpath` bench also persists `BENCH_des.json`; the [`diff`] module
//! and its `bench-diff` binary compare that summary against the checked-in
//! baseline — the CI perf-regression gate.

pub mod diff;

/// Print a banner once per bench so the harness output is self-describing.
pub fn banner(title: &str) {
    println!("\n================ {title} ================");
}

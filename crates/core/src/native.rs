//! The *native* resolution strategy (§IV).
//!
//! For binaries that cannot execute on the wrapping host (cross-platform
//! images, foreign loaders), Shrinkwrap "traverses the filesystem the way
//! that the loader would". This module re-implements the glibc search rules
//! against the VFS directly — independently of [`depchaos_loader`] — with
//! the corner cases the paper calls out: wrong-architecture candidates are
//! detected and skipped, and hwcaps subdirectories are probed first.
//!
//! The semantic difference from the `Ldd` strategy: resolution is
//! *per-object*, with no soname dedup cache, so a dependency that only
//! works because something else loads it earlier is reported missing here
//! rather than silently inherited.

use std::collections::HashMap;

use depchaos_elf::{io, ElfObject, Machine};
use depchaos_loader::{Environment, LdCache};
use depchaos_vfs::{path as vpath, Vfs};

/// A per-request resolution outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct NativeResolution {
    pub requester: String,
    pub name: String,
    /// Resolved absolute path, or `None`.
    pub path: Option<String>,
}

/// Resolve the full closure of `exe_path` natively, breadth-first.
/// Returns resolutions in BFS request order (first occurrence only).
pub fn resolve_closure(
    fs: &Vfs,
    exe_path: &str,
    env: &Environment,
    cache: &LdCache,
) -> Result<Vec<NativeResolution>, String> {
    let exe = io::peek_object(fs, exe_path).map_err(|e| e.to_string())?;
    let want_arch = exe.machine;
    let mut out = Vec::new();
    // path → object for chain reconstruction; resolution_seen dedups output.
    let mut seen: HashMap<String, ()> = HashMap::new();
    // BFS queue of (ancestor chain as (object, path) indices, name).
    let mut loaded: Vec<(ElfObject, String)> = vec![(exe.clone(), exe_path.to_string())];
    let mut queue: Vec<(usize, String)> = exe.needed.iter().map(|n| (0usize, n.clone())).collect();
    let mut qi = 0usize;
    while qi < queue.len() {
        let (req_idx, name) = queue[qi].clone();
        qi += 1;
        let key = name.clone();
        if seen.contains_key(&key) {
            continue;
        }
        seen.insert(key, ());
        let chain = ancestor_chain(&loaded, req_idx);
        let requester = loaded[req_idx].1.clone();
        match resolve_one(fs, env, cache, want_arch, &chain, &name) {
            Some((path, obj)) => {
                out.push(NativeResolution {
                    requester: requester.clone(),
                    name,
                    path: Some(path.clone()),
                });
                if !loaded.iter().any(|(_, p)| p == &path) {
                    loaded.push((obj.clone(), path));
                    let new_idx = loaded.len() - 1;
                    for n in &obj.needed {
                        queue.push((new_idx, n.clone()));
                    }
                }
            }
            None => out.push(NativeResolution { requester, name, path: None }),
        }
    }
    Ok(out)
}

/// Reconstruct the requester-to-executable chain for RPATH walking.
/// In this static traversal the chain is simply requester → executable,
/// because per-object resolution does not track who loaded whom beyond the
/// direct parent (loaded[0] is always the executable).
fn ancestor_chain(loaded: &[(ElfObject, String)], req_idx: usize) -> Vec<(ElfObject, String)> {
    if req_idx == 0 {
        vec![loaded[0].clone()]
    } else {
        vec![loaded[req_idx].clone(), loaded[0].clone()]
    }
}

fn resolve_one(
    fs: &Vfs,
    env: &Environment,
    cache: &LdCache,
    want_arch: Machine,
    chain: &[(ElfObject, String)],
    name: &str,
) -> Option<(String, ElfObject)> {
    if name.contains('/') {
        return open_checked(fs, name, want_arch);
    }
    let requester = &chain[0].0;

    // RPATH chain (suppressed by requester RUNPATH), then LD_LIBRARY_PATH,
    // then requester RUNPATH, then cache, then defaults.
    if requester.runpath.is_empty() {
        for (obj, opath) in chain {
            if !obj.runpath.is_empty() {
                continue;
            }
            for entry in &obj.rpath {
                let dir = vpath::expand_origin(entry, &vpath::parent(opath));
                if let Some(hit) = probe(fs, &dir, name, want_arch, &env.hwcaps) {
                    return Some(hit);
                }
            }
        }
    }
    for dir in &env.ld_library_path {
        if let Some(hit) = probe(fs, dir, name, want_arch, &env.hwcaps) {
            return Some(hit);
        }
    }
    let (requester, rpath_owner) = (&chain[0].0, &chain[0].1);
    for entry in &requester.runpath {
        let dir = vpath::expand_origin(entry, &vpath::parent(rpath_owner));
        if let Some(hit) = probe(fs, &dir, name, want_arch, &env.hwcaps) {
            return Some(hit);
        }
    }
    if let Some(path) = cache.lookup(name, want_arch) {
        if let Some(hit) = open_checked(fs, path, want_arch) {
            return Some(hit);
        }
    }
    for dir in &env.default_paths {
        if let Some(hit) = probe(fs, dir, name, want_arch, &env.hwcaps) {
            return Some(hit);
        }
    }
    None
}

/// Probe one directory: hwcaps first, then plain — unaccounted (the wrap
/// tool's own traversal is not process startup; its cost is measured by the
/// shrinkwrap_cost bench at the wall-clock level instead).
fn probe(
    fs: &Vfs,
    dir: &str,
    name: &str,
    want_arch: Machine,
    hwcaps: &[String],
) -> Option<(String, ElfObject)> {
    for sub in hwcaps.iter().map(String::as_str).chain(std::iter::once("")) {
        let full = if sub.is_empty() {
            vpath::join(dir, name)
        } else {
            vpath::join(&vpath::join(dir, sub), name)
        };
        if let Some(hit) = open_checked(fs, &full, want_arch) {
            return Some(hit);
        }
    }
    None
}

fn open_checked(fs: &Vfs, path: &str, want_arch: Machine) -> Option<(String, ElfObject)> {
    let bytes = fs.peek_file(path).ok()?;
    let obj = ElfObject::parse(&bytes).ok()?;
    // The System V rule Shrinkwrap must replicate: silently ignore
    // wrong-architecture candidates (ubiquitous on multi-ABI systems).
    if obj.machine != want_arch {
        return None;
    }
    Some((path.to_string(), obj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;

    #[test]
    fn resolves_simple_closure() {
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("liba.so").runpath("/l").build())
            .unwrap();
        install(
            &fs,
            "/l/liba.so",
            &ElfObject::dso("liba.so").needs("libb.so").runpath("/l").build(),
        )
        .unwrap();
        install(&fs, "/l/libb.so", &ElfObject::dso("libb.so").build()).unwrap();
        let rs = resolve_closure(&fs, "/bin/app", &Environment::bare(), &LdCache::empty()).unwrap();
        let paths: Vec<_> = rs.iter().filter_map(|r| r.path.as_deref()).collect();
        assert_eq!(paths, vec!["/l/liba.so", "/l/libb.so"]);
    }

    #[test]
    fn skips_wrong_arch() {
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("libm.so").runpath("/x").runpath("/y").build(),
        )
        .unwrap();
        install(&fs, "/x/libm.so", &ElfObject::dso("libm.so").machine(Machine::Aarch64).build())
            .unwrap();
        install(&fs, "/y/libm.so", &ElfObject::dso("libm.so").build()).unwrap();
        let rs = resolve_closure(&fs, "/bin/app", &Environment::bare(), &LdCache::empty()).unwrap();
        assert_eq!(rs[0].path.as_deref(), Some("/y/libm.so"));
    }

    #[test]
    fn stricter_than_ldd_about_hidden_deps() {
        // A dep reachable only because a sibling loads it first: the ldd
        // strategy inherits it via dedup; native reports it missing for the
        // object that cannot find it... unless the first resolution already
        // covered the same soname (BFS first-occurrence rule). Requesting
        // under a *different* soname shows the strictness.
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("libok.so").needs("libnopath.so").runpath("/l").build(),
        )
        .unwrap();
        install(&fs, "/l/libok.so", &ElfObject::dso("libok.so").build()).unwrap();
        install(
            &fs,
            "/l/libnopath.so",
            &ElfObject::dso("libnopath.so").needs("libhidden.so").build(),
        )
        .unwrap();
        install(&fs, "/hidden/libhidden.so", &ElfObject::dso("libhidden.so").build()).unwrap();
        let rs = resolve_closure(&fs, "/bin/app", &Environment::bare(), &LdCache::empty()).unwrap();
        let hidden = rs.iter().find(|r| r.name == "libhidden.so").unwrap();
        assert!(hidden.path.is_none(), "native strategy surfaces the gap");
    }

    #[test]
    fn hwcaps_respected() {
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libv.so").runpath("/l").build())
            .unwrap();
        install(&fs, "/l/glibc-hwcaps/x86-64-v3/libv.so", &ElfObject::dso("libv.so").build())
            .unwrap();
        install(&fs, "/l/libv.so", &ElfObject::dso("libv.so").build()).unwrap();
        let env = Environment::bare().with_hwcaps(["glibc-hwcaps/x86-64-v3"]);
        let rs = resolve_closure(&fs, "/bin/app", &env, &LdCache::empty()).unwrap();
        assert_eq!(rs[0].path.as_deref(), Some("/l/glibc-hwcaps/x86-64-v3/libv.so"));
    }
}

//! Post-wrap auditing: is the frozen binary complete, and does it survive a
//! different loader?

use depchaos_elf::io;
use depchaos_loader::{Environment, GlibcLoader, MuslLoader};
use depchaos_vfs::Vfs;

/// Outcome of auditing a (presumably wrapped) binary.
#[derive(Debug, Clone)]
pub struct AuditReport {
    pub binary: String,
    /// Needed entries that are absolute paths.
    pub absolute_entries: usize,
    /// Needed entries that are still bare sonames (searched at runtime).
    pub searched_entries: usize,
    /// Absolute entries whose target is missing or unparseable.
    pub dangling: Vec<String>,
    /// Whether a glibc-semantics load succeeds.
    pub glibc_ok: bool,
    /// Whether a musl-semantics load succeeds — the §IV incompatibility.
    pub musl_ok: bool,
    /// Objects musl loaded twice (inode-distinct duplicates) or failed on.
    pub musl_issues: Vec<String>,
}

impl AuditReport {
    /// Fully frozen: every entry absolute and resolvable under glibc.
    pub fn fully_frozen(&self) -> bool {
        self.searched_entries == 0 && self.dangling.is_empty() && self.glibc_ok
    }
}

/// Audit a binary's frozen-ness and cross-loader behaviour.
pub fn audit(fs: &Vfs, binary: &str, env: &Environment) -> Result<AuditReport, String> {
    let obj = io::peek_object(fs, binary).map_err(|e| e.to_string())?;
    let absolute: Vec<&String> = obj.needed.iter().filter(|n| n.contains('/')).collect();
    let searched = obj.needed.len() - absolute.len();
    let mut dangling = Vec::new();
    for p in &absolute {
        if io::peek_object(fs, p).is_err() {
            dangling.push((*p).clone());
        }
    }
    let glibc_ok = GlibcLoader::new(fs)
        .with_env(env.clone())
        .load(binary)
        .map(|r| r.success())
        .unwrap_or(false);
    let (musl_ok, musl_issues) = cross_loader_check(fs, binary, env);
    Ok(AuditReport {
        binary: binary.to_string(),
        absolute_entries: absolute.len(),
        searched_entries: searched,
        dangling,
        glibc_ok,
        musl_ok,
        musl_issues,
    })
}

/// Load under musl semantics and report failures plus duplicate loads —
/// the behaviours that make Shrinkwrap "not compatible across other
/// environments" (§IV).
pub fn cross_loader_check(fs: &Vfs, binary: &str, env: &Environment) -> (bool, Vec<String>) {
    match MuslLoader::new(fs).with_env(env.clone()).load(binary) {
        Ok(r) => {
            let mut issues: Vec<String> =
                r.failures.iter().map(|f| format!("unresolved: {}", f.name)).collect();
            // Duplicate detection: two loaded objects with the same soname.
            let mut seen = std::collections::HashMap::new();
            for o in &r.objects {
                let so = o.object.effective_soname().to_string();
                if let Some(first) = seen.get(&so) {
                    issues.push(format!("duplicate load of {so}: {first} and {}", o.path));
                } else {
                    seen.insert(so, o.path.clone());
                }
            }
            (r.success() && issues.is_empty(), issues)
        }
        Err(e) => (false, vec![e.to_string()]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ShrinkwrapOptions;
    use crate::wrap::wrap;
    use depchaos_elf::io::install;
    use depchaos_elf::ElfObject;

    fn wrapped_world() -> Vfs {
        let fs = Vfs::local();
        // Store-like: the executable's propagating RPATH serves the whole
        // closure; the libraries carry no search paths of their own.
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("libx.so").needs("liby.so").rpath("/l").build(),
        )
        .unwrap();
        install(&fs, "/l/libx.so", &ElfObject::dso("libx.so").needs("libz.so").build()).unwrap();
        install(&fs, "/l/liby.so", &ElfObject::dso("liby.so").needs("libz.so").build()).unwrap();
        install(&fs, "/l/libz.so", &ElfObject::dso("libz.so").build()).unwrap();
        wrap(&fs, "/bin/app", &ShrinkwrapOptions::new().env(Environment::bare())).unwrap();
        fs
    }

    #[test]
    fn wrapped_binary_audits_fully_frozen() {
        let fs = wrapped_world();
        let rep = audit(&fs, "/bin/app", &Environment::bare()).unwrap();
        assert!(rep.fully_frozen(), "{rep:?}");
        assert_eq!(rep.absolute_entries, 3);
        assert_eq!(rep.searched_entries, 0);
        assert!(rep.glibc_ok);
    }

    #[test]
    fn musl_divergence_detected() {
        // Under musl, transitive bare requests (libz.so from libx/liby) are
        // rescued by inode dedup only if a search can find the same file —
        // here there is no search path left after wrapping, so musl fails.
        let fs = wrapped_world();
        let rep = audit(&fs, "/bin/app", &Environment::bare()).unwrap();
        assert!(rep.glibc_ok);
        assert!(!rep.musl_ok, "the documented musl incompatibility");
        assert!(rep.musl_issues.iter().any(|i| i.contains("libz.so")));
    }

    #[test]
    fn dangling_absolute_entry_reported() {
        let fs = wrapped_world();
        fs.remove("/l/libz.so").unwrap();
        let rep = audit(&fs, "/bin/app", &Environment::bare()).unwrap();
        assert_eq!(rep.dangling, vec!["/l/libz.so"]);
        assert!(!rep.fully_frozen());
    }

    #[test]
    fn unwrapped_binary_reports_searched_entries() {
        let fs = Vfs::local();
        install(&fs, "/bin/plain", &ElfObject::exe("plain").needs("libm.so.6").build()).unwrap();
        install(&fs, "/usr/lib/libm.so.6", &ElfObject::dso("libm.so.6").build()).unwrap();
        let rep = audit(&fs, "/bin/plain", &Environment::default()).unwrap();
        assert_eq!(rep.searched_entries, 1);
        assert!(!rep.fully_frozen());
        assert!(rep.glibc_ok);
    }
}

//! Bulk wrapping: apply Shrinkwrap to every executable under a prefix.
//!
//! Real deployments wrap whole install trees (a Spack view, a module's
//! `bin/`), not single files. [`wrap_tree`] walks a directory, wraps every
//! dynamic executable it finds, and aggregates the outcome; objects that
//! are not executables (libraries, data files) are left untouched.

use depchaos_elf::{io, ObjectKind};
use depchaos_vfs::{path as vpath, Vfs};

use crate::options::ShrinkwrapOptions;
use crate::report::{WrapError, WrapReport};
use crate::wrap::wrap;

/// Result of a tree wrap.
#[derive(Debug, Default)]
pub struct TreeReport {
    /// Per-binary reports, in path order.
    pub wrapped: Vec<WrapReport>,
    /// Binaries that failed to wrap, with the error.
    pub failed: Vec<(String, WrapError)>,
    /// Files inspected and skipped (libraries, non-ELF).
    pub skipped: usize,
}

impl TreeReport {
    pub fn all_ok(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Walk `prefix` recursively and wrap every dynamic executable.
pub fn wrap_tree(fs: &Vfs, prefix: &str, opts: &ShrinkwrapOptions) -> TreeReport {
    let mut report = TreeReport::default();
    let mut stack = vec![prefix.to_string()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs.list_dir(&dir) else { continue };
        for name in entries {
            let path = vpath::join(&dir, &name);
            match fs.peek(&path) {
                Ok(meta) if meta.kind == depchaos_vfs::FileKind::Dir => stack.push(path),
                Ok(_) => match io::peek_object(fs, &path) {
                    Ok(obj) if obj.kind == ObjectKind::Executable && !obj.needed.is_empty() => {
                        match wrap(fs, &path, opts) {
                            Ok(r) => report.wrapped.push(r),
                            Err(e) => report.failed.push((path, e)),
                        }
                    }
                    _ => report.skipped += 1,
                },
                Err(_) => report.skipped += 1,
            }
        }
    }
    report.wrapped.sort_by(|a, b| a.binary.cmp(&b.binary));
    report.failed.sort_by(|a, b| a.0.cmp(&b.0));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;
    use depchaos_elf::ElfObject;
    use depchaos_loader::{Environment, GlibcLoader};

    fn world() -> Vfs {
        let fs = Vfs::local();
        install(&fs, "/opt/pkg/lib/liba.so", &ElfObject::dso("liba.so").build()).unwrap();
        install(
            &fs,
            "/opt/pkg/bin/tool1",
            &ElfObject::exe("tool1").needs("liba.so").runpath("/opt/pkg/lib").build(),
        )
        .unwrap();
        install(
            &fs,
            "/opt/pkg/bin/nested/tool2",
            &ElfObject::exe("tool2").needs("liba.so").runpath("/opt/pkg/lib").build(),
        )
        .unwrap();
        install(&fs, "/opt/pkg/bin/static_tool", &{
            let mut o = ElfObject::exe("static_tool").build();
            o.interp = None;
            o
        })
        .unwrap();
        fs.write_file_p("/opt/pkg/share/readme.txt", b"docs".to_vec()).unwrap();
        fs
    }

    #[test]
    fn wraps_every_dynamic_executable() {
        let fs = world();
        let opts = ShrinkwrapOptions::new().env(Environment::bare());
        let rep = wrap_tree(&fs, "/opt/pkg", &opts);
        assert!(rep.all_ok(), "{:?}", rep.failed);
        let names: Vec<&str> = rep.wrapped.iter().map(|w| w.binary.as_str()).collect();
        assert_eq!(names, vec!["/opt/pkg/bin/nested/tool2", "/opt/pkg/bin/tool1"]);
        // Libraries, static binaries, and data files skipped.
        assert_eq!(rep.skipped, 3);
        // And the wrapped binaries load search-free.
        for bin in ["/opt/pkg/bin/tool1", "/opt/pkg/bin/nested/tool2"] {
            let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(bin).unwrap();
            assert!(r.success());
            assert_eq!(r.syscalls.misses, 0);
        }
    }

    #[test]
    fn failures_collected_not_fatal() {
        let fs = world();
        install(
            &fs,
            "/opt/pkg/bin/broken",
            &ElfObject::exe("broken").needs("libmissing.so").build(),
        )
        .unwrap();
        let rep = wrap_tree(&fs, "/opt/pkg", &ShrinkwrapOptions::new().env(Environment::bare()));
        assert_eq!(rep.failed.len(), 1);
        assert_eq!(rep.failed[0].0, "/opt/pkg/bin/broken");
        assert_eq!(rep.wrapped.len(), 2, "others still wrapped");
    }

    #[test]
    fn empty_or_missing_prefix_is_harmless() {
        let fs = Vfs::local();
        let rep = wrap_tree(&fs, "/nowhere", &ShrinkwrapOptions::new());
        assert!(rep.all_ok());
        assert!(rep.wrapped.is_empty());
    }

    #[test]
    fn tree_wrap_is_backend_generic() {
        // wrap_tree inherits the backend from the options, so whole-prefix
        // wraps run under any loader semantics.
        use crate::options::LoaderBackend;
        let fs = world();
        let opts = ShrinkwrapOptions::new()
            .env(Environment::bare())
            .backend(LoaderBackend::musl())
            .strip_search_paths(false);
        let rep = wrap_tree(&fs, "/opt/pkg", &opts);
        assert!(rep.all_ok(), "{:?}", rep.failed);
        assert_eq!(rep.wrapped.len(), 2);
        assert!(rep.wrapped.iter().all(|w| w.new_needed.iter().all(|p| p.contains('/'))));
    }
}

//! Wrap results and diagnostics.

use std::fmt;

/// Why a wrap failed outright.
#[derive(Debug, Clone, PartialEq)]
pub enum WrapError {
    /// The binary itself is missing or unparseable.
    BadBinary(String),
    /// A dependency could not be resolved (under [`crate::OnMissing::Error`]).
    Unresolved { requester: String, name: String },
    /// Filesystem failure writing the result.
    WriteFailed(String),
}

impl fmt::Display for WrapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrapError::BadBinary(p) => write!(f, "cannot shrinkwrap {p}: not a dynamic binary"),
            WrapError::Unresolved { requester, name } => {
                write!(f, "cannot resolve {name} (needed by {requester})")
            }
            WrapError::WriteFailed(p) => write!(f, "failed to rewrite {p}"),
        }
    }
}

impl std::error::Error for WrapError {}

/// Advisory findings that do not stop the wrap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WrapWarning {
    /// Two closure members define the same strong symbol; runtime order
    /// (preserved) decides the winner — the libomp/libompstubs situation.
    DuplicateStrongSymbol { symbol: String, first: String, second: String },
    /// A needed entry stayed unresolved ([`crate::OnMissing::Keep`]).
    LeftUnresolved { requester: String, name: String },
    /// The object dlopen()s libraries that were not declared; they will
    /// still be searched at runtime.
    UndeclaredDlopen { object: String, name: String },
}

impl fmt::Display for WrapWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrapWarning::DuplicateStrongSymbol { symbol, first, second } => {
                write!(
                    f,
                    "duplicate strong symbol {symbol}: {first} wins over {second} (load order)"
                )
            }
            WrapWarning::LeftUnresolved { requester, name } => {
                write!(f, "{name} (needed by {requester}) left unresolved")
            }
            WrapWarning::UndeclaredDlopen { object, name } => {
                write!(f, "{object} dlopens {name} at runtime; not frozen")
            }
        }
    }
}

/// The result of a successful wrap.
#[derive(Debug, Clone)]
pub struct WrapReport {
    /// The binary that was rewritten.
    pub binary: String,
    /// The original needed list.
    pub original_needed: Vec<String>,
    /// The frozen needed list: absolute paths, closure lifted, in load order.
    pub new_needed: Vec<String>,
    /// `(requested name, resolved path)` in resolution order.
    pub resolved: Vec<(String, String)>,
    /// Advisory findings.
    pub warnings: Vec<WrapWarning>,
}

impl WrapReport {
    /// Number of entries frozen into the binary.
    pub fn frozen_count(&self) -> usize {
        self.new_needed.len()
    }

    /// Entries that were *lifted* (transitive deps not in the original list).
    pub fn lifted(&self) -> Vec<&str> {
        self.new_needed
            .iter()
            .filter(|p| {
                !self.original_needed.iter().any(|orig| {
                    orig == *p || self.resolved.iter().any(|(n, rp)| n == orig && rp == *p)
                })
            })
            .map(String::as_str)
            .collect()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut s = format!(
            "shrinkwrapped {}: {} needed entries ({} original, {} lifted)\n",
            self.binary,
            self.new_needed.len(),
            self.original_needed.len(),
            self.lifted().len(),
        );
        for w in &self.warnings {
            s.push_str(&format!("  warning: {w}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifted_excludes_originals() {
        let r = WrapReport {
            binary: "/bin/app".into(),
            original_needed: vec!["liba.so".into()],
            new_needed: vec!["/l/liba.so".into(), "/l/libb.so".into()],
            resolved: vec![
                ("liba.so".into(), "/l/liba.so".into()),
                ("libb.so".into(), "/l/libb.so".into()),
            ],
            warnings: vec![],
        };
        assert_eq!(r.lifted(), vec!["/l/libb.so"]);
        assert_eq!(r.frozen_count(), 2);
        assert!(r.render().contains("1 lifted"));
    }

    #[test]
    fn warning_display() {
        let w = WrapWarning::DuplicateStrongSymbol {
            symbol: "omp_get_num_threads".into(),
            first: "/v/libomp.so".into(),
            second: "/v/libompstubs.so".into(),
        };
        assert!(w.to_string().contains("load order"));
    }
}

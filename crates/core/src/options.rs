//! Shrinkwrap configuration.

use depchaos_loader::{Environment, LdCache};

/// How dependencies are resolved to absolute paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Run the loader (like `ld.so --list`) and freeze what it reports.
    /// Exact for the current system, including soname-dedup effects.
    #[default]
    Ldd,
    /// Walk the filesystem the way the loader would, without executing it.
    /// Works for foreign binaries; stricter about hidden-missing paths.
    Native,
}

/// What to do when a dependency cannot be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnMissing {
    /// Fail the wrap (default — a wrapped binary must be complete).
    #[default]
    Error,
    /// Keep the unresolved soname as-is and record a warning.
    Keep,
}

/// Options for [`crate::wrap()`].
#[derive(Debug, Clone, Default)]
pub struct ShrinkwrapOptions {
    pub strategy: Strategy,
    pub on_missing: OnMissing,
    /// Environment the resolution runs under (the build environment the
    /// paper says you inspect and then rely on).
    pub env: Environment,
    /// ld.so.cache of the resolution system.
    pub cache: LdCache,
    /// Promote each object's `dlopen` hints into the needed list before
    /// resolving, so runtime-loaded modules are frozen too (the python-
    /// modules pattern from §IV).
    pub declare_dlopens: bool,
    /// Clear `RPATH`/`RUNPATH` on the wrapped binary (they are dead weight
    /// once every entry is absolute).
    pub strip_search_paths: bool,
    /// Emit warnings for duplicate strong symbols across the closure
    /// (Shrinkwrap "does not explicitly check symbol shadowing ... it
    /// preserves the order the user set"; the check is advisory).
    pub warn_duplicate_symbols: bool,
}

impl ShrinkwrapOptions {
    pub fn new() -> Self {
        ShrinkwrapOptions {
            strip_search_paths: true,
            warn_duplicate_symbols: true,
            ..Default::default()
        }
    }

    pub fn strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    pub fn on_missing(mut self, m: OnMissing) -> Self {
        self.on_missing = m;
        self
    }

    pub fn env(mut self, env: Environment) -> Self {
        self.env = env;
        self
    }

    pub fn cache(mut self, cache: LdCache) -> Self {
        self.cache = cache;
        self
    }

    pub fn declare_dlopens(mut self, yes: bool) -> Self {
        self.declare_dlopens = yes;
        self
    }

    pub fn strip_search_paths(mut self, yes: bool) -> Self {
        self.strip_search_paths = yes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_safe() {
        let o = ShrinkwrapOptions::new();
        assert_eq!(o.strategy, Strategy::Ldd);
        assert_eq!(o.on_missing, OnMissing::Error);
        assert!(o.strip_search_paths);
        assert!(o.warn_duplicate_symbols);
        assert!(!o.declare_dlopens);
    }

    #[test]
    fn builder_chains() {
        let o = ShrinkwrapOptions::new()
            .strategy(Strategy::Native)
            .on_missing(OnMissing::Keep)
            .declare_dlopens(true)
            .strip_search_paths(false);
        assert_eq!(o.strategy, Strategy::Native);
        assert_eq!(o.on_missing, OnMissing::Keep);
        assert!(o.declare_dlopens);
        assert!(!o.strip_search_paths);
    }
}

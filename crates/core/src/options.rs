//! Shrinkwrap configuration, including the loader-backend selector.

use std::fmt;
use std::sync::Arc;

use depchaos_loader::{
    Environment, FutureLoader, GlibcLoader, LdCache, Loader, LoaderService, MuslLoader,
    ServiceLoader,
};
use depchaos_vfs::Vfs;

/// Builds a [`Loader`] over the filesystem being wrapped. Implement this to
/// plug a custom backend into [`Strategy::Backend`]; the stock backends are
/// available via [`LoaderBackend::glibc`] and friends.
///
/// The factory is consulted once per wrap, with the wrap's environment and
/// ld.so.cache, because a loader borrows the [`Vfs`] it runs against —
/// options objects outlive any single filesystem.
pub trait LoaderFactory: Send + Sync {
    fn instantiate<'fs>(
        &self,
        fs: &'fs Vfs,
        env: &Environment,
        cache: &LdCache,
    ) -> Box<dyn Loader + 'fs>;
}

struct GlibcFactory;

impl LoaderFactory for GlibcFactory {
    fn instantiate<'fs>(
        &self,
        fs: &'fs Vfs,
        env: &Environment,
        cache: &LdCache,
    ) -> Box<dyn Loader + 'fs> {
        Box::new(GlibcLoader::new(fs).with_env(env.clone()).with_cache(cache.clone()))
    }
}

struct MuslFactory;

impl LoaderFactory for MuslFactory {
    fn instantiate<'fs>(
        &self,
        fs: &'fs Vfs,
        env: &Environment,
        _cache: &LdCache,
    ) -> Box<dyn Loader + 'fs> {
        Box::new(MuslLoader::new(fs).with_env(env.clone()))
    }
}

struct FutureFactory;

impl LoaderFactory for FutureFactory {
    fn instantiate<'fs>(
        &self,
        fs: &'fs Vfs,
        env: &Environment,
        _cache: &LdCache,
    ) -> Box<dyn Loader + 'fs> {
        Box::new(FutureLoader::new(fs).with_env(env.clone()))
    }
}

struct ServiceFactory<S>(Arc<S>);

impl<S: LoaderService + Send + Sync + 'static> LoaderFactory for ServiceFactory<S> {
    fn instantiate<'fs>(
        &self,
        fs: &'fs Vfs,
        _env: &Environment,
        _cache: &LdCache,
    ) -> Box<dyn Loader + 'fs> {
        Box::new(ServiceLoader::new(fs, self.0.clone()))
    }
}

/// A named, cloneable handle on a loader backend — the currency of
/// backend-generic wrapping. `wrap()`, `wrap_tree()`, the CLIs, and the
/// launch/bench harnesses all accept any backend, which is what makes
/// musl-wrap, hash-store-wrap, and future-loader comparisons first-class
/// scenarios.
#[derive(Clone)]
pub struct LoaderBackend {
    name: String,
    factory: Arc<dyn LoaderFactory>,
}

impl LoaderBackend {
    pub fn new(name: impl Into<String>, factory: Arc<dyn LoaderFactory>) -> Self {
        LoaderBackend { name: name.into(), factory }
    }

    /// The glibc model — the backend real Shrinkwrap runs against, and the
    /// default.
    pub fn glibc() -> Self {
        Self::new("glibc", Arc::new(GlibcFactory))
    }

    /// The musl model. Wrapping *through* musl semantics is how you observe
    /// the §IV incompatibility from the wrap side.
    pub fn musl() -> Self {
        Self::new("musl", Arc::new(MuslFactory))
    }

    /// The §III-C future-loader model.
    pub fn future() -> Self {
        Self::new("future", Arc::new(FutureFactory))
    }

    /// A loader-service backend sharing `service` across instantiations —
    /// e.g. a [`depchaos_loader::HashStoreService`] index.
    pub fn service<S: LoaderService + Send + Sync + 'static>(service: Arc<S>) -> Self {
        Self::service_named("service", service)
    }

    /// [`LoaderBackend::service`] under a caller-chosen display name, so a
    /// sweep can distinguish e.g. a `hash-store` index from other services.
    pub fn service_named<S: LoaderService + Send + Sync + 'static>(
        name: impl Into<String>,
        service: Arc<S>,
    ) -> Self {
        Self::new(name, Arc::new(ServiceFactory(service)))
    }

    /// Every stock backend, for sweeps and cross-backend tests.
    pub fn all_stock() -> Vec<LoaderBackend> {
        vec![Self::glibc(), Self::musl(), Self::future()]
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Build the loader this backend names, bound to `fs`.
    pub fn instantiate<'fs>(
        &self,
        fs: &'fs Vfs,
        env: &Environment,
        cache: &LdCache,
    ) -> Box<dyn Loader + 'fs> {
        self.factory.instantiate(fs, env, cache)
    }
}

impl fmt::Debug for LoaderBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LoaderBackend").field("name", &self.name).finish_non_exhaustive()
    }
}

/// How dependencies are resolved to absolute paths.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Run a loader backend (like `ld.so --list`) and freeze what it
    /// reports. Exact for that backend's semantics, including its dedup
    /// effects. The glibc backend is what the paper calls the *ldd*
    /// strategy.
    Backend(LoaderBackend),
    /// Walk the filesystem the way the glibc loader would, without
    /// executing it. Works for foreign binaries; stricter about
    /// hidden-missing paths.
    Native,
}

impl Strategy {
    /// The paper's default strategy: ask the glibc loader model.
    pub fn ldd() -> Self {
        Strategy::Backend(LoaderBackend::glibc())
    }

    pub fn glibc() -> Self {
        Self::ldd()
    }

    pub fn musl() -> Self {
        Strategy::Backend(LoaderBackend::musl())
    }

    pub fn future() -> Self {
        Strategy::Backend(LoaderBackend::future())
    }

    /// The strategy's display name (`"native"` or the backend name).
    pub fn name(&self) -> &str {
        match self {
            Strategy::Backend(b) => b.name(),
            Strategy::Native => "native",
        }
    }
}

impl Default for Strategy {
    fn default() -> Self {
        Self::ldd()
    }
}

/// Strategies compare by shape and backend name — enough for tests and
/// config plumbing; factories themselves are opaque.
impl PartialEq for Strategy {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Strategy::Native, Strategy::Native) => true,
            (Strategy::Backend(a), Strategy::Backend(b)) => a.name == b.name,
            _ => false,
        }
    }
}

impl Eq for Strategy {}

/// What to do when a dependency cannot be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnMissing {
    /// Fail the wrap (default — a wrapped binary must be complete).
    #[default]
    Error,
    /// Keep the unresolved soname as-is and record a warning.
    Keep,
}

/// Options for [`crate::wrap()`].
#[derive(Debug, Clone, Default)]
pub struct ShrinkwrapOptions {
    pub strategy: Strategy,
    pub on_missing: OnMissing,
    /// Environment the resolution runs under (the build environment the
    /// paper says you inspect and then rely on).
    pub env: Environment,
    /// ld.so.cache of the resolution system.
    pub cache: LdCache,
    /// Promote each object's `dlopen` hints into the needed list before
    /// resolving, so runtime-loaded modules are frozen too (the python-
    /// modules pattern from §IV).
    pub declare_dlopens: bool,
    /// Clear `RPATH`/`RUNPATH` on the wrapped binary (they are dead weight
    /// once every entry is absolute).
    pub strip_search_paths: bool,
    /// Emit warnings for duplicate strong symbols across the closure
    /// (Shrinkwrap "does not explicitly check symbol shadowing ... it
    /// preserves the order the user set"; the check is advisory).
    pub warn_duplicate_symbols: bool,
}

impl ShrinkwrapOptions {
    pub fn new() -> Self {
        ShrinkwrapOptions {
            strip_search_paths: true,
            warn_duplicate_symbols: true,
            ..Default::default()
        }
    }

    pub fn strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    /// Resolve through `backend` — shorthand for
    /// `.strategy(Strategy::Backend(backend))`.
    pub fn backend(mut self, backend: LoaderBackend) -> Self {
        self.strategy = Strategy::Backend(backend);
        self
    }

    pub fn on_missing(mut self, m: OnMissing) -> Self {
        self.on_missing = m;
        self
    }

    pub fn env(mut self, env: Environment) -> Self {
        self.env = env;
        self
    }

    pub fn cache(mut self, cache: LdCache) -> Self {
        self.cache = cache;
        self
    }

    pub fn declare_dlopens(mut self, yes: bool) -> Self {
        self.declare_dlopens = yes;
        self
    }

    pub fn strip_search_paths(mut self, yes: bool) -> Self {
        self.strip_search_paths = yes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_safe() {
        let o = ShrinkwrapOptions::new();
        assert_eq!(o.strategy, Strategy::ldd());
        assert_eq!(o.strategy.name(), "glibc");
        assert_eq!(o.on_missing, OnMissing::Error);
        assert!(o.strip_search_paths);
        assert!(o.warn_duplicate_symbols);
        assert!(!o.declare_dlopens);
    }

    #[test]
    fn builder_chains() {
        let o = ShrinkwrapOptions::new()
            .strategy(Strategy::Native)
            .on_missing(OnMissing::Keep)
            .declare_dlopens(true)
            .strip_search_paths(false);
        assert_eq!(o.strategy, Strategy::Native);
        assert_eq!(o.strategy.name(), "native");
        assert_eq!(o.on_missing, OnMissing::Keep);
        assert!(o.declare_dlopens);
        assert!(!o.strip_search_paths);
    }

    #[test]
    fn backends_instantiate_their_namesakes() {
        let fs = Vfs::local();
        for backend in LoaderBackend::all_stock() {
            let loader = backend.instantiate(&fs, &Environment::bare(), &LdCache::empty());
            assert_eq!(loader.name(), backend.name());
        }
        let o = ShrinkwrapOptions::new().backend(LoaderBackend::musl());
        assert_eq!(o.strategy, Strategy::musl());
        assert_ne!(o.strategy, Strategy::ldd());
        assert_ne!(o.strategy, Strategy::Native);
    }

    #[test]
    fn service_backend_shares_one_index() {
        use depchaos_loader::HashStoreService;
        let svc = Arc::new(HashStoreService::new());
        let backend = LoaderBackend::service(svc);
        assert_eq!(backend.name(), "service");
        let fs = Vfs::local();
        let a = backend.instantiate(&fs, &Environment::bare(), &LdCache::empty());
        let b = backend.instantiate(&fs, &Environment::bare(), &LdCache::empty());
        assert_eq!(a.name(), b.name());
    }
}

//! # depchaos-core — Shrinkwrap
//!
//! The paper's contribution: *"freezing the required dependencies directly
//! into the `DT_NEEDED` section of the binary. Rather than listing the
//! soname each entry is an absolute path. Furthermore, the transitive
//! dependency list is lifted to the top-level binary."*
//!
//! After [`fn@wrap`], the executable:
//!
//! * opens every dependency directly (no directory search — Table II's 36×
//!   syscall reduction and Fig 6's launch speedups follow);
//! * loads the whole closure in a frozen, auditable order before any
//!   transitive request happens, so bare sonames inside libraries are
//!   satisfied from the loader's dedup cache (Fig 5) and
//!   `RPATH`/`RUNPATH` interference in transitive objects is moot
//!   (the ROCm fix, §V-B.1);
//! * never touches a link line, so duplicate-symbol pairs like
//!   `libomp`/`libompstubs` wrap fine and keep the user's order (§V-B.2).
//!
//! Resolution is **backend-generic**: [`Strategy::Backend`] accepts any
//! [`depchaos_loader::Loader`] via a [`LoaderBackend`] handle, so the same
//! `wrap()` call can freeze what the glibc model, the musl model, a
//! content-addressed loader service, or the §III-C future loader would
//! resolve — and the cross-semantics claims of the paper become runnable
//! comparisons instead of prose. Two strategies ship out of the box:
//!
//! * [`Strategy::ldd`] — ask a loader model what it would do under current
//!   conditions (the glibc backend by default); exact, including dedup
//!   effects. Select other backends with
//!   [`ShrinkwrapOptions::backend`].
//! * [`Strategy::Native`] — re-walk the glibc search rules by hand for
//!   binaries that can't execute here; stricter (a dependency hidden
//!   behind the dedup cache is reported missing, not silently inherited).
//!
//! Limits faithfully reproduced: `LD_PRELOAD` still interposes (the PMPI
//! escape hatch keeps working), `LD_LIBRARY_PATH` no longer does, and musl
//! loads shrinkwrapped output incorrectly ([`audit::cross_loader_check`] —
//! or wrap *through* the musl backend and watch it diverge).

pub mod audit;
pub mod batch;
pub mod intern;
pub mod native;
pub mod options;
pub mod report;
pub mod wrap;

pub use audit::{audit, cross_loader_check, AuditReport};
pub use batch::{wrap_tree, TreeReport};
pub use intern::{intern, PathId};
pub use options::{LoaderBackend, LoaderFactory, OnMissing, ShrinkwrapOptions, Strategy};
pub use report::{WrapError, WrapReport, WrapWarning};
pub use wrap::wrap;

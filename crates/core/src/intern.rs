//! The workspace path interner — see [`depchaos_vfs::intern`](mod@depchaos_vfs::intern) for the
//! implementation.
//!
//! This is the canonical workspace-facing home of [`PathId`]/[`intern`]:
//! anything above the loader layer should name them through
//! `depchaos_core::intern`. The implementation physically lives in
//! `depchaos-vfs` because the strace log ([`depchaos_vfs::Syscall`]) stores
//! `PathId`s and the VFS sits *below* this crate in the dependency graph —
//! a re-export keeps the one-interner-per-process invariant while giving
//! the workspace a single import path.

pub use depchaos_vfs::intern::{intern, PathId};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_interner_per_process() {
        // The re-export and the vfs module hand out the same ids: the
        // interner is global, not per-crate.
        assert_eq!(intern("/core/reexport"), depchaos_vfs::intern::intern("/core/reexport"));
        assert_eq!(PathId::from("/core/reexport").as_str(), "/core/reexport");
    }
}

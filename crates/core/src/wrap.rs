//! The wrap operation itself.

use std::collections::{HashMap, HashSet};

use depchaos_elf::{io, ElfEditor, ElfObject, SymbolBinding};
use depchaos_vfs::Vfs;

use crate::native::resolve_closure;
use crate::options::{OnMissing, ShrinkwrapOptions, Strategy};
use crate::report::{WrapError, WrapReport, WrapWarning};

/// Shrinkwrap `binary_path` in place: resolve its full transitive closure
/// under the configured loader backend, lift it to the top level, and
/// freeze every entry as an absolute path.
pub fn wrap(
    fs: &Vfs,
    binary_path: &str,
    opts: &ShrinkwrapOptions,
) -> Result<WrapReport, WrapError> {
    // One editor session per wrap: every read and rewrite below goes
    // through this handle.
    let editor = ElfEditor::open(fs, binary_path)
        .map_err(|_| WrapError::BadBinary(binary_path.to_string()))?;
    let original = editor.object().map_err(|_| WrapError::BadBinary(binary_path.to_string()))?;
    let original_needed = original.needed.clone();

    // Optionally promote dlopen hints into the needed list first, so the
    // resolution pass below sees and freezes them (§IV: "adding the names of
    // these libraries to the needed section before using Shrinkwrap allows
    // Shrinkwrap to resolve them as well").
    let mut warnings = Vec::new();
    if opts.declare_dlopens {
        let mut extended = original_needed.clone();
        for d in &original.dlopens {
            if !extended.contains(d) {
                extended.push(d.clone());
            }
        }
        editor.set_needed(extended).map_err(|_| WrapError::WriteFailed(binary_path.to_string()))?;
    } else {
        for d in &original.dlopens {
            warnings.push(WrapWarning::UndeclaredDlopen {
                object: binary_path.to_string(),
                name: d.clone(),
            });
        }
    }

    // Resolve the closure and build the frozen list. Fallible: when it
    // errors, the binary must come out of wrap() untouched, so a promoted
    // dlopen needed-list above is rolled back before the error propagates.
    let mut parsed_closure: HashMap<String, ElfObject> = HashMap::new();
    let frozen = resolve_and_freeze(fs, binary_path, opts, &mut warnings, &mut parsed_closure);
    let (new_needed, resolved_pairs) = match frozen {
        Ok(v) => v,
        Err(e) => {
            if opts.declare_dlopens {
                let _ = editor.set_needed(original_needed.clone());
            }
            return Err(e);
        }
    };

    // Advisory duplicate-strong-symbol scan over the frozen closure, using
    // the loader's already-parsed objects where available.
    if opts.warn_duplicate_symbols {
        let mut owner: HashMap<String, String> = HashMap::new();
        for path in new_needed.iter().filter(|p| p.contains('/')) {
            let parsed;
            let obj = match parsed_closure.get(path) {
                Some(obj) => obj,
                None => match io::peek_object(fs, path) {
                    Ok(obj) => {
                        parsed = obj;
                        &parsed
                    }
                    Err(_) => continue,
                },
            };
            for sym in &obj.symbols {
                if sym.binding == SymbolBinding::Strong {
                    if let Some(first) = owner.get(&sym.name) {
                        warnings.push(WrapWarning::DuplicateStrongSymbol {
                            symbol: sym.name.clone(),
                            first: first.clone(),
                            second: path.clone(),
                        });
                    } else {
                        owner.insert(sym.name.clone(), path.clone());
                    }
                }
            }
        }
    }

    // Rewrite the binary through the same editor session.
    editor
        .set_needed(new_needed.clone())
        .map_err(|_| WrapError::WriteFailed(binary_path.to_string()))?;
    if opts.strip_search_paths {
        editor.remove_rpath().map_err(|_| WrapError::WriteFailed(binary_path.to_string()))?;
    }

    Ok(WrapReport {
        binary: binary_path.to_string(),
        original_needed,
        new_needed,
        resolved: resolved_pairs,
        warnings,
    })
}

/// The frozen needed list plus the `(requested name, resolved path)` pairs
/// behind it.
type FrozenClosure = (Vec<String>, Vec<(String, String)>);

/// Resolve the closure under the configured strategy and build the frozen
/// needed list. Backend strategies also deposit their already-parsed
/// objects into `parsed_closure` so the symbol scan does not re-open the
/// closure.
fn resolve_and_freeze(
    fs: &Vfs,
    binary_path: &str,
    opts: &ShrinkwrapOptions,
    warnings: &mut Vec<WrapWarning>,
    parsed_closure: &mut HashMap<String, ElfObject>,
) -> Result<FrozenClosure, WrapError> {
    // Each resolution entry is (requester, requested-name, Option<absolute
    // path>), in load order.
    let resolutions: Vec<(String, String, Option<String>)> = match &opts.strategy {
        Strategy::Backend(backend) => {
            let loader = backend.instantiate(fs, &opts.env, &opts.cache);
            let r = loader
                .load(binary_path)
                .map_err(|_| WrapError::BadBinary(binary_path.to_string()))?;
            let mut out: Vec<(String, String, Option<String>)> = r
                .objects
                .iter()
                .skip(1) // the executable itself
                .map(|o| {
                    let requester = o
                        .parent
                        .map(|p| r.objects[p].path.clone())
                        .unwrap_or_else(|| binary_path.to_string());
                    (requester, o.requested_as[0].clone(), Some(o.path.clone()))
                })
                .collect();
            for f in &r.failures {
                out.push((f.requester.clone(), f.name.clone(), None));
            }
            parsed_closure.extend(r.objects.into_iter().map(|o| (o.path, o.object)));
            out
        }
        Strategy::Native => resolve_closure(fs, binary_path, &opts.env, &opts.cache)
            .map_err(WrapError::BadBinary)?
            .into_iter()
            .map(|nr| (nr.requester, nr.name, nr.path))
            .collect(),
    };

    // Build the frozen list; handle the unresolved per policy. The set is a
    // side-index over `new_needed` so membership checks stay O(1) on large
    // closures (Pynamic-sized wraps used to pay O(n²) here).
    let mut new_needed: Vec<String> = Vec::with_capacity(resolutions.len());
    let mut frozen: HashSet<String> = HashSet::with_capacity(resolutions.len());
    let mut resolved_pairs: Vec<(String, String)> = Vec::new();
    for (requester, name, path) in &resolutions {
        match path {
            Some(p) => {
                if frozen.insert(p.clone()) {
                    new_needed.push(p.clone());
                }
                resolved_pairs.push((name.clone(), p.clone()));
            }
            None => match opts.on_missing {
                OnMissing::Error => {
                    return Err(WrapError::Unresolved {
                        requester: requester.clone(),
                        name: name.clone(),
                    })
                }
                OnMissing::Keep => {
                    if frozen.insert(name.clone()) {
                        new_needed.push(name.clone());
                    }
                    warnings.push(WrapWarning::LeftUnresolved {
                        requester: requester.clone(),
                        name: name.clone(),
                    });
                }
            },
        }
    }
    Ok((new_needed, resolved_pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::LoaderBackend;
    use depchaos_elf::io::install;
    use depchaos_elf::{ElfObject, Symbol};
    use depchaos_loader::{Environment, GlibcLoader, MuslLoader, Resolution};

    fn world() -> Vfs {
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app")
                .needs("liba.so")
                .needs("libb.so")
                .runpath("/l1")
                .runpath("/l2")
                .build(),
        )
        .unwrap();
        install(
            &fs,
            "/l1/liba.so",
            &ElfObject::dso("liba.so").needs("libc6.so").runpath("/l1").runpath("/l2").build(),
        )
        .unwrap();
        install(
            &fs,
            "/l2/libb.so",
            &ElfObject::dso("libb.so").needs("libc6.so").runpath("/l2").build(),
        )
        .unwrap();
        install(&fs, "/l2/libc6.so", &ElfObject::dso("libc6.so").build()).unwrap();
        fs
    }

    #[test]
    fn wrap_freezes_absolute_paths_in_load_order() {
        let fs = world();
        let opts = ShrinkwrapOptions::new().env(Environment::bare());
        let rep = wrap(&fs, "/bin/app", &opts).unwrap();
        assert_eq!(rep.new_needed, vec!["/l1/liba.so", "/l2/libb.so", "/l2/libc6.so"]);
        assert_eq!(rep.lifted(), vec!["/l2/libc6.so"]);
        let obj = io::peek_object(&fs, "/bin/app").unwrap();
        assert_eq!(obj.needed, rep.new_needed);
        assert!(obj.runpath.is_empty(), "search paths stripped");
    }

    #[test]
    fn wrapped_binary_loads_without_searching() {
        let fs = world();
        wrap(&fs, "/bin/app", &ShrinkwrapOptions::new().env(Environment::bare())).unwrap();
        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load("/bin/app").unwrap();
        assert!(r.success());
        // Every load was direct or a dedup — zero search misses.
        assert_eq!(r.syscalls.misses, 0);
        // Transitive bare requests were satisfied from the soname cache.
        assert!(r
            .events
            .iter()
            .filter(|e| !e.name.contains('/'))
            .all(|e| matches!(e.resolution, Resolution::Deduped { .. })));
    }

    #[test]
    fn wrap_is_idempotent() {
        let fs = world();
        let opts = ShrinkwrapOptions::new().env(Environment::bare());
        let first = wrap(&fs, "/bin/app", &opts).unwrap();
        let second = wrap(&fs, "/bin/app", &opts).unwrap();
        assert_eq!(first.new_needed, second.new_needed);
        let obj = io::peek_object(&fs, "/bin/app").unwrap();
        assert_eq!(obj.needed, first.new_needed);
    }

    #[test]
    fn missing_dep_errors_by_default_keep_on_request() {
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libghost.so").build()).unwrap();
        let err =
            wrap(&fs, "/bin/app", &ShrinkwrapOptions::new().env(Environment::bare())).unwrap_err();
        assert!(matches!(err, WrapError::Unresolved { .. }));

        let rep = wrap(
            &fs,
            "/bin/app",
            &ShrinkwrapOptions::new().env(Environment::bare()).on_missing(OnMissing::Keep),
        )
        .unwrap();
        assert_eq!(rep.new_needed, vec!["libghost.so"]);
        assert!(matches!(rep.warnings[0], WrapWarning::LeftUnresolved { .. }));
    }

    #[test]
    fn native_strategy_matches_ldd_on_clean_closures() {
        let fs = world();
        let ldd =
            wrap(&fs, "/bin/app", &ShrinkwrapOptions::new().env(Environment::bare())).unwrap();

        let fs2 = world();
        let native = wrap(
            &fs2,
            "/bin/app",
            &ShrinkwrapOptions::new().env(Environment::bare()).strategy(Strategy::Native),
        )
        .unwrap();
        assert_eq!(ldd.new_needed, native.new_needed);
    }

    #[test]
    fn same_binary_wraps_under_glibc_and_musl_backends() {
        // The acceptance scenario for the backend-generic API: the same
        // binary, the same wrap() call, two loader semantics. Store-like
        // layout: the exe's propagating RPATH serves the whole closure and
        // the libraries carry no search paths of their own.
        fn store_world() -> Vfs {
            let fs = Vfs::local();
            install(
                &fs,
                "/bin/app",
                &ElfObject::exe("app").needs("libx.so").needs("liby.so").rpath("/l").build(),
            )
            .unwrap();
            install(&fs, "/l/libx.so", &ElfObject::dso("libx.so").needs("libz.so").build())
                .unwrap();
            install(&fs, "/l/liby.so", &ElfObject::dso("liby.so").needs("libz.so").build())
                .unwrap();
            install(&fs, "/l/libz.so", &ElfObject::dso("libz.so").build()).unwrap();
            fs
        }

        let fs_glibc = store_world();
        let glibc_rep = wrap(
            &fs_glibc,
            "/bin/app",
            &ShrinkwrapOptions::new().env(Environment::bare()).backend(LoaderBackend::glibc()),
        )
        .unwrap();

        let fs_musl = store_world();
        let musl_rep = wrap(
            &fs_musl,
            "/bin/app",
            &ShrinkwrapOptions::new().env(Environment::bare()).backend(LoaderBackend::musl()),
        )
        .unwrap();

        // On a clean searchable closure both backends freeze the same list.
        assert_eq!(glibc_rep.new_needed, musl_rep.new_needed);

        // And the frozen output loads under glibc but NOT under musl — the
        // §IV incompatibility, now demonstrable end-to-end through one API.
        assert!(GlibcLoader::new(&fs_musl)
            .with_env(Environment::bare())
            .load("/bin/app")
            .unwrap()
            .success());
        assert!(!MuslLoader::new(&fs_musl)
            .with_env(Environment::bare())
            .load("/bin/app")
            .unwrap()
            .success());
    }

    #[test]
    fn future_backend_wraps_future_style_binaries() {
        // A binary carrying §III-C search_dirs instead of RUNPATH: only the
        // future backend can resolve it, and wrap() freezes what it reports.
        use depchaos_elf::SearchPosition::Prepend;
        let fs = Vfs::local();
        install(&fs, "/l/liba.so", &ElfObject::dso("liba.so").needs("libb.so").build()).unwrap();
        install(&fs, "/l/libb.so", &ElfObject::dso("libb.so").build()).unwrap();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("liba.so").search_dir("/l", Prepend, true).build(),
        )
        .unwrap();

        // The glibc backend cannot resolve it...
        let err =
            wrap(&fs, "/bin/app", &ShrinkwrapOptions::new().env(Environment::bare())).unwrap_err();
        assert!(matches!(err, WrapError::Unresolved { .. }));

        // ...the future backend can, through the very same wrap() API.
        let rep = wrap(
            &fs,
            "/bin/app",
            &ShrinkwrapOptions::new().env(Environment::bare()).backend(LoaderBackend::future()),
        )
        .unwrap();
        assert_eq!(rep.new_needed, vec!["/l/liba.so", "/l/libb.so"]);
        assert!(GlibcLoader::new(&fs)
            .with_env(Environment::bare())
            .load("/bin/app")
            .unwrap()
            .success());
    }

    #[test]
    fn service_backend_wraps_hash_addressed_binaries() {
        use depchaos_loader::HashStoreService;
        use std::sync::Arc;
        let fs = Vfs::local();
        let mut svc = HashStoreService::new();
        install(&fs, "/store/bb/libb.so", &ElfObject::dso("libb.so").build()).unwrap();
        let b_ref = svc.register(&fs, "/store/bb/libb.so").unwrap();
        install(&fs, "/store/aa/liba.so", &ElfObject::dso("liba.so").needs(b_ref).build()).unwrap();
        let a_ref = svc.register(&fs, "/store/aa/liba.so").unwrap();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs(a_ref).build()).unwrap();

        let backend = LoaderBackend::service(Arc::new(svc));
        let rep = wrap(
            &fs,
            "/bin/app",
            &ShrinkwrapOptions::new().env(Environment::bare()).backend(backend.clone()),
        )
        .unwrap();
        assert_eq!(rep.new_needed, vec!["/store/aa/liba.so", "/store/bb/libb.so"]);
        // The wrapped binary loads through the service backend with its
        // top-level entries opened directly; the libraries' own `sha:`
        // transitive requests still need the service (and dedup to the
        // already-loaded objects), while stock glibc has no way to answer
        // them — frozen paths don't erase hash addressing inside libraries.
        let loader =
            backend.instantiate(&fs, &Environment::bare(), &depchaos_loader::LdCache::empty());
        assert!(loader.load("/bin/app").unwrap().success());
        assert!(!GlibcLoader::new(&fs)
            .with_env(Environment::bare())
            .load("/bin/app")
            .unwrap()
            .success());
    }

    #[test]
    fn duplicate_symbols_warned_not_fatal() {
        let fs = Vfs::local();
        install(
            &fs,
            "/v/libomp.so",
            &ElfObject::dso("libomp.so").defines(Symbol::strong("omp_go")).build(),
        )
        .unwrap();
        install(
            &fs,
            "/v/libompstubs.so",
            &ElfObject::dso("libompstubs.so").defines(Symbol::strong("omp_go")).build(),
        )
        .unwrap();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("libompstubs.so").needs("libomp.so").runpath("/v").build(),
        )
        .unwrap();
        let rep =
            wrap(&fs, "/bin/app", &ShrinkwrapOptions::new().env(Environment::bare())).unwrap();
        assert!(rep
            .warnings
            .iter()
            .any(|w| matches!(w, WrapWarning::DuplicateStrongSymbol { .. })));
        // Order preserved: stubs stay first, exactly as the user linked it.
        assert_eq!(rep.new_needed, vec!["/v/libompstubs.so", "/v/libomp.so"]);
    }

    #[test]
    fn wrap_accounting_covers_resolution_only() {
        // The symbol scan runs on the loader's already-parsed closure and
        // the rewrite goes through one editor session, so a wrap's entire
        // accounted cost is exactly one resolution load.
        let fs = world();
        let loaded = {
            let fs2 = world();
            let before = fs2.snapshot();
            GlibcLoader::new(&fs2).with_env(Environment::bare()).load("/bin/app").unwrap();
            fs2.snapshot().since(&before)
        };
        let before = fs.snapshot();
        wrap(&fs, "/bin/app", &ShrinkwrapOptions::new().env(Environment::bare())).unwrap();
        let delta = fs.snapshot().since(&before);
        assert_eq!(delta.openat, loaded.openat, "wrap == one load, openat-wise");
        assert_eq!(delta.stat, loaded.stat);
        assert_eq!(delta.read, loaded.read);
    }

    #[test]
    fn declare_dlopens_freezes_runtime_loads() {
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").runpath("/l").dlopens("libplugin.so").build(),
        )
        .unwrap();
        install(&fs, "/l/libplugin.so", &ElfObject::dso("libplugin.so").build()).unwrap();

        // Without the option: warning only.
        let rep =
            wrap(&fs, "/bin/app", &ShrinkwrapOptions::new().env(Environment::bare())).unwrap();
        assert!(rep.warnings.iter().any(|w| matches!(w, WrapWarning::UndeclaredDlopen { .. })));
        assert!(rep.new_needed.is_empty());

        // With it: the plugin is frozen like any needed entry.
        let fs2 = Vfs::local();
        install(
            &fs2,
            "/bin/app",
            &ElfObject::exe("app").runpath("/l").dlopens("libplugin.so").build(),
        )
        .unwrap();
        install(&fs2, "/l/libplugin.so", &ElfObject::dso("libplugin.so").build()).unwrap();
        let rep2 = wrap(
            &fs2,
            "/bin/app",
            &ShrinkwrapOptions::new().env(Environment::bare()).declare_dlopens(true),
        )
        .unwrap();
        assert_eq!(rep2.new_needed, vec!["/l/libplugin.so"]);
    }

    #[test]
    fn failed_wrap_rolls_back_dlopen_promotion() {
        // declare_dlopens writes the promoted needed list before resolving;
        // if resolution then fails (common under non-glibc backends), the
        // binary must come back unmodified.
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app")
                .needs("libreal.so")
                .runpath("/l")
                .dlopens("libplugin.so")
                .build(),
        )
        .unwrap();
        install(&fs, "/l/libreal.so", &ElfObject::dso("libreal.so").build()).unwrap();
        // No /l/libplugin.so: the promoted entry cannot resolve.
        let err = wrap(
            &fs,
            "/bin/app",
            &ShrinkwrapOptions::new().env(Environment::bare()).declare_dlopens(true),
        )
        .unwrap_err();
        assert!(matches!(err, WrapError::Unresolved { .. }));
        let obj = io::peek_object(&fs, "/bin/app").unwrap();
        assert_eq!(obj.needed, vec!["libreal.so"], "failed wrap must be a no-op");
    }

    #[test]
    fn ld_preload_still_interposes_after_wrap() {
        // The paper: "The use of LD_PRELOAD remains viable ... traditional
        // preloaded tools continue to work as normal."
        let fs = Vfs::local();
        install(
            &fs,
            "/l/libreal.so",
            &ElfObject::dso("libreal.so").defines(Symbol::strong("MPI_Send")).build(),
        )
        .unwrap();
        install(
            &fs,
            "/tools/libpmpi.so",
            &ElfObject::dso("libpmpi.so").defines(Symbol::strong("MPI_Send")).build(),
        )
        .unwrap();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libreal.so").runpath("/l").build())
            .unwrap();
        wrap(&fs, "/bin/app", &ShrinkwrapOptions::new().env(Environment::bare())).unwrap();
        let env = Environment::bare().with_preload("/tools/libpmpi.so");
        let r = GlibcLoader::new(&fs).with_env(env).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.bindings()["MPI_Send"], "/tools/libpmpi.so");
    }

    #[test]
    fn ld_library_path_no_longer_overrides() {
        // "Referencing dependencies by their absolute path makes it
        // impossible to swap out dependencies ... using LD_LIBRARY_PATH."
        let fs = world();
        install(&fs, "/override/liba.so", &ElfObject::dso("liba.so").build()).unwrap();
        wrap(&fs, "/bin/app", &ShrinkwrapOptions::new().env(Environment::bare())).unwrap();
        let env = Environment::bare().with_ld_library_path("/override");
        let r = GlibcLoader::new(&fs).with_env(env).load("/bin/app").unwrap();
        assert_eq!(r.find("liba.so").unwrap().path, "/l1/liba.so", "override ignored");
    }
}

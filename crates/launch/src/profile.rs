//! Capturing one rank's startup op stream.

use depchaos_loader::{Environment, GlibcLoader, LoadError};
use depchaos_vfs::{StraceLog, Vfs};

/// Replay a cold-cache load of `exe` and return its op stream — the input
/// to [`crate::simulate_launch`]. The filesystem's backend (local vs NFS,
/// negative caching) determines the per-op costs recorded in the stream.
///
/// Drops caches first, so back-to-back profiles are independent.
pub fn profile_load(fs: &Vfs, exe: &str, env: &Environment) -> Result<StraceLog, LoadError> {
    fs.drop_caches();
    fs.start_trace();
    let result = GlibcLoader::new(fs).with_env(env.clone()).load(exe);
    let log = fs.stop_trace();
    result.map(|_| log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;
    use depchaos_elf::ElfObject;

    #[test]
    fn profile_captures_cold_stream() {
        let fs = Vfs::nfs();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("liba.so").runpath("/l").build())
            .unwrap();
        install(&fs, "/l/liba.so", &ElfObject::dso("liba.so").build()).unwrap();
        let log = profile_load(&fs, "/bin/app", &Environment::bare()).unwrap();
        assert!(log.stat_openat() >= 2, "exe open + liba probe");
        // Cold NFS: the probes cost a full round trip each.
        assert!(log.entries.iter().any(|e| e.cost_ns >= 200_000));

        // Second profile is identical (drop_caches resets state).
        let log2 = profile_load(&fs, "/bin/app", &Environment::bare()).unwrap();
        assert_eq!(log.stat_openat(), log2.stat_openat());
        assert_eq!(log.total_ns(), log2.total_ns());
    }

    #[test]
    fn missing_exe_propagates() {
        let fs = Vfs::nfs();
        assert!(profile_load(&fs, "/bin/ghost", &Environment::bare()).is_err());
    }
}

//! Capturing one rank's startup op stream.
//!
//! This is the expensive, per-unique-cell step of a sweep: the matrix
//! engine and the serve layer profile each cell once (fanning the work
//! over their worker pools), cache the classified stream, and batch the
//! actual simulations in one [`crate::batch::BatchPlan`] pass — so a
//! profile captured here is reused across every rank point, replicate,
//! and repeat what-if that shares the cell.

use depchaos_loader::{Environment, GlibcLoader, LoadError, LoadResult, Loader};
use depchaos_vfs::{StraceLog, Vfs};

/// Replay a cold-cache load of `exe` under any [`Loader`] backend and
/// return its op stream — the input to [`crate::simulate_launch`]. The
/// filesystem's backend (local vs NFS, negative caching) determines the
/// per-op costs recorded in the stream.
///
/// Drops caches first, so back-to-back profiles are independent.
pub fn profile_load_with(fs: &Vfs, exe: &str, loader: &dyn Loader) -> Result<StraceLog, LoadError> {
    profile_load_checked(fs, exe, loader).map(|(log, _)| log)
}

/// [`profile_load_with`], also returning the [`LoadResult`] so callers can
/// see *how* the load went: a backend can run to completion with unresolved
/// dependencies (musl on a search-path-stripped image, the future loader on
/// a RUNPATH-only world), and the matrix engine records that per cell.
pub fn profile_load_checked(
    fs: &Vfs,
    exe: &str,
    loader: &dyn Loader,
) -> Result<(StraceLog, LoadResult), LoadError> {
    fs.drop_caches();
    fs.start_trace();
    let result = loader.load(exe);
    let log = fs.stop_trace();
    result.map(|r| (log, r))
}

/// [`profile_load_with`] under the glibc model — the paper's measurement
/// configuration.
pub fn profile_load(fs: &Vfs, exe: &str, env: &Environment) -> Result<StraceLog, LoadError> {
    profile_load_with(fs, exe, &GlibcLoader::new(fs).with_env(env.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;
    use depchaos_elf::ElfObject;

    #[test]
    fn profile_captures_cold_stream() {
        let fs = Vfs::nfs();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("liba.so").runpath("/l").build())
            .unwrap();
        install(&fs, "/l/liba.so", &ElfObject::dso("liba.so").build()).unwrap();
        let log = profile_load(&fs, "/bin/app", &Environment::bare()).unwrap();
        assert!(log.stat_openat() >= 2, "exe open + liba probe");
        // Cold NFS: the probes cost a full round trip each.
        assert!(log.entries.iter().any(|e| e.cost_ns >= 200_000));

        // Second profile is identical (drop_caches resets state).
        let log2 = profile_load(&fs, "/bin/app", &Environment::bare()).unwrap();
        assert_eq!(log.stat_openat(), log2.stat_openat());
        assert_eq!(log.total_ns(), log2.total_ns());
    }

    #[test]
    fn missing_exe_propagates() {
        let fs = Vfs::nfs();
        assert!(profile_load(&fs, "/bin/ghost", &Environment::bare()).is_err());
    }

    #[test]
    fn backend_generic_profile_diverges_where_semantics_do() {
        use depchaos_loader::MuslLoader;
        // glibc checks RPATH before LD_LIBRARY_PATH; musl checks the
        // environment first — so the same world produces different op
        // streams, now observable through one profiling entry point.
        let fs = Vfs::nfs();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("liba.so").rpath("/rp").build())
            .unwrap();
        install(&fs, "/rp/liba.so", &ElfObject::dso("liba.so").build()).unwrap();
        install(&fs, "/llp/liba.so", &ElfObject::dso("liba.so").build()).unwrap();
        let env = Environment::bare().with_ld_library_path("/llp");

        let glibc = GlibcLoader::new(&fs).with_env(env.clone());
        let g = profile_load_with(&fs, "/bin/app", &glibc).unwrap();
        let musl = MuslLoader::new(&fs).with_env(env);
        let m = profile_load_with(&fs, "/bin/app", &musl).unwrap();

        // glibc probes /rp first and hits; musl goes straight to /llp.
        assert!(g.entries.iter().any(|e| e.path_str().starts_with("/rp/")));
        assert!(!m.entries.iter().any(|e| e.path_str().starts_with("/rp/")));
        assert!(m.entries.iter().any(|e| e.path_str().starts_with("/llp/")));
    }
}

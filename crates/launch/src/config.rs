//! Launch-simulation parameters and results.

use serde::{Deserialize, Serialize};

use depchaos_workloads::SplitMix;

use crate::fault::FaultModel;

/// The metadata server's per-op service-time distribution.
///
/// The paper's Fig 6 model is [`Deterministic`](ServiceDistribution::Deterministic)(ServiceDistribution): every
/// op occupies the server for exactly `meta_service_ns`. Real NFS/metadata
/// servers jitter and show heavy tails, so the DES also offers two
/// stochastic models. Both are *mean-preserving* multiplicative factors on
/// the classified service time — the expected server occupancy (and so the
/// asymptotic throughput) matches the deterministic model, only the
/// per-draw spread differs — and both are driven by an explicit
/// [`SplitMix`] stream, so every draw reproduces from `(seed, node,
/// draw index)`.
///
/// Parameters are stored in integer milli-units so the distribution can be
/// part of `Eq + Hash` cache keys ([`crate::ClassifyParams`], scenario
/// specs) without floating-point identity headaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServiceDistribution {
    /// Exactly `meta_service_ns` per op — the paper's model, and the only
    /// variant the coalesced fast path may take no draws for.
    Deterministic,
    /// Uniform in `[1 − s, 1 + s]` with `s = spread_milli / 1000`:
    /// bounded jitter, as from a lightly shared server.
    UniformJitter { spread_milli: u32 },
    /// `exp(σ·Z − σ²/2)` with `σ = sigma_milli / 1000` and `Z` standard
    /// normal: the heavy-tailed regime (a few ops stall far beyond the
    /// mean), normalised so the factor's expectation is 1.
    LogNormal { sigma_milli: u32 },
}

impl ServiceDistribution {
    /// Uniform jitter with half-width `spread` (fraction of the mean,
    /// `0.0 ≤ spread < 1.0`).
    pub fn uniform_jitter(spread: f64) -> Self {
        assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1): {spread}");
        ServiceDistribution::UniformJitter { spread_milli: (spread * 1000.0).round() as u32 }
    }

    /// Log-normal with shape `sigma` (`sigma ≥ 0`).
    pub fn log_normal(sigma: f64) -> Self {
        assert!(sigma >= 0.0 && sigma.is_finite(), "sigma must be finite and ≥ 0: {sigma}");
        ServiceDistribution::LogNormal { sigma_milli: (sigma * 1000.0).round() as u32 }
    }

    /// The distributions `fig6-dist` compares by default.
    pub fn all() -> [ServiceDistribution; 3] {
        [
            ServiceDistribution::Deterministic,
            ServiceDistribution::uniform_jitter(0.25),
            ServiceDistribution::log_normal(0.5),
        ]
    }

    pub fn is_deterministic(&self) -> bool {
        matches!(self, ServiceDistribution::Deterministic)
    }

    /// Stable display/report/TSV name.
    pub fn name(&self) -> String {
        match self {
            ServiceDistribution::Deterministic => "deterministic".to_string(),
            ServiceDistribution::UniformJitter { spread_milli } => format!("jitter-{spread_milli}"),
            ServiceDistribution::LogNormal { sigma_milli } => format!("lognormal-{sigma_milli}"),
        }
    }

    /// Inverse of [`ServiceDistribution::name`]: `deterministic`,
    /// `jitter-SPREAD_MILLI`, or `lognormal-SIGMA_MILLI` — the spellings
    /// every report and TSV prints, which is what the serve front door
    /// accepts as a `dist` delta.
    pub fn parse(s: &str) -> Option<ServiceDistribution> {
        if s == "deterministic" {
            return Some(ServiceDistribution::Deterministic);
        }
        if let Some(milli) = s.strip_prefix("jitter-") {
            let spread_milli: u32 = milli.parse().ok()?;
            if spread_milli >= 1000 {
                return None;
            }
            return Some(ServiceDistribution::UniformJitter { spread_milli });
        }
        if let Some(milli) = s.strip_prefix("lognormal-") {
            return Some(ServiceDistribution::LogNormal { sigma_milli: milli.parse().ok()? });
        }
        None
    }

    /// One multiplicative service-time factor. [`Deterministic`](ServiceDistribution::Deterministic)
    /// (ServiceDistribution) returns 1.0 without touching `rng` — callers
    /// on the exact path must not even construct a generator.
    pub fn sample(&self, rng: &mut SplitMix) -> f64 {
        match *self {
            ServiceDistribution::Deterministic => 1.0,
            ServiceDistribution::UniformJitter { spread_milli } => {
                let s = spread_milli as f64 / 1000.0;
                1.0 + s * (2.0 * rng.unit() - 1.0)
            }
            ServiceDistribution::LogNormal { sigma_milli } => {
                let sigma = sigma_milli as f64 / 1000.0;
                // Box–Muller; `1 - unit()` keeps the log argument in (0, 1].
                let u1 = 1.0 - rng.unit();
                let u2 = rng.unit();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (sigma * z - sigma * sigma / 2.0).exp()
            }
        }
    }
}

/// How cold-node requests are assigned to the metadata servers of a
/// [`ServerTopology`].
///
/// Both policies are deterministic given the event schedule; neither takes
/// RNG draws, so the topology axis never perturbs the NODE/FAULT stream
/// disciplines (common random numbers hold across topologies).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssignPolicy {
    /// Node `i` always talks to server `i % servers` — seed-free and
    /// schedule-independent (permuting the event order never changes any
    /// node's assignment), which is what admits the analytic all-cold
    /// closed form per lane.
    #[default]
    HashByNode,
    /// Each request goes to the server with the earliest busy-until clock
    /// at the moment the event is served, ties broken by server index.
    /// Depends on the event schedule, so it is never analytic-eligible.
    LeastLoaded,
}

impl AssignPolicy {
    /// Stable display/report/TSV name.
    pub fn name(&self) -> &'static str {
        match self {
            AssignPolicy::HashByNode => "hash",
            AssignPolicy::LeastLoaded => "least",
        }
    }

    /// Inverse of [`AssignPolicy::name`].
    pub fn parse(s: &str) -> Option<AssignPolicy> {
        match s {
            "hash" => Some(AssignPolicy::HashByNode),
            "least" => Some(AssignPolicy::LeastLoaded),
            _ => None,
        }
    }
}

/// The metadata-service fleet: how many servers, and how requests pick one.
///
/// The paper's Fig 6 setup (and this repo through PR 9) hard-coded exactly
/// one FIFO metadata server; `ServerTopology` makes the count a modeled
/// axis. Each server keeps its own busy-until clock ("lane"); requests are
/// routed by [`AssignPolicy`]. `S = 1` is bit-identical to the pre-axis
/// engine for either policy — there is only one lane to pick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ServerTopology {
    /// Number of independent metadata servers (`≥ 1`).
    pub servers: usize,
    /// Request-to-server assignment policy.
    pub assign: AssignPolicy,
}

impl Default for ServerTopology {
    fn default() -> Self {
        ServerTopology::single()
    }
}

impl ServerTopology {
    /// The classic single-server fleet — the paper's model and the default.
    pub fn single() -> Self {
        ServerTopology { servers: 1, assign: AssignPolicy::HashByNode }
    }

    /// `servers`-way fleet with [`AssignPolicy::HashByNode`] routing.
    pub fn hash(servers: usize) -> Self {
        assert!(servers >= 1, "a topology needs at least one server");
        ServerTopology { servers, assign: AssignPolicy::HashByNode }
    }

    /// `servers`-way fleet with [`AssignPolicy::LeastLoaded`] routing.
    pub fn least_loaded(servers: usize) -> Self {
        assert!(servers >= 1, "a topology needs at least one server");
        ServerTopology { servers, assign: AssignPolicy::LeastLoaded }
    }

    /// True for the default one-server fleet (any policy — with a single
    /// lane the assignment policy cannot matter).
    pub fn is_single(&self) -> bool {
        self.servers <= 1
    }

    /// Stable display/report/TSV name: `servers-S-POLICY`.
    pub fn name(&self) -> String {
        format!("servers-{}-{}", self.servers, self.assign.name())
    }

    /// Inverse of [`ServerTopology::name`]: `servers-S-hash` or
    /// `servers-S-least` with `S ≥ 1`.
    pub fn parse(s: &str) -> Option<ServerTopology> {
        let rest = s.strip_prefix("servers-")?;
        let (count, policy) = rest.split_once('-')?;
        let servers: usize = count.parse().ok()?;
        if servers < 1 {
            return None;
        }
        Some(ServerTopology { servers, assign: AssignPolicy::parse(policy)? })
    }
}

/// Cluster and filesystem parameters for one launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Total MPI ranks.
    pub ranks: usize,
    /// Ranks per node (the paper's smallest point is 512 ranks on 4 nodes).
    pub ranks_per_node: usize,
    /// Client↔server round-trip time for one metadata op.
    pub rtt_ns: u64,
    /// Server-side service time per metadata op (1/throughput).
    pub meta_service_ns: u64,
    /// Client-local cost of a warm (cached) op.
    pub warm_ns: u64,
    /// Fixed application startup cost outside the loader (MPI init, python
    /// imports) — paid by wrapped and unwrapped runs alike.
    pub base_overhead_ns: u64,
    /// Per-rank serialized startup cost within a node (process spawn).
    pub per_rank_overhead_ns: u64,
    /// Spindle-style broadcast cache: only one node pays the cold stream,
    /// the rest replay warm (ablation of the paper's "combining Shrinkwrap
    /// with an approach like Spindle" remark).
    pub broadcast_cache: bool,
    /// Per-op server service-time distribution. [`Deterministic`](ServiceDistribution::Deterministic)
    /// (ServiceDistribution) reproduces the paper's FIFO model bit for bit;
    /// the stochastic variants draw one factor per (cold node, server op)
    /// from [`SplitMix::split`]`(seed, SplitMix::NODE, node)`.
    pub service_dist: ServiceDistribution,
    /// Base RNG seed for stochastic service draws. Ignored (no draws occur)
    /// under [`ServiceDistribution::Deterministic`] with a draw-free
    /// [`FaultModel`].
    pub seed: u64,
    /// Fault-injection model (server brownouts, RPC loss/retry, stragglers).
    /// [`FaultModel::None`] reproduces the healthy-server engine bit for
    /// bit; the draw-taking variants pull from the dedicated
    /// [`SplitMix::FAULT`] stream domain so they never perturb service
    /// draws (common random numbers across fault/no-fault pairs).
    pub fault: FaultModel,
    /// Metadata-server fleet shape. The default single-server topology
    /// reproduces the pre-axis engine bit for bit; `S > 1` gives each
    /// server its own busy-until lane in every engine regime.
    #[serde(default)]
    pub topology: ServerTopology,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig {
            ranks: 512,
            ranks_per_node: 128,
            rtt_ns: 200_000,         // 200 µs NFS round trip
            meta_service_ns: 50_000, // 20k metadata ops/s server
            warm_ns: 1_000,
            base_overhead_ns: 25_000_000_000, // 25 s of MPI/python startup
            per_rank_overhead_ns: 10_000_000, // 10 ms per rank, serial per node
            broadcast_cache: false,
            service_dist: ServiceDistribution::Deterministic,
            seed: 0xD15_7A5ED, // "dist-based" — any fixed value works
            fault: FaultModel::None,
            topology: ServerTopology::single(),
        }
    }
}

impl LaunchConfig {
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        self.ranks = ranks;
        self
    }

    pub fn with_service_dist(mut self, dist: ServiceDistribution) -> Self {
        self.service_dist = dist;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_fault(mut self, fault: FaultModel) -> Self {
        self.fault = fault;
        self
    }

    pub fn with_topology(mut self, topology: ServerTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Number of nodes (ceil division).
    pub fn nodes(&self) -> usize {
        self.ranks.div_ceil(self.ranks_per_node).max(1)
    }
}

/// Outcome of one simulated launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LaunchResult {
    /// Wall time until every rank finished loading.
    pub time_to_launch_ns: u64,
    pub nodes: usize,
    /// Cold metadata/data ops that reached the server, totalled over nodes.
    pub server_ops: u64,
    /// Ops absorbed by client caches.
    pub local_ops: u64,
    /// Peak simulated server queue depth (contention indicator).
    pub peak_queue_depth: usize,
    /// RPC attempts re-issued after a lost response
    /// ([`FaultModel::RpcLoss`]); zero otherwise.
    #[serde(default)]
    pub retries_issued: u64,
    /// Client timeouts that fired waiting on a lost response.
    #[serde(default)]
    pub timeouts_hit: u64,
    /// Longest single exponential-backoff wait any client slept.
    #[serde(default)]
    pub max_backoff_ns: u64,
    /// Cold nodes the straggler draw slowed ([`FaultModel::Stragglers`]).
    #[serde(default)]
    pub slowed_nodes: usize,
}

impl LaunchResult {
    pub fn seconds(&self) -> f64 {
        self.time_to_launch_ns as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_rounding() {
        assert_eq!(LaunchConfig::default().with_ranks(512).nodes(), 4);
        assert_eq!(LaunchConfig::default().with_ranks(513).nodes(), 5);
        assert_eq!(LaunchConfig::default().with_ranks(1).nodes(), 1);
    }

    #[test]
    fn defaults_match_paper_testbed_scale() {
        let c = LaunchConfig::default();
        assert_eq!(c.ranks, 512);
        assert_eq!(c.nodes(), 4);
        assert!(!c.broadcast_cache);
        assert!(c.service_dist.is_deterministic(), "the paper's model is the default");
        assert!(c.topology.is_single(), "one metadata server is the paper's model");
    }

    #[test]
    fn jitter_factors_are_bounded_and_centered() {
        let dist = ServiceDistribution::uniform_jitter(0.25);
        let mut rng = SplitMix::new(3);
        let mut sum = 0.0;
        for _ in 0..4000 {
            let f = dist.sample(&mut rng);
            assert!((0.75..=1.25).contains(&f), "factor out of band: {f}");
            sum += f;
        }
        let mean = sum / 4000.0;
        assert!((mean - 1.0).abs() < 0.01, "jitter is mean-preserving: {mean}");
    }

    #[test]
    fn log_normal_is_mean_preserving_with_a_heavy_tail() {
        let dist = ServiceDistribution::log_normal(0.5);
        let mut rng = SplitMix::new(4);
        let n = 200_000;
        let (mut sum, mut above_double) = (0.0, 0usize);
        for _ in 0..n {
            let f = dist.sample(&mut rng);
            assert!(f > 0.0);
            sum += f;
            if f > 2.0 {
                above_double += 1;
            }
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "σ-corrected log-normal has mean 1: {mean}");
        assert!(above_double > 0, "the tail reaches past 2× the mean");
    }

    #[test]
    fn distribution_names_are_stable() {
        assert_eq!(ServiceDistribution::Deterministic.name(), "deterministic");
        assert_eq!(ServiceDistribution::uniform_jitter(0.25).name(), "jitter-250");
        assert_eq!(ServiceDistribution::log_normal(0.5).name(), "lognormal-500");
    }

    #[test]
    fn topology_names_round_trip_and_default_is_single() {
        let def = ServerTopology::default();
        assert!(def.is_single());
        assert_eq!(def, ServerTopology::single());
        for top in
            [ServerTopology::single(), ServerTopology::hash(4), ServerTopology::least_loaded(16)]
        {
            assert_eq!(ServerTopology::parse(&top.name()), Some(top), "{}", top.name());
        }
        assert_eq!(ServerTopology::hash(4).name(), "servers-4-hash");
        assert_eq!(ServerTopology::least_loaded(8).name(), "servers-8-least");
        assert_eq!(ServerTopology::parse("servers-0-hash"), None);
        assert_eq!(ServerTopology::parse("servers-4-random"), None);
        assert_eq!(ServerTopology::parse("4-hash"), None);
    }

    #[test]
    fn sampling_reproduces_per_seed() {
        for dist in ServiceDistribution::all() {
            let mut a = SplitMix::split(9, SplitMix::NODE, 2);
            let mut b = SplitMix::split(9, SplitMix::NODE, 2);
            for _ in 0..50 {
                assert_eq!(dist.sample(&mut a).to_bits(), dist.sample(&mut b).to_bits());
            }
        }
    }
}

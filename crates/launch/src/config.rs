//! Launch-simulation parameters and results.

use serde::{Deserialize, Serialize};

/// Cluster and filesystem parameters for one launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Total MPI ranks.
    pub ranks: usize,
    /// Ranks per node (the paper's smallest point is 512 ranks on 4 nodes).
    pub ranks_per_node: usize,
    /// Client↔server round-trip time for one metadata op.
    pub rtt_ns: u64,
    /// Server-side service time per metadata op (1/throughput).
    pub meta_service_ns: u64,
    /// Client-local cost of a warm (cached) op.
    pub warm_ns: u64,
    /// Fixed application startup cost outside the loader (MPI init, python
    /// imports) — paid by wrapped and unwrapped runs alike.
    pub base_overhead_ns: u64,
    /// Per-rank serialized startup cost within a node (process spawn).
    pub per_rank_overhead_ns: u64,
    /// Spindle-style broadcast cache: only one node pays the cold stream,
    /// the rest replay warm (ablation of the paper's "combining Shrinkwrap
    /// with an approach like Spindle" remark).
    pub broadcast_cache: bool,
}

impl Default for LaunchConfig {
    fn default() -> Self {
        LaunchConfig {
            ranks: 512,
            ranks_per_node: 128,
            rtt_ns: 200_000,         // 200 µs NFS round trip
            meta_service_ns: 50_000, // 20k metadata ops/s server
            warm_ns: 1_000,
            base_overhead_ns: 25_000_000_000, // 25 s of MPI/python startup
            per_rank_overhead_ns: 10_000_000, // 10 ms per rank, serial per node
            broadcast_cache: false,
        }
    }
}

impl LaunchConfig {
    pub fn with_ranks(mut self, ranks: usize) -> Self {
        self.ranks = ranks;
        self
    }

    /// Number of nodes (ceil division).
    pub fn nodes(&self) -> usize {
        self.ranks.div_ceil(self.ranks_per_node).max(1)
    }
}

/// Outcome of one simulated launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchResult {
    /// Wall time until every rank finished loading.
    pub time_to_launch_ns: u64,
    pub nodes: usize,
    /// Cold metadata/data ops that reached the server, totalled over nodes.
    pub server_ops: u64,
    /// Ops absorbed by client caches.
    pub local_ops: u64,
    /// Peak simulated server queue depth (contention indicator).
    pub peak_queue_depth: usize,
}

impl LaunchResult {
    pub fn seconds(&self) -> f64 {
        self.time_to_launch_ns as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_rounding() {
        assert_eq!(LaunchConfig::default().with_ranks(512).nodes(), 4);
        assert_eq!(LaunchConfig::default().with_ranks(513).nodes(), 5);
        assert_eq!(LaunchConfig::default().with_ranks(1).nodes(), 1);
    }

    #[test]
    fn defaults_match_paper_testbed_scale() {
        let c = LaunchConfig::default();
        assert_eq!(c.ranks, 512);
        assert_eq!(c.nodes(), 4);
        assert!(!c.broadcast_cache);
    }
}

//! Fault injection: the degraded-mode axis of the launch DES.
//!
//! The paper's model — and every layer of this crate through the batch
//! planner — assumes a perfectly reliable metadata server. The regime the
//! paper studies (thousands of ranks hammering NFS metadata) is exactly
//! where real servers brown out, RPCs time out, and client retries amplify
//! the very contention being measured. [`FaultModel`] makes those failure
//! modes a first-class, seeded scenario axis:
//!
//! * [`FaultModel::ServerStall`] — the server freezes for a window (GC
//!   pause, failover, brownout): no op may *start* service inside
//!   `[at_ns, at_ns + duration_ns)`; ops already in service complete, and
//!   the queue keeps building against the stalled clock. Draw-free.
//! * [`FaultModel::RpcLoss`] — each served op's *response* is lost with
//!   probability `loss_milli / 1000`. The client times out `timeout_ns`
//!   after it sent the request, backs off exponentially
//!   (`backoff_base_ns · 2^attempt`), and re-issues. Retries are real
//!   extra server work — the server pays the full service time for every
//!   lost attempt — so the offered load amplifies as `ρ / (1 − loss)`.
//!   Attempt `max_retries` always succeeds (and takes no loss draw), so
//!   every launch terminates.
//! * [`FaultModel::Stragglers`] — a seeded `frac_milli / 1000` fraction of
//!   cold nodes is slow: every one of a straggler's server ops costs
//!   `slow_milli / 1000 ×` its (possibly jitter-scaled) service time.
//!
//! All fault draws come from the dedicated [`SplitMix::FAULT`] stream
//! domain (`split(seed, FAULT, node)`), consumed strictly in each node's
//! own event order. Two consequences: every cell stays deterministic and
//! content-addressable from `(seed, fault, node)` alone, and a faulted
//! cell shares its NODE-domain service draws with the fault-free cell of
//! the same seed — common random numbers, so degradation *deltas* are
//! low-variance. `FaultModel::None` takes zero draws and leaves every
//! result bit-identical to the pre-fault engine.
//!
//! [`SplitMix::FAULT`]: depchaos_workloads::SplitMix::FAULT

use serde::{Deserialize, Serialize};

/// The fault-injection model one launch simulates under. See the module
/// docs for semantics; parameters are integers (milli-units for rates and
/// factors) so the model can sit in `Eq + Hash` scenario keys and hash
/// stably into the serve store's content address.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultModel {
    /// Healthy server — the exact pre-fault engine, bit for bit.
    #[default]
    None,
    /// The server freezes for `[at_ns, at_ns + duration_ns)`: no op starts
    /// service inside the window (in-flight service completes).
    ServerStall { at_ns: u64, duration_ns: u64 },
    /// Responses are lost with probability `loss_milli / 1000`; the client
    /// re-issues `timeout_ns` after send plus `backoff_base_ns · 2^attempt`
    /// exponential backoff, giving up on loss only at attempt
    /// `max_retries` (which always succeeds).
    RpcLoss { loss_milli: u32, timeout_ns: u64, backoff_base_ns: u64, max_retries: u32 },
    /// A seeded `frac_milli / 1000` fraction of cold nodes runs its server
    /// ops `slow_milli / 1000 ×` slower.
    Stragglers { frac_milli: u32, slow_milli: u32 },
}

impl FaultModel {
    pub fn is_none(&self) -> bool {
        matches!(self, FaultModel::None)
    }

    /// Whether this model consumes FAULT-domain RNG draws. `ServerStall`
    /// is draw-free (pure clock arithmetic), so cells differing only in
    /// seed still collapse to one deterministic kernel under it.
    pub fn takes_draws(&self) -> bool {
        matches!(self, FaultModel::RpcLoss { .. } | FaultModel::Stragglers { .. })
    }

    /// Stable display/report/TSV/label name. `None` spells `none`; the
    /// parameterised variants encode every parameter so two models can
    /// never alias a label (and so a scenario seed).
    pub fn name(&self) -> String {
        match *self {
            FaultModel::None => "none".to_string(),
            FaultModel::ServerStall { at_ns, duration_ns } => {
                format!("stall-{at_ns}-{duration_ns}")
            }
            FaultModel::RpcLoss { loss_milli, timeout_ns, backoff_base_ns, max_retries } => {
                format!("loss-{loss_milli}-{timeout_ns}-{backoff_base_ns}-{max_retries}")
            }
            FaultModel::Stragglers { frac_milli, slow_milli } => {
                format!("stragglers-{frac_milli}-{slow_milli}")
            }
        }
    }

    /// Inverse of [`FaultModel::name`] — the spelling the serve front door
    /// accepts as a `fault:` delta.
    pub fn parse(s: &str) -> Option<FaultModel> {
        if s == "none" {
            return Some(FaultModel::None);
        }
        if let Some(rest) = s.strip_prefix("stall-") {
            let mut it = rest.splitn(2, '-');
            let at_ns = it.next()?.parse().ok()?;
            let duration_ns = it.next()?.parse().ok()?;
            return Some(FaultModel::ServerStall { at_ns, duration_ns });
        }
        if let Some(rest) = s.strip_prefix("loss-") {
            let parts: Vec<&str> = rest.split('-').collect();
            if parts.len() != 4 {
                return None;
            }
            return Some(FaultModel::RpcLoss {
                loss_milli: parts[0].parse().ok()?,
                timeout_ns: parts[1].parse().ok()?,
                backoff_base_ns: parts[2].parse().ok()?,
                max_retries: parts[3].parse().ok()?,
            });
        }
        if let Some(rest) = s.strip_prefix("stragglers-") {
            let mut it = rest.splitn(2, '-');
            let frac_milli = it.next()?.parse().ok()?;
            let slow_milli = it.next()?.parse().ok()?;
            return Some(FaultModel::Stragglers { frac_milli, slow_milli });
        }
        None
    }

    /// The retry amplification factor on offered server load:
    /// `1 / (1 − loss)` under [`FaultModel::RpcLoss`] (every attempt is
    /// independent work and a `loss` fraction of attempts is wasted), 1
    /// otherwise. A loss rate ≥ 1 would amplify without bound through the
    /// forced final attempt; it is reported as infinite.
    pub fn load_amplification(&self) -> f64 {
        match *self {
            FaultModel::RpcLoss { loss_milli, .. } => {
                if loss_milli >= 1000 {
                    f64::INFINITY
                } else {
                    1000.0 / (1000.0 - loss_milli as f64)
                }
            }
            _ => 1.0,
        }
    }
}

/// Exponential backoff before retry `attempt + 1`:
/// `base · 2^attempt`, saturating instead of overflowing for absurd
/// attempt counts.
pub(crate) fn backoff_ns(base_ns: u64, attempt: u32) -> u64 {
    if attempt >= 63 {
        return u64::MAX;
    }
    base_ns.saturating_mul(1u64 << attempt)
}

/// Fault accounting one cold-fleet replay produced — the extra columns a
/// [`crate::LaunchResult`] carries. All-zero under [`FaultModel::None`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// RPC attempts re-issued after a lost response.
    pub retries: u64,
    /// Client timeouts that fired (equal to `retries` in this model; kept
    /// separate so a future partial-timeout model needn't re-plumb).
    pub timeouts: u64,
    /// The longest single backoff wait any client slept.
    pub max_backoff_ns: u64,
    /// Cold nodes the straggler draw slowed.
    pub slowed_nodes: usize,
}

impl FaultCounts {
    pub(crate) fn note_retry(&mut self, backoff_ns: u64) {
        self.retries += 1;
        self.timeouts += 1;
        self.max_backoff_ns = self.max_backoff_ns.max(backoff_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_parse() {
        let models = [
            FaultModel::None,
            FaultModel::ServerStall { at_ns: 2_000_000_000, duration_ns: 10_000_000_000 },
            FaultModel::RpcLoss {
                loss_milli: 50,
                timeout_ns: 1_000_000_000,
                backoff_base_ns: 250_000_000,
                max_retries: 5,
            },
            FaultModel::Stragglers { frac_milli: 100, slow_milli: 4000 },
        ];
        for m in models {
            assert_eq!(FaultModel::parse(&m.name()), Some(m), "{}", m.name());
        }
        assert_eq!(FaultModel::parse("stall-1"), None);
        assert_eq!(FaultModel::parse("loss-1-2-3"), None);
        assert_eq!(FaultModel::parse("brownout"), None);
    }

    #[test]
    fn draw_taking_is_per_variant() {
        assert!(!FaultModel::None.takes_draws());
        assert!(!FaultModel::ServerStall { at_ns: 0, duration_ns: 1 }.takes_draws());
        assert!(FaultModel::RpcLoss {
            loss_milli: 1,
            timeout_ns: 1,
            backoff_base_ns: 1,
            max_retries: 1
        }
        .takes_draws());
        assert!(FaultModel::Stragglers { frac_milli: 1, slow_milli: 2000 }.takes_draws());
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        assert_eq!(backoff_ns(100, 0), 100);
        assert_eq!(backoff_ns(100, 1), 200);
        assert_eq!(backoff_ns(100, 10), 102_400);
        assert_eq!(backoff_ns(u64::MAX / 2, 2), u64::MAX);
        assert_eq!(backoff_ns(1, 63), u64::MAX);
        assert_eq!(backoff_ns(1, 200), u64::MAX);
    }

    #[test]
    fn amplification_is_the_retry_geometric_series() {
        assert_eq!(FaultModel::None.load_amplification(), 1.0);
        let loss = FaultModel::RpcLoss {
            loss_milli: 500,
            timeout_ns: 1,
            backoff_base_ns: 1,
            max_retries: 3,
        };
        assert!((loss.load_amplification() - 2.0).abs() < 1e-12);
        let total = FaultModel::RpcLoss {
            loss_milli: 1000,
            timeout_ns: 1,
            backoff_base_ns: 1,
            max_retries: 3,
        };
        assert!(total.load_amplification().is_infinite());
    }
}

//! Executing an [`ExperimentMatrix`]: memoized profiling, parallel DES
//! sweeps, and the [`SweepReport`] renderers.
//!
//! Execution is two-phase:
//!
//! 1. **Profile** — every unique [`CellKey`] (workload × backend × storage)
//!    is realised exactly once: build a fresh [`Vfs`] on the cell's storage
//!    backend, install the workload, capture the plain op stream, wrap
//!    through the cell's backend, capture the wrapped op stream. Both logs
//!    land in a shared, memoized [`ProfileCache`], so scenarios differing
//!    only in wrap state, cache policy, or rank points reuse one profile.
//! 2. **Sweep** — every scenario replays its cell's op stream through the
//!    DES at each rank point, fanned out over rayon (the simulations are
//!    independent).
//!
//! A backend that cannot resolve the workload is data, not a crash: the
//! cell records the unresolved count or wrap error and the report renders
//! the hole (that the future loader cannot see a RUNPATH-only world *is*
//! the §IV story).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use depchaos_core::{wrap, ShrinkwrapOptions};
use depchaos_loader::LdCache;
use depchaos_vfs::{StraceLog, Vfs};
use depchaos_workloads::{SplitMix, Workload};

use crate::adaptive::{run_adaptive_units, AdaptiveControl, AdaptiveUnit};
use crate::batch::BatchPlan;
use crate::config::{LaunchConfig, LaunchResult, ServerTopology, ServiceDistribution};
use crate::des::{ClassifiedStream, ClassifyParams};
use crate::fault::FaultModel;
use crate::matrix::{
    CachePolicy, CellKey, ExperimentMatrix, MatrixBackend, Scenario, ScenarioSpec, WrapState,
};
use crate::profile::profile_load_checked;
use crate::queueing::{mg1_bounds, validate_against_mg1, QueueingCheck};
use crate::sweep::{render_fig6, replicate_seed, sweep_ranks_replicated, LaunchStats};

/// The RNG seed one scenario simulates under: a stable FNV-1a digest of the
/// scenario label, taken through the [`SplitMix::WORKLOAD`] stream domain of
/// the experiment's base seed. Every cell of the matrix is therefore
/// reproducible from `(base seed, cell label)` alone — re-running a single
/// scenario standalone draws exactly what the full sweep drew — while
/// distinct cells get decorrelated streams that cannot collide with the
/// replicate ([`SplitMix::REPLICATE`]) or per-node ([`SplitMix::NODE`])
/// domains derived from them.
pub fn scenario_seed(base_seed: u64, label: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in label.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    SplitMix::split(base_seed, SplitMix::WORKLOAD, h).next_u64()
}

/// One captured op stream plus how the load went.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileOutcome {
    pub log: StraceLog,
    /// stat+openat count of the stream (the Table II metric).
    pub stat_openat: usize,
    /// Failed lookups in the stream.
    pub misses: usize,
    /// Did every dependency resolve? A load can run to completion with
    /// holes (future loader on a RUNPATH world, musl on a stripped image).
    pub complete: bool,
    /// Unresolved dependency count when `!complete`.
    pub unresolved: usize,
}

/// Everything one profiling run of a cell produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellProfile {
    pub key: CellKey,
    /// The as-built op stream, or the error that prevented capturing it.
    pub plain: Result<ProfileOutcome, String>,
    /// The post-Shrinkwrap op stream; `Err` when the wrap itself failed
    /// under this cell's backend semantics.
    pub wrapped: Result<ProfileOutcome, String>,
}

impl CellProfile {
    /// The outcome for one wrap state.
    pub fn outcome(&self, wrap: WrapState) -> &Result<ProfileOutcome, String> {
        match wrap {
            WrapState::Plain => &self.plain,
            WrapState::Wrapped => &self.wrapped,
        }
    }
}

/// The shared, memoized profile store. Cells are keyed by
/// (workload, backend, storage); asking twice for the same key performs
/// one profiling run and hands back the same [`Arc`]. Sharing one cache
/// across matrices (report sections, benches, tests) extends the
/// memoization across them.
#[derive(Default)]
pub struct ProfileCache {
    cells: Mutex<HashMap<CellKey, Arc<CellProfile>>>,
    computed: Mutex<usize>,
    /// Classified streams, memoized per (cell, wrap state, latency
    /// calibration): every scenario and rank point that shares those three
    /// shares one classification — cache policy and rank counts do not
    /// invalidate it.
    classified: Mutex<HashMap<(CellKey, WrapState, ClassifyParams), Arc<ClassifiedStream>>>,
    classified_computed: Mutex<usize>,
}

impl ProfileCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// How many profiling runs actually executed (cache misses) — the
    /// exactly-once accounting the matrix tests assert on.
    pub fn computed(&self) -> usize {
        *self.computed.lock()
    }

    /// How many stream classifications actually executed; bounded by
    /// (cells × wrap states × distinct latency calibrations), never by
    /// scenarios or rank points.
    pub fn classified_computed(&self) -> usize {
        *self.classified_computed.lock()
    }

    /// Fetch or compute the [`ClassifiedStream`] for one wrap state of a
    /// cell under `cfg`'s latency calibration.
    pub fn classified(
        &self,
        key: &CellKey,
        wrap: WrapState,
        log: &StraceLog,
        cfg: &LaunchConfig,
    ) -> Arc<ClassifiedStream> {
        let k = (key.clone(), wrap, ClassifyParams::of(cfg));
        if let Some(hit) = self.classified.lock().get(&k) {
            return Arc::clone(hit);
        }
        let stream = Arc::new(ClassifiedStream::classify(log, cfg));
        let mut map = self.classified.lock();
        if let Some(existing) = map.get(&k) {
            return Arc::clone(existing);
        }
        map.insert(k, Arc::clone(&stream));
        *self.classified_computed.lock() += 1;
        stream
    }

    /// A cell already in the cache, if any.
    pub fn get(&self, key: &CellKey) -> Option<Arc<CellProfile>> {
        self.cells.lock().get(key).cloned()
    }

    /// Fetch or produce the profile cell for (workload, backend, storage).
    pub fn get_or_profile(
        &self,
        workload: &dyn Workload,
        backend: &MatrixBackend,
        storage: depchaos_vfs::StorageModel,
    ) -> Arc<CellProfile> {
        self.get_or_profile_counted(workload, backend, storage).0
    }

    /// [`ProfileCache::get_or_profile`], also reporting whether *this call*
    /// performed the profiling run — the per-run accounting behind
    /// [`SweepReport::cells_profiled`], which must not miscount when the
    /// cache is shared by concurrently running matrices.
    pub fn get_or_profile_counted(
        &self,
        workload: &dyn Workload,
        backend: &MatrixBackend,
        storage: depchaos_vfs::StorageModel,
    ) -> (Arc<CellProfile>, bool) {
        let key = CellKey {
            workload: workload.name().to_string(),
            backend: backend.name().to_string(),
            storage,
        };
        if let Some(hit) = self.get(&key) {
            return (hit, false);
        }
        let profile = Arc::new(profile_cell(key.clone(), workload, backend, storage));
        let mut cells = self.cells.lock();
        // Under a parallel fill two threads can race to the same key; the
        // first insert wins and counts, the loser adopts it.
        if let Some(existing) = cells.get(&key) {
            return (Arc::clone(existing), false);
        }
        cells.insert(key, Arc::clone(&profile));
        *self.computed.lock() += 1;
        (profile, true)
    }
}

/// One profiling run: world build, plain capture, wrap, wrapped capture.
fn profile_cell(
    key: CellKey,
    workload: &dyn Workload,
    backend: &MatrixBackend,
    storage: depchaos_vfs::StorageModel,
) -> CellProfile {
    let fs = Vfs::new(storage.backend());
    let installed = match workload.install(&fs) {
        Ok(i) => i,
        Err(e) => {
            let msg = format!("install failed: {e}");
            return CellProfile { key, plain: Err(msg.clone()), wrapped: Err(msg) };
        }
    };
    let env = workload.environment();
    let loader_backend = match backend.backend_for(&fs, &installed) {
        Ok(b) => b,
        Err(e) => {
            let msg = format!("backend index failed: {e}");
            return CellProfile { key, plain: Err(msg.clone()), wrapped: Err(msg) };
        }
    };
    let capture = |label: &str| -> Result<ProfileOutcome, String> {
        let loader = loader_backend.instantiate(&fs, &env, &LdCache::empty());
        profile_load_checked(&fs, &installed.exe_path, loader.as_ref())
            .map(|(log, r)| ProfileOutcome {
                stat_openat: log.stat_openat(),
                misses: log.misses(),
                complete: r.success(),
                unresolved: r.failures.len(),
                log,
            })
            .map_err(|e| format!("{label} load failed: {e}"))
    };

    let plain = capture("plain");
    let wrapped = match wrap(
        &fs,
        &installed.exe_path,
        &ShrinkwrapOptions::new().env(env.clone()).backend(loader_backend.clone()),
    ) {
        Ok(_) => capture("wrapped"),
        Err(e) => Err(format!("wrap failed: {e}")),
    };
    CellProfile { key, plain, wrapped }
}

/// One scenario's sweep: its identity, a per-rank profile summary, the
/// simulated series (empty when the cell has no usable op stream), and —
/// per rank point — the replicate statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    pub spec: ScenarioSpec,
    pub stat_openat: usize,
    pub misses: usize,
    pub complete: bool,
    /// Unresolved dependency count when `!complete`.
    pub unresolved: usize,
    /// Why there is no series, when there isn't.
    pub error: Option<String>,
    /// Replicate 0's full results, one per rank point.
    pub series: Vec<(usize, LaunchResult)>,
    /// p50/p95/p99/mean over the scenario's seeded replicates, one per rank
    /// point (replicate count 1 for deterministic scenarios).
    pub stats: Vec<(usize, LaunchStats)>,
    /// The M/G/1 envelope verdict per rank point
    /// ([`crate::queueing::validate_against_mg1`]): does the replicate mean
    /// sit inside what queueing theory allows for this cell?
    pub queueing: Vec<(usize, QueueingCheck)>,
}

impl ScenarioResult {
    /// The simulated launch at `ranks`, when swept.
    pub fn result_at(&self, ranks: usize) -> Option<&LaunchResult> {
        self.series.iter().find(|(r, _)| *r == ranks).map(|(_, l)| l)
    }

    /// Launch seconds at `ranks`, when simulated.
    pub fn seconds_at(&self, ranks: usize) -> Option<f64> {
        self.result_at(ranks).map(LaunchResult::seconds)
    }

    /// Replicate statistics at `ranks`, when swept.
    pub fn stats_at(&self, ranks: usize) -> Option<&LaunchStats> {
        self.stats.iter().find(|(r, _)| *r == ranks).map(|(_, s)| s)
    }

    /// The queueing verdict at `ranks`, when swept.
    pub fn queueing_at(&self, ranks: usize) -> Option<&QueueingCheck> {
        self.queueing.iter().find(|(r, _)| *r == ranks).map(|(_, q)| q)
    }
}

/// Everything an [`ExperimentMatrix::run`] produced, serializable, with
/// the Fig 6 table and TSV renderers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    pub rank_points: Vec<usize>,
    pub results: Vec<ScenarioResult>,
    /// Profiling runs this matrix triggered (cache misses); always ≤ the
    /// number of unique cells across its scenarios.
    pub cells_profiled: usize,
    /// The sequential stopping rule the sweep ran under, when adaptive
    /// replicate control was requested — `None` for fixed-K sweeps. Each
    /// cell's stopped-at K is in its [`LaunchStats::replicates`]. Serde
    /// default keeps reports written before the rule existed loadable.
    #[serde(default)]
    pub adaptive: Option<AdaptiveControl>,
}

impl SweepReport {
    /// Results matching a predicate over specs.
    pub fn find(&self, pred: impl Fn(&ScenarioSpec) -> bool) -> Vec<&ScenarioResult> {
        self.results.iter().filter(|r| pred(&r.spec)).collect()
    }

    /// The one result with exactly this spec.
    pub fn get(&self, spec: &ScenarioSpec) -> Option<&ScenarioResult> {
        self.results.iter().find(|r| &r.spec == spec)
    }

    /// The single result for `(wrap, cache)` — the common pick when the
    /// matrix covers one (workload, backend, storage) slice, as the Fig 6
    /// drivers do. `None` when absent *or* ambiguous.
    pub fn one(&self, wrap: WrapState, cache: CachePolicy) -> Option<&ScenarioResult> {
        let mut it = self.results.iter().filter(|r| r.spec.wrap == wrap && r.spec.cache == cache);
        let first = it.next()?;
        if it.next().is_some() {
            return None;
        }
        Some(first)
    }

    /// Per-backend Fig 6 tables: for every (workload, storage, cache,
    /// backend) slice that has both wrap states, the normal-vs-wrapped
    /// table; slices missing a series render their error instead.
    pub fn render_fig6_tables(&self) -> String {
        // One pass to index results by spec, so slice assembly below stays
        // linear in the matrix size.
        let by_spec: HashMap<&ScenarioSpec, &ScenarioResult> =
            self.results.iter().map(|r| (&r.spec, r)).collect();
        let mut out = String::new();
        let mut seen: HashSet<ScenarioSpec> = HashSet::new();
        for r in &self.results {
            let slice_key = ScenarioSpec { wrap: WrapState::Plain, ..r.spec.clone() };
            if !seen.insert(slice_key) {
                continue;
            }
            let of_wrap =
                |w: WrapState| by_spec.get(&ScenarioSpec { wrap: w, ..r.spec.clone() }).copied();
            let plain = of_wrap(WrapState::Plain);
            let wrapped = of_wrap(WrapState::Wrapped);
            out.push_str(&format!(
                "--- {} × {} ({}, {} cache) ---\n",
                r.spec.workload,
                r.spec.backend,
                r.spec.storage.name(),
                r.spec.cache.name()
            ));
            for (state, res) in [("plain", plain), ("wrapped", wrapped)] {
                if let Some(res) = res {
                    if let Some(e) = &res.error {
                        out.push_str(&format!("{state}: no series — {e}\n"));
                    } else if !res.complete {
                        out.push_str(&format!(
                            "{state}: {} stat/openat, INCOMPLETE ({} unresolved)\n",
                            res.stat_openat, res.unresolved
                        ));
                    } else {
                        out.push_str(&format!(
                            "{state}: {} stat/openat ({} misses)\n",
                            res.stat_openat, res.misses
                        ));
                    }
                }
            }
            let series =
                |r: Option<&ScenarioResult>| r.map(|r| r.series.clone()).unwrap_or_default();
            out.push_str(&render_fig6(&self.rank_points, &series(plain), &series(wrapped)));
            out.push('\n');
        }
        out
    }

    /// The whole sweep as TSV — one row per (scenario, rank point), the raw
    /// data behind every per-backend and per-distribution figure. The
    /// percentile columns repeat the point estimate when the scenario is
    /// deterministic (replicates = 1). The trailing `stopping` column is
    /// the stopping summary: `fixed@K` for fixed-K sweeps, or
    /// `adaptive-<target>m@K` with the K the sequential rule actually used
    /// for that cell (the same K the `replicates` column counts).
    pub fn render_tsv(&self) -> String {
        let mut s = String::from(
            "workload\tbackend\tstorage\twrap\tcache\tdist\tfault\ttopology\tranks\tseconds\tp50_s\tp95_s\tp99_s\treplicates\tserver_ops\tpeak_queue\tretries\tstopping\n",
        );
        for r in &self.results {
            for (ranks, l) in &r.series {
                let st = r.stats_at(*ranks).copied().unwrap_or(LaunchStats {
                    replicates: 1,
                    mean_ns: l.time_to_launch_ns,
                    p50_ns: l.time_to_launch_ns,
                    p95_ns: l.time_to_launch_ns,
                    p99_ns: l.time_to_launch_ns,
                });
                let stopping = match &self.adaptive {
                    None => format!("fixed@{}", st.replicates),
                    Some(c) => format!("adaptive-{}m@{}", c.target_rel_milli, st.replicates),
                };
                s.push_str(&format!(
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{ranks}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{}\t{}\t{}\t{}\t{stopping}\n",
                    r.spec.workload,
                    r.spec.backend,
                    r.spec.storage.name(),
                    r.spec.wrap.name(),
                    r.spec.cache.name(),
                    r.spec.dist.name(),
                    r.spec.fault.name(),
                    r.spec.topology.name(),
                    l.seconds(),
                    st.p50_s(),
                    st.p95_s(),
                    st.p99_s(),
                    st.replicates,
                    l.server_ops,
                    l.peak_queue_depth,
                    l.retries_issued
                ));
            }
        }
        s
    }

    /// Per-distribution Fig 6 tables: for every (workload, backend,
    /// storage, cache, wrap) slice, one table with the deterministic curve
    /// next to each stochastic distribution's p50/p99 band — the `fig6-dist`
    /// section. Slices without a series render their error instead.
    pub fn render_fig6_dist_tables(&self) -> String {
        let mut out = String::new();
        let mut seen: HashSet<ScenarioSpec> = HashSet::new();
        for r in &self.results {
            let slice = ScenarioSpec { dist: ServiceDistribution::Deterministic, ..r.spec.clone() };
            if !seen.insert(slice.clone()) {
                continue;
            }
            // All distributions of this slice, deterministic first, then in
            // result order (which follows the matrix's distribution axis).
            let mut members: Vec<&ScenarioResult> = self
                .results
                .iter()
                .filter(|x| {
                    ScenarioSpec { dist: ServiceDistribution::Deterministic, ..x.spec.clone() }
                        == slice
                })
                .collect();
            members.sort_by_key(|x| !x.spec.dist.is_deterministic());
            out.push_str(&format!(
                "--- {} × {} ({}, {} cache, {}) ---\n",
                slice.workload,
                slice.backend,
                slice.storage.name(),
                slice.cache.name(),
                slice.wrap.name()
            ));
            if let Some(e) = members.iter().find_map(|m| m.error.as_deref()) {
                out.push_str(&format!("no series — {e}\n\n"));
                continue;
            }
            let mut header = String::from("ranks");
            for m in &members {
                if m.spec.dist.is_deterministic() {
                    header.push_str(&format!("  {:>10}", "det(s)"));
                } else {
                    header.push_str(&format!(
                        "  {:>22}",
                        format!("{} p50/p99(s)", m.spec.dist.name())
                    ));
                }
            }
            out.push_str(&header);
            out.push('\n');
            for &p in &self.rank_points {
                let mut row = format!("{p:>5}");
                for m in &members {
                    match (m.spec.dist.is_deterministic(), m.seconds_at(p), m.stats_at(p)) {
                        (true, Some(secs), _) => row.push_str(&format!("  {secs:>10.1}")),
                        (false, _, Some(st)) => row.push_str(&format!(
                            "  {:>22}",
                            format!("{:.1}/{:.1}", st.p50_s(), st.p99_s())
                        )),
                        (true, None, _) => row.push_str(&format!("  {:>10}", "-")),
                        (false, _, None) => row.push_str(&format!("  {:>22}", "-")),
                    }
                }
                out.push_str(&row);
                out.push('\n');
            }
            out.push('\n');
        }
        out
    }

    /// Per-fault degraded-mode tables — the `fig6-faults` section. For
    /// every (workload, backend, storage, wrap, cache, dist) slice swept
    /// across the fault axis, one table with a row per fault model: the
    /// launch seconds at each rank point, the slowdown over the healthy
    /// row at the largest point, and the fault accounting (retries,
    /// timeouts, straggler membership) from replicate 0 at that point.
    pub fn render_fault_tables(&self) -> String {
        let mut out = String::new();
        let mut seen: HashSet<ScenarioSpec> = HashSet::new();
        let last = self.rank_points.last().copied();
        for r in &self.results {
            let slice = ScenarioSpec { fault: FaultModel::None, ..r.spec.clone() };
            if !seen.insert(slice.clone()) {
                continue;
            }
            // All fault models of this slice, healthy first, then in
            // result order (which follows the matrix's fault axis).
            let mut members: Vec<&ScenarioResult> = self
                .results
                .iter()
                .filter(|x| ScenarioSpec { fault: FaultModel::None, ..x.spec.clone() } == slice)
                .collect();
            members.sort_by_key(|x| !x.spec.fault.is_none());
            out.push_str(&format!(
                "--- {} × {} ({}, {} cache, {}, {}) ---\n",
                slice.workload,
                slice.backend,
                slice.storage.name(),
                slice.cache.name(),
                slice.wrap.name(),
                slice.dist.name()
            ));
            if let Some(e) = members.iter().find_map(|m| m.error.as_deref()) {
                out.push_str(&format!("no series — {e}\n\n"));
                continue;
            }
            let healthy_at = |p: usize| {
                members.iter().find(|m| m.spec.fault.is_none()).and_then(|m| m.seconds_at(p))
            };
            let mut header = format!("{:<42}", "fault");
            for &p in &self.rank_points {
                header.push_str(&format!("  {:>10}", format!("{p}(s)")));
            }
            header.push_str(&format!(
                "  {:>9}  {:>9} {:>9} {:>7}\n",
                "slowdown", "retries", "timeouts", "slowed"
            ));
            out.push_str(&header);
            for m in &members {
                let name = if m.spec.fault.is_none() {
                    "healthy".to_string()
                } else {
                    m.spec.fault.name()
                };
                let mut row = format!("{name:<42}");
                for &p in &self.rank_points {
                    match m.seconds_at(p) {
                        Some(secs) => row.push_str(&format!("  {secs:>10.1}")),
                        None => row.push_str(&format!("  {:>10}", "-")),
                    }
                }
                let slowdown = last
                    .and_then(|p| Some(m.seconds_at(p)? / healthy_at(p)?))
                    .map(|x| format!("{x:>8.2}x"))
                    .unwrap_or_else(|| format!("{:>9}", "-"));
                let acct = last.and_then(|p| m.result_at(p));
                row.push_str(&format!(
                    "  {slowdown}  {:>9} {:>9} {:>7}\n",
                    acct.map(|l| l.retries_issued).unwrap_or(0),
                    acct.map(|l| l.timeouts_hit).unwrap_or(0),
                    acct.map(|l| l.slowed_nodes).unwrap_or(0)
                ));
                out.push_str(&row);
            }
            out.push('\n');
        }
        out
    }

    /// Per-topology fleet tables — the `fig6-servers` section. For every
    /// (workload, backend, storage, wrap, cache, dist, fault) slice swept
    /// across the server-topology axis, one table with a row per fleet:
    /// the launch seconds at each rank point and the speedup over the
    /// single-server row at the largest point — plus the *flattening
    /// point*, the smallest fleet within 5% of the best launch at the
    /// largest rank point (past it, more metadata servers buy nothing,
    /// because the launch has gone RTT- or client-bound).
    pub fn render_servers_tables(&self) -> String {
        let display = |t: &ServerTopology| {
            if t.is_single() {
                "1-server".to_string()
            } else {
                t.name()
            }
        };
        let mut out = String::new();
        let mut seen: HashSet<ScenarioSpec> = HashSet::new();
        let last = self.rank_points.last().copied();
        for r in &self.results {
            let slice = ScenarioSpec { topology: ServerTopology::single(), ..r.spec.clone() };
            if !seen.insert(slice.clone()) {
                continue;
            }
            // All fleets of this slice, smallest first, hash before
            // least-loaded at equal size.
            let mut members: Vec<&ScenarioResult> = self
                .results
                .iter()
                .filter(|x| {
                    ScenarioSpec { topology: ServerTopology::single(), ..x.spec.clone() } == slice
                })
                .collect();
            members.sort_by_key(|x| (x.spec.topology.servers, x.spec.topology.assign.name()));
            out.push_str(&format!(
                "--- {} × {} ({}, {} cache, {}, {}) ---\n",
                slice.workload,
                slice.backend,
                slice.storage.name(),
                slice.cache.name(),
                slice.wrap.name(),
                slice.dist.name()
            ));
            if let Some(e) = members.iter().find_map(|m| m.error.as_deref()) {
                out.push_str(&format!("no series — {e}\n\n"));
                continue;
            }
            let single_at = |p: usize| {
                members.iter().find(|m| m.spec.topology.is_single()).and_then(|m| m.seconds_at(p))
            };
            let mut header = format!("{:<18}", "topology");
            for &p in &self.rank_points {
                header.push_str(&format!("  {:>10}", format!("{p}(s)")));
            }
            header.push_str(&format!("  {:>9}\n", "speedup"));
            out.push_str(&header);
            for m in &members {
                let mut row = format!("{:<18}", display(&m.spec.topology));
                for &p in &self.rank_points {
                    match m.seconds_at(p) {
                        Some(secs) => row.push_str(&format!("  {secs:>10.1}")),
                        None => row.push_str(&format!("  {:>10}", "-")),
                    }
                }
                let speedup = last
                    .and_then(|p| Some(single_at(p)? / m.seconds_at(p)?))
                    .map(|x| format!("{x:>8.2}x"))
                    .unwrap_or_else(|| format!("{:>9}", "-"));
                row.push_str(&format!("  {speedup}\n"));
                out.push_str(&row);
            }
            if let Some(p) = last {
                let best =
                    members.iter().filter_map(|m| m.seconds_at(p)).fold(f64::INFINITY, f64::min);
                if best.is_finite() {
                    if let Some(flat) =
                        members.iter().find(|m| m.seconds_at(p).is_some_and(|s| s <= best * 1.05))
                    {
                        out.push_str(&format!(
                            "flattens at {} ({p} ranks, within 5% of best)\n",
                            display(&flat.spec.topology)
                        ));
                    }
                }
            }
            out.push('\n');
        }
        out
    }

    /// Every `(scenario label, ranks)` whose replicate mean escaped the
    /// M/G/1 envelope — empty means the whole sweep is consistent with
    /// queueing theory.
    pub fn queueing_violations(&self) -> Vec<(String, usize)> {
        let mut out = Vec::new();
        for r in &self.results {
            for (ranks, q) in &r.queueing {
                if !q.within {
                    out.push((r.spec.label(), *ranks));
                }
            }
        }
        out
    }

    /// Per-scenario M/G/1 validation tables — the `fig6-queueing` section:
    /// one row per rank point with the observed replicate mean, the hard
    /// envelope, the offered utilisation, the Pollaczek–Khinchine wait, and
    /// the verdict.
    pub fn render_queueing_tables(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            out.push_str(&format!("--- {} ---\n", r.spec.label()));
            if let Some(e) = &r.error {
                out.push_str(&format!("no series — {e}\n\n"));
                continue;
            }
            out.push_str(&format!(
                "{:>7} {:>10} {:>10} {:>10} {:>7} {:>12}  verdict\n",
                "ranks", "mean(s)", "lower(s)", "upper(s)", "rho", "mg1-wait(ms)"
            ));
            for (ranks, q) in &r.queueing {
                let wait = if q.bounds.mean_wait_ns.is_finite() {
                    format!("{:>12.3}", q.bounds.mean_wait_ns / 1e6)
                } else {
                    format!("{:>12}", "saturated")
                };
                // Faulted cells forfeit the upper bound entirely.
                let upper = if q.bounds.upper_ns == u64::MAX {
                    format!("{:>10}", "-")
                } else {
                    format!("{:>10.2}", q.bounds.upper_ns as f64 / 1e9)
                };
                out.push_str(&format!(
                    "{ranks:>7} {:>10.2} {:>10.2} {upper} {:>7.2} {wait}  {}\n",
                    q.observed_mean_ns as f64 / 1e9,
                    q.bounds.lower_ns as f64 / 1e9,
                    q.bounds.utilisation,
                    if !q.bounds.applicable {
                        "n/a"
                    } else if q.within {
                        "ok"
                    } else {
                        "VIOLATION"
                    }
                ));
            }
            out.push('\n');
        }
        out
    }

    /// The queueing validation as TSV — one row per (scenario, rank point),
    /// the raw data behind `fig6-queueing`. The `within` column is `n/a`
    /// for cells whose bounds are inapplicable (clamp-reaching tails): such
    /// cells pass vacuously and must not read as validated. Saturated cells
    /// (ρ ≥ 1) have no finite open-system wait; their `mg1_wait_ms` field
    /// is left empty — the TSV convention for a missing datum — rather
    /// than printing a non-numeric `inf` into a numeric column.
    pub fn render_queueing_tsv(&self) -> String {
        let mut s = String::from(
            "workload\tbackend\tstorage\twrap\tcache\tdist\tfault\ttopology\tranks\tmean_s\tlower_s\tupper_s\
             \tutilisation\tmg1_wait_ms\treplicates\twithin\n",
        );
        for r in &self.results {
            for (ranks, q) in &r.queueing {
                let st = r.stats_at(*ranks).map(|s| s.replicates).unwrap_or(1);
                let wait_ms = if q.bounds.mean_wait_ns.is_finite() {
                    format!("{:.3}", q.bounds.mean_wait_ns / 1e6)
                } else {
                    String::new()
                };
                // Missing-datum convention for the forfeited upper bound.
                let upper_s = if q.bounds.upper_ns == u64::MAX {
                    String::new()
                } else {
                    format!("{:.3}", q.bounds.upper_ns as f64 / 1e9)
                };
                s.push_str(&format!(
                    "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{ranks}\t{:.3}\t{:.3}\t{upper_s}\t{:.3}\t{wait_ms}\t{}\t{}\n",
                    r.spec.workload,
                    r.spec.backend,
                    r.spec.storage.name(),
                    r.spec.wrap.name(),
                    r.spec.cache.name(),
                    r.spec.dist.name(),
                    r.spec.fault.name(),
                    r.spec.topology.name(),
                    q.observed_mean_ns as f64 / 1e9,
                    q.bounds.lower_ns as f64 / 1e9,
                    q.bounds.utilisation,
                    st,
                    if !q.bounds.applicable {
                        "n/a"
                    } else if q.within {
                        "yes"
                    } else {
                        "no"
                    }
                ));
            }
        }
        s
    }
}

/// Execute **one** scenario at the given rank points against a shared
/// profile cache — the single-cell entry point. [`ExperimentMatrix::run`]
/// is exactly this, fanned over the full expansion, and the serve layer
/// (`depchaos-serve`) calls it per store miss with whatever subset of rank
/// points is cold; because every rank point is simulated independently
/// (same per-point `LaunchConfig`, same seed derivation from the scenario
/// label), a subset run is bit-identical to the matching slice of a full
/// run — which is what makes per-(scenario, rank point) memoization sound.
pub fn run_scenario(
    s: &Scenario,
    base: &LaunchConfig,
    replicates: usize,
    rank_points: &[usize],
    cache: &ProfileCache,
) -> ScenarioResult {
    let cell = cache.get_or_profile(s.workload.as_ref(), &s.backend, s.storage);
    let spec = s.spec();
    let mut cfg = s.cache.apply(base.clone());
    cfg.service_dist = s.dist;
    cfg.fault = s.fault;
    cfg.topology = s.topology;
    // Each cell draws from its own decorrelated stream, derived
    // from (experiment seed, cell label) — deterministic across
    // runs and across rayon schedules.
    cfg.seed = scenario_seed(base.seed, &spec.label());
    match cell.outcome(s.wrap) {
        Ok(p) => {
            // One classification per (cell, wrap, calibration),
            // shared across cache policies, rank points, and
            // stochastic replicates.
            let stream = cache.classified(&cell.key, s.wrap, &p.log, &cfg);
            let rows = sweep_ranks_replicated(&stream, &cfg, rank_points, replicates);
            let queueing = rows
                .iter()
                .map(|&(r, _, st)| {
                    let b = mg1_bounds(&stream, &cfg.clone().with_ranks(r));
                    (r, validate_against_mg1(&b, &st))
                })
                .collect();
            ScenarioResult {
                spec,
                stat_openat: p.stat_openat,
                misses: p.misses,
                complete: p.complete,
                unresolved: p.unresolved,
                error: None,
                series: rows.iter().map(|&(r, l, _)| (r, l)).collect(),
                stats: rows.iter().map(|&(r, _, st)| (r, st)).collect(),
                queueing,
            }
        }
        Err(e) => ScenarioResult {
            spec,
            stat_openat: 0,
            misses: 0,
            complete: false,
            unresolved: 0,
            error: Some(e.clone()),
            series: Vec::new(),
            stats: Vec::new(),
            queueing: Vec::new(),
        },
    }
}

impl ExperimentMatrix {
    /// Run the matrix against a shared profile cache: profile each unique
    /// cell once, then gather every scenario's (rank point × replicate)
    /// grid into **one** columnar [`BatchPlan`] and simulate the whole
    /// matrix in a single batched pass — bit-identical to running
    /// [`run_scenario`] per scenario.
    pub fn run(&self, cache: &ProfileCache) -> SweepReport {
        let scenarios = self.expand();
        let rank_points = self.effective_rank_points();

        // Phase 1: realise every unique cell once. Deduplicate here rather
        // than leaning on the cache's race guard so each cell is profiled
        // by exactly one worker even under a parallel fill.
        let mut unique: Vec<&Scenario> = Vec::new();
        let mut seen: HashSet<CellKey> = HashSet::new();
        for s in &scenarios {
            if seen.insert(s.cell_key()) {
                unique.push(s);
            }
        }
        let cells_profiled = unique
            .par_iter()
            .map(|s| {
                let (_, computed_here) =
                    cache.get_or_profile_counted(s.workload.as_ref(), &s.backend, s.storage);
                usize::from(computed_here)
            })
            .sum();

        // Phase 2: per-scenario prep — profile lookup (warm after phase 1),
        // per-cell config and seed derivation, shared classification. The
        // Arcs are held here so the plan can borrow every stream at once.
        struct Prep {
            spec: ScenarioSpec,
            cfg: LaunchConfig,
            outcome: Result<(Arc<CellProfile>, Arc<ClassifiedStream>), String>,
        }
        let preps: Vec<Prep> = scenarios
            .iter()
            .map(|s| {
                let cell = cache.get_or_profile(s.workload.as_ref(), &s.backend, s.storage);
                let spec = s.spec();
                let mut cfg = s.cache.apply(self.base.clone());
                cfg.service_dist = s.dist;
                cfg.fault = s.fault;
                cfg.topology = s.topology;
                // Each cell draws from its own decorrelated stream, derived
                // from (experiment seed, cell label) — deterministic across
                // runs and across execution orders.
                cfg.seed = scenario_seed(self.base.seed, &spec.label());
                let outcome = match cell.outcome(s.wrap) {
                    Ok(p) => {
                        let stream = cache.classified(&cell.key, s.wrap, &p.log, &cfg);
                        Ok((Arc::clone(&cell), stream))
                    }
                    Err(e) => Err(e.clone()),
                };
                Prep { spec, cfg, outcome }
            })
            .collect();

        // Phase 3: simulate every pending (scenario, rank point,
        // replicate). Fixed-K gathers the whole grid into one plan — the
        // same row grid `sweep_ranks_replicated` would build per scenario.
        // Under adaptive control the grid is built round by round instead:
        // each round plans one replicate batch for every still-active cell
        // (kernel dedup across cells preserved), tests each cell's
        // stopping rule, and plans the next batch. Either way
        // `per_point[i][pi]` holds scenario i's replicate-ordered results
        // at rank point pi.
        let per_point: Vec<Vec<Vec<LaunchResult>>> = if let Some(ctl) = self.adaptive {
            let mut units: Vec<AdaptiveUnit<'_>> = Vec::new();
            for prep in &preps {
                if let Ok((_, stream)) = &prep.outcome {
                    for &ranks in &rank_points {
                        units
                            .push(AdaptiveUnit { stream, cfg: prep.cfg.clone().with_ranks(ranks) });
                    }
                }
            }
            let mut outs = run_adaptive_units(&units, ctl).into_iter();
            preps
                .iter()
                .map(|prep| match &prep.outcome {
                    Ok(_) => rank_points.iter().map(|_| outs.next().unwrap()).collect(),
                    Err(_) => Vec::new(),
                })
                .collect()
        } else {
            let mut plan = BatchPlan::new();
            let mut row_counts: Vec<usize> = Vec::with_capacity(preps.len());
            for prep in &preps {
                let Ok((_, stream)) = &prep.outcome else {
                    row_counts.push(0);
                    continue;
                };
                let id = plan.stream(stream);
                let k = if prep.cfg.service_dist.is_deterministic() && !prep.cfg.fault.takes_draws()
                {
                    1
                } else {
                    self.replicates.max(1)
                };
                for &ranks in &rank_points {
                    for r in 0..k {
                        let cfg = prep
                            .cfg
                            .clone()
                            .with_ranks(ranks)
                            .with_seed(replicate_seed(prep.cfg.seed, r));
                        plan.push(id, &cfg);
                    }
                }
                row_counts.push(rank_points.len() * k);
            }
            let rows = plan.execute();
            let mut cursor = 0usize;
            preps
                .iter()
                .zip(&row_counts)
                .map(|(_, &n)| {
                    let slice = &rows[cursor..cursor + n];
                    cursor += n;
                    if n == 0 {
                        return Vec::new();
                    }
                    let k = n / rank_points.len();
                    (0..rank_points.len()).map(|pi| slice[pi * k..(pi + 1) * k].to_vec()).collect()
                })
                .collect()
        };

        // Phase 4: summarise per scenario and rank point, replicating
        // `run_scenario`'s assembly.
        let mut results: Vec<ScenarioResult> = Vec::with_capacity(preps.len());
        for (prep, points) in preps.iter().zip(&per_point) {
            results.push(match &prep.outcome {
                Ok((cell, stream)) => {
                    let p = cell
                        .outcome(prep.spec.wrap)
                        .as_ref()
                        .expect("prep outcome mirrors the cell outcome");
                    let mut series = Vec::with_capacity(rank_points.len());
                    let mut stats = Vec::with_capacity(rank_points.len());
                    let mut queueing = Vec::with_capacity(rank_points.len());
                    for (reps, &ranks) in points.iter().zip(&rank_points) {
                        let mut samples: Vec<u64> =
                            reps.iter().map(|l| l.time_to_launch_ns).collect();
                        let st = LaunchStats::from_samples(&mut samples);
                        let b = mg1_bounds(stream, &prep.cfg.clone().with_ranks(ranks));
                        series.push((ranks, reps[0]));
                        queueing.push((ranks, validate_against_mg1(&b, &st)));
                        stats.push((ranks, st));
                    }
                    ScenarioResult {
                        spec: prep.spec.clone(),
                        stat_openat: p.stat_openat,
                        misses: p.misses,
                        complete: p.complete,
                        unresolved: p.unresolved,
                        error: None,
                        series,
                        stats,
                        queueing,
                    }
                }
                Err(e) => ScenarioResult {
                    spec: prep.spec.clone(),
                    stat_openat: 0,
                    misses: 0,
                    complete: false,
                    unresolved: 0,
                    error: Some(e.clone()),
                    series: Vec::new(),
                    stats: Vec::new(),
                    queueing: Vec::new(),
                },
            });
        }

        SweepReport { rank_points, results, cells_profiled, adaptive: self.adaptive }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LaunchConfig;
    use crate::matrix::CachePolicy;
    use depchaos_vfs::StorageModel;
    use depchaos_workloads::Pynamic;

    fn small_matrix() -> ExperimentMatrix {
        ExperimentMatrix::new()
            .workload(Pynamic::new(30))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states(WrapState::all())
            .cache_policies(CachePolicy::all())
            .rank_points([256usize, 512])
    }

    #[test]
    fn cells_profiled_once_across_wrap_and_cache_axes() {
        let cache = ProfileCache::new();
        let report = small_matrix().run(&cache);
        // 1 workload × 1 backend × 1 storage = 1 cell, 4 scenarios.
        assert_eq!(report.results.len(), 4);
        assert_eq!(report.cells_profiled, 1);
        assert_eq!(cache.computed(), 1);
        // Re-running the same matrix against the same cache re-profiles
        // nothing.
        let report2 = small_matrix().run(&cache);
        assert_eq!(report2.cells_profiled, 0);
        assert_eq!(cache.computed(), 1);
    }

    #[test]
    fn classification_shared_across_cache_policies_and_rank_points() {
        let cache = ProfileCache::new();
        small_matrix().run(&cache);
        // 1 cell × 2 wrap states × 1 calibration = 2 classifications, even
        // though 4 scenarios × 2 rank points replayed them.
        assert_eq!(cache.classified_computed(), 2);
        // Re-running reclassifies nothing.
        small_matrix().run(&cache);
        assert_eq!(cache.classified_computed(), 2);
        // A recalibrated base config is a different classification key.
        small_matrix()
            .base_config(LaunchConfig { rtt_ns: 400_000, ..LaunchConfig::default() })
            .run(&cache);
        assert_eq!(cache.classified_computed(), 4);
    }

    #[test]
    fn wrapped_beats_plain_in_the_report() {
        let cache = ProfileCache::new();
        let report = small_matrix()
            .base_config(LaunchConfig {
                base_overhead_ns: 0,
                per_rank_overhead_ns: 0,
                ..LaunchConfig::default()
            })
            .run(&cache);
        let plain = report
            .find(|s| s.wrap == WrapState::Plain && s.cache == CachePolicy::Cold)
            .pop()
            .unwrap();
        let wrapped = report
            .find(|s| s.wrap == WrapState::Wrapped && s.cache == CachePolicy::Cold)
            .pop()
            .unwrap();
        assert!(plain.complete && wrapped.complete);
        assert!(wrapped.stat_openat < plain.stat_openat / 5);
        for &ranks in &[256usize, 512] {
            assert!(wrapped.seconds_at(ranks).unwrap() < plain.seconds_at(ranks).unwrap());
        }
    }

    #[test]
    fn broadcast_cache_policy_reaches_the_des() {
        let cache = ProfileCache::new();
        let report = small_matrix()
            .base_config(LaunchConfig {
                base_overhead_ns: 0,
                per_rank_overhead_ns: 0,
                ..LaunchConfig::default()
            })
            .run(&cache);
        let cold = report
            .find(|s| s.wrap == WrapState::Plain && s.cache == CachePolicy::Cold)
            .pop()
            .unwrap();
        let bcast = report
            .find(|s| s.wrap == WrapState::Plain && s.cache == CachePolicy::Broadcast)
            .pop()
            .unwrap();
        assert!(bcast.seconds_at(512).unwrap() < cold.seconds_at(512).unwrap());
    }

    #[test]
    fn renderers_cover_every_slice() {
        let cache = ProfileCache::new();
        let report = small_matrix().run(&cache);
        let tables = report.render_fig6_tables();
        assert!(tables.contains("pynamic-30 × glibc (nfs, cold cache)"));
        assert!(tables.contains("pynamic-30 × glibc (nfs, broadcast cache)"));
        assert!(tables.contains("speedup"));
        let tsv = report.render_tsv();
        assert!(tsv.starts_with("workload\t"));
        // 4 scenarios × 2 rank points + header.
        assert_eq!(tsv.lines().count(), 9);
    }

    #[test]
    fn distribution_axis_multiplies_simulation_not_profiling() {
        let cache = ProfileCache::new();
        let report = ExperimentMatrix::new()
            .workload(Pynamic::new(30))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states(WrapState::all())
            .distributions(ServiceDistribution::all())
            .replicates(5)
            .rank_points([256usize, 512])
            .run(&cache);
        // 2 wrap states × 3 distributions, one profiled cell.
        assert_eq!(report.results.len(), 6);
        assert_eq!(report.cells_profiled, 1);
        // Classification keys on (cell, wrap, ClassifyParams-incl-dist):
        // replicates and rank points reuse them.
        assert_eq!(cache.classified_computed(), 6);

        for r in &report.results {
            let expect_k = if r.spec.dist.is_deterministic() { 1 } else { 5 };
            for (ranks, st) in &r.stats {
                assert_eq!(st.replicates, expect_k, "{} at {ranks}", r.spec.label());
                assert!(st.p50_ns <= st.p99_ns);
                // Replicate 0 is the series entry.
                assert!(r.result_at(*ranks).is_some());
            }
        }

        let dist_tables = report.render_fig6_dist_tables();
        assert!(dist_tables.contains("det(s)"));
        assert!(dist_tables.contains("jitter-250 p50/p99(s)"));
        assert!(dist_tables.contains("lognormal-500 p50/p99(s)"));
        let tsv = report.render_tsv();
        assert!(tsv.starts_with("workload\tbackend\tstorage\twrap\tcache\tdist\t"));
        // 6 scenarios × 2 rank points + header.
        assert_eq!(tsv.lines().count(), 13);
    }

    #[test]
    fn queueing_checks_ride_every_swept_cell() {
        let cache = ProfileCache::new();
        let report = ExperimentMatrix::new()
            .workload(Pynamic::new(30))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states(WrapState::all())
            .distributions(ServiceDistribution::all())
            .replicates(5)
            .rank_points([512usize, 2048])
            .run(&cache);
        for r in &report.results {
            assert_eq!(r.queueing.len(), 2, "{}: one check per rank point", r.spec.label());
            for (ranks, q) in &r.queueing {
                assert_eq!(q.observed_mean_ns, r.stats_at(*ranks).unwrap().mean_ns);
                assert!(q.within, "{} at {ranks}: {q:?}", r.spec.label());
            }
        }
        assert!(report.queueing_violations().is_empty());
        let tables = report.render_queueing_tables();
        assert!(tables.contains("mg1-wait(ms)"));
        assert!(tables.contains(" ok"));
        assert!(!tables.contains("VIOLATION"));
        let tsv = report.render_queueing_tsv();
        assert!(tsv.starts_with("workload\t"));
        // 6 scenarios × 2 rank points + header.
        assert_eq!(tsv.lines().count(), 13);
    }

    #[test]
    fn fault_axis_degrades_cells_without_touching_healthy_ones() {
        let faults = [
            FaultModel::None,
            FaultModel::ServerStall { at_ns: 0, duration_ns: 30_000_000_000 },
            FaultModel::RpcLoss {
                loss_milli: 100,
                timeout_ns: 1_000_000_000,
                backoff_base_ns: 250_000_000,
                max_retries: 5,
            },
            FaultModel::Stragglers { frac_milli: 200, slow_milli: 4000 },
        ];
        let base = LaunchConfig {
            base_overhead_ns: 0,
            per_rank_overhead_ns: 0,
            ..LaunchConfig::default()
        };
        let cache = ProfileCache::new();
        let degraded = ExperimentMatrix::new()
            .workload(Pynamic::new(30))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states([WrapState::Plain])
            .faults(faults)
            .base_config(base.clone())
            .rank_points([256usize, 512])
            .run(&cache);
        // 1 wrap × 4 fault models; faults change simulation, not profiling.
        assert_eq!(degraded.results.len(), 4);
        assert_eq!(cache.computed(), 1);

        // Healthy cells are byte-identical to a matrix with no fault axis —
        // the label (and so the cell seed) never saw the new axis.
        let healthy = ExperimentMatrix::new()
            .workload(Pynamic::new(30))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states([WrapState::Plain])
            .base_config(base)
            .rank_points([256usize, 512])
            .run(&cache);
        assert_eq!(degraded.get(&healthy.results[0].spec), Some(&healthy.results[0]));

        // Every fault slows the launch, and the accounting says why.
        let healthy_s = healthy.results[0].seconds_at(512).unwrap();
        for r in &degraded.results {
            if r.spec.fault.is_none() {
                continue;
            }
            assert!(
                r.seconds_at(512).unwrap() > healthy_s,
                "{}: fault should cost time",
                r.spec.label()
            );
            let l = r.result_at(512).unwrap();
            match r.spec.fault {
                FaultModel::RpcLoss { .. } => {
                    assert!(l.retries_issued > 0 && l.timeouts_hit > 0)
                }
                FaultModel::Stragglers { .. } => assert!(l.slowed_nodes > 0),
                _ => {}
            }
            // The surviving lower bound still holds for every faulted cell.
            for (ranks, q) in &r.queueing {
                assert!(q.within, "{} at {ranks}: {q:?}", r.spec.label());
                assert_eq!(q.bounds.upper_ns, u64::MAX);
            }
        }

        let tables = degraded.render_fault_tables();
        assert!(tables.contains("healthy"));
        assert!(tables.contains("stall-0-30000000000"));
        assert!(tables.contains("slowdown"));
        let tsv = degraded.render_tsv();
        assert!(tsv.starts_with("workload\tbackend\tstorage\twrap\tcache\tdist\tfault\t"));
        // 4 scenarios × 2 rank points + header.
        assert_eq!(tsv.lines().count(), 9);
        let qtsv = degraded.render_queueing_tsv();
        // Faulted rows leave the forfeited upper bound empty.
        assert!(qtsv.lines().skip(1).any(|l| l.split('\t').nth(11) == Some("")));
    }

    #[test]
    fn topology_axis_flattens_cells_without_touching_single_server_ones() {
        let base = LaunchConfig {
            base_overhead_ns: 0,
            per_rank_overhead_ns: 0,
            ..LaunchConfig::default()
        };
        let cache = ProfileCache::new();
        let topologies = [
            ServerTopology::single(),
            ServerTopology::hash(2),
            ServerTopology::hash(8),
            ServerTopology::least_loaded(4),
        ];
        let fleet = ExperimentMatrix::new()
            .workload(Pynamic::new(30))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states([WrapState::Plain])
            .topologies(topologies)
            .base_config(base.clone())
            .rank_points([256usize, 512])
            .run(&cache);
        // 1 wrap × 4 fleets; topology changes simulation, not profiling.
        assert_eq!(fleet.results.len(), 4);
        assert_eq!(cache.computed(), 1);

        // Single-server cells are byte-identical to a matrix with no
        // topology axis — the label (and so the cell seed) never saw it.
        let single = ExperimentMatrix::new()
            .workload(Pynamic::new(30))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states([WrapState::Plain])
            .base_config(base)
            .rank_points([256usize, 512])
            .run(&cache);
        assert_eq!(fleet.get(&single.results[0].spec), Some(&single.results[0]));

        // Every fleet is at least as fast as the paper's one server, and
        // each multi-server cell carries a passing M/G/k check.
        let single_s = single.results[0].seconds_at(512).unwrap();
        for r in &fleet.results {
            assert!(
                r.seconds_at(512).unwrap() <= single_s,
                "{}: more servers must not slow the launch",
                r.spec.label()
            );
            for (ranks, q) in &r.queueing {
                assert_eq!(q.bounds.servers, r.spec.topology.servers);
                assert!(q.within, "{} at {ranks}: {q:?}", r.spec.label());
            }
        }
        assert!(fleet.queueing_violations().is_empty());

        let tables = fleet.render_servers_tables();
        assert!(tables.contains("1-server"));
        assert!(tables.contains("servers-8-hash"));
        assert!(tables.contains("speedup"));
        assert!(tables.contains("flattens at"));
        let tsv = fleet.render_tsv();
        assert!(tsv.starts_with("workload\tbackend\tstorage\twrap\tcache\tdist\tfault\ttopology\t"));
        assert!(tsv.contains("\tservers-4-least\t"));
        // 4 scenarios × 2 rank points + header.
        assert_eq!(tsv.lines().count(), 9);
    }

    #[test]
    fn adaptive_matrix_with_disabled_target_is_the_fixed_matrix() {
        let cache = ProfileCache::new();
        let m = || {
            ExperimentMatrix::new()
                .workload(Pynamic::new(30))
                .backend(MatrixBackend::glibc())
                .storage(StorageModel::Nfs)
                .wrap_states(WrapState::all())
                .distributions(ServiceDistribution::all())
                .replicates(5)
                .rank_points([256usize, 512])
        };
        let fixed = m().run(&cache);
        let ctl = AdaptiveControl { target_rel_milli: 0, min_k: 1, max_k: 5, batch: 2 };
        let adaptive = m().adaptive(ctl).run(&cache);
        assert_eq!(adaptive.results, fixed.results, "disabled target ⇒ fixed-K run");
        assert_eq!(adaptive.adaptive, Some(ctl));
        assert_eq!(fixed.adaptive, None);
        // The stopping column tells the two reports apart.
        assert!(fixed.render_tsv().contains("\tfixed@5\n"));
        assert!(adaptive.render_tsv().contains("\tadaptive-0m@5\n"));
    }

    #[test]
    fn adaptive_matrix_stops_early_and_keeps_the_deterministic_clamp() {
        let cache = ProfileCache::new();
        let report = ExperimentMatrix::new()
            .workload(Pynamic::new(30))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states([WrapState::Plain])
            .distributions(ServiceDistribution::all())
            .replicates(25)
            .adaptive(AdaptiveControl { target_rel_milli: 500, min_k: 2, max_k: 25, batch: 2 })
            .rank_points([256usize, 512])
            .run(&cache);
        let mut stopped_early = 0usize;
        for r in &report.results {
            for (ranks, st) in &r.stats {
                if r.spec.dist.is_deterministic() {
                    assert_eq!(st.replicates, 1, "clamp survives adaptive control");
                } else {
                    assert!(st.replicates >= 2, "{} at {ranks}", r.spec.label());
                    if st.replicates < 25 {
                        stopped_early += 1;
                    }
                    // The half-width the rule certified: within 50% of the
                    // mean at stop (loose target, loose check).
                    assert!(st.p50_ns > 0);
                }
                // Replicate 0 is still the series entry.
                assert!(r.result_at(*ranks).is_some());
            }
        }
        assert!(stopped_early > 0, "a 50% target must stop some cells early");
        // Queueing envelopes (widened by the smaller K) still hold.
        assert!(report.queueing_violations().is_empty());
    }

    #[test]
    fn scenario_seeds_are_stable_and_per_cell() {
        let a = scenario_seed(1, "pynamic-30/glibc/nfs/plain/cold/lognormal-500");
        let b = scenario_seed(1, "pynamic-30/glibc/nfs/plain/cold/lognormal-500");
        let c = scenario_seed(1, "pynamic-30/glibc/nfs/wrapped/cold/lognormal-500");
        let d = scenario_seed(2, "pynamic-30/glibc/nfs/plain/cold/lognormal-500");
        assert_eq!(a, b, "pure function of (seed, label)");
        assert_ne!(a, c, "cells draw decorrelated streams");
        assert_ne!(a, d, "the experiment seed moves every cell");
    }

    #[test]
    fn a_backend_that_cannot_wrap_is_reported_not_fatal() {
        use depchaos_core::LoaderBackend;
        // The future loader ignores RUNPATH, so it can neither resolve nor
        // wrap the stock pynamic world — the report carries the error.
        let cache = ProfileCache::new();
        let report = ExperimentMatrix::new()
            .workload(Pynamic::new(10))
            .backend(MatrixBackend::Stock(LoaderBackend::future()))
            .run(&cache);
        let wrapped = report.find(|s| s.wrap == WrapState::Wrapped).pop().unwrap();
        assert!(wrapped.error.as_deref().unwrap_or_default().contains("wrap failed"));
        let plain = report.find(|s| s.wrap == WrapState::Plain).pop().unwrap();
        assert!(!plain.complete, "future cannot see RUNPATH dirs");
        let tables = report.render_fig6_tables();
        assert!(tables.contains("wrap failed") || tables.contains("no series"));
    }
}

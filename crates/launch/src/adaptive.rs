//! Adaptive replicate control: a sequential stopping rule for stochastic
//! sweeps, bit-reproducibly.
//!
//! Fixed-K replication (the [`crate::sweep::sweep_ranks_replicated`]
//! default) spends the same simulation budget on every stochastic cell no
//! matter how concentrated its launch-time distribution is. The SGMM-style
//! alternative implemented here drives the sample count by the estimator
//! itself: run replicates in seeded batches, maintain the running mean and
//! variance online ([`Welford`]), and stop a cell as soon as the t-based
//! 95% confidence half-width of the mean launch time falls under a
//! relative target ([`AdaptiveControl::target_rel_milli`]) — or at
//! [`AdaptiveControl::max_k`], whichever comes first.
//!
//! # Why adaptive K preserves bit-identity
//!
//! [`crate::sweep::replicate_seed`]`(base, r)` is a pure function of
//! `(base, r)`: replicate `r`'s draws do not depend on how many replicates
//! ran before it or after it. An adaptive run that stops at `K'` therefore
//! produces **exactly the first `K'` entries** of the fixed-K sample
//! vector — the batch-prefix property — and an adaptive run whose
//! precision rule never fires (`target_rel_milli == 0`) is byte-identical
//! to the fixed-`max_k` sweep. Both facts are proptest-pinned (see
//! `tests/adaptive_control.rs`; the full reproducibility contract lives in
//! `docs/determinism.md`).
//!
//! The stopping decision for a cell is likewise a pure function of that
//! cell's own sample prefix ([`stop_k`]), so running cells one at a time,
//! batched per sweep, or batched across a whole matrix
//! ([`run_adaptive_units`]) lands on the same K — which is what lets the
//! per-scenario path, [`crate::matrix::ExperimentMatrix`]`::run`, and the
//! serve layer's incremental executor stay bit-identical to each other.
//!
//! Deterministic cells under a draw-free fault model keep their existing
//! clamp-to-1: the rule never engages where there is no variance to chase.
//!
//! # Common random numbers
//!
//! Cells simulated under the **same base seed** share their
//! [`SplitMix`](depchaos_workloads::SplitMix) NODE-domain service-factor
//! streams by construction, so per-replicate *differences* between two
//! such cells (plain vs wrapped, healthy vs faulted) have most of the
//! common noise cancel. [`PairedDiff`] is the matching estimator: a
//! t-interval over the per-replicate deltas, typically far tighter than
//! the unpaired interval over the same samples.
//! [`crate::sweep::sweep_paired`] runs both arms under shared replicate
//! seeds and [`crate::sweep::render_fig6_paired`] renders the
//! CRN-tightened wrapped-vs-plain table.

use serde::{Deserialize, Serialize};

use crate::batch::BatchPlan;
use crate::config::{LaunchConfig, LaunchResult};
use crate::des::ClassifiedStream;
use crate::sweep::replicate_seed;

/// The sequential stopping rule's parameters. Integer milli units keep the
/// struct `Eq + Hash`, so it can participate in scenario keys and cache
/// lookups exactly like
/// [`ServiceDistribution`](crate::config::ServiceDistribution) does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AdaptiveControl {
    /// Relative precision target in milli units: stop when the 95%
    /// half-width of the mean is at most `target_rel_milli / 1000` of the
    /// running mean. **Zero disables the precision rule** — the cell runs
    /// to `max_k`, which makes an adaptive sweep with `max_k = K` exactly
    /// the fixed-K sweep (the equivalence the proptests pin).
    pub target_rel_milli: u32,
    /// Never stop before this many replicates (clamped to ≥ 1).
    pub min_k: usize,
    /// Hard replicate budget per cell (clamped to ≥ `min_k`).
    pub max_k: usize,
    /// Replicates simulated per planning round (clamped to ≥ 1). The rule
    /// is tested at round boundaries only, so `batch` trades planner
    /// round-trips against overshoot past the earliest possible stop.
    pub batch: usize,
}

impl AdaptiveControl {
    /// A sensible default: stop at a 5% relative half-width, test from 4
    /// replicates in rounds of 4, never exceed the fixed-K default
    /// ([`crate::matrix::DEFAULT_REPLICATES`]).
    pub fn default_for(max_k: usize) -> AdaptiveControl {
        AdaptiveControl { target_rel_milli: 50, min_k: 4, max_k, batch: 4 }.normalized()
    }

    /// The same rule with every bound made self-consistent; all consumers
    /// normalize on entry so `{min_k: 0, max_k: 0, batch: 0}` cannot hang
    /// a round loop.
    pub fn normalized(self) -> AdaptiveControl {
        let min_k = self.min_k.max(1);
        AdaptiveControl {
            target_rel_milli: self.target_rel_milli,
            min_k,
            max_k: self.max_k.max(min_k),
            batch: self.batch.max(1),
        }
    }

    /// Has this accumulator reached the precision target? False whenever
    /// the rule is disabled (`target_rel_milli == 0`) or the sample cannot
    /// yet bound its own variance (fewer than two replicates).
    pub fn precision_met(&self, w: &Welford) -> bool {
        if self.target_rel_milli == 0 {
            return false;
        }
        let hw = w.half_width_95();
        hw.is_finite() && hw <= w.mean() * (self.target_rel_milli as f64 / 1000.0)
    }
}

/// Welford's online mean/variance accumulator — numerically stable single
/// pass, no sample retention. Feeding launch times in replicate order
/// makes the accumulator state (and so the stopping decision) a pure
/// function of the sample prefix.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    pub fn new() -> Welford {
        Welford::default()
    }

    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; infinite below two samples — a
    /// single-replicate cell carries no variance information, so any
    /// precision rule must keep sampling rather than divide by zero.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::INFINITY
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Two-sided 95% confidence half-width of the mean:
    /// `t_{n-1, 0.975} · s / √n`. Infinite below two samples.
    pub fn half_width_95(&self) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        t_critical_95(self.n - 1) * (self.variance() / self.n as f64).sqrt()
    }
}

/// Two-sided 95% Student-t critical values, `t_{df, 0.975}`. Exact table
/// through 30 degrees of freedom, then the standard coarse brackets down
/// to the normal limit — replicate budgets here are small, so the table
/// region is the one that matters.
pub fn t_critical_95(df: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        31..=60 => 2.021,
        61..=120 => 2.000,
        _ => 1.960,
    }
}

/// The K the stopping rule lands on for a given replicate-ordered sample —
/// the reference the round loops must agree with. Pure data in, pure data
/// out: replays the round structure (batches of `ctl.batch`, rule tested
/// at round boundaries once `min_k` is reached) over a sample prefix and
/// returns how many replicates an adaptive run consumes. `samples` must
/// hold at least `ctl.max_k` entries.
pub fn stop_k(ctl: AdaptiveControl, samples: &[u64]) -> usize {
    let ctl = ctl.normalized();
    assert!(samples.len() >= ctl.max_k, "stop_k needs the full max_k sample vector");
    let mut w = Welford::new();
    let mut k = 0usize;
    while k < ctl.max_k {
        let step = ctl.batch.min(ctl.max_k - k);
        for &s in &samples[k..k + step] {
            w.push(s as f64);
        }
        k += step;
        if k >= ctl.min_k && ctl.precision_met(&w) {
            break;
        }
    }
    k
}

/// One adaptive work unit: a classified stream plus its fully derived
/// launch configuration (per-cell seed and rank count already applied; the
/// driver only swaps in per-replicate seeds).
pub struct AdaptiveUnit<'a> {
    pub stream: &'a ClassifiedStream,
    pub cfg: LaunchConfig,
}

impl AdaptiveUnit<'_> {
    /// Does this unit draw at all? Deterministic service under a draw-free
    /// fault model keeps the existing clamp-to-1 — the rule never engages.
    fn takes_draws(&self) -> bool {
        !self.cfg.service_dist.is_deterministic() || self.cfg.fault.takes_draws()
    }
}

/// Drive the stopping rule over any number of units at once: per round,
/// every still-active unit contributes its next batch of replicate rows to
/// **one** [`BatchPlan`] (kernel dedup across units preserved), the plan
/// executes, and each unit's rule is tested on its own accumulated sample.
/// Returns, per unit, the replicate-ordered [`LaunchResult`]s it consumed
/// — exactly the first `K'` entries of the fixed-`max_k` vector, by the
/// batch-prefix property of [`replicate_seed`].
///
/// Because the stopping decision is per-unit pure ([`stop_k`]), the
/// returned samples do not depend on which other units share the call:
/// one-cell-at-a-time, one sweep, or a whole matrix agree byte for byte.
pub fn run_adaptive_units(
    units: &[AdaptiveUnit<'_>],
    ctl: AdaptiveControl,
) -> Vec<Vec<LaunchResult>> {
    let ctl = ctl.normalized();
    let mut out: Vec<Vec<LaunchResult>> = units.iter().map(|_| Vec::new()).collect();
    let mut acc: Vec<Welford> = units.iter().map(|_| Welford::new()).collect();
    let mut active: Vec<bool> = units.iter().map(|_| true).collect();
    loop {
        let mut plan = BatchPlan::new();
        let mut pushed: Vec<(usize, usize)> = Vec::new();
        for (i, u) in units.iter().enumerate() {
            if !active[i] {
                continue;
            }
            let id = plan.stream(u.stream);
            let done = out[i].len();
            let step = if u.takes_draws() { ctl.batch.min(ctl.max_k - done) } else { 1 };
            for r in done..done + step {
                plan.push(id, &u.cfg.clone().with_seed(replicate_seed(u.cfg.seed, r)));
            }
            pushed.push((i, step));
        }
        if pushed.is_empty() {
            return out;
        }
        let rows = plan.execute();
        let mut cursor = 0usize;
        for &(i, n) in &pushed {
            for l in &rows[cursor..cursor + n] {
                acc[i].push(l.time_to_launch_ns as f64);
                out[i].push(*l);
            }
            cursor += n;
            let k = out[i].len();
            active[i] = units[i].takes_draws()
                && k < ctl.max_k
                && !(k >= ctl.min_k && ctl.precision_met(&acc[i]));
        }
    }
}

/// The paired-difference (common-random-numbers) estimator over two arms
/// simulated under **shared replicate seeds**: a t-interval on the mean of
/// the per-replicate deltas `baseline_r − variant_r`. When the arms share
/// their NODE-domain draw streams the common noise cancels in each delta,
/// so the paired half-width is typically far below the unpaired one — the
/// cell-vs-cell *difference* (the quantity Fig 6 plots) converges long
/// before either cell does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairedDiff {
    /// Replicates in each arm.
    pub pairs: usize,
    pub mean_baseline_ns: f64,
    pub mean_variant_ns: f64,
    /// Mean of `baseline − variant` per replicate (positive = variant
    /// faster).
    pub mean_delta_ns: f64,
    /// 95% t half-width of the paired mean delta.
    pub half_width_ns: f64,
    /// 95% half-width the *unpaired* two-sample estimator would report on
    /// the same data — the baseline the CRN tightening is measured
    /// against.
    pub unpaired_half_width_ns: f64,
}

impl PairedDiff {
    /// Build from two equal-length, replicate-ordered sample vectors. The
    /// seeds must have been shared per replicate for the pairing to mean
    /// anything; the arithmetic itself only needs equal lengths.
    pub fn from_samples(baseline: &[u64], variant: &[u64]) -> PairedDiff {
        assert_eq!(baseline.len(), variant.len(), "paired arms need equal replicate counts");
        assert!(!baseline.is_empty(), "paired estimator needs at least one replicate");
        let n = baseline.len();
        let mut delta = Welford::new();
        let mut b = Welford::new();
        let mut v = Welford::new();
        for (&p, &w) in baseline.iter().zip(variant) {
            delta.push(p as f64 - w as f64);
            b.push(p as f64);
            v.push(w as f64);
        }
        let unpaired = if n < 2 {
            f64::INFINITY
        } else {
            t_critical_95(n as u64 - 1) * ((b.variance() + v.variance()) / n as f64).sqrt()
        };
        PairedDiff {
            pairs: n,
            mean_baseline_ns: b.mean(),
            mean_variant_ns: v.mean(),
            mean_delta_ns: delta.mean(),
            half_width_ns: delta.half_width_95(),
            unpaired_half_width_ns: unpaired,
        }
    }

    /// Baseline-over-variant speedup of the means; `None` when the variant
    /// mean is zero or the ratio is otherwise meaningless.
    pub fn speedup(&self) -> Option<f64> {
        let r = self.mean_baseline_ns / self.mean_variant_ns;
        r.is_finite().then_some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceDistribution;
    use crate::sweep::sweep_ranks_replicated;
    use depchaos_vfs::{Op, Outcome, StraceLog, Syscall};

    fn cold_stream(n: usize) -> StraceLog {
        let mut log = StraceLog::new();
        for i in 0..n {
            log.push(Syscall::new(Op::Openat, &format!("/l/{i}"), Outcome::Ok, 200_000));
        }
        log
    }

    #[test]
    fn welford_matches_two_pass_mean_and_variance() {
        let xs = [3.0f64, 7.0, 1.0, 9.0, 4.0, 4.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() as f64 - 1.0);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        assert_eq!(w.count(), xs.len() as u64);
    }

    #[test]
    fn single_sample_has_no_variance_and_never_satisfies_the_rule() {
        // K = 1: variance and half-width are infinite, so even a huge
        // relative target cannot stop the rule on one replicate.
        let mut w = Welford::new();
        w.push(1e9);
        assert!(w.variance().is_infinite());
        assert!(w.half_width_95().is_infinite());
        let ctl = AdaptiveControl { target_rel_milli: 900, min_k: 1, max_k: 8, batch: 1 };
        assert!(!ctl.precision_met(&w));
    }

    #[test]
    fn identical_samples_stop_at_min_k() {
        // Zero variance ⇒ zero half-width ⇒ the rule fires at the first
        // boundary where min_k is satisfied.
        let ctl = AdaptiveControl { target_rel_milli: 1, min_k: 3, max_k: 20, batch: 1 };
        assert_eq!(stop_k(ctl, &[500; 20]), 3);
        // Batched rounds overshoot to the round boundary, never past it.
        let batched = AdaptiveControl { batch: 4, ..ctl };
        assert_eq!(stop_k(batched, &[500; 20]), 4);
    }

    #[test]
    fn disabled_target_runs_to_max_k() {
        let ctl = AdaptiveControl { target_rel_milli: 0, min_k: 1, max_k: 13, batch: 5 };
        assert_eq!(stop_k(ctl, &[7; 13]), 13, "zero target means fixed-K");
    }

    #[test]
    fn high_variance_samples_exhaust_the_budget() {
        let noisy: Vec<u64> = (0..16).map(|i| if i % 2 == 0 { 1 } else { 1_000_000 }).collect();
        let ctl = AdaptiveControl { target_rel_milli: 10, min_k: 2, max_k: 16, batch: 2 };
        assert_eq!(stop_k(ctl, &noisy), 16);
    }

    #[test]
    fn degenerate_control_is_normalized_not_hung() {
        let ctl = AdaptiveControl { target_rel_milli: 0, min_k: 0, max_k: 0, batch: 0 };
        assert_eq!(stop_k(ctl, &[1, 2, 3]), 1, "all-zero bounds clamp to one replicate");
    }

    #[test]
    fn t_table_brackets_are_monotone_toward_the_normal_limit() {
        assert!(t_critical_95(0).is_infinite());
        for df in 1..200u64 {
            assert!(t_critical_95(df + 1) <= t_critical_95(df), "df {df}");
        }
        assert!((t_critical_95(10_000) - 1.96).abs() < 1e-9);
        assert!((t_critical_95(3) - 3.182).abs() < 1e-9);
    }

    #[test]
    fn adaptive_units_produce_a_prefix_of_the_fixed_sweep() {
        let cfg = LaunchConfig {
            service_dist: ServiceDistribution::log_normal(0.5),
            seed: 42,
            ..LaunchConfig::default()
        };
        let stream = ClassifiedStream::classify(&cold_stream(120), &cfg);
        let max_k = 12;
        let fixed = sweep_ranks_replicated(&stream, &cfg, &[1024], max_k);
        assert_eq!(fixed[0].2.replicates, max_k);

        // A loose target stops early; the consumed sample must be a prefix
        // of the fixed-K run, and its length must match the pure stop_k
        // replay of the full vector.
        let ctl = AdaptiveControl { target_rel_milli: 500, min_k: 2, max_k, batch: 2 };
        let units = [AdaptiveUnit { stream: &stream, cfg: cfg.clone().with_ranks(1024) }];
        let got = &run_adaptive_units(&units, ctl)[0];
        assert!(got.len() < max_k, "a 50% target must stop early on a concentrated sample");

        let mut replay = BatchPlan::new();
        let id = replay.stream(&stream);
        for r in 0..max_k {
            replay.push(id, &cfg.clone().with_ranks(1024).with_seed(replicate_seed(cfg.seed, r)));
        }
        let full = replay.execute();
        assert_eq!(got.as_slice(), &full[..got.len()], "batch-prefix property");
        let samples: Vec<u64> = full.iter().map(|l| l.time_to_launch_ns).collect();
        assert_eq!(got.len(), stop_k(ctl, &samples));
    }

    #[test]
    fn deterministic_units_clamp_to_one_replicate() {
        let cfg = LaunchConfig::default();
        let stream = ClassifiedStream::classify(&cold_stream(40), &cfg);
        let ctl = AdaptiveControl { target_rel_milli: 50, min_k: 4, max_k: 11, batch: 4 };
        let units = [AdaptiveUnit { stream: &stream, cfg: cfg.clone().with_ranks(512) }];
        let out = run_adaptive_units(&units, ctl);
        assert_eq!(out[0].len(), 1, "no draws, nothing to replicate");
    }

    #[test]
    fn paired_estimator_tightens_correlated_arms() {
        // Strongly correlated arms with a constant offset: the deltas are
        // nearly constant, so the paired half-width collapses while the
        // unpaired one stays wide.
        let noise = [100u64, 900, 350, 720, 510, 260, 840, 430];
        let baseline: Vec<u64> = noise.iter().map(|n| 10_000 + n).collect();
        let variant: Vec<u64> = noise.iter().map(|n| 7_000 + n).collect();
        let d = PairedDiff::from_samples(&baseline, &variant);
        assert_eq!(d.pairs, 8);
        assert!((d.mean_delta_ns - 3_000.0).abs() < 1e-9);
        assert!(d.half_width_ns < 1e-6, "constant deltas have zero variance");
        assert!(d.unpaired_half_width_ns > 100.0, "the arms themselves are noisy");
        let s = d.speedup().unwrap();
        assert!(s > 1.0 && s < 2.0);
    }
}

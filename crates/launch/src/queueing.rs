//! M/G/k queueing-theory cross-checks for the stochastic DES.
//!
//! The DES is trusted because it is bit-identical to a slow reference
//! implementation — but both could share a modelling bug. This module
//! derives what queueing theory says the simulated launch *must* look like,
//! straight from the [`ClassifiedStream`] and the
//! [`ServiceDistribution`]'s closed-form moments, and
//! [`validate_against_mg1`] flags any sweep cell whose replicate mean
//! escapes the envelope. Three layers, from descriptive to binding:
//!
//! * **Moments** ([`ServiceMoments`]): the server's per-op service time is
//!   a classified base time scaled by a mean-one factor `F`, so `E[S] =
//!   mean(sₖ)` and `E[S²] = mean(sₖ²)·E[F²]`, with `E[F²]` closed-form per
//!   distribution — `1` (deterministic), `1 + spread²/3` (uniform jitter on
//!   `[1−spread, 1+spread]`), `exp(σ²)` (mean-one log-normal).
//! * **M/G/k descriptors**: treating each cold node's replay as the arrival
//!   process (one op per `free-replay/K` nanoseconds, `N` nodes) offered to
//!   the `S`-server fleet of [`ServerTopology`](crate::ServerTopology),
//!   the utilisation is
//!   `ρ = λ·E[S]/S = N·ΣS / (S · free-replay)` and the mean wait is
//!   Pollaczek–Khinchine `W = λ·E[S²] / 2(1−ρ)` for `S = 1`, and the
//!   Lee–Longton M/G/k approximation `W ≈ (1 + c²)/2 · W_{M/M/k}` for
//!   `S > 1` — the M/M/k wait built from the [`erlang_c`] delay
//!   probability, scaled by the service-time variability `c² =
//!   E[S²]/E[S]² − 1` (for `k = 1` the two expressions coincide exactly,
//!   so the single-server descriptor is unchanged). Both are infinite once
//!   the offered load saturates the fleet (`ρ ≥ 1`), which is exactly the
//!   contended regime the paper's Fig 6 lives in.
//! * **Bounds** ([`Mg1Bounds::lower_ns`] / [`Mg1Bounds::upper_ns`]): hard
//!   envelope on the *mean* launch time, rigorous for the DES's work
//!   conserving FIFO servers rather than asymptotic:
//!   - lower: the slower of a node's own unimpeded replay and the fleet's
//!     capacity (plus the last response's return path) — no schedule can
//!     beat either. Under [`AssignPolicy::HashByNode`] the lanes are
//!     independent single-server systems, so the floor is the busiest
//!     lane's serial work `⌈N/S⌉·K` ops; under
//!     [`AssignPolicy::LeastLoaded`] the fleet pools, so the floor is the
//!     work-conservation bound `N·K/S` ops (all `N·K` services must fit
//!     into `S` lanes between the first arrival and the last completion);
//!   - upper: a node's own replay plus the other nodes' server work that
//!     can stand in front of it — in a work-conserving FIFO lane each
//!     foreign op delays a node at most once, and under `HashByNode` only
//!     the node's own lane (`⌈N/S⌉ − 1` foreign replays) can hold its
//!     requests. A `LeastLoaded` fleet with `S > 1` routes each request by
//!     global state, so no per-lane accounting applies and the upper bound
//!     is forfeited (`u64::MAX`), exactly as under a fault model.
//!
//!   Under a stochastic distribution the drawn service `clamp(⌊sₖ·F⌋)`
//!   rounds toward zero and clamps to at least 1 ns, so the bounds carry a
//!   ±1 ns-per-draw allowance, and [`validate_against_mg1`] adds a
//!   `6σ/√draws` relative slack for the sampling noise of a finite
//!   replicate set. A distribution whose tail reaches the service clamp
//!   (log-normal `σ > 2`) truncates its own mean unboundedly; such cells
//!   are marked inapplicable instead of mis-flagged.
//!
//! # Fault injection
//!
//! Under a [`FaultModel`] the envelope degrades
//! asymmetrically. The *capacity lower bound stays rigorous* — stalls and
//! backoffs only add wait, retries only add server work, and a straggler
//! slowdown (`slow ≥ 1×`) only lengthens services, so no faulted schedule
//! can beat the healthy serial-capacity floor. The *upper bound is
//! forfeited* (`upper_ns = u64::MAX`): stall windows and retry backoff
//! waits are not work the work-conservation argument covers. The offered
//! load descriptors are retry-aware — `RpcLoss` multiplies the
//! utilisation and P-K arrival rate by `1/(1 − loss)`, every attempt
//! being independent server work. A straggler model with `slow < 1×`
//! (nodes sped *up*) would undercut the healthy floor, so such cells are
//! marked inapplicable.

use serde::{Deserialize, Serialize};

use crate::config::{AssignPolicy, LaunchConfig, ServiceDistribution};
use crate::des::{ClassifiedStream, ClassifyParams};
use crate::fault::FaultModel;
use crate::sweep::LaunchStats;

/// `E[F²]` of the mean-one service factor, closed-form per distribution.
pub fn factor_second_moment(dist: ServiceDistribution) -> f64 {
    match dist {
        ServiceDistribution::Deterministic => 1.0,
        ServiceDistribution::UniformJitter { spread_milli } => {
            let s = spread_milli as f64 / 1000.0;
            1.0 + s * s / 3.0
        }
        ServiceDistribution::LogNormal { sigma_milli } => {
            let sigma = sigma_milli as f64 / 1000.0;
            (sigma * sigma).exp()
        }
    }
}

/// Erlang-C: the probability that an arriving request must wait in an
/// M/M/k system with `servers` servers at offered load `a = λ·E[S]`
/// erlangs (requires `a < servers`; `servers ≥ 1`).
///
/// `C(k, a) = (aᵏ/k!) / ((1 − a/k)·Σₙ₌₀^{k−1} aⁿ/n! + aᵏ/k!)`, computed
/// with the usual running-term recurrence. For `k = 1` this is exactly
/// `a` (= ρ), which is what makes the Lee–Longton M/G/k wait collapse to
/// Pollaczek–Khinchine at a single server.
pub fn erlang_c(servers: usize, offered_load: f64) -> f64 {
    debug_assert!(servers >= 1);
    debug_assert!(offered_load < servers as f64);
    let mut term = 1.0; // aⁿ/n!, starting at n = 0
    let mut below = 0.0; // Σₙ₌₀^{k−1} aⁿ/n!
    for n in 0..servers {
        below += term;
        term *= offered_load / (n as f64 + 1.0);
    }
    // term is now aᵏ/k!.
    let rho = offered_load / servers as f64;
    let waiting = term / (1.0 - rho);
    waiting / (below + waiting)
}

/// First and second moments of one server op's service time under a
/// distribution, averaged over the stream's segment schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceMoments {
    pub mean_ns: f64,
    pub second_moment_ns2: f64,
}

impl ServiceMoments {
    /// Moments over `stream`'s server ops; `None` when the stream never
    /// touches the server.
    pub fn of(stream: &ClassifiedStream, dist: ServiceDistribution) -> Option<ServiceMoments> {
        let segs = stream.server_segments();
        if segs.is_empty() {
            return None;
        }
        let k = segs.len() as f64;
        let sum: u128 = segs.iter().map(|s| s.service_ns as u128).sum();
        let sum_sq: u128 = segs.iter().map(|s| (s.service_ns as u128).pow(2)).sum();
        Some(ServiceMoments {
            mean_ns: sum as f64 / k,
            second_moment_ns2: sum_sq as f64 / k * factor_second_moment(dist),
        })
    }
}

/// The queueing-theory envelope for one (stream, config) cell at one rank
/// point: M/G/k descriptors plus hard mean-launch bounds. (The name keeps
/// the historical `Mg1` prefix from when the model was single-server; the
/// `servers` field says which fleet the bounds were computed for.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mg1Bounds {
    pub ranks: usize,
    pub cold_nodes: usize,
    /// Server round trips per cold replay (the stream's `K`).
    pub server_ops_per_node: u64,
    /// The metadata-fleet size `S` from [`crate::ServerTopology`] the
    /// envelope was derived for (1 = the paper's single server).
    pub servers: usize,
    /// Offered utilisation `ρ = λ·E[S]/S = N·ΣS / (S · free-replay)`,
    /// multiplied by the retry amplification `1/(1 − loss)` under
    /// [`FaultModel::RpcLoss`]; values ≥ 1 mean the cold fleet saturates
    /// the fleet (the contended regime).
    pub utilisation: f64,
    /// Mean wait per op at the offered load — Pollaczek–Khinchine for
    /// `S = 1`, the Lee–Longton M/G/k approximation (Erlang-C delay
    /// probability scaled by the service variability) for `S > 1`;
    /// `f64::INFINITY` once saturated.
    pub mean_wait_ns: f64,
    /// Hard lower bound on the mean launch time — still rigorous under
    /// every fault model (faults add wait and work, never remove any) and
    /// every topology (busiest hash lane, or the fleet-wide
    /// work-conservation floor under least-loaded routing).
    pub lower_ns: u64,
    /// Hard upper bound on the mean launch time; `u64::MAX` under a
    /// non-`None` fault model (stall and backoff waits escape the
    /// work-conservation argument) or a multi-server
    /// [`AssignPolicy::LeastLoaded`] fleet (globally routed requests
    /// escape the per-lane accounting).
    pub upper_ns: u64,
    /// Squared coefficient of variation of the service factor
    /// (`E[F²] − 1`).
    pub factor_cv2: f64,
    /// Standard deviation of one replicate's **total drawn server work**,
    /// `√(cv² · N · Σsₖ²)` — the sampling-slack scale for validation. The
    /// per-segment second moment matters: a stream dominated by a few large
    /// read services fluctuates like its big ops, not like `√(N·K)`
    /// interchangeable draws.
    pub work_sd_ns: f64,
    /// Whether the bounds are trustworthy for this distribution: a
    /// log-normal with `σ > 2` reaches the DES's service clamp and
    /// truncates its own mean, so the envelope would mis-flag it.
    pub applicable: bool,
}

/// Compute the envelope for `stream` under `cfg` (whose rank count selects
/// the point). Panics, like [`crate::simulate_classified`], when `cfg`'s
/// calibration differs from the one the stream was classified under.
pub fn mg1_bounds(stream: &ClassifiedStream, cfg: &LaunchConfig) -> Mg1Bounds {
    assert_eq!(
        stream.params(),
        ClassifyParams::of(cfg),
        "ClassifiedStream reused under a different latency calibration; reclassify"
    );
    let nodes = cfg.nodes();
    let cold = if cfg.broadcast_cache { 1u64 } else { nodes as u64 };
    let warm_done = if (nodes as u64) > cold { stream.warm_replay_ns() as u128 } else { 0 };
    let overhead = cfg.base_overhead_ns as u128
        + cfg.per_rank_overhead_ns as u128 * cfg.ranks_per_node.min(cfg.ranks) as u128;
    let dist = cfg.service_dist;
    let applicable = match dist {
        ServiceDistribution::LogNormal { sigma_milli } => sigma_milli <= 2000,
        _ => true,
    } && match cfg.fault {
        // A straggler *speed-up* would undercut the healthy capacity
        // floor; genuine slowdowns keep every bound argument intact.
        FaultModel::Stragglers { slow_milli, .. } => slow_milli >= 1000,
        _ => true,
    };
    let cv2 = factor_second_moment(dist) - 1.0;
    let amp = cfg.fault.load_amplification();
    let servers = cfg.topology.servers.max(1);

    let segs = stream.server_segments();
    let k = segs.len() as u64;
    if k == 0 {
        // No server traffic: the launch is exact whatever the distribution.
        let exact = overhead + (stream.local_total_ns() as u128).max(warm_done);
        let exact = exact.min(u64::MAX as u128) as u64;
        return Mg1Bounds {
            ranks: cfg.ranks,
            cold_nodes: cold as usize,
            server_ops_per_node: 0,
            servers,
            utilisation: 0.0,
            mean_wait_ns: 0.0,
            lower_ns: exact,
            upper_ns: exact,
            factor_cv2: cv2,
            work_sd_ns: 0.0,
            applicable,
        };
    }

    let half_rtt = cfg.rtt_ns as u128 / 2;
    let service_total: u128 = segs.iter().map(|s| s.service_ns as u128).sum();
    // One unimpeded cold replay: every pre-local, both half-RTTs, the
    // service itself, and the client-side payload time, plus the tail.
    let free: u128 = segs
        .iter()
        .map(|s| {
            s.pre_local_ns as u128 + 2 * half_rtt + s.service_ns as u128 + s.client_extra_ns as u128
        })
        .sum::<u128>()
        + stream.tail_local() as u128;
    let first_arrival = segs[0].pre_local_ns as u128 + half_rtt;
    let return_path =
        half_rtt + segs[k as usize - 1].client_extra_ns as u128 + stream.tail_local() as u128;

    // ±1 ns per draw: the DES floors each drawn service toward zero (lower
    // allowance) and clamps it up to at least 1 ns (upper allowance). No
    // draws occur under the deterministic model.
    let draw_slack = |per: u128| if dist.is_deterministic() { 0 } else { per };
    // Capacity floor per routing policy. Hash-routed lanes are independent
    // single-server systems (node `i` only ever talks to lane `i mod S`),
    // so the busiest lane — ⌈N/S⌉ cold replays — must serve all its work
    // serially. A least-loaded fleet pools: all N·K services still have to
    // fit into S lanes between the first arrival and the last completion,
    // so the floor is the total work divided by S (rounded down — safe for
    // a lower bound).
    let lane_cold = (cold as u128).div_ceil(servers as u128);
    let capacity_work = match cfg.topology.assign {
        AssignPolicy::HashByNode => lane_cold * service_total,
        AssignPolicy::LeastLoaded => cold as u128 * service_total / servers as u128,
    };
    let lower_free = free.saturating_sub(draw_slack(k as u128));
    let lower_capacity = (first_arrival + capacity_work + return_path)
        .saturating_sub(draw_slack(cold as u128 * k as u128));
    let lower_cold = lower_free.max(lower_capacity);
    // Per-lane work conservation: under hash routing only the ⌈N/S⌉ − 1
    // other replays sharing the node's lane can ever stand in front of it
    // (for S = 1 that is all N − 1, the classic single-server bound). A
    // multi-server least-loaded fleet routes by global state, so no
    // per-lane accounting holds and the upper bound is forfeited below.
    let upper_forfeit = servers > 1 && cfg.topology.assign == AssignPolicy::LeastLoaded;
    let upper_cold = free + (lane_cold - 1) * service_total + draw_slack(cold as u128 * k as u128);

    let lower = overhead + lower_cold.max(warm_done);
    let upper = overhead + upper_cold.max(warm_done);

    // Descriptors: each cold node offers one op per free/K nanoseconds —
    // times the retry amplification, every lost attempt being independent
    // server work — to a fleet of S servers, so ρ = λ·E[S]/S. A degenerate
    // all-zero-cost calibration (free = 0) is instantaneous arrivals of
    // zero-length ops: report it as saturated rather than NaN (total RPC
    // loss likewise amplifies to saturation).
    let utilisation = if free > 0 {
        let rho = cold as f64 * service_total as f64 / (servers as f64 * free as f64) * amp;
        if rho.is_nan() {
            f64::INFINITY
        } else {
            rho
        }
    } else {
        f64::INFINITY
    };
    let moments = ServiceMoments::of(stream, dist).expect("k > 0");
    let mean_wait_ns = if utilisation < 1.0 {
        let lambda = cold as f64 * k as f64 / free as f64 * amp;
        if servers == 1 {
            // Pollaczek–Khinchine, exact-form M/G/1.
            lambda * moments.second_moment_ns2 / (2.0 * (1.0 - utilisation))
        } else {
            // Lee–Longton M/G/k: the M/M/k wait (Erlang-C delay
            // probability over the spare capacity) scaled by the
            // service-time variability (1 + c²)/2. Collapses to the
            // branch above at k = 1, kept separate so single-server
            // descriptors stay bit-identical to the pre-topology code.
            let mean = moments.mean_ns;
            let offered = lambda * mean; // erlangs; < servers since ρ < 1
            let service_cv2 = moments.second_moment_ns2 / (mean * mean) - 1.0;
            let w_mmk = erlang_c(servers, offered) * mean / (servers as f64 - offered);
            (1.0 + service_cv2) / 2.0 * w_mmk
        }
    } else {
        f64::INFINITY
    };

    // Any fault forfeits the work-conservation upper bound: stall windows
    // and retry backoffs are waits no foreign-op accounting covers. So
    // does least-loaded multi-server routing. The capacity lower bound
    // stands in every case.
    let upper = if cfg.fault.is_none() && !upper_forfeit {
        upper.min(u64::MAX as u128) as u64
    } else {
        u64::MAX
    };

    let service_sq_total: f64 = segs.iter().map(|s| (s.service_ns as f64).powi(2)).sum();
    Mg1Bounds {
        ranks: cfg.ranks,
        cold_nodes: cold as usize,
        server_ops_per_node: k,
        servers,
        utilisation,
        mean_wait_ns,
        lower_ns: lower.min(u64::MAX as u128) as u64,
        upper_ns: upper,
        factor_cv2: cv2,
        work_sd_ns: (cv2 * cold as f64 * service_sq_total).sqrt(),
        applicable,
    }
}

/// One cell's verdict: the envelope, what the DES replicates actually
/// averaged, and whether that mean sits inside the (slack-widened) bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueingCheck {
    pub bounds: Mg1Bounds,
    pub observed_mean_ns: u64,
    /// The absolute sampling slack applied (`6·work_sd/√replicates`, 0 when
    /// the factor is deterministic).
    pub slack_ns: f64,
    pub within: bool,
}

/// Check a replicate summary against the envelope. The bounds constrain the
/// *true* mean; a finite replicate sample fluctuates around it with a
/// standard error of at most [`Mg1Bounds::work_sd_ns`]`/√replicates` (the
/// launch time moves at most one-for-one with the total drawn server work,
/// in either regime), so the comparison widens the envelope by six of those
/// standard errors — tight enough to catch a modelling bug (which shifts
/// the mean by whole service quanta), loose enough never to flag honest
/// noise. Inapplicable bounds (see [`Mg1Bounds::applicable`]) always pass.
pub fn validate_against_mg1(bounds: &Mg1Bounds, stats: &LaunchStats) -> QueueingCheck {
    let slack_ns = 6.0 * bounds.work_sd_ns / (stats.replicates.max(1) as f64).sqrt();
    let mean = stats.mean_ns as f64;
    let within = !bounds.applicable
        || (mean >= bounds.lower_ns as f64 - slack_ns - 0.5
            && mean <= bounds.upper_ns as f64 + slack_ns + 0.5);
    QueueingCheck { bounds: *bounds, observed_mean_ns: stats.mean_ns, slack_ns, within }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::simulate_classified;
    use crate::sweep::sweep_ranks_replicated;
    use depchaos_vfs::{Op, Outcome, StraceLog, Syscall};

    fn cold_stream(n: usize) -> StraceLog {
        let mut log = StraceLog::new();
        for i in 0..n {
            log.push(Syscall::new(Op::Openat, &format!("/l/{i}"), Outcome::Enoent, 200_000));
        }
        log
    }

    fn fast_cfg() -> LaunchConfig {
        LaunchConfig { base_overhead_ns: 0, per_rank_overhead_ns: 0, ..LaunchConfig::default() }
    }

    #[test]
    fn factor_second_moments_are_the_closed_forms() {
        assert_eq!(factor_second_moment(ServiceDistribution::Deterministic), 1.0);
        let jitter = factor_second_moment(ServiceDistribution::uniform_jitter(0.25));
        assert!((jitter - (1.0 + 0.0625 / 3.0)).abs() < 1e-12);
        let ln = factor_second_moment(ServiceDistribution::log_normal(0.5));
        assert!((ln - 0.25f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn second_moments_match_empirical_sampling() {
        use depchaos_workloads::SplitMix;
        for dist in ServiceDistribution::all() {
            let mut rng = SplitMix::new(17);
            let n = 200_000;
            let mut sum_sq = 0.0;
            for _ in 0..n {
                let f = dist.sample(&mut rng);
                sum_sq += f * f;
            }
            let empirical = sum_sq / n as f64;
            let closed = factor_second_moment(dist);
            assert!(
                (empirical - closed).abs() / closed < 0.02,
                "{}: E[F²] {empirical} vs closed form {closed}",
                dist.name()
            );
        }
    }

    #[test]
    fn deterministic_result_sits_inside_the_envelope() {
        let cfg = fast_cfg();
        let stream = ClassifiedStream::classify(&cold_stream(300), &cfg);
        for ranks in [1usize, 512, 2048, 16 * 1024] {
            let at = cfg.clone().with_ranks(ranks);
            let b = mg1_bounds(&stream, &at);
            let r = simulate_classified(&stream, &at);
            assert!(b.lower_ns <= b.upper_ns);
            assert!(
                (b.lower_ns..=b.upper_ns).contains(&r.time_to_launch_ns),
                "ranks={ranks}: {} outside [{}, {}]",
                r.time_to_launch_ns,
                b.lower_ns,
                b.upper_ns
            );
        }
    }

    #[test]
    fn contended_regime_reports_saturation() {
        let cfg = fast_cfg();
        let stream = ClassifiedStream::classify(&cold_stream(300), &cfg);
        // One node: the server is mostly idle between the node's round
        // trips; P-K wait is finite and small.
        let single = mg1_bounds(&stream, &cfg.clone().with_ranks(128));
        assert!(single.utilisation < 1.0);
        assert!(single.mean_wait_ns.is_finite());
        // 128 cold nodes: service alone (50 µs) dwarfs each node's 250 µs
        // inter-op cycle — deep saturation, infinite open-system wait.
        let fleet = mg1_bounds(&stream, &cfg.clone().with_ranks(16 * 1024));
        assert!(fleet.utilisation > 1.0, "ρ = {}", fleet.utilisation);
        assert!(fleet.mean_wait_ns.is_infinite());
        // And the capacity lower bound dominates: launch grows with N.
        assert!(fleet.lower_ns > single.lower_ns * 10);
    }

    #[test]
    fn stochastic_replicate_means_validate_across_distributions() {
        for dist in ServiceDistribution::all() {
            for seed in [7u64, 42, 0xD15_7A5ED] {
                let cfg = LaunchConfig { seed, ..fast_cfg() }.with_service_dist(dist);
                let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
                let rows = sweep_ranks_replicated(&stream, &cfg, &[512, 2048, 8192], 7);
                for (ranks, _, stats) in rows {
                    let b = mg1_bounds(&stream, &cfg.clone().with_ranks(ranks));
                    let check = validate_against_mg1(&b, &stats);
                    assert!(
                        check.within,
                        "{} seed={seed} ranks={ranks}: mean {} outside [{}, {}] (slack {})",
                        dist.name(),
                        check.observed_mean_ns,
                        b.lower_ns,
                        b.upper_ns,
                        check.slack_ns
                    );
                }
            }
        }
    }

    #[test]
    fn a_shifted_mean_is_flagged() {
        // The check must have teeth: a mean below the server's serial
        // capacity (as a lost-contention bug would produce) fails.
        let cfg = fast_cfg().with_service_dist(ServiceDistribution::uniform_jitter(0.25));
        let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
        let at = cfg.clone().with_ranks(16 * 1024);
        let b = mg1_bounds(&stream, &at);
        let bogus = LaunchStats {
            replicates: 11,
            mean_ns: b.lower_ns / 2,
            p50_ns: b.lower_ns / 2,
            p95_ns: b.lower_ns / 2,
            p99_ns: b.lower_ns / 2,
        };
        assert!(!validate_against_mg1(&b, &bogus).within);
        let above = LaunchStats { mean_ns: b.upper_ns * 2, ..bogus };
        assert!(!validate_against_mg1(&b, &above).within);
    }

    #[test]
    fn clamp_reaching_tails_are_marked_inapplicable() {
        let cfg = fast_cfg().with_service_dist(ServiceDistribution::log_normal(8.0));
        let stream = ClassifiedStream::classify(&cold_stream(50), &cfg);
        let b = mg1_bounds(&stream, &cfg.clone().with_ranks(2048));
        assert!(!b.applicable);
        // Inapplicable bounds never flag — vacuous pass, not a false alarm.
        let anything = LaunchStats { replicates: 5, mean_ns: 1, p50_ns: 1, p95_ns: 1, p99_ns: 1 };
        assert!(validate_against_mg1(&b, &anything).within);
    }

    #[test]
    fn serverless_streams_are_exact() {
        let mut warm = StraceLog::new();
        for i in 0..100 {
            warm.push(Syscall::new(Op::Stat, &format!("/w/{i}"), Outcome::Ok, 1_000));
        }
        let cfg = fast_cfg();
        let stream = ClassifiedStream::classify(&warm, &cfg);
        let at = cfg.clone().with_ranks(2048);
        let b = mg1_bounds(&stream, &at);
        assert_eq!(b.lower_ns, b.upper_ns);
        assert_eq!(b.lower_ns, simulate_classified(&stream, &at).time_to_launch_ns);
        assert_eq!(b.utilisation, 0.0);
    }

    #[test]
    fn rpc_loss_amplifies_offered_load_and_forfeits_the_upper_bound() {
        let cfg = fast_cfg();
        let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
        let healthy = mg1_bounds(&stream, &cfg.clone().with_ranks(2048));
        let lossy = cfg.clone().with_ranks(2048).with_fault(FaultModel::RpcLoss {
            loss_milli: 200,
            timeout_ns: 1_000_000_000,
            backoff_base_ns: 250_000_000,
            max_retries: 5,
        });
        let b = mg1_bounds(&stream, &lossy);
        // 200‰ loss: every op costs 1/(1 − 0.2) = 1.25 attempts in
        // expectation, and the offered-load descriptors say so.
        assert!((b.utilisation / healthy.utilisation - 1.25).abs() < 1e-12);
        assert_eq!(b.upper_ns, u64::MAX, "faulted cells keep no upper bound");
        assert_eq!(b.lower_ns, healthy.lower_ns, "the capacity floor is unchanged");
        assert!(b.applicable);
        // Total loss saturates rather than NaN-ing.
        let total = cfg.clone().with_ranks(2048).with_fault(FaultModel::RpcLoss {
            loss_milli: 1000,
            timeout_ns: 1_000_000_000,
            backoff_base_ns: 250_000_000,
            max_retries: 5,
        });
        assert!(mg1_bounds(&stream, &total).utilisation.is_infinite());
    }

    #[test]
    fn faulted_results_respect_the_surviving_lower_bound() {
        let faults = [
            FaultModel::ServerStall { at_ns: 2_000_000_000, duration_ns: 10_000_000_000 },
            FaultModel::RpcLoss {
                loss_milli: 100,
                timeout_ns: 1_000_000_000,
                backoff_base_ns: 250_000_000,
                max_retries: 5,
            },
            FaultModel::Stragglers { frac_milli: 100, slow_milli: 4000 },
        ];
        for fault in faults {
            // Deterministic service: one faulted run is the mean, and it
            // may never beat the healthy capacity floor.
            let cfg = fast_cfg().with_fault(fault);
            let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
            let at = cfg.clone().with_ranks(2048);
            let b = mg1_bounds(&stream, &at);
            assert!(b.applicable, "{fault:?} should stay applicable");
            let r = simulate_classified(&stream, &at);
            assert!(
                r.time_to_launch_ns >= b.lower_ns,
                "{fault:?}: {} beat the capacity floor {}",
                r.time_to_launch_ns,
                b.lower_ns
            );
            // Stochastic services: the bound constrains the true mean, so
            // check replicate means through the sampling-slack validator
            // (the forfeited upper bound makes this a lower-bound check).
            for dist in ServiceDistribution::all() {
                let cfg = fast_cfg().with_service_dist(dist).with_fault(fault);
                let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
                let rows = sweep_ranks_replicated(&stream, &cfg, &[512, 2048], 7);
                for (ranks, _, stats) in rows {
                    let b = mg1_bounds(&stream, &cfg.clone().with_ranks(ranks));
                    let check = validate_against_mg1(&b, &stats);
                    assert!(
                        check.within,
                        "{fault:?} {} ranks={ranks}: mean {} under floor {} (slack {})",
                        dist.name(),
                        check.observed_mean_ns,
                        b.lower_ns,
                        check.slack_ns
                    );
                }
            }
        }
    }

    #[test]
    fn straggler_speedups_are_marked_inapplicable() {
        let cfg =
            fast_cfg().with_fault(FaultModel::Stragglers { frac_milli: 500, slow_milli: 500 });
        let stream = ClassifiedStream::classify(&cold_stream(50), &cfg);
        let b = mg1_bounds(&stream, &cfg.clone().with_ranks(2048));
        assert!(!b.applicable, "sped-up nodes can beat the healthy capacity floor");
    }

    #[test]
    fn erlang_c_matches_the_closed_forms() {
        // k = 1 collapses to ρ itself — the M/M/1 delay probability.
        assert!((erlang_c(1, 0.6) - 0.6).abs() < 1e-12);
        // M/M/2 at ρ = 0.5: C = 1/3 (textbook value).
        assert!((erlang_c(2, 1.0) - 1.0 / 3.0).abs() < 1e-12);
        // Pooling helps: at equal per-server utilisation, a bigger fleet
        // makes arrivals less likely to wait.
        assert!(erlang_c(4, 2.4) < erlang_c(2, 1.2));
        assert!(erlang_c(16, 9.6) < erlang_c(4, 2.4));
    }

    #[test]
    fn single_server_bounds_are_unchanged_by_the_topology_axis() {
        use crate::config::ServerTopology;
        let cfg = fast_cfg();
        let stream = ClassifiedStream::classify(&cold_stream(300), &cfg);
        for ranks in [512usize, 16 * 1024] {
            let base = mg1_bounds(&stream, &cfg.clone().with_ranks(ranks));
            assert_eq!(base.servers, 1);
            for topo in [ServerTopology::single(), ServerTopology::least_loaded(1)] {
                let again = mg1_bounds(&stream, &cfg.clone().with_ranks(ranks).with_topology(topo));
                assert_eq!(base, again, "S = 1 envelope must not depend on the policy");
            }
        }
    }

    #[test]
    fn multi_server_results_sit_inside_the_mgk_envelope() {
        use crate::config::ServerTopology;
        let cfg = fast_cfg();
        let stream = ClassifiedStream::classify(&cold_stream(300), &cfg);
        for topo in [
            ServerTopology::hash(2),
            ServerTopology::hash(8),
            ServerTopology::least_loaded(3),
            ServerTopology::least_loaded(8),
        ] {
            for ranks in [512usize, 2048, 16 * 1024] {
                let at = cfg.clone().with_ranks(ranks).with_topology(topo);
                let b = mg1_bounds(&stream, &at);
                assert_eq!(b.servers, topo.servers);
                let r = simulate_classified(&stream, &at);
                assert!(
                    (b.lower_ns..=b.upper_ns).contains(&r.time_to_launch_ns),
                    "{} ranks={ranks}: {} outside [{}, {}]",
                    topo.name(),
                    r.time_to_launch_ns,
                    b.lower_ns,
                    b.upper_ns
                );
                if topo.assign == AssignPolicy::LeastLoaded {
                    assert_eq!(b.upper_ns, u64::MAX, "least-loaded keeps no per-lane upper bound");
                } else {
                    assert_ne!(b.upper_ns, u64::MAX, "hash lanes keep a real upper bound");
                }
            }
        }
    }

    #[test]
    fn capacity_floor_and_utilisation_scale_down_with_the_fleet() {
        use crate::config::ServerTopology;
        let cfg = fast_cfg();
        let stream = ClassifiedStream::classify(&cold_stream(300), &cfg);
        // Deep contention at one server (128 cold nodes).
        let at = |s: usize| {
            let topo = if s == 1 { ServerTopology::single() } else { ServerTopology::hash(s) };
            mg1_bounds(&stream, &cfg.clone().with_ranks(16 * 1024).with_topology(topo))
        };
        let one = at(1);
        let eight = at(8);
        assert!(eight.lower_ns < one.lower_ns, "8 lanes shrink the capacity floor");
        assert!(eight.upper_ns < one.upper_ns, "and the per-lane work-conservation roof");
        assert!(
            (eight.utilisation - one.utilisation / 8.0).abs() < 1e-12,
            "ρ = λ·E[S]/S: {} vs {}",
            eight.utilisation,
            one.utilisation / 8.0
        );
        // A fleet big enough to desaturate the cold burst reports a finite
        // M/G/k wait where the single server reported an infinite one.
        assert!(one.mean_wait_ns.is_infinite());
        let big = mg1_bounds(
            &stream,
            &cfg.clone().with_ranks(16 * 1024).with_topology(ServerTopology::hash(512)),
        );
        assert!(big.utilisation < 1.0);
        assert!(big.mean_wait_ns.is_finite());
    }

    #[test]
    fn stochastic_multi_server_means_validate() {
        use crate::config::ServerTopology;
        for topo in [ServerTopology::hash(4), ServerTopology::least_loaded(4)] {
            for dist in ServiceDistribution::all() {
                let cfg = fast_cfg().with_service_dist(dist).with_topology(topo);
                let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
                let rows = sweep_ranks_replicated(&stream, &cfg, &[512, 8192], 7);
                for (ranks, _, stats) in rows {
                    let b = mg1_bounds(&stream, &cfg.clone().with_ranks(ranks));
                    let check = validate_against_mg1(&b, &stats);
                    assert!(
                        check.within,
                        "{} {} ranks={ranks}: mean {} outside [{}, {}] (slack {})",
                        topo.name(),
                        dist.name(),
                        check.observed_mean_ns,
                        b.lower_ns,
                        b.upper_ns,
                        check.slack_ns
                    );
                }
            }
        }
    }

    #[test]
    fn faults_compose_with_the_fleet() {
        use crate::config::ServerTopology;
        // RpcLoss amplification applies per-lane: the amplified ρ is still
        // divided by S, the capacity floor still stands, and the upper
        // bound is forfeited for the fault (not the topology).
        let topo = ServerTopology::hash(4);
        let cfg = fast_cfg().with_topology(topo);
        let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
        let healthy = mg1_bounds(&stream, &cfg.clone().with_ranks(2048));
        let lossy = cfg.clone().with_ranks(2048).with_fault(FaultModel::RpcLoss {
            loss_milli: 200,
            timeout_ns: 1_000_000_000,
            backoff_base_ns: 250_000_000,
            max_retries: 5,
        });
        let b = mg1_bounds(&stream, &lossy);
        assert!((b.utilisation / healthy.utilisation - 1.25).abs() < 1e-12);
        assert_eq!(b.upper_ns, u64::MAX);
        assert_eq!(b.lower_ns, healthy.lower_ns);
        // And the faulted multi-server runs respect the surviving floor.
        let r = simulate_classified(&stream, &lossy);
        assert!(r.time_to_launch_ns >= b.lower_ns);
    }

    #[test]
    fn broadcast_bounds_cover_the_warm_fleet() {
        let mut cfg = fast_cfg();
        cfg.broadcast_cache = true;
        let stream = ClassifiedStream::classify(&cold_stream(300), &cfg);
        let at = cfg.clone().with_ranks(16 * 1024);
        let b = mg1_bounds(&stream, &at);
        assert_eq!(b.cold_nodes, 1);
        let r = simulate_classified(&stream, &at);
        assert!((b.lower_ns..=b.upper_ns).contains(&r.time_to_launch_ns));
    }
}

//! M/G/1 queueing-theory cross-checks for the stochastic DES.
//!
//! The DES is trusted because it is bit-identical to a slow reference
//! implementation — but both could share a modelling bug. This module
//! derives what queueing theory says the simulated launch *must* look like,
//! straight from the [`ClassifiedStream`] and the
//! [`ServiceDistribution`]'s closed-form moments, and
//! [`validate_against_mg1`] flags any sweep cell whose replicate mean
//! escapes the envelope. Three layers, from descriptive to binding:
//!
//! * **Moments** ([`ServiceMoments`]): the server's per-op service time is
//!   a classified base time scaled by a mean-one factor `F`, so `E[S] =
//!   mean(sₖ)` and `E[S²] = mean(sₖ²)·E[F²]`, with `E[F²]` closed-form per
//!   distribution — `1` (deterministic), `1 + spread²/3` (uniform jitter on
//!   `[1−spread, 1+spread]`), `exp(σ²)` (mean-one log-normal).
//! * **M/G/1 descriptors**: treating each cold node's replay as the arrival
//!   process (one op per `free-replay/K` nanoseconds, `N` nodes), the
//!   offered utilisation is `ρ = N·ΣS / free-replay` and the
//!   Pollaczek–Khinchine mean wait `W = λ·E[S²] / 2(1−ρ)` — infinite once
//!   the offered load saturates the server (`ρ ≥ 1`), which is exactly the
//!   contended regime the paper's Fig 6 lives in.
//! * **Bounds** ([`Mg1Bounds::lower_ns`] / [`Mg1Bounds::upper_ns`]): hard
//!   envelope on the *mean* launch time, rigorous for the DES's work
//!   conserving FIFO server rather than asymptotic:
//!   - lower: the slower of a node's own unimpeded replay and the server's
//!     serial capacity (`first arrival + N·K ops of work`, plus the last
//!     response's return path) — no schedule can beat either;
//!   - upper: a node's own replay plus **all** other nodes' server work —
//!     in a work-conserving FIFO system each foreign op can delay a node at
//!     most once.
//!
//!   Under a stochastic distribution the drawn service `clamp(⌊sₖ·F⌋)`
//!   rounds toward zero and clamps to at least 1 ns, so the bounds carry a
//!   ±1 ns-per-draw allowance, and [`validate_against_mg1`] adds a
//!   `6σ/√draws` relative slack for the sampling noise of a finite
//!   replicate set. A distribution whose tail reaches the service clamp
//!   (log-normal `σ > 2`) truncates its own mean unboundedly; such cells
//!   are marked inapplicable instead of mis-flagged.
//!
//! # Fault injection
//!
//! Under a [`FaultModel`] the envelope degrades
//! asymmetrically. The *capacity lower bound stays rigorous* — stalls and
//! backoffs only add wait, retries only add server work, and a straggler
//! slowdown (`slow ≥ 1×`) only lengthens services, so no faulted schedule
//! can beat the healthy serial-capacity floor. The *upper bound is
//! forfeited* (`upper_ns = u64::MAX`): stall windows and retry backoff
//! waits are not work the work-conservation argument covers. The offered
//! load descriptors are retry-aware — `RpcLoss` multiplies the
//! utilisation and P-K arrival rate by `1/(1 − loss)`, every attempt
//! being independent server work. A straggler model with `slow < 1×`
//! (nodes sped *up*) would undercut the healthy floor, so such cells are
//! marked inapplicable.

use serde::{Deserialize, Serialize};

use crate::config::{LaunchConfig, ServiceDistribution};
use crate::des::{ClassifiedStream, ClassifyParams};
use crate::fault::FaultModel;
use crate::sweep::LaunchStats;

/// `E[F²]` of the mean-one service factor, closed-form per distribution.
pub fn factor_second_moment(dist: ServiceDistribution) -> f64 {
    match dist {
        ServiceDistribution::Deterministic => 1.0,
        ServiceDistribution::UniformJitter { spread_milli } => {
            let s = spread_milli as f64 / 1000.0;
            1.0 + s * s / 3.0
        }
        ServiceDistribution::LogNormal { sigma_milli } => {
            let sigma = sigma_milli as f64 / 1000.0;
            (sigma * sigma).exp()
        }
    }
}

/// First and second moments of one server op's service time under a
/// distribution, averaged over the stream's segment schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceMoments {
    pub mean_ns: f64,
    pub second_moment_ns2: f64,
}

impl ServiceMoments {
    /// Moments over `stream`'s server ops; `None` when the stream never
    /// touches the server.
    pub fn of(stream: &ClassifiedStream, dist: ServiceDistribution) -> Option<ServiceMoments> {
        let segs = stream.server_segments();
        if segs.is_empty() {
            return None;
        }
        let k = segs.len() as f64;
        let sum: u128 = segs.iter().map(|s| s.service_ns as u128).sum();
        let sum_sq: u128 = segs.iter().map(|s| (s.service_ns as u128).pow(2)).sum();
        Some(ServiceMoments {
            mean_ns: sum as f64 / k,
            second_moment_ns2: sum_sq as f64 / k * factor_second_moment(dist),
        })
    }
}

/// The queueing-theory envelope for one (stream, config) cell at one rank
/// point: M/G/1 descriptors plus hard mean-launch bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mg1Bounds {
    pub ranks: usize,
    pub cold_nodes: usize,
    /// Server round trips per cold replay (the stream's `K`).
    pub server_ops_per_node: u64,
    /// Offered utilisation `ρ = N·ΣS / free-replay`, multiplied by the
    /// retry amplification `1/(1 − loss)` under
    /// [`FaultModel::RpcLoss`]; values ≥ 1 mean the cold fleet saturates
    /// the server (the contended regime).
    pub utilisation: f64,
    /// Pollaczek–Khinchine mean wait per op at the offered load;
    /// `f64::INFINITY` once saturated.
    pub mean_wait_ns: f64,
    /// Hard lower bound on the mean launch time — still rigorous under
    /// every fault model (faults add wait and work, never remove any).
    pub lower_ns: u64,
    /// Hard upper bound on the mean launch time; `u64::MAX` under a
    /// non-`None` fault model (stall and backoff waits escape the
    /// work-conservation argument).
    pub upper_ns: u64,
    /// Squared coefficient of variation of the service factor
    /// (`E[F²] − 1`).
    pub factor_cv2: f64,
    /// Standard deviation of one replicate's **total drawn server work**,
    /// `√(cv² · N · Σsₖ²)` — the sampling-slack scale for validation. The
    /// per-segment second moment matters: a stream dominated by a few large
    /// read services fluctuates like its big ops, not like `√(N·K)`
    /// interchangeable draws.
    pub work_sd_ns: f64,
    /// Whether the bounds are trustworthy for this distribution: a
    /// log-normal with `σ > 2` reaches the DES's service clamp and
    /// truncates its own mean, so the envelope would mis-flag it.
    pub applicable: bool,
}

/// Compute the envelope for `stream` under `cfg` (whose rank count selects
/// the point). Panics, like [`crate::simulate_classified`], when `cfg`'s
/// calibration differs from the one the stream was classified under.
pub fn mg1_bounds(stream: &ClassifiedStream, cfg: &LaunchConfig) -> Mg1Bounds {
    assert_eq!(
        stream.params(),
        ClassifyParams::of(cfg),
        "ClassifiedStream reused under a different latency calibration; reclassify"
    );
    let nodes = cfg.nodes();
    let cold = if cfg.broadcast_cache { 1u64 } else { nodes as u64 };
    let warm_done = if (nodes as u64) > cold { stream.warm_replay_ns() as u128 } else { 0 };
    let overhead = cfg.base_overhead_ns as u128
        + cfg.per_rank_overhead_ns as u128 * cfg.ranks_per_node.min(cfg.ranks) as u128;
    let dist = cfg.service_dist;
    let applicable = match dist {
        ServiceDistribution::LogNormal { sigma_milli } => sigma_milli <= 2000,
        _ => true,
    } && match cfg.fault {
        // A straggler *speed-up* would undercut the healthy capacity
        // floor; genuine slowdowns keep every bound argument intact.
        FaultModel::Stragglers { slow_milli, .. } => slow_milli >= 1000,
        _ => true,
    };
    let cv2 = factor_second_moment(dist) - 1.0;
    let amp = cfg.fault.load_amplification();

    let segs = stream.server_segments();
    let k = segs.len() as u64;
    if k == 0 {
        // No server traffic: the launch is exact whatever the distribution.
        let exact = overhead + (stream.local_total_ns() as u128).max(warm_done);
        let exact = exact.min(u64::MAX as u128) as u64;
        return Mg1Bounds {
            ranks: cfg.ranks,
            cold_nodes: cold as usize,
            server_ops_per_node: 0,
            utilisation: 0.0,
            mean_wait_ns: 0.0,
            lower_ns: exact,
            upper_ns: exact,
            factor_cv2: cv2,
            work_sd_ns: 0.0,
            applicable,
        };
    }

    let half_rtt = cfg.rtt_ns as u128 / 2;
    let service_total: u128 = segs.iter().map(|s| s.service_ns as u128).sum();
    // One unimpeded cold replay: every pre-local, both half-RTTs, the
    // service itself, and the client-side payload time, plus the tail.
    let free: u128 = segs
        .iter()
        .map(|s| {
            s.pre_local_ns as u128 + 2 * half_rtt + s.service_ns as u128 + s.client_extra_ns as u128
        })
        .sum::<u128>()
        + stream.tail_local() as u128;
    let first_arrival = segs[0].pre_local_ns as u128 + half_rtt;
    let return_path =
        half_rtt + segs[k as usize - 1].client_extra_ns as u128 + stream.tail_local() as u128;

    // ±1 ns per draw: the DES floors each drawn service toward zero (lower
    // allowance) and clamps it up to at least 1 ns (upper allowance). No
    // draws occur under the deterministic model.
    let draw_slack = |per: u128| if dist.is_deterministic() { 0 } else { per };
    let lower_free = free.saturating_sub(draw_slack(k as u128));
    let lower_capacity = (first_arrival + cold as u128 * service_total + return_path)
        .saturating_sub(draw_slack(cold as u128 * k as u128));
    let lower_cold = lower_free.max(lower_capacity);
    let upper_cold =
        free + (cold as u128 - 1) * service_total + draw_slack(cold as u128 * k as u128);

    let lower = overhead + lower_cold.max(warm_done);
    let upper = overhead + upper_cold.max(warm_done);

    // Descriptors: each cold node offers one op per free/K nanoseconds —
    // times the retry amplification, every lost attempt being independent
    // server work. A degenerate all-zero-cost calibration (free = 0) is
    // instantaneous arrivals of zero-length ops: report it as saturated
    // rather than NaN (total RPC loss likewise amplifies to saturation).
    let utilisation = if free > 0 {
        let rho = cold as f64 * service_total as f64 / free as f64 * amp;
        if rho.is_nan() {
            f64::INFINITY
        } else {
            rho
        }
    } else {
        f64::INFINITY
    };
    let moments = ServiceMoments::of(stream, dist).expect("k > 0");
    let mean_wait_ns = if utilisation < 1.0 {
        let lambda = cold as f64 * k as f64 / free as f64 * amp;
        lambda * moments.second_moment_ns2 / (2.0 * (1.0 - utilisation))
    } else {
        f64::INFINITY
    };

    // Any fault forfeits the work-conservation upper bound: stall windows
    // and retry backoffs are waits no foreign-op accounting covers. The
    // capacity lower bound stands.
    let upper = if cfg.fault.is_none() { upper.min(u64::MAX as u128) as u64 } else { u64::MAX };

    let service_sq_total: f64 = segs.iter().map(|s| (s.service_ns as f64).powi(2)).sum();
    Mg1Bounds {
        ranks: cfg.ranks,
        cold_nodes: cold as usize,
        server_ops_per_node: k,
        utilisation,
        mean_wait_ns,
        lower_ns: lower.min(u64::MAX as u128) as u64,
        upper_ns: upper,
        factor_cv2: cv2,
        work_sd_ns: (cv2 * cold as f64 * service_sq_total).sqrt(),
        applicable,
    }
}

/// One cell's verdict: the envelope, what the DES replicates actually
/// averaged, and whether that mean sits inside the (slack-widened) bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueingCheck {
    pub bounds: Mg1Bounds,
    pub observed_mean_ns: u64,
    /// The absolute sampling slack applied (`6·work_sd/√replicates`, 0 when
    /// the factor is deterministic).
    pub slack_ns: f64,
    pub within: bool,
}

/// Check a replicate summary against the envelope. The bounds constrain the
/// *true* mean; a finite replicate sample fluctuates around it with a
/// standard error of at most [`Mg1Bounds::work_sd_ns`]`/√replicates` (the
/// launch time moves at most one-for-one with the total drawn server work,
/// in either regime), so the comparison widens the envelope by six of those
/// standard errors — tight enough to catch a modelling bug (which shifts
/// the mean by whole service quanta), loose enough never to flag honest
/// noise. Inapplicable bounds (see [`Mg1Bounds::applicable`]) always pass.
pub fn validate_against_mg1(bounds: &Mg1Bounds, stats: &LaunchStats) -> QueueingCheck {
    let slack_ns = 6.0 * bounds.work_sd_ns / (stats.replicates.max(1) as f64).sqrt();
    let mean = stats.mean_ns as f64;
    let within = !bounds.applicable
        || (mean >= bounds.lower_ns as f64 - slack_ns - 0.5
            && mean <= bounds.upper_ns as f64 + slack_ns + 0.5);
    QueueingCheck { bounds: *bounds, observed_mean_ns: stats.mean_ns, slack_ns, within }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::simulate_classified;
    use crate::sweep::sweep_ranks_replicated;
    use depchaos_vfs::{Op, Outcome, StraceLog, Syscall};

    fn cold_stream(n: usize) -> StraceLog {
        let mut log = StraceLog::new();
        for i in 0..n {
            log.push(Syscall::new(Op::Openat, &format!("/l/{i}"), Outcome::Enoent, 200_000));
        }
        log
    }

    fn fast_cfg() -> LaunchConfig {
        LaunchConfig { base_overhead_ns: 0, per_rank_overhead_ns: 0, ..LaunchConfig::default() }
    }

    #[test]
    fn factor_second_moments_are_the_closed_forms() {
        assert_eq!(factor_second_moment(ServiceDistribution::Deterministic), 1.0);
        let jitter = factor_second_moment(ServiceDistribution::uniform_jitter(0.25));
        assert!((jitter - (1.0 + 0.0625 / 3.0)).abs() < 1e-12);
        let ln = factor_second_moment(ServiceDistribution::log_normal(0.5));
        assert!((ln - 0.25f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn second_moments_match_empirical_sampling() {
        use depchaos_workloads::SplitMix;
        for dist in ServiceDistribution::all() {
            let mut rng = SplitMix::new(17);
            let n = 200_000;
            let mut sum_sq = 0.0;
            for _ in 0..n {
                let f = dist.sample(&mut rng);
                sum_sq += f * f;
            }
            let empirical = sum_sq / n as f64;
            let closed = factor_second_moment(dist);
            assert!(
                (empirical - closed).abs() / closed < 0.02,
                "{}: E[F²] {empirical} vs closed form {closed}",
                dist.name()
            );
        }
    }

    #[test]
    fn deterministic_result_sits_inside_the_envelope() {
        let cfg = fast_cfg();
        let stream = ClassifiedStream::classify(&cold_stream(300), &cfg);
        for ranks in [1usize, 512, 2048, 16 * 1024] {
            let at = cfg.clone().with_ranks(ranks);
            let b = mg1_bounds(&stream, &at);
            let r = simulate_classified(&stream, &at);
            assert!(b.lower_ns <= b.upper_ns);
            assert!(
                (b.lower_ns..=b.upper_ns).contains(&r.time_to_launch_ns),
                "ranks={ranks}: {} outside [{}, {}]",
                r.time_to_launch_ns,
                b.lower_ns,
                b.upper_ns
            );
        }
    }

    #[test]
    fn contended_regime_reports_saturation() {
        let cfg = fast_cfg();
        let stream = ClassifiedStream::classify(&cold_stream(300), &cfg);
        // One node: the server is mostly idle between the node's round
        // trips; P-K wait is finite and small.
        let single = mg1_bounds(&stream, &cfg.clone().with_ranks(128));
        assert!(single.utilisation < 1.0);
        assert!(single.mean_wait_ns.is_finite());
        // 128 cold nodes: service alone (50 µs) dwarfs each node's 250 µs
        // inter-op cycle — deep saturation, infinite open-system wait.
        let fleet = mg1_bounds(&stream, &cfg.clone().with_ranks(16 * 1024));
        assert!(fleet.utilisation > 1.0, "ρ = {}", fleet.utilisation);
        assert!(fleet.mean_wait_ns.is_infinite());
        // And the capacity lower bound dominates: launch grows with N.
        assert!(fleet.lower_ns > single.lower_ns * 10);
    }

    #[test]
    fn stochastic_replicate_means_validate_across_distributions() {
        for dist in ServiceDistribution::all() {
            for seed in [7u64, 42, 0xD15_7A5ED] {
                let cfg = LaunchConfig { seed, ..fast_cfg() }.with_service_dist(dist);
                let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
                let rows = sweep_ranks_replicated(&stream, &cfg, &[512, 2048, 8192], 7);
                for (ranks, _, stats) in rows {
                    let b = mg1_bounds(&stream, &cfg.clone().with_ranks(ranks));
                    let check = validate_against_mg1(&b, &stats);
                    assert!(
                        check.within,
                        "{} seed={seed} ranks={ranks}: mean {} outside [{}, {}] (slack {})",
                        dist.name(),
                        check.observed_mean_ns,
                        b.lower_ns,
                        b.upper_ns,
                        check.slack_ns
                    );
                }
            }
        }
    }

    #[test]
    fn a_shifted_mean_is_flagged() {
        // The check must have teeth: a mean below the server's serial
        // capacity (as a lost-contention bug would produce) fails.
        let cfg = fast_cfg().with_service_dist(ServiceDistribution::uniform_jitter(0.25));
        let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
        let at = cfg.clone().with_ranks(16 * 1024);
        let b = mg1_bounds(&stream, &at);
        let bogus = LaunchStats {
            replicates: 11,
            mean_ns: b.lower_ns / 2,
            p50_ns: b.lower_ns / 2,
            p95_ns: b.lower_ns / 2,
            p99_ns: b.lower_ns / 2,
        };
        assert!(!validate_against_mg1(&b, &bogus).within);
        let above = LaunchStats { mean_ns: b.upper_ns * 2, ..bogus };
        assert!(!validate_against_mg1(&b, &above).within);
    }

    #[test]
    fn clamp_reaching_tails_are_marked_inapplicable() {
        let cfg = fast_cfg().with_service_dist(ServiceDistribution::log_normal(8.0));
        let stream = ClassifiedStream::classify(&cold_stream(50), &cfg);
        let b = mg1_bounds(&stream, &cfg.clone().with_ranks(2048));
        assert!(!b.applicable);
        // Inapplicable bounds never flag — vacuous pass, not a false alarm.
        let anything = LaunchStats { replicates: 5, mean_ns: 1, p50_ns: 1, p95_ns: 1, p99_ns: 1 };
        assert!(validate_against_mg1(&b, &anything).within);
    }

    #[test]
    fn serverless_streams_are_exact() {
        let mut warm = StraceLog::new();
        for i in 0..100 {
            warm.push(Syscall::new(Op::Stat, &format!("/w/{i}"), Outcome::Ok, 1_000));
        }
        let cfg = fast_cfg();
        let stream = ClassifiedStream::classify(&warm, &cfg);
        let at = cfg.clone().with_ranks(2048);
        let b = mg1_bounds(&stream, &at);
        assert_eq!(b.lower_ns, b.upper_ns);
        assert_eq!(b.lower_ns, simulate_classified(&stream, &at).time_to_launch_ns);
        assert_eq!(b.utilisation, 0.0);
    }

    #[test]
    fn rpc_loss_amplifies_offered_load_and_forfeits_the_upper_bound() {
        let cfg = fast_cfg();
        let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
        let healthy = mg1_bounds(&stream, &cfg.clone().with_ranks(2048));
        let lossy = cfg.clone().with_ranks(2048).with_fault(FaultModel::RpcLoss {
            loss_milli: 200,
            timeout_ns: 1_000_000_000,
            backoff_base_ns: 250_000_000,
            max_retries: 5,
        });
        let b = mg1_bounds(&stream, &lossy);
        // 200‰ loss: every op costs 1/(1 − 0.2) = 1.25 attempts in
        // expectation, and the offered-load descriptors say so.
        assert!((b.utilisation / healthy.utilisation - 1.25).abs() < 1e-12);
        assert_eq!(b.upper_ns, u64::MAX, "faulted cells keep no upper bound");
        assert_eq!(b.lower_ns, healthy.lower_ns, "the capacity floor is unchanged");
        assert!(b.applicable);
        // Total loss saturates rather than NaN-ing.
        let total = cfg.clone().with_ranks(2048).with_fault(FaultModel::RpcLoss {
            loss_milli: 1000,
            timeout_ns: 1_000_000_000,
            backoff_base_ns: 250_000_000,
            max_retries: 5,
        });
        assert!(mg1_bounds(&stream, &total).utilisation.is_infinite());
    }

    #[test]
    fn faulted_results_respect_the_surviving_lower_bound() {
        let faults = [
            FaultModel::ServerStall { at_ns: 2_000_000_000, duration_ns: 10_000_000_000 },
            FaultModel::RpcLoss {
                loss_milli: 100,
                timeout_ns: 1_000_000_000,
                backoff_base_ns: 250_000_000,
                max_retries: 5,
            },
            FaultModel::Stragglers { frac_milli: 100, slow_milli: 4000 },
        ];
        for fault in faults {
            // Deterministic service: one faulted run is the mean, and it
            // may never beat the healthy capacity floor.
            let cfg = fast_cfg().with_fault(fault);
            let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
            let at = cfg.clone().with_ranks(2048);
            let b = mg1_bounds(&stream, &at);
            assert!(b.applicable, "{fault:?} should stay applicable");
            let r = simulate_classified(&stream, &at);
            assert!(
                r.time_to_launch_ns >= b.lower_ns,
                "{fault:?}: {} beat the capacity floor {}",
                r.time_to_launch_ns,
                b.lower_ns
            );
            // Stochastic services: the bound constrains the true mean, so
            // check replicate means through the sampling-slack validator
            // (the forfeited upper bound makes this a lower-bound check).
            for dist in ServiceDistribution::all() {
                let cfg = fast_cfg().with_service_dist(dist).with_fault(fault);
                let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
                let rows = sweep_ranks_replicated(&stream, &cfg, &[512, 2048], 7);
                for (ranks, _, stats) in rows {
                    let b = mg1_bounds(&stream, &cfg.clone().with_ranks(ranks));
                    let check = validate_against_mg1(&b, &stats);
                    assert!(
                        check.within,
                        "{fault:?} {} ranks={ranks}: mean {} under floor {} (slack {})",
                        dist.name(),
                        check.observed_mean_ns,
                        b.lower_ns,
                        check.slack_ns
                    );
                }
            }
        }
    }

    #[test]
    fn straggler_speedups_are_marked_inapplicable() {
        let cfg =
            fast_cfg().with_fault(FaultModel::Stragglers { frac_milli: 500, slow_milli: 500 });
        let stream = ClassifiedStream::classify(&cold_stream(50), &cfg);
        let b = mg1_bounds(&stream, &cfg.clone().with_ranks(2048));
        assert!(!b.applicable, "sped-up nodes can beat the healthy capacity floor");
    }

    #[test]
    fn broadcast_bounds_cover_the_warm_fleet() {
        let mut cfg = fast_cfg();
        cfg.broadcast_cache = true;
        let stream = ClassifiedStream::classify(&cold_stream(300), &cfg);
        let at = cfg.clone().with_ranks(16 * 1024);
        let b = mg1_bounds(&stream, &at);
        assert_eq!(b.cold_nodes, 1);
        let r = simulate_classified(&stream, &at);
        assert!((b.lower_ns..=b.upper_ns).contains(&r.time_to_launch_ns));
    }
}

//! Columnar batch execution: simulate every pending (cell, rank point,
//! replicate) of a sweep in one data-parallel pass.
//!
//! The sweep layers above this module — [`crate::sweep`],
//! [`crate::experiment`], and the incremental executor in `crates/serve` —
//! used to issue one [`simulate_classified`](crate::simulate_classified) call per pending simulation.
//! A full fig6-backends × dist × replicate matrix is thousands of such
//! calls, each re-deriving the same facts about the same handful of
//! segment schedules. [`BatchPlan`] turns that inside out:
//!
//! 1. **Gather.** Callers register each distinct [`ClassifiedStream`]
//!    once ([`BatchPlan::stream`]) and then push one *row* per pending
//!    simulation ([`BatchPlan::push`]). Rows are stored
//!    structure-of-arrays — one column per parameter (schedule id, rank
//!    count, ranks per node, cold-node count, broadcast flag, seed,
//!    distribution tag, overheads) — and each registered schedule is
//!    itself columnarised: a `service_ns` column, a precomputed `gap_ns`
//!    column, and the scalar aggregates (`warm_replay_ns`,
//!    `local_total_ns`, tail/op counts) every row over that schedule
//!    shares.
//!
//! 2. **Partition.** At push time every row is classified into one of
//!    four solver classes (see [`SolverClass`]), mirroring the regime
//!    selection inside [`simulate_classified`](crate::simulate_classified) exactly.
//!
//! 3. **Advance in lockstep.** [`BatchPlan::execute`] first collapses
//!    rows to unique *kernel jobs* — `(schedule, cold-node count, seed,
//!    fault, server topology)` tuples, with the seed normalised away for draw-free rows
//!    (deterministic service, no draw-taking fault), since the
//!    cold-fleet completion time is a pure function of that tuple.
//!    Replicate 0 of every rank point, every deterministic replicate,
//!    and every cell that only differs in overheads or warm fleet size
//!    all collapse onto the same kernel. Analytic kernels
//!    then advance **in lockstep over the shared segment schedule**: one
//!    outer loop per segment, one envelope update per live kernel, so
//!    the schedule's columns are streamed once per batch instead of once
//!    per simulation. Heap and stochastic kernels replay the schedule
//!    through the retained per-row event heap (`des::heap_schedule`).
//!
//! 4. **Scatter.** Each row combines its kernel's `(cold finish, peak
//!    queue)` with the per-row arithmetic — warm-fleet replay, op
//!    accounting, spawn and base overheads — reproducing
//!    [`simulate_classified`](crate::simulate_classified)'s output bit for bit.
//!
//! # The four solver classes
//!
//! | class | rows | cost per row |
//! |-------|------|--------------|
//! | [`SolverClass::Coalesced`] | no server segments (fully warm / serverless) | O(1) scatter arithmetic |
//! | [`SolverClass::Analytic`] | deterministic, ≥ 2 cold nodes, round-major schedule | amortised: one envelope update per (segment, kernel) |
//! | [`SolverClass::Stochastic`] | jittered service distribution | one heap replay per kernel (seeds never collapse) |
//! | [`SolverClass::Heap`] | deterministic but lone-cold-node or guard-violating, or any fault-injected row | one (faulty) heap replay per kernel |
//!
//! A row pushed as `Analytic` can still *demote* to the heap mid-batch:
//! the envelope cap (`MAX_ENVELOPE_LINES` in [`crate::des`]) is only
//! discoverable during the recursion, and `simulate_classified` falls
//! back to the heap when it trips. The lockstep does the same per
//! kernel, so the fallback criterion — not just the happy path — is
//! shared with the per-call implementation.
//!
//! # Exactness
//!
//! Every numeric path here is the per-call one, re-plumbed: the envelope
//! recursion is `des::envelope_round` (the same function
//! `analytic_all_cold` runs), heap rows call `des::heap_schedule`, and
//! stochastic draws reconstruct the per-(node, segment) [`SplitMix`]
//! streams verbatim. `tests/des_equivalence.rs` pins the whole plan
//! against per-call [`simulate_classified`](crate::simulate_classified) and the `des::reference`
//! oracle property-by-property.

use depchaos_workloads::SplitMix;

use crate::config::{
    AssignPolicy, LaunchConfig, LaunchResult, ServerTopology, ServiceDistribution,
};
use crate::des::{self, ClassifiedStream, ClassifyParams};
use crate::fault::{FaultCounts, FaultModel};

/// Handle to a segment schedule registered with [`BatchPlan::stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamId(usize);

/// The solver class a row was partitioned into at push time.
///
/// Mirrors the regime selection inside [`simulate_classified`](crate::simulate_classified): which of
/// the bit-identical implementations is cheapest for this row's
/// (schedule, distribution, cold-fleet) combination.
///
/// [`simulate_classified`](crate::simulate_classified): crate::des::simulate_classified
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverClass {
    /// No server segments: warm or serverless rows coalesce to pure
    /// segment arithmetic — no kernel job at all.
    Coalesced,
    /// Deterministic service, ≥ 2 cold nodes, round-major schedule, and
    /// a hash-routed (or single-server) fleet: the max-plus line-envelope
    /// recursion over the busiest lane, advanced in lockstep across
    /// every kernel sharing the schedule. `LeastLoaded` multi-server
    /// rows demote to [`SolverClass::Heap`] — their routing depends on
    /// the event schedule.
    Analytic,
    /// Jittered service distribution: per-kernel heap replay with the
    /// per-(node, segment) draw streams. Distinct seeds never collapse.
    Stochastic,
    /// Event-heap fallback: a lone cold node (heap is cheaper than the
    /// envelope), a schedule that violates the round-major guard, or any
    /// fault-injected row — stalls and retries break the analytic
    /// symmetry, so every [`FaultModel`] other than `None` demotes here
    /// (through the faulty engine) whatever the distribution.
    Heap,
}

/// One registered segment schedule, laid out as columns plus the scalar
/// aggregates every row over it shares.
struct Schedule<'a> {
    stream: &'a ClassifiedStream,
    /// Per-segment server occupancy.
    service_ns: Vec<u64>,
    /// `gap_ns[j]` = time between finishing segment `j` and arriving for
    /// segment `j + 1` (length `segments − 1`).
    gap_ns: Vec<u64>,
    /// Whether the round-major guard holds for any fleet of ≥ 2 cold
    /// nodes (the guard is node-count independent).
    round_major: bool,
    half_rtt: u64,
    warm_replay_ns: u64,
    local_total_ns: u64,
    n_ops: u64,
    n_local: u64,
    server_ops: u64,
}

/// One deduplicated unit of cold-fleet work: the completion time and
/// peak queue depth of `cold_nodes` identical nodes replaying
/// `schedule` against a `topology` fleet, seeded with `seed` when
/// stochastic.
struct Kernel {
    schedule: usize,
    cold_nodes: usize,
    /// Normalised to 0 when the row takes no draws (deterministic service
    /// *and* a draw-free fault model), so such rows differing only in seed
    /// share the kernel.
    seed: u64,
    fault: FaultModel,
    /// Server fleet shape — part of the dedup key: the same schedule and
    /// fleet over a different server count is different work.
    topology: ServerTopology,
    class: SolverClass,
}

/// Sentinel kernel index for [`SolverClass::Coalesced`] rows.
const NO_KERNEL: usize = usize::MAX;

/// A columnar batch of pending simulations over shared segment
/// schedules. See the module docs for the execution model; see
/// [`crate::sweep::sweep_ranks_replicated`] and
/// [`ExperimentMatrix::run`](crate::ExperimentMatrix::run) for the two in-crate
/// callers, and `crates/serve`'s incremental executor for the third.
///
/// Row results come back from [`BatchPlan::execute`] in push order and
/// are bit-identical to calling
/// [`simulate_classified`](crate::simulate_classified)(crate::des::simulate_classified) per row.
pub struct BatchPlan<'a> {
    schedules: Vec<Schedule<'a>>,
    // Row columns (structure-of-arrays, one entry per pushed row).
    row_schedule: Vec<u32>,
    row_ranks: Vec<usize>,
    row_ranks_per_node: Vec<usize>,
    row_nodes: Vec<usize>,
    row_cold_nodes: Vec<usize>,
    row_seed: Vec<u64>,
    row_dist: Vec<ServiceDistribution>,
    row_fault: Vec<FaultModel>,
    row_topology: Vec<ServerTopology>,
    row_base_overhead_ns: Vec<u64>,
    row_per_rank_overhead_ns: Vec<u64>,
    row_class: Vec<SolverClass>,
}

impl<'a> BatchPlan<'a> {
    pub fn new() -> Self {
        BatchPlan {
            schedules: Vec::new(),
            row_schedule: Vec::new(),
            row_ranks: Vec::new(),
            row_ranks_per_node: Vec::new(),
            row_nodes: Vec::new(),
            row_cold_nodes: Vec::new(),
            row_seed: Vec::new(),
            row_dist: Vec::new(),
            row_fault: Vec::new(),
            row_topology: Vec::new(),
            row_base_overhead_ns: Vec::new(),
            row_per_rank_overhead_ns: Vec::new(),
            row_class: Vec::new(),
        }
    }

    /// Register a classified stream, columnarising its segment schedule.
    /// Registering the same `&ClassifiedStream` again (by address) is
    /// deduplicated and returns the original id.
    pub fn stream(&mut self, stream: &'a ClassifiedStream) -> StreamId {
        if let Some(i) = self.schedules.iter().position(|s| std::ptr::eq(s.stream, stream)) {
            return StreamId(i);
        }
        let segs = stream.server_segments();
        let half_rtt = stream.params().rtt_ns / 2;
        let service_ns: Vec<u64> = segs.iter().map(|s| s.service_ns).collect();
        let gap_ns: Vec<u64> =
            (0..segs.len().saturating_sub(1)).map(|j| des::seg_gap(segs, half_rtt, j)).collect();
        let round_major = !segs.is_empty() && des::round_major(segs, half_rtt);
        self.schedules.push(Schedule {
            stream,
            service_ns,
            gap_ns,
            round_major,
            half_rtt,
            warm_replay_ns: stream.warm_replay_ns(),
            local_total_ns: stream.local_total_ns(),
            n_ops: stream.len(),
            n_local: stream.n_local(),
            server_ops: stream.server_ops(),
        });
        StreamId(self.schedules.len() - 1)
    }

    /// Push one pending simulation of `stream` under `cfg`, partitioning
    /// it into its solver class. Returns the row index ([`execute`]
    /// returns results in push order).
    ///
    /// Panics like [`simulate_classified`](crate::simulate_classified) if `cfg`'s latency
    /// calibration differs from the stream's classification.
    ///
    /// [`execute`]: BatchPlan::execute
    /// [`simulate_classified`](crate::simulate_classified): crate::des::simulate_classified
    pub fn push(&mut self, stream: StreamId, cfg: &LaunchConfig) -> usize {
        let sched = &self.schedules[stream.0];
        assert_eq!(
            sched.stream.params(),
            ClassifyParams::of(cfg),
            "ClassifiedStream reused under a different latency calibration; reclassify"
        );
        let nodes = cfg.nodes();
        let cold_nodes = if cfg.broadcast_cache { 1 } else { nodes };
        // Mirrors `all_cold_closed_form`'s topology guard: hash-routed
        // lanes are independent single-server systems, so the envelope
        // runs over the busiest lane; schedule-dependent `LeastLoaded`
        // routing never qualifies. A one-node lane needs no guard.
        let servers = cfg.topology.servers.max(1);
        let analytic_topology = servers == 1 || cfg.topology.assign == AssignPolicy::HashByNode;
        let lane_nodes = cold_nodes.div_ceil(servers);
        let class = if sched.server_ops == 0 {
            // No server segments: no stall, loss, or straggler can
            // manifest either (`simulate_classified` skips the fault
            // engine on an empty schedule), so faults stay coalesced.
            SolverClass::Coalesced
        } else if !cfg.fault.is_none() {
            SolverClass::Heap
        } else if !cfg.service_dist.is_deterministic() {
            SolverClass::Stochastic
        } else if cold_nodes > 1 && analytic_topology && (lane_nodes == 1 || sched.round_major) {
            SolverClass::Analytic
        } else {
            SolverClass::Heap
        };
        self.row_schedule.push(stream.0 as u32);
        self.row_ranks.push(cfg.ranks);
        self.row_ranks_per_node.push(cfg.ranks_per_node);
        self.row_nodes.push(nodes);
        self.row_cold_nodes.push(cold_nodes);
        self.row_seed.push(cfg.seed);
        self.row_dist.push(cfg.service_dist);
        self.row_fault.push(cfg.fault);
        self.row_topology.push(cfg.topology);
        self.row_base_overhead_ns.push(cfg.base_overhead_ns);
        self.row_per_rank_overhead_ns.push(cfg.per_rank_overhead_ns);
        self.row_class.push(class);
        self.row_class.len() - 1
    }

    /// Rows gathered so far.
    pub fn len(&self) -> usize {
        self.row_class.len()
    }

    pub fn is_empty(&self) -> bool {
        self.row_class.is_empty()
    }

    /// Row counts per solver class, in `[Coalesced, Analytic,
    /// Stochastic, Heap]` order — push-time partitioning, before any
    /// envelope-cap demotions during [`execute`](BatchPlan::execute).
    pub fn class_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for class in &self.row_class {
            let i = match class {
                SolverClass::Coalesced => 0,
                SolverClass::Analytic => 1,
                SolverClass::Stochastic => 2,
                SolverClass::Heap => 3,
            };
            counts[i] += 1;
        }
        counts
    }

    /// Solve every row: dedup to kernel jobs, advance the analytic class
    /// in lockstep per schedule, replay heap/stochastic kernels, scatter
    /// per-row results. Results are in push order, each bit-identical to
    /// [`simulate_classified`](crate::simulate_classified)(crate::des::simulate_classified) on the
    /// row's (stream, cfg).
    pub fn execute(&self) -> Vec<LaunchResult> {
        let (kernels, row_kernel) = self.gather_kernels();
        let mut kernel_done: Vec<(u64, usize, FaultCounts)> =
            vec![(0, 0, FaultCounts::default()); kernels.len()];

        // Analytic kernels advance in lockstep, grouped by schedule.
        let mut by_schedule: Vec<Vec<usize>> = vec![Vec::new(); self.schedules.len()];
        let mut heap_jobs: Vec<usize> = Vec::new();
        for (ki, k) in kernels.iter().enumerate() {
            match k.class {
                SolverClass::Analytic => by_schedule[k.schedule].push(ki),
                SolverClass::Stochastic | SolverClass::Heap => heap_jobs.push(ki),
                SolverClass::Coalesced => unreachable!("coalesced rows carry no kernel"),
            }
        }
        for (si, job_ids) in by_schedule.iter().enumerate() {
            if !job_ids.is_empty() {
                self.lockstep_analytic(si, job_ids, &kernels, &mut kernel_done, &mut heap_jobs);
            }
        }

        // Heap and stochastic kernels (plus analytic demotions) replay
        // the schedule through the retained per-row event heap.
        for &ki in &heap_jobs {
            kernel_done[ki] = self.heap_kernel(&kernels[ki]);
        }

        // Scatter: per-row arithmetic identical to `simulate_classified`.
        (0..self.len())
            .map(|r| {
                let sched = &self.schedules[self.row_schedule[r] as usize];
                let nodes = self.row_nodes[r];
                let cold_nodes = self.row_cold_nodes[r];
                let warm_nodes = nodes - cold_nodes;
                let warm_done_ns = if warm_nodes > 0 { sched.warm_replay_ns } else { 0 };
                let local_ops = warm_nodes as u64 * sched.n_ops + cold_nodes as u64 * sched.n_local;
                let server_ops = cold_nodes as u64 * sched.server_ops;
                let (cold_done_ns, peak_queue_depth, fc) = match row_kernel[r] {
                    NO_KERNEL => (sched.local_total_ns, 0, FaultCounts::default()),
                    ki => kernel_done[ki],
                };
                let spawn_ns = self.row_per_rank_overhead_ns[r]
                    * self.row_ranks_per_node[r].min(self.row_ranks[r]) as u64;
                LaunchResult {
                    time_to_launch_ns: self.row_base_overhead_ns[r]
                        + spawn_ns
                        + cold_done_ns.max(warm_done_ns),
                    nodes,
                    server_ops,
                    local_ops,
                    peak_queue_depth,
                    retries_issued: fc.retries,
                    timeouts_hit: fc.timeouts,
                    max_backoff_ns: fc.max_backoff_ns,
                    slowed_nodes: fc.slowed_nodes,
                }
            })
            .collect()
    }

    /// Collapse rows to unique kernel jobs. Draw-free rows (deterministic
    /// service and a draw-free fault model) normalise the seed to 0, so
    /// rows differing only in seed share a kernel; coalesced rows map to
    /// [`NO_KERNEL`].
    fn gather_kernels(&self) -> (Vec<Kernel>, Vec<usize>) {
        use std::collections::HashMap;
        let mut kernels: Vec<Kernel> = Vec::new();
        let mut index: HashMap<(u32, usize, u64, FaultModel, ServerTopology), usize> =
            HashMap::new();
        let row_kernel = (0..self.len())
            .map(|r| {
                if self.row_class[r] == SolverClass::Coalesced {
                    return NO_KERNEL;
                }
                let takes_draws =
                    !self.row_dist[r].is_deterministic() || self.row_fault[r].takes_draws();
                let seed = if takes_draws { self.row_seed[r] } else { 0 };
                let key = (
                    self.row_schedule[r],
                    self.row_cold_nodes[r],
                    seed,
                    self.row_fault[r],
                    self.row_topology[r],
                );
                *index.entry(key).or_insert_with(|| {
                    kernels.push(Kernel {
                        schedule: self.row_schedule[r] as usize,
                        cold_nodes: self.row_cold_nodes[r],
                        seed,
                        fault: self.row_fault[r],
                        topology: self.row_topology[r],
                        class: self.row_class[r],
                    });
                    kernels.len() - 1
                })
            })
            .collect();
        (kernels, row_kernel)
    }

    /// Advance every analytic kernel of one schedule in lockstep: outer
    /// loop over the segment columns, inner loop over the live kernels,
    /// each holding its own envelope. A kernel whose envelope exceeds
    /// the line cap demotes to `heap_jobs` — the same fallback
    /// `simulate_classified` takes.
    fn lockstep_analytic(
        &self,
        si: usize,
        job_ids: &[usize],
        kernels: &[Kernel],
        kernel_done: &mut [(u64, usize, FaultCounts)],
        heap_jobs: &mut Vec<usize>,
    ) {
        let sched = &self.schedules[si];
        let segs = sched.stream.server_segments();
        let seed_line = des::envelope_seed(segs, sched.half_rtt);
        struct Live {
            kernel: usize,
            last: u64,
            lines: Vec<(u64, u64)>,
        }
        let mut live: Vec<Live> = job_ids
            .iter()
            .map(|&ki| {
                // Hash-routed lanes: the envelope runs over the busiest
                // lane (`ceil(cold / S)` nodes) — `all_cold_closed_form`'s
                // `last`, verbatim. S = 1 reduces to the full cold fleet.
                let k = &kernels[ki];
                let lane_nodes = k.cold_nodes.div_ceil(k.topology.servers.max(1));
                Live { kernel: ki, last: (lane_nodes - 1) as u64, lines: vec![seed_line] }
            })
            .collect();
        let mut scratch: Vec<(u64, u64)> = Vec::with_capacity(8);
        for j in 1..sched.service_ns.len() {
            let s = sched.service_ns[j];
            let g_prev = sched.gap_ns[j - 1];
            live.retain_mut(|st| {
                if des::envelope_round(&mut st.lines, &mut scratch, s, g_prev, st.last) {
                    true
                } else {
                    heap_jobs.push(st.kernel);
                    false
                }
            });
            if live.is_empty() {
                return;
            }
        }
        for st in &live {
            let done = des::envelope_finish(&st.lines, sched.stream, sched.half_rtt, st.last);
            kernel_done[st.kernel] = (done, kernels[st.kernel].cold_nodes, FaultCounts::default());
        }
    }

    /// Replay one heap or stochastic kernel through the per-row event
    /// heap, reconstructing `simulate_classified`'s draw streams — the
    /// faulty engine when the kernel carries a non-`None` fault model.
    fn heap_kernel(&self, k: &Kernel) -> (u64, usize, FaultCounts) {
        let sched = &self.schedules[k.schedule];
        let params = sched.stream.params();
        // The engines only read the calibration, seed, fault, and
        // topology off the config; rebuild one from the classification
        // params.
        let cfg = LaunchConfig {
            rtt_ns: params.rtt_ns,
            meta_service_ns: params.meta_service_ns,
            warm_ns: params.warm_ns,
            service_dist: params.dist,
            seed: k.seed,
            fault: k.fault,
            topology: k.topology,
            ..LaunchConfig::default()
        };
        if !k.fault.is_none() {
            des::heap_schedule_faulty(sched.stream, &cfg, k.cold_nodes)
        } else if params.dist.is_deterministic() {
            let (done, peak) =
                des::heap_schedule(sched.stream, &cfg, k.cold_nodes, |_, seg| seg.service_ns);
            (done, peak, FaultCounts::default())
        } else {
            let dist = params.dist;
            let mut rngs: Vec<SplitMix> = (0..k.cold_nodes)
                .map(|i| SplitMix::split(k.seed, SplitMix::NODE, i as u64))
                .collect();
            let (done, peak) = des::heap_schedule(sched.stream, &cfg, k.cold_nodes, |i, seg| {
                des::scale_service_ns(seg.service_ns, dist.sample(&mut rngs[i]))
            });
            (done, peak, FaultCounts::default())
        }
    }
}

impl Default for BatchPlan<'_> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::simulate_classified;
    use depchaos_vfs::strace::{Op, Outcome, StraceLog, Syscall};

    fn log_of(spec: &[(Op, u64)]) -> StraceLog {
        let mut log = StraceLog::new();
        for &(op, cost_ns) in spec {
            log.push(Syscall::new(op, "/p", Outcome::Ok, cost_ns));
        }
        log
    }

    fn cfg_with(dist: ServiceDistribution, ranks: usize, broadcast: bool) -> LaunchConfig {
        let mut cfg = LaunchConfig::default().with_ranks(ranks);
        cfg.service_dist = dist;
        cfg.broadcast_cache = broadcast;
        cfg
    }

    /// A mixed plan — two streams, all four solver classes — matches
    /// per-call `simulate_classified` row for row.
    #[test]
    fn mixed_plan_matches_per_call_path() {
        let base = LaunchConfig::default();
        // Stream A: server-heavy (analytic / heap / stochastic rows).
        let ops_a = log_of(&[
            (Op::Stat, base.rtt_ns),
            (Op::Openat, base.rtt_ns * 2),
            (Op::Read, 4096),
            (Op::Stat, 10),
        ]);
        // Stream B: all-local (coalesced rows).
        let ops_b = log_of(&[(Op::Stat, 5), (Op::Stat, 7)]);

        let dists = ServiceDistribution::all();
        let streams: Vec<(ClassifiedStream, ClassifiedStream, LaunchConfig)> = dists
            .iter()
            .map(|&d| {
                let cfg = cfg_with(d, 1024, false);
                (
                    ClassifiedStream::classify(&ops_a, &cfg),
                    ClassifiedStream::classify(&ops_b, &cfg),
                    cfg,
                )
            })
            .collect();

        let mut plan = BatchPlan::new();
        let mut expected = Vec::new();
        for (sa, sb, cfg) in &streams {
            let ia = plan.stream(sa);
            let ib = plan.stream(sb);
            for &(ranks, broadcast, seed) in
                &[(64usize, false, 1u64), (64, true, 1), (4096, false, 2), (128, false, 1)]
            {
                let mut c = cfg.clone().with_ranks(ranks).with_seed(seed);
                c.broadcast_cache = broadcast;
                plan.push(ia, &c);
                expected.push(simulate_classified(sa, &c));
                plan.push(ib, &c);
                expected.push(simulate_classified(sb, &c));
            }
        }
        assert_eq!(plan.len(), expected.len());
        let counts = plan.class_counts();
        assert_eq!(counts.iter().sum::<usize>(), plan.len());
        assert!(counts[0] > 0, "stream B rows coalesce: {counts:?}");
        assert!(counts[1] > 0, "multi-node deterministic rows are analytic: {counts:?}");
        assert!(counts[2] > 0, "jittered rows are stochastic: {counts:?}");
        assert!(counts[3] > 0, "broadcast deterministic rows fall back to the heap: {counts:?}");
        assert_eq!(plan.execute(), expected);
    }

    /// Re-registering the same stream dedups; pushing a stream under a
    /// mismatched calibration panics like `simulate_classified`.
    #[test]
    fn stream_registration_dedups_by_address() {
        let ops = log_of(&[(Op::Stat, 10)]);
        let cfg = LaunchConfig::default();
        let stream = ClassifiedStream::classify(&ops, &cfg);
        let mut plan = BatchPlan::new();
        assert_eq!(plan.stream(&stream), plan.stream(&stream));
    }

    #[test]
    #[should_panic(expected = "different latency calibration")]
    fn mismatched_calibration_panics_at_push() {
        let ops = log_of(&[(Op::Stat, 10)]);
        let cfg = LaunchConfig::default();
        let stream = ClassifiedStream::classify(&ops, &cfg);
        let mut plan = BatchPlan::new();
        let id = plan.stream(&stream);
        let mut other = cfg;
        other.rtt_ns += 1;
        plan.push(id, &other);
    }

    /// Fault-injected rows demote to the heap class, replay through the
    /// faulty engine, and still match per-call `simulate_classified` row
    /// for row — seeds collapsing only for draw-free models.
    #[test]
    fn faulted_rows_match_per_call_path() {
        use crate::fault::FaultModel;
        let base = LaunchConfig::default();
        let ops = log_of(&[(Op::Stat, base.rtt_ns), (Op::Openat, base.rtt_ns * 2)]);
        let faults = [
            FaultModel::None,
            FaultModel::ServerStall { at_ns: 1_000_000, duration_ns: 400_000_000 },
            FaultModel::RpcLoss {
                loss_milli: 200,
                timeout_ns: 2_000_000,
                backoff_base_ns: 500_000,
                max_retries: 4,
            },
            FaultModel::Stragglers { frac_milli: 300, slow_milli: 3000 },
        ];
        for dist in ServiceDistribution::all() {
            let cfg = cfg_with(dist, 1024, false);
            let stream = ClassifiedStream::classify(&ops, &cfg);
            let mut plan = BatchPlan::new();
            let id = plan.stream(&stream);
            let mut expected = Vec::new();
            for fault in faults {
                for seed in [1u64, 99] {
                    let c = cfg.clone().with_seed(seed).with_fault(fault);
                    plan.push(id, &c);
                    expected.push(simulate_classified(&stream, &c));
                }
            }
            assert_eq!(plan.execute(), expected, "dist={}", dist.name());
        }
    }

    /// Kernel dedup: rows differing only in overheads, warm fleet, or
    /// (deterministic) seed share one kernel, yet scatter distinct
    /// results.
    #[test]
    fn deduped_kernels_still_scatter_per_row_results() {
        let base = LaunchConfig::default();
        let ops = log_of(&[(Op::Stat, base.rtt_ns), (Op::Openat, base.rtt_ns)]);
        let stream = ClassifiedStream::classify(&ops, &base);
        let mut plan = BatchPlan::new();
        let id = plan.stream(&stream);
        let mut cfgs = Vec::new();
        for seed in [1u64, 99] {
            let mut c = base.clone().with_ranks(512).with_seed(seed);
            c.base_overhead_ns = seed * 1000;
            cfgs.push(c);
        }
        for c in &cfgs {
            plan.push(id, c);
        }
        let got = plan.execute();
        assert_eq!(got[0], simulate_classified(&stream, &cfgs[0]));
        assert_eq!(got[1], simulate_classified(&stream, &cfgs[1]));
        assert_ne!(got[0].time_to_launch_ns, got[1].time_to_launch_ns);
    }

    /// Topology joins the kernel key: rows over every fleet shape (and
    /// both routing policies) plan and scatter bit-identically to the
    /// per-call path, with `LeastLoaded` multi-server rows demoted to
    /// the heap class.
    #[test]
    fn topology_rows_match_per_call_path() {
        let base = LaunchConfig::default();
        let ops = log_of(&[(Op::Stat, base.rtt_ns), (Op::Openat, base.rtt_ns * 2)]);
        let tops = [
            ServerTopology::single(),
            ServerTopology::hash(2),
            ServerTopology::hash(8),
            ServerTopology::least_loaded(3),
        ];
        for dist in ServiceDistribution::all() {
            let cfg = cfg_with(dist, 2048, false);
            let stream = ClassifiedStream::classify(&ops, &cfg);
            let mut plan = BatchPlan::new();
            let id = plan.stream(&stream);
            let mut expected = Vec::new();
            for top in tops {
                for ranks in [64usize, 2048] {
                    let c = cfg.clone().with_ranks(ranks).with_topology(top).with_seed(7);
                    plan.push(id, &c);
                    expected.push(simulate_classified(&stream, &c));
                }
            }
            if dist.is_deterministic() {
                let counts = plan.class_counts();
                assert!(counts[1] > 0, "hash fleets stay analytic: {counts:?}");
                assert!(counts[3] > 0, "least-loaded fleets demote to the heap: {counts:?}");
            }
            assert_eq!(plan.execute(), expected, "dist={}", dist.name());
        }
    }
}

//! The discrete-event launch simulation.
//!
//! One shared metadata server (FIFO, deterministic service time), N node
//! clients each replaying the captured op stream *sequentially* — the
//! dynamic loader issues one syscall at a time, so a node cannot pipeline
//! its own lookups. Contention emerges naturally: every node's cold op
//! must pass through the single server queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use depchaos_vfs::{Op, StraceLog};

use crate::config::{LaunchConfig, LaunchResult};

/// Classification of one op for the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum OpClass {
    /// Round-trips to the server (cold metadata, or data reads).
    /// `client_extra_ns` is time the client spends consuming the response
    /// after the server frees up (stream transfer of read data).
    Server { service_ns: u64, client_extra_ns: u64 },
    /// Satisfied from the client cache.
    Local { cost_ns: u64 },
}

/// Classify the profiled ops. Anything the VFS charged at least an RTT for
/// was a server round trip; reads ship their (size-derived) cost as the
/// service time; the rest is client-local.
fn classify(ops: &StraceLog, cfg: &LaunchConfig) -> Vec<OpClass> {
    ops.entries
        .iter()
        .map(|e| {
            if e.op == Op::Read {
                // Data reads are bandwidth-bound, not IOPS-bound: the server
                // streams to several clients at once, so its per-read
                // occupancy is a fraction of the client-perceived transfer
                // time; the client still spends the full cost receiving.
                let service = (e.cost_ns / 8).max(cfg.meta_service_ns);
                OpClass::Server {
                    service_ns: service,
                    client_extra_ns: e.cost_ns.saturating_sub(service),
                }
            } else if e.cost_ns >= cfg.rtt_ns {
                OpClass::Server { service_ns: cfg.meta_service_ns, client_extra_ns: 0 }
            } else {
                OpClass::Local { cost_ns: e.cost_ns.max(cfg.warm_ns) }
            }
        })
        .collect()
}

/// Simulate launching `cfg.ranks` ranks whose per-rank startup op stream is
/// `ops` (captured by [`crate::profile::profile_load`] on a cold mount).
pub fn simulate_launch(ops: &StraceLog, cfg: &LaunchConfig) -> LaunchResult {
    let classes = classify(ops, cfg);
    let nodes = cfg.nodes();
    // With a broadcast cache only node 0 pays the cold stream; the others
    // see every op warm.
    let cold_nodes = if cfg.broadcast_cache { 1 } else { nodes };

    let mut server_ops = 0u64;
    let mut local_ops = 0u64;

    // Per-node cursor into the op stream and local clock.
    #[derive(Debug)]
    struct Node {
        next_op: usize,
        clock_ns: u64,
        done_ns: u64,
    }
    let mut node_state: Vec<Node> =
        (0..nodes).map(|_| Node { next_op: 0, clock_ns: 0, done_ns: 0 }).collect();

    // Advance a node through local ops until its next server op (or the
    // end); returns Some((issue time, service time)) or None when done.
    fn advance(
        n: &mut Node,
        classes: &[OpClass],
        is_cold: bool,
        warm_ns: u64,
        local_ops: &mut u64,
    ) -> Option<(u64, u64, u64)> {
        while n.next_op < classes.len() {
            match classes[n.next_op] {
                OpClass::Local { cost_ns } => {
                    n.clock_ns += cost_ns;
                    n.next_op += 1;
                    *local_ops += 1;
                }
                OpClass::Server { service_ns, client_extra_ns } => {
                    if !is_cold {
                        // Warm replay: even "server" ops hit the node cache.
                        n.clock_ns += warm_ns;
                        n.next_op += 1;
                        *local_ops += 1;
                        continue;
                    }
                    n.next_op += 1;
                    return Some((n.clock_ns, service_ns, client_extra_ns));
                }
            }
        }
        n.done_ns = n.clock_ns;
        None
    }

    // Event queue of (arrival at server, node, service time, client extra).
    let mut heap: BinaryHeap<Reverse<(u64, usize, u64, u64)>> = BinaryHeap::new();
    for (i, n) in node_state.iter_mut().enumerate() {
        let cold = i < cold_nodes;
        if let Some((t, svc, extra)) = advance(n, &classes, cold, cfg.warm_ns, &mut local_ops) {
            heap.push(Reverse((t + cfg.rtt_ns / 2, i, svc, extra)));
        }
    }

    let mut server_busy_ns = 0u64;
    let mut peak_queue_depth = 0usize;
    while let Some(Reverse((arrival, i, svc, extra))) = heap.pop() {
        peak_queue_depth = peak_queue_depth.max(heap.len() + 1);
        let start = server_busy_ns.max(arrival);
        let done = start + svc;
        server_busy_ns = done;
        server_ops += 1;
        // Client resumes after the response returns and it has consumed the
        // payload (reads stream for client_extra after the server moves on).
        let n = &mut node_state[i];
        n.clock_ns = done + cfg.rtt_ns / 2 + extra;
        let cold = i < cold_nodes;
        if let Some((t, s, e)) = advance(n, &classes, cold, cfg.warm_ns, &mut local_ops) {
            heap.push(Reverse((t + cfg.rtt_ns / 2, i, s, e)));
        }
    }

    // Per-node completion plus serialized per-rank spawn overhead.
    let spawn_ns = cfg.per_rank_overhead_ns * cfg.ranks_per_node.min(cfg.ranks) as u64;
    let slowest = node_state.iter().map(|n| n.done_ns).max().unwrap_or(0);
    LaunchResult {
        time_to_launch_ns: cfg.base_overhead_ns + spawn_ns + slowest,
        nodes,
        server_ops,
        local_ops,
        peak_queue_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_vfs::{Outcome, Syscall};

    fn stream(n_cold: usize, n_warm: usize) -> StraceLog {
        let mut log = StraceLog::new();
        for i in 0..n_cold {
            log.push(Syscall {
                op: Op::Openat,
                path: format!("/lib/cold{i}"),
                outcome: Outcome::Enoent,
                cost_ns: 200_000,
            });
        }
        for i in 0..n_warm {
            log.push(Syscall {
                op: Op::Stat,
                path: format!("/lib/warm{i}"),
                outcome: Outcome::Ok,
                cost_ns: 1_000,
            });
        }
        log
    }

    fn fast_cfg() -> LaunchConfig {
        LaunchConfig { base_overhead_ns: 0, per_rank_overhead_ns: 0, ..LaunchConfig::default() }
    }

    #[test]
    fn single_node_is_rtt_bound() {
        let cfg = fast_cfg().with_ranks(128); // one node
        let r = simulate_launch(&stream(100, 0), &cfg);
        // 100 sequential round trips: ≥ 100 × (rtt + service)
        let min = 100 * (cfg.rtt_ns + cfg.meta_service_ns);
        assert!(r.time_to_launch_ns >= min - cfg.rtt_ns, "{} vs {}", r.time_to_launch_ns, min);
        assert_eq!(r.server_ops, 100);
        assert_eq!(r.nodes, 1);
    }

    #[test]
    fn contention_grows_with_nodes() {
        let ops = stream(500, 0);
        let t4 = simulate_launch(&ops, &fast_cfg().with_ranks(512)).time_to_launch_ns;
        let t16 = simulate_launch(&ops, &fast_cfg().with_ranks(2048)).time_to_launch_ns;
        assert!(t16 > t4, "more nodes, more server queueing: {t4} vs {t16}");
    }

    #[test]
    fn local_ops_do_not_hit_server() {
        let r = simulate_launch(&stream(0, 1000), &fast_cfg().with_ranks(256));
        assert_eq!(r.server_ops, 0);
        assert_eq!(r.local_ops, 2000, "two nodes × 1000 warm ops");
    }

    #[test]
    fn broadcast_cache_collapses_server_load() {
        let ops = stream(400, 0);
        let normal = simulate_launch(&ops, &fast_cfg().with_ranks(2048));
        let mut cfg = fast_cfg().with_ranks(2048);
        cfg.broadcast_cache = true;
        let spindle = simulate_launch(&ops, &cfg);
        assert_eq!(normal.server_ops, 16 * 400);
        assert_eq!(spindle.server_ops, 400, "only one node pays cold");
        assert!(spindle.time_to_launch_ns < normal.time_to_launch_ns);
    }

    #[test]
    fn node_granularity_matters_not_rank_count() {
        // NFS load is per *node* (shared page cache): the same 1024 ranks
        // on fewer, fatter nodes hit the server less.
        let ops = stream(300, 0);
        let fat = LaunchConfig {
            ranks: 1024,
            ranks_per_node: 256, // 4 nodes
            base_overhead_ns: 0,
            per_rank_overhead_ns: 0,
            ..LaunchConfig::default()
        };
        let thin = LaunchConfig { ranks_per_node: 64, ..fat.clone() }; // 16 nodes
        let rf = simulate_launch(&ops, &fat);
        let rt = simulate_launch(&ops, &thin);
        assert_eq!(rf.server_ops, 4 * 300);
        assert_eq!(rt.server_ops, 16 * 300);
        assert!(rt.time_to_launch_ns >= rf.time_to_launch_ns);
    }

    #[test]
    fn read_heavy_stream_slower_than_meta_only() {
        // Same op count, but reads carry payload time the client must absorb.
        let mut meta = StraceLog::new();
        let mut reads = StraceLog::new();
        for i in 0..100 {
            meta.push(Syscall {
                op: Op::Openat,
                path: format!("/l/{i}"),
                outcome: Outcome::Ok,
                cost_ns: 200_000,
            });
            reads.push(Syscall {
                op: Op::Read,
                path: format!("/l/{i}"),
                outcome: Outcome::Ok,
                cost_ns: 4_000_000, // 1 MiB over the wire
            });
        }
        let cfg = fast_cfg().with_ranks(128);
        let tm = simulate_launch(&meta, &cfg).time_to_launch_ns;
        let tr = simulate_launch(&reads, &cfg).time_to_launch_ns;
        assert!(tr > tm * 5, "payload dominates: {tm} vs {tr}");
    }

    #[test]
    fn deterministic() {
        let ops = stream(200, 50);
        let a = simulate_launch(&ops, &fast_cfg());
        let b = simulate_launch(&ops, &fast_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_overheads_added_once() {
        let cfg = LaunchConfig { ranks: 128, ..LaunchConfig::default() };
        let r = simulate_launch(&stream(0, 0), &cfg);
        let expect = cfg.base_overhead_ns + cfg.per_rank_overhead_ns * 128;
        assert_eq!(r.time_to_launch_ns, expect);
    }
}

//! The discrete-event launch simulation.
//!
//! A fleet of `S` shared metadata servers (FIFO, deterministic service
//! time; `cfg.topology` — the default is the paper's single server), N
//! node clients each replaying the captured op stream *sequentially* — the
//! dynamic loader issues one syscall at a time, so a node cannot pipeline
//! its own lookups. Contention emerges naturally: every node's cold op
//! must pass through its server's queue. Each server keeps its own
//! busy-until lane; requests route by the topology's
//! [`AssignPolicy`] — `HashByNode` pins node `i` to lane `i % S`
//! (seed-free, schedule-independent), `LeastLoaded` picks the earliest
//! lane at service time with index tie-breaks. `S = 1` reduces every
//! engine below to the pre-topology arithmetic bit for bit.
//!
//! # The hot path: classify once, then the cheapest exact regime
//!
//! Simulation is split into two phases so a rank sweep pays classification
//! exactly once:
//!
//! 1. [`ClassifiedStream::classify`] turns the raw [`StraceLog`] into a
//!    compact schedule: one segment per server round trip (its preceding
//!    local-compute time folded into a single number) plus aggregate
//!    counts. This is the only pass that touches the op stream, and its
//!    output is immutable — [`crate::sweep_ranks`] and the experiment
//!    engine share one `ClassifiedStream` across every rank point of a
//!    cell instead of re-deriving (and re-allocating) it per point.
//! 2. [`simulate_classified`] runs the DES against the schedule, picking
//!    the cheapest of **three regimes that all produce bit-identical
//!    results**:
//!
//!    * **Analytic** ([`analytic_all_cold`]) — the symmetric all-cold
//!      fleet under deterministic service: when the segment schedule is
//!      round-major (uniform metadata streams always are), the whole
//!      fleet collapses to a max-plus line-envelope recursion over the
//!      segments, `O(server_ops)` independent of the node count, exact
//!      `peak_queue_depth` included. Warm and serverless nodes are always
//!      coalesced analytically (one replay, multiplied out).
//!    * **Heap** — cold nodes walk the segment schedule through a binary
//!      event heap, one event per *server* op: `O(cold_nodes ×
//!      server_ops · log cold_nodes)`. The fallback whenever the closed
//!      form's guard declines (payload-heavy gaps can break round-major
//!      ordering) and the stochastic path's engine.
//!    * **Reference** ([`reference`](mod@reference)) — the retained oracle: every node
//!      walks every op, `O(nodes × ops · log nodes)`. Never used by the
//!      sweeps; exists so the other two have an independent ground truth
//!      (`tests/des_equivalence.rs` and the in-crate suite pin all three
//!      to bit-identical [`LaunchResult`]s by property test).
//!
//! # Stochastic service times
//!
//! `cfg.service_dist` selects the server's per-op service-time model (see
//! [`ServiceDistribution`]). Under `Deterministic` the simulation takes the
//! exact, draw-free paths above — bit-identical to the pre-distribution DES
//! whatever the seed. The stochastic variants scale each segment's service
//! time by one factor drawn from the cold node's own
//! [`SplitMix::split`]`(cfg.seed, SplitMix::NODE, node)` stream, consumed
//! strictly in segment order, so:
//!
//! * every draw reproduces from `(seed, node, segment index)` alone —
//!   independent of heap interleaving, replicate fan-out, or rayon
//!   scheduling;
//! * warm and serverless nodes take no draws and stay coalesced (they never
//!   occupy the server, so they remain symmetric even under jitter);
//! * the [`reference`](mod@reference) oracle draws the *same* per-(node, segment) factors,
//!   keeping the fast path property-testable bit-identical in the
//!   stochastic regimes too.
//!
//! # The RNG stream-domain map
//!
//! Every random draw in the launch stack comes from a
//! [`SplitMix::split`]`(seed, domain, stream)` generator; the domain
//! constant says who owns the draw, and no two domains can alias (each
//! input goes through the full SplitMix finalizer):
//!
//! | domain | stream index | draws |
//! |---|---|---|
//! | [`SplitMix::NODE`] | cold node index | per-(node, segment) service factors, here |
//! | [`SplitMix::REPLICATE`] | replicate `r ≥ 1` | one `u64`: replicate `r`'s config seed ([`crate::replicate_seed`]) |
//! | [`SplitMix::WORKLOAD`] | scenario-label digest | one `u64`: the cell's base seed ([`crate::scenario_seed`]) |
//! | [`SplitMix::FAULT`] | cold node index | RPC-loss verdicts and straggler membership ([`FaultModel`]) |
//!
//! The flow is `experiment seed → WORKLOAD → cell seed → REPLICATE →
//! replicate seed → NODE → service factors`; each arrow is a domain hop,
//! so a value drawn at one level can never equal a state or a draw at
//! another. (The pre-domain scheme violated exactly this: replicate `r`'s
//! seed *was* node `r`'s first service draw of replicate 0, and node 0's
//! stream *was* the base generator — stochastic results produced before
//! the fix come from correlated streams and are not comparable.)
//!
//! The client-side payload time of a read (`client_extra_ns`) is fixed at
//! classification: jitter models server occupancy variance, not the
//! transfer the client has to absorb either way.
//!
//! # Fault injection
//!
//! `cfg.fault` (a [`FaultModel`]) selects a degraded-mode engine,
//! `heap_schedule_faulty`: server brownout stalls postpone service
//! starts, lost RPC responses are re-issued after client timeout plus
//! exponential backoff (each retry is real extra server work), and a
//! seeded fraction of cold nodes runs slow. Every fault draw comes from
//! the FAULT domain, per cold node in that node's own event order —
//! decorrelated from the NODE-domain service draws, so a faulted and a
//! healthy cell of the same seed share service times (common random
//! numbers). [`FaultModel::None`] never enters the faulty engine; its
//! results are bit-identical to the pre-fault DES. [`reference`](mod@reference) carries
//! the same fault semantics as the oracle, and `LaunchResult.server_ops`
//! keeps counting *distinct* ops — retried attempts are accounted
//! separately in `retries_issued`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use depchaos_vfs::{Op, StraceLog};
use depchaos_workloads::SplitMix;

use crate::config::{AssignPolicy, LaunchConfig, LaunchResult, ServiceDistribution};
use crate::fault::{backoff_ns, FaultCounts, FaultModel};

/// The per-server busy-until clocks of a [`crate::ServerTopology`] fleet,
/// plus the routing policy. `S = 1` degenerates to the pre-topology single
/// `server_busy_ns` cell exactly: one lane, always picked, same max/add
/// sequence. Shared by the healthy heap, the faulty heap, and the
/// [`reference`](mod@reference) oracle so all three route identically.
pub(crate) struct ServerLanes {
    /// Busy-until clock per server, indexed by lane.
    pub(crate) busy_ns: Vec<u64>,
    assign: AssignPolicy,
}

impl ServerLanes {
    pub(crate) fn new(cfg: &LaunchConfig) -> Self {
        ServerLanes { busy_ns: vec![0; cfg.topology.servers.max(1)], assign: cfg.topology.assign }
    }

    /// The lane serving `node`'s request popped at this instant. Both
    /// policies are draw-free: `HashByNode` is a pure function of the node
    /// index, `LeastLoaded` of the current busy clocks (ties to the lowest
    /// lane index).
    pub(crate) fn pick(&self, node: usize) -> usize {
        match self.assign {
            AssignPolicy::HashByNode => node % self.busy_ns.len(),
            AssignPolicy::LeastLoaded => {
                let mut best = 0usize;
                for l in 1..self.busy_ns.len() {
                    if self.busy_ns[l] < self.busy_ns[best] {
                        best = l;
                    }
                }
                best
            }
        }
    }

    /// Serve one request on `lane`: FIFO after the lane's previous work,
    /// never before `arrival`. Returns the completion instant.
    pub(crate) fn serve(&mut self, lane: usize, arrival: u64, service_ns: u64) -> u64 {
        let start = self.busy_ns[lane].max(arrival);
        let done = start + service_ns;
        self.busy_ns[lane] = done;
        done
    }
}

/// The [`LaunchConfig`] fields classification depends on. Two configs with
/// equal `ClassifyParams` can share one [`ClassifiedStream`] — rank count,
/// node shape, overheads, cache policy, and *seed* all vary freely across a
/// sweep (and across stochastic replicates) without reclassifying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassifyParams {
    pub rtt_ns: u64,
    pub meta_service_ns: u64,
    pub warm_ns: u64,
    /// The service distribution the stream will be simulated under. It does
    /// not change the segment schedule itself, but keying it here keeps a
    /// memoized [`ClassifiedStream`] honest about what it will be replayed
    /// as — and deliberately excludes the seed, so replicates share one
    /// classification.
    pub dist: ServiceDistribution,
}

impl ClassifyParams {
    /// The classification-relevant slice of `cfg`.
    pub fn of(cfg: &LaunchConfig) -> Self {
        ClassifyParams {
            rtt_ns: cfg.rtt_ns,
            meta_service_ns: cfg.meta_service_ns,
            warm_ns: cfg.warm_ns,
            dist: cfg.service_dist,
        }
    }
}

/// Hard ceiling on one drawn service time: ~18 minutes. Far beyond any
/// physical metadata op, but low enough that even a pathological stream
/// (millions of server ops all drawn at the cap) sums well inside `u64`
/// nanoseconds — the event loop's clock arithmetic stays overflow-free
/// without saturating every addition.
const MAX_SERVICE_NS: u64 = 1 << 40;

/// Apply a drawn factor to a base service time. Rounds toward zero and
/// clamps to `1..=MAX_SERVICE_NS`: a pathological tail draw can neither
/// produce a zero-occupancy server op nor overflow the simulation clocks.
/// Crate-visible so [`crate::batch`]'s stochastic rows draw identically.
pub(crate) fn scale_service_ns(base_ns: u64, factor: f64) -> u64 {
    let scaled = base_ns as f64 * factor;
    if scaled >= MAX_SERVICE_NS as f64 {
        return MAX_SERVICE_NS;
    }
    (scaled as u64).max(1)
}

/// One server round trip in the schedule: the local compute a node performs
/// since its previous server op, then the request itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ServerSeg {
    /// Client-local time spent before issuing this request.
    pub(crate) pre_local_ns: u64,
    /// Server-side occupancy of the request.
    pub(crate) service_ns: u64,
    /// Client-side time consuming the response after the server moves on
    /// (streaming transfer of read payloads).
    pub(crate) client_extra_ns: u64,
}

/// A classified, compacted op stream: the reusable input to
/// [`simulate_classified`]. Build one per (op stream, [`ClassifyParams`])
/// and sweep as many rank points over it as you like.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifiedStream {
    params: ClassifyParams,
    /// One entry per server-class op, in stream order.
    segments: Vec<ServerSeg>,
    /// Local compute after the last server op.
    tail_local_ns: u64,
    /// Total ops in the original stream.
    n_ops: u64,
    /// Ops classified client-local (for a cold node).
    n_local: u64,
}

impl ClassifiedStream {
    /// Classify the profiled ops under `cfg`'s latency calibration.
    /// Anything the VFS charged at least an RTT for was a server round
    /// trip; reads ship their (size-derived) cost as the service time; the
    /// rest is client-local.
    pub fn classify(ops: &StraceLog, cfg: &LaunchConfig) -> Self {
        let params = ClassifyParams::of(cfg);
        let mut segments = Vec::new();
        let mut pre_local_ns = 0u64;
        let mut n_local = 0u64;
        for e in &ops.entries {
            if e.op == Op::Read {
                // Data reads are bandwidth-bound, not IOPS-bound: the server
                // streams to several clients at once, so its per-read
                // occupancy is a fraction of the client-perceived transfer
                // time; the client still spends the full cost receiving.
                let service = (e.cost_ns / 8).max(params.meta_service_ns);
                segments.push(ServerSeg {
                    pre_local_ns,
                    service_ns: service,
                    client_extra_ns: e.cost_ns.saturating_sub(service),
                });
                pre_local_ns = 0;
            } else if e.cost_ns >= params.rtt_ns {
                segments.push(ServerSeg {
                    pre_local_ns,
                    service_ns: params.meta_service_ns,
                    client_extra_ns: 0,
                });
                pre_local_ns = 0;
            } else {
                pre_local_ns += e.cost_ns.max(params.warm_ns);
                n_local += 1;
            }
        }
        ClassifiedStream {
            params,
            segments,
            tail_local_ns: pre_local_ns,
            n_ops: ops.entries.len() as u64,
            n_local,
        }
    }

    /// The parameters this stream was classified under.
    pub fn params(&self) -> ClassifyParams {
        self.params
    }

    /// Server round trips one cold replay performs.
    pub fn server_ops(&self) -> u64 {
        self.segments.len() as u64
    }

    /// Total ops in the underlying stream.
    pub fn len(&self) -> u64 {
        self.n_ops
    }

    pub fn is_empty(&self) -> bool {
        self.n_ops == 0
    }

    /// A cold node's total client-local compute (excludes server waits).
    pub fn local_total_ns(&self) -> u64 {
        self.segments.iter().map(|s| s.pre_local_ns).sum::<u64>() + self.tail_local_ns
    }

    /// Wall time of one fully warm replay: every op, server-class or not,
    /// hits the node cache... except locals keep their own (higher) cost.
    pub(crate) fn warm_replay_ns(&self) -> u64 {
        self.local_total_ns() + self.server_ops() * self.params.warm_ns
    }

    /// The per-server-op schedule, for the in-crate analytic consumers
    /// ([`crate::queueing`]).
    pub(crate) fn server_segments(&self) -> &[ServerSeg] {
        &self.segments
    }

    /// Local compute after the last server op.
    pub(crate) fn tail_local(&self) -> u64 {
        self.tail_local_ns
    }

    /// Ops classified client-local on a cold node (the accounting column
    /// [`crate::batch`] scatters per row).
    pub(crate) fn n_local(&self) -> u64 {
        self.n_local
    }
}

/// Simulate launching `cfg.ranks` ranks whose per-rank startup op stream is
/// `ops` (captured by [`crate::profile::profile_load`] on a cold mount).
///
/// Classifies and simulates in one call; when sweeping several rank points
/// over one stream, build the [`ClassifiedStream`] once and call
/// [`simulate_classified`] per point instead.
pub fn simulate_launch(ops: &StraceLog, cfg: &LaunchConfig) -> LaunchResult {
    simulate_classified(&ClassifiedStream::classify(ops, cfg), cfg)
}

/// The DES over a pre-classified stream. Exact — bit-identical to
/// [`reference::simulate_launch_reference`] — but warm nodes cost O(1) and
/// cold nodes cost one heap event per *server* op.
///
/// Panics if `cfg`'s latency calibration differs from the one the stream
/// was classified under (rank count, node shape, overheads, and cache
/// policy may differ freely).
pub fn simulate_classified(stream: &ClassifiedStream, cfg: &LaunchConfig) -> LaunchResult {
    assert_eq!(
        stream.params(),
        ClassifyParams::of(cfg),
        "ClassifiedStream reused under a different latency calibration; reclassify"
    );
    let nodes = cfg.nodes();
    // With a broadcast cache only node 0 pays the cold stream; the others
    // see every op warm.
    let cold_nodes = if cfg.broadcast_cache { 1 } else { nodes };
    let warm_nodes = nodes - cold_nodes;

    // Warm nodes never interact with the server and replay identical
    // streams: one analytic replay covers them all.
    let warm_done_ns = if warm_nodes > 0 { stream.warm_replay_ns() } else { 0 };
    let mut local_ops = warm_nodes as u64 * stream.n_ops;

    // Every cold node consumes the same local-class ops regardless of how
    // the server queue interleaves them.
    local_ops += cold_nodes as u64 * stream.n_local;
    let server_ops = cold_nodes as u64 * stream.server_ops();

    let (cold_done_ns, peak_queue_depth, fc) = if stream.segments.is_empty() {
        // No server traffic: cold nodes take no draws under any
        // distribution, so they are symmetric too — coalesce. No fault can
        // manifest either (stalls, losses, and straggler slowdowns all act
        // on server ops), so the fault engine is skipped and the counts
        // stay zero.
        (stream.local_total_ns(), 0, FaultCounts::default())
    } else if !cfg.fault.is_none() {
        // Degraded mode: the faulty event heap is the only engine —
        // retries break the closed form's round-major symmetry and stalls
        // its service pacing, so faulted rows never coalesce analytically.
        heap_schedule_faulty(stream, cfg, cold_nodes)
    } else if cfg.service_dist.is_deterministic() {
        // The exact fast path: no RNG is even constructed, and when the
        // fleet is symmetric with a round-major segment schedule (see
        // `all_cold_closed_form`) not even the event heap — the cold fleet
        // collapses to a line-envelope recursion over the segments. A lone
        // cold node keeps the heap: its O(server_ops) walk is cheaper than
        // maintaining the envelope.
        let (done, peak) = (cold_nodes > 1)
            .then(|| all_cold_closed_form(stream, cfg, cold_nodes))
            .flatten()
            .unwrap_or_else(|| heap_schedule(stream, cfg, cold_nodes, |_, seg| seg.service_ns));
        (done, peak, FaultCounts::default())
    } else {
        // Stochastic: one independent draw stream per cold node, consumed
        // in segment order (each node's events are pushed sequentially), so
        // the factor for (node, segment) is schedule-independent.
        let dist = cfg.service_dist;
        let mut rngs: Vec<SplitMix> =
            (0..cold_nodes).map(|i| SplitMix::split(cfg.seed, SplitMix::NODE, i as u64)).collect();
        let (done, peak) = heap_schedule(stream, cfg, cold_nodes, |i, seg| {
            scale_service_ns(seg.service_ns, dist.sample(&mut rngs[i]))
        });
        (done, peak, FaultCounts::default())
    };

    // Per-node completion plus serialized per-rank spawn overhead.
    let spawn_ns = cfg.per_rank_overhead_ns * cfg.ranks_per_node.min(cfg.ranks) as u64;
    let slowest = cold_done_ns.max(warm_done_ns);
    LaunchResult {
        time_to_launch_ns: cfg.base_overhead_ns + spawn_ns + slowest,
        nodes,
        server_ops,
        local_ops,
        peak_queue_depth,
        retries_issued: fc.retries,
        timeouts_hit: fc.timeouts,
        max_backoff_ns: fc.max_backoff_ns,
        slowed_nodes: fc.slowed_nodes,
    }
}

/// The event loop shared by the exact and stochastic paths: `cold_nodes`
/// cursors over the segment schedule, one heap event per server op.
/// `draw(node, segment)` supplies the service time — the deterministic
/// instantiation reads it straight off the segment, the stochastic one
/// scales it by the node's next factor. Returns `(slowest cold finish,
/// peak queue depth)`. Crate-visible: [`crate::batch`] runs it per kernel
/// job for the heap-fallback and stochastic solver classes.
pub(crate) fn heap_schedule(
    stream: &ClassifiedStream,
    cfg: &LaunchConfig,
    cold_nodes: usize,
    mut draw: impl FnMut(usize, &ServerSeg) -> u64,
) -> (u64, usize) {
    // Per-node cursor into the segment schedule and local clock. Only
    // cold nodes exist here, and only their server ops are events.
    struct Node {
        next_seg: usize,
        clock_ns: u64,
    }
    let mut node_state: Vec<Node> =
        (0..cold_nodes).map(|_| Node { next_seg: 0, clock_ns: 0 }).collect();

    // Event queue of (arrival at server, node, service time, client
    // extra) — the tuple layout (and so the tie-breaking order) of the
    // reference implementation.
    let mut heap: BinaryHeap<Reverse<(u64, usize, u64, u64)>> =
        BinaryHeap::with_capacity(cold_nodes);
    let first = stream.segments[0];
    for (i, n) in node_state.iter_mut().enumerate() {
        n.clock_ns = first.pre_local_ns;
        heap.push(Reverse((
            n.clock_ns + cfg.rtt_ns / 2,
            i,
            draw(i, &first),
            first.client_extra_ns,
        )));
    }

    let mut peak_queue_depth = 0usize;
    let mut lanes = ServerLanes::new(cfg);
    let mut done_max_ns = 0u64;
    while let Some(Reverse((arrival, i, svc, extra))) = heap.pop() {
        peak_queue_depth = peak_queue_depth.max(heap.len() + 1);
        let done = lanes.serve(lanes.pick(i), arrival, svc);
        // Client resumes after the response returns and it has consumed
        // the payload (reads stream for `extra` after the server moves
        // on), then computes locally until its next request.
        let n = &mut node_state[i];
        n.clock_ns = done + cfg.rtt_ns / 2 + extra;
        n.next_seg += 1;
        match stream.segments.get(n.next_seg) {
            Some(seg) => {
                n.clock_ns += seg.pre_local_ns;
                heap.push(Reverse((
                    n.clock_ns + cfg.rtt_ns / 2,
                    i,
                    draw(i, seg),
                    seg.client_extra_ns,
                )));
            }
            None => {
                n.clock_ns += stream.tail_local_ns;
                done_max_ns = done_max_ns.max(n.clock_ns);
            }
        }
    }
    (done_max_ns, peak_queue_depth)
}

/// The degraded-mode event loop: [`heap_schedule`]'s walk with `cfg.fault`
/// executed event-accurately. Kept separate from the healthy engine — the
/// million-rank bench gates that loop, and [`FaultModel::None`] rows never
/// enter this one. The semantics, identical in [`reference`](mod@reference):
///
/// * **ServerStall** — an op whose service would *start* inside
///   `[at_ns, at_ns + duration_ns)` waits until the window closes;
///   in-flight service completes. Draw-free.
/// * **RpcLoss** — after the server finishes an op (the work is done and
///   the server-busy clock stands), the response is lost with probability
///   `loss_milli / 1000` unless this was the node's attempt `max_retries`
///   (forced success, no draw taken). A lost op is re-issued at
///   `t_send + timeout_ns + backoff_base_ns · 2^attempt` with the *same*
///   drawn service time — the retry is the same request, so no new NODE
///   draw — and the node's segment cursor does not advance.
/// * **Stragglers** — before any event, cold node `i` draws membership
///   (`below(1000) < frac_milli`); members scale every (possibly
///   dist-scaled) service time by `slow_milli / 1000` through the same
///   clamp as the distribution factor.
///
/// Fault draws come from `SplitMix::split(cfg.seed, FAULT, node)`, consumed
/// in the node's own event order — a node has exactly one outstanding
/// request, so its verdict sequence is heap-schedule-independent, which is
/// what keeps this engine and the reference oracle bit-identical.
pub(crate) fn heap_schedule_faulty(
    stream: &ClassifiedStream,
    cfg: &LaunchConfig,
    cold_nodes: usize,
) -> (u64, usize, FaultCounts) {
    let fault = cfg.fault;
    let dist = cfg.service_dist;
    let half_rtt = cfg.rtt_ns / 2;
    let mut counts = FaultCounts::default();

    let mut dist_rngs: Vec<SplitMix> = if dist.is_deterministic() {
        Vec::new()
    } else {
        (0..cold_nodes).map(|i| SplitMix::split(cfg.seed, SplitMix::NODE, i as u64)).collect()
    };
    let mut fault_rngs: Vec<SplitMix> = if fault.takes_draws() {
        (0..cold_nodes).map(|i| SplitMix::split(cfg.seed, SplitMix::FAULT, i as u64)).collect()
    } else {
        Vec::new()
    };

    // Straggler membership: one FAULT draw per cold node, in node order,
    // before any event executes.
    let (slow, slow_factor) = match fault {
        FaultModel::Stragglers { frac_milli, slow_milli } => (
            (0..cold_nodes)
                .map(|i| fault_rngs[i].below(1000) < frac_milli as u64)
                .collect::<Vec<bool>>(),
            slow_milli as f64 / 1000.0,
        ),
        _ => (Vec::new(), 1.0),
    };
    counts.slowed_nodes = slow.iter().filter(|&&s| s).count();

    let mut svc_for = |i: usize, seg: &ServerSeg| -> u64 {
        let mut svc = if dist.is_deterministic() {
            seg.service_ns
        } else {
            scale_service_ns(seg.service_ns, dist.sample(&mut dist_rngs[i]))
        };
        if slow.get(i).copied().unwrap_or(false) {
            svc = scale_service_ns(svc, slow_factor);
        }
        svc
    };

    struct Node {
        next_seg: usize,
        clock_ns: u64,
        /// Retry attempt of the node's outstanding request (RpcLoss).
        attempt: u32,
    }
    let mut node_state: Vec<Node> =
        (0..cold_nodes).map(|_| Node { next_seg: 0, clock_ns: 0, attempt: 0 }).collect();

    let mut heap: BinaryHeap<Reverse<(u64, usize, u64, u64)>> =
        BinaryHeap::with_capacity(cold_nodes);
    let first = stream.segments[0];
    for (i, n) in node_state.iter_mut().enumerate() {
        n.clock_ns = first.pre_local_ns;
        heap.push(Reverse((n.clock_ns + half_rtt, i, svc_for(i, &first), first.client_extra_ns)));
    }

    let mut peak_queue_depth = 0usize;
    let mut lanes = ServerLanes::new(cfg);
    let mut done_max_ns = 0u64;
    while let Some(Reverse((arrival, i, svc, extra))) = heap.pop() {
        peak_queue_depth = peak_queue_depth.max(heap.len() + 1);
        let lane = lanes.pick(i);
        let mut start = lanes.busy_ns[lane].max(arrival);
        if let FaultModel::ServerStall { at_ns, duration_ns } = fault {
            // A brownout stalls the whole fleet: every lane's start inside
            // the window waits for it to close.
            let end = at_ns.saturating_add(duration_ns);
            if start >= at_ns && start < end {
                start = end;
            }
        }
        let done = start + svc;
        lanes.busy_ns[lane] = done;
        let n = &mut node_state[i];
        if let FaultModel::RpcLoss { loss_milli, timeout_ns, backoff_base_ns, max_retries } = fault
        {
            if n.attempt < max_retries && fault_rngs[i].below(1000) < loss_milli as u64 {
                // Response lost: the server did the work (the busy clock
                // above stands) but the client never hears back. It times
                // out relative to its own send instant, sleeps its
                // exponential backoff, and re-issues the same request.
                let t_send = arrival - half_rtt;
                let backoff = backoff_ns(backoff_base_ns, n.attempt);
                counts.note_retry(backoff);
                n.attempt += 1;
                let resend = t_send.saturating_add(timeout_ns).saturating_add(backoff);
                heap.push(Reverse((resend.saturating_add(half_rtt), i, svc, extra)));
                continue;
            }
            n.attempt = 0;
        }
        n.clock_ns = done + half_rtt + extra;
        n.next_seg += 1;
        match stream.segments.get(n.next_seg) {
            Some(seg) => {
                n.clock_ns += seg.pre_local_ns;
                heap.push(Reverse((
                    n.clock_ns + half_rtt,
                    i,
                    svc_for(i, seg),
                    seg.client_extra_ns,
                )));
            }
            None => {
                n.clock_ns += stream.tail_local_ns;
                done_max_ns = done_max_ns.max(n.clock_ns);
            }
        }
    }
    (done_max_ns, peak_queue_depth, counts)
}

/// The analytic all-cold fast path: `simulate_classified`'s deterministic
/// no-broadcast regime without the event heap. Returns the full
/// [`LaunchResult`] when the closed form applies (see
/// `all_cold_closed_form` for the exactness guard), `None` when the
/// segment schedule forces a heap replay — callers and tests can tell
/// *whether* the analytic regime engaged, and the result is bit-identical
/// to [`simulate_classified`] whenever it does.
pub fn analytic_all_cold(stream: &ClassifiedStream, cfg: &LaunchConfig) -> Option<LaunchResult> {
    if !cfg.service_dist.is_deterministic()
        || !cfg.fault.is_none()
        || cfg.broadcast_cache
        || stream.segments.is_empty()
    {
        return None;
    }
    let nodes = cfg.nodes();
    let (cold_done_ns, peak_queue_depth) = all_cold_closed_form(stream, cfg, nodes)?;
    let spawn_ns = cfg.per_rank_overhead_ns * cfg.ranks_per_node.min(cfg.ranks) as u64;
    Some(LaunchResult {
        time_to_launch_ns: cfg.base_overhead_ns + spawn_ns + cold_done_ns,
        nodes,
        server_ops: nodes as u64 * stream.server_ops(),
        local_ops: nodes as u64 * stream.n_local,
        peak_queue_depth,
        ..Default::default()
    })
}

/// Upper bound on the line-envelope size before the closed form bails to
/// the heap. The envelope holds at most one line per *distinct* service
/// time still live, so real op streams (metadata ops share
/// `meta_service_ns`; reads bucket by size) stay in single digits — the cap
/// only guards adversarial streams where O(lines) per segment would
/// degenerate toward O(server_ops²).
const MAX_ENVELOPE_LINES: usize = 64;

/// Closed form for the symmetric all-cold fleet under deterministic
/// service: `cold_nodes` identical nodes replay the segment schedule
/// through the FIFO server, and the result is **bit-identical** to
/// [`heap_schedule`] — `(slowest cold finish, peak queue depth)` — computed
/// in `O(server_ops × envelope lines)` independent of the node count.
///
/// # Why this is exact
///
/// Every node issues segment 0 at the same instant, so the heap serves
/// round 0 in node order, and completions within a round are the Lindley
/// recursion `D(i,k) = max(D(i-1,k), A(i,k)) + s_k` whose unrolled solution
/// is a **max-plus envelope of lines in the node index**: round 0 is the
/// single line `a₀ + (i+1)·s₀`. Each next round keeps the lines steeper
/// than `s_k` (arrival-paced nodes, shifted by the inter-op gap and one
/// service), folds the flatter ones into the server-paced chain line of
/// slope `s_k`, and the envelope never grows beyond one line per distinct
/// service time. The slowest finish is the envelope at `i = N-1` plus the
/// response/tail time, and the peak queue depth is exactly `cold_nodes`:
/// from the first pop until the first node retires, every node keeps one
/// outstanding request in the calendar.
///
/// # The round-major guard
///
/// The recursion assumes the server drains round `k` completely before
/// touching round `k+1` — true iff the *earliest* round-`k+1` arrival lands
/// strictly after the *latest* round-`k` arrival. Since
/// `D(0,k) ≥ D(N-1,k-1) + s_k`, the condition `s_k + gap_k > gap_{k-1}`
/// per consecutive segment pair guarantees it for any node count (gap =
/// rtt + client extra + next pre-local). Uniform metadata streams satisfy
/// it trivially; a payload-heavy read followed by a bare stat can violate
/// it (its huge gap lets node 0 lap the stragglers), and then we return
/// `None` and let the heap replay the schedule. A single cold node is
/// always round-major.
fn all_cold_closed_form(
    stream: &ClassifiedStream,
    cfg: &LaunchConfig,
    cold_nodes: usize,
) -> Option<(u64, usize)> {
    let segs = &stream.segments;
    let half_rtt = cfg.rtt_ns / 2;

    // Under an S-lane `HashByNode` fleet the lanes are fully independent
    // single-server systems over the same schedule (node `i` only ever
    // talks to lane `i % S`), so the closed form runs per lane; the
    // busiest lane — `ceil(cold / S)` nodes — finishes last (adding a
    // node to a FIFO lane never speeds it up). `LeastLoaded` routing
    // depends on the event schedule, so it is never analytic-eligible.
    let servers = cfg.topology.servers.max(1);
    if servers > 1 && cfg.topology.assign != AssignPolicy::HashByNode {
        return None;
    }
    let lane_nodes = cold_nodes.div_ceil(servers);

    if lane_nodes > 1 && !round_major(segs, half_rtt) {
        return None;
    }

    // The envelope: D(i, round) = max over lines of (c + i·slope), for
    // lane-local node index i in [0, lane_nodes). Round 0: every node
    // arrives at a₀ = pre_local₀ + rtt/2 and is served back to back. Two
    // buffers swap roles per round, so the whole recursion allocates
    // twice, total.
    let last = (lane_nodes - 1) as u64;
    let mut lines: Vec<(u64, u64)> = Vec::with_capacity(8);
    let mut scratch: Vec<(u64, u64)> = Vec::with_capacity(8);
    lines.push(envelope_seed(segs, half_rtt));
    for j in 1..segs.len() {
        if !envelope_round(
            &mut lines,
            &mut scratch,
            segs[j].service_ns,
            seg_gap(segs, half_rtt, j - 1),
            last,
        ) {
            return None;
        }
    }

    Some((envelope_finish(&lines, stream, half_rtt, last), cold_nodes))
}

/// Gap between finishing server op `j` and arriving for op `j + 1`,
/// exactly as the heap accumulates it (half_rtt twice, not rtt once:
/// integer halving must round the same way).
pub(crate) fn seg_gap(segs: &[ServerSeg], half_rtt: u64, j: usize) -> u64 {
    2 * half_rtt + segs[j].client_extra_ns + segs[j + 1].pre_local_ns
}

/// The round-major guard of `all_cold_closed_form`, node-count
/// independent for any fleet of two or more cold nodes: every consecutive
/// segment pair must satisfy `s_k + gap_k > gap_{k-1}`.
pub(crate) fn round_major(segs: &[ServerSeg], half_rtt: u64) -> bool {
    let mut prev_gap = 0u64;
    for (j, seg) in segs[..segs.len() - 1].iter().enumerate() {
        let g = seg_gap(segs, half_rtt, j);
        if seg.service_ns + g <= prev_gap {
            return false;
        }
        prev_gap = g;
    }
    true
}

/// Round 0 of the envelope: every node arrives at `a₀ = pre_local₀ +
/// rtt/2` and is served back to back — the single line `a₀ + (i+1)·s₀`,
/// i.e. `(a₀ + s₀)` at node 0 with slope `s₀`.
pub(crate) fn envelope_seed(segs: &[ServerSeg], half_rtt: u64) -> (u64, u64) {
    let a0 = segs[0].pre_local_ns + half_rtt;
    (a0 + segs[0].service_ns, segs[0].service_ns)
}

/// One round of the max-plus envelope recursion: advance `lines` (the
/// completion envelope of the previous round) across a segment of service
/// time `s` reached over inter-op gap `g_prev`, for a fleet whose last
/// node index is `last`. Returns `false` — envelope abandoned — when the
/// line count exceeds [`MAX_ENVELOPE_LINES`]; the caller falls back to
/// the heap. Shared verbatim by the per-call closed form and the batch
/// lockstep in [`crate::batch`], which is what keeps the two bit-identical.
pub(crate) fn envelope_round(
    lines: &mut Vec<(u64, u64)>,
    scratch: &mut Vec<(u64, u64)>,
    s: u64,
    g_prev: u64,
    last: u64,
) -> bool {
    // Server-paced chain seed: the previous round's last completion —
    // the server cannot start round j before draining round j-1.
    let mut chain = lines.iter().map(|&(c, m)| c + last * m).max().expect("nonempty");
    scratch.clear();
    for &(c, m) in lines.iter() {
        if m > s {
            // Arrival-paced: these nodes arrive slower than the server
            // serves, so they are served on arrival (+ their service).
            scratch.push((c + g_prev + s, m));
        } else {
            // Arrivals at least as fast as service: the stragglers pile
            // behind the server-paced chain.
            chain = chain.max(c + g_prev);
        }
    }
    // The chain line: D = chain + (i+1)·s.
    scratch.push((chain + s, s));
    // Prune lines dominated across the whole index range [0, last]: a
    // line below another at both endpoints is below it everywhere.
    scratch.sort_unstable();
    scratch.dedup();
    lines.clear();
    for &(c, m) in scratch.iter() {
        let end = c + last * m;
        let dominated = scratch.iter().any(|&(c2, m2)| {
            (c2, m2) != (c, m) && c2 >= c && c2 + last * m2 >= end && (c2 > c || m2 > m)
        });
        if !dominated {
            lines.push((c, m));
        }
    }
    lines.len() <= MAX_ENVELOPE_LINES
}

/// Close out the envelope: the slowest node's completion at index `last`
/// plus the response trip and the stream's tail compute.
pub(crate) fn envelope_finish(
    lines: &[(u64, u64)],
    stream: &ClassifiedStream,
    half_rtt: u64,
    last: u64,
) -> u64 {
    let segs = &stream.segments;
    let served_last = lines.iter().map(|&(c, m)| c + last * m).max().expect("nonempty");
    served_last + half_rtt + segs[segs.len() - 1].client_extra_ns + stream.tail_local_ns
}

pub mod reference {
    //! The retained pre-coalescing implementation: every node walks every
    //! op through an explicit per-node cursor, `O(nodes × ops · log
    //! nodes)`. Kept as the equivalence oracle for
    //! [`super::simulate_classified`] (`tests/des_equivalence.rs` asserts
    //! bit-identical [`LaunchResult`]s) — do not optimise this module. The
    //! post-freeze extensions are the stochastic service draw, which
    //! mirrors the fast path's per-(node, segment) [`SplitMix`] streams so
    //! the oracle covers the jittered regimes too, and the fault engine,
    //! which mirrors `super::heap_schedule_faulty` semantics (stall
    //! windows, loss/retry with the same drawn service and an unadvanced
    //! cursor, straggler membership) from the same FAULT-domain streams;
    //! under [`ServiceDistribution::Deterministic`] with
    //! [`FaultModel::None`] no generator is constructed and the walk is
    //! the original, verbatim. The server fleet is the shared
    //! `ServerLanes`: the same per-lane busy clocks and routing picker
    //! as the fast path, degenerating to the single busy cell at `S = 1`.

    use super::*;

    /// Classification of one op for the simulation.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum OpClass {
        /// Round-trips to the server (cold metadata, or data reads).
        Server { service_ns: u64, client_extra_ns: u64 },
        /// Satisfied from the client cache.
        Local { cost_ns: u64 },
    }

    fn classify(ops: &StraceLog, cfg: &LaunchConfig) -> Vec<OpClass> {
        ops.entries
            .iter()
            .map(|e| {
                if e.op == Op::Read {
                    let service = (e.cost_ns / 8).max(cfg.meta_service_ns);
                    OpClass::Server {
                        service_ns: service,
                        client_extra_ns: e.cost_ns.saturating_sub(service),
                    }
                } else if e.cost_ns >= cfg.rtt_ns {
                    OpClass::Server { service_ns: cfg.meta_service_ns, client_extra_ns: 0 }
                } else {
                    OpClass::Local { cost_ns: e.cost_ns.max(cfg.warm_ns) }
                }
            })
            .collect()
    }

    /// The O(nodes × ops) oracle — see the module doc.
    pub fn simulate_launch_reference(ops: &StraceLog, cfg: &LaunchConfig) -> LaunchResult {
        let classes = classify(ops, cfg);
        let nodes = cfg.nodes();
        let cold_nodes = if cfg.broadcast_cache { 1 } else { nodes };

        // With no server-class op in the stream no fault can manifest (the
        // fast path skips its fault engine on an empty segment schedule and
        // takes no FAULT draws); degrade to the healthy walk.
        let has_server = classes.iter().any(|c| matches!(c, OpClass::Server { .. }));
        let fault = if has_server { cfg.fault } else { FaultModel::None };
        let half_rtt = cfg.rtt_ns / 2;
        let mut counts = FaultCounts::default();

        // Stochastic service draws: node i's stream is SplitMix::split(seed,
        // NODE, i), consumed once per server op it reaches, in op order —
        // the same (node, draw-index) → factor mapping as the fast path.
        let dist = cfg.service_dist;
        let mut rngs: Vec<SplitMix> = if dist.is_deterministic() {
            Vec::new()
        } else {
            (0..cold_nodes).map(|i| SplitMix::split(cfg.seed, SplitMix::NODE, i as u64)).collect()
        };
        // Fault draws: node i's FAULT-domain stream, consumed in the node's
        // own event order (membership first under Stragglers, per served op
        // under RpcLoss) — exactly heap_schedule_faulty's discipline.
        let mut fault_rngs: Vec<SplitMix> = if fault.takes_draws() {
            (0..cold_nodes).map(|i| SplitMix::split(cfg.seed, SplitMix::FAULT, i as u64)).collect()
        } else {
            Vec::new()
        };
        let (slow, slow_factor) = match fault {
            FaultModel::Stragglers { frac_milli, slow_milli } => (
                (0..cold_nodes)
                    .map(|i| fault_rngs[i].below(1000) < frac_milli as u64)
                    .collect::<Vec<bool>>(),
                slow_milli as f64 / 1000.0,
            ),
            _ => (Vec::new(), 1.0),
        };
        counts.slowed_nodes = slow.iter().filter(|&&s| s).count();
        let mut attempts: Vec<u32> = vec![0; cold_nodes];

        let mut svc_draw = |i: usize, base_ns: u64| -> u64 {
            let mut svc = if dist.is_deterministic() {
                base_ns
            } else {
                scale_service_ns(base_ns, dist.sample(&mut rngs[i]))
            };
            if slow.get(i).copied().unwrap_or(false) {
                svc = scale_service_ns(svc, slow_factor);
            }
            svc
        };

        let mut server_ops = 0u64;
        let mut local_ops = 0u64;

        #[derive(Debug)]
        struct Node {
            next_op: usize,
            clock_ns: u64,
            done_ns: u64,
        }
        let mut node_state: Vec<Node> =
            (0..nodes).map(|_| Node { next_op: 0, clock_ns: 0, done_ns: 0 }).collect();

        fn advance(
            n: &mut Node,
            classes: &[OpClass],
            is_cold: bool,
            warm_ns: u64,
            local_ops: &mut u64,
        ) -> Option<(u64, u64, u64)> {
            while n.next_op < classes.len() {
                match classes[n.next_op] {
                    OpClass::Local { cost_ns } => {
                        n.clock_ns += cost_ns;
                        n.next_op += 1;
                        *local_ops += 1;
                    }
                    OpClass::Server { service_ns, client_extra_ns } => {
                        if !is_cold {
                            n.clock_ns += warm_ns;
                            n.next_op += 1;
                            *local_ops += 1;
                            continue;
                        }
                        n.next_op += 1;
                        return Some((n.clock_ns, service_ns, client_extra_ns));
                    }
                }
            }
            n.done_ns = n.clock_ns;
            None
        }

        let mut heap: BinaryHeap<Reverse<(u64, usize, u64, u64)>> = BinaryHeap::new();
        for (i, n) in node_state.iter_mut().enumerate() {
            let cold = i < cold_nodes;
            if let Some((t, svc, extra)) = advance(n, &classes, cold, cfg.warm_ns, &mut local_ops) {
                heap.push(Reverse((t + cfg.rtt_ns / 2, i, svc_draw(i, svc), extra)));
            }
        }

        let mut lanes = ServerLanes::new(cfg);
        let mut peak_queue_depth = 0usize;
        while let Some(Reverse((arrival, i, svc, extra))) = heap.pop() {
            peak_queue_depth = peak_queue_depth.max(heap.len() + 1);
            let lane = lanes.pick(i);
            let mut start = lanes.busy_ns[lane].max(arrival);
            if let FaultModel::ServerStall { at_ns, duration_ns } = fault {
                let end = at_ns.saturating_add(duration_ns);
                if start >= at_ns && start < end {
                    start = end;
                }
            }
            let done = start + svc;
            lanes.busy_ns[lane] = done;
            if let FaultModel::RpcLoss { loss_milli, timeout_ns, backoff_base_ns, max_retries } =
                fault
            {
                if attempts[i] < max_retries && fault_rngs[i].below(1000) < loss_milli as u64 {
                    // Lost response: re-issue the same request (same drawn
                    // service, cursor unadvanced) after timeout + backoff.
                    let t_send = arrival - half_rtt;
                    let backoff = backoff_ns(backoff_base_ns, attempts[i]);
                    counts.note_retry(backoff);
                    attempts[i] += 1;
                    let resend = t_send.saturating_add(timeout_ns).saturating_add(backoff);
                    heap.push(Reverse((resend.saturating_add(half_rtt), i, svc, extra)));
                    continue;
                }
                attempts[i] = 0;
            }
            // server_ops counts *distinct* ops the stream issued; retried
            // attempts are accounted in `counts.retries`.
            server_ops += 1;
            let n = &mut node_state[i];
            n.clock_ns = done + cfg.rtt_ns / 2 + extra;
            let cold = i < cold_nodes;
            if let Some((t, s, e)) = advance(n, &classes, cold, cfg.warm_ns, &mut local_ops) {
                heap.push(Reverse((t + cfg.rtt_ns / 2, i, svc_draw(i, s), e)));
            }
        }

        let spawn_ns = cfg.per_rank_overhead_ns * cfg.ranks_per_node.min(cfg.ranks) as u64;
        let slowest = node_state.iter().map(|n| n.done_ns).max().unwrap_or(0);
        LaunchResult {
            time_to_launch_ns: cfg.base_overhead_ns + spawn_ns + slowest,
            nodes,
            server_ops,
            local_ops,
            peak_queue_depth,
            retries_issued: counts.retries,
            timeouts_hit: counts.timeouts,
            max_backoff_ns: counts.max_backoff_ns,
            slowed_nodes: counts.slowed_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::simulate_launch_reference;
    use super::*;
    use crate::config::ServerTopology;
    use depchaos_vfs::{Outcome, Syscall};

    fn stream(n_cold: usize, n_warm: usize) -> StraceLog {
        let mut log = StraceLog::new();
        for i in 0..n_cold {
            log.push(Syscall::new(Op::Openat, &format!("/lib/cold{i}"), Outcome::Enoent, 200_000));
        }
        for i in 0..n_warm {
            log.push(Syscall::new(Op::Stat, &format!("/lib/warm{i}"), Outcome::Ok, 1_000));
        }
        log
    }

    fn fast_cfg() -> LaunchConfig {
        LaunchConfig { base_overhead_ns: 0, per_rank_overhead_ns: 0, ..LaunchConfig::default() }
    }

    #[test]
    fn single_node_is_rtt_bound() {
        let cfg = fast_cfg().with_ranks(128); // one node
        let r = simulate_launch(&stream(100, 0), &cfg);
        // 100 sequential round trips: ≥ 100 × (rtt + service)
        let min = 100 * (cfg.rtt_ns + cfg.meta_service_ns);
        assert!(r.time_to_launch_ns >= min - cfg.rtt_ns, "{} vs {}", r.time_to_launch_ns, min);
        assert_eq!(r.server_ops, 100);
        assert_eq!(r.nodes, 1);
    }

    #[test]
    fn contention_grows_with_nodes() {
        let ops = stream(500, 0);
        let t4 = simulate_launch(&ops, &fast_cfg().with_ranks(512)).time_to_launch_ns;
        let t16 = simulate_launch(&ops, &fast_cfg().with_ranks(2048)).time_to_launch_ns;
        assert!(t16 > t4, "more nodes, more server queueing: {t4} vs {t16}");
    }

    #[test]
    fn local_ops_do_not_hit_server() {
        let r = simulate_launch(&stream(0, 1000), &fast_cfg().with_ranks(256));
        assert_eq!(r.server_ops, 0);
        assert_eq!(r.local_ops, 2000, "two nodes × 1000 warm ops");
    }

    #[test]
    fn broadcast_cache_collapses_server_load() {
        let ops = stream(400, 0);
        let normal = simulate_launch(&ops, &fast_cfg().with_ranks(2048));
        let mut cfg = fast_cfg().with_ranks(2048);
        cfg.broadcast_cache = true;
        let spindle = simulate_launch(&ops, &cfg);
        assert_eq!(normal.server_ops, 16 * 400);
        assert_eq!(spindle.server_ops, 400, "only one node pays cold");
        assert!(spindle.time_to_launch_ns < normal.time_to_launch_ns);
    }

    #[test]
    fn node_granularity_matters_not_rank_count() {
        // NFS load is per *node* (shared page cache): the same 1024 ranks
        // on fewer, fatter nodes hit the server less.
        let ops = stream(300, 0);
        let fat = LaunchConfig {
            ranks: 1024,
            ranks_per_node: 256, // 4 nodes
            base_overhead_ns: 0,
            per_rank_overhead_ns: 0,
            ..LaunchConfig::default()
        };
        let thin = LaunchConfig { ranks_per_node: 64, ..fat.clone() }; // 16 nodes
        let rf = simulate_launch(&ops, &fat);
        let rt = simulate_launch(&ops, &thin);
        assert_eq!(rf.server_ops, 4 * 300);
        assert_eq!(rt.server_ops, 16 * 300);
        assert!(rt.time_to_launch_ns >= rf.time_to_launch_ns);
    }

    #[test]
    fn read_heavy_stream_slower_than_meta_only() {
        // Same op count, but reads carry payload time the client must absorb.
        let mut meta = StraceLog::new();
        let mut reads = StraceLog::new();
        for i in 0..100 {
            meta.push(Syscall::new(Op::Openat, &format!("/l/{i}"), Outcome::Ok, 200_000));
            // 1 MiB over the wire
            reads.push(Syscall::new(Op::Read, &format!("/l/{i}"), Outcome::Ok, 4_000_000));
        }
        let cfg = fast_cfg().with_ranks(128);
        let tm = simulate_launch(&meta, &cfg).time_to_launch_ns;
        let tr = simulate_launch(&reads, &cfg).time_to_launch_ns;
        assert!(tr > tm * 5, "payload dominates: {tm} vs {tr}");
    }

    #[test]
    fn deterministic() {
        let ops = stream(200, 50);
        let a = simulate_launch(&ops, &fast_cfg());
        let b = simulate_launch(&ops, &fast_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn fixed_overheads_added_once() {
        let cfg = LaunchConfig { ranks: 128, ..LaunchConfig::default() };
        let r = simulate_launch(&stream(0, 0), &cfg);
        let expect = cfg.base_overhead_ns + cfg.per_rank_overhead_ns * 128;
        assert_eq!(r.time_to_launch_ns, expect);
    }

    #[test]
    fn matches_reference_on_representative_scenarios() {
        // The broad random sweep lives in tests/des_equivalence.rs; this is
        // the quick in-crate guard over the interesting regimes.
        let streams =
            [stream(0, 0), stream(100, 0), stream(0, 100), stream(37, 63), stream(1, 499)];
        for ops in &streams {
            for ranks in [1usize, 100, 512, 2048] {
                for broadcast in [false, true] {
                    let mut cfg = fast_cfg().with_ranks(ranks);
                    cfg.broadcast_cache = broadcast;
                    assert_eq!(
                        simulate_launch(ops, &cfg),
                        simulate_launch_reference(ops, &cfg),
                        "ranks={ranks} broadcast={broadcast} ops={}",
                        ops.len()
                    );
                }
            }
        }
    }

    #[test]
    fn classified_stream_is_reusable_across_rank_points() {
        let ops = stream(50, 50);
        let cfg = fast_cfg();
        let classified = ClassifiedStream::classify(&ops, &cfg);
        assert_eq!(classified.server_ops(), 50);
        assert_eq!(classified.len(), 100);
        for ranks in [128usize, 512, 4096] {
            let per_point = cfg.clone().with_ranks(ranks);
            assert_eq!(
                simulate_classified(&classified, &per_point),
                simulate_launch(&ops, &per_point)
            );
        }
    }

    #[test]
    #[should_panic(expected = "different latency calibration")]
    fn stale_classification_is_rejected() {
        let ops = stream(10, 0);
        let classified = ClassifiedStream::classify(&ops, &fast_cfg());
        let recalibrated = LaunchConfig { rtt_ns: 1, ..fast_cfg() };
        simulate_classified(&classified, &recalibrated);
    }

    #[test]
    fn deterministic_ignores_the_seed() {
        // No draws occur, so the seed cannot leak into the result.
        let ops = stream(80, 20);
        let a = simulate_launch(&ops, &fast_cfg().with_seed(1));
        let b = simulate_launch(&ops, &fast_cfg().with_seed(0xFFFF_FFFF));
        assert_eq!(a, b);
    }

    #[test]
    fn stochastic_paths_match_the_reference_oracle() {
        let streams = [stream(0, 0), stream(60, 0), stream(0, 60), stream(17, 43)];
        for dist in ServiceDistribution::all() {
            for ops in &streams {
                for ranks in [1usize, 300, 2048] {
                    for broadcast in [false, true] {
                        let mut cfg = fast_cfg().with_ranks(ranks).with_service_dist(dist);
                        cfg.broadcast_cache = broadcast;
                        cfg.seed = 99;
                        assert_eq!(
                            simulate_launch(ops, &cfg),
                            simulate_launch_reference(ops, &cfg),
                            "dist={} ranks={ranks} broadcast={broadcast} ops={}",
                            dist.name(),
                            ops.len()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stochastic_runs_reproduce_per_seed_and_vary_across_seeds() {
        let ops = stream(200, 0);
        let cfg = fast_cfg()
            .with_ranks(2048)
            .with_service_dist(ServiceDistribution::log_normal(0.5))
            .with_seed(7);
        assert_eq!(simulate_launch(&ops, &cfg), simulate_launch(&ops, &cfg));
        let other = simulate_launch(&ops, &cfg.clone().with_seed(8));
        assert_ne!(
            simulate_launch(&ops, &cfg).time_to_launch_ns,
            other.time_to_launch_ns,
            "200 heavy-tailed draws under contention cannot tie across seeds"
        );
    }

    #[test]
    fn jitter_moves_time_but_not_op_accounting() {
        let ops = stream(150, 50);
        let det = simulate_launch(&ops, &fast_cfg().with_ranks(1024));
        let jit = simulate_launch(
            &ops,
            &fast_cfg()
                .with_ranks(1024)
                .with_service_dist(ServiceDistribution::uniform_jitter(0.25)),
        );
        assert_eq!(det.nodes, jit.nodes);
        assert_eq!(det.server_ops, jit.server_ops);
        assert_eq!(det.local_ops, jit.local_ops);
        assert_ne!(det.time_to_launch_ns, jit.time_to_launch_ns);
        // Bounded jitter keeps the launch within the ±25% service envelope
        // (service is only part of the wall time, so much tighter in truth).
        let (lo, hi) = (det.time_to_launch_ns * 3 / 4, det.time_to_launch_ns * 5 / 4);
        assert!(
            (lo..=hi).contains(&jit.time_to_launch_ns),
            "{} vs {}",
            det.time_to_launch_ns,
            jit.time_to_launch_ns
        );
    }

    #[test]
    fn extreme_tail_draws_clamp_instead_of_overflowing() {
        // σ = 8 reaches factors around e^60 in a long sample; every drawn
        // service must clamp at MAX_SERVICE_NS and the simulation stay
        // exact against the oracle instead of wrapping the clock.
        let ops = stream(100, 0);
        for seed in 0..20u64 {
            let cfg = fast_cfg()
                .with_ranks(2048)
                .with_service_dist(ServiceDistribution::log_normal(8.0))
                .with_seed(seed);
            let r = simulate_launch(&ops, &cfg);
            assert_eq!(r, simulate_launch_reference(&ops, &cfg));
            assert!(r.time_to_launch_ns < 16 * 100 * (super::MAX_SERVICE_NS + cfg.rtt_ns));
        }
    }

    #[test]
    #[should_panic(expected = "different latency calibration")]
    fn distribution_mismatch_is_rejected() {
        // A stream classified for the deterministic model must not be
        // replayed as a stochastic one without reclassifying.
        let ops = stream(10, 0);
        let classified = ClassifiedStream::classify(&ops, &fast_cfg());
        let jittered = fast_cfg().with_service_dist(ServiceDistribution::uniform_jitter(0.1));
        simulate_classified(&classified, &jittered);
    }

    fn fault_models() -> [FaultModel; 4] {
        [
            FaultModel::None,
            // Stall window inside the contention phase of the fast streams.
            FaultModel::ServerStall { at_ns: 2_000_000, duration_ns: 300_000_000 },
            FaultModel::RpcLoss {
                loss_milli: 150,
                timeout_ns: 1_000_000,
                backoff_base_ns: 250_000,
                max_retries: 5,
            },
            FaultModel::Stragglers { frac_milli: 250, slow_milli: 4000 },
        ]
    }

    #[test]
    fn faulty_fast_path_matches_the_reference_oracle() {
        let streams = [stream(0, 0), stream(60, 0), stream(0, 60), stream(17, 43)];
        for fault in fault_models() {
            for dist in ServiceDistribution::all() {
                for ops in &streams {
                    for ranks in [1usize, 300, 2048] {
                        for broadcast in [false, true] {
                            let mut cfg = fast_cfg()
                                .with_ranks(ranks)
                                .with_service_dist(dist)
                                .with_fault(fault)
                                .with_seed(99);
                            cfg.broadcast_cache = broadcast;
                            assert_eq!(
                                simulate_launch(ops, &cfg),
                                simulate_launch_reference(ops, &cfg),
                                "fault={} dist={} ranks={ranks} broadcast={broadcast} ops={}",
                                fault.name(),
                                dist.name(),
                                ops.len()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn zero_impact_faults_reproduce_healthy_results() {
        // The faulty engine with a model that cannot fire must agree with
        // the healthy engine bit for bit — including under jitter, which
        // pins the common-random-numbers discipline: FAULT-domain draws
        // never perturb the NODE-domain service draws.
        let ops = stream(120, 30);
        let noops = [
            FaultModel::ServerStall { at_ns: 0, duration_ns: 0 },
            FaultModel::RpcLoss {
                loss_milli: 0,
                timeout_ns: 1_000_000,
                backoff_base_ns: 1_000,
                max_retries: 5,
            },
            FaultModel::Stragglers { frac_milli: 0, slow_milli: 4000 },
        ];
        for dist in ServiceDistribution::all() {
            for ranks in [128usize, 1024] {
                let healthy =
                    simulate_launch(&ops, &fast_cfg().with_ranks(ranks).with_service_dist(dist));
                for fault in noops {
                    let faulted = simulate_launch(
                        &ops,
                        &fast_cfg().with_ranks(ranks).with_service_dist(dist).with_fault(fault),
                    );
                    assert_eq!(
                        faulted.time_to_launch_ns,
                        healthy.time_to_launch_ns,
                        "fault={} dist={} ranks={ranks}",
                        fault.name(),
                        dist.name()
                    );
                    assert_eq!(faulted.retries_issued, 0);
                    assert_eq!(faulted.slowed_nodes, 0);
                }
            }
        }
    }

    #[test]
    fn server_stall_delays_only_when_it_overlaps_the_launch() {
        let ops = stream(200, 0);
        let cfg = fast_cfg().with_ranks(2048);
        let healthy = simulate_launch(&ops, &cfg);
        let brown = simulate_launch(
            &ops,
            &cfg.clone().with_fault(FaultModel::ServerStall {
                at_ns: 1_000_000,
                duration_ns: 10_000_000_000,
            }),
        );
        assert!(
            brown.time_to_launch_ns >= healthy.time_to_launch_ns + 10_000_000_000,
            "a mid-launch 10 s brownout costs at least the window: {} vs {}",
            healthy.time_to_launch_ns,
            brown.time_to_launch_ns
        );
        // A stall scheduled long after the last op never fires.
        let late = simulate_launch(
            &ops,
            &cfg.clone().with_fault(FaultModel::ServerStall {
                at_ns: healthy.time_to_launch_ns * 1000,
                duration_ns: 10_000_000_000,
            }),
        );
        assert_eq!(late, healthy, "a stall after the last service start is a no-op");
        assert_eq!(brown.server_ops, healthy.server_ops, "stalls add wait, not work");
    }

    #[test]
    fn rpc_loss_retries_are_real_extra_work_and_accounted() {
        let ops = stream(200, 0);
        let cfg = fast_cfg().with_ranks(2048);
        let healthy = simulate_launch(&ops, &cfg);
        let lossy = simulate_launch(
            &ops,
            &cfg.clone().with_fault(FaultModel::RpcLoss {
                loss_milli: 200,
                timeout_ns: 2_000_000,
                backoff_base_ns: 500_000,
                max_retries: 5,
            }),
        );
        assert!(lossy.retries_issued > 0, "20% loss over 3200 ops must lose some");
        assert_eq!(lossy.timeouts_hit, lossy.retries_issued);
        assert!(lossy.max_backoff_ns >= 500_000);
        assert_eq!(lossy.server_ops, healthy.server_ops, "distinct ops unchanged");
        assert!(lossy.time_to_launch_ns > healthy.time_to_launch_ns);
        // ~1/0.8 load amplification: retries land within a factor of the
        // expectation (binomial over 16 × 200 attempt chains).
        let attempts = lossy.server_ops + lossy.retries_issued;
        assert!(
            attempts as f64 > lossy.server_ops as f64 * 1.15
                && (attempts as f64) < lossy.server_ops as f64 * 1.40,
            "retry volume tracks the loss rate: {attempts} vs {}",
            lossy.server_ops
        );
    }

    #[test]
    fn stragglers_are_seeded_counted_and_slow_the_launch() {
        let ops = stream(200, 0);
        let fault = FaultModel::Stragglers { frac_milli: 250, slow_milli: 4000 };
        let cfg = fast_cfg().with_ranks(2048).with_fault(fault);
        let healthy = simulate_launch(&ops, &fast_cfg().with_ranks(2048));
        let r = simulate_launch(&ops, &cfg);
        assert!(
            r.slowed_nodes > 0 && r.slowed_nodes < 16,
            "~4 of 16 nodes slow: {}",
            r.slowed_nodes
        );
        assert!(r.time_to_launch_ns > healthy.time_to_launch_ns);
        assert_eq!(simulate_launch(&ops, &cfg), r, "reproduces per seed");
        let other = simulate_launch(&ops, &cfg.clone().with_seed(1234));
        assert_ne!(
            (r.slowed_nodes, r.time_to_launch_ns),
            (other.slowed_nodes, other.time_to_launch_ns),
            "membership is drawn from the seed"
        );
    }

    /// Random op streams for the analytic-vs-heap comparison: kinds and
    /// costs driven by a seeded [`SplitMix`], spanning sub-warm locals,
    /// multi-RTT metadata, and payload reads.
    fn random_stream(seed: u64, len: usize) -> StraceLog {
        let mut rng = SplitMix::new(seed);
        let mut log = StraceLog::new();
        for i in 0..len {
            let (op, outcome) = match rng.below(4) {
                0 => (Op::Stat, Outcome::Ok),
                1 => (Op::Openat, Outcome::Enoent),
                2 => (Op::Read, Outcome::Ok),
                _ => (Op::Readlink, Outcome::Ok),
            };
            log.push(Syscall::new(op, &format!("/r/{i}"), outcome, rng.below(2_000_000)));
        }
        log
    }

    #[test]
    fn closed_form_matches_the_heap_bit_for_bit_whenever_it_engages() {
        // The in-module ground truth: whenever the round-major guard admits
        // a stream, the envelope recursion must reproduce heap_schedule's
        // (slowest finish, peak queue depth) exactly — same tie-breaks,
        // same integer halving. Random streams exercise both guard
        // verdicts; the uniform metadata stream must always engage.
        let mut engaged = 0;
        for seed in 0..40u64 {
            let ops = random_stream(seed, (seed % 60) as usize + 1);
            for ranks in [1usize, 128, 2048, 8192] {
                let cfg = fast_cfg().with_ranks(ranks);
                let classified = ClassifiedStream::classify(&ops, &cfg);
                if classified.segments.is_empty() {
                    continue;
                }
                let cold = cfg.nodes();
                if let Some(analytic) = all_cold_closed_form(&classified, &cfg, cold) {
                    engaged += 1;
                    let heap = heap_schedule(&classified, &cfg, cold, |_, seg| seg.service_ns);
                    assert_eq!(analytic, heap, "seed={seed} ranks={ranks}");
                }
            }
        }
        assert!(engaged > 20, "the guard admitted only {engaged} cases — generator too hostile");
        for ranks in [1usize, 512, 16 * 1024] {
            let cfg = fast_cfg().with_ranks(ranks);
            let classified = ClassifiedStream::classify(&stream(200, 50), &cfg);
            assert!(
                all_cold_closed_form(&classified, &cfg, cfg.nodes()).is_some(),
                "uniform cold metadata streams are always round-major"
            );
        }
    }

    #[test]
    fn analytic_all_cold_is_simulate_classified_when_it_engages() {
        for (nc, nw) in [(1usize, 0usize), (100, 0), (37, 63), (1, 499), (200, 50)] {
            let ops = stream(nc, nw);
            for ranks in [1usize, 128, 2048] {
                let cfg = fast_cfg().with_ranks(ranks);
                let classified = ClassifiedStream::classify(&ops, &cfg);
                let analytic = analytic_all_cold(&classified, &cfg)
                    .expect("uniform streams engage the closed form");
                assert_eq!(analytic, simulate_classified(&classified, &cfg));
                assert_eq!(analytic, simulate_launch_reference(&ops, &cfg));
                assert_eq!(analytic.peak_queue_depth, cfg.nodes(), "every cold node queues");
            }
        }
    }

    #[test]
    fn analytic_declines_what_it_cannot_prove() {
        // A payload-heavy read's huge client gap followed by a bare stat
        // breaks round-major ordering for a multi-node fleet: node 0 laps
        // the stragglers. The closed form must decline (and the heap keep
        // the result exact) — yet a single cold node is always admitted.
        let mut ops = StraceLog::new();
        ops.push(Syscall::new(Op::Read, "/data/big", Outcome::Ok, 4_000_000));
        for i in 0..10 {
            ops.push(Syscall::new(Op::Stat, &format!("/l/{i}"), Outcome::Enoent, 200_000));
        }
        let multi = fast_cfg().with_ranks(2048);
        let classified = ClassifiedStream::classify(&ops, &multi);
        assert!(analytic_all_cold(&classified, &multi).is_none());
        assert_eq!(
            simulate_classified(&classified, &multi),
            simulate_launch_reference(&ops, &multi),
            "the heap fallback stays exact where the closed form declines"
        );
        let single = fast_cfg().with_ranks(64); // one node
        let classified = ClassifiedStream::classify(&ops, &single);
        assert!(analytic_all_cold(&classified, &single).is_some());

        // Stochastic and broadcast regimes are out of the analytic scope by
        // construction.
        let jitter = fast_cfg()
            .with_ranks(2048)
            .with_service_dist(ServiceDistribution::uniform_jitter(0.25));
        assert!(analytic_all_cold(&ClassifiedStream::classify(&ops, &jitter), &jitter).is_none());
        let mut bcast = fast_cfg().with_ranks(2048);
        bcast.broadcast_cache = true;
        assert!(analytic_all_cold(&ClassifiedStream::classify(&ops, &bcast), &bcast).is_none());
    }

    #[test]
    fn million_node_all_cold_simulates_instantly() {
        // 262,144 cold nodes × 500 server ops — heap cost would be 131M
        // events; the closed form does 500 envelope steps.
        let ops = stream(500, 0);
        let mut cfg = fast_cfg();
        cfg.ranks = 4 * 1024 * 1024;
        cfg.ranks_per_node = 16;
        let t0 = std::time::Instant::now();
        let classified = ClassifiedStream::classify(&ops, &cfg);
        let r = simulate_classified(&classified, &cfg);
        assert!(t0.elapsed().as_secs_f64() < 1.0, "took {:?}", t0.elapsed());
        assert_eq!(r, analytic_all_cold(&classified, &cfg).expect("uniform stream engages"));
        assert_eq!(r.nodes, 262_144);
        assert_eq!(r.peak_queue_depth, 262_144, "the whole fleet queues at once");
        // Sanity: the launch cannot beat the server's serial capacity.
        assert!(r.time_to_launch_ns >= 262_144 * 500 * cfg.meta_service_ns);
    }

    #[test]
    fn million_node_broadcast_sweep_is_instant() {
        // 4 Mi ranks on 16-rank nodes = 262,144 nodes. Under Spindle
        // broadcast only node 0 is cold: the other 262,143 are coalesced
        // analytically, so the simulation does O(server_ops) work.
        let ops = stream(500, 0);
        let mut cfg = fast_cfg();
        cfg.ranks = 4 * 1024 * 1024;
        cfg.ranks_per_node = 16;
        cfg.broadcast_cache = true;
        let t0 = std::time::Instant::now();
        let r = simulate_launch(&ops, &cfg);
        assert!(t0.elapsed().as_secs_f64() < 1.0, "took {:?}", t0.elapsed());
        assert_eq!(r.nodes, 262_144);
        assert_eq!(r.server_ops, 500);
        assert_eq!(r.local_ops, 262_143 * 500);
    }

    fn topologies() -> [ServerTopology; 5] {
        [
            ServerTopology::single(),
            ServerTopology::hash(2),
            ServerTopology::hash(8),
            ServerTopology::least_loaded(3),
            ServerTopology::least_loaded(8),
        ]
    }

    #[test]
    fn single_server_is_bit_identical_whatever_the_policy() {
        // One lane leaves nothing for the policy to pick: both S=1
        // topologies must reproduce the default-config result exactly,
        // across every (dist × fault) engine.
        let ops = stream(60, 20);
        for dist in ServiceDistribution::all() {
            for fault in fault_models() {
                for ranks in [1usize, 512, 2048] {
                    let base =
                        fast_cfg().with_ranks(ranks).with_service_dist(dist).with_fault(fault);
                    let want = simulate_launch(&ops, &base);
                    for assign in [AssignPolicy::HashByNode, AssignPolicy::LeastLoaded] {
                        let cfg = base.clone().with_topology(ServerTopology { servers: 1, assign });
                        assert_eq!(simulate_launch(&ops, &cfg), want, "assign={}", assign.name());
                    }
                }
            }
        }
    }

    #[test]
    fn multi_server_matches_the_reference_oracle() {
        let streams = [stream(40, 0), stream(17, 43), stream(0, 60)];
        for top in topologies() {
            for dist in ServiceDistribution::all() {
                for fault in fault_models() {
                    for ops in &streams {
                        for ranks in [1usize, 300, 2048] {
                            let cfg = fast_cfg()
                                .with_ranks(ranks)
                                .with_service_dist(dist)
                                .with_fault(fault)
                                .with_seed(99)
                                .with_topology(top);
                            assert_eq!(
                                simulate_launch(ops, &cfg),
                                simulate_launch_reference(ops, &cfg),
                                "top={} dist={} fault={} ranks={ranks} ops={}",
                                top.name(),
                                dist.name(),
                                fault.name(),
                                ops.len()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn multi_server_closed_form_matches_the_heap_bit_for_bit() {
        // The S-lane analytic envelope (per-lane recursion, busiest lane
        // finishes last) against the S-lane heap, wherever the guard
        // admits — including lanes of unequal size (cold % S ≠ 0).
        let mut engaged = 0;
        for seed in 0..20u64 {
            let ops = random_stream(seed, (seed % 40) as usize + 1);
            for servers in [2usize, 3, 8, 16] {
                for ranks in [128usize, 2048, 8192] {
                    let cfg =
                        fast_cfg().with_ranks(ranks).with_topology(ServerTopology::hash(servers));
                    let classified = ClassifiedStream::classify(&ops, &cfg);
                    if classified.segments.is_empty() {
                        continue;
                    }
                    let cold = cfg.nodes();
                    if let Some(analytic) = all_cold_closed_form(&classified, &cfg, cold) {
                        engaged += 1;
                        let heap = heap_schedule(&classified, &cfg, cold, |_, seg| seg.service_ns);
                        assert_eq!(analytic, heap, "seed={seed} servers={servers} ranks={ranks}");
                    }
                }
            }
        }
        assert!(engaged > 40, "the guard admitted only {engaged} cases — generator too hostile");
    }

    #[test]
    fn least_loaded_is_never_analytic_and_stays_exact() {
        let ops = stream(120, 0);
        let cfg = fast_cfg().with_ranks(2048).with_topology(ServerTopology::least_loaded(4));
        let classified = ClassifiedStream::classify(&ops, &cfg);
        assert!(
            analytic_all_cold(&classified, &cfg).is_none(),
            "schedule-dependent routing must decline the closed form"
        );
        assert_eq!(simulate_classified(&classified, &cfg), simulate_launch_reference(&ops, &cfg));
    }

    #[test]
    fn more_servers_flatten_the_launch_monotonically() {
        let ops = stream(300, 0);
        let mut prev = u64::MAX;
        for servers in [1usize, 2, 4, 8, 16] {
            let cfg = fast_cfg().with_ranks(2048).with_topology(ServerTopology::hash(servers));
            let t = simulate_launch(&ops, &cfg).time_to_launch_ns;
            assert!(t <= prev, "S={servers} slowed the launch: {t} > {prev}");
            prev = t;
        }
        // 16 servers over 16 cold nodes: every node has a private server,
        // so the launch is contention-free — far faster than S=1.
        let solo = simulate_launch(
            &ops,
            &fast_cfg().with_ranks(2048).with_topology(ServerTopology::hash(16)),
        );
        let jammed = simulate_launch(&ops, &fast_cfg().with_ranks(2048));
        // (Not 16×: with private servers each node is RTT-bound, and the
        // round trips don't shrink with S.)
        assert!(solo.time_to_launch_ns * 2 < jammed.time_to_launch_ns);
        assert_eq!(solo.server_ops, jammed.server_ops, "topology moves time, not work");
    }

    #[test]
    fn million_node_multi_server_still_simulates_instantly() {
        // The analytic fast path must survive the topology axis: 262,144
        // cold nodes over 8 hash lanes is still O(server_ops) work.
        let ops = stream(500, 0);
        let mut cfg = fast_cfg().with_topology(ServerTopology::hash(8));
        cfg.ranks = 4 * 1024 * 1024;
        cfg.ranks_per_node = 16;
        let t0 = std::time::Instant::now();
        let classified = ClassifiedStream::classify(&ops, &cfg);
        let r = simulate_classified(&classified, &cfg);
        assert!(t0.elapsed().as_secs_f64() < 1.0, "took {:?}", t0.elapsed());
        assert_eq!(r, analytic_all_cold(&classified, &cfg).expect("uniform stream engages"));
        assert_eq!(r.peak_queue_depth, 262_144, "the whole fleet still queues at once");
        // Each lane serializes its own 32,768 nodes' ops...
        assert!(r.time_to_launch_ns >= (262_144 / 8) * 500 * cfg.meta_service_ns);
        // ...and 8 lanes beat one by nearly the lane count.
        let one = simulate_launch(&ops, &cfg.clone().with_topology(ServerTopology::single()));
        assert!(r.time_to_launch_ns < one.time_to_launch_ns / 6);
    }
}

//! # depchaos-launch — parallel launch over a shared filesystem (Fig 6)
//!
//! Frings et al. (cited by the paper) showed that loading a large dynamic
//! application at scale can "flood the filesystem with requests" and push
//! startup into hours. Fig 6 measures exactly this: Pynamic (≈900 shared
//! libraries) launched on 512–2048 ranks with libraries on NFS, cold
//! caches, negative caching disabled.
//!
//! The model, in three layers:
//!
//! 1. [`profile`] replays a loader backend (any
//!    [`depchaos_loader::Loader`]; glibc by default) against a cold NFS
//!    [`depchaos_vfs::Vfs`] and captures the strace-style op stream one rank
//!    issues at startup.
//! 2. [`des`] is a discrete-event simulation: one metadata server with a
//!    fixed per-op service time and FIFO queue; each *node* replays the op
//!    stream sequentially (the loader is serial), round-tripping every cold
//!    op. Ranks beyond the first on a node hit the node's page cache —
//!    which is why the unit of NFS load is the node, not the rank.
//! 3. [`sweep`] runs rank scalings in parallel (rayon) for the figure.
//!
//! The simulated server and RTT constants are calibrated so the paper's
//! qualitative shape emerges (normal launch grows with scale; shrinkwrapped
//! stays near-flat; crossover factor in the 5–8× band at 2048 ranks) — see
//! EXPERIMENTS.md for paper-vs-measured values.

pub mod config;
pub mod des;
pub mod profile;
pub mod sweep;

pub use config::{LaunchConfig, LaunchResult};
pub use des::simulate_launch;
pub use profile::{profile_load, profile_load_with};
pub use sweep::{render_fig6, render_tsv, sweep_ranks};

//! # depchaos-launch — scenario-matrix launch experiments (Fig 6 and beyond)
//!
//! Frings et al. (cited by the paper) showed that loading a large dynamic
//! application at scale can "flood the filesystem with requests" and push
//! startup into hours. Fig 6 measures exactly this: Pynamic (≈900 shared
//! libraries) launched on 512–2048 ranks with libraries on NFS, cold
//! caches, negative caching disabled. This crate reproduces that figure —
//! and generalises it into a *design-space sweep* over every axis the
//! paper's discussion names.
//!
//! The layers, bottom-up:
//!
//! 1. [`profile`] replays a loader backend (any [`depchaos_loader::Loader`])
//!    against a cold [`depchaos_vfs::Vfs`] and captures the strace-style op
//!    stream one rank issues at startup.
//! 2. [`des`] is a discrete-event simulation: a fleet of `S` FIFO metadata
//!    servers (a [`ServerTopology`] on the config — the default `S = 1` is
//!    the paper's model, bit for bit), each with its own busy-until lane,
//!    requests routed by an [`AssignPolicy`] (seed-free hash-by-node, or
//!    least-loaded with index tie-breaks); each *node* replays the op
//!    stream sequentially (the
//!    loader is serial), round-tripping every cold op. Ranks beyond the
//!    first on a node hit the node's page cache — which is why the unit of
//!    NFS load is the node, not the rank. The server's per-op service time
//!    follows `cfg.service_dist` (a [`ServiceDistribution`]): the paper's
//!    deterministic model, bounded uniform jitter, or a heavy-tailed
//!    log-normal, the stochastic variants drawing one seeded factor per
//!    (cold node, server op) from a dedicated RNG stream domain (see the
//!    [`des`] module's stream-domain map). [`fault`] layers degraded-mode
//!    operation on top: a [`FaultModel`] on the config injects server
//!    brownout stalls, RPC loss with timeout/retry/exponential backoff
//!    (retries are real extra server work), or seeded straggler nodes —
//!    all draws from their own FAULT stream domain so faulted and healthy
//!    cells share service draws (common random numbers), and
//!    [`FaultModel::None`] stays bit-identical to the healthy engine.
//!    Simulation is two-phase:
//!    [`ClassifiedStream::classify`] compacts the op stream into a
//!    per-server-op schedule exactly once, and [`simulate_classified`]
//!    replays it through the cheapest exact regime — the
//!    [`analytic_all_cold`] closed form when the symmetric all-cold fleet
//!    is round-major (`O(server_ops)`, node-count independent, exact peak
//!    queue depth), the per-server-op event heap otherwise — coalescing
//!    the symmetric warm/serverless nodes analytically in every regime.
//!    That takes a 4M-rank point (broadcast *or* all-cold) to microseconds
//!    while staying bit-identical to the retained [`des::reference`]
//!    oracle (property-tested equivalence, deterministic *and*
//!    stochastic).
//! 3. [`batch`] is the columnar execution layer over the DES: a
//!    [`BatchPlan`] gathers every pending (cell, rank point, replicate)
//!    into structure-of-arrays columns — segment schedules columnarised
//!    once per stream (`service_ns`, precomputed gaps, shared
//!    aggregates), rows as parallel parameter columns (cold-node count,
//!    seed, distribution, overheads) — and partitions rows into four
//!    solver classes: **coalesced** (no server segments — pure
//!    arithmetic), **analytic** (deterministic round-major fleets —
//!    advanced in lockstep over the shared schedule, deduplicated to
//!    unique (schedule, fleet) kernels), **stochastic** (per-seed heap
//!    replay), and **heap** (lone-cold-node or guard-violating
//!    fallback, including mid-batch envelope-cap demotions). Outputs
//!    are bit-identical to per-row [`simulate_classified`]; every sweep
//!    layer below runs on it.
//! 4. [`sweep`] runs rank scalings for one figure series, all points
//!    sharing one [`ClassifiedStream`] and executing as a single
//!    [`BatchPlan`]. [`sweep_ranks_replicated`] adds the stochastic
//!    dimension: K seeded replicates per rank point
//!    ([`replicate_seed`]), summarised as [`LaunchStats`] p50/p95/p99 —
//!    K collapses to 1 when the distribution is deterministic. [`adaptive`]
//!    replaces the fixed K with a sequential stopping rule
//!    ([`AdaptiveControl`]): replicates run in seeded batches and each
//!    cell stops as soon as the t-based 95% half-width of its mean
//!    launch time meets a relative target — bit-reproducibly, because
//!    replicate `r`'s draws are a pure function of `(base seed, r)`
//!    (the batch-prefix property; see `docs/determinism.md`).
//!    [`sweep_paired`] is the common-random-numbers companion: both arms
//!    of a comparison run under shared replicate seeds and
//!    [`PairedDiff`] reports the CRN-tightened interval on their
//!    difference ([`render_fig6_paired`]).
//! 5. [`matrix`] describes a whole experiment: a [`Scenario`] is one point
//!    of (workload × loader backend × storage model × wrap state × cache
//!    policy × service distribution), and an [`ExperimentMatrix`] expands
//!    the cross product. Workloads come from the
//!    [`depchaos_workloads::Workload`] trait (pynamic and its RPATH
//!    variant, emacs, the >200-package Axom stack, the ROCm module world);
//!    storage models are [`depchaos_vfs::StorageModel`]; backends are
//!    [`depchaos_core::LoaderBackend`]s plus the hash-store loader service.
//! 6. [`queueing`] is the independent cross-check: M/G/k service moments
//!    (closed-form second moments per distribution), Pollaczek–Khinchine
//!    mean waits (Lee–Longton-scaled for `k > 1` fleets at utilisation
//!    `λE[S]/k`), and hard capacity/work-conservation bounds on the mean
//!    launch time — [`validate_against_mg1`] flags any cell whose
//!    replicate mean escapes the envelope, so a modelling bug shared by
//!    the DES and its oracle would still be caught by theory.
//! 7. [`experiment`] executes a matrix: each unique (workload, backend,
//!    storage) cell is profiled **exactly once** into a shared, memoized
//!    [`ProfileCache`] (plain and wrapped streams captured in one run) and
//!    classified once per (cell, wrap state, latency calibration) — shared
//!    across cache policies, rank points, *and* stochastic replicates —
//!    then the whole matrix is simulated as **one** [`BatchPlan`] pass and
//!    everything lands in a serde-serializable [`SweepReport`] with
//!    per-backend Fig 6, per-distribution band, queueing-check, and TSV
//!    renderers. Every stochastic cell draws from
//!    [`scenario_seed`]`(base seed, cell label)`, so any single cell
//!    reproduces standalone, byte for byte, from the experiment seed and
//!    its label.
//!
//! The paper's figure is one cell of the matrix (pynamic × glibc × nfs);
//! `depchaos-report fig6-backends` renders the same figure for glibc, musl,
//! the §III-C future loader, and a hash-store service side by side;
//! `fig6-dist` renders it under jittered and heavy-tailed metadata servers
//! with p50/p99 bands; `fig6-queueing` validates every cell against its
//! M/G/1 envelope (and fails CI on a violation); and the Spindle-broadcast
//! remark from §V-A is just the cache-policy axis.
//!
//! The simulated server and RTT constants are calibrated so the paper's
//! qualitative shape emerges (normal launch grows with scale; shrinkwrapped
//! stays near-flat; crossover factor in the 5–8× band at 2048 ranks).
//!
//! ```
//! use depchaos_launch::{CachePolicy, ExperimentMatrix, MatrixBackend, ProfileCache, WrapState};
//! use depchaos_vfs::StorageModel;
//! use depchaos_workloads::Pynamic;
//!
//! let cache = ProfileCache::new();
//! let report = ExperimentMatrix::new()
//!     .workload(Pynamic::new(40))
//!     .backends(MatrixBackend::all())
//!     .storage(StorageModel::Nfs)
//!     .wrap_states(WrapState::all())
//!     .cache_policies([CachePolicy::Cold])
//!     .rank_points([512usize, 1024])
//!     .run(&cache);
//! // 4 backends × 2 wrap states; 4 unique profile cells.
//! assert_eq!(report.results.len(), 8);
//! assert_eq!(report.cells_profiled, 4);
//! println!("{}", report.render_fig6_tables());
//! ```

pub mod adaptive;
pub mod batch;
pub mod config;
pub mod des;
pub mod experiment;
pub mod fault;
pub mod matrix;
pub mod profile;
pub mod queueing;
pub mod sweep;

pub use adaptive::{
    run_adaptive_units, stop_k, t_critical_95, AdaptiveControl, AdaptiveUnit, PairedDiff, Welford,
};
pub use batch::{BatchPlan, SolverClass, StreamId};
pub use config::{AssignPolicy, LaunchConfig, LaunchResult, ServerTopology, ServiceDistribution};
pub use des::{
    analytic_all_cold, reference, simulate_classified, simulate_launch, ClassifiedStream,
    ClassifyParams,
};
pub use experiment::{
    run_scenario, scenario_seed, CellProfile, ProfileCache, ProfileOutcome, ScenarioResult,
    SweepReport,
};
pub use fault::{FaultCounts, FaultModel};
pub use matrix::{
    CachePolicy, CellKey, ExperimentMatrix, MatrixBackend, Scenario, ScenarioSpec, WrapState,
    DEFAULT_REPLICATES,
};
pub use profile::{profile_load, profile_load_checked, profile_load_with};
pub use queueing::{
    erlang_c, factor_second_moment, mg1_bounds, validate_against_mg1, Mg1Bounds, QueueingCheck,
    ServiceMoments,
};
pub use sweep::{
    render_fig6, render_fig6_paired, render_tsv, replicate_seed, sweep_paired, sweep_ranks,
    sweep_ranks_adaptive, sweep_ranks_classified, sweep_ranks_replicated, LaunchStats, PairedPoint,
};

//! The experiment design space: scenario axes and their cross product.
//!
//! A [`Scenario`] is one point in (workload × loader backend × storage
//! model × wrap state × cache policy × service distribution × fault
//! model × server topology); an
//! [`ExperimentMatrix`] holds the axis values and expands the full cross
//! product. Execution lives in [`crate::experiment`], which gathers the
//! expanded grid into one columnar [`crate::batch::BatchPlan`] pass —
//! this module is purely the *description* of what to run, which is what
//! makes "Fig 6, but for every backend", "Fig 6, but on local disk with
//! a Spindle cache", or "Fig 6, but under a heavy-tailed metadata
//! server" one-line requests.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use depchaos_core::LoaderBackend;
use depchaos_loader::HashStoreService;
use depchaos_vfs::{StorageModel, Vfs};
use depchaos_workloads::{InstalledWorkload, Workload};

use crate::adaptive::AdaptiveControl;
use crate::config::{LaunchConfig, ServerTopology, ServiceDistribution};
use crate::fault::FaultModel;

/// The wrap-state axis: is the binary launched as built, or after
/// Shrinkwrap froze its closure?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WrapState {
    Plain,
    Wrapped,
}

impl WrapState {
    pub fn all() -> [WrapState; 2] {
        [WrapState::Plain, WrapState::Wrapped]
    }

    pub fn name(&self) -> &'static str {
        match self {
            WrapState::Plain => "plain",
            WrapState::Wrapped => "wrapped",
        }
    }

    /// Inverse of [`WrapState::name`] — the serve front door parses axis
    /// deltas by the exact names the reports print.
    pub fn parse(s: &str) -> Option<WrapState> {
        WrapState::all().into_iter().find(|w| w.name() == s)
    }
}

/// The cache-policy axis: every node pays the cold stream, or a
/// Spindle-style broadcast cache lets one node pay and the rest replay warm
/// (the paper's "combining Shrinkwrap with an approach like Spindle").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CachePolicy {
    Cold,
    Broadcast,
}

impl CachePolicy {
    pub fn all() -> [CachePolicy; 2] {
        [CachePolicy::Cold, CachePolicy::Broadcast]
    }

    pub fn name(&self) -> &'static str {
        match self {
            CachePolicy::Cold => "cold",
            CachePolicy::Broadcast => "broadcast",
        }
    }

    /// Inverse of [`CachePolicy::name`].
    pub fn parse(s: &str) -> Option<CachePolicy> {
        CachePolicy::all().into_iter().find(|c| c.name() == s)
    }

    /// Apply the policy to a launch configuration.
    pub fn apply(&self, mut cfg: LaunchConfig) -> LaunchConfig {
        cfg.broadcast_cache = matches!(self, CachePolicy::Broadcast);
        cfg
    }
}

/// The backend axis. Stock [`LoaderBackend`]s carry no per-world state and
/// are used as-is; the hash-store service must index the installed world
/// first, so it is built per cell from the install record.
#[derive(Clone)]
pub enum MatrixBackend {
    Stock(LoaderBackend),
    /// A [`HashStoreService`]-backed loader service whose index is
    /// populated from the workload's installed libraries (content digest +
    /// soname alias each).
    HashStore,
}

impl MatrixBackend {
    /// The four backends the per-backend Fig 6 compares.
    pub fn all() -> Vec<MatrixBackend> {
        let mut v: Vec<MatrixBackend> =
            LoaderBackend::all_stock().into_iter().map(MatrixBackend::Stock).collect();
        v.push(MatrixBackend::HashStore);
        v
    }

    pub fn glibc() -> Self {
        MatrixBackend::Stock(LoaderBackend::glibc())
    }

    pub fn musl() -> Self {
        MatrixBackend::Stock(LoaderBackend::musl())
    }

    pub fn name(&self) -> &str {
        match self {
            MatrixBackend::Stock(b) => b.name(),
            MatrixBackend::HashStore => "hash-store",
        }
    }

    /// Inverse of [`MatrixBackend::name`] over the sweepable backends
    /// ([`MatrixBackend::all`]).
    pub fn parse(s: &str) -> Option<MatrixBackend> {
        MatrixBackend::all().into_iter().find(|b| b.name() == s)
    }

    /// Resolve to a concrete [`LoaderBackend`] against an installed world.
    /// Index building is store-side setup, not launch work — but a world
    /// the store cannot index faithfully (e.g. two libraries sharing one
    /// soname) is an error, not a silently mis-indexed cell.
    pub fn backend_for(
        &self,
        fs: &Vfs,
        installed: &InstalledWorkload,
    ) -> Result<LoaderBackend, String> {
        match self {
            MatrixBackend::Stock(b) => Ok(b.clone()),
            MatrixBackend::HashStore => {
                let mut svc = HashStoreService::new();
                for lib in &installed.lib_paths {
                    svc.register_with_soname(fs, lib)
                        .map_err(|e| format!("hash-store index failed for {lib}: {e}"))?;
                }
                Ok(LoaderBackend::service_named("hash-store", Arc::new(svc)))
            }
        }
    }
}

impl std::fmt::Debug for MatrixBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("MatrixBackend").field(&self.name()).finish()
    }
}

/// Identity of one *profiling* cell: the axes that change the captured op
/// stream. Wrap state is deliberately absent — one profiling run of a cell
/// captures the plain stream, wraps, and captures the wrapped stream, so
/// each unique (workload, backend, storage) triple is profiled exactly
/// once no matter how many scenarios share it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellKey {
    pub workload: String,
    pub backend: String,
    pub storage: StorageModel,
}

/// One point of the design space, ready to simulate.
#[derive(Clone)]
pub struct Scenario {
    pub workload: Arc<dyn Workload>,
    pub backend: MatrixBackend,
    pub storage: StorageModel,
    pub wrap: WrapState,
    pub cache: CachePolicy,
    pub dist: ServiceDistribution,
    pub fault: FaultModel,
    pub topology: ServerTopology,
}

impl Scenario {
    /// The profile-cache cell this scenario reads from.
    pub fn cell_key(&self) -> CellKey {
        CellKey {
            workload: self.workload.name().to_string(),
            backend: self.backend.name().to_string(),
            storage: self.storage,
        }
    }

    /// Serializable identity (names only) for reports.
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            workload: self.workload.name().to_string(),
            backend: self.backend.name().to_string(),
            storage: self.storage,
            wrap: self.wrap,
            cache: self.cache,
            dist: self.dist,
            fault: self.fault,
            topology: self.topology,
        }
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Scenario({} × {} × {} × {} × {} × {})",
            self.workload.name(),
            self.backend.name(),
            self.storage.name(),
            self.wrap.name(),
            self.cache.name(),
            self.dist.name()
        )
    }
}

/// The data identity of a scenario: every axis by name, serializable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScenarioSpec {
    pub workload: String,
    pub backend: String,
    pub storage: StorageModel,
    pub wrap: WrapState,
    pub cache: CachePolicy,
    pub dist: ServiceDistribution,
    /// Degraded-mode axis; [`FaultModel::None`] for healthy cells. Serde
    /// defaults keep reports written before the axis existed loadable.
    #[serde(default)]
    pub fault: FaultModel,
    /// Metadata-fleet axis; [`ServerTopology::single`] for the paper's one
    /// server. Serde defaults keep pre-axis reports loadable.
    #[serde(default)]
    pub topology: ServerTopology,
}

impl ScenarioSpec {
    /// One-line label, stable across renderers and TSV. Also the input of
    /// the per-cell seed derivation ([`crate::experiment::scenario_seed`]),
    /// which is what makes "reproducible from (seed, cell key)" literal.
    /// The fault segment is appended only for faulted cells, and the
    /// topology segment only for multi-server fleets, so every healthy
    /// single-server label — and therefore every such cell seed — is
    /// byte-identical to what it was before those axes existed.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/{}/{}/{}/{}",
            self.workload,
            self.backend,
            self.storage.name(),
            self.wrap.name(),
            self.cache.name(),
            self.dist.name()
        );
        if !self.fault.is_none() {
            label.push('/');
            label.push_str(&self.fault.name());
        }
        if !self.topology.is_single() {
            label.push('/');
            label.push_str(&self.topology.name());
        }
        label
    }
}

/// Default replicate count for stochastic scenarios — enough for stable
/// p50/p99 nearest-rank picks without drowning a CI sweep.
pub const DEFAULT_REPLICATES: usize = 11;

/// The experiment matrix: axis values plus the sweep parameters shared by
/// every scenario. `expand()` is the cross product; `run()` (in
/// [`crate::experiment`]) profiles each unique cell once and fans the DES
/// sweeps out in parallel.
#[derive(Clone)]
pub struct ExperimentMatrix {
    pub(crate) workloads: Vec<Arc<dyn Workload>>,
    pub(crate) backends: Vec<MatrixBackend>,
    pub(crate) storages: Vec<StorageModel>,
    pub(crate) wrap_states: Vec<WrapState>,
    pub(crate) cache_policies: Vec<CachePolicy>,
    pub(crate) distributions: Vec<ServiceDistribution>,
    pub(crate) faults: Vec<FaultModel>,
    pub(crate) topologies: Vec<ServerTopology>,
    pub(crate) rank_points: Vec<usize>,
    pub(crate) replicates: usize,
    pub(crate) adaptive: Option<AdaptiveControl>,
    pub(crate) base: LaunchConfig,
}

impl ExperimentMatrix {
    /// An empty matrix with the paper's sweep defaults: 512/1024/2048
    /// ranks, NFS storage, glibc backend, both wrap states, cold caches.
    /// Every axis can be overridden; axes left empty at `expand()` time
    /// fall back to these defaults so a matrix is always runnable.
    pub fn new() -> Self {
        ExperimentMatrix {
            workloads: Vec::new(),
            backends: Vec::new(),
            storages: Vec::new(),
            wrap_states: Vec::new(),
            cache_policies: Vec::new(),
            distributions: Vec::new(),
            faults: Vec::new(),
            topologies: Vec::new(),
            rank_points: Vec::new(),
            replicates: DEFAULT_REPLICATES,
            adaptive: None,
            base: LaunchConfig::default(),
        }
    }

    pub fn workload(mut self, w: impl Workload + 'static) -> Self {
        self.workloads.push(Arc::new(w));
        self
    }

    pub fn workload_arc(mut self, w: Arc<dyn Workload>) -> Self {
        self.workloads.push(w);
        self
    }

    pub fn backend(mut self, b: MatrixBackend) -> Self {
        self.backends.push(b);
        self
    }

    pub fn backends(mut self, bs: impl IntoIterator<Item = MatrixBackend>) -> Self {
        self.backends.extend(bs);
        self
    }

    pub fn storage(mut self, s: StorageModel) -> Self {
        self.storages.push(s);
        self
    }

    pub fn wrap_states(mut self, ws: impl IntoIterator<Item = WrapState>) -> Self {
        self.wrap_states.extend(ws);
        self
    }

    pub fn cache_policies(mut self, cs: impl IntoIterator<Item = CachePolicy>) -> Self {
        self.cache_policies.extend(cs);
        self
    }

    pub fn distribution(mut self, d: ServiceDistribution) -> Self {
        self.distributions.push(d);
        self
    }

    pub fn distributions(mut self, ds: impl IntoIterator<Item = ServiceDistribution>) -> Self {
        self.distributions.extend(ds);
        self
    }

    pub fn fault(mut self, f: FaultModel) -> Self {
        self.faults.push(f);
        self
    }

    /// The degraded-mode axis; an empty axis defaults to healthy
    /// ([`FaultModel::None`]) at `expand()` time.
    pub fn faults(mut self, fs: impl IntoIterator<Item = FaultModel>) -> Self {
        self.faults.extend(fs);
        self
    }

    pub fn topology(mut self, t: ServerTopology) -> Self {
        self.topologies.push(t);
        self
    }

    /// The metadata-fleet axis; an empty axis defaults to the paper's
    /// single server ([`ServerTopology::single`]) at `expand()` time.
    pub fn topologies(mut self, ts: impl IntoIterator<Item = ServerTopology>) -> Self {
        self.topologies.extend(ts);
        self
    }

    /// Replicates per (stochastic scenario, rank point); deterministic
    /// scenarios always run exactly once. Default
    /// [`DEFAULT_REPLICATES`].
    pub fn replicates(mut self, k: usize) -> Self {
        self.replicates = k.max(1);
        self
    }

    pub fn rank_points(mut self, pts: impl IntoIterator<Item = usize>) -> Self {
        self.rank_points.extend(pts);
        self
    }

    /// Override the base [`LaunchConfig`] (cluster calibration); the cache
    /// policy axis still toggles `broadcast_cache` per scenario.
    pub fn base_config(mut self, cfg: LaunchConfig) -> Self {
        self.base = cfg;
        self
    }

    /// The rank points this matrix will sweep — the explicit list, or the
    /// paper's 512/1024/2048 default when none were given. Public because
    /// the serve layer keys its store per (scenario, rank point) and must
    /// enumerate exactly what `run()` would simulate.
    pub fn effective_rank_points(&self) -> Vec<usize> {
        if self.rank_points.is_empty() {
            vec![512, 1024, 2048]
        } else {
            self.rank_points.clone()
        }
    }

    /// Run stochastic cells under the sequential stopping rule instead of
    /// a fixed replicate count: each `(scenario, rank point)` simulates
    /// seeded replicate batches until `ctl`'s precision target is met (or
    /// its `max_k` budget is exhausted). Deterministic, draw-free cells
    /// still clamp to one replicate. With the precision rule disabled
    /// (`target_rel_milli == 0`) and `max_k == replicates`, the run is
    /// byte-identical to the fixed-K matrix.
    pub fn adaptive(mut self, ctl: AdaptiveControl) -> Self {
        self.adaptive = Some(ctl.normalized());
        self
    }

    /// The stopping rule `run()` will apply, when one was requested via
    /// [`ExperimentMatrix::adaptive`]. Public because the serve layer must
    /// hash it into every stochastic cell's `ScenarioKey` — see
    /// `crates/serve`.
    pub fn adaptive_control(&self) -> Option<AdaptiveControl> {
        self.adaptive
    }

    /// The replicate count `run()` will request per stochastic rank point.
    pub fn replicate_count(&self) -> usize {
        self.replicates
    }

    /// The base launch configuration (cluster calibration + experiment
    /// seed) every scenario derives its per-cell config from.
    pub fn base(&self) -> &LaunchConfig {
        &self.base
    }

    /// Expand the full cross product. Empty axes default to: glibc, NFS,
    /// both wrap states, cold cache, deterministic service, no faults,
    /// one metadata server.
    /// (Workloads have no default — an empty workload axis expands to no
    /// scenarios.)
    pub fn expand(&self) -> Vec<Scenario> {
        let backends = if self.backends.is_empty() {
            vec![MatrixBackend::glibc()]
        } else {
            self.backends.clone()
        };
        let storages =
            if self.storages.is_empty() { vec![StorageModel::Nfs] } else { self.storages.clone() };
        let wraps = if self.wrap_states.is_empty() {
            WrapState::all().to_vec()
        } else {
            self.wrap_states.clone()
        };
        let caches = if self.cache_policies.is_empty() {
            vec![CachePolicy::Cold]
        } else {
            self.cache_policies.clone()
        };
        let dists = if self.distributions.is_empty() {
            vec![ServiceDistribution::Deterministic]
        } else {
            self.distributions.clone()
        };
        let faults =
            if self.faults.is_empty() { vec![FaultModel::None] } else { self.faults.clone() };
        let topologies = if self.topologies.is_empty() {
            vec![ServerTopology::single()]
        } else {
            self.topologies.clone()
        };

        let mut out = Vec::new();
        for w in &self.workloads {
            for b in &backends {
                for s in &storages {
                    for wr in &wraps {
                        for c in &caches {
                            for d in &dists {
                                for f in &faults {
                                    for t in &topologies {
                                        out.push(Scenario {
                                            workload: Arc::clone(w),
                                            backend: b.clone(),
                                            storage: *s,
                                            wrap: *wr,
                                            cache: *c,
                                            dist: *d,
                                            fault: *f,
                                            topology: *t,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

impl Default for ExperimentMatrix {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_workloads::{Emacs, Pynamic};

    #[test]
    fn expansion_is_the_cross_product() {
        let m = ExperimentMatrix::new()
            .workload(Pynamic::new(10))
            .workload(Emacs)
            .backends(MatrixBackend::all())
            .storage(StorageModel::Nfs)
            .storage(StorageModel::Local)
            .wrap_states(WrapState::all())
            .cache_policies(CachePolicy::all());
        let scenarios = m.expand();
        assert_eq!(scenarios.len(), 2 * 4 * 2 * 2 * 2);
        // Cell keys collapse the wrap and cache axes.
        let cells: std::collections::HashSet<CellKey> =
            scenarios.iter().map(|s| s.cell_key()).collect();
        assert_eq!(cells.len(), 2 * 4 * 2);
    }

    #[test]
    fn empty_axes_default_to_the_paper_cell() {
        let m = ExperimentMatrix::new().workload(Pynamic::new(10));
        let scenarios = m.expand();
        assert_eq!(scenarios.len(), 2, "glibc × nfs × (plain, wrapped) × cold");
        assert!(scenarios.iter().all(|s| s.backend.name() == "glibc"));
        assert!(scenarios.iter().all(|s| s.storage == StorageModel::Nfs));
        assert!(scenarios.iter().all(|s| s.cache == CachePolicy::Cold));
        assert_eq!(m.effective_rank_points(), vec![512, 1024, 2048]);
    }

    #[test]
    fn specs_and_labels_are_data() {
        let m = ExperimentMatrix::new().workload(Pynamic::new(10)).backend(MatrixBackend::glibc());
        let spec = m.expand()[0].spec();
        assert_eq!(spec.label(), "pynamic-10/glibc/nfs/plain/cold/deterministic");
    }

    #[test]
    fn distribution_axis_multiplies_scenarios_not_cells() {
        let m = ExperimentMatrix::new()
            .workload(Pynamic::new(10))
            .distributions(ServiceDistribution::all());
        let scenarios = m.expand();
        assert_eq!(scenarios.len(), 2 * 3, "(plain, wrapped) × 3 distributions");
        // The distribution changes simulation, not profiling: one cell.
        let cells: std::collections::HashSet<CellKey> =
            scenarios.iter().map(|s| s.cell_key()).collect();
        assert_eq!(cells.len(), 1);
        let labels: std::collections::HashSet<String> =
            scenarios.iter().map(|s| s.spec().label()).collect();
        assert_eq!(labels.len(), 6, "every scenario is addressable by label");
    }

    #[test]
    fn fault_axis_multiplies_scenarios_and_extends_labels_only_when_faulted() {
        let m = ExperimentMatrix::new().workload(Pynamic::new(10)).faults([
            FaultModel::None,
            FaultModel::ServerStall { at_ns: 2_000_000_000, duration_ns: 10_000_000_000 },
        ]);
        let scenarios = m.expand();
        assert_eq!(scenarios.len(), 2 * 2, "(plain, wrapped) × (healthy, stalled)");
        // Faults change simulation, not profiling: still one cell.
        let cells: std::collections::HashSet<CellKey> =
            scenarios.iter().map(|s| s.cell_key()).collect();
        assert_eq!(cells.len(), 1);
        // Healthy labels stay byte-identical to the pre-fault-axis format,
        // so healthy per-cell seeds are unchanged; faulted labels grow a
        // seventh segment that round-trips through FaultModel::parse.
        let labels: std::collections::HashSet<String> =
            scenarios.iter().map(|s| s.spec().label()).collect();
        assert!(labels.contains("pynamic-10/glibc/nfs/plain/cold/deterministic"));
        assert!(labels.contains(
            "pynamic-10/glibc/nfs/plain/cold/deterministic/stall-2000000000-10000000000"
        ));
    }

    #[test]
    fn topology_axis_multiplies_scenarios_and_extends_labels_only_for_fleets() {
        let m = ExperimentMatrix::new()
            .workload(Pynamic::new(10))
            .topologies([ServerTopology::single(), ServerTopology::hash(4)]);
        let scenarios = m.expand();
        assert_eq!(scenarios.len(), 2 * 2, "(plain, wrapped) × (1 server, 4 servers)");
        // Topology changes simulation, not profiling: still one cell.
        let cells: std::collections::HashSet<CellKey> =
            scenarios.iter().map(|s| s.cell_key()).collect();
        assert_eq!(cells.len(), 1);
        // Single-server labels stay byte-identical to the pre-axis format,
        // so their per-cell seeds are unchanged; fleet labels grow a
        // segment that round-trips through ServerTopology::parse.
        let labels: std::collections::HashSet<String> =
            scenarios.iter().map(|s| s.spec().label()).collect();
        assert!(labels.contains("pynamic-10/glibc/nfs/plain/cold/deterministic"));
        assert!(labels.contains("pynamic-10/glibc/nfs/plain/cold/deterministic/servers-4-hash"));
        assert_eq!(ServerTopology::parse("servers-4-hash"), Some(ServerTopology::hash(4)));
    }

    #[test]
    fn hash_store_backend_resolves_an_installed_world() {
        use depchaos_loader::LdCache;
        let w = Pynamic::new(8);
        let fs = Vfs::local();
        let installed = w.install(&fs).unwrap();
        let backend = MatrixBackend::HashStore.backend_for(&fs, &installed).unwrap();
        assert_eq!(backend.name(), "hash-store");
        let loader = backend.instantiate(&fs, &w.environment(), &LdCache::empty());
        let r = loader.load(&installed.exe_path).unwrap();
        assert!(r.success(), "{:?}", r.failures);
    }
}

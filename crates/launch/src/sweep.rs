//! Rank sweeps for the Fig 6 series.

use rayon::prelude::*;

use depchaos_vfs::StraceLog;

use crate::config::{LaunchConfig, LaunchResult};
use crate::des::simulate_launch;

/// Simulate the same workload at several scales, in parallel (the
/// simulations are independent — rayon's bread and butter).
pub fn sweep_ranks(
    ops: &StraceLog,
    base: &LaunchConfig,
    rank_points: &[usize],
) -> Vec<(usize, LaunchResult)> {
    rank_points
        .par_iter()
        .map(|&ranks| (ranks, simulate_launch(ops, &base.clone().with_ranks(ranks))))
        .collect()
}

/// Render the Fig 6 series as an aligned table: one row per scale, normal
/// vs wrapped, with the speedup factor.
pub fn render_fig6(
    points: &[usize],
    normal: &[(usize, LaunchResult)],
    wrapped: &[(usize, LaunchResult)],
) -> String {
    let mut s = String::from("ranks  normal(s)  wrapped(s)  speedup\n");
    for &p in points {
        let n = normal.iter().find(|(r, _)| *r == p).map(|(_, l)| l.seconds()).unwrap_or(f64::NAN);
        let w = wrapped.iter().find(|(r, _)| *r == p).map(|(_, l)| l.seconds()).unwrap_or(f64::NAN);
        s.push_str(&format!("{p:>5}  {n:>9.1}  {w:>10.1}  {:>6.1}x\n", n / w));
    }
    s
}

/// Render the sweep as TSV (`ranks<TAB>seconds`), one series — the raw data
/// behind Fig 6 for external plotting.
pub fn render_tsv(series: &[(usize, LaunchResult)]) -> String {
    let mut s = String::from("ranks\tseconds\tserver_ops\tpeak_queue\n");
    for (ranks, r) in series {
        s.push_str(&format!(
            "{ranks}\t{:.3}\t{}\t{}\n",
            r.seconds(),
            r.server_ops,
            r.peak_queue_depth
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_vfs::{Op, Outcome, Syscall};

    fn cold_stream(n: usize) -> StraceLog {
        let mut log = StraceLog::new();
        for i in 0..n {
            log.push(Syscall {
                op: Op::Openat,
                path: format!("/l/{i}"),
                outcome: Outcome::Ok,
                cost_ns: 200_000,
            });
        }
        log
    }

    #[test]
    fn sweep_is_monotone_in_ranks() {
        let cfg =
            LaunchConfig { base_overhead_ns: 0, per_rank_overhead_ns: 0, ..Default::default() };
        let pts = [512usize, 1024, 2048];
        let res = sweep_ranks(&cold_stream(1000), &cfg, &pts);
        assert_eq!(res.len(), 3);
        let times: Vec<u64> = pts
            .iter()
            .map(|p| res.iter().find(|(r, _)| r == p).unwrap().1.time_to_launch_ns)
            .collect();
        assert!(times[0] <= times[1] && times[1] <= times[2], "{times:?}");
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let cfg = LaunchConfig::default();
        let series = sweep_ranks(&cold_stream(50), &cfg, &[512, 1024]);
        let tsv = render_tsv(&series);
        assert!(tsv.starts_with("ranks\t"));
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.contains("512\t"));
    }

    #[test]
    fn render_contains_speedup_column() {
        let cfg = LaunchConfig::default();
        let pts = [512usize];
        let normal = sweep_ranks(&cold_stream(100), &cfg, &pts);
        let wrapped = sweep_ranks(&cold_stream(10), &cfg, &pts);
        let table = render_fig6(&pts, &normal, &wrapped);
        assert!(table.contains("speedup"));
        assert!(table.contains("512"));
    }
}

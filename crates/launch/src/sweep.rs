//! Rank sweeps for the Fig 6 series.

use std::collections::HashMap;

use rayon::prelude::*;

use depchaos_vfs::StraceLog;

use crate::config::{LaunchConfig, LaunchResult};
use crate::des::{simulate_classified, ClassifiedStream};

/// Simulate the same workload at several scales, in parallel (the
/// simulations are independent — rayon's bread and butter).
///
/// The stream is classified **once**; every rank point replays the shared
/// [`ClassifiedStream`]. Callers that already hold one (the experiment
/// engine's memoized cells) should use [`sweep_ranks_classified`].
pub fn sweep_ranks(
    ops: &StraceLog,
    base: &LaunchConfig,
    rank_points: &[usize],
) -> Vec<(usize, LaunchResult)> {
    sweep_ranks_classified(&ClassifiedStream::classify(ops, base), base, rank_points)
}

/// [`sweep_ranks`] over a pre-classified stream: the rayon workers share
/// `stream` by reference — zero per-point classification or cloning.
pub fn sweep_ranks_classified(
    stream: &ClassifiedStream,
    base: &LaunchConfig,
    rank_points: &[usize],
) -> Vec<(usize, LaunchResult)> {
    rank_points
        .par_iter()
        .map(|&ranks| (ranks, simulate_classified(stream, &base.clone().with_ranks(ranks))))
        .collect()
}

/// Render the Fig 6 series as an aligned table: one row per scale, normal
/// vs wrapped, with the speedup factor.
pub fn render_fig6(
    points: &[usize],
    normal: &[(usize, LaunchResult)],
    wrapped: &[(usize, LaunchResult)],
) -> String {
    let by_ranks = |series: &[(usize, LaunchResult)]| -> HashMap<usize, f64> {
        series.iter().map(|(r, l)| (*r, l.seconds())).collect()
    };
    let normal = by_ranks(normal);
    let wrapped = by_ranks(wrapped);
    let secs = |v: Option<f64>, width: usize| match v {
        Some(t) => format!("{t:>width$.1}"),
        None => format!("{:>width$}", "-"),
    };
    let mut s = String::from("ranks  normal(s)  wrapped(s)  speedup\n");
    for &p in points {
        let n = normal.get(&p).copied();
        let w = wrapped.get(&p).copied();
        let speedup = match (n, w) {
            // A zero or missing wrapped time has no meaningful ratio.
            (Some(n), Some(w)) if (n / w).is_finite() => format!("{:>6.1}x", n / w),
            _ => format!("{:>7}", "-"),
        };
        s.push_str(&format!("{p:>5}  {}  {}  {speedup}\n", secs(n, 9), secs(w, 10)));
    }
    s
}

/// Render the sweep as TSV (`ranks<TAB>seconds`), one series — the raw data
/// behind Fig 6 for external plotting.
pub fn render_tsv(series: &[(usize, LaunchResult)]) -> String {
    let mut s = String::from("ranks\tseconds\tserver_ops\tpeak_queue\n");
    for (ranks, r) in series {
        s.push_str(&format!(
            "{ranks}\t{:.3}\t{}\t{}\n",
            r.seconds(),
            r.server_ops,
            r.peak_queue_depth
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_vfs::{Op, Outcome, Syscall};

    fn cold_stream(n: usize) -> StraceLog {
        let mut log = StraceLog::new();
        for i in 0..n {
            log.push(Syscall::new(Op::Openat, &format!("/l/{i}"), Outcome::Ok, 200_000));
        }
        log
    }

    #[test]
    fn sweep_is_monotone_in_ranks() {
        let cfg =
            LaunchConfig { base_overhead_ns: 0, per_rank_overhead_ns: 0, ..Default::default() };
        let pts = [512usize, 1024, 2048];
        let res = sweep_ranks(&cold_stream(1000), &cfg, &pts);
        assert_eq!(res.len(), 3);
        let times: Vec<u64> = pts
            .iter()
            .map(|p| res.iter().find(|(r, _)| r == p).unwrap().1.time_to_launch_ns)
            .collect();
        assert!(times[0] <= times[1] && times[1] <= times[2], "{times:?}");
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let cfg = LaunchConfig::default();
        let series = sweep_ranks(&cold_stream(50), &cfg, &[512, 1024]);
        let tsv = render_tsv(&series);
        assert!(tsv.starts_with("ranks\t"));
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.contains("512\t"));
    }

    #[test]
    fn render_contains_speedup_column() {
        let cfg = LaunchConfig::default();
        let pts = [512usize];
        let normal = sweep_ranks(&cold_stream(100), &cfg, &pts);
        let wrapped = sweep_ranks(&cold_stream(10), &cfg, &pts);
        let table = render_fig6(&pts, &normal, &wrapped);
        assert!(table.contains("speedup"));
        assert!(table.contains("512"));
    }

    #[test]
    fn render_guards_degenerate_speedups() {
        let zero = LaunchResult {
            time_to_launch_ns: 0,
            nodes: 1,
            server_ops: 0,
            local_ops: 0,
            peak_queue_depth: 0,
        };
        let cfg = LaunchConfig::default();
        let pts = [512usize, 1024];
        let normal = sweep_ranks(&cold_stream(10), &cfg, &pts);
        // Wrapped series: a zero time at 512, no data at all for 1024.
        let wrapped = vec![(512usize, zero)];
        let table = render_fig6(&pts, &normal, &wrapped);
        assert!(!table.contains("inf"), "zero wrapped time must not print inf:\n{table}");
        assert!(!table.contains("NaN"), "missing point must not print NaN ratio:\n{table}");
        assert!(table.contains('-'));
    }
}

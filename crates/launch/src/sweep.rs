//! Rank sweeps for the Fig 6 series.
//!
//! [`sweep_ranks`] is the one-series drive; [`sweep_ranks_replicated`] is
//! the stochastic-aware version: each rank point is simulated over K seeded
//! replicates (replicate `r` re-seeds the config from
//! [`SplitMix::split`]`(base.seed, SplitMix::REPLICATE, r)`, replicate 0
//! *being* the base seed) and summarised as [`LaunchStats`] —
//! p50/p95/p99/mean of the launch time. Under a deterministic service
//! distribution every replicate would be identical, so K collapses to 1
//! and the stats degenerate to the single exact value.

use std::collections::HashMap;

use depchaos_vfs::StraceLog;
use depchaos_workloads::SplitMix;
use serde::{Deserialize, Serialize};

use crate::adaptive::{run_adaptive_units, AdaptiveControl, AdaptiveUnit, PairedDiff};
use crate::batch::BatchPlan;
use crate::config::{LaunchConfig, LaunchResult};
use crate::des::ClassifiedStream;

/// Launch-time summary statistics over K seeded replicates of one rank
/// point. All values are nanoseconds of `time_to_launch_ns`; percentiles
/// are nearest-rank over the sorted replicate sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchStats {
    /// How many replicates the sample holds (1 for deterministic runs).
    pub replicates: usize,
    pub mean_ns: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
}

impl LaunchStats {
    /// Summarise a non-empty replicate sample (sorts in place).
    pub fn from_samples(samples: &mut [u64]) -> LaunchStats {
        assert!(!samples.is_empty(), "stats need at least one replicate");
        samples.sort_unstable();
        let pct = |p: f64| samples[(p / 100.0 * (samples.len() - 1) as f64).round() as usize];
        // Round to nearest: truncating division skewed the mean low by up
        // to 1 ns, so a perfectly symmetric sample disagreed with its own
        // median.
        let n = samples.len() as u128;
        let mean = (samples.iter().map(|&s| s as u128).sum::<u128>() + n / 2) / n;
        LaunchStats {
            replicates: samples.len(),
            mean_ns: mean as u64,
            p50_ns: pct(50.0),
            p95_ns: pct(95.0),
            p99_ns: pct(99.0),
        }
    }

    pub fn p50_s(&self) -> f64 {
        self.p50_ns as f64 / 1e9
    }

    pub fn p95_s(&self) -> f64 {
        self.p95_ns as f64 / 1e9
    }

    pub fn p99_s(&self) -> f64 {
        self.p99_ns as f64 / 1e9
    }
}

/// The seed replicate `r` of `base_seed` runs under: replicate 0 is the
/// base itself (so a 1-replicate sweep is exactly the plain sweep), later
/// replicates take independent [`SplitMix`] substreams in the
/// [`SplitMix::REPLICATE`] domain — decorrelated by construction from the
/// per-node service draws ([`SplitMix::NODE`]), which the pre-domain scheme
/// aliased: `replicate_seed(base, r)` used to equal the first service
/// factor node `r` drew in replicate 0.
pub fn replicate_seed(base_seed: u64, replicate: usize) -> u64 {
    if replicate == 0 {
        base_seed
    } else {
        SplitMix::split(base_seed, SplitMix::REPLICATE, replicate as u64).next_u64()
    }
}

/// [`sweep_ranks_classified`] over K seeded replicates per rank point:
/// returns, per point, replicate 0's full [`LaunchResult`] (the series the
/// plain renderers draw) plus the [`LaunchStats`] over all replicates.
/// `replicates` is clamped to 1 when the run takes no draws at all — a
/// deterministic distribution under a draw-free fault model — since extra
/// replicates could only repeat the same value.
///
/// The whole (rank point × replicate) grid executes as one [`BatchPlan`]:
/// deterministic points collapse to shared analytic kernels, stochastic
/// replicates batch into one heap pass per seed.
pub fn sweep_ranks_replicated(
    stream: &ClassifiedStream,
    base: &LaunchConfig,
    rank_points: &[usize],
    replicates: usize,
) -> Vec<(usize, LaunchResult, LaunchStats)> {
    let k = if stream.params().dist.is_deterministic() && !base.fault.takes_draws() {
        1
    } else {
        replicates.max(1)
    };
    let mut plan = BatchPlan::new();
    let id = plan.stream(stream);
    for &ranks in rank_points {
        for r in 0..k {
            plan.push(id, &base.clone().with_ranks(ranks).with_seed(replicate_seed(base.seed, r)));
        }
    }
    let results = plan.execute();
    rank_points
        .iter()
        .enumerate()
        .map(|(pi, &ranks)| {
            let rows = &results[pi * k..(pi + 1) * k];
            let mut samples: Vec<u64> = rows.iter().map(|l| l.time_to_launch_ns).collect();
            let stats = LaunchStats::from_samples(&mut samples);
            (ranks, rows[0], stats)
        })
        .collect()
}

/// [`sweep_ranks_replicated`] under adaptive replicate control: each rank
/// point runs replicates in seeded batches and stops as soon as the
/// sequential rule ([`AdaptiveControl`]) is satisfied, instead of always
/// spending `max_k`. The returned [`LaunchStats::replicates`] records the
/// K each point stopped at.
///
/// Bit-reproducibility: replicate `r`'s draws are identical whether `r` is
/// reached adaptively or under fixed K ([`replicate_seed`] is a pure
/// function of `(base seed, r)`), so the adaptive sample is exactly a
/// prefix of the fixed-`max_k` sample — and with the precision rule
/// disabled (`target_rel_milli == 0`) this function is byte-identical to
/// `sweep_ranks_replicated(stream, base, rank_points, max_k)`.
pub fn sweep_ranks_adaptive(
    stream: &ClassifiedStream,
    base: &LaunchConfig,
    rank_points: &[usize],
    ctl: AdaptiveControl,
) -> Vec<(usize, LaunchResult, LaunchStats)> {
    let units: Vec<AdaptiveUnit<'_>> = rank_points
        .iter()
        .map(|&ranks| AdaptiveUnit { stream, cfg: base.clone().with_ranks(ranks) })
        .collect();
    let per_point = run_adaptive_units(&units, ctl);
    rank_points
        .iter()
        .zip(per_point)
        .map(|(&ranks, rows)| {
            let mut samples: Vec<u64> = rows.iter().map(|l| l.time_to_launch_ns).collect();
            let stats = LaunchStats::from_samples(&mut samples);
            (ranks, rows[0], stats)
        })
        .collect()
}

/// One rank point of a common-random-numbers comparison: both arms'
/// replicate statistics plus the paired-difference estimator over their
/// shared-seed deltas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairedPoint {
    pub ranks: usize,
    pub baseline: LaunchStats,
    pub variant: LaunchStats,
    pub diff: PairedDiff,
}

/// Sweep two arms of one experiment — e.g. the plain and wrapped streams
/// of a cell — under **shared replicate seeds**, the common-random-numbers
/// design. Replicate `r` of both arms runs under
/// `replicate_seed(base.seed, r)`, so their NODE-domain service factors
/// coincide and the per-replicate deltas cancel the common noise; the
/// returned [`PairedDiff`] carries the CRN-tightened confidence interval
/// on the arm difference.
///
/// This deliberately does **not** use the matrix's per-cell seed
/// derivation ([`crate::experiment::scenario_seed`] hashes the wrap state
/// into the label, decorrelating the arms by design) — pairing is a
/// different experiment design, chosen here on purpose.
pub fn sweep_paired(
    baseline: &ClassifiedStream,
    variant: &ClassifiedStream,
    base: &LaunchConfig,
    rank_points: &[usize],
    replicates: usize,
) -> Vec<PairedPoint> {
    let k = replicates.max(1);
    let mut plan = BatchPlan::new();
    let ids = [plan.stream(baseline), plan.stream(variant)];
    for &ranks in rank_points {
        for &id in &ids {
            // Both arms share replicate r's seed — that sharing IS the
            // common-random-numbers design.
            for r in 0..k {
                plan.push(
                    id,
                    &base.clone().with_ranks(ranks).with_seed(replicate_seed(base.seed, r)),
                );
            }
        }
    }
    let rows = plan.execute();
    rank_points
        .iter()
        .enumerate()
        .map(|(pi, &ranks)| {
            let b = &rows[pi * 2 * k..pi * 2 * k + k];
            let v = &rows[pi * 2 * k + k..(pi + 1) * 2 * k];
            let bs: Vec<u64> = b.iter().map(|l| l.time_to_launch_ns).collect();
            let vs: Vec<u64> = v.iter().map(|l| l.time_to_launch_ns).collect();
            PairedPoint {
                ranks,
                baseline: LaunchStats::from_samples(&mut bs.clone()),
                variant: LaunchStats::from_samples(&mut vs.clone()),
                diff: PairedDiff::from_samples(&bs, &vs),
            }
        })
        .collect()
}

/// Render a [`sweep_paired`] comparison as the CRN Fig 6 table: per rank
/// point, both arm means, the speedup, and the 95% half-width of the mean
/// difference under the paired (CRN) and unpaired estimators — the last
/// two columns are the point of the exercise.
pub fn render_fig6_paired(points: &[PairedPoint]) -> String {
    let mut s = String::from(
        "ranks  plain(s)  wrapped(s)  speedup  ±delta paired(s)  ±delta unpaired(s)\n",
    );
    for p in points {
        let speedup = match p.diff.speedup() {
            Some(x) => format!("{x:>6.1}x"),
            None => format!("{:>7}", "-"),
        };
        s.push_str(&format!(
            "{:>5}  {:>8.1}  {:>10.1}  {speedup}  {:>17.3}  {:>19.3}\n",
            p.ranks,
            p.diff.mean_baseline_ns / 1e9,
            p.diff.mean_variant_ns / 1e9,
            p.diff.half_width_ns / 1e9,
            p.diff.unpaired_half_width_ns / 1e9,
        ));
    }
    s
}

/// Simulate the same workload at several scales in one batched pass.
///
/// The stream is classified **once**; every rank point replays the shared
/// [`ClassifiedStream`]. Callers that already hold one (the experiment
/// engine's memoized cells) should use [`sweep_ranks_classified`].
pub fn sweep_ranks(
    ops: &StraceLog,
    base: &LaunchConfig,
    rank_points: &[usize],
) -> Vec<(usize, LaunchResult)> {
    sweep_ranks_classified(&ClassifiedStream::classify(ops, base), base, rank_points)
}

/// [`sweep_ranks`] over a pre-classified stream: every point is a row of
/// one [`BatchPlan`], so rank points that share a node count (or collapse
/// warm) share one kernel — zero per-point classification or cloning.
pub fn sweep_ranks_classified(
    stream: &ClassifiedStream,
    base: &LaunchConfig,
    rank_points: &[usize],
) -> Vec<(usize, LaunchResult)> {
    let mut plan = BatchPlan::new();
    let id = plan.stream(stream);
    for &ranks in rank_points {
        plan.push(id, &base.clone().with_ranks(ranks));
    }
    rank_points.iter().copied().zip(plan.execute()).collect()
}

/// Render the Fig 6 series as an aligned table: one row per scale, normal
/// vs wrapped, with the speedup factor.
pub fn render_fig6(
    points: &[usize],
    normal: &[(usize, LaunchResult)],
    wrapped: &[(usize, LaunchResult)],
) -> String {
    let by_ranks = |series: &[(usize, LaunchResult)]| -> HashMap<usize, f64> {
        series.iter().map(|(r, l)| (*r, l.seconds())).collect()
    };
    let normal = by_ranks(normal);
    let wrapped = by_ranks(wrapped);
    let secs = |v: Option<f64>, width: usize| match v {
        Some(t) => format!("{t:>width$.1}"),
        None => format!("{:>width$}", "-"),
    };
    let mut s = String::from("ranks  normal(s)  wrapped(s)  speedup\n");
    for &p in points {
        let n = normal.get(&p).copied();
        let w = wrapped.get(&p).copied();
        let speedup = match (n, w) {
            // A zero or missing wrapped time has no meaningful ratio.
            (Some(n), Some(w)) if (n / w).is_finite() => format!("{:>6.1}x", n / w),
            _ => format!("{:>7}", "-"),
        };
        s.push_str(&format!("{p:>5}  {}  {}  {speedup}\n", secs(n, 9), secs(w, 10)));
    }
    s
}

/// Render the sweep as TSV (`ranks<TAB>seconds`), one series — the raw data
/// behind Fig 6 for external plotting.
pub fn render_tsv(series: &[(usize, LaunchResult)]) -> String {
    let mut s = String::from("ranks\tseconds\tserver_ops\tpeak_queue\n");
    for (ranks, r) in series {
        s.push_str(&format!(
            "{ranks}\t{:.3}\t{}\t{}\n",
            r.seconds(),
            r.server_ops,
            r.peak_queue_depth
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::des::simulate_classified;
    use depchaos_vfs::{Op, Outcome, Syscall};

    fn cold_stream(n: usize) -> StraceLog {
        let mut log = StraceLog::new();
        for i in 0..n {
            log.push(Syscall::new(Op::Openat, &format!("/l/{i}"), Outcome::Ok, 200_000));
        }
        log
    }

    #[test]
    fn sweep_is_monotone_in_ranks() {
        let cfg =
            LaunchConfig { base_overhead_ns: 0, per_rank_overhead_ns: 0, ..Default::default() };
        let pts = [512usize, 1024, 2048];
        let res = sweep_ranks(&cold_stream(1000), &cfg, &pts);
        assert_eq!(res.len(), 3);
        let times: Vec<u64> = pts
            .iter()
            .map(|p| res.iter().find(|(r, _)| r == p).unwrap().1.time_to_launch_ns)
            .collect();
        assert!(times[0] <= times[1] && times[1] <= times[2], "{times:?}");
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let cfg = LaunchConfig::default();
        let series = sweep_ranks(&cold_stream(50), &cfg, &[512, 1024]);
        let tsv = render_tsv(&series);
        assert!(tsv.starts_with("ranks\t"));
        assert_eq!(tsv.lines().count(), 3);
        assert!(tsv.contains("512\t"));
    }

    #[test]
    fn render_contains_speedup_column() {
        let cfg = LaunchConfig::default();
        let pts = [512usize];
        let normal = sweep_ranks(&cold_stream(100), &cfg, &pts);
        let wrapped = sweep_ranks(&cold_stream(10), &cfg, &pts);
        let table = render_fig6(&pts, &normal, &wrapped);
        assert!(table.contains("speedup"));
        assert!(table.contains("512"));
    }

    #[test]
    fn deterministic_sweep_collapses_to_one_replicate() {
        let cfg = LaunchConfig::default();
        let stream = ClassifiedStream::classify(&cold_stream(50), &cfg);
        let rows = sweep_ranks_replicated(&stream, &cfg, &[512, 1024], 32);
        for (ranks, first, stats) in rows {
            assert_eq!(stats.replicates, 1, "no point replicating an exact model");
            assert_eq!(stats.p50_ns, first.time_to_launch_ns);
            assert_eq!(stats.p99_ns, first.time_to_launch_ns);
            assert_eq!(
                first,
                sweep_ranks(&cold_stream(50), &cfg, &[ranks])[0].1,
                "replicate 0 is the plain sweep"
            );
        }
    }

    #[test]
    fn stochastic_replicates_order_the_percentiles() {
        use crate::config::ServiceDistribution;
        let cfg = LaunchConfig {
            base_overhead_ns: 0,
            per_rank_overhead_ns: 0,
            service_dist: ServiceDistribution::log_normal(0.5),
            ..Default::default()
        };
        let stream = ClassifiedStream::classify(&cold_stream(200), &cfg);
        let rows = sweep_ranks_replicated(&stream, &cfg, &[2048], 25);
        let (_, first, stats) = &rows[0];
        assert_eq!(stats.replicates, 25);
        assert!(stats.p50_ns <= stats.p95_ns && stats.p95_ns <= stats.p99_ns);
        assert!(stats.p99_ns > stats.p50_ns, "a heavy tail spreads the sample");
        assert_eq!(first.time_to_launch_ns, {
            let c = cfg.clone().with_ranks(2048);
            simulate_classified(&stream, &c).time_to_launch_ns
        });
        // Byte-identical on re-run: the replicate seeds are pure data.
        assert_eq!(rows, sweep_ranks_replicated(&stream, &cfg, &[2048], 25));
    }

    #[test]
    fn stats_percentiles_are_nearest_rank() {
        let mut s: Vec<u64> = (1..=100).collect();
        let st = LaunchStats::from_samples(&mut s);
        assert_eq!(st.replicates, 100);
        assert_eq!(st.p50_ns, 51); // index round(0.5 * 99) = 50
        assert_eq!(st.p95_ns, 95);
        assert_eq!(st.p99_ns, 99);
        let mut one = vec![42u64];
        let st1 = LaunchStats::from_samples(&mut one);
        assert_eq!((st1.p50_ns, st1.p95_ns, st1.p99_ns, st1.mean_ns), (42, 42, 42, 42));
    }

    #[test]
    fn stats_mean_rounds_to_nearest_ns() {
        // A symmetric two-point sample: the mean is 10.5 ns, which must
        // round to the same 11 ns nearest-rank p50 picks — truncation used
        // to report 10 and disagree with every percentile.
        let mut two = vec![10u64, 11];
        let st = LaunchStats::from_samples(&mut two);
        assert_eq!(st.p50_ns, 11);
        assert_eq!(st.mean_ns, 11, "mean rounds to nearest, not toward zero");
        // Larger symmetric sample: mean sits exactly on the midpoint value.
        let mut sym = vec![100u64, 200, 300];
        let st = LaunchStats::from_samples(&mut sym);
        assert_eq!(st.mean_ns, 200);
        assert_eq!(st.mean_ns, st.p50_ns, "p-stats and mean agree on symmetric samples");
        // Fraction below one half still truncates down.
        let mut low = vec![10u64, 10, 11];
        assert_eq!(LaunchStats::from_samples(&mut low).mean_ns, 10);
    }

    #[test]
    fn adaptive_sweep_with_disabled_target_is_the_fixed_sweep() {
        use crate::adaptive::AdaptiveControl;
        use crate::config::ServiceDistribution;
        let cfg = LaunchConfig {
            service_dist: ServiceDistribution::uniform_jitter(0.25),
            seed: 7,
            ..LaunchConfig::default()
        };
        let stream = ClassifiedStream::classify(&cold_stream(150), &cfg);
        let fixed = sweep_ranks_replicated(&stream, &cfg, &[512, 2048], 9);
        let ctl = AdaptiveControl { target_rel_milli: 0, min_k: 1, max_k: 9, batch: 4 };
        assert_eq!(sweep_ranks_adaptive(&stream, &cfg, &[512, 2048], ctl), fixed);
    }

    #[test]
    fn adaptive_sweep_stops_early_and_reports_the_k_used() {
        use crate::adaptive::AdaptiveControl;
        use crate::config::ServiceDistribution;
        let cfg = LaunchConfig {
            service_dist: ServiceDistribution::log_normal(0.5),
            seed: 11,
            ..LaunchConfig::default()
        };
        let stream = ClassifiedStream::classify(&cold_stream(150), &cfg);
        let ctl = AdaptiveControl { target_rel_milli: 500, min_k: 2, max_k: 25, batch: 2 };
        let rows = sweep_ranks_adaptive(&stream, &cfg, &[2048], ctl);
        let (_, first, stats) = &rows[0];
        assert!(stats.replicates < 25, "a 50% target stops well short of the budget");
        assert!(stats.replicates >= 2);
        // Replicate 0 is still the series entry, identical to the fixed
        // sweep's.
        let fixed = sweep_ranks_replicated(&stream, &cfg, &[2048], 25);
        assert_eq!(*first, fixed[0].1);
        // Re-run: pure data.
        assert_eq!(rows, sweep_ranks_adaptive(&stream, &cfg, &[2048], ctl));
    }

    #[test]
    fn paired_sweep_tightens_the_difference_interval() {
        use crate::config::ServiceDistribution;
        let cfg = LaunchConfig {
            service_dist: ServiceDistribution::log_normal(0.5),
            base_overhead_ns: 0,
            per_rank_overhead_ns: 0,
            seed: 3,
            ..LaunchConfig::default()
        };
        // The variant elides the tail 10% of the stream (a partial wrap).
        // High draw overlap is what CRN pays for: both arms consume the
        // same NODE-stream prefix per node, so their per-replicate noise
        // is almost entirely shared and the deltas cancel it. (Arms with
        // wildly different op counts — a full Shrinkwrap wrap — share too
        // little variance for pairing to bite; the estimator still
        // reports both intervals honestly there.)
        let plain = ClassifiedStream::classify(&cold_stream(400), &cfg);
        let wrapped = ClassifiedStream::classify(&cold_stream(360), &cfg);
        let pts = sweep_paired(&plain, &wrapped, &cfg, &[512, 2048], 9);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert_eq!(p.diff.pairs, 9);
            assert_eq!(p.baseline.replicates, 9);
            assert!(p.diff.mean_delta_ns > 0.0, "plain is slower");
            assert!(p.diff.speedup().unwrap() > 1.0);
            // Shared seeds correlate the arms, so pairing must not widen
            // the interval; on this workload it tightens it outright.
            assert!(
                p.diff.half_width_ns < p.diff.unpaired_half_width_ns,
                "paired {} vs unpaired {} at {}",
                p.diff.half_width_ns,
                p.diff.unpaired_half_width_ns,
                p.ranks
            );
        }
        let table = render_fig6_paired(&pts);
        assert!(table.contains("±delta paired"));
        assert!(table.contains("512"));
        assert!(!table.contains("inf"));
    }

    #[test]
    fn render_guards_degenerate_speedups() {
        let zero = LaunchResult { nodes: 1, ..Default::default() };
        let cfg = LaunchConfig::default();
        let pts = [512usize, 1024];
        let normal = sweep_ranks(&cold_stream(10), &cfg, &pts);
        // Wrapped series: a zero time at 512, no data at all for 1024.
        let wrapped = vec![(512usize, zero)];
        let table = render_fig6(&pts, &normal, &wrapped);
        assert!(!table.contains("inf"), "zero wrapped time must not print inf:\n{table}");
        assert!(!table.contains("NaN"), "missing point must not print NaN ratio:\n{table}");
        assert!(table.contains('-'));
    }
}

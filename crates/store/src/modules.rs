//! The HPC module model (§II-E): `module load` as environment mutation.
//!
//! lmod/environment-modules expose software by prepending directories to
//! `LD_LIBRARY_PATH` (and `PATH`). Modules compose with every other model —
//! which is precisely how the ROCm case study breaks: RPATH on the app,
//! RUNPATH in the vendor library, and a *module-set* `LD_LIBRARY_PATH`
//! pointing at the wrong version.

use std::collections::HashMap;

use depchaos_loader::Environment;

/// One module file: what `module load <name>` prepends.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Module {
    pub name: String,
    /// Directories prepended to LD_LIBRARY_PATH, in listed order.
    pub ld_library_path: Vec<String>,
    /// Directories prepended to PATH (tracked for completeness).
    pub path: Vec<String>,
}

impl Module {
    pub fn new(name: impl Into<String>) -> Self {
        Module { name: name.into(), ..Default::default() }
    }

    pub fn ld_library_path(mut self, dir: impl Into<String>) -> Self {
        self.ld_library_path.push(dir.into());
        self
    }

    pub fn path(mut self, dir: impl Into<String>) -> Self {
        self.path.push(dir.into());
        self
    }
}

/// A module tree plus the user's currently loaded set.
#[derive(Debug, Default)]
pub struct ModuleSystem {
    available: HashMap<String, Module>,
    loaded: Vec<String>,
}

impl ModuleSystem {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a module file (the site's `/usr/tce` tree).
    pub fn provide(&mut self, m: Module) -> &mut Self {
        self.available.insert(m.name.clone(), m);
        self
    }

    /// `module load` — idempotent; later loads take priority (prepend).
    pub fn load(&mut self, name: &str) -> Result<(), ModuleError> {
        if !self.available.contains_key(name) {
            return Err(ModuleError::Unknown(name.to_string()));
        }
        if !self.loaded.iter().any(|l| l == name) {
            self.loaded.push(name.to_string());
        }
        Ok(())
    }

    /// `module unload`.
    pub fn unload(&mut self, name: &str) {
        self.loaded.retain(|l| l != name);
    }

    /// `module swap a b`.
    pub fn swap(&mut self, from: &str, to: &str) -> Result<(), ModuleError> {
        self.unload(from);
        self.load(to)
    }

    /// Currently loaded module names, in load order.
    pub fn loaded(&self) -> &[String] {
        &self.loaded
    }

    /// Materialise the environment: every loaded module's entries prepended,
    /// most recently loaded first (what a real shell ends up with).
    pub fn environment(&self, base: Environment) -> Environment {
        let mut env = base;
        for name in &self.loaded {
            let m = &self.available[name];
            for dir in m.ld_library_path.iter().rev() {
                env.prepend_ld_library_path(dir.clone());
            }
        }
        env
    }
}

/// Module-system errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModuleError {
    Unknown(String),
}

impl std::fmt::Display for ModuleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModuleError::Unknown(n) => write!(f, "module not found: {n}"),
        }
    }
}

impl std::error::Error for ModuleError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> ModuleSystem {
        let mut ms = ModuleSystem::new();
        ms.provide(Module::new("rocm/4.3.0").ld_library_path("/opt/rocm-4.3.0/lib"));
        ms.provide(Module::new("rocm/4.5.0").ld_library_path("/opt/rocm-4.5.0/lib"));
        ms.provide(
            Module::new("gcc/8.3.1")
                .ld_library_path("/usr/tce/gcc-8.3.1/lib64")
                .path("/usr/tce/gcc-8.3.1/bin"),
        );
        ms
    }

    #[test]
    fn load_prepends_most_recent_first() {
        let mut ms = system();
        ms.load("gcc/8.3.1").unwrap();
        ms.load("rocm/4.5.0").unwrap();
        let env = ms.environment(Environment::bare());
        assert_eq!(env.ld_library_path, vec!["/opt/rocm-4.5.0/lib", "/usr/tce/gcc-8.3.1/lib64"]);
    }

    #[test]
    fn swap_replaces_version() {
        let mut ms = system();
        ms.load("rocm/4.5.0").unwrap();
        ms.swap("rocm/4.5.0", "rocm/4.3.0").unwrap();
        let env = ms.environment(Environment::bare());
        assert_eq!(env.ld_library_path, vec!["/opt/rocm-4.3.0/lib"]);
        assert_eq!(ms.loaded(), &["rocm/4.3.0".to_string()]);
    }

    #[test]
    fn unknown_module_errors() {
        let mut ms = system();
        assert_eq!(ms.load("rocm/9.9"), Err(ModuleError::Unknown("rocm/9.9".into())));
    }

    #[test]
    fn load_is_idempotent() {
        let mut ms = system();
        ms.load("gcc/8.3.1").unwrap();
        ms.load("gcc/8.3.1").unwrap();
        assert_eq!(ms.loaded().len(), 1);
    }
}

//! The store model (§II-D): Nix / Guix / Spack-style per-package prefixes.
//!
//! Each package installs into `/store/<hash>-<name>-<version>/{bin,lib}`,
//! where the hash is **pessimistic**: it covers the recipe (name, version,
//! build options) *and the hashes of the entire transitive dependency
//! closure*. Any change anywhere below a package gives it a new prefix —
//! the "domino effect of rebuilds" — while old prefixes stay valid, which is
//! what buys atomic upgrade and rollback.
//!
//! Binaries and libraries find dependencies through `RPATH` or `RUNPATH`
//! entries pointing at exact store paths ([`PathStyle`]); the choice is the
//! difference between Spack's default and what the ROCm case study (§V-B.1)
//! trips over.

use std::collections::HashMap;

use depchaos_elf::{io, ElfObject};
use depchaos_vfs::{path as vpath, Vfs, VfsError};

use crate::package::{PackageDef, Repo};

/// Whether installed objects carry `DT_RPATH` or `DT_RUNPATH`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathStyle {
    Rpath,
    Runpath,
}

/// A package materialised in the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstalledPackage {
    pub name: String,
    pub hash: String,
    /// `/store/<hash>-<name>-<version>`
    pub prefix: String,
    pub lib_dir: String,
    pub bin_dir: String,
    /// Direct dependency prefixes, in recipe order.
    pub dep_lib_dirs: Vec<String>,
}

/// Installs recipes into a content-addressed store.
#[derive(Debug)]
pub struct StoreInstaller {
    root: String,
    style: PathStyle,
    /// Whether search paths include the *transitive* closure's lib dirs
    /// (Spack-style, producing the long lists §IV complains about) or only
    /// direct deps (sufficient when every object carries its own paths).
    transitive_paths: bool,
    installed: HashMap<String, InstalledPackage>,
    /// Every generation ever materialised (old ones survive upgrades until
    /// garbage collection) — the GC's reachability universe.
    history: Vec<InstalledPackage>,
}

impl StoreInstaller {
    pub fn new(root: impl Into<String>, style: PathStyle) -> Self {
        StoreInstaller {
            root: root.into(),
            style,
            transitive_paths: true,
            installed: HashMap::new(),
            history: Vec::new(),
        }
    }

    /// Spack-like defaults: `/store`, RUNPATH, transitive path lists.
    pub fn spack_like() -> Self {
        Self::new("/store", PathStyle::Runpath)
    }

    /// Nix-like: RPATH, direct deps only (every object self-describes).
    pub fn nix_like() -> Self {
        let mut s = Self::new("/store", PathStyle::Rpath);
        s.transitive_paths = false;
        s
    }

    pub fn with_transitive_paths(mut self, yes: bool) -> Self {
        self.transitive_paths = yes;
        self
    }

    pub fn style(&self) -> PathStyle {
        self.style
    }

    /// Look up an already-installed package.
    pub fn get(&self, name: &str) -> Option<&InstalledPackage> {
        self.installed.get(name)
    }

    /// The pessimistic hash: FNV-1a over the recipe identity plus the
    /// hashes of all direct deps (which transitively covers the closure).
    fn hash_of(&self, pkg: &PackageDef, dep_hashes: &[&str]) -> String {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |s: &str| {
            for b in s.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h ^= 0xff;
            h = h.wrapping_mul(0x100000001b3);
        };
        eat(&pkg.name);
        eat(&pkg.version);
        eat(&pkg.build_options);
        for lib in &pkg.libs {
            eat(&lib.soname);
            for n in &lib.needed {
                eat(n);
            }
        }
        for bin in &pkg.bins {
            eat(&bin.name);
            for n in &bin.needed {
                eat(n);
            }
        }
        for d in dep_hashes {
            eat(d);
        }
        format!("{h:016x}")
    }

    /// Install `name` (and, recursively, its closure) from `repo`.
    /// Idempotent: an unchanged package reuses its existing prefix.
    pub fn install(
        &mut self,
        fs: &Vfs,
        repo: &Repo,
        name: &str,
    ) -> Result<InstalledPackage, StoreError> {
        let pkg =
            repo.get(name).ok_or_else(|| StoreError::UnknownPackage(name.to_string()))?.clone();
        // Depth-first: deps first, like a real build.
        let mut dep_installed = Vec::with_capacity(pkg.deps.len());
        for d in &pkg.deps {
            dep_installed.push(self.install(fs, repo, d)?);
        }
        let dep_hashes: Vec<&str> = dep_installed.iter().map(|d| d.hash.as_str()).collect();
        let hash = self.hash_of(&pkg, &dep_hashes);
        if let Some(existing) = self.installed.get(name) {
            if existing.hash == hash {
                return Ok(existing.clone());
            }
        }
        let prefix = format!("{}/{}-{}-{}", self.root, &hash[..12], pkg.name, pkg.version);
        let lib_dir = format!("{prefix}/lib");
        let bin_dir = format!("{prefix}/bin");
        fs.mkdir_p(&lib_dir)?;
        fs.mkdir_p(&bin_dir)?;

        // The search-path list every object in this package carries.
        let mut search: Vec<String> = vec![lib_dir.clone()];
        if self.transitive_paths {
            let mut stack: Vec<&InstalledPackage> = dep_installed.iter().collect();
            let mut seen = Vec::new();
            while let Some(d) = stack.pop() {
                if !seen.contains(&d.lib_dir) {
                    seen.push(d.lib_dir.clone());
                    for dd in &d.dep_lib_dirs {
                        if let Some(p) = self.installed.values().find(|p| &p.lib_dir == dd) {
                            stack.push(p);
                        }
                    }
                }
            }
            search.extend(seen);
        } else {
            search.extend(dep_installed.iter().map(|d| d.lib_dir.clone()));
        }

        for lib in &pkg.libs {
            let mut b = ElfObject::dso(&lib.soname);
            for n in &lib.needed {
                b = b.needs(n);
            }
            for s in &lib.symbols {
                b = b.defines(s.clone());
            }
            for d in &lib.dlopens {
                b = b.dlopens(d);
            }
            b = match self.style {
                PathStyle::Rpath => b.rpath_all(search.clone()),
                PathStyle::Runpath => b.runpath_all(search.clone()),
            };
            io::install(fs, &vpath::join(&lib_dir, &lib.soname), &b.build())?;
        }
        for bin in &pkg.bins {
            let mut b = ElfObject::exe(&bin.name);
            for n in &bin.needed {
                b = b.needs(n);
            }
            for d in &bin.dlopens {
                b = b.dlopens(d);
            }
            b = match self.style {
                PathStyle::Rpath => b.rpath_all(search.clone()),
                PathStyle::Runpath => b.runpath_all(search.clone()),
            };
            io::install(fs, &vpath::join(&bin_dir, &bin.name), &b.build())?;
        }

        let rec = InstalledPackage {
            name: pkg.name.clone(),
            hash,
            prefix,
            lib_dir,
            bin_dir,
            dep_lib_dirs: dep_installed.iter().map(|d| d.lib_dir.clone()).collect(),
        };
        self.installed.insert(pkg.name.clone(), rec.clone());
        self.history.push(rec.clone());
        Ok(rec)
    }

    /// Every package generation ever installed (the GC universe).
    pub fn history(&self) -> &[InstalledPackage] {
        &self.history
    }

    /// The store root directory.
    pub fn root(&self) -> &str {
        &self.root
    }

    /// Prefixes currently in the store (old generations survive upgrades).
    pub fn prefixes(&self, fs: &Vfs) -> Vec<String> {
        fs.list_dir(&self.root).unwrap_or_default()
    }
}

/// Store-installer errors.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    UnknownPackage(String),
    Fs(VfsError),
}

impl From<VfsError> for StoreError {
    fn from(e: VfsError) -> Self {
        StoreError::Fs(e)
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownPackage(n) => write!(f, "unknown package: {n}"),
            StoreError::Fs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{BinDef, LibDef};
    use depchaos_loader::{Environment, GlibcLoader, Provenance};

    fn repo() -> Repo {
        let mut r = Repo::new();
        r.add(PackageDef::new("zlib", "1.2").lib(LibDef::new("libz.so.1")));
        r.add(
            PackageDef::new("ssl", "1.1")
                .dep("zlib")
                .lib(LibDef::new("libssl.so").needs("libz.so.1")),
        );
        r.add(PackageDef::new("app", "1.0").dep("ssl").bin(BinDef::new("app").needs("libssl.so")));
        r
    }

    #[test]
    fn installed_app_resolves_entirely_from_store() {
        let fs = Vfs::local();
        let mut st = StoreInstaller::spack_like();
        let app = st.install(&fs, &repo(), "app").unwrap();
        // Hermetic: no default paths, no env.
        let r = GlibcLoader::new(&fs)
            .with_env(Environment::bare())
            .load(&format!("{}/app", app.bin_dir))
            .unwrap();
        assert!(r.success(), "{:?}", r.failures);
        assert!(r.objects[1].path.starts_with("/store/"));
        assert!(matches!(r.objects[1].provenance, Provenance::Runpath { .. }));
    }

    #[test]
    fn hash_is_pessimistic_domino() {
        let fs = Vfs::local();
        let mut st = StoreInstaller::spack_like();
        let r1 = repo();
        let app1 = st.install(&fs, &r1, "app").unwrap();
        let ssl1 = st.get("ssl").unwrap().clone();

        // Patch the *leaf* package only.
        let mut r2 = repo();
        r2.get_mut("zlib").unwrap().build_options = "-O3 CVE-fix".to_string();
        let app2 = st.install(&fs, &r2, "app").unwrap();
        let ssl2 = st.get("ssl").unwrap().clone();

        assert_ne!(app1.hash, app2.hash, "leaf change dominoes to the root");
        assert_ne!(ssl1.hash, ssl2.hash);
        assert_ne!(app1.prefix, app2.prefix);
        // Old generation still on disk: atomic rollback is possible.
        assert!(fs.exists(&app1.prefix));
        assert!(fs.exists(&app2.prefix));
    }

    #[test]
    fn unchanged_recipe_reuses_prefix() {
        let fs = Vfs::local();
        let mut st = StoreInstaller::spack_like();
        let a = st.install(&fs, &repo(), "app").unwrap();
        let b = st.install(&fs, &repo(), "app").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn transitive_paths_grow_with_depth() {
        // Spack-style: the app's runpath includes the whole closure;
        // nix-like: only direct deps.
        let fs = Vfs::local();
        let mut spack = StoreInstaller::spack_like();
        let app = spack.install(&fs, &repo(), "app").unwrap();
        let obj = depchaos_elf::io::peek_object(&fs, &format!("{}/app", app.bin_dir)).unwrap();
        assert_eq!(obj.runpath.len(), 3, "own + ssl + zlib");

        let fs2 = Vfs::local();
        let mut nix = StoreInstaller::nix_like();
        let app2 = nix.install(&fs2, &repo(), "app").unwrap();
        let obj2 = depchaos_elf::io::peek_object(&fs2, &format!("{}/app", app2.bin_dir)).unwrap();
        assert_eq!(obj2.rpath.len(), 2, "own + ssl only");
    }

    #[test]
    fn nix_like_still_loads_hermetically() {
        let fs = Vfs::local();
        let mut nix = StoreInstaller::nix_like();
        let app = nix.install(&fs, &repo(), "app").unwrap();
        let r = GlibcLoader::new(&fs)
            .with_env(Environment::bare())
            .load(&format!("{}/app", app.bin_dir))
            .unwrap();
        assert!(r.success(), "each object carries paths for its own deps: {:?}", r.failures);
    }

    #[test]
    fn unknown_package_errors() {
        let fs = Vfs::local();
        let mut st = StoreInstaller::spack_like();
        assert!(matches!(st.install(&fs, &repo(), "ghost"), Err(StoreError::UnknownPackage(_))));
    }
}

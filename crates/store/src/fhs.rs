//! The traditional FHS model (§II-A).
//!
//! Everything lands in a handful of well-known directories; the loader finds
//! libraries through its default search path (or the ld.so cache). The model
//! is simple and familiar, but:
//!
//! * only one version of a soname can exist — a second install **silently
//!   overwrites** the first ([`FhsInstaller::install`] reports the
//!   casualties, a real `cp` would not);
//! * installation is file-at-a-time, so interrupting it leaves the system
//!   inconsistent ([`FhsInstaller::install_partial`] models exactly that for
//!   upgrade-failure experiments);
//! * removal can break arbitrary dependents because nothing records who
//!   needs what at the file level.

use std::collections::HashMap;

use depchaos_elf::{io, ElfObject};
use depchaos_vfs::{path as vpath, Vfs, VfsError};

use crate::package::PackageDef;

/// Installs packages into the shared FHS directories.
#[derive(Debug)]
pub struct FhsInstaller {
    pub lib_dir: String,
    pub bin_dir: String,
    /// file path → owning package, for conflict reporting.
    owners: HashMap<String, String>,
}

impl Default for FhsInstaller {
    fn default() -> Self {
        FhsInstaller {
            lib_dir: "/usr/lib".to_string(),
            bin_dir: "/usr/bin".to_string(),
            owners: HashMap::new(),
        }
    }
}

impl FhsInstaller {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_dirs(lib_dir: impl Into<String>, bin_dir: impl Into<String>) -> Self {
        FhsInstaller { lib_dir: lib_dir.into(), bin_dir: bin_dir.into(), owners: HashMap::new() }
    }

    /// Install every file of `pkg`. Returns the paths that belonged to
    /// *other* packages and were overwritten — the silent-conflict hazard.
    pub fn install(&mut self, fs: &Vfs, pkg: &PackageDef) -> Result<Vec<String>, VfsError> {
        let mut overwritten = Vec::new();
        for lib in &pkg.libs {
            let path = vpath::join(&self.lib_dir, &lib.soname);
            if let Some(owner) = self.owners.get(&path) {
                if owner != &pkg.name {
                    overwritten.push(path.clone());
                }
            }
            let mut b = ElfObject::dso(&lib.soname);
            for n in &lib.needed {
                b = b.needs(n);
            }
            for s in &lib.symbols {
                b = b.defines(s.clone());
            }
            for d in &lib.dlopens {
                b = b.dlopens(d);
            }
            // FHS objects carry no RPATH/RUNPATH: default paths do the work.
            io::install(fs, &path, &b.build())?;
            self.owners.insert(path, pkg.name.clone());
        }
        for bin in &pkg.bins {
            let path = vpath::join(&self.bin_dir, &bin.name);
            if let Some(owner) = self.owners.get(&path) {
                if owner != &pkg.name {
                    overwritten.push(path.clone());
                }
            }
            let mut b = ElfObject::exe(&bin.name);
            for n in &bin.needed {
                b = b.needs(n);
            }
            for d in &bin.dlopens {
                b = b.dlopens(d);
            }
            io::install(fs, &path, &b.build())?;
            self.owners.insert(path, pkg.name.clone());
        }
        Ok(overwritten)
    }

    /// Install only the first `n_files` files, then "crash" — the
    /// inconsistent intermediate state §II-A warns about.
    pub fn install_partial(
        &mut self,
        fs: &Vfs,
        pkg: &PackageDef,
        n_files: usize,
    ) -> Result<usize, VfsError> {
        let mut written = 0usize;
        for lib in &pkg.libs {
            if written >= n_files {
                return Ok(written);
            }
            let path = vpath::join(&self.lib_dir, &lib.soname);
            let mut b = ElfObject::dso(&lib.soname);
            for n in &lib.needed {
                b = b.needs(n);
            }
            io::install(fs, &path, &b.build())?;
            self.owners.insert(path, pkg.name.clone());
            written += 1;
        }
        for bin in &pkg.bins {
            if written >= n_files {
                return Ok(written);
            }
            let path = vpath::join(&self.bin_dir, &bin.name);
            let mut b = ElfObject::exe(&bin.name);
            for n in &bin.needed {
                b = b.needs(n);
            }
            io::install(fs, &path, &b.build())?;
            self.owners.insert(path, pkg.name.clone());
            written += 1;
        }
        Ok(written)
    }

    /// Remove every file owned by `pkg_name`. Nothing checks dependents.
    pub fn remove(&mut self, fs: &Vfs, pkg_name: &str) -> Result<usize, VfsError> {
        let mine: Vec<String> = self
            .owners
            .iter()
            .filter(|(_, owner)| owner.as_str() == pkg_name)
            .map(|(path, _)| path.clone())
            .collect();
        for path in &mine {
            fs.remove(path)?;
            self.owners.remove(path);
        }
        Ok(mine.len())
    }

    /// Who owns a path, if tracked.
    pub fn owner_of(&self, path: &str) -> Option<&str> {
        self.owners.get(path).map(String::as_str)
    }

    /// Path a binary installs to.
    pub fn bin_path(&self, name: &str) -> String {
        vpath::join(&self.bin_dir, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{BinDef, LibDef};
    use depchaos_loader::GlibcLoader;

    #[test]
    fn installed_app_loads_via_default_paths() {
        let fs = Vfs::local();
        let mut fhs = FhsInstaller::new();
        fhs.install(&fs, &PackageDef::new("zlib", "1").lib(LibDef::new("libz.so.1"))).unwrap();
        fhs.install(&fs, &PackageDef::new("tool", "1").bin(BinDef::new("tool").needs("libz.so.1")))
            .unwrap();
        let r = GlibcLoader::new(&fs).load("/usr/bin/tool").unwrap();
        assert!(r.success());
        assert_eq!(r.objects[1].path, "/usr/lib/libz.so.1");
    }

    #[test]
    fn second_version_silently_overwrites() {
        let fs = Vfs::local();
        let mut fhs = FhsInstaller::new();
        fhs.install(&fs, &PackageDef::new("ssl-1.0", "1.0").lib(LibDef::new("libssl.so"))).unwrap();
        let overwritten = fhs
            .install(&fs, &PackageDef::new("ssl-3.0", "3.0").lib(LibDef::new("libssl.so")))
            .unwrap();
        assert_eq!(overwritten, vec!["/usr/lib/libssl.so"]);
        assert_eq!(fhs.owner_of("/usr/lib/libssl.so"), Some("ssl-3.0"));
    }

    #[test]
    fn interrupted_install_leaves_partial_state() {
        let fs = Vfs::local();
        let mut fhs = FhsInstaller::new();
        let pkg = PackageDef::new("glibc", "2.34")
            .lib(LibDef::new("libc.so.6"))
            .lib(LibDef::new("libm.so.6"))
            .lib(LibDef::new("libpthread.so.0"));
        let written = fhs.install_partial(&fs, &pkg, 2).unwrap();
        assert_eq!(written, 2);
        assert!(fs.exists("/usr/lib/libc.so.6"));
        assert!(fs.exists("/usr/lib/libm.so.6"));
        assert!(!fs.exists("/usr/lib/libpthread.so.0"), "the crash left this missing");
    }

    #[test]
    fn removal_breaks_dependents() {
        let fs = Vfs::local();
        let mut fhs = FhsInstaller::new();
        fhs.install(&fs, &PackageDef::new("zlib", "1").lib(LibDef::new("libz.so.1"))).unwrap();
        fhs.install(&fs, &PackageDef::new("tool", "1").bin(BinDef::new("tool").needs("libz.so.1")))
            .unwrap();
        assert_eq!(fhs.remove(&fs, "zlib").unwrap(), 1);
        let r = GlibcLoader::new(&fs).load("/usr/bin/tool").unwrap();
        assert!(!r.success(), "nothing protected the dependent");
    }
}

//! Profiles and garbage collection — the store model's atomicity payoff.
//!
//! §II-D: the store "allows arbitrary versions of the code to reside
//! congruently, providing the ability to perform upgrades or rollbacks
//! atomically by installing the whole new graph without invalidating the
//! old one." A [`Profile`] is the Nix-style moving pointer that makes the
//! switch atomic: one symlink repoint per upgrade or rollback. [`gc`]
//! reclaims prefixes no generation can reach.

use std::collections::HashSet;

use depchaos_vfs::{path as vpath, Vfs, VfsError};

use crate::store::{InstalledPackage, StoreInstaller};

/// A named sequence of generations with an atomically-switchable current
/// pointer (`<base>/current` symlink).
#[derive(Debug)]
pub struct Profile {
    base: String,
    generations: Vec<InstalledPackage>,
    current: usize,
}

impl Profile {
    /// Create a profile rooted at `base` (e.g. `/profiles/default`).
    pub fn create(fs: &Vfs, base: impl Into<String>) -> Result<Self, VfsError> {
        let base = base.into();
        fs.mkdir_p(&base)?;
        Ok(Profile { base, generations: Vec::new(), current: 0 })
    }

    /// Install `pkg` as the next generation and atomically repoint
    /// `current`. The previous generation's files are untouched.
    pub fn set(&mut self, fs: &Vfs, pkg: InstalledPackage) -> Result<usize, VfsError> {
        let gen_no = self.generations.len() + 1;
        let link = format!("{}/generation-{gen_no}", self.base);
        fs.symlink(&link, &pkg.prefix)?;
        self.generations.push(pkg);
        self.current = gen_no;
        self.repoint(fs)?;
        Ok(gen_no)
    }

    /// Roll back one generation (no-op at the first).
    pub fn rollback(&mut self, fs: &Vfs) -> Result<usize, VfsError> {
        if self.current > 1 {
            self.current -= 1;
            self.repoint(fs)?;
        }
        Ok(self.current)
    }

    /// Roll forward after a rollback.
    pub fn roll_forward(&mut self, fs: &Vfs) -> Result<usize, VfsError> {
        if self.current < self.generations.len() {
            self.current += 1;
            self.repoint(fs)?;
        }
        Ok(self.current)
    }

    fn repoint(&self, fs: &Vfs) -> Result<(), VfsError> {
        // Atomic switch: create the new link under a temp name, then
        // rename-over — no window where `current` is missing.
        let current = format!("{}/current", self.base);
        let tmp = format!("{}/.current.tmp", self.base);
        let _ = fs.remove(&tmp);
        fs.symlink(&tmp, &format!("{}/generation-{}", self.base, self.current))?;
        fs.rename(&tmp, &current)
    }

    /// Path of the current generation's bin dir (through the symlink).
    pub fn current_bin(&self, name: &str) -> String {
        format!("{}/current/bin/{name}", self.base)
    }

    /// The live generation records (GC roots).
    pub fn roots(&self) -> impl Iterator<Item = &InstalledPackage> {
        self.generations.iter()
    }

    /// Drop generations before `keep_from` (1-based), making their closures
    /// GC-eligible. The current pointer must stay within the kept range.
    pub fn delete_generations_before(
        &mut self,
        fs: &Vfs,
        keep_from: usize,
    ) -> Result<(), VfsError> {
        for gen_no in 1..keep_from {
            let link = format!("{}/generation-{gen_no}", self.base);
            let _ = fs.remove(&link);
        }
        // Record deletion by truncating from the front; renumbering is not
        // needed for GC purposes, only membership.
        let drop_n = keep_from.saturating_sub(1).min(self.generations.len());
        self.generations.drain(..drop_n);
        Ok(())
    }
}

/// Delete every store prefix not reachable from the given roots through the
/// dependency records. Returns the removed prefixes, sorted.
pub fn gc<'a, I>(fs: &Vfs, store: &StoreInstaller, roots: I) -> Result<Vec<String>, VfsError>
where
    I: IntoIterator<Item = &'a InstalledPackage>,
{
    // Map lib_dir → history record for closure walking.
    let by_libdir: std::collections::HashMap<&str, &InstalledPackage> =
        store.history().iter().map(|p| (p.lib_dir.as_str(), p)).collect();

    let mut live: HashSet<String> = HashSet::new();
    let mut stack: Vec<&InstalledPackage> = roots.into_iter().collect();
    while let Some(p) = stack.pop() {
        if live.insert(p.prefix.clone()) {
            for d in &p.dep_lib_dirs {
                if let Some(dep) = by_libdir.get(d.as_str()) {
                    stack.push(dep);
                }
            }
        }
    }

    let mut removed = Vec::new();
    for entry in fs.list_dir(store.root())? {
        let prefix = vpath::join(store.root(), &entry);
        if !live.contains(&prefix) {
            fs.remove_all(&prefix)?;
            removed.push(prefix);
        }
    }
    removed.sort();
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{BinDef, LibDef, PackageDef, Repo};
    use crate::store::StoreInstaller;
    use depchaos_loader::{Environment, GlibcLoader};

    fn repo(zlib_opts: &str) -> Repo {
        let mut r = Repo::new();
        r.add(
            PackageDef::new("zlib", "1.2").build_options(zlib_opts).lib(LibDef::new("libz.so.1")),
        );
        r.add(PackageDef::new("app", "1.0").dep("zlib").bin(BinDef::new("app").needs("libz.so.1")));
        r
    }

    #[test]
    fn upgrade_and_rollback_are_atomic_symlink_flips() {
        let fs = Vfs::local();
        let mut store = StoreInstaller::spack_like();
        let mut profile = Profile::create(&fs, "/profiles/default").unwrap();

        let gen1 = store.install(&fs, &repo(""), "app").unwrap();
        profile.set(&fs, gen1.clone()).unwrap();
        let bin = profile.current_bin("app");
        assert!(GlibcLoader::new(&fs).with_env(Environment::bare()).load(&bin).unwrap().success());

        // Upgrade: new zlib → new hashes → new prefixes; old ones intact.
        let gen2 = store.install(&fs, &repo("-O3 CVE-2022-fix"), "app").unwrap();
        assert_ne!(gen1.prefix, gen2.prefix);
        profile.set(&fs, gen2.clone()).unwrap();
        assert_eq!(fs.canonicalize(&bin).unwrap(), format!("{}/app", gen2.bin_dir));

        // Rollback: one symlink flip, fully working old closure.
        profile.rollback(&fs).unwrap();
        assert_eq!(fs.canonicalize(&bin).unwrap(), format!("{}/app", gen1.bin_dir));
        assert!(GlibcLoader::new(&fs).with_env(Environment::bare()).load(&bin).unwrap().success());

        profile.roll_forward(&fs).unwrap();
        assert_eq!(fs.canonicalize(&bin).unwrap(), format!("{}/app", gen2.bin_dir));
    }

    #[test]
    fn gc_keeps_live_closures_only() {
        let fs = Vfs::local();
        let mut store = StoreInstaller::spack_like();
        let mut profile = Profile::create(&fs, "/profiles/default").unwrap();

        let gen1 = store.install(&fs, &repo(""), "app").unwrap();
        profile.set(&fs, gen1.clone()).unwrap();
        let gen2 = store.install(&fs, &repo("patched"), "app").unwrap();
        profile.set(&fs, gen2.clone()).unwrap();

        // Both generations live: nothing to collect.
        let removed = gc(&fs, &store, profile.roots()).unwrap();
        assert!(removed.is_empty(), "{removed:?}");

        // Drop generation 1; its app AND its zlib become garbage.
        profile.delete_generations_before(&fs, 2).unwrap();
        let removed = gc(&fs, &store, profile.roots()).unwrap();
        assert_eq!(removed.len(), 2);
        assert!(removed.iter().any(|p| p == &gen1.prefix));
        assert!(!fs.exists(&gen1.prefix));
        // Current generation still loads.
        let bin = profile.current_bin("app");
        assert!(GlibcLoader::new(&fs).with_env(Environment::bare()).load(&bin).unwrap().success());
    }

    #[test]
    fn gc_preserves_shared_dependencies() {
        // Two apps sharing one zlib: collecting one app must keep zlib.
        let fs = Vfs::local();
        let mut store = StoreInstaller::spack_like();
        let mut r = repo("");
        r.add(
            PackageDef::new("other", "1.0")
                .dep("zlib")
                .bin(BinDef::new("other").needs("libz.so.1")),
        );
        let app = store.install(&fs, &r, "app").unwrap();
        let other = store.install(&fs, &r, "other").unwrap();
        let zlib_prefix = store.get("zlib").unwrap().prefix.clone();

        // Only `other` remains a root.
        let removed = gc(&fs, &store, [&other]).unwrap();
        assert_eq!(removed, vec![app.prefix.clone()]);
        assert!(fs.exists(&zlib_prefix), "shared dep survives");
        let bin = format!("{}/other", other.bin_dir);
        assert!(GlibcLoader::new(&fs).with_env(Environment::bare()).load(&bin).unwrap().success());
    }
}

//! The self-referential (bundled) model (§II-B).
//!
//! The application directory vendors every dependency under `lib/` and the
//! binary finds them through a single `$ORIGIN`-relative runpath — the
//! AppImage / Darwin-app-bundle shape. The bundle is relocatable (the test
//! moves it), atomic to install/remove, and wasteful: every bundle carries
//! its own copies, so a library patch means rebuilding every bundle
//! ([`BundleInstaller::duplicated_sonames`] quantifies the loss).

use std::collections::HashMap;

use depchaos_elf::{io, ElfObject};
use depchaos_vfs::{path as vpath, Vfs, VfsError};

use crate::package::Repo;

/// Installs packages as self-contained application bundles.
#[derive(Debug)]
pub struct BundleInstaller {
    root: String,
    /// bundle dir → vendored sonames, for dedup-loss accounting.
    contents: HashMap<String, Vec<String>>,
}

impl BundleInstaller {
    pub fn new(root: impl Into<String>) -> Self {
        BundleInstaller { root: root.into(), contents: HashMap::new() }
    }

    /// Vendor `pkg` and its full closure into one directory. Returns the
    /// bundle path. Every library of every closure member is *copied* in.
    pub fn install(&mut self, fs: &Vfs, repo: &Repo, name: &str) -> Result<String, VfsError> {
        let Some(pkg) = repo.get(name) else {
            return Err(VfsError::NotFound(format!("package {name}")));
        };
        let bundle = format!("{}/{}-{}", self.root, pkg.name, pkg.version);
        let lib_dir = format!("{bundle}/lib");
        let bin_dir = format!("{bundle}/bin");
        fs.mkdir_p(&lib_dir)?;
        fs.mkdir_p(&bin_dir)?;

        let mut vendored = Vec::new();
        let mut members = vec![pkg.clone()];
        for dep in repo.closure(name) {
            if let Some(p) = repo.get(&dep) {
                members.push(p.clone());
            }
        }
        for member in &members {
            for lib in &member.libs {
                let mut b = ElfObject::dso(&lib.soname);
                for n in &lib.needed {
                    b = b.needs(n);
                }
                for s in &lib.symbols {
                    b = b.defines(s.clone());
                }
                // Vendored libraries also resolve siblings via $ORIGIN.
                b = b.runpath("$ORIGIN");
                io::install(fs, &vpath::join(&lib_dir, &lib.soname), &b.build())?;
                vendored.push(lib.soname.clone());
            }
        }
        for bin in &pkg.bins {
            let mut b = ElfObject::exe(&bin.name);
            for n in &bin.needed {
                b = b.needs(n);
            }
            b = b.runpath("$ORIGIN/../lib");
            io::install(fs, &vpath::join(&bin_dir, &bin.name), &b.build())?;
        }
        self.contents.insert(bundle.clone(), vendored);
        Ok(bundle)
    }

    /// Remove a bundle atomically (one subtree).
    pub fn remove(&mut self, fs: &Vfs, bundle: &str) -> Result<(), VfsError> {
        fs.remove_all(bundle)?;
        self.contents.remove(bundle);
        Ok(())
    }

    /// Sonames vendored into more than one bundle, with their multiplicity —
    /// the §II-B deduplication loss (each copy must be patched separately).
    pub fn duplicated_sonames(&self) -> Vec<(String, usize)> {
        let mut count: HashMap<&str, usize> = HashMap::new();
        for sonames in self.contents.values() {
            for s in sonames {
                *count.entry(s).or_default() += 1;
            }
        }
        let mut out: Vec<(String, usize)> =
            count.into_iter().filter(|(_, c)| *c > 1).map(|(s, c)| (s.to_string(), c)).collect();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{BinDef, LibDef, PackageDef};
    use depchaos_loader::{Environment, GlibcLoader};

    fn repo() -> Repo {
        let mut r = Repo::new();
        r.add(PackageDef::new("zlib", "1.2").lib(LibDef::new("libz.so.1")));
        r.add(
            PackageDef::new("viewer", "2.0")
                .dep("zlib")
                .lib(LibDef::new("libviewer.so").needs("libz.so.1"))
                .bin(BinDef::new("viewer").needs("libviewer.so")),
        );
        r.add(
            PackageDef::new("editor", "3.0")
                .dep("zlib")
                .bin(BinDef::new("editor").needs("libz.so.1")),
        );
        r
    }

    #[test]
    fn bundle_is_self_contained() {
        let fs = Vfs::local();
        let mut b = BundleInstaller::new("/apps");
        let bundle = b.install(&fs, &repo(), "viewer").unwrap();
        let r = GlibcLoader::new(&fs)
            .with_env(Environment::bare())
            .load(&format!("{bundle}/bin/viewer"))
            .unwrap();
        assert!(r.success(), "{:?}", r.failures);
        assert!(r.objects.iter().skip(1).all(|o| o.path.starts_with(&bundle)));
    }

    #[test]
    fn bundle_is_relocatable() {
        // $ORIGIN means the bundle works from any location: install at /apps,
        // "move" by reinstalling at /home/user/apps and deleting the old one.
        let fs = Vfs::local();
        let mut at_home = BundleInstaller::new("/home/user/apps");
        let bundle = at_home.install(&fs, &repo(), "viewer").unwrap();
        assert!(bundle.starts_with("/home/user/apps"));
        let r = GlibcLoader::new(&fs)
            .with_env(Environment::bare())
            .load(&format!("{bundle}/bin/viewer"))
            .unwrap();
        assert!(r.success());
    }

    #[test]
    fn atomic_removal() {
        let fs = Vfs::local();
        let mut b = BundleInstaller::new("/apps");
        let bundle = b.install(&fs, &repo(), "viewer").unwrap();
        assert!(fs.exists(&bundle));
        b.remove(&fs, &bundle).unwrap();
        assert!(!fs.exists(&bundle));
    }

    #[test]
    fn writable_bundle_directory_is_an_injection_vector() {
        // §II-B: "because the user can choose where to place the bundle. If
        // the library path includes a writable directory, an attacker can
        // leverage it to load unintended code." $ORIGIN resolution trusts
        // whatever sits next to the binary.
        use depchaos_elf::{io, ElfObject, Symbol};
        let fs = Vfs::local();
        let mut b = BundleInstaller::new("/home/user/apps");
        let bundle = b.install(&fs, &repo(), "viewer").unwrap();
        // Attacker replaces the vendored zlib inside the writable dir.
        io::install(
            &fs,
            &format!("{bundle}/lib/libz.so.1"),
            &ElfObject::dso("libz.so.1").defines(Symbol::strong("attacker_payload")).build(),
        )
        .unwrap();
        let r = GlibcLoader::new(&fs)
            .with_env(Environment::bare())
            .load(&format!("{bundle}/bin/viewer"))
            .unwrap();
        assert!(r.success(), "nothing detects the swap");
        assert!(
            r.bindings().contains_key("attacker_payload"),
            "the planted library was loaded and its symbols bound"
        );
    }

    #[test]
    fn dedup_loss_measured() {
        let fs = Vfs::local();
        let mut b = BundleInstaller::new("/apps");
        b.install(&fs, &repo(), "viewer").unwrap();
        b.install(&fs, &repo(), "editor").unwrap();
        let dups = b.duplicated_sonames();
        assert_eq!(dups, vec![("libz.so.1".to_string(), 2)], "zlib vendored twice");
    }
}

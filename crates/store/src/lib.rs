//! # depchaos-store — the software-distribution taxonomy, executable
//!
//! §II of the paper surveys how software finds its dependencies under four
//! deployment models. This crate implements each one as an *installer* that
//! lays packages out in a [`depchaos_vfs::Vfs`] and wires their search paths,
//! so the loader crate can demonstrate every claimed property:
//!
//! * [`fhs`] — the Filesystem Hierarchy Standard model: everything in
//!   `/usr/lib`, one version per soname, installs can silently overwrite
//!   (§II-A's atomicity and provenance problems).
//! * [`bundle`] — the self-referential model: vendored libraries next to the
//!   binary, `$ORIGIN` runpaths, no sharing (§II-B's deduplication loss).
//! * [`store`] — the Nix/Spack store model: per-package prefixes named by a
//!   *pessimistic* content hash over the full transitive closure, RPATH or
//!   RUNPATH entries pointing at exact store paths, domino rebuilds on any
//!   change (§II-D).
//! * [`modules`] — the HPC module model: `module load` mutates
//!   `LD_LIBRARY_PATH`, composing (and colliding) with everything above
//!   (§II-E, and the ROCm case study's third ingredient).
//! * [`views`] — dependency views, workaround §III-D1: a symlink-farm FHS
//!   image per package, bought with one inode per file.

pub mod bundle;
pub mod fhs;
pub mod modules;
pub mod package;
pub mod profile;
pub mod store;
pub mod views;

pub use bundle::BundleInstaller;
pub use fhs::FhsInstaller;
pub use modules::{Module, ModuleSystem};
pub use package::{BinDef, LibDef, PackageDef, Repo};
pub use profile::{gc, Profile};
pub use store::{InstalledPackage, PathStyle, StoreError, StoreInstaller};
pub use views::build_view;

//! Package recipes — the input every installer consumes.
//!
//! A [`PackageDef`] is the deployment-model-agnostic description of a piece
//! of software: what it provides (shared objects, executables) and which
//! packages it depends on. Each installer in this crate turns the same
//! recipe into a different on-disk layout, which is precisely the paper's
//! framing: the *taxonomy* differs in how binaries find dependencies, not in
//! the software itself.

use std::collections::HashMap;

use depchaos_elf::Symbol;
use depchaos_graph::DepGraph;

/// A shared object provided by a package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LibDef {
    /// soname (and file name).
    pub soname: String,
    /// Bare-soname needed entries (provided by this package or its deps).
    pub needed: Vec<String>,
    /// Defined dynamic symbols (when a scenario cares).
    pub symbols: Vec<Symbol>,
    /// Libraries dlopen()ed at runtime.
    pub dlopens: Vec<String>,
}

impl LibDef {
    pub fn new(soname: impl Into<String>) -> Self {
        LibDef {
            soname: soname.into(),
            needed: Vec::new(),
            symbols: Vec::new(),
            dlopens: Vec::new(),
        }
    }

    pub fn needs(mut self, n: impl Into<String>) -> Self {
        self.needed.push(n.into());
        self
    }

    pub fn defines(mut self, s: Symbol) -> Self {
        self.symbols.push(s);
        self
    }

    pub fn dlopens(mut self, n: impl Into<String>) -> Self {
        self.dlopens.push(n.into());
        self
    }
}

/// An executable provided by a package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinDef {
    pub name: String,
    pub needed: Vec<String>,
    pub dlopens: Vec<String>,
}

impl BinDef {
    pub fn new(name: impl Into<String>) -> Self {
        BinDef { name: name.into(), needed: Vec::new(), dlopens: Vec::new() }
    }

    pub fn needs(mut self, n: impl Into<String>) -> Self {
        self.needed.push(n.into());
        self
    }

    pub fn dlopens(mut self, n: impl Into<String>) -> Self {
        self.dlopens.push(n.into());
        self
    }
}

/// A buildable unit of software.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageDef {
    pub name: String,
    pub version: String,
    /// Compiler flags, patches... anything that perturbs the store hash.
    pub build_options: String,
    /// Names of packages this one depends on.
    pub deps: Vec<String>,
    pub libs: Vec<LibDef>,
    pub bins: Vec<BinDef>,
}

impl PackageDef {
    pub fn new(name: impl Into<String>, version: impl Into<String>) -> Self {
        PackageDef {
            name: name.into(),
            version: version.into(),
            build_options: String::new(),
            deps: Vec::new(),
            libs: Vec::new(),
            bins: Vec::new(),
        }
    }

    pub fn dep(mut self, d: impl Into<String>) -> Self {
        self.deps.push(d.into());
        self
    }

    pub fn lib(mut self, l: LibDef) -> Self {
        self.libs.push(l);
        self
    }

    pub fn bin(mut self, b: BinDef) -> Self {
        self.bins.push(b);
        self
    }

    pub fn build_options(mut self, o: impl Into<String>) -> Self {
        self.build_options = o.into();
        self
    }

    /// All sonames this package provides.
    pub fn provided_sonames(&self) -> Vec<&str> {
        self.libs.iter().map(|l| l.soname.as_str()).collect()
    }
}

/// A named collection of package recipes — a distribution snapshot.
#[derive(Debug, Clone, Default)]
pub struct Repo {
    packages: HashMap<String, PackageDef>,
}

impl Repo {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add or replace a recipe.
    pub fn add(&mut self, pkg: PackageDef) -> &mut Self {
        self.packages.insert(pkg.name.clone(), pkg);
        self
    }

    pub fn get(&self, name: &str) -> Option<&PackageDef> {
        self.packages.get(name)
    }

    pub fn get_mut(&mut self, name: &str) -> Option<&mut PackageDef> {
        self.packages.get_mut(name)
    }

    pub fn len(&self) -> usize {
        self.packages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.packages.keys().map(String::as_str)
    }

    /// The package dependency graph (edges: package → its deps).
    pub fn dep_graph(&self) -> DepGraph {
        let mut g = DepGraph::new();
        for pkg in self.packages.values() {
            let from = g.add_node(&pkg.name);
            for d in &pkg.deps {
                let to = g.add_node(d);
                g.add_edge(from, to);
            }
        }
        g
    }

    /// Transitive dependency closure of `name` (names, BFS order, excluding
    /// the root). Missing packages are skipped silently (like an FHS distro
    /// with an unversioned dangling Depends).
    pub fn closure(&self, name: &str) -> Vec<String> {
        let g = self.dep_graph();
        match g.lookup(name) {
            Some(root) => g.closure_bfs(root).into_iter().map(|n| g.name(n).to_string()).collect(),
            None => Vec::new(),
        }
    }

    /// Which package provides `soname`, if any.
    pub fn provider_of(&self, soname: &str) -> Option<&PackageDef> {
        self.packages.values().find(|p| p.libs.iter().any(|l| l.soname == soname))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_repo() -> Repo {
        let mut r = Repo::new();
        r.add(PackageDef::new("zlib", "1.2.11").lib(LibDef::new("libz.so.1")));
        r.add(
            PackageDef::new("openssl", "1.1.1l")
                .dep("zlib")
                .lib(LibDef::new("libssl.so.1.1").needs("libcrypto.so.1.1").needs("libz.so.1"))
                .lib(LibDef::new("libcrypto.so.1.1").needs("libz.so.1")),
        );
        r.add(
            PackageDef::new("curl", "7.79.1")
                .dep("openssl")
                .lib(LibDef::new("libcurl.so.4").needs("libssl.so.1.1"))
                .bin(BinDef::new("curl").needs("libcurl.so.4")),
        );
        r
    }

    #[test]
    fn closure_is_transitive() {
        let r = sample_repo();
        assert_eq!(r.closure("curl"), vec!["openssl".to_string(), "zlib".to_string()]);
        assert!(r.closure("zlib").is_empty());
        assert!(r.closure("ghost").is_empty());
    }

    #[test]
    fn provider_lookup() {
        let r = sample_repo();
        assert_eq!(r.provider_of("libz.so.1").unwrap().name, "zlib");
        assert!(r.provider_of("libmissing.so").is_none());
    }

    #[test]
    fn dep_graph_shape() {
        let r = sample_repo();
        let g = r.dep_graph();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.has_cycle());
    }
}

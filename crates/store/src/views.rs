//! Dependency views — workaround §III-D1.
//!
//! Instead of N `RPATH`/`RUNPATH` entries pointing at N store prefixes, build
//! one package-local FHS-styled directory of symlinks to the whole closure
//! and give the binary a *single* search-path entry. Resolution touches one
//! directory, which matters enormously on network filesystems.
//!
//! Costs, as the paper notes: a tremendous number of symlinks (inodes), and
//! at most one version of any soname per view ([`ViewError::Conflict`]).

use depchaos_vfs::{path as vpath, Vfs, VfsError};

use crate::store::InstalledPackage;

/// View-construction errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ViewError {
    /// Two closure members provide the same soname — views cannot hold both.
    Conflict {
        soname: String,
        first: String,
        second: String,
    },
    Fs(VfsError),
}

impl From<VfsError> for ViewError {
    fn from(e: VfsError) -> Self {
        ViewError::Fs(e)
    }
}

impl std::fmt::Display for ViewError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViewError::Conflict { soname, first, second } => {
                write!(f, "view conflict on {soname}: {first} vs {second}")
            }
            ViewError::Fs(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ViewError {}

/// Build `view_dir/lib` with a symlink per library of every package in
/// `closure` (the package itself plus its installed dependencies).
/// Returns the number of symlinks created.
pub fn build_view(
    fs: &Vfs,
    view_dir: &str,
    closure: &[&InstalledPackage],
) -> Result<usize, ViewError> {
    let lib_view = vpath::join(view_dir, "lib");
    fs.mkdir_p(&lib_view)?;
    let mut created = 0usize;
    let mut owner_of: Vec<(String, String)> = Vec::new();
    for pkg in closure {
        let Ok(names) = fs.list_dir(&pkg.lib_dir) else { continue };
        for name in names {
            if let Some((_, first)) = owner_of.iter().find(|(n, _)| n == &name) {
                return Err(ViewError::Conflict {
                    soname: name,
                    first: first.clone(),
                    second: pkg.name.clone(),
                });
            }
            let link = vpath::join(&lib_view, &name);
            let target = vpath::join(&pkg.lib_dir, &name);
            fs.symlink(&link, &target)?;
            owner_of.push((name, pkg.name.clone()));
            created += 1;
        }
    }
    Ok(created)
}

/// The single search-path entry a viewed binary needs.
pub fn view_lib_dir(view_dir: &str) -> String {
    vpath::join(view_dir, "lib")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::{BinDef, LibDef, PackageDef, Repo};
    use crate::store::StoreInstaller;
    use depchaos_elf::ElfEditor;
    use depchaos_loader::{Environment, GlibcLoader};

    fn installed_world() -> (Vfs, StoreInstaller, InstalledPackage) {
        let fs = Vfs::local();
        let mut r = Repo::new();
        r.add(PackageDef::new("zlib", "1").lib(LibDef::new("libz.so.1")));
        r.add(
            PackageDef::new("ssl", "1")
                .dep("zlib")
                .lib(LibDef::new("libssl.so").needs("libz.so.1")),
        );
        r.add(PackageDef::new("app", "1").dep("ssl").bin(BinDef::new("app").needs("libssl.so")));
        let mut st = StoreInstaller::spack_like();
        let app = st.install(&fs, &r, "app").unwrap();
        (fs, st, app)
    }

    #[test]
    fn view_collapses_search_to_one_directory() {
        let (fs, st, app) = installed_world();
        let ssl = st.get("ssl").unwrap().clone();
        let zlib = st.get("zlib").unwrap().clone();
        let n = build_view(&fs, "/views/app", &[&app, &ssl, &zlib]).unwrap();
        assert_eq!(n, 2, "libssl + libz symlinked");

        // Rewrite the binary: ONE rpath entry instead of three runpaths.
        // A view-style install also strips the per-library search paths so
        // the binary's single propagating RPATH serves every lookup
        // (otherwise a library's own RUNPATH would pull resolution back to
        // the store — the RPATH/RUNPATH interference from §III-A).
        let bin = format!("{}/app", app.bin_dir);
        let ed = ElfEditor::open(&fs, &bin).unwrap();
        ed.set_rpath(vec![view_lib_dir("/views/app")]).unwrap();
        for pkg in [&app, &ssl, &zlib] {
            for name in fs.list_dir(&pkg.lib_dir).unwrap() {
                ElfEditor::open(&fs, format!("{}/{}", pkg.lib_dir, name))
                    .unwrap()
                    .remove_rpath()
                    .unwrap();
            }
        }

        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&bin).unwrap();
        assert!(r.success(), "{:?}", r.failures);
        // Everything resolved through the view path.
        assert!(r.objects.iter().skip(1).all(|o| o.path.starts_with("/views/app/lib/")));
    }

    #[test]
    fn conflicting_sonames_rejected() {
        let fs = Vfs::local();
        let mut r = Repo::new();
        r.add(PackageDef::new("ssl-a", "1").lib(LibDef::new("libssl.so")));
        r.add(PackageDef::new("ssl-b", "2").lib(LibDef::new("libssl.so")));
        let mut st = StoreInstaller::spack_like();
        let a = st.install(&fs, &r, "ssl-a").unwrap();
        let b = st.install(&fs, &r, "ssl-b").unwrap();
        let err = build_view(&fs, "/views/x", &[&a, &b]).unwrap_err();
        assert!(matches!(err, ViewError::Conflict { .. }));
    }

    #[test]
    fn symlink_count_equals_inode_cost() {
        let (fs, st, app) = installed_world();
        let ssl = st.get("ssl").unwrap().clone();
        let zlib = st.get("zlib").unwrap().clone();
        let before = fs.inode_count();
        let n = build_view(&fs, "/views/app", &[&app, &ssl, &zlib]).unwrap();
        let after = fs.inode_count();
        // n symlinks plus the view directories themselves.
        assert!(after - before >= n, "views pay one inode per file");
    }
}

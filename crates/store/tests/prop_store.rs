//! Property tests for the store model's pessimistic hashing.

use depchaos_store::{LibDef, PackageDef, Repo, StoreInstaller};
use depchaos_vfs::Vfs;
use proptest::prelude::*;

/// A linear chain of n packages: pkg0 -> pkg1 -> ... -> pkg(n-1), each with
/// per-package build options drawn from the strategy.
fn chain(opts: &[String]) -> Repo {
    let n = opts.len();
    let mut repo = Repo::new();
    for (i, opt) in opts.iter().enumerate() {
        let mut pkg = PackageDef::new(format!("pkg{i}"), "1.0").build_options(opt.clone());
        let mut lib = LibDef::new(format!("lib{i}.so"));
        if i + 1 < n {
            pkg = pkg.dep(format!("pkg{}", i + 1));
            lib = lib.needs(format!("lib{}.so", i + 1));
        }
        repo.add(pkg.lib(lib));
    }
    repo
}

fn install_all(repo: &Repo, n: usize) -> Vec<String> {
    let fs = Vfs::local();
    let mut store = StoreInstaller::spack_like();
    store.install(&fs, repo, "pkg0").unwrap();
    (0..n).map(|i| store.get(&format!("pkg{i}")).unwrap().hash.clone()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hashing is a pure function of the recipe closure: identical inputs,
    /// identical hashes, on fresh installers and filesystems.
    #[test]
    fn hash_deterministic(opts in prop::collection::vec("[a-z0-9 -]{0,8}", 2..6)) {
        let a = install_all(&chain(&opts), opts.len());
        let b = install_all(&chain(&opts), opts.len());
        prop_assert_eq!(a, b);
    }

    /// Perturbing package k changes the hashes of exactly packages 0..=k
    /// (its dependents and itself) and nothing below it.
    #[test]
    fn domino_is_exact(opts in prop::collection::vec("[a-z]{0,6}", 2..6), k_raw in 0usize..8) {
        let n = opts.len();
        let k = k_raw % n;
        let before = install_all(&chain(&opts), n);
        let mut changed = opts.clone();
        changed[k] = format!("{}-patched", changed[k]);
        let after = install_all(&chain(&changed), n);
        for i in 0..n {
            if i <= k {
                prop_assert_ne!(&before[i], &after[i], "pkg{} must rebuild", i);
            } else {
                prop_assert_eq!(&before[i], &after[i], "pkg{} must be reused", i);
            }
        }
    }

    /// Distinct packages never collide (within a run): every prefix in the
    /// store is unique.
    #[test]
    fn prefixes_unique(opts in prop::collection::vec("[a-z]{0,5}", 2..7)) {
        let fs = Vfs::local();
        let mut store = StoreInstaller::spack_like();
        store.install(&fs, &chain(&opts), "pkg0").unwrap();
        let mut prefixes = fs.list_dir("/store").unwrap();
        let total = prefixes.len();
        prefixes.sort();
        prefixes.dedup();
        prop_assert_eq!(prefixes.len(), total);
        prop_assert_eq!(total, opts.len());
    }
}

//! `depchaos-serve` — the batched what-if front door over the persistent
//! result store.
//!
//! ```text
//! depchaos-serve --store DIR --requests FILE [--out FILE] [--stats FILE]
//!                [--jobs N] [--compact]
//! ```
//!
//! Reads one what-if request per JSONL line from `--requests` (`-` for
//! stdin) — see `depchaos_serve::requests` for the format: `servers: N`
//! models the N-server metadata fleet (the DES topology axis, with
//! `assign` choosing `hash` or `least` routing), while `servers_ideal: N`
//! keeps the old coordination-free division of the per-op service time —
//! answers warm queries straight from the store under `--store` (created
//! on first use), profiles only the cold cells over `--jobs` worker threads
//! (default: the machine's parallelism; explicit values are validated —
//! `0` or anything past the shared cap is the exit-2 usage error),
//! batch-simulates the misses in one planner pass, and appends every
//! fresh result
//! to the store. Answers (simulator-deterministic JSONL, byte-identical
//! across replays) go to `--out` or stdout; the batch/per-query
//! hit-miss-latency accounting and the store's load stats go to
//! `--stats` or stderr. `--compact` rewrites the store log afterwards,
//! shedding duplicate and dead bytes.
//!
//! Exit codes (uniform across the depchaos CLIs):
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | every request parsed and was answered (error *cells* are answers) |
//! | 1 | partial failure — a request failed to parse, or a cell's profiling panicked (the panic is isolated: every other cell still answers, the poisoned cell answers with an error line and is never persisted) |
//! | 2 | usage or I/O error — bad flags, unreadable input, store failure |

use std::io::Read;
use std::path::Path;

use depchaos_launch::ProfileCache;
use depchaos_serve::{default_jobs, serve_batch, ResultStore};

fn usage() -> ! {
    eprintln!(
        "usage: depchaos-serve --store DIR --requests FILE \
         [--out FILE] [--stats FILE] [--jobs N] [--compact]"
    );
    std::process::exit(2);
}

fn main() {
    let mut store_dir: Option<String> = None;
    let mut requests: Option<String> = None;
    let mut out: Option<String> = None;
    let mut stats_path: Option<String> = None;
    let mut jobs = default_jobs();
    let mut compact = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match a.as_str() {
            "--store" => store_dir = Some(value("--store")),
            "--requests" => requests = Some(value("--requests")),
            "--out" => out = Some(value("--out")),
            "--stats" => stats_path = Some(value("--stats")),
            "--jobs" => match depchaos_cli::parse_jobs(&value("--jobs")) {
                Ok(n) => jobs = n,
                Err(e) => {
                    eprintln!("{e}");
                    usage()
                }
            },
            "--compact" => compact = true,
            _ => {
                eprintln!("unknown argument {a:?}");
                usage()
            }
        }
    }
    let Some(store_dir) = store_dir else {
        eprintln!("--store is required");
        usage()
    };
    let Some(requests) = requests else {
        eprintln!("--requests is required");
        usage()
    };

    let input = if requests == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("cannot read stdin: {e}");
            std::process::exit(2);
        }
        buf
    } else {
        match std::fs::read_to_string(&requests) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read {requests}: {e}");
                std::process::exit(2);
            }
        }
    };

    let store = match ResultStore::open(Path::new(&store_dir)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open store {store_dir}: {e}");
            std::process::exit(2);
        }
    };

    let report = match serve_batch(&input, &store, &ProfileCache::new(), jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("store I/O error: {e}");
            std::process::exit(2);
        }
    };

    let answers = report.answers_jsonl();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &answers) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
        None => print!("{answers}"),
    }
    let stats = report.stats_json(&store);
    match &stats_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &stats) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
        None => eprint!("{stats}"),
    }

    if compact {
        match store.compact() {
            Ok(n) => eprintln!("(compacted store to {n} records)"),
            Err(e) => {
                eprintln!("compaction failed: {e}");
                std::process::exit(2);
            }
        }
    }

    if report.had_errors() {
        std::process::exit(1);
    }
}

//! `depchaos-report` — regenerate every paper table and figure as text.
//!
//! Usage: `depchaos-report [SECTION] [--tsv FILE] [--store DIR] [--jobs N]`
//! (default `all`). Fig 6 at full scale takes a few seconds in release
//! mode; pass `fig6-small` for a reduced run, `fig6-backends` for the
//! per-backend scenario-matrix sweep (glibc, musl, future, hash-store side
//! by side), `fig6-dist` for the service-distribution sweep (deterministic
//! vs jittered vs heavy-tailed metadata server, p50/p99 bands, pynamic +
//! axom + rocm), `fig6-queueing` for the M/G/k cross-check (single-server
//! and multi-server topologies against their Erlang-C envelopes; exits 1
//! when any cell's replicate mean escapes its queueing-theory envelope),
//! `fig6-faults` for the degraded-mode sweep (server brownouts, lossy
//! RPC with timeout/retry/backoff, straggler cohorts — plain vs
//! shrinkwrapped), or `fig6-servers` for the metadata-fleet sweep
//! (S ∈ {1, 2, 4, 8, 16} hash-routed servers × plain vs shrinkwrapped,
//! with the per-rank-point speedup over the single server and the
//! flattening point where more servers stop paying).
//! `--tsv FILE` additionally writes the section's raw `SweepReport` rows
//! as TSV — the artifact CI persists; sections that run no sweep ignore
//! it.
//!
//! `--store DIR` routes every sweep section through the persistent result
//! store (`depchaos-serve`'s content-addressed cache): cells already in
//! the store are served warm, only misses simulate, fresh results are
//! appended — rendered tables are bit-identical either way, and the
//! warm/cold counters print to stderr. `--jobs N` fans cold-cell
//! profiling over N worker threads (default 1; misses themselves simulate
//! as one batched planner pass). `--jobs` rejects 0 and values above the
//! shared cap with the exit-2 usage error.
//!
//! `--adaptive TARGET` switches `fig6-dist` from fixed-K replication to
//! adaptive replicate control: `TARGET` is the relative precision goal as
//! a fraction in `[0.001, 1)` (e.g. `0.05` = stop a stochastic cell once
//! the 95% half-width of its mean launch time falls under 5% of the
//! mean), with K between 3 and the default fixed budget per cell. The
//! sweep stays bit-reproducible — replicate `r`'s draws are a pure
//! function of the cell seed and `r` — and the `--tsv` artifact's
//! `stopping` column records the plan and the K every cell actually used
//! (`fixed@K` / `adaptive-TARGETm@K`). Other sections ignore the flag.
//! An out-of-range or unparsable `TARGET` is the exit-2 usage error, like
//! every other bad flag below.
//!
//! Exit codes (uniform across the depchaos CLIs):
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | the requested sections rendered |
//! | 1 | check violation — a queueing cell (single- or multi-server) escaped its M/G/k envelope |
//! | 2 | usage or I/O error — bad section/flags (`--adaptive` outside `[0.001, 1)` included), unwritable TSV, store failure |

use depchaos_core::{wrap, ShrinkwrapOptions};
use depchaos_graph::reuse_counts;
use depchaos_launch::{
    render_fig6_paired, sweep_paired, AdaptiveControl, CachePolicy, ExperimentMatrix, FaultModel,
    LaunchConfig, MatrixBackend, ProfileCache, ServerTopology, ServiceDistribution, SweepReport,
    WrapState,
};
use depchaos_loader::{Environment, GlibcLoader};
use depchaos_serve::{run_matrix_incremental, ResultStore};
use depchaos_vfs::{StorageModel, Vfs};
use depchaos_workloads::{debian, emacs, nix_ruby, paradox, pynamic, Axom, Pynamic, Rocm};

/// Where a sweep-producing section should drop its raw TSV, if anywhere,
/// and how to execute its matrix (direct, or incrementally against a
/// persistent store).
struct ReportOpts {
    tsv: Option<String>,
    store: Option<String>,
    jobs: usize,
    /// `--adaptive TARGET` as integer milli (e.g. `0.05` → 50): the
    /// relative precision goal adaptive replicate control stops at.
    /// `fig6-dist` consumes it; other sections ignore it.
    adaptive: Option<u32>,
}

impl ReportOpts {
    /// Execute a sweep matrix for one section: against the persistent
    /// store when `--store` was given (warm cells served, misses
    /// simulated and appended), in memory otherwise — one code path, so
    /// the rendered tables cannot depend on which way the cells came.
    fn run(&self, matrix: &ExperimentMatrix) -> SweepReport {
        let store = match &self.store {
            Some(dir) => match ResultStore::open(std::path::Path::new(dir)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("cannot open store {dir}: {e}");
                    std::process::exit(2);
                }
            },
            None => ResultStore::in_memory(),
        };
        match run_matrix_incremental(matrix, &store, &ProfileCache::new(), self.jobs) {
            Ok((report, stats)) => {
                if self.store.is_some() {
                    eprintln!(
                        "(store: {} cells — {} warm, {} simulated on {} jobs)",
                        stats.cells_total, stats.warm_hits, stats.cold_cells, stats.jobs
                    );
                }
                report
            }
            Err(e) => {
                eprintln!("store I/O error: {e}");
                std::process::exit(2);
            }
        }
    }
    /// Write `report`'s rows when `--tsv` was given; exit 2 on IO errors —
    /// a CI artifact silently missing is worse than a red step.
    fn persist_tsv(&self, report: &SweepReport) {
        self.persist_raw(&report.render_tsv());
    }

    /// Write a section-specific TSV rendering (same `--tsv` path and error
    /// policy as [`ReportOpts::persist_tsv`]).
    fn persist_raw(&self, content: &str) {
        if let Some(path) = &self.tsv {
            if let Err(e) = std::fs::write(path, content) {
                eprintln!("cannot write TSV {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("(wrote {path})");
        }
    }
}

type SectionFn = fn(&ReportOpts);

/// Every report section: name, whether `all` includes it, and its
/// renderer. One table drives dispatch and the valid-section listing
/// alike, so the two cannot drift apart (an unknown argument exits 2
/// instead of silently rendering nothing).
const SECTIONS: &[(&str, bool, SectionFn)] = &[
    ("fig1", true, fig1),
    ("fig2", true, fig2),
    ("fig3", true, fig3),
    ("fig4", true, fig4),
    ("table1", true, table1),
    ("table2", true, table2),
    ("fig6", true, fig6_paper),
    ("fig6-small", false, fig6_small),
    ("fig6-backends", true, fig6_backends),
    ("fig6-dist", true, fig6_dist),
    ("fig6-queueing", true, fig6_queueing),
    ("fig6-faults", true, fig6_faults),
    ("fig6-servers", true, fig6_servers),
    ("listing1", true, listing1),
    ("usecases", true, usecases),
    ("backends", true, backends),
];

fn main() {
    let mut section_arg: Option<String> = None;
    let mut opts = ReportOpts { tsv: None, store: None, jobs: 1, adaptive: None };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--tsv" => opts.tsv = Some(value("--tsv")),
            "--store" => opts.store = Some(value("--store")),
            "--jobs" => match depchaos_cli::parse_jobs(&value("--jobs")) {
                Ok(n) => opts.jobs = n,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            },
            "--adaptive" => {
                let v = value("--adaptive");
                match v.parse::<f64>() {
                    // The floor keeps the milli encoding nonzero: 0 is the
                    // rule's "disabled" sentinel, which would silently run
                    // the full fixed budget.
                    Ok(f) if (0.001..1.0).contains(&f) => {
                        opts.adaptive = Some((f * 1000.0).round() as u32);
                    }
                    _ => {
                        eprintln!(
                            "--adaptive needs a relative precision target in [0.001, 1), \
                             e.g. 0.05 for a 5% half-width: got {v:?}"
                        );
                        std::process::exit(2);
                    }
                }
            }
            _ => section_arg = Some(a),
        }
    }
    let arg = section_arg.unwrap_or_else(|| "all".to_string());
    if arg == "all" {
        // Several sections would take turns overwriting one TSV path;
        // refuse rather than hand back only the last section's rows.
        if opts.tsv.is_some() {
            eprintln!(
                "--tsv needs a single sweep section (fig6, fig6-backends, fig6-dist, \
                 fig6-queueing, fig6-faults, fig6-servers), not all"
            );
            std::process::exit(2);
        }
        for (_, in_all, section) in SECTIONS {
            if *in_all {
                section(&opts);
            }
        }
        return;
    }
    match SECTIONS.iter().find(|(name, _, _)| *name == arg) {
        Some((_, _, section)) => section(&opts),
        None => {
            let names: Vec<&str> = SECTIONS.iter().map(|(n, _, _)| *n).collect();
            eprintln!("unknown section {arg:?}; valid sections: all, {}", names.join(", "));
            std::process::exit(2);
        }
    }
}

fn fig6_paper(opts: &ReportOpts) {
    fig6(pynamic::N_LIBS_PAPER, opts);
}

fn fig6_small(opts: &ReportOpts) {
    fig6(200, opts);
}

/// One image, every loader backend — the cross-semantics comparison the
/// `Loader` trait makes a one-liner.
fn backends(_opts: &ReportOpts) {
    banner("Loader backends: emacs, plain vs shrinkwrapped");
    use depchaos_core::LoaderBackend;
    use depchaos_loader::LdCache;

    println!(
        "{:<10} {:>8} {:>14} {:>8} {:>14}  (soname dedup)",
        "backend", "plain", "stat/openat", "wrapped", "stat/openat"
    );
    for backend in LoaderBackend::all_stock() {
        let fs = Vfs::local();
        emacs::install(&fs).unwrap();
        let env = Environment::bare();
        let loader = backend.instantiate(&fs, &env, &LdCache::empty());
        let plain = loader.load(emacs::EXE_PATH).unwrap();

        let wrapped_fs = Vfs::local();
        emacs::install(&wrapped_fs).unwrap();
        wrap(&wrapped_fs, emacs::EXE_PATH, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
        let loader = backend.instantiate(&wrapped_fs, &env, &LdCache::empty());
        let wrapped = loader.load(emacs::EXE_PATH).unwrap();

        println!(
            "{:<10} {:>8} {:>14} {:>8} {:>14}  ({})",
            backend.name(),
            if plain.success() { "ok" } else { "FAILS" },
            plain.stat_openat(),
            if wrapped.success() { "ok" } else { "FAILS" },
            wrapped.stat_openat(),
            if loader.resolves_by_soname() { "yes" } else { "no" },
        );
    }
    println!(
        "(musl has no soname cache, so the wrapped image costs it a re-search per \
         transitive request — and fails outright once search paths are gone: §IV)"
    );
}

fn banner(s: &str) {
    println!("\n===== {s} =====");
}

fn fig1(_opts: &ReportOpts) {
    banner("Fig 1: Debian package dependencies by type");
    let t = debian::fig1_tally(2021, 209_000);
    print!("{}", t.render_table());
    println!("unversioned fraction: {:.1}%", 100.0 * t.unversioned_fraction());
}

fn fig2(_opts: &ReportOpts) {
    banner("Fig 2: Nix Ruby closure (the snarl)");
    let g = nix_ruby::closure(2022);
    println!("nodes: {}   edges: {}", g.node_count(), g.edge_count());
    let ruby = g.lookup("ruby-2.7.5.drv").unwrap();
    println!("transitive closure of ruby: {} derivations", g.closure_bfs(ruby).len());
    let dot = depchaos_graph::dot::to_dot(&g, "ruby-2.7.5");
    println!("DOT export: {} lines (pipe to `dot -Tsvg` to render the snarl)", dot.lines().count());
}

fn fig3(_opts: &ReportOpts) {
    banner("Fig 3: the RUNPATH paradox");
    let fs = Vfs::local();
    paradox::install(&fs).unwrap();
    println!("any search-path ordering correct? {}", paradox::any_ordering_correct(&fs));
    println!("(Shrinkwrap-style absolute paths resolve it — see tests/fig3_paradox.rs)");
}

fn fig4(_opts: &ReportOpts) {
    banner("Fig 4: shared object reuse (3287 binaries)");
    let usages = debian::installed_system(2021, 3287, 1400);
    let h = reuse_counts(usages.iter().map(|(b, s)| (b.as_str(), s.iter().map(String::as_str))));
    print!("{}", h.render_summary(10));
}

fn table1(_opts: &ReportOpts) {
    banner("Table I: properties of RPATH and RUNPATH");
    use depchaos_elf::{io::install, ElfObject};

    // Experiment 1: which copy wins against LD_LIBRARY_PATH?
    let beats_env = |use_rpath: bool| -> bool {
        let fs = Vfs::local();
        install(&fs, "/emb/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(&fs, "/env/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        let exe = if use_rpath {
            ElfObject::exe("a").needs("libx.so").rpath("/emb").build()
        } else {
            ElfObject::exe("a").needs("libx.so").runpath("/emb").build()
        };
        install(&fs, "/bin/a", &exe).unwrap();
        let env = Environment::bare().with_ld_library_path("/env");
        let r = GlibcLoader::new(&fs).with_env(env).load("/bin/a").unwrap();
        r.objects[1].path == "/emb/libx.so"
    };
    // Experiment 2: does the attribute serve a *transitive* lookup?
    let propagates = |use_rpath: bool| -> bool {
        let fs = Vfs::local();
        install(&fs, "/l/libmid.so", &ElfObject::dso("libmid.so").needs("libleaf.so").build())
            .unwrap();
        install(&fs, "/d/libleaf.so", &ElfObject::dso("libleaf.so").build()).unwrap();
        let exe = if use_rpath {
            ElfObject::exe("a").needs("libmid.so").rpath("/l").rpath("/d").build()
        } else {
            ElfObject::exe("a").needs("libmid.so").runpath("/l").runpath("/d").build()
        };
        install(&fs, "/bin/a", &exe).unwrap();
        GlibcLoader::new(&fs).with_env(Environment::bare()).load("/bin/a").unwrap().success()
    };
    let yn = |b: bool| if b { "Yes" } else { "No" };
    println!("{:<32} {:>6} {:>8}", "Property", "RPATH", "RUNPATH");
    println!(
        "{:<32} {:>6} {:>8}",
        "Before LD_LIBRARY_PATH",
        yn(beats_env(true)),
        yn(beats_env(false))
    );
    println!(
        "{:<32} {:>6} {:>8}",
        "After LD_LIBRARY_PATH",
        yn(!beats_env(true)),
        yn(!beats_env(false))
    );
    println!("{:<32} {:>6} {:>8}", "Propagates", yn(propagates(true)), yn(propagates(false)));
    println!("(computed live against the glibc loader model)");
}

fn table2(_opts: &ReportOpts) {
    banner("Table II: emacs stat/openat syscalls");
    let fs = Vfs::local();
    emacs::install(&fs).unwrap();
    let env = Environment::bare();
    let before = GlibcLoader::new(&fs).with_env(env.clone()).load(emacs::EXE_PATH).unwrap();
    wrap(&fs, emacs::EXE_PATH, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
    let after = GlibcLoader::new(&fs).with_env(env).load(emacs::EXE_PATH).unwrap();
    println!("{:<16} {:>16} {:>14}", "", "Calls (stat/openat)", "Time (seconds)");
    println!("{:<16} {:>16} {:>14.6}", "emacs", before.stat_openat(), before.time_ns as f64 / 1e9);
    println!(
        "{:<16} {:>16} {:>14.6}",
        "emacs-wrapped",
        after.stat_openat(),
        after.time_ns as f64 / 1e9
    );
    println!("reduction: {:.1}x", before.stat_openat() as f64 / after.stat_openat() as f64);
}

fn listing1(_opts: &ReportOpts) {
    banner("Listing 1: libtree dbwrap_tool");
    use depchaos_loader::{analyze_tree, LdCache};
    use depchaos_workloads::samba;
    let fs = Vfs::local();
    samba::install(&fs).unwrap();
    let tree =
        analyze_tree(&fs, samba::TOOL_PATH, &Environment::default(), &LdCache::empty()).unwrap();
    print!("{}", tree.render());
    let r = GlibcLoader::new(&fs).load(samba::TOOL_PATH).unwrap();
    println!(
        "(dynamic load nonetheless succeeds: {} objects, dedup hides the hole)",
        r.objects.len()
    );
}

fn usecases(_opts: &ReportOpts) {
    banner("§V-B use cases");
    use depchaos_workloads::{openmp, rocm};

    // ROCm.
    let fs = Vfs::local();
    rocm::install_scenario(&fs).unwrap();
    let mut ms = rocm::module_system();
    ms.load("rocm/4.3.0").unwrap();
    let env = ms.environment(Environment::default());
    let r = GlibcLoader::new(&fs).with_env(env.clone()).load(rocm::APP).unwrap();
    println!(
        "ROCm 4.5 app + rocm/4.3.0 module: versions loaded {:?} (the segfault)",
        rocm::versions_loaded(&r)
    );
    let mut ms2 = rocm::module_system();
    ms2.load("rocm/4.5.0").unwrap();
    wrap(&fs, rocm::APP, &ShrinkwrapOptions::new().env(ms2.environment(Environment::default())))
        .unwrap();
    let r2 = GlibcLoader::new(&fs).with_env(env).load(rocm::APP).unwrap();
    println!(
        "after shrinkwrap:                 versions loaded {:?} (fixed)",
        rocm::versions_loaded(&r2)
    );

    // OpenMP stubs.
    let fs = Vfs::local();
    openmp::install_scenario(&fs, false).unwrap();
    let rep =
        wrap(&fs, openmp::APP, &ShrinkwrapOptions::new().env(Environment::default())).unwrap();
    let dups = rep
        .warnings
        .iter()
        .filter(|w| matches!(w, depchaos_core::WrapWarning::DuplicateStrongSymbol { .. }))
        .count();
    let r = GlibcLoader::new(&fs).load(openmp::APP).unwrap();
    println!(
        "libomp/libompstubs: wrap succeeded with {} duplicate-symbol warnings; \
         omp_get_num_threads bound to {}",
        dups,
        openmp::winning_runtime(&r).unwrap()
    );
}

fn fig6(n_libs: usize, opts: &ReportOpts) {
    banner("Fig 6: Pynamic time-to-launch (normal vs shrinkwrapped)");
    // The paper's figure is one cell of the scenario matrix: pynamic ×
    // glibc × NFS, plain vs wrapped, cold caches.
    let report = opts.run(
        &ExperimentMatrix::new()
            .workload(Pynamic::new(n_libs))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states(WrapState::all())
            .cache_policies([CachePolicy::Cold]),
    );
    println!("({n_libs} shared libraries, cold NFS, negative caching off)");
    print!("{}", report.render_fig6_tables());
    opts.persist_tsv(&report);
}

/// The backend × wrap sweep: the same Fig 6 pipeline driven once, rendered
/// per loader backend — glibc, musl, the §III-C future loader, and the
/// hash-store loader service. 300 libraries keep the musl quadratic
/// profile affordable while preserving every qualitative contrast.
fn fig6_backends(opts: &ReportOpts) {
    let n_libs = 300;
    banner("Fig 6 backends: Pynamic time-to-launch per loader backend");
    let report = opts.run(
        &ExperimentMatrix::new()
            .workload(Pynamic::new(n_libs))
            .backends(MatrixBackend::all())
            .storage(StorageModel::Nfs)
            .wrap_states(WrapState::all())
            .cache_policies([CachePolicy::Cold]),
    );
    println!(
        "({n_libs} shared libraries, cold NFS; {} unique cells profiled once each)",
        report.cells_profiled
    );
    print!("{}", report.render_fig6_tables());
    println!(
        "(the future loader has no RUNPATH semantics, so the stock pynamic world is \
         unresolvable under it: its plain series is incomplete and the wrap fails — that \
         hole is the finding; the hash-store service resolves every request in one probe, \
         so its plain series already sits near the wrapped glibc line)"
    );
    opts.persist_tsv(&report);
}

/// The service-distribution sweep: three genuinely different dependency
/// shapes (Pynamic's RUNPATH search storm, the >200-package Axom store
/// stack, the ROCm module world) under a deterministic, a jittered, and a
/// heavy-tailed metadata server — every stochastic cell seeded, replicated,
/// and reported as p50/p99 bands next to the deterministic curve.
fn fig6_dist(opts: &ReportOpts) {
    banner("Fig 6 dist: time-to-launch under stochastic server latency");
    let mut matrix = ExperimentMatrix::new()
        .workload(Pynamic::new(200))
        .workload(Axom::paper())
        .workload(Rocm::matched())
        .backend(MatrixBackend::glibc())
        .storage(StorageModel::Nfs)
        .wrap_states(WrapState::all())
        .cache_policies([CachePolicy::Cold])
        .distributions(ServiceDistribution::all());
    if let Some(target_rel_milli) = opts.adaptive {
        matrix = matrix.adaptive(AdaptiveControl {
            target_rel_milli,
            min_k: 3,
            max_k: depchaos_launch::DEFAULT_REPLICATES,
            batch: 4,
        });
    }
    let report = opts.run(&matrix);
    match report.adaptive {
        Some(ctl) => println!(
            "(cold NFS, glibc; {} cells profiled once; adaptive replicate control: stop at \
             a ±{:.1}% relative 95% half-width, K in [{}..{}] per stochastic cell)",
            report.cells_profiled,
            ctl.target_rel_milli as f64 / 10.0,
            ctl.min_k,
            ctl.max_k
        ),
        None => println!(
            "(cold NFS, glibc; {} cells profiled once, stochastic cells over {} seeded \
             replicates)",
            report.cells_profiled,
            depchaos_launch::DEFAULT_REPLICATES
        ),
    }
    print!("{}", report.render_fig6_dist_tables());
    if report.adaptive.is_some() {
        // The stopping summary: what the rule actually spent against the
        // fixed budget it replaced. Per-cell Ks are in the TSV's
        // `stopping` column.
        let spent: usize =
            report.results.iter().flat_map(|r| &r.stats).map(|(_, st)| st.replicates).sum();
        let fixed: usize = report
            .results
            .iter()
            .map(|r| {
                let per = if r.spec.dist.is_deterministic() && !r.spec.fault.takes_draws() {
                    1
                } else {
                    depchaos_launch::DEFAULT_REPLICATES
                };
                per * r.stats.len()
            })
            .sum();
        println!(
            "(adaptive stopping spent {spent} replicate simulations where fixed K would \
             spend {fixed} — {:.2}x fewer, bit-reproducibly)",
            fixed as f64 / spent as f64
        );
    }
    println!(
        "(jitter barely moves p50 — queueing averages it out — while the log-normal tail \
         stretches p99 on the search-heavy plain streams; wrapped streams barely feel \
         either, having almost no server ops left to jitter)"
    );

    // The common-random-numbers companion: the pynamic cell's plain and
    // wrapped arms swept under *shared* replicate seeds (unlike the matrix,
    // whose per-cell label-derived seeds decorrelate the arms by design),
    // so the paired estimator can cancel whatever noise the arms share.
    let cache = ProfileCache::new();
    let cfg = LaunchConfig {
        service_dist: ServiceDistribution::log_normal(0.5),
        ..LaunchConfig::default()
    };
    let cell = cache.get_or_profile(&Pynamic::new(200), &MatrixBackend::glibc(), StorageModel::Nfs);
    if let (Ok(p), Ok(w)) = (cell.outcome(WrapState::Plain), cell.outcome(WrapState::Wrapped)) {
        let plain = cache.classified(&cell.key, WrapState::Plain, &p.log, &cfg);
        let wrapped = cache.classified(&cell.key, WrapState::Wrapped, &w.log, &cfg);
        let pts = sweep_paired(
            &plain,
            &wrapped,
            &cfg,
            &[512, 1024, 2048],
            depchaos_launch::DEFAULT_REPLICATES,
        );
        println!(
            "\npynamic-200 wrapped-vs-plain speedup under the heavy-tailed server, CRN-paired:"
        );
        print!("{}", render_fig6_paired(&pts));
        println!(
            "(each replicate seeds both arms identically; the paired interval on the \
             difference is the one to trust — it narrows toward the unpaired interval as \
             the arms' draw overlap shrinks, and the wrap removes most of it here)"
        );
    }
    opts.persist_tsv(&report);
}

/// The queueing-theory cross-check: every stochastic cell's replicate mean
/// against its M/G/k envelope (hard capacity/work-conservation bounds plus
/// the Erlang-C / Lee–Longton descriptors; k = 1 is the classic M/G/1
/// Pollaczek–Khinchine case). The topology axis puts genuine multi-server
/// cells in the sweep, so the fleet model is cross-checked too — hash
/// routing as k independent lanes, least-loaded against the pooled
/// work-conservation floor. A violation means the DES and queueing theory
/// disagree about the same model — that is a bug by definition, so this
/// section exits 1 and fails CI rather than printing a table nobody reads.
fn fig6_queueing(opts: &ReportOpts) {
    banner("Fig 6 queueing: DES replicate means vs M/G/k envelope");
    let report = opts.run(
        &ExperimentMatrix::new()
            .workload(Pynamic::new(150))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states(WrapState::all())
            .cache_policies([CachePolicy::Cold])
            .distributions(ServiceDistribution::all())
            .topologies([
                ServerTopology::single(),
                ServerTopology::hash(4),
                ServerTopology::least_loaded(4),
            ])
            .rank_points([512usize, 2048, 16 * 1024]),
    );
    println!(
        "(cold NFS, glibc; every swept cell checked over {} seeded replicates, single \
         server and 4-server fleets alike; rho ≥ 1 marks the contended regime where \
         the capacity bound binds)",
        depchaos_launch::DEFAULT_REPLICATES
    );
    print!("{}", report.render_queueing_tables());
    opts.persist_raw(&report.render_queueing_tsv());
    let violations = report.queueing_violations();
    if violations.is_empty() {
        println!("every cell within bounds — the stochastic DES is consistent with M/G/k");
    } else {
        for (label, ranks) in &violations {
            eprintln!("QUEUEING VIOLATION: {label} at {ranks} ranks");
        }
        std::process::exit(1);
    }
}

/// The degraded-mode sweep: the Fig 6 cell under injected faults — server
/// brownouts of growing severity, lossy RPC with timeout/retry/backoff,
/// and a straggler cohort — plain vs shrinkwrapped side by side. The
/// quantitative story: a metadata storm amplifies every server-side fault
/// (retries are real extra server work; a brownout gates the whole storm),
/// while the wrapped binary barely notices, having almost no server ops
/// left to degrade.
fn fig6_faults(opts: &ReportOpts) {
    banner("Fig 6 faults: degraded-mode launch sweeps, plain vs shrinkwrapped");
    let report = opts.run(
        &ExperimentMatrix::new()
            .workload(Pynamic::new(150))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states(WrapState::all())
            .cache_policies([CachePolicy::Cold])
            .faults([
                FaultModel::None,
                FaultModel::ServerStall { at_ns: 2_000_000_000, duration_ns: 10_000_000_000 },
                FaultModel::ServerStall { at_ns: 2_000_000_000, duration_ns: 60_000_000_000 },
                FaultModel::RpcLoss {
                    loss_milli: 50,
                    timeout_ns: 1_000_000_000,
                    backoff_base_ns: 250_000_000,
                    max_retries: 5,
                },
                FaultModel::Stragglers { frac_milli: 250, slow_milli: 4000 },
            ])
            .rank_points([512usize, 2048]),
    );
    println!(
        "(cold NFS, glibc; faults drawn from the dedicated FAULT seed domain, so the \
         healthy rows are bit-identical to the fault-free sweep)"
    );
    print!("{}", report.render_fault_tables());
    println!(
        "(every fault model punishes the plain launch through its metadata storm — a \
         brownout stalls thousands of queued lookups, loss amplifies offered load by \
         1/(1-p) in real retried server work — while the wrapped rows degrade only by \
         the fault's floor)"
    );
    opts.persist_tsv(&report);
}

/// The metadata-fleet sweep: the Fig 6 cell behind S hash-routed servers,
/// S ∈ {1, 2, 4, 8, 16}, plain vs shrinkwrapped. The quantitative question
/// is where the curve flattens — how many servers the storm is worth — and
/// the punchline is the contrast: the plain launch keeps paying for
/// servers long after the wrapped one has nothing left to parallelise.
fn fig6_servers(opts: &ReportOpts) {
    banner("Fig 6 servers: time-to-launch vs metadata-fleet size");
    let report = opts.run(
        &ExperimentMatrix::new()
            .workload(Pynamic::new(150))
            .backend(MatrixBackend::glibc())
            .storage(StorageModel::Nfs)
            .wrap_states(WrapState::all())
            .cache_policies([CachePolicy::Cold])
            .topologies([1usize, 2, 4, 8, 16].map(ServerTopology::hash)),
    );
    println!(
        "({} unique cells profiled once; hash-by-node routing, so every fleet \
         size replays the same classified op streams)",
        report.cells_profiled
    );
    print!("{}", report.render_servers_tables());
    println!(
        "(speedup is each fleet's launch time against the single server at the \
         largest rank point; the flattening line marks the first fleet within 5% \
         of the best — past it, extra metadata servers buy nothing the wrap \
         would not buy cheaper)"
    );
    opts.persist_tsv(&report);
}

//! `depchaos-report` — regenerate every paper table and figure as text.
//!
//! Usage: `depchaos-report [fig1|fig2|fig3|fig4|table1|table2|fig6|all]`
//! (default `all`). Fig 6 at full scale takes a few seconds in release mode;
//! pass `fig6-small` for a reduced run.

use depchaos_core::{wrap, ShrinkwrapOptions};
use depchaos_graph::reuse_counts;
use depchaos_launch::{profile_load, render_fig6, sweep_ranks, LaunchConfig};
use depchaos_loader::{Environment, GlibcLoader};
use depchaos_vfs::Vfs;
use depchaos_workloads::{debian, emacs, nix_ruby, paradox, pynamic};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = arg == "all";
    if all || arg == "fig1" {
        fig1();
    }
    if all || arg == "fig2" {
        fig2();
    }
    if all || arg == "fig3" {
        fig3();
    }
    if all || arg == "fig4" {
        fig4();
    }
    if all || arg == "table1" {
        table1();
    }
    if all || arg == "table2" {
        table2();
    }
    if all || arg == "fig6" {
        fig6(pynamic::N_LIBS_PAPER);
    }
    if arg == "fig6-small" {
        fig6(200);
    }
    if all || arg == "listing1" {
        listing1();
    }
    if all || arg == "usecases" {
        usecases();
    }
    if all || arg == "backends" {
        backends();
    }
}

/// One image, every loader backend — the cross-semantics comparison the
/// `Loader` trait makes a one-liner.
fn backends() {
    banner("Loader backends: emacs, plain vs shrinkwrapped");
    use depchaos_core::LoaderBackend;
    use depchaos_loader::LdCache;

    println!(
        "{:<10} {:>8} {:>14} {:>8} {:>14}  (soname dedup)",
        "backend", "plain", "stat/openat", "wrapped", "stat/openat"
    );
    for backend in LoaderBackend::all_stock() {
        let fs = Vfs::local();
        emacs::install(&fs).unwrap();
        let env = Environment::bare();
        let loader = backend.instantiate(&fs, &env, &LdCache::empty());
        let plain = loader.load(emacs::EXE_PATH).unwrap();

        let wrapped_fs = Vfs::local();
        emacs::install(&wrapped_fs).unwrap();
        wrap(&wrapped_fs, emacs::EXE_PATH, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
        let loader = backend.instantiate(&wrapped_fs, &env, &LdCache::empty());
        let wrapped = loader.load(emacs::EXE_PATH).unwrap();

        println!(
            "{:<10} {:>8} {:>14} {:>8} {:>14}  ({})",
            backend.name(),
            if plain.success() { "ok" } else { "FAILS" },
            plain.stat_openat(),
            if wrapped.success() { "ok" } else { "FAILS" },
            wrapped.stat_openat(),
            if loader.resolves_by_soname() { "yes" } else { "no" },
        );
    }
    println!(
        "(musl has no soname cache, so the wrapped image costs it a re-search per \
         transitive request — and fails outright once search paths are gone: §IV)"
    );
}

fn banner(s: &str) {
    println!("\n===== {s} =====");
}

fn fig1() {
    banner("Fig 1: Debian package dependencies by type");
    let t = debian::fig1_tally(2021, 209_000);
    print!("{}", t.render_table());
    println!("unversioned fraction: {:.1}%", 100.0 * t.unversioned_fraction());
}

fn fig2() {
    banner("Fig 2: Nix Ruby closure (the snarl)");
    let g = nix_ruby::closure(2022);
    println!("nodes: {}   edges: {}", g.node_count(), g.edge_count());
    let ruby = g.lookup("ruby-2.7.5.drv").unwrap();
    println!("transitive closure of ruby: {} derivations", g.closure_bfs(ruby).len());
    let dot = depchaos_graph::dot::to_dot(&g, "ruby-2.7.5");
    println!("DOT export: {} lines (pipe to `dot -Tsvg` to render the snarl)", dot.lines().count());
}

fn fig3() {
    banner("Fig 3: the RUNPATH paradox");
    let fs = Vfs::local();
    paradox::install(&fs).unwrap();
    println!("any search-path ordering correct? {}", paradox::any_ordering_correct(&fs));
    println!("(Shrinkwrap-style absolute paths resolve it — see tests/fig3_paradox.rs)");
}

fn fig4() {
    banner("Fig 4: shared object reuse (3287 binaries)");
    let usages = debian::installed_system(2021, 3287, 1400);
    let h = reuse_counts(usages.iter().map(|(b, s)| (b.as_str(), s.iter().map(String::as_str))));
    print!("{}", h.render_summary(10));
}

fn table1() {
    banner("Table I: properties of RPATH and RUNPATH");
    use depchaos_elf::{io::install, ElfObject};

    // Experiment 1: which copy wins against LD_LIBRARY_PATH?
    let beats_env = |use_rpath: bool| -> bool {
        let fs = Vfs::local();
        install(&fs, "/emb/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(&fs, "/env/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        let exe = if use_rpath {
            ElfObject::exe("a").needs("libx.so").rpath("/emb").build()
        } else {
            ElfObject::exe("a").needs("libx.so").runpath("/emb").build()
        };
        install(&fs, "/bin/a", &exe).unwrap();
        let env = Environment::bare().with_ld_library_path("/env");
        let r = GlibcLoader::new(&fs).with_env(env).load("/bin/a").unwrap();
        r.objects[1].path == "/emb/libx.so"
    };
    // Experiment 2: does the attribute serve a *transitive* lookup?
    let propagates = |use_rpath: bool| -> bool {
        let fs = Vfs::local();
        install(&fs, "/l/libmid.so", &ElfObject::dso("libmid.so").needs("libleaf.so").build())
            .unwrap();
        install(&fs, "/d/libleaf.so", &ElfObject::dso("libleaf.so").build()).unwrap();
        let exe = if use_rpath {
            ElfObject::exe("a").needs("libmid.so").rpath("/l").rpath("/d").build()
        } else {
            ElfObject::exe("a").needs("libmid.so").runpath("/l").runpath("/d").build()
        };
        install(&fs, "/bin/a", &exe).unwrap();
        GlibcLoader::new(&fs).with_env(Environment::bare()).load("/bin/a").unwrap().success()
    };
    let yn = |b: bool| if b { "Yes" } else { "No" };
    println!("{:<32} {:>6} {:>8}", "Property", "RPATH", "RUNPATH");
    println!(
        "{:<32} {:>6} {:>8}",
        "Before LD_LIBRARY_PATH",
        yn(beats_env(true)),
        yn(beats_env(false))
    );
    println!(
        "{:<32} {:>6} {:>8}",
        "After LD_LIBRARY_PATH",
        yn(!beats_env(true)),
        yn(!beats_env(false))
    );
    println!("{:<32} {:>6} {:>8}", "Propagates", yn(propagates(true)), yn(propagates(false)));
    println!("(computed live against the glibc loader model)");
}

fn table2() {
    banner("Table II: emacs stat/openat syscalls");
    let fs = Vfs::local();
    emacs::install(&fs).unwrap();
    let env = Environment::bare();
    let before = GlibcLoader::new(&fs).with_env(env.clone()).load(emacs::EXE_PATH).unwrap();
    wrap(&fs, emacs::EXE_PATH, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
    let after = GlibcLoader::new(&fs).with_env(env).load(emacs::EXE_PATH).unwrap();
    println!("{:<16} {:>16} {:>14}", "", "Calls (stat/openat)", "Time (seconds)");
    println!("{:<16} {:>16} {:>14.6}", "emacs", before.stat_openat(), before.time_ns as f64 / 1e9);
    println!(
        "{:<16} {:>16} {:>14.6}",
        "emacs-wrapped",
        after.stat_openat(),
        after.time_ns as f64 / 1e9
    );
    println!("reduction: {:.1}x", before.stat_openat() as f64 / after.stat_openat() as f64);
}

fn listing1() {
    banner("Listing 1: libtree dbwrap_tool");
    use depchaos_loader::{analyze_tree, LdCache};
    use depchaos_workloads::samba;
    let fs = Vfs::local();
    samba::install(&fs).unwrap();
    let tree =
        analyze_tree(&fs, samba::TOOL_PATH, &Environment::default(), &LdCache::empty()).unwrap();
    print!("{}", tree.render());
    let r = GlibcLoader::new(&fs).load(samba::TOOL_PATH).unwrap();
    println!(
        "(dynamic load nonetheless succeeds: {} objects, dedup hides the hole)",
        r.objects.len()
    );
}

fn usecases() {
    banner("§V-B use cases");
    use depchaos_workloads::{openmp, rocm};

    // ROCm.
    let fs = Vfs::local();
    rocm::install_scenario(&fs).unwrap();
    let mut ms = rocm::module_system();
    ms.load("rocm/4.3.0").unwrap();
    let env = ms.environment(Environment::default());
    let r = GlibcLoader::new(&fs).with_env(env.clone()).load(rocm::APP).unwrap();
    println!(
        "ROCm 4.5 app + rocm/4.3.0 module: versions loaded {:?} (the segfault)",
        rocm::versions_loaded(&r)
    );
    let mut ms2 = rocm::module_system();
    ms2.load("rocm/4.5.0").unwrap();
    wrap(&fs, rocm::APP, &ShrinkwrapOptions::new().env(ms2.environment(Environment::default())))
        .unwrap();
    let r2 = GlibcLoader::new(&fs).with_env(env).load(rocm::APP).unwrap();
    println!(
        "after shrinkwrap:                 versions loaded {:?} (fixed)",
        rocm::versions_loaded(&r2)
    );

    // OpenMP stubs.
    let fs = Vfs::local();
    openmp::install_scenario(&fs, false).unwrap();
    let rep =
        wrap(&fs, openmp::APP, &ShrinkwrapOptions::new().env(Environment::default())).unwrap();
    let dups = rep
        .warnings
        .iter()
        .filter(|w| matches!(w, depchaos_core::WrapWarning::DuplicateStrongSymbol { .. }))
        .count();
    let r = GlibcLoader::new(&fs).load(openmp::APP).unwrap();
    println!(
        "libomp/libompstubs: wrap succeeded with {} duplicate-symbol warnings; \
         omp_get_num_threads bound to {}",
        dups,
        openmp::winning_runtime(&r).unwrap()
    );
}

fn fig6(n_libs: usize) {
    banner("Fig 6: Pynamic time-to-launch (normal vs shrinkwrapped)");
    let points = [512usize, 1024, 2048];
    let cfg = LaunchConfig::default();

    let fs = Vfs::nfs();
    let w = pynamic::install(&fs, "/apps/pynamic", n_libs).unwrap();
    let env = Environment::bare();
    let normal_ops = profile_load(&fs, &w.exe_path, &env).unwrap();
    let normal = sweep_ranks(&normal_ops, &cfg, &points);

    wrap(&fs, &w.exe_path, &ShrinkwrapOptions::new().env(env.clone())).unwrap();
    let wrapped_ops = profile_load(&fs, &w.exe_path, &env).unwrap();
    let wrapped = sweep_ranks(&wrapped_ops, &cfg, &points);

    println!("({n_libs} shared libraries, cold NFS, negative caching off)");
    print!("{}", render_fig6(&points, &normal, &wrapped));
}

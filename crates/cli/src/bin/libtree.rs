//! `libtree` — Listing 1, live.
//!
//! Builds the samba `dbwrap_tool` world and prints the static dependency
//! tree, exposing the `not found` entry the dynamic loader's dedup cache
//! papers over. Then runs the dynamic loader to show the binary "works".

use depchaos_loader::{analyze_tree, Environment, GlibcLoader, LdCache};
use depchaos_vfs::Vfs;
use depchaos_workloads::samba;

fn main() {
    let fs = Vfs::local();
    samba::install(&fs).expect("install samba world");

    println!("$ libtree {}", samba::TOOL_PATH);
    let tree = analyze_tree(&fs, samba::TOOL_PATH, &Environment::default(), &LdCache::empty())
        .expect("analyze");
    print!("{}", tree.render());

    println!();
    println!("...yet the dynamic loader succeeds (soname-cache dedup):");
    let r = GlibcLoader::new(&fs).load(samba::TOOL_PATH).expect("load");
    println!(
        "  loaded {} objects, success = {}, misses hidden by dedup = {}",
        r.objects.len(),
        r.success(),
        tree.missing().len()
    );
}

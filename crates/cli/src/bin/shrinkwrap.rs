//! `shrinkwrap` — wrap the Table II emacs workload and show the effect.

use depchaos_core::{audit, wrap, ShrinkwrapOptions};
use depchaos_loader::{Environment, GlibcLoader};
use depchaos_vfs::Vfs;
use depchaos_workloads::emacs;

fn main() {
    let fs = Vfs::local();
    emacs::install(&fs).expect("install emacs world");
    let env = Environment::bare();

    let before = GlibcLoader::new(&fs).with_env(env.clone()).load(emacs::EXE_PATH).unwrap();
    println!(
        "before: {} libraries, {} stat/openat calls",
        before.library_count(),
        before.stat_openat()
    );

    let report = wrap(&fs, emacs::EXE_PATH, &ShrinkwrapOptions::new().env(env.clone()))
        .expect("wrap");
    print!("{}", report.render());

    let after = GlibcLoader::new(&fs).with_env(env.clone()).load(emacs::EXE_PATH).unwrap();
    println!(
        "after:  {} libraries, {} stat/openat calls ({}x fewer)",
        after.library_count(),
        after.stat_openat(),
        before.stat_openat() / after.stat_openat().max(1)
    );

    let a = audit(&fs, emacs::EXE_PATH, &env).expect("audit");
    println!(
        "audit: {} absolute entries, fully frozen = {}, musl-compatible = {}",
        a.absolute_entries,
        a.fully_frozen(),
        a.musl_ok
    );
}

//! `shrinkwrap` — wrap the Table II emacs workload and show the effect.
//!
//! Usage: `shrinkwrap [--backend glibc|musl|future]`
//!
//! The backend selects which loader-semantics model resolves the closure
//! (`glibc` is the paper's configuration); the before/after measurement and
//! the audit always run under both glibc and musl so the cross-loader
//! caveat stays visible.

use depchaos_core::{audit, wrap, LoaderBackend, ShrinkwrapOptions};
use depchaos_loader::{Environment, GlibcLoader};
use depchaos_vfs::Vfs;
use depchaos_workloads::emacs;

fn backend_from_args() -> LoaderBackend {
    let mut backend = LoaderBackend::glibc();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--backend" {
            let name = args.next().unwrap_or_default();
            backend = match name.as_str() {
                "glibc" => LoaderBackend::glibc(),
                "musl" => LoaderBackend::musl(),
                "future" => LoaderBackend::future(),
                other => {
                    eprintln!("unknown backend {other:?}; expected glibc, musl, or future");
                    std::process::exit(2);
                }
            };
        } else {
            eprintln!("unknown argument {a:?}; usage: shrinkwrap [--backend glibc|musl|future]");
            std::process::exit(2);
        }
    }
    backend
}

fn main() {
    let backend = backend_from_args();
    let fs = Vfs::local();
    emacs::install(&fs).expect("install emacs world");
    let env = Environment::bare();

    let before = GlibcLoader::new(&fs).with_env(env.clone()).load(emacs::EXE_PATH).unwrap();
    println!(
        "before: {} libraries, {} stat/openat calls",
        before.library_count(),
        before.stat_openat()
    );

    println!("resolving through the {} backend", backend.name());
    let report = match wrap(
        &fs,
        emacs::EXE_PATH,
        &ShrinkwrapOptions::new().env(env.clone()).backend(backend),
    ) {
        Ok(r) => r,
        Err(e) => {
            // e.g. the future backend on this RUNPATH-styled world: the
            // chosen semantics cannot resolve the closure.
            eprintln!("shrinkwrap failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.render());

    let after = GlibcLoader::new(&fs).with_env(env.clone()).load(emacs::EXE_PATH).unwrap();
    println!(
        "after:  {} libraries, {} stat/openat calls ({}x fewer)",
        after.library_count(),
        after.stat_openat(),
        before.stat_openat() / after.stat_openat().max(1)
    );

    let a = audit(&fs, emacs::EXE_PATH, &env).expect("audit");
    println!(
        "audit: {} absolute entries, fully frozen = {}, musl-compatible = {}",
        a.absolute_entries,
        a.fully_frozen(),
        a.musl_ok
    );
}

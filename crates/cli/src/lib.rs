//! # depchaos-cli — command-line front ends
//!
//! Three binaries over the simulation:
//!
//! * `libtree` — builds the Listing 1 world and prints the per-object
//!   dependency tree with provenance tags, `not found` included.
//! * `shrinkwrap` — wraps a scenario binary and prints the before/after
//!   needed lists and syscall counts.
//! * `depchaos-report` — regenerates every paper table/figure as text
//!   (`fig1 fig2 fig3 fig4 table1 table2 fig6`, or `all`).
//!
//! The binaries operate on built-in scenario worlds (the VFS is in-memory);
//! they exist to make the experiments runnable and eyeballable without the
//! bench harness.

use depchaos_loader::LoadResult;

/// Upper bound a `--jobs N` request may ask for. Worker threads beyond
/// this are certainly a typo (`--jobs 100000`), and each one costs a
/// stack: reject with the usage error instead of silently clamping.
pub const MAX_JOBS: usize = 1024;

/// Parse and validate a `--jobs N` flag value, shared by
/// `depchaos-report` and `depchaos-serve`. Rejects non-integers, `0` (a
/// pool of zero workers cannot make progress — the old behaviour
/// silently clamped it to 1), and anything above [`MAX_JOBS`]. The `Err`
/// is the message to print before exiting with the documented usage
/// code 2.
pub fn parse_jobs(raw: &str) -> Result<usize, String> {
    let n: usize =
        raw.parse().map_err(|_| format!("--jobs needs a positive integer, got {raw:?}"))?;
    if n == 0 {
        return Err("--jobs must be at least 1".to_string());
    }
    if n > MAX_JOBS {
        return Err(format!("--jobs {n} exceeds the cap of {MAX_JOBS} worker threads"));
    }
    Ok(n)
}

/// Format a load result the way the report binaries print it.
pub fn format_load(r: &LoadResult) -> String {
    let mut s = String::new();
    for o in &r.objects {
        s.push_str(&format!("  [{}] {} ({})\n", o.idx, o.path, o.provenance.tag()));
    }
    s.push_str(&format!(
        "  {} objects, {} stat/openat ({} misses), {:.3} ms simulated\n",
        r.objects.len(),
        r.syscalls.stat_openat(),
        r.syscalls.misses,
        r.time_ns as f64 / 1e6
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;
    use depchaos_elf::ElfObject;
    use depchaos_loader::GlibcLoader;
    use depchaos_vfs::Vfs;

    #[test]
    fn parse_jobs_accepts_the_sane_range_only() {
        assert_eq!(parse_jobs("1"), Ok(1));
        assert_eq!(parse_jobs("64"), Ok(64));
        assert_eq!(parse_jobs(&MAX_JOBS.to_string()), Ok(MAX_JOBS));
        assert!(parse_jobs("0").is_err(), "zero workers is a usage error, not a clamp");
        assert!(parse_jobs(&(MAX_JOBS + 1).to_string()).is_err());
        assert!(parse_jobs("-3").is_err());
        assert!(parse_jobs("two").is_err());
        assert!(parse_jobs("").is_err());
    }

    #[test]
    fn format_load_mentions_objects_and_counts() {
        let fs = Vfs::local();
        install(&fs, "/bin/x", &ElfObject::exe("x").build()).unwrap();
        let r = GlibcLoader::new(&fs).load("/bin/x").unwrap();
        let text = format_load(&r);
        assert!(text.contains("/bin/x"));
        assert!(text.contains("stat/openat"));
    }
}

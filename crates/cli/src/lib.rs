//! # depchaos-cli — command-line front ends
//!
//! Three binaries over the simulation:
//!
//! * `libtree` — builds the Listing 1 world and prints the per-object
//!   dependency tree with provenance tags, `not found` included.
//! * `shrinkwrap` — wraps a scenario binary and prints the before/after
//!   needed lists and syscall counts.
//! * `depchaos-report` — regenerates every paper table/figure as text
//!   (`fig1 fig2 fig3 fig4 table1 table2 fig6`, or `all`).
//!
//! The binaries operate on built-in scenario worlds (the VFS is in-memory);
//! they exist to make the experiments runnable and eyeballable without the
//! bench harness.

use depchaos_loader::LoadResult;

/// Format a load result the way the report binaries print it.
pub fn format_load(r: &LoadResult) -> String {
    let mut s = String::new();
    for o in &r.objects {
        s.push_str(&format!("  [{}] {} ({})\n", o.idx, o.path, o.provenance.tag()));
    }
    s.push_str(&format!(
        "  {} objects, {} stat/openat ({} misses), {:.3} ms simulated\n",
        r.objects.len(),
        r.syscalls.stat_openat(),
        r.syscalls.misses,
        r.time_ns as f64 / 1e6
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;
    use depchaos_elf::ElfObject;
    use depchaos_loader::GlibcLoader;
    use depchaos_vfs::Vfs;

    #[test]
    fn format_load_mentions_objects_and_counts() {
        let fs = Vfs::local();
        install(&fs, "/bin/x", &ElfObject::exe("x").build()).unwrap();
        let r = GlibcLoader::new(&fs).load("/bin/x").unwrap();
        let text = format_load(&r);
        assert!(text.contains("/bin/x"));
        assert!(text.contains("stat/openat"));
    }
}

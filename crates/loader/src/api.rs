//! The backend-agnostic loader interface.
//!
//! Every loader model in this crate — and any future backend — implements
//! [`Loader`], so tools that *consume* a loader (Shrinkwrap, the launch
//! profiler, the report CLIs) can be written once and run against glibc
//! semantics, musl semantics, a loader service, or the §III-C proposal
//! interchangeably. The trait is object-safe: `Box<dyn Loader>` /
//! `&dyn Loader` are the currency of backend-generic code.

use crate::result::{LoadError, LoadResult};

/// A dynamic-loader model bound to one filesystem.
pub trait Loader {
    /// Stable, human-readable backend name (`"glibc"`, `"musl"`, ...) for
    /// reports and CLI selection.
    fn name(&self) -> &'static str;

    /// Simulate `execve(exe)`: map the executable and the transitive
    /// closure of its needed entries under this backend's semantics.
    fn load(&self, exe: &str) -> Result<LoadResult, LoadError>;

    /// [`Loader::load`], then replay `dlopen` hints where the backend
    /// models them. Backends without dlopen replay fall back to a plain
    /// load, so callers can request it unconditionally.
    fn load_with_dlopen(&self, exe: &str) -> Result<LoadResult, LoadError> {
        self.load(exe)
    }

    /// Whether a bare-soname request can be satisfied by an object that was
    /// loaded under a different name (glibc's soname cache). Shrinkwrap's
    /// correctness rests on this — backends answering `false` (musl) load
    /// shrinkwrapped output incorrectly, exactly as §IV documents.
    fn resolves_by_soname(&self) -> bool;

    /// Whether `LD_PRELOAD` entries are honoured.
    fn honours_preload(&self) -> bool;

    /// Whether [`Loader::load_with_dlopen`] actually replays dlopen hints.
    fn supports_dlopen_replay(&self) -> bool {
        false
    }
}

//! The process environment the loader consults.

use serde::{Deserialize, Serialize};

/// Environment and system configuration visible to a loader instance.
///
/// Mirrors the knobs from §III: `LD_LIBRARY_PATH`, `LD_PRELOAD`, the
/// `ld.so.conf` directory list (compiled into a cache by
/// [`crate::ldcache::LdCache::ldconfig`]), the built-in default directories,
/// and the hwcaps subdirectory names glibc probes inside every search
/// directory.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Environment {
    /// Colon-split `LD_LIBRARY_PATH` entries, in order.
    pub ld_library_path: Vec<String>,
    /// `LD_PRELOAD` entries, in order. Paths or bare sonames.
    pub ld_preload: Vec<String>,
    /// Directories listed in `ld.so.conf` (feed for ldconfig).
    pub ld_so_conf: Vec<String>,
    /// Built-in trusted directories, searched last.
    pub default_paths: Vec<String>,
    /// hwcaps subdirectory names probed (in priority order) inside each
    /// search directory, e.g. `glibc-hwcaps/x86-64-v3`. Empty by default.
    pub hwcaps: Vec<String>,
}

impl Default for Environment {
    fn default() -> Self {
        Environment {
            ld_library_path: Vec::new(),
            ld_preload: Vec::new(),
            ld_so_conf: Vec::new(),
            default_paths: vec![
                "/lib64".to_string(),
                "/usr/lib64".to_string(),
                "/lib".to_string(),
                "/usr/lib".to_string(),
            ],
            hwcaps: Vec::new(),
        }
    }
}

impl Environment {
    /// Empty environment (no defaults at all) — for hermetic fixtures.
    pub fn bare() -> Self {
        Environment {
            ld_library_path: Vec::new(),
            ld_preload: Vec::new(),
            ld_so_conf: Vec::new(),
            default_paths: Vec::new(),
            hwcaps: Vec::new(),
        }
    }

    /// Set `LD_LIBRARY_PATH` from a colon-joined string (module files do
    /// this constantly — §II-E).
    pub fn with_ld_library_path(mut self, joined: &str) -> Self {
        self.ld_library_path =
            joined.split(':').filter(|s| !s.is_empty()).map(String::from).collect();
        self
    }

    /// Prepend one directory to `LD_LIBRARY_PATH` (what `module load` does).
    pub fn prepend_ld_library_path(&mut self, dir: impl Into<String>) {
        self.ld_library_path.insert(0, dir.into());
    }

    /// Add an `LD_PRELOAD` entry (PMPI tools, gperf, Spindle-style shims).
    pub fn with_preload(mut self, entry: impl Into<String>) -> Self {
        self.ld_preload.push(entry.into());
        self
    }

    /// Use the given hwcaps subdirectories.
    pub fn with_hwcaps<I, S>(mut self, caps: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.hwcaps = caps.into_iter().map(Into::into).collect();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_trusted_dirs() {
        let e = Environment::default();
        assert!(e.default_paths.contains(&"/usr/lib".to_string()));
        assert!(e.ld_library_path.is_empty());
    }

    #[test]
    fn colon_split() {
        let e = Environment::bare().with_ld_library_path("/a:/b::/c");
        assert_eq!(e.ld_library_path, vec!["/a", "/b", "/c"]);
    }

    #[test]
    fn module_load_prepends() {
        let mut e = Environment::bare().with_ld_library_path("/base");
        e.prepend_ld_library_path("/rocm-4.5/lib");
        assert_eq!(e.ld_library_path, vec!["/rocm-4.5/lib", "/base"]);
    }
}

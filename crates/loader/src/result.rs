//! Load results: the set of mapped objects plus a full resolution record.

use std::collections::HashMap;

use depchaos_elf::{symbols, ElfObject};
use depchaos_vfs::{CounterSnapshot, Inode};

use crate::resolve::{Provenance, Resolution};

/// Failure to even begin loading (the executable itself).
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    ExeNotFound(String),
    ExeUnparseable(String),
    /// The `PT_INTERP` program interpreter does not exist — the exact
    /// failure a foreign dynamic binary hits on NixOS, where even ld.so
    /// lives under the store ("not where an FHS system would expect").
    /// The kernel reports it as a baffling `ENOENT` on the *binary*.
    InterpreterNotFound {
        exe: String,
        interp: String,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::ExeNotFound(p) => write!(f, "cannot execute {p}: not found"),
            LoadError::ExeUnparseable(p) => write!(f, "cannot execute {p}: not an ELF object"),
            LoadError::InterpreterNotFound { exe, interp } => {
                // The infamous misleading kernel message.
                write!(f, "{exe}: no such file or directory (missing interpreter {interp})")
            }
        }
    }
}

impl std::error::Error for LoadError {}

/// One object mapped into the (simulated) address space.
#[derive(Debug, Clone)]
pub struct LoadedObject {
    /// Position in load order; 0 is the executable.
    pub idx: usize,
    /// Path the loader opened.
    pub path: String,
    /// Physical path after symlink resolution.
    pub canonical: String,
    /// File identity, for (dev,ino)-style dedup.
    pub inode: Inode,
    /// The parsed object.
    pub object: ElfObject,
    /// Index of the object whose needed entry caused this load (`None` for
    /// the executable and preloads) — the "loader chain" RPATH walks.
    pub parent: Option<usize>,
    /// Every name this object was requested under (dedup aliases).
    pub requested_as: Vec<String>,
    /// How the loader found it.
    pub provenance: Provenance,
}

/// One needed-entry request and how it resolved, in processing order.
#[derive(Debug, Clone)]
pub struct LoadEvent {
    /// Index of the requesting object.
    pub requester: usize,
    /// The `DT_NEEDED` (or dlopen/preload) string requested.
    pub name: String,
    pub resolution: Resolution,
}

/// An unresolvable needed entry (a real loader aborts; we collect them all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    pub requester: String,
    pub name: String,
}

/// The complete result of a simulated `execve` + relocation.
#[derive(Debug, Clone)]
pub struct LoadResult {
    /// Objects in load order (executable first, then preloads, then BFS).
    pub objects: Vec<LoadedObject>,
    /// Every resolution decision made.
    pub events: Vec<LoadEvent>,
    /// Needed entries that resolved nowhere.
    pub failures: Vec<Failure>,
    /// Syscalls charged while loading (delta over the run).
    pub syscalls: CounterSnapshot,
    /// Simulated wall time spent in loader filesystem activity.
    pub time_ns: u64,
}

impl LoadResult {
    /// True when every needed entry resolved — the process would start.
    pub fn success(&self) -> bool {
        self.failures.is_empty()
    }

    /// Paths in load order.
    pub fn paths(&self) -> Vec<&str> {
        self.objects.iter().map(|o| o.path.as_str()).collect()
    }

    /// Find a loaded object by soname, any requested alias, or path.
    pub fn find(&self, name: &str) -> Option<&LoadedObject> {
        self.objects.iter().find(|o| {
            o.path == name
                || o.canonical == name
                || o.object.effective_soname() == name
                || o.requested_as.iter().any(|r| r == name)
        })
    }

    /// Runtime symbol bindings: for each symbol, the path of the object that
    /// provides it under ELF lookup order (load order, first wins).
    pub fn bindings(&self) -> HashMap<String, String> {
        symbols::runtime_bindings(
            self.objects.iter().map(|o| (o.path.as_str(), o.object.symbols.as_slice())),
        )
    }

    /// The stat+openat count — Table II's metric.
    pub fn stat_openat(&self) -> u64 {
        self.syscalls.stat_openat()
    }

    /// Number of distinct objects mapped (excluding the executable).
    pub fn library_count(&self) -> usize {
        self.objects.len().saturating_sub(1)
    }

    /// Render in `ldd` style: one `soname => path` line per loaded object
    /// (the executable omitted, as ldd does).
    pub fn render_ldd(&self) -> String {
        let mut s = String::new();
        for o in self.objects.iter().skip(1) {
            s.push_str(&format!(
                "\t{} => {} [{}]\n",
                o.object.effective_soname(),
                o.path,
                o.provenance.tag()
            ));
        }
        for f in &self.failures {
            s.push_str(&format!("\t{} => not found\n", f.name));
        }
        s
    }

    /// Render a compact report for humans.
    pub fn render_summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "loaded {} objects, {} stat/openat, {} misses, {:.3} ms simulated\n",
            self.objects.len(),
            self.syscalls.stat_openat(),
            self.syscalls.misses,
            self.time_ns as f64 / 1e6,
        ));
        for f in &self.failures {
            s.push_str(&format!(
                "  ERROR: {}: cannot open shared object file: {}\n",
                f.requester, f.name
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::Symbol;

    fn obj(idx: usize, path: &str, object: ElfObject) -> LoadedObject {
        LoadedObject {
            idx,
            path: path.to_string(),
            canonical: path.to_string(),
            inode: Inode(idx as u64 + 10),
            object,
            parent: None,
            requested_as: vec![],
            provenance: Provenance::Executable,
        }
    }

    #[test]
    fn bindings_follow_load_order() {
        let r = LoadResult {
            objects: vec![
                obj(0, "/bin/app", ElfObject::exe("app").build()),
                obj(
                    1,
                    "/lib/first.so",
                    ElfObject::dso("first.so").defines(Symbol::strong("f")).build(),
                ),
                obj(
                    2,
                    "/lib/second.so",
                    ElfObject::dso("second.so").defines(Symbol::strong("f")).build(),
                ),
            ],
            events: vec![],
            failures: vec![],
            syscalls: CounterSnapshot::default(),
            time_ns: 0,
        };
        assert_eq!(r.bindings()["f"], "/lib/first.so");
        assert!(r.success());
        assert_eq!(r.library_count(), 2);
    }

    #[test]
    fn find_by_alias() {
        let mut o = obj(1, "/lib/libx.so.1", ElfObject::dso("libx.so.1").build());
        o.requested_as.push("libx.so".to_string());
        let r = LoadResult {
            objects: vec![o],
            events: vec![],
            failures: vec![],
            syscalls: CounterSnapshot::default(),
            time_ns: 0,
        };
        assert!(r.find("libx.so").is_some());
        assert!(r.find("libx.so.1").is_some());
        assert!(r.find("/lib/libx.so.1").is_some());
        assert!(r.find("nope").is_none());
    }

    #[test]
    fn ldd_render_lists_and_marks_missing() {
        let r = LoadResult {
            objects: vec![
                obj(0, "/bin/app", ElfObject::exe("app").build()),
                obj(1, "/lib/libx.so.1", ElfObject::dso("libx.so.1").build()),
            ],
            events: vec![],
            failures: vec![Failure { requester: "app".into(), name: "libgone.so".into() }],
            syscalls: CounterSnapshot::default(),
            time_ns: 0,
        };
        let text = r.render_ldd();
        assert!(text.contains("libx.so.1 => /lib/libx.so.1"));
        assert!(text.contains("libgone.so => not found"));
        assert!(!text.contains("/bin/app =>"), "executable omitted, like ldd");
    }

    #[test]
    fn failure_summary_rendered() {
        let r = LoadResult {
            objects: vec![],
            events: vec![],
            failures: vec![Failure { requester: "app".into(), name: "libgone.so".into() }],
            syscalls: CounterSnapshot::default(),
            time_ns: 0,
        };
        assert!(!r.success());
        assert!(r.render_summary().contains("libgone.so"));
    }
}

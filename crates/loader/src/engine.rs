//! The shared breadth-first loader engine.
//!
//! Every loader the paper discusses — glibc, musl, the Zircon-style loader
//! service, and the §III-C proposal — runs the *same* algorithm: map the
//! executable, optionally inject `LD_PRELOAD` entries, then walk the
//! breadth-first closure of `DT_NEEDED` requests, answering each request
//! from a dedup cache when possible and from a search otherwise, while
//! recording every decision. What differs between loaders is only
//!
//! * **where a request may be satisfied from** — the probe plan
//!   ([`SearchPolicy`]): glibc's RPATH-chain → `LD_LIBRARY_PATH` → RUNPATH →
//!   ld.so.cache → defaults, musl's env-first meld, a service delegation,
//!   or the future loader's prepend/append/pin scheme; and
//! * **when two requests are "the same library"** — the identity relation
//!   ([`DedupPolicy`]): glibc's name+soname+path+inode cache, musl's
//!   path+inode-only rule (the documented reason Shrinkwrap does not
//!   support musl), or a pure by-name table.
//!
//! [`Engine::run`] owns everything the four hand-written loaders used to
//! duplicate: the [`State`] maps, the event log, the failure list, the
//! syscall-snapshot bracketing, the static-executable and `PT_INTERP`
//! checks, and the `dlopen` replay loop. A concrete loader is nothing but a
//! `(SearchPolicy, DedupPolicy, EngineConfig)` triple — see
//! [`crate::GlibcLoader`] and friends, each now a thin instantiation.
//!
//! # Performance
//!
//! The engine's request loop is allocation-free in the steady state. Both
//! request-string indexes ([`State::by_name`], [`State::by_path`]) key on
//! interned [`PathId`]s rather than owned `String`s — the canonical
//! workspace interner, re-exported as `depchaos_core::intern` — and the
//! BFS frontier carries `(requester, PathId)` pairs, so a request's
//! pre-search dedup probe ([`DedupPolicy::lookup`]) is an integer hash
//! lookup with no re-hashing of path text. A needed entry's text is copied
//! into the interner at most once per *process*, no matter how many
//! objects request it or how many loads replay it (the Fig 6 profiling
//! loop replays thousands); recovering the text costs one shared-lock
//! index read per request. Only the cold side — indexing a freshly loaded
//! object, and result recording ([`LoadEvent`], [`LoadedObject`]) — still
//! touches strings, because it happens once per object, not once per
//! request, and results outlive the engine as public API.

use std::collections::{HashMap, VecDeque};

use depchaos_elf::{ElfObject, Machine};
use depchaos_vfs::{intern, Inode, PathId, Vfs};

use crate::env::Environment;
use crate::resolve::{Candidate, Provenance, Resolution};
use crate::result::{Failure, LoadError, LoadEvent, LoadResult, LoadedObject};

/// Mutable load-time state shared by every backend: the mapped objects in
/// load order plus the dedup indexes policies may use. A policy uses only
/// the maps its loader's identity relation needs (musl, for example, keys
/// `by_name` with shortnames and ignores `by_path` entirely).
pub struct State {
    pub objects: Vec<LoadedObject>,
    /// Request-string index: requested names, sonames, shortnames — whatever
    /// the [`DedupPolicy`] decides names a loaded object. Keyed on interned
    /// ids so probes and inserts allocate nothing.
    pub by_name: HashMap<PathId, usize>,
    /// Probed-path and canonical-path index (interned).
    pub by_path: HashMap<PathId, usize>,
    /// File-identity index — the `(dev,ino)` check loaders do after `open`.
    pub by_inode: HashMap<Inode, usize>,
    pub events: Vec<LoadEvent>,
    pub failures: Vec<Failure>,
}

impl State {
    pub fn new() -> Self {
        State {
            objects: Vec::new(),
            by_name: HashMap::new(),
            by_path: HashMap::new(),
            by_inode: HashMap::new(),
            events: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Append a freshly mapped object (computing its canonical path and
    /// inode) without touching any dedup index — indexing is the
    /// [`DedupPolicy`]'s decision.
    pub fn push_object(
        &mut self,
        fs: &Vfs,
        requested: &str,
        cand: Candidate,
        parent: Option<usize>,
        provenance: Provenance,
    ) -> usize {
        let idx = self.objects.len();
        let (canonical, inode) = identity(fs, &cand.path);
        let inode = inode.unwrap_or(Inode(0));
        self.objects.push(LoadedObject {
            idx,
            path: cand.path,
            canonical,
            inode,
            object: cand.object,
            parent,
            requested_as: vec![requested.to_string()],
            provenance,
        });
        idx
    }

    /// Record that `idx` also satisfies requests for `name`.
    pub fn alias(&mut self, idx: usize, name: &str) {
        if !self.objects[idx].requested_as.iter().any(|r| r == name) {
            self.objects[idx].requested_as.push(name.to_string());
        }
    }
}

impl Default for State {
    fn default() -> Self {
        Self::new()
    }
}

/// Resolve a path to its canonical form (falling back to the path itself)
/// and its file identity, the `(dev,ino)` every loader compares after
/// `open`. Unaccounted, like the loaders' own post-open identity checks.
pub fn identity(fs: &Vfs, path: &str) -> (String, Option<Inode>) {
    let canonical = fs.canonicalize(path).unwrap_or_else(|_| path.to_string());
    let inode = fs.peek(&canonical).ok().map(|m| m.inode);
    (canonical, inode)
}

/// Read-only probing context handed to policies alongside the state.
pub struct Ctx<'a> {
    pub fs: &'a Vfs,
    pub env: &'a Environment,
    /// Architecture of the root executable; wrong-ABI candidates are
    /// silently skipped per the System V rule.
    pub want_arch: Machine,
}

impl Ctx<'_> {
    /// [`identity`] for the inode alone — the common dedup-policy question.
    pub fn inode_of(&self, path: &str) -> Option<Inode> {
        identity(self.fs, path).1
    }
}

/// Maps one `(requester, needed-name)` request to an ordered candidate probe
/// plan and executes it. Implementations own whatever configuration their
/// search consults (an [`crate::LdCache`], a delegate service, ...).
pub trait SearchPolicy {
    /// Rewrite a request before dedup and search run — the future loader's
    /// per-dependency pins turn a soname into an exact path here. Return
    /// `None` to leave the request unchanged.
    fn rewrite(&self, _cx: &Ctx, _st: &State, _requester: usize, _name: &str) -> Option<String> {
        None
    }

    /// Probe the filesystem for `name` on behalf of `requester`. Every probe
    /// must go through the accounted [`crate::resolve`] helpers so syscall
    /// counts stay faithful.
    fn locate(
        &self,
        cx: &Ctx,
        st: &State,
        requester: usize,
        name: &str,
    ) -> Option<(Candidate, Provenance)>;
}

/// Decides when a request or a freshly opened candidate is an
/// already-loaded object, and how loaded objects are indexed for future
/// requests. Implementations are responsible for recording request aliases
/// ([`State::alias`]) exactly where their modelled loader would.
pub trait DedupPolicy {
    /// Pre-search cache lookup for a request (bare soname or path,
    /// interned). A hit costs **zero filesystem work** — the Listing 1
    /// mechanism — and, this being the hot call of big-closure loads, the
    /// probe is an integer hash on the id.
    fn lookup(&self, cx: &Ctx, st: &mut State, name: PathId) -> Option<usize>;

    /// Post-open identity check on a candidate the search found — the
    /// `(dev,ino)` comparison loaders do after `open` catches aliased files
    /// the request-string cache cannot.
    fn absorb(
        &self,
        cx: &Ctx,
        st: &mut State,
        name: &str,
        cand: &Candidate,
        provenance: &Provenance,
    ) -> Option<usize>;

    /// Index the freshly registered object `idx` (requested as `requested`)
    /// into the [`State`] maps this policy consults.
    fn index(&self, cx: &Ctx, st: &mut State, idx: usize, requested: &str);
}

/// When `LD_PRELOAD` entries are honoured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreloadMode {
    /// The loader model ignores preloads (service and future loaders).
    Ignore,
    /// Preloads always load right after the executable (musl).
    Always,
    /// Preloads load unless the executable is fully static — a static
    /// binary never runs the dynamic loader, so `LD_PRELOAD` is inert
    /// (glibc; the §III-B trade-off).
    SkipStatic,
}

/// Fixed per-backend behaviour outside the two policies.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Verify `PT_INTERP` exists before loading, like the kernel's `execve`
    /// (the NixOS §II-D failure mode). Off by default.
    pub strict_interp: bool,
    /// Charge mapping the executable's declared virtual size as a read.
    pub charge_exe_read: bool,
    pub preload: PreloadMode,
}

impl EngineConfig {
    /// The glibc/musl-style default: charge the exe mapping, no interp check.
    pub fn charged(preload: PreloadMode) -> Self {
        EngineConfig { strict_interp: false, charge_exe_read: true, preload }
    }

    /// The analytic default used by the service and future loaders: no exe
    /// mapping charge, no preloads.
    pub fn uncharged() -> Self {
        EngineConfig { strict_interp: false, charge_exe_read: false, preload: PreloadMode::Ignore }
    }
}

/// The BFS driver. One engine instance is one loader bound to one
/// filesystem; [`Engine::run`] simulates one `execve`.
pub struct Engine<'fs, S, D> {
    fs: &'fs Vfs,
    env: Environment,
    pub search: S,
    pub dedup: D,
    pub config: EngineConfig,
}

impl<'fs, S: SearchPolicy, D: DedupPolicy> Engine<'fs, S, D> {
    pub fn new(fs: &'fs Vfs, search: S, dedup: D, config: EngineConfig) -> Self {
        Engine { fs, env: Environment::default(), search, dedup, config }
    }

    pub fn fs(&self) -> &'fs Vfs {
        self.fs
    }

    pub fn env(&self) -> &Environment {
        &self.env
    }

    pub fn set_env(&mut self, env: Environment) {
        self.env = env;
    }

    /// Simulate `execve(exe_path)`: map the executable, honour preloads per
    /// config, and drive the breadth-first closure of needed entries.
    /// With `dlopen`, additionally replay each loaded object's `dlopen`
    /// hints (in load order), which search with the *caller's* paths — the
    /// Qt plugin problem from §III-A.
    pub fn run(&self, exe_path: &str, dlopen: bool) -> Result<LoadResult, LoadError> {
        let before = self.fs.snapshot();
        let t0 = self.fs.elapsed_ns();
        let mut st = State::new();

        // Map the executable.
        if self.fs.try_open(exe_path).is_none() {
            return Err(LoadError::ExeNotFound(exe_path.to_string()));
        }
        let bytes = self
            .fs
            .read_file(exe_path)
            .map_err(|_| LoadError::ExeNotFound(exe_path.to_string()))?;
        let exe = ElfObject::parse(&bytes)
            .map_err(|_| LoadError::ExeUnparseable(exe_path.to_string()))?;
        if self.config.strict_interp {
            if let Some(interp) = &exe.interp {
                if self.fs.try_open(interp).is_none() {
                    return Err(LoadError::InterpreterNotFound {
                        exe: exe_path.to_string(),
                        interp: interp.clone(),
                    });
                }
            }
        }
        if self.config.charge_exe_read && exe.virtual_size > 0 {
            self.fs.charge_read(exe_path, exe.virtual_size);
        }
        {
            let cx = Ctx { fs: self.fs, env: &self.env, want_arch: exe.machine };
            let idx = st.push_object(
                self.fs,
                exe_path,
                Candidate { path: exe_path.to_string(), object: exe },
                None,
                Provenance::Executable,
            );
            self.dedup.index(&cx, &mut st, idx, exe_path);
        }

        // LD_PRELOAD entries load immediately after the executable and are
        // searched like bare names (or opened directly when they are paths).
        let preloads_active = match self.config.preload {
            PreloadMode::Ignore => false,
            PreloadMode::Always => true,
            PreloadMode::SkipStatic => {
                // A static executable (no PT_INTERP, no needed entries)
                // never runs the dynamic loader at all.
                !(st.objects[0].object.interp.is_none() && st.objects[0].object.needed.is_empty())
            }
        };
        if preloads_active {
            for entry in &self.env.ld_preload {
                self.request(&mut st, 0, intern(entry));
            }
        }

        // Breadth-first over needed entries. Matching the historical model:
        // the frontier starts from the executable's needed list only, after
        // preloads are mapped. The frontier carries interned ids — each
        // distinct needed name is copied at most once per process, not once
        // per request.
        let mut queue: VecDeque<(usize, PathId)> =
            st.objects[0].object.needed.iter().map(|n| (0usize, intern(n))).collect();
        let mut next_obj = st.objects.len();
        loop {
            while let Some((req, name)) = queue.pop_front() {
                self.request(&mut st, req, name);
                // Enqueue needed entries of anything newly loaded, in order.
                while next_obj < st.objects.len() {
                    for n in &st.objects[next_obj].object.needed {
                        queue.push_back((next_obj, intern(n)));
                    }
                    next_obj += 1;
                }
            }
            if !dlopen {
                break;
            }
            // Replay dlopen hints of every object not yet replayed; any new
            // object's needed entries go through the normal BFS above.
            let mut any = false;
            for idx in 0..st.objects.len() {
                for d in st.objects[idx].object.dlopens.clone() {
                    let already = st.events.iter().any(|e| e.requester == idx && e.name == d);
                    if !already {
                        queue.push_back((idx, intern(&d)));
                        any = true;
                    }
                }
                if any {
                    break;
                }
            }
            if !any {
                break;
            }
        }

        Ok(LoadResult {
            syscalls: self.fs.snapshot().since(&before),
            time_ns: self.fs.elapsed_ns() - t0,
            objects: st.objects,
            events: st.events,
            failures: st.failures,
        })
    }

    /// Resolve one request and record the outcome.
    fn request(&self, st: &mut State, requester: usize, name: PathId) {
        let resolution = self.resolve(st, requester, name);
        if let Resolution::NotFound = resolution {
            st.failures.push(Failure {
                requester: st.objects[requester].object.name.clone(),
                name: name.as_str().to_string(),
            });
        }
        st.events.push(LoadEvent { requester, name: name.as_str().to_string(), resolution });
    }

    fn resolve(&self, st: &mut State, requester: usize, name: PathId) -> Resolution {
        let cx = Ctx { fs: self.fs, env: &self.env, want_arch: st.objects[0].object.machine };
        let name_text = name.as_str();

        // 1. Request rewriting (pins).
        let rewritten = self.search.rewrite(&cx, st, requester, name_text);
        let key = match &rewritten {
            Some(s) => intern(s),
            None => name,
        };

        // 2. Dedup cache — a hit does zero filesystem work, and the probe
        // is an integer hash on the interned id.
        if let Some(idx) = self.dedup.lookup(&cx, st, key) {
            return Resolution::Deduped { path: st.objects[idx].path.clone() };
        }

        // 3. The policy's probe plan.
        let key_text = rewritten.as_deref().unwrap_or(name_text);
        match self.search.locate(&cx, st, requester, key_text) {
            Some((cand, provenance)) => {
                // 4. Post-open identity check: the search may have found a
                // file that is already mapped under a different name.
                if let Some(idx) = self.dedup.absorb(&cx, st, name_text, &cand, &provenance) {
                    return Resolution::Deduped { path: st.objects[idx].path.clone() };
                }
                let path = cand.path.clone();
                let idx =
                    st.push_object(self.fs, name_text, cand, Some(requester), provenance.clone());
                self.dedup.index(&cx, st, idx, name_text);
                Resolution::Loaded { path, provenance }
            }
            None => Resolution::NotFound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::probe_exact;
    use depchaos_elf::io::install;

    /// A deliberately tiny backend: direct paths only, name-identity dedup.
    struct DirectOnly;

    impl SearchPolicy for DirectOnly {
        fn locate(
            &self,
            cx: &Ctx,
            _st: &State,
            _requester: usize,
            name: &str,
        ) -> Option<(Candidate, Provenance)> {
            probe_exact(cx.fs, name, cx.want_arch).map(|c| (c, Provenance::DirectPath))
        }
    }

    struct ByName;

    impl DedupPolicy for ByName {
        fn lookup(&self, _cx: &Ctx, st: &mut State, name: PathId) -> Option<usize> {
            st.by_name.get(&name).copied()
        }

        fn absorb(
            &self,
            _cx: &Ctx,
            _st: &mut State,
            _name: &str,
            _cand: &Candidate,
            _provenance: &Provenance,
        ) -> Option<usize> {
            None
        }

        fn index(&self, _cx: &Ctx, st: &mut State, idx: usize, requested: &str) {
            st.by_name.insert(intern(requested), idx);
        }
    }

    #[test]
    fn minimal_backend_drives_bfs_and_records_events() {
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("/l/liba.so").needs("/l/liba.so").build(),
        )
        .unwrap();
        install(&fs, "/l/liba.so", &ElfObject::dso("liba.so").needs("/l/gone.so").build()).unwrap();
        let engine = Engine::new(&fs, DirectOnly, ByName, EngineConfig::uncharged());
        let r = engine.run("/bin/app", false).unwrap();
        assert_eq!(r.objects.len(), 2);
        assert_eq!(r.events.len(), 3, "two requests from app + one from liba");
        assert!(matches!(r.events[1].resolution, Resolution::Deduped { .. }));
        assert_eq!(r.failures.len(), 1);
        assert_eq!(r.failures[0].name, "/l/gone.so");
    }

    #[test]
    fn missing_exe_is_an_error_not_a_failure() {
        let fs = Vfs::local();
        let engine = Engine::new(&fs, DirectOnly, ByName, EngineConfig::uncharged());
        assert!(matches!(engine.run("/bin/ghost", false), Err(LoadError::ExeNotFound(_))));
    }
}

//! # depchaos-loader — executable models of `ld.so`
//!
//! Everything the paper says about loader behaviour is encoded here as a
//! deterministic interpreter over a [`depchaos_vfs::Vfs`] full of
//! [`depchaos_elf::ElfObject`]s:
//!
//! * **glibc semantics** ([`GlibcLoader`]): breadth-first loading from the
//!   executable's `DT_NEEDED` list; per-request search order `DT_RPATH`
//!   (of the requester and its loader-chain ancestors, suppressed by a
//!   `DT_RUNPATH` on the requester) → `LD_LIBRARY_PATH` → `DT_RUNPATH`
//!   (requester only, never inherited) → ld.so.cache → default dirs;
//!   dedup by requested name, soname, path, and inode — which is how a
//!   missing search path can hide inside a working binary (Listing 1);
//!   hwcaps subdirectories; silent skipping of wrong-architecture
//!   candidates; `LD_PRELOAD`; `dlopen`.
//! * **musl semantics** ([`MuslLoader`]): dedup by pathname and inode only
//!   (no soname cache — the documented reason Shrinkwrap does not support
//!   musl), and RPATH/RUNPATH treated identically: inherited like RPATH but
//!   searched *after* `LD_LIBRARY_PATH`.
//! * **libtree-style analysis** ([`tree`]): per-object static resolution
//!   that ignores the dedup cache, revealing the `not found` entries that
//!   dynamic loading papers over (Listing 1's `libsamba-debug-samba4.so`).
//!
//! The loaders charge every probe to the VFS cost model, so Table II
//! (syscall counts) and Fig 6 (NFS launch storms) fall out of the same code
//! path that answers the correctness questions.

pub mod env;
pub mod future;
pub mod glibc;
pub mod ldcache;
pub mod musl;
pub mod resolve;
pub mod service;
pub mod result;
pub mod tree;

pub use env::Environment;
pub use future::FutureLoader;
pub use glibc::GlibcLoader;
pub use ldcache::LdCache;
pub use musl::MuslLoader;
pub use resolve::{Provenance, Resolution};
pub use result::{LoadError, LoadResult, LoadedObject};
pub use service::{HashStoreService, LoaderService, ServiceLoader};
pub use tree::{analyze_tree, DepTree, TreeNode};

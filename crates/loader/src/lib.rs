//! # depchaos-loader — executable models of `ld.so`, one engine, many
//! backends
//!
//! Everything the paper says about loader behaviour is encoded here as a
//! deterministic interpreter over a [`depchaos_vfs::Vfs`] full of
//! [`depchaos_elf::ElfObject`]s — and since every dynamic loader runs the
//! same breadth-first algorithm, there is exactly **one** interpreter:
//! the [`engine`] module owns the BFS driver, the dedup state, the event
//! log, the failure record, and the syscall-snapshot bracketing. A
//! concrete loader is a pair of small policy values plugged into it:
//!
//! * a [`engine::SearchPolicy`] — *where* a request may be satisfied from
//!   (the probe plan), and
//! * a [`engine::DedupPolicy`] — *when* two requests are the same library
//!   (the identity relation).
//!
//! Four backends ship, each a thin instantiation:
//!
//! * **glibc** ([`GlibcLoader`]): per-request search order `DT_RPATH` (of
//!   the requester and its loader-chain ancestors, suppressed by a
//!   `DT_RUNPATH` on the requester) → `LD_LIBRARY_PATH` → `DT_RUNPATH`
//!   (requester only, never inherited) → ld.so.cache → default dirs;
//!   dedup by requested name, soname, path, and inode — which is how a
//!   missing search path can hide inside a working binary (Listing 1);
//!   hwcaps subdirectories; silent skipping of wrong-architecture
//!   candidates; `LD_PRELOAD`; `dlopen` replay.
//! * **musl** ([`MuslLoader`]): dedup by pathname and inode only (no
//!   soname cache — the documented reason Shrinkwrap does not support
//!   musl), and RPATH/RUNPATH treated identically: inherited like RPATH
//!   but searched *after* `LD_LIBRARY_PATH`.
//! * **loader service** ([`ServiceLoader`]): §III-C's Zircon-style
//!   delegation — every request goes to a [`LoaderService`] policy object
//!   such as the content-addressed [`HashStoreService`].
//! * **future loader** ([`FutureLoader`]): the paper's proposal —
//!   prepend/append search dirs with per-entry propagation flags, plus
//!   per-dependency pins.
//!
//! All four implement the object-safe [`Loader`] trait, so consumers
//! (Shrinkwrap, the launch profiler, the CLIs) are backend-generic: hand
//! them any `&dyn Loader` and compare semantics on the same filesystem
//! image. Capability queries ([`Loader::resolves_by_soname`],
//! [`Loader::supports_dlopen_replay`]) expose the semantic differences the
//! paper turns on — musl answering `false` to soname resolution *is* the
//! §IV incompatibility.
//!
//! [`tree`] is the odd one out by design: libtree-style per-object static
//! resolution that deliberately ignores the dedup cache, revealing the
//! `not found` entries dynamic loading papers over (Listing 1's
//! `libsamba-debug-samba4.so`).
//!
//! The loaders charge every probe to the VFS cost model, so Table II
//! (syscall counts) and Fig 6 (NFS launch storms) fall out of the same code
//! path that answers the correctness questions.

pub mod api;
pub mod engine;
pub mod env;
pub mod future;
pub mod glibc;
pub mod ldcache;
pub mod musl;
pub mod resolve;
pub mod result;
pub mod service;
pub mod tree;

pub use api::Loader;
pub use engine::{Ctx, DedupPolicy, Engine, EngineConfig, PreloadMode, SearchPolicy, State};
pub use env::Environment;
pub use future::FutureLoader;
pub use glibc::GlibcLoader;
pub use ldcache::LdCache;
pub use musl::MuslLoader;
pub use resolve::{Provenance, Resolution};
pub use result::{LoadError, LoadResult, LoadedObject};
pub use service::{HashStoreService, LoaderService, ServiceLoader};
pub use tree::{analyze_tree, DepTree, TreeNode};

//! The glibc `ld.so` model — an instantiation of the shared
//! [`crate::engine`].
//!
//! Search order for a needed entry requested by object `O` (ld.so(8)),
//! encoded by [`GlibcSearch`]:
//!
//! 1. Entries containing `/` are opened directly — no search.
//! 2. Otherwise, the dedup cache ([`GlibcDedup`]) is consulted first: any
//!    already-loaded object whose requested name, soname, path, or inode
//!    matches satisfies the request with **zero filesystem work**
//!    (Listing 1's hidden-missing-path effect, and the mechanism Shrinkwrap
//!    relies on).
//! 3. `DT_RPATH` of `O` and its loader-chain ancestors — used only if `O`
//!    itself carries no `DT_RUNPATH`; an ancestor that carries `DT_RUNPATH`
//!    contributes nothing.
//! 4. `LD_LIBRARY_PATH`.
//! 5. `DT_RUNPATH` of `O` only (never inherited).
//! 6. The ld.so.cache.
//! 7. The built-in default directories.
//!
//! Loading proceeds breadth-first from the executable's needed list;
//! `LD_PRELOAD` objects load immediately after the executable — both driven
//! by [`crate::engine::Engine`], not re-implemented here.

use depchaos_vfs::{intern, PathId, Vfs};

use crate::api::Loader;
use crate::engine::{Ctx, DedupPolicy, Engine, EngineConfig, PreloadMode, SearchPolicy, State};
use crate::env::Environment;
use crate::ldcache::LdCache;
use crate::resolve::{expand_entry, probe_dir, probe_exact, Candidate, Provenance};
use crate::result::{LoadError, LoadResult};

/// glibc's probe plan: RPATH chain → `LD_LIBRARY_PATH` → RUNPATH →
/// ld.so.cache → default directories, hwcaps subdirectories first inside
/// every directory.
pub struct GlibcSearch {
    pub cache: LdCache,
}

impl SearchPolicy for GlibcSearch {
    fn locate(
        &self,
        cx: &Ctx,
        st: &State,
        requester: usize,
        name: &str,
    ) -> Option<(Candidate, Provenance)> {
        if name.contains('/') {
            // Direct path: opened outright, no search.
            return probe_exact(cx.fs, name, cx.want_arch).map(|c| (c, Provenance::DirectPath));
        }

        // Phase 1: RPATH chain, suppressed entirely if the requester has a
        // RUNPATH; ancestors with their own RUNPATH contribute nothing.
        if st.objects[requester].object.runpath.is_empty() {
            let mut chain = Some(requester);
            while let Some(idx) = chain {
                let obj = &st.objects[idx];
                if obj.object.runpath.is_empty() {
                    for entry in &obj.object.rpath {
                        let dir = expand_entry(entry, &obj.path);
                        if let Some(cand) =
                            probe_dir(cx.fs, &dir, name, cx.want_arch, &cx.env.hwcaps)
                        {
                            return Some((
                                cand,
                                Provenance::Rpath { owner: obj.object.name.clone() },
                            ));
                        }
                    }
                }
                chain = st.objects[idx].parent;
            }
        }

        // Phase 2: LD_LIBRARY_PATH.
        for dir in &cx.env.ld_library_path {
            if let Some(cand) = probe_dir(cx.fs, dir, name, cx.want_arch, &cx.env.hwcaps) {
                return Some((cand, Provenance::LdLibraryPath));
            }
        }

        // Phase 3: the requester's own RUNPATH (never inherited).
        let req = &st.objects[requester];
        for entry in &req.object.runpath {
            let dir = expand_entry(entry, &req.path);
            if let Some(cand) = probe_dir(cx.fs, &dir, name, cx.want_arch, &cx.env.hwcaps) {
                return Some((cand, Provenance::Runpath { owner: req.object.name.clone() }));
            }
        }

        // Phase 4: ld.so.cache.
        if let Some(path) = self.cache.lookup(name, cx.want_arch) {
            if let Some(cand) = probe_exact(cx.fs, path, cx.want_arch) {
                return Some((cand, Provenance::LdSoCache));
            }
        }

        // Phase 5: default directories.
        for dir in &cx.env.default_paths {
            if let Some(cand) = probe_dir(cx.fs, dir, name, cx.want_arch, &cx.env.hwcaps) {
                return Some((cand, Provenance::DefaultPath));
            }
        }

        None
    }
}

/// glibc's identity relation: a request is satisfied by any loaded object
/// matching on requested name, soname, probed path, canonical path, or
/// inode.
pub struct GlibcDedup;

impl GlibcDedup {
    /// Record the alias and make `name` answerable from the soname cache.
    fn alias(&self, st: &mut State, idx: usize, name: PathId) {
        st.alias(idx, name.as_str());
        st.by_name.entry(name).or_insert(idx);
    }

    /// Path-identity check: probed path, canonical path, then inode
    /// (symlinked stores make all three distinct). `path` is the interned
    /// form of `text`.
    fn dedup_path(&self, fs: &Vfs, st: &mut State, path: PathId, text: &str) -> Option<usize> {
        if let Some(&idx) = st.by_path.get(&path) {
            self.alias(st, idx, path);
            return Some(idx);
        }
        let (canonical, inode) = crate::engine::identity(fs, text);
        if let Some(&idx) = st.by_path.get(&intern(&canonical)) {
            self.alias(st, idx, path);
            return Some(idx);
        }
        if let Some(idx) = inode.and_then(|i| st.by_inode.get(&i).copied()) {
            self.alias(st, idx, path);
            return Some(idx);
        }
        None
    }
}

impl DedupPolicy for GlibcDedup {
    fn lookup(&self, cx: &Ctx, st: &mut State, name: PathId) -> Option<usize> {
        let text = name.as_str();
        if text.contains('/') {
            self.dedup_path(cx.fs, st, name, text)
        } else {
            let idx = *st.by_name.get(&name)?;
            self.alias(st, idx, name);
            Some(idx)
        }
    }

    fn absorb(
        &self,
        cx: &Ctx,
        st: &mut State,
        _name: &str,
        cand: &Candidate,
        _provenance: &Provenance,
    ) -> Option<usize> {
        // The search may have found a file that is already mapped under a
        // different name (hard identity): glibc checks dev/ino after open.
        self.dedup_path(cx.fs, st, intern(&cand.path), &cand.path)
    }

    fn index(&self, _cx: &Ctx, st: &mut State, idx: usize, requested: &str) {
        let soname = intern(st.objects[idx].object.effective_soname());
        let path = intern(&st.objects[idx].path);
        let canonical = intern(&st.objects[idx].canonical);
        let inode = st.objects[idx].inode;
        st.by_name.entry(intern(requested)).or_insert(idx);
        st.by_name.entry(soname).or_insert(idx);
        st.by_path.entry(path).or_insert(idx);
        st.by_path.entry(canonical).or_insert(idx);
        st.by_inode.entry(inode).or_insert(idx);
    }
}

/// A glibc-semantics loader bound to one filesystem.
pub struct GlibcLoader<'fs> {
    engine: Engine<'fs, GlibcSearch, GlibcDedup>,
}

impl<'fs> GlibcLoader<'fs> {
    pub fn new(fs: &'fs Vfs) -> Self {
        GlibcLoader {
            engine: Engine::new(
                fs,
                GlibcSearch { cache: LdCache::empty() },
                GlibcDedup,
                EngineConfig::charged(PreloadMode::SkipStatic),
            ),
        }
    }

    /// Verify the `PT_INTERP` interpreter exists before loading, like the
    /// kernel's `execve` does. Off by default (most fixtures don't install
    /// an ld.so); the NixOS §II-D compatibility tests turn it on.
    pub fn with_strict_interp(mut self, yes: bool) -> Self {
        self.engine.config.strict_interp = yes;
        self
    }

    pub fn with_env(mut self, env: Environment) -> Self {
        self.engine.set_env(env);
        self
    }

    pub fn with_cache(mut self, cache: LdCache) -> Self {
        self.engine.search.cache = cache;
        self
    }

    pub fn env(&self) -> &Environment {
        self.engine.env()
    }

    /// Simulate `execve(exe_path)`: map the executable, `LD_PRELOAD`s, and
    /// the breadth-first closure of needed entries. `dlopen` hints are NOT
    /// processed — see [`GlibcLoader::load_with_dlopen`].
    pub fn load(&self, exe_path: &str) -> Result<LoadResult, LoadError> {
        self.engine.run(exe_path, false)
    }

    /// [`GlibcLoader::load`], then replay each loaded object's `dlopen`
    /// hints (in load order), which search with the *caller's* paths — the
    /// Qt plugin problem from §III-A.
    pub fn load_with_dlopen(&self, exe_path: &str) -> Result<LoadResult, LoadError> {
        self.engine.run(exe_path, true)
    }
}

impl Loader for GlibcLoader<'_> {
    fn name(&self) -> &'static str {
        "glibc"
    }

    fn load(&self, exe: &str) -> Result<LoadResult, LoadError> {
        GlibcLoader::load(self, exe)
    }

    fn load_with_dlopen(&self, exe: &str) -> Result<LoadResult, LoadError> {
        GlibcLoader::load_with_dlopen(self, exe)
    }

    fn resolves_by_soname(&self) -> bool {
        true
    }

    fn honours_preload(&self) -> bool {
        true
    }

    fn supports_dlopen_replay(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::Resolution;
    use depchaos_elf::io::install;
    use depchaos_elf::{ElfObject, Machine};

    /// exe -> liba -> libb, all findable via default paths.
    fn simple_world() -> Vfs {
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("liba.so").build()).unwrap();
        install(&fs, "/usr/lib/liba.so", &ElfObject::dso("liba.so").needs("libb.so").build())
            .unwrap();
        install(&fs, "/usr/lib/libb.so", &ElfObject::dso("libb.so").build()).unwrap();
        fs
    }

    #[test]
    fn loads_transitive_closure_bfs() {
        let fs = simple_world();
        let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.paths(), vec!["/bin/app", "/usr/lib/liba.so", "/usr/lib/libb.so"]);
        assert_eq!(r.objects[1].provenance, Provenance::DefaultPath);
        assert_eq!(r.objects[2].parent, Some(1));
    }

    #[test]
    fn missing_exe() {
        let fs = Vfs::local();
        assert!(matches!(GlibcLoader::new(&fs).load("/bin/ghost"), Err(LoadError::ExeNotFound(_))));
    }

    #[test]
    fn missing_dep_recorded_not_fatal() {
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libgone.so").build()).unwrap();
        let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(!r.success());
        assert_eq!(r.failures[0].name, "libgone.so");
    }

    #[test]
    fn rpath_beats_ld_library_path_and_runpath_loses() {
        let fs = Vfs::local();
        install(&fs, "/rp/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(&fs, "/llp/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(
            &fs,
            "/bin/rp_app",
            &ElfObject::exe("rp_app").needs("libx.so").rpath("/rp").build(),
        )
        .unwrap();
        install(
            &fs,
            "/bin/runp_app",
            &ElfObject::exe("runp_app").needs("libx.so").runpath("/rp").build(),
        )
        .unwrap();
        let env = Environment::bare().with_ld_library_path("/llp");

        // Table I row 1: RPATH searched before LD_LIBRARY_PATH.
        let r = GlibcLoader::new(&fs).with_env(env.clone()).load("/bin/rp_app").unwrap();
        assert_eq!(r.objects[1].path, "/rp/libx.so");
        assert_eq!(r.objects[1].provenance, Provenance::Rpath { owner: "rp_app".into() });

        // Table I row 2: RUNPATH searched after LD_LIBRARY_PATH.
        let r = GlibcLoader::new(&fs).with_env(env).load("/bin/runp_app").unwrap();
        assert_eq!(r.objects[1].path, "/llp/libx.so");
        assert_eq!(r.objects[1].provenance, Provenance::LdLibraryPath);
    }

    #[test]
    fn rpath_propagates_runpath_does_not() {
        // exe needs liba; liba (no paths of its own) needs libdeep.
        // libdeep lives only in /deep, referenced from the exe's search path.
        for (attr, should_find) in [("rpath", true), ("runpath", false)] {
            let fs = Vfs::local();
            install(
                &fs,
                "/usr/lib/liba.so",
                &ElfObject::dso("liba.so").needs("libdeep.so").build(),
            )
            .unwrap();
            install(&fs, "/deep/libdeep.so", &ElfObject::dso("libdeep.so").build()).unwrap();
            let exe = if attr == "rpath" {
                ElfObject::exe("app").needs("liba.so").rpath("/deep").build()
            } else {
                ElfObject::exe("app").needs("liba.so").runpath("/deep").build()
            };
            install(&fs, "/bin/app", &exe).unwrap();
            let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
            assert_eq!(
                r.success(),
                should_find,
                "Table I row 3: {attr} propagation expected {should_find}"
            );
        }
    }

    #[test]
    fn runpath_on_requester_disables_whole_rpath_chain() {
        // exe has RPATH /deep (which contains libdeep); liba has a RUNPATH
        // (pointing anywhere) → when liba requests libdeep, the exe's RPATH
        // must NOT be consulted (the ROCm failure mode, §V-B.1).
        let fs = Vfs::local();
        install(
            &fs,
            "/usr/lib/liba.so",
            &ElfObject::dso("liba.so").needs("libdeep.so").runpath("/somewhere/else").build(),
        )
        .unwrap();
        install(&fs, "/deep/libdeep.so", &ElfObject::dso("libdeep.so").build()).unwrap();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("liba.so").rpath("/deep").rpath("/usr/lib").build(),
        )
        .unwrap();
        let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(!r.success(), "libdeep must not be found through the suppressed chain");
    }

    #[test]
    fn soname_dedup_satisfies_missing_path() {
        // Listing 1: libfirst (correct runpath) loads libshared; libsecond
        // has NO search path for libshared but works because it was already
        // loaded — and no filesystem probing happens for the dedup.
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app")
                .needs("libfirst.so")
                .needs("libsecond.so")
                .runpath("/libs")
                .build(),
        )
        .unwrap();
        install(
            &fs,
            "/libs/libfirst.so",
            &ElfObject::dso("libfirst.so").needs("libshared.so").runpath("/hidden").build(),
        )
        .unwrap();
        install(
            &fs,
            "/libs/libsecond.so",
            &ElfObject::dso("libsecond.so").needs("libshared.so").build(),
        )
        .unwrap();
        install(&fs, "/hidden/libshared.so", &ElfObject::dso("libshared.so").build()).unwrap();
        let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r.success());
        let dedup_event =
            r.events.iter().find(|e| e.requester == 2 && e.name == "libshared.so").unwrap();
        assert!(matches!(dedup_event.resolution, Resolution::Deduped { .. }));
    }

    #[test]
    fn absolute_needed_loads_directly_and_dedups_by_soname() {
        // A shrinkwrapped binary: absolute path needed + transitive bare
        // request satisfied via soname dedup (Fig 5's libac.so example).
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("/store/x/libxyz.so").needs("/store/a/libac.so").build(),
        )
        .unwrap();
        install(&fs, "/store/x/libxyz.so", &ElfObject::dso("libxyz.so").needs("libac.so").build())
            .unwrap();
        install(&fs, "/store/a/libac.so", &ElfObject::dso("libac.so").build()).unwrap();
        let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.objects.len(), 3);
        let e = r.events.iter().find(|e| e.name == "libac.so").unwrap();
        assert!(matches!(e.resolution, Resolution::Deduped { .. }));
    }

    #[test]
    fn ld_so_cache_consulted_before_defaults() {
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libz.so.1").build()).unwrap();
        install(&fs, "/cached/libz.so.1", &ElfObject::dso("libz.so.1").build()).unwrap();
        install(&fs, "/usr/lib/libz.so.1", &ElfObject::dso("libz.so.1").build()).unwrap();
        let cache = LdCache::ldconfig(&fs, &["/cached".to_string()]);
        let r = GlibcLoader::new(&fs).with_cache(cache).load("/bin/app").unwrap();
        assert_eq!(r.objects[1].path, "/cached/libz.so.1");
        assert_eq!(r.objects[1].provenance, Provenance::LdSoCache);
    }

    #[test]
    fn preload_loads_first_and_interposes() {
        use depchaos_elf::Symbol;
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libreal.so").build()).unwrap();
        install(
            &fs,
            "/usr/lib/libreal.so",
            &ElfObject::dso("libreal.so").defines(Symbol::strong("malloc")).build(),
        )
        .unwrap();
        install(
            &fs,
            "/tools/libwrap.so",
            &ElfObject::dso("libwrap.so").defines(Symbol::strong("malloc")).build(),
        )
        .unwrap();
        let env = Environment::default().with_preload("/tools/libwrap.so");
        let r = GlibcLoader::new(&fs).with_env(env).load("/bin/app").unwrap();
        assert_eq!(r.objects[1].path, "/tools/libwrap.so");
        assert_eq!(r.bindings()["malloc"], "/tools/libwrap.so");
    }

    #[test]
    fn wrong_arch_candidate_shadowed_by_later_dir() {
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("libm.so").runpath("/mixed").runpath("/good").build(),
        )
        .unwrap();
        install(&fs, "/mixed/libm.so", &ElfObject::dso("libm.so").machine(Machine::X86).build())
            .unwrap();
        install(&fs, "/good/libm.so", &ElfObject::dso("libm.so").build()).unwrap();
        let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.objects[1].path, "/good/libm.so");
    }

    #[test]
    fn dlopen_uses_callers_paths() {
        // libplugin loadable only through libhost's runpath; the exe has no
        // path to it. dlopen from libhost works; from the exe it wouldn't.
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("libhost.so").runpath("/libs").build(),
        )
        .unwrap();
        install(
            &fs,
            "/libs/libhost.so",
            &ElfObject::dso("libhost.so").runpath("/plugins").dlopens("libplugin.so").build(),
        )
        .unwrap();
        install(&fs, "/plugins/libplugin.so", &ElfObject::dso("libplugin.so").build()).unwrap();
        let r = GlibcLoader::new(&fs).load_with_dlopen("/bin/app").unwrap();
        assert!(r.success());
        assert!(r.find("libplugin.so").is_some());
        // without dlopen replay it is not loaded
        let r2 = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r2.find("libplugin.so").is_none());
    }

    #[test]
    fn load_is_deterministic() {
        let fs = simple_world();
        let a = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        let b = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert_eq!(a.paths(), b.paths());
        // second run is warmer, never slower
        assert!(b.time_ns <= a.time_ns);
    }

    #[test]
    fn loader_trait_object_works() {
        let fs = simple_world();
        let glibc = GlibcLoader::new(&fs);
        let dyn_loader: &dyn Loader = &glibc;
        assert_eq!(dyn_loader.name(), "glibc");
        assert!(dyn_loader.resolves_by_soname());
        assert!(dyn_loader.supports_dlopen_replay());
        let r = dyn_loader.load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.objects.len(), 3);
    }
}

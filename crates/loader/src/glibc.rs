//! The glibc `ld.so` model.
//!
//! Search order for a needed entry requested by object `O` (ld.so(8)):
//!
//! 1. Entries containing `/` are opened directly — no search.
//! 2. Otherwise, the dedup cache is consulted first: any already-loaded
//!    object whose requested name, soname, path, or inode matches satisfies
//!    the request with **zero filesystem work** (Listing 1's hidden-missing-
//!    path effect, and the mechanism Shrinkwrap relies on).
//! 3. `DT_RPATH` of `O` and its loader-chain ancestors — used only if `O`
//!    itself carries no `DT_RUNPATH`; an ancestor that carries `DT_RUNPATH`
//!    contributes nothing.
//! 4. `LD_LIBRARY_PATH`.
//! 5. `DT_RUNPATH` of `O` only (never inherited).
//! 6. The ld.so.cache.
//! 7. The built-in default directories.
//!
//! Loading proceeds breadth-first from the executable's needed list;
//! `LD_PRELOAD` objects load immediately after the executable.

use std::collections::{HashMap, VecDeque};

use depchaos_elf::ElfObject;
use depchaos_vfs::{Inode, Vfs};

use crate::env::Environment;
use crate::ldcache::LdCache;
use crate::resolve::{expand_entry, probe_dir, probe_exact, Candidate, Provenance, Resolution};
use crate::result::{Failure, LoadError, LoadEvent, LoadResult, LoadedObject};

/// A glibc-semantics loader bound to one filesystem.
pub struct GlibcLoader<'fs> {
    fs: &'fs Vfs,
    env: Environment,
    cache: LdCache,
    strict_interp: bool,
}

struct State {
    objects: Vec<LoadedObject>,
    by_name: HashMap<String, usize>,
    by_path: HashMap<String, usize>,
    by_inode: HashMap<Inode, usize>,
    events: Vec<LoadEvent>,
    failures: Vec<Failure>,
}

impl State {
    fn new() -> Self {
        State {
            objects: Vec::new(),
            by_name: HashMap::new(),
            by_path: HashMap::new(),
            by_inode: HashMap::new(),
            events: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Register a freshly mapped object under all the names glibc indexes.
    fn register(
        &mut self,
        fs: &Vfs,
        requested: &str,
        cand: Candidate,
        parent: Option<usize>,
        provenance: Provenance,
    ) -> usize {
        let idx = self.objects.len();
        let canonical = fs.canonicalize(&cand.path).unwrap_or_else(|_| cand.path.clone());
        let inode = fs.peek(&canonical).map(|m| m.inode).unwrap_or(Inode(0));
        let soname = cand.object.effective_soname().to_string();
        self.by_name.entry(requested.to_string()).or_insert(idx);
        self.by_name.entry(soname).or_insert(idx);
        self.by_path.entry(cand.path.clone()).or_insert(idx);
        self.by_path.entry(canonical.clone()).or_insert(idx);
        self.by_inode.entry(inode).or_insert(idx);
        self.objects.push(LoadedObject {
            idx,
            path: cand.path,
            canonical,
            inode,
            object: cand.object,
            parent,
            requested_as: vec![requested.to_string()],
            provenance,
        });
        idx
    }

    /// Check the dedup cache for a bare-name request.
    fn dedup_name(&mut self, name: &str) -> Option<usize> {
        let idx = *self.by_name.get(name)?;
        self.alias(idx, name);
        Some(idx)
    }

    /// Check the dedup cache for a path request (path, canonical, inode all
    /// handled by the by_path map seeded at register time; inode covered on
    /// probe).
    fn dedup_path(&mut self, fs: &Vfs, path: &str) -> Option<usize> {
        if let Some(&idx) = self.by_path.get(path) {
            self.alias(idx, path);
            return Some(idx);
        }
        // A different path may still be the same file (symlinked stores).
        let canonical = fs.canonicalize(path).ok()?;
        if let Some(&idx) = self.by_path.get(&canonical) {
            self.alias(idx, path);
            return Some(idx);
        }
        let inode = fs.peek(&canonical).ok()?.inode;
        if let Some(&idx) = self.by_inode.get(&inode) {
            self.alias(idx, path);
            return Some(idx);
        }
        None
    }

    fn alias(&mut self, idx: usize, name: &str) {
        if !self.objects[idx].requested_as.iter().any(|r| r == name) {
            self.objects[idx].requested_as.push(name.to_string());
        }
        self.by_name.entry(name.to_string()).or_insert(idx);
    }
}

impl<'fs> GlibcLoader<'fs> {
    pub fn new(fs: &'fs Vfs) -> Self {
        GlibcLoader { fs, env: Environment::default(), cache: LdCache::empty(), strict_interp: false }
    }

    /// Verify the `PT_INTERP` interpreter exists before loading, like the
    /// kernel's `execve` does. Off by default (most fixtures don't install
    /// an ld.so); the NixOS §II-D compatibility tests turn it on.
    pub fn with_strict_interp(mut self, yes: bool) -> Self {
        self.strict_interp = yes;
        self
    }

    pub fn with_env(mut self, env: Environment) -> Self {
        self.env = env;
        self
    }

    pub fn with_cache(mut self, cache: LdCache) -> Self {
        self.cache = cache;
        self
    }

    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// Simulate `execve(exe_path)`: map the executable, `LD_PRELOAD`s, and
    /// the breadth-first closure of needed entries. `dlopen` hints are NOT
    /// processed — see [`GlibcLoader::load_with_dlopen`].
    pub fn load(&self, exe_path: &str) -> Result<LoadResult, LoadError> {
        self.load_inner(exe_path, false)
    }

    /// [`GlibcLoader::load`], then replay each loaded object's `dlopen`
    /// hints (in load order), which search with the *caller's* paths — the
    /// Qt plugin problem from §III-A.
    pub fn load_with_dlopen(&self, exe_path: &str) -> Result<LoadResult, LoadError> {
        self.load_inner(exe_path, true)
    }

    fn load_inner(&self, exe_path: &str, dlopen: bool) -> Result<LoadResult, LoadError> {
        let before = self.fs.snapshot();
        let t0 = self.fs.elapsed_ns();
        let mut st = State::new();

        // Map the executable.
        if self.fs.try_open(exe_path).is_none() {
            return Err(LoadError::ExeNotFound(exe_path.to_string()));
        }
        let bytes = self
            .fs
            .read_file(exe_path)
            .map_err(|_| LoadError::ExeNotFound(exe_path.to_string()))?;
        let exe = ElfObject::parse(&bytes)
            .map_err(|_| LoadError::ExeUnparseable(exe_path.to_string()))?;
        if self.strict_interp {
            if let Some(interp) = &exe.interp {
                if self.fs.try_open(interp).is_none() {
                    return Err(LoadError::InterpreterNotFound {
                        exe: exe_path.to_string(),
                        interp: interp.clone(),
                    });
                }
            }
        }
        if exe.virtual_size > 0 {
            self.fs.charge_read(exe_path, exe.virtual_size);
        }
        st.register(
            self.fs,
            exe_path,
            Candidate { path: exe_path.to_string(), object: exe },
            None,
            Provenance::Executable,
        );

        // A static executable (no PT_INTERP, no needed entries) never runs
        // the dynamic loader at all — LD_PRELOAD and friends are inert, the
        // §III-B trade-off ("changing to fully static linking breaks all of
        // these tools").
        let is_static = st.objects[0].object.interp.is_none()
            && st.objects[0].object.needed.is_empty();

        // LD_PRELOAD objects load immediately after the executable and are
        // searched like bare names (or opened directly when they are paths).
        if !is_static {
            for entry in self.env.ld_preload.clone() {
                self.request(&mut st, 0, &entry, true);
            }
        }

        // Breadth-first over needed entries.
        let mut queue: VecDeque<(usize, String)> =
            st.objects[0].object.needed.iter().map(|n| (0usize, n.clone())).collect();
        let mut next_obj = st.objects.len();
        loop {
            while let Some((req, name)) = queue.pop_front() {
                self.request(&mut st, req, &name, false);
                // Enqueue needed entries of anything newly loaded, in order.
                while next_obj < st.objects.len() {
                    for n in &st.objects[next_obj].object.needed {
                        queue.push_back((next_obj, n.clone()));
                    }
                    next_obj += 1;
                }
            }
            if !dlopen {
                break;
            }
            // Replay dlopen hints of every object not yet replayed; any new
            // object's needed entries go through the normal BFS above.
            let mut any = false;
            for idx in 0..st.objects.len() {
                for d in st.objects[idx].object.dlopens.clone() {
                    let already = st
                        .events
                        .iter()
                        .any(|e| e.requester == idx && e.name == d);
                    if !already {
                        queue.push_back((idx, d));
                        any = true;
                    }
                }
                if any {
                    break;
                }
            }
            if !any {
                break;
            }
        }

        Ok(LoadResult {
            syscalls: self.fs.snapshot().since(&before),
            time_ns: self.fs.elapsed_ns() - t0,
            objects: st.objects,
            events: st.events,
            failures: st.failures,
        })
    }

    /// Resolve one request and record the outcome.
    fn request(&self, st: &mut State, requester: usize, name: &str, _preload: bool) {
        let resolution = self.resolve(st, requester, name);
        if let Resolution::NotFound = resolution {
            st.failures.push(Failure {
                requester: st.objects[requester].object.name.clone(),
                name: name.to_string(),
            });
        }
        st.events.push(LoadEvent { requester, name: name.to_string(), resolution });
    }

    fn resolve(&self, st: &mut State, requester: usize, name: &str) -> Resolution {
        let want_arch = st.objects[0].object.machine;

        if name.contains('/') {
            // Direct path: dedup on path/inode, else open outright.
            if let Some(idx) = st.dedup_path(self.fs, name) {
                return Resolution::Deduped { path: st.objects[idx].path.clone() };
            }
            return match probe_exact(self.fs, name, want_arch) {
                Some(cand) => {
                    let path = cand.path.clone();
                    st.register(self.fs, name, cand, Some(requester), Provenance::DirectPath);
                    Resolution::Loaded { path, provenance: Provenance::DirectPath }
                }
                None => Resolution::NotFound,
            };
        }

        // Bare soname: dedup cache first — no filesystem work at all.
        if let Some(idx) = st.dedup_name(name) {
            return Resolution::Deduped { path: st.objects[idx].path.clone() };
        }

        // Phase 1: RPATH chain, suppressed entirely if the requester has a
        // RUNPATH; ancestors with their own RUNPATH contribute nothing.
        if st.objects[requester].object.runpath.is_empty() {
            let mut chain = Some(requester);
            while let Some(idx) = chain {
                let obj = &st.objects[idx];
                if obj.object.runpath.is_empty() {
                    let owner = obj.object.name.clone();
                    let owner_path = obj.path.clone();
                    let dirs: Vec<String> = obj
                        .object
                        .rpath
                        .iter()
                        .map(|e| expand_entry(e, &owner_path))
                        .collect();
                    for dir in &dirs {
                        if let Some(cand) =
                            probe_dir(self.fs, dir, name, want_arch, &self.env.hwcaps)
                        {
                            return self.commit(st, requester, name, cand, Provenance::Rpath {
                                owner: owner.clone(),
                            });
                        }
                    }
                }
                chain = st.objects[idx].parent;
            }
        }

        // Phase 2: LD_LIBRARY_PATH.
        for dir in &self.env.ld_library_path {
            if let Some(cand) = probe_dir(self.fs, dir, name, want_arch, &self.env.hwcaps) {
                return self.commit(st, requester, name, cand, Provenance::LdLibraryPath);
            }
        }

        // Phase 3: the requester's own RUNPATH (never inherited).
        {
            let owner = st.objects[requester].object.name.clone();
            let owner_path = st.objects[requester].path.clone();
            let dirs: Vec<String> = st.objects[requester]
                .object
                .runpath
                .iter()
                .map(|e| expand_entry(e, &owner_path))
                .collect();
            for dir in &dirs {
                if let Some(cand) = probe_dir(self.fs, dir, name, want_arch, &self.env.hwcaps) {
                    return self.commit(st, requester, name, cand, Provenance::Runpath {
                        owner: owner.clone(),
                    });
                }
            }
        }

        // Phase 4: ld.so.cache.
        if let Some(path) = self.cache.lookup(name, want_arch) {
            if let Some(cand) = probe_exact(self.fs, path, want_arch) {
                return self.commit(st, requester, name, cand, Provenance::LdSoCache);
            }
        }

        // Phase 5: default directories.
        for dir in &self.env.default_paths {
            if let Some(cand) = probe_dir(self.fs, dir, name, want_arch, &self.env.hwcaps) {
                return self.commit(st, requester, name, cand, Provenance::DefaultPath);
            }
        }

        Resolution::NotFound
    }

    fn commit(
        &self,
        st: &mut State,
        requester: usize,
        name: &str,
        cand: Candidate,
        provenance: Provenance,
    ) -> Resolution {
        // The search may have found a file that is already mapped under a
        // different name (hard identity): glibc checks dev/ino after open.
        if let Some(idx) = st.dedup_path(self.fs, &cand.path) {
            return Resolution::Deduped { path: st.objects[idx].path.clone() };
        }
        let path = cand.path.clone();
        st.register(self.fs, name, cand, Some(requester), provenance.clone());
        Resolution::Loaded { path, provenance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;
    use depchaos_elf::Machine;

    /// exe -> liba -> libb, all findable via default paths.
    fn simple_world() -> Vfs {
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("liba.so").build()).unwrap();
        install(&fs, "/usr/lib/liba.so", &ElfObject::dso("liba.so").needs("libb.so").build())
            .unwrap();
        install(&fs, "/usr/lib/libb.so", &ElfObject::dso("libb.so").build()).unwrap();
        fs
    }

    #[test]
    fn loads_transitive_closure_bfs() {
        let fs = simple_world();
        let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.paths(), vec!["/bin/app", "/usr/lib/liba.so", "/usr/lib/libb.so"]);
        assert_eq!(r.objects[1].provenance, Provenance::DefaultPath);
        assert_eq!(r.objects[2].parent, Some(1));
    }

    #[test]
    fn missing_exe() {
        let fs = Vfs::local();
        assert!(matches!(
            GlibcLoader::new(&fs).load("/bin/ghost"),
            Err(LoadError::ExeNotFound(_))
        ));
    }

    #[test]
    fn missing_dep_recorded_not_fatal() {
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libgone.so").build()).unwrap();
        let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(!r.success());
        assert_eq!(r.failures[0].name, "libgone.so");
    }

    #[test]
    fn rpath_beats_ld_library_path_and_runpath_loses() {
        let fs = Vfs::local();
        install(&fs, "/rp/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(&fs, "/llp/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(&fs, "/bin/rp_app", &ElfObject::exe("rp_app").needs("libx.so").rpath("/rp").build())
            .unwrap();
        install(
            &fs,
            "/bin/runp_app",
            &ElfObject::exe("runp_app").needs("libx.so").runpath("/rp").build(),
        )
        .unwrap();
        let env = Environment::bare().with_ld_library_path("/llp");

        // Table I row 1: RPATH searched before LD_LIBRARY_PATH.
        let r = GlibcLoader::new(&fs).with_env(env.clone()).load("/bin/rp_app").unwrap();
        assert_eq!(r.objects[1].path, "/rp/libx.so");
        assert_eq!(r.objects[1].provenance, Provenance::Rpath { owner: "rp_app".into() });

        // Table I row 2: RUNPATH searched after LD_LIBRARY_PATH.
        let r = GlibcLoader::new(&fs).with_env(env).load("/bin/runp_app").unwrap();
        assert_eq!(r.objects[1].path, "/llp/libx.so");
        assert_eq!(r.objects[1].provenance, Provenance::LdLibraryPath);
    }

    #[test]
    fn rpath_propagates_runpath_does_not() {
        // exe needs liba; liba (no paths of its own) needs libdeep.
        // libdeep lives only in /deep, referenced from the exe's search path.
        for (attr, should_find) in [("rpath", true), ("runpath", false)] {
            let fs = Vfs::local();
            install(&fs, "/usr/lib/liba.so", &ElfObject::dso("liba.so").needs("libdeep.so").build())
                .unwrap();
            install(&fs, "/deep/libdeep.so", &ElfObject::dso("libdeep.so").build()).unwrap();
            let exe = if attr == "rpath" {
                ElfObject::exe("app").needs("liba.so").rpath("/deep").build()
            } else {
                ElfObject::exe("app").needs("liba.so").runpath("/deep").build()
            };
            install(&fs, "/bin/app", &exe).unwrap();
            let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
            assert_eq!(
                r.success(),
                should_find,
                "Table I row 3: {attr} propagation expected {should_find}"
            );
        }
    }

    #[test]
    fn runpath_on_requester_disables_whole_rpath_chain() {
        // exe has RPATH /deep (which contains libdeep); liba has a RUNPATH
        // (pointing anywhere) → when liba requests libdeep, the exe's RPATH
        // must NOT be consulted (the ROCm failure mode, §V-B.1).
        let fs = Vfs::local();
        install(
            &fs,
            "/usr/lib/liba.so",
            &ElfObject::dso("liba.so").needs("libdeep.so").runpath("/somewhere/else").build(),
        )
        .unwrap();
        install(&fs, "/deep/libdeep.so", &ElfObject::dso("libdeep.so").build()).unwrap();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("liba.so").rpath("/deep").rpath("/usr/lib").build(),
        )
        .unwrap();
        let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(!r.success(), "libdeep must not be found through the suppressed chain");
    }

    #[test]
    fn soname_dedup_satisfies_missing_path() {
        // Listing 1: libfirst (correct runpath) loads libshared; libsecond
        // has NO search path for libshared but works because it was already
        // loaded — and no filesystem probing happens for the dedup.
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("libfirst.so").needs("libsecond.so").runpath("/libs").build(),
        )
        .unwrap();
        install(
            &fs,
            "/libs/libfirst.so",
            &ElfObject::dso("libfirst.so").needs("libshared.so").runpath("/hidden").build(),
        )
        .unwrap();
        install(&fs, "/libs/libsecond.so", &ElfObject::dso("libsecond.so").needs("libshared.so").build())
            .unwrap();
        install(&fs, "/hidden/libshared.so", &ElfObject::dso("libshared.so").build()).unwrap();
        let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r.success());
        let dedup_event = r
            .events
            .iter()
            .find(|e| e.requester == 2 && e.name == "libshared.so")
            .unwrap();
        assert!(matches!(dedup_event.resolution, Resolution::Deduped { .. }));
    }

    #[test]
    fn absolute_needed_loads_directly_and_dedups_by_soname() {
        // A shrinkwrapped binary: absolute path needed + transitive bare
        // request satisfied via soname dedup (Fig 5's libac.so example).
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app")
                .needs("/store/x/libxyz.so")
                .needs("/store/a/libac.so")
                .build(),
        )
        .unwrap();
        install(&fs, "/store/x/libxyz.so", &ElfObject::dso("libxyz.so").needs("libac.so").build())
            .unwrap();
        install(&fs, "/store/a/libac.so", &ElfObject::dso("libac.so").build()).unwrap();
        let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.objects.len(), 3);
        let e = r.events.iter().find(|e| e.name == "libac.so").unwrap();
        assert!(matches!(e.resolution, Resolution::Deduped { .. }));
    }

    #[test]
    fn ld_so_cache_consulted_before_defaults() {
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libz.so.1").build()).unwrap();
        install(&fs, "/cached/libz.so.1", &ElfObject::dso("libz.so.1").build()).unwrap();
        install(&fs, "/usr/lib/libz.so.1", &ElfObject::dso("libz.so.1").build()).unwrap();
        let cache = LdCache::ldconfig(&fs, &["/cached".to_string()]);
        let r = GlibcLoader::new(&fs).with_cache(cache).load("/bin/app").unwrap();
        assert_eq!(r.objects[1].path, "/cached/libz.so.1");
        assert_eq!(r.objects[1].provenance, Provenance::LdSoCache);
    }

    #[test]
    fn preload_loads_first_and_interposes() {
        use depchaos_elf::Symbol;
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("libreal.so").build(),
        )
        .unwrap();
        install(
            &fs,
            "/usr/lib/libreal.so",
            &ElfObject::dso("libreal.so").defines(Symbol::strong("malloc")).build(),
        )
        .unwrap();
        install(
            &fs,
            "/tools/libwrap.so",
            &ElfObject::dso("libwrap.so").defines(Symbol::strong("malloc")).build(),
        )
        .unwrap();
        let env = Environment::default().with_preload("/tools/libwrap.so");
        let r = GlibcLoader::new(&fs).with_env(env).load("/bin/app").unwrap();
        assert_eq!(r.objects[1].path, "/tools/libwrap.so");
        assert_eq!(r.bindings()["malloc"], "/tools/libwrap.so");
    }

    #[test]
    fn wrong_arch_candidate_shadowed_by_later_dir() {
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libm.so").runpath("/mixed").runpath("/good").build()).unwrap();
        install(&fs, "/mixed/libm.so", &ElfObject::dso("libm.so").machine(Machine::X86).build())
            .unwrap();
        install(&fs, "/good/libm.so", &ElfObject::dso("libm.so").build()).unwrap();
        let r = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.objects[1].path, "/good/libm.so");
    }

    #[test]
    fn dlopen_uses_callers_paths() {
        // libplugin loadable only through libhost's runpath; the exe has no
        // path to it. dlopen from libhost works; from the exe it wouldn't.
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libhost.so").runpath("/libs").build())
            .unwrap();
        install(
            &fs,
            "/libs/libhost.so",
            &ElfObject::dso("libhost.so").runpath("/plugins").dlopens("libplugin.so").build(),
        )
        .unwrap();
        install(&fs, "/plugins/libplugin.so", &ElfObject::dso("libplugin.so").build()).unwrap();
        let r = GlibcLoader::new(&fs).load_with_dlopen("/bin/app").unwrap();
        assert!(r.success());
        assert!(r.find("libplugin.so").is_some());
        // without dlopen replay it is not loaded
        let r2 = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r2.find("libplugin.so").is_none());
    }

    #[test]
    fn load_is_deterministic() {
        let fs = simple_world();
        let a = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        let b = GlibcLoader::new(&fs).load("/bin/app").unwrap();
        assert_eq!(a.paths(), b.paths());
        // second run is warmer, never slower
        assert!(b.time_ns <= a.time_ns);
    }
}

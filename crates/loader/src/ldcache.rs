//! The ld.so.cache: soname → path mapping built by `ldconfig`.
//!
//! The Debian RPATH debate (§III-A) argues the *distribution* should resolve
//! libraries via `ld.so.conf` + the cache rather than per-binary paths. We
//! model the cache as a snapshot built offline by [`LdCache::ldconfig`]
//! (unaccounted — it runs at package-install time), consulted in O(1) at
//! load time, with the winning path then opened (accounted).

use std::collections::HashMap;

use depchaos_elf::{ElfObject, Machine};
use depchaos_vfs::{path as vpath, Vfs};

/// An immutable soname → path cache per (machine) ABI.
#[derive(Debug, Clone, Default)]
pub struct LdCache {
    entries: HashMap<(String, Machine), String>,
}

impl LdCache {
    /// Empty cache (no ld.so.conf).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Scan `dirs` (the ld.so.conf list) and record, for each soname and
    /// ABI, the **first** directory's file — matching ldconfig's
    /// first-match-wins ordering. Unaccounted: ldconfig runs offline.
    pub fn ldconfig(fs: &Vfs, dirs: &[String]) -> Self {
        let mut entries: HashMap<(String, Machine), String> = HashMap::new();
        for dir in dirs {
            let Ok(names) = fs.list_dir(dir) else { continue };
            for name in names {
                let full = vpath::join(dir, &name);
                let Ok(bytes) = fs.peek_file(&full) else { continue };
                let Ok(obj) = ElfObject::parse(&bytes) else { continue };
                let soname = obj.soname.clone().unwrap_or(name);
                entries.entry((soname, obj.machine)).or_insert(full);
            }
        }
        LdCache { entries }
    }

    /// Look up a soname for an ABI. O(1), free: the cache is mapped memory
    /// in the real loader.
    pub fn lookup(&self, soname: &str, machine: Machine) -> Option<&str> {
        self.entries.get(&(soname.to_string(), machine)).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;

    #[test]
    fn ldconfig_scans_and_first_dir_wins() {
        let fs = Vfs::local();
        install(&fs, "/lib/libc.so.6", &ElfObject::dso("libc.so.6").build()).unwrap();
        install(&fs, "/extra/libc.so.6", &ElfObject::dso("libc.so.6").build()).unwrap();
        install(&fs, "/extra/libx.so.1", &ElfObject::dso("libx.so.1").build()).unwrap();
        let cache = LdCache::ldconfig(&fs, &["/lib".to_string(), "/extra".to_string()]);
        assert_eq!(cache.lookup("libc.so.6", Machine::X86_64), Some("/lib/libc.so.6"));
        assert_eq!(cache.lookup("libx.so.1", Machine::X86_64), Some("/extra/libx.so.1"));
        assert_eq!(cache.lookup("libc.so.6", Machine::X86), None, "per-ABI entries");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn soname_key_not_filename() {
        let fs = Vfs::local();
        // File named libfoo.so but soname libfoo.so.2 — cache indexes soname.
        install(&fs, "/lib/libfoo.so", &ElfObject::dso("libfoo.so").soname("libfoo.so.2").build())
            .unwrap();
        let cache = LdCache::ldconfig(&fs, &["/lib".to_string()]);
        assert!(cache.lookup("libfoo.so.2", Machine::X86_64).is_some());
        assert!(cache.lookup("libfoo.so", Machine::X86_64).is_none());
    }

    #[test]
    fn ldconfig_is_unaccounted() {
        let fs = Vfs::local();
        install(&fs, "/lib/liba.so", &ElfObject::dso("liba.so").build()).unwrap();
        LdCache::ldconfig(&fs, &["/lib".to_string()]);
        assert_eq!(fs.snapshot().total(), 0);
    }

    #[test]
    fn missing_dirs_skipped() {
        let fs = Vfs::local();
        let cache = LdCache::ldconfig(&fs, &["/no/such/dir".to_string()]);
        assert!(cache.is_empty());
    }
}

//! libtree-style static dependency analysis (Listing 1).
//!
//! Unlike [`crate::GlibcLoader::load`], which models what the loader
//! actually does (including the soname dedup cache that *hides* broken
//! search paths), this analysis resolves every object's needed list
//! independently. A library that is only reachable because something else
//! loaded it earlier shows up here as `not found` — exactly the danger
//! `libtree /usr/bin/dbwrap_tool` exposes in the paper.

use depchaos_elf::ElfObject;
use depchaos_vfs::Vfs;
use std::collections::HashSet;

use crate::env::Environment;
use crate::ldcache::LdCache;
use crate::resolve::{expand_entry, probe_dir, probe_exact, Provenance};
use crate::result::LoadError;

/// One node in the printed tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// The needed string requested (or the executable path at the root).
    pub name: String,
    /// Resolved path, if any.
    pub path: Option<String>,
    /// How it resolved (`None` means not found).
    pub provenance: Option<Provenance>,
    /// Children (needed entries of the resolved object). Empty when the
    /// node is unresolved or its subtree was already expanded elsewhere.
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// True if this entry failed to resolve.
    pub fn not_found(&self) -> bool {
        self.path.is_none()
    }
}

/// The full analysis result.
#[derive(Debug, Clone)]
pub struct DepTree {
    pub root: TreeNode,
}

impl DepTree {
    /// All `not found` entries, with the requesting chain's leaf name.
    pub fn missing(&self) -> Vec<&TreeNode> {
        let mut out = Vec::new();
        fn walk<'a>(n: &'a TreeNode, out: &mut Vec<&'a TreeNode>) {
            if n.not_found() {
                out.push(n);
            }
            for c in &n.children {
                walk(c, out);
            }
        }
        walk(&self.root, &mut out);
        out
    }

    /// Total number of nodes (requests) in the tree.
    pub fn node_count(&self) -> usize {
        fn walk(n: &TreeNode) -> usize {
            1 + n.children.iter().map(walk).sum::<usize>()
        }
        walk(&self.root)
    }

    /// Render in the Listing 1 style:
    ///
    /// ```text
    /// /usr/bin/dbwrap_tool
    ///     libpopt-samba3-samba4.so [runpath]
    ///         libsamba-debug-samba4.so not found
    /// ```
    pub fn render(&self) -> String {
        let mut s = String::new();
        fn walk(n: &TreeNode, depth: usize, s: &mut String) {
            for _ in 0..depth {
                s.push_str("    ");
            }
            if depth == 0 {
                s.push_str(&n.name);
            } else if n.not_found() {
                s.push_str(&format!("{} not found", n.name));
            } else {
                s.push_str(&format!("{} [{}]", n.name, n.provenance.as_ref().unwrap().tag()));
            }
            s.push('\n');
            for c in &n.children {
                walk(c, depth + 1, s);
            }
        }
        walk(&self.root, 0, &mut s);
        s
    }
}

/// Analyze `exe_path` with glibc search semantics, per-object (no dedup
/// cache). Subtrees of an already-expanded path are pruned to keep the tree
/// finite, matching libtree's behaviour.
pub fn analyze_tree(
    fs: &Vfs,
    exe_path: &str,
    env: &Environment,
    cache: &LdCache,
) -> Result<DepTree, LoadError> {
    let bytes = fs.peek_file(exe_path).map_err(|_| LoadError::ExeNotFound(exe_path.to_string()))?;
    let exe =
        ElfObject::parse(&bytes).map_err(|_| LoadError::ExeUnparseable(exe_path.to_string()))?;
    let want_arch = exe.machine;
    let mut expanded: HashSet<String> = HashSet::new();
    expanded.insert(exe_path.to_string());

    // The ancestor chain carries (object, its path) for RPATH walking.
    let mut chain: Vec<(ElfObject, String)> = vec![(exe.clone(), exe_path.to_string())];
    let children = expand(fs, env, cache, want_arch, &mut chain, &mut expanded);
    let root = TreeNode {
        name: exe_path.to_string(),
        path: Some(exe_path.to_string()),
        provenance: Some(Provenance::Executable),
        children,
    };
    Ok(DepTree { root })
}

fn expand(
    fs: &Vfs,
    env: &Environment,
    cache: &LdCache,
    want_arch: depchaos_elf::Machine,
    chain: &mut Vec<(ElfObject, String)>,
    expanded: &mut HashSet<String>,
) -> Vec<TreeNode> {
    let needed = chain.last().unwrap().0.needed.clone();
    let mut out = Vec::with_capacity(needed.len());
    for name in needed {
        match resolve_static(fs, env, cache, want_arch, chain, &name) {
            Some((path, provenance, obj)) => {
                let first_time = expanded.insert(path.clone());
                let children = if first_time {
                    chain.push((obj, path.clone()));
                    let c = expand(fs, env, cache, want_arch, chain, expanded);
                    chain.pop();
                    c
                } else {
                    Vec::new()
                };
                out.push(TreeNode {
                    name,
                    path: Some(path),
                    provenance: Some(provenance),
                    children,
                });
            }
            None => out.push(TreeNode { name, path: None, provenance: None, children: Vec::new() }),
        }
    }
    out
}

/// Static glibc-order resolution for one needed entry against an explicit
/// ancestor chain (`chain.last()` is the requester).
fn resolve_static(
    fs: &Vfs,
    env: &Environment,
    cache: &LdCache,
    want_arch: depchaos_elf::Machine,
    chain: &[(ElfObject, String)],
    name: &str,
) -> Option<(String, Provenance, ElfObject)> {
    if name.contains('/') {
        let cand = probe_exact(fs, name, want_arch)?;
        return Some((cand.path, Provenance::DirectPath, cand.object));
    }
    let (requester, _) = chain.last().unwrap();

    // RPATH chain (suppressed by requester RUNPATH).
    if requester.runpath.is_empty() {
        for (obj, path) in chain.iter().rev() {
            if !obj.runpath.is_empty() {
                continue;
            }
            for entry in &obj.rpath {
                let dir = expand_entry(entry, path);
                if let Some(cand) = probe_dir(fs, &dir, name, want_arch, &env.hwcaps) {
                    return Some((
                        cand.path,
                        Provenance::Rpath { owner: obj.name.clone() },
                        cand.object,
                    ));
                }
            }
        }
    }

    for dir in &env.ld_library_path {
        if let Some(cand) = probe_dir(fs, dir, name, want_arch, &env.hwcaps) {
            return Some((cand.path, Provenance::LdLibraryPath, cand.object));
        }
    }

    let (requester, req_path) = chain.last().unwrap();
    for entry in &requester.runpath {
        let dir = expand_entry(entry, req_path);
        if let Some(cand) = probe_dir(fs, &dir, name, want_arch, &env.hwcaps) {
            return Some((
                cand.path,
                Provenance::Runpath { owner: requester.name.clone() },
                cand.object,
            ));
        }
    }

    if let Some(path) = cache.lookup(name, want_arch) {
        if let Some(cand) = probe_exact(fs, path, want_arch) {
            return Some((cand.path, Provenance::LdSoCache, cand.object));
        }
    }

    for dir in &env.default_paths {
        if let Some(cand) = probe_dir(fs, dir, name, want_arch, &env.hwcaps) {
            return Some((cand.path, Provenance::DefaultPath, cand.object));
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glibc::GlibcLoader;
    use depchaos_elf::io::install;

    /// The Listing 1 shape: a library whose own search paths cannot find a
    /// dependency that happens to be loaded earlier through a sibling.
    fn samba_like() -> Vfs {
        let fs = Vfs::local();
        install(
            &fs,
            "/usr/bin/tool",
            &ElfObject::exe("tool")
                .needs("libfirst.so")
                .needs("libbroken.so")
                .runpath("/samba/lib")
                .build(),
        )
        .unwrap();
        install(
            &fs,
            "/samba/lib/libfirst.so",
            &ElfObject::dso("libfirst.so").needs("libhidden.so").runpath("/samba/private").build(),
        )
        .unwrap();
        // libbroken has NO search path at all for libhidden.
        install(
            &fs,
            "/samba/lib/libbroken.so",
            &ElfObject::dso("libbroken.so").needs("libhidden.so").build(),
        )
        .unwrap();
        install(&fs, "/samba/private/libhidden.so", &ElfObject::dso("libhidden.so").build())
            .unwrap();
        fs
    }

    #[test]
    fn static_analysis_exposes_what_dedup_hides() {
        let fs = samba_like();
        // The dynamic loader succeeds...
        let r = GlibcLoader::new(&fs).load("/usr/bin/tool").unwrap();
        assert!(r.success());
        // ...but the tree shows the latent breakage.
        let tree =
            analyze_tree(&fs, "/usr/bin/tool", &Environment::default(), &LdCache::empty()).unwrap();
        let missing = tree.missing();
        assert_eq!(missing.len(), 1);
        assert_eq!(missing[0].name, "libhidden.so");
        let text = tree.render();
        assert!(text.contains("libhidden.so not found"), "{text}");
        assert!(text.contains("libfirst.so [runpath]"), "{text}");
    }

    #[test]
    fn duplicate_subtrees_pruned() {
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("liba.so").needs("libb.so").runpath("/l").build(),
        )
        .unwrap();
        install(
            &fs,
            "/l/liba.so",
            &ElfObject::dso("liba.so").needs("libc6.so").runpath("/l").build(),
        )
        .unwrap();
        install(
            &fs,
            "/l/libb.so",
            &ElfObject::dso("libb.so").needs("libc6.so").runpath("/l").build(),
        )
        .unwrap();
        install(&fs, "/l/libc6.so", &ElfObject::dso("libc6.so").build()).unwrap();
        let tree =
            analyze_tree(&fs, "/bin/app", &Environment::default(), &LdCache::empty()).unwrap();
        // libc6 appears under both liba and libb, but only as a leaf the
        // second time; total node count is root + 2 libs + 2 libc refs.
        assert_eq!(tree.node_count(), 5);
        assert_eq!(tree.missing().len(), 0);
    }

    #[test]
    fn render_root_then_indented_children() {
        let fs = samba_like();
        let tree =
            analyze_tree(&fs, "/usr/bin/tool", &Environment::default(), &LdCache::empty()).unwrap();
        let text = tree.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "/usr/bin/tool");
        assert!(lines[1].starts_with("    libfirst.so"));
    }
}

//! Search-path probing shared by both loader flavours.

use depchaos_elf::{ElfObject, Machine};
use depchaos_vfs::{path as vpath, Vfs};
use serde::{Deserialize, Serialize};

/// Where a resolved library came from — the `[runpath]` / `[default path]`
/// annotations in `libtree` output (Listing 1), plus the cases the dynamic
/// loader distinguishes internally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// The root executable itself.
    Executable,
    /// Loaded because of `LD_PRELOAD`.
    Preload,
    /// The needed entry contained `/` and was opened directly (a
    /// shrinkwrapped or hand-pinned dependency).
    DirectPath,
    /// Found via a `DT_RPATH` entry; `owner` names the object whose RPATH
    /// supplied the directory (it propagates down the loader chain).
    Rpath { owner: String },
    /// Found via `LD_LIBRARY_PATH`.
    LdLibraryPath,
    /// Found via the requesting object's own `DT_RUNPATH`.
    Runpath { owner: String },
    /// Found in the ld.so cache (ld.so.conf directories).
    LdSoCache,
    /// Found in a built-in trusted directory.
    DefaultPath,
}

impl Provenance {
    /// The bracketed tag libtree prints.
    pub fn tag(&self) -> &'static str {
        match self {
            Provenance::Executable => "executable",
            Provenance::Preload => "preload",
            Provenance::DirectPath => "absolute",
            Provenance::Rpath { .. } => "rpath",
            Provenance::LdLibraryPath => "ld_library_path",
            Provenance::Runpath { .. } => "runpath",
            Provenance::LdSoCache => "ld.so.cache",
            Provenance::DefaultPath => "default path",
        }
    }
}

/// Outcome of resolving one needed entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resolution {
    /// Freshly loaded from `path`.
    Loaded { path: String, provenance: Provenance },
    /// Satisfied from the loader's dedup cache without touching the
    /// filesystem — the mechanism Listing 1 demonstrates and Shrinkwrap
    /// exploits.
    Deduped { path: String },
    /// Nowhere to be found; a real loader would abort here.
    NotFound,
}

impl Resolution {
    pub fn is_found(&self) -> bool {
        !matches!(self, Resolution::NotFound)
    }

    pub fn path(&self) -> Option<&str> {
        match self {
            Resolution::Loaded { path, .. } | Resolution::Deduped { path } => Some(path),
            Resolution::NotFound => None,
        }
    }
}

/// A successfully probed candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Path as probed (before symlink canonicalisation).
    pub path: String,
    pub object: ElfObject,
}

/// Probe `dir` for `name`, glibc-style: hwcaps subdirectories first, then
/// the plain directory. Every probe is an accounted `openat`; a hit is
/// followed by an accounted read to inspect the ELF header. Candidates whose
/// machine differs from `want_arch` are **silently skipped** per the System V
/// ABI ("libraries that do not match the architecture of the loading binary
/// should be silently ignored").
pub fn probe_dir(
    fs: &Vfs,
    dir: &str,
    name: &str,
    want_arch: Machine,
    hwcaps: &[String],
) -> Option<Candidate> {
    for sub in hwcaps.iter().map(String::as_str).chain(std::iter::once("")) {
        let full = if sub.is_empty() {
            vpath::join(dir, name)
        } else {
            vpath::join(&vpath::join(dir, sub), name)
        };
        if let Some(c) = probe_exact(fs, &full, want_arch) {
            return Some(c);
        }
    }
    None
}

/// Probe one exact path (a `/`-containing needed entry, or a cache hit).
/// Returns `None` on ENOENT, unparseable content, or architecture mismatch.
pub fn probe_exact(fs: &Vfs, full: &str, want_arch: Machine) -> Option<Candidate> {
    fs.try_open(full)?;
    let bytes = fs.read_file(full).ok()?;
    let object = ElfObject::parse(&bytes).ok()?;
    if object.machine != want_arch {
        // Wrong ABI: skipped without any diagnostic, exactly like ld.so.
        return None;
    }
    if object.virtual_size > 0 {
        // Mapping the object faults in its declared size, not the size of
        // our compact serialisation.
        fs.charge_read(full, object.virtual_size);
    }
    Some(Candidate { path: full.to_string(), object })
}

/// Probe an ordered directory list. Returns the candidate and the index of
/// the directory that supplied it.
pub fn probe_dirs(
    fs: &Vfs,
    dirs: &[String],
    name: &str,
    want_arch: Machine,
    hwcaps: &[String],
) -> Option<(usize, Candidate)> {
    for (i, dir) in dirs.iter().enumerate() {
        if let Some(c) = probe_dir(fs, dir, name, want_arch, hwcaps) {
            return Some((i, c));
        }
    }
    None
}

/// Expand `$ORIGIN` in a search-path entry against the directory containing
/// the object that owns the entry.
pub fn expand_entry(entry: &str, owner_path: &str) -> String {
    vpath::expand_origin(entry, &vpath::parent(owner_path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;

    fn world() -> Vfs {
        let fs = Vfs::local();
        install(&fs, "/usr/lib/liba.so", &ElfObject::dso("liba.so").build()).unwrap();
        install(
            &fs,
            "/usr/lib/lib32.so",
            &ElfObject::dso("lib32.so").machine(Machine::X86).build(),
        )
        .unwrap();
        install(
            &fs,
            "/usr/lib/glibc-hwcaps/x86-64-v3/libfast.so",
            &ElfObject::dso("libfast.so").build(),
        )
        .unwrap();
        install(&fs, "/usr/lib/libfast.so", &ElfObject::dso("libfast.so").build()).unwrap();
        fs
    }

    #[test]
    fn plain_probe_finds() {
        let fs = world();
        let c = probe_dir(&fs, "/usr/lib", "liba.so", Machine::X86_64, &[]).unwrap();
        assert_eq!(c.path, "/usr/lib/liba.so");
    }

    #[test]
    fn missing_costs_one_openat() {
        let fs = world();
        let before = fs.snapshot();
        assert!(probe_dir(&fs, "/usr/lib", "libnope.so", Machine::X86_64, &[]).is_none());
        let d = fs.snapshot().since(&before);
        assert_eq!(d.openat, 1);
        assert_eq!(d.misses, 1);
    }

    #[test]
    fn wrong_arch_silently_skipped() {
        let fs = world();
        assert!(probe_dir(&fs, "/usr/lib", "lib32.so", Machine::X86_64, &[]).is_none());
        // but visible to a 32-bit requester
        assert!(probe_dir(&fs, "/usr/lib", "lib32.so", Machine::X86, &[]).is_some());
    }

    #[test]
    fn hwcaps_take_priority() {
        let fs = world();
        let caps = vec!["glibc-hwcaps/x86-64-v3".to_string()];
        let c = probe_dir(&fs, "/usr/lib", "libfast.so", Machine::X86_64, &caps).unwrap();
        assert_eq!(c.path, "/usr/lib/glibc-hwcaps/x86-64-v3/libfast.so");
        // without hwcaps, the plain file wins
        let c2 = probe_dir(&fs, "/usr/lib", "libfast.so", Machine::X86_64, &[]).unwrap();
        assert_eq!(c2.path, "/usr/lib/libfast.so");
    }

    #[test]
    fn probe_dirs_reports_winning_index() {
        let fs = world();
        let dirs = vec!["/empty".to_string(), "/usr/lib".to_string()];
        let (i, c) = probe_dirs(&fs, &dirs, "liba.so", Machine::X86_64, &[]).unwrap();
        assert_eq!(i, 1);
        assert_eq!(c.path, "/usr/lib/liba.so");
    }

    #[test]
    fn garbage_file_skipped() {
        let fs = world();
        fs.write_file_p("/usr/lib/libjunk.so", b"ASCII text".to_vec()).unwrap();
        assert!(probe_dir(&fs, "/usr/lib", "libjunk.so", Machine::X86_64, &[]).is_none());
    }

    #[test]
    fn origin_expansion_against_owner() {
        assert_eq!(expand_entry("$ORIGIN/../lib", "/opt/app/bin/tool"), "/opt/app/lib");
    }
}

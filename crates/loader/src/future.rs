//! The §III-C *future loader* — the paper's proposal, implemented as an
//! instantiation of the shared [`crate::engine`].
//!
//! > "The constraints we want to express are a combination of options to
//! > inject new paths into the library search path: prepend, append, and
//! > whether to inherit. All but one of the problems listed in Section
//! > III-A can be solved by offering prepend/append and a boolean
//! > propagation flag on each path added to the search space. ... Allowing
//! > the ability to dictate the search space per shared object would give
//! > fine-grained control over the search semantics. This would also solve
//! > the final issue: the ability to load libraries with conflicting
//! > filenames from paths deterministically."
//!
//! Semantics, encoded in [`FutureSearch`] / [`FutureDedup`]:
//!
//! * Each object carries [`depchaos_elf::SearchDir`] entries —
//!   `(dir, Prepend|Append, inherit)` — and [`depchaos_elf::DepPin`]s
//!   mapping a soname to an exact path.
//! * Resolution for a request by object `O`:
//!   1. pins of `O`, then inherited pins of ancestors (nearest first) —
//!      a pin *rewrites* the request to an exact path before dedup runs;
//!   2. prepend dirs of `O`, then inherited prepends of ancestors;
//!   3. `LD_LIBRARY_PATH`;
//!   4. append dirs of `O`, then inherited appends of ancestors;
//!   5. default directories.
//! * Dedup identical in spirit to glibc (request-name/soname/path cache
//!   plus post-open inode identity), so Shrinkwrap-style output still
//!   works.
//!
//! The problems this dissolves, each proven in the tests below:
//! the Qt plugin problem (propagation on demand, not all-or-nothing), the
//! ROCm interference (a library's own paths need not suppress its parent's),
//! the admin-override tension (append = user-overridable, prepend = pinned),
//! and Fig 3 (per-dependency pins).

use depchaos_elf::SearchPosition;
use depchaos_vfs::{intern, PathId, Vfs};

use crate::api::Loader;
use crate::engine::{Ctx, DedupPolicy, Engine, EngineConfig, SearchPolicy, State};
use crate::env::Environment;
use crate::resolve::{expand_entry, probe_dir, probe_exact, Candidate, Provenance};
use crate::result::{LoadError, LoadResult};

/// The proposal's probe plan: pins rewrite the request; otherwise prepends
/// (own, then inherited), the environment, appends (own, then inherited),
/// then defaults.
pub struct FutureSearch;

impl SearchPolicy for FutureSearch {
    fn rewrite(&self, _cx: &Ctx, st: &State, requester: usize, name: &str) -> Option<String> {
        // Pins are inheritable by default (the proposal leaves this open;
        // inheritance is the useful choice) with the nearest object winning.
        let mut idx = Some(requester);
        while let Some(i) = idx {
            for p in &st.objects[i].object.pins {
                if p.soname == name {
                    return Some(expand_entry(&p.path, &st.objects[i].path));
                }
            }
            idx = st.objects[i].parent;
        }
        None
    }

    fn locate(
        &self,
        cx: &Ctx,
        st: &State,
        requester: usize,
        name: &str,
    ) -> Option<(Candidate, Provenance)> {
        if name.contains('/') {
            // Direct (or pinned) path: opened outright.
            return probe_exact(cx.fs, name, cx.want_arch).map(|c| (c, Provenance::DirectPath));
        }

        // Assemble the search list: prepends (own, then inherited), the
        // environment, appends (own, then inherited), defaults.
        let mut dirs: Vec<(String, Provenance)> = Vec::new();
        let collect = |pos: SearchPosition, out: &mut Vec<(String, Provenance)>| {
            let mut idx = Some(requester);
            let mut own = true;
            while let Some(i) = idx {
                let obj = &st.objects[i];
                for sd in &obj.object.search_dirs {
                    if sd.position == pos && (own || sd.inherit) {
                        out.push((
                            expand_entry(&sd.dir, &obj.path),
                            Provenance::Rpath { owner: obj.object.name.clone() },
                        ));
                    }
                }
                idx = obj.parent;
                own = false;
            }
        };
        collect(SearchPosition::Prepend, &mut dirs);
        for d in &cx.env.ld_library_path {
            dirs.push((d.clone(), Provenance::LdLibraryPath));
        }
        collect(SearchPosition::Append, &mut dirs);
        for d in &cx.env.default_paths {
            dirs.push((d.clone(), Provenance::DefaultPath));
        }

        for (dir, prov) in dirs {
            if let Some(cand) = probe_dir(cx.fs, &dir, name, cx.want_arch, &cx.env.hwcaps) {
                return Some((cand, prov));
            }
        }
        None
    }
}

/// The proposal keeps glibc's forgiving identity relation (so Shrinkwrap
/// output still loads): one `by_name` table over requested names, sonames,
/// and paths, plus post-open inode identity.
pub struct FutureDedup;

impl DedupPolicy for FutureDedup {
    fn lookup(&self, _cx: &Ctx, st: &mut State, name: PathId) -> Option<usize> {
        st.by_name.get(&name).copied()
    }

    fn absorb(
        &self,
        cx: &Ctx,
        st: &mut State,
        _name: &str,
        cand: &Candidate,
        _provenance: &Provenance,
    ) -> Option<usize> {
        let inode = cx.inode_of(&cand.path)?;
        st.by_inode.get(&inode).copied()
    }

    fn index(&self, _cx: &Ctx, st: &mut State, idx: usize, requested: &str) {
        let soname = intern(st.objects[idx].object.effective_soname());
        let path = intern(&st.objects[idx].path);
        let inode = st.objects[idx].inode;
        st.by_name.entry(intern(requested)).or_insert(idx);
        st.by_name.entry(soname).or_insert(idx);
        st.by_name.entry(path).or_insert(idx);
        st.by_inode.entry(inode).or_insert(idx);
    }
}

/// The proposed loader, bound to one filesystem.
pub struct FutureLoader<'fs> {
    engine: Engine<'fs, FutureSearch, FutureDedup>,
}

impl<'fs> FutureLoader<'fs> {
    pub fn new(fs: &'fs Vfs) -> Self {
        FutureLoader {
            engine: Engine::new(fs, FutureSearch, FutureDedup, EngineConfig::uncharged()),
        }
    }

    pub fn with_env(mut self, env: Environment) -> Self {
        self.engine.set_env(env);
        self
    }

    /// Simulate process startup under the proposed semantics.
    pub fn load(&self, exe_path: &str) -> Result<LoadResult, LoadError> {
        self.engine.run(exe_path, false)
    }
}

impl Loader for FutureLoader<'_> {
    fn name(&self) -> &'static str {
        "future"
    }

    fn load(&self, exe: &str) -> Result<LoadResult, LoadError> {
        FutureLoader::load(self, exe)
    }

    fn resolves_by_soname(&self) -> bool {
        true
    }

    fn honours_preload(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;
    use depchaos_elf::ElfObject;
    use depchaos_elf::SearchPosition::{Append, Prepend};

    #[test]
    fn fig3_paradox_solved_by_pins() {
        let fs = Vfs::local();
        depchaos_workload_paradox(&fs);
        let exe = ElfObject::exe("app")
            .needs("liba.so")
            .needs("libb.so")
            .pin("liba.so", "/opt/dirA/liba.so")
            .pin("libb.so", "/opt/dirB/libb.so")
            .build();
        install(&fs, "/opt/bin/app", &exe).unwrap();
        let r = FutureLoader::new(&fs).with_env(Environment::bare()).load("/opt/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.find("liba.so").unwrap().path, "/opt/dirA/liba.so");
        assert_eq!(r.find("libb.so").unwrap().path, "/opt/dirB/libb.so");
    }

    fn depchaos_workload_paradox(fs: &Vfs) {
        for (dir, name) in [
            ("/opt/dirA", "liba.so"),
            ("/opt/dirA", "libb.so"),
            ("/opt/dirB", "liba.so"),
            ("/opt/dirB", "libb.so"),
        ] {
            install(fs, &format!("{dir}/{name}"), &ElfObject::dso(name).build()).unwrap();
        }
    }

    #[test]
    fn qt_problem_solved_by_inheritable_prepend() {
        // RUNPATH's flaw: an app cannot hand search paths to a library's
        // internal loads. An inheritable prepend can.
        let fs = Vfs::local();
        install(
            &fs,
            "/qt/libqtgui.so",
            &ElfObject::dso("libqtgui.so").needs("libqtplugin.so").build(),
        )
        .unwrap();
        install(&fs, "/app/plugins/libqtplugin.so", &ElfObject::dso("libqtplugin.so").build())
            .unwrap();
        let exe = ElfObject::exe("app")
            .needs("libqtgui.so")
            .search_dir("/qt", Prepend, false) // for the direct dep only
            .search_dir("/app/plugins", Prepend, true) // inherited by QtGui
            .build();
        install(&fs, "/app/bin/app", &exe).unwrap();
        let r = FutureLoader::new(&fs).with_env(Environment::bare()).load("/app/bin/app").unwrap();
        assert!(r.success(), "{:?}", r.failures);
        assert_eq!(r.find("libqtplugin.so").unwrap().path, "/app/plugins/libqtplugin.so");
    }

    #[test]
    fn non_inherited_entry_stays_private() {
        // The flip side: a non-inherited prepend does NOT leak into
        // dependencies' searches (RUNPATH's one good property, kept).
        let fs = Vfs::local();
        install(&fs, "/priv/libleak.so", &ElfObject::dso("libleak.so").build()).unwrap();
        install(&fs, "/libs/libmid.so", &ElfObject::dso("libmid.so").needs("libleak.so").build())
            .unwrap();
        let exe = ElfObject::exe("app")
            .needs("libmid.so")
            .search_dir("/libs", Prepend, false)
            .search_dir("/priv", Prepend, false)
            .build();
        install(&fs, "/bin/app", &exe).unwrap();
        let r = FutureLoader::new(&fs).with_env(Environment::bare()).load("/bin/app").unwrap();
        assert!(!r.success(), "libleak must not be visible to libmid");
    }

    #[test]
    fn append_is_user_overridable_prepend_is_not() {
        // The admin-vs-packager tension from §III-A, resolved by choosing
        // the right position per entry.
        let fs = Vfs::local();
        install(&fs, "/pkg/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(&fs, "/override/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        let env = Environment::bare().with_ld_library_path("/override");

        let pinned =
            ElfObject::exe("pinned").needs("libx.so").search_dir("/pkg", Prepend, false).build();
        install(&fs, "/bin/pinned", &pinned).unwrap();
        let r = FutureLoader::new(&fs).with_env(env.clone()).load("/bin/pinned").unwrap();
        assert_eq!(r.objects[1].path, "/pkg/libx.so", "prepend beats the environment");

        let open =
            ElfObject::exe("open").needs("libx.so").search_dir("/pkg", Append, false).build();
        install(&fs, "/bin/open", &open).unwrap();
        let r = FutureLoader::new(&fs).with_env(env).load("/bin/open").unwrap();
        assert_eq!(r.objects[1].path, "/override/libx.so", "append lets the user override");
    }

    #[test]
    fn rocm_scenario_has_no_interference() {
        // Under glibc, the library's RUNPATH suppressed the app's RPATH and
        // let LD_LIBRARY_PATH hijack transitive loads. Here the library's
        // own (non-inherited) entry and the app's inheritable entry compose:
        // the app's prepend stays in force for the library's dependencies.
        let fs = Vfs::local();
        for v in ["4.3.0", "4.5.0"] {
            let dir = format!("/opt/rocm-{v}/lib");
            install(
                &fs,
                &format!("{dir}/libamdhip64.so"),
                &ElfObject::dso("libamdhip64.so")
                    .needs("libroctracer64.so")
                    .search_dir("$ORIGIN", Append, false)
                    .build(),
            )
            .unwrap();
            install(
                &fs,
                &format!("{dir}/libroctracer64.so"),
                &ElfObject::dso("libroctracer64.so").build(),
            )
            .unwrap();
        }
        let exe = ElfObject::exe("gpu_sim")
            .needs("libamdhip64.so")
            .search_dir("/opt/rocm-4.5.0/lib", Prepend, true)
            .build();
        install(&fs, "/bin/gpu_sim", &exe).unwrap();
        // Hostile module environment pointing at 4.3:
        let env = Environment::bare().with_ld_library_path("/opt/rocm-4.3.0/lib");
        let r = FutureLoader::new(&fs).with_env(env).load("/bin/gpu_sim").unwrap();
        assert!(r.success());
        assert!(
            r.objects.iter().skip(1).all(|o| o.path.starts_with("/opt/rocm-4.5.0")),
            "no mixed versions: {:?}",
            r.paths()
        );
    }

    #[test]
    fn soname_dedup_preserved() {
        // Shrinkwrap-style output still works under the future loader.
        let fs = Vfs::local();
        install(&fs, "/s/liba.so", &ElfObject::dso("liba.so").needs("libb.so").build()).unwrap();
        install(&fs, "/s/libb.so", &ElfObject::dso("libb.so").build()).unwrap();
        let exe = ElfObject::exe("app").needs("/s/liba.so").needs("/s/libb.so").build();
        install(&fs, "/bin/app", &exe).unwrap();
        let r = FutureLoader::new(&fs).with_env(Environment::bare()).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.objects.len(), 3);
    }

    #[test]
    fn usable_through_the_loader_trait() {
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").build()).unwrap();
        let fut = FutureLoader::new(&fs).with_env(Environment::bare());
        let dyn_loader: &dyn Loader = &fut;
        assert_eq!(dyn_loader.name(), "future");
        assert!(dyn_loader.resolves_by_soname());
        assert!(dyn_loader.load("/bin/app").unwrap().success());
    }
}

//! The §III-C *future loader* — the paper's proposal, implemented.
//!
//! > "The constraints we want to express are a combination of options to
//! > inject new paths into the library search path: prepend, append, and
//! > whether to inherit. All but one of the problems listed in Section
//! > III-A can be solved by offering prepend/append and a boolean
//! > propagation flag on each path added to the search space. ... Allowing
//! > the ability to dictate the search space per shared object would give
//! > fine-grained control over the search semantics. This would also solve
//! > the final issue: the ability to load libraries with conflicting
//! > filenames from paths deterministically."
//!
//! Semantics implemented here:
//!
//! * Each object carries [`depchaos_elf::SearchDir`] entries —
//!   `(dir, Prepend|Append, inherit)` — and [`depchaos_elf::DepPin`]s
//!   mapping a soname to an exact path.
//! * Resolution for a request by object `O`:
//!   1. pins of `O`, then inherited pins of ancestors (nearest first);
//!   2. prepend dirs of `O`, then inherited prepends of ancestors;
//!   3. `LD_LIBRARY_PATH`;
//!   4. append dirs of `O`, then inherited appends of ancestors;
//!   5. default directories.
//! * Dedup identical to glibc (soname cache), so Shrinkwrap-style output
//!   still works.
//!
//! The problems this dissolves, each proven in the tests below:
//! the Qt plugin problem (propagation on demand, not all-or-nothing), the
//! ROCm interference (a library's own paths need not suppress its parent's),
//! the admin-override tension (append = user-overridable, prepend = pinned),
//! and Fig 3 (per-dependency pins).

use std::collections::{HashMap, VecDeque};

use depchaos_elf::{ElfObject, SearchPosition};
use depchaos_vfs::{Inode, Vfs};

use crate::env::Environment;
use crate::resolve::{expand_entry, probe_dir, probe_exact, Candidate, Provenance, Resolution};
use crate::result::{Failure, LoadError, LoadEvent, LoadResult, LoadedObject};

/// The proposed loader, bound to one filesystem.
pub struct FutureLoader<'fs> {
    fs: &'fs Vfs,
    env: Environment,
}

struct State {
    objects: Vec<LoadedObject>,
    by_name: HashMap<String, usize>,
    by_inode: HashMap<Inode, usize>,
    events: Vec<LoadEvent>,
    failures: Vec<Failure>,
}

impl<'fs> FutureLoader<'fs> {
    pub fn new(fs: &'fs Vfs) -> Self {
        FutureLoader { fs, env: Environment::default() }
    }

    pub fn with_env(mut self, env: Environment) -> Self {
        self.env = env;
        self
    }

    /// Simulate process startup under the proposed semantics.
    pub fn load(&self, exe_path: &str) -> Result<LoadResult, LoadError> {
        let before = self.fs.snapshot();
        let t0 = self.fs.elapsed_ns();
        let mut st = State {
            objects: Vec::new(),
            by_name: HashMap::new(),
            by_inode: HashMap::new(),
            events: Vec::new(),
            failures: Vec::new(),
        };

        if self.fs.try_open(exe_path).is_none() {
            return Err(LoadError::ExeNotFound(exe_path.to_string()));
        }
        let bytes = self
            .fs
            .read_file(exe_path)
            .map_err(|_| LoadError::ExeNotFound(exe_path.to_string()))?;
        let exe = ElfObject::parse(&bytes)
            .map_err(|_| LoadError::ExeUnparseable(exe_path.to_string()))?;
        self.register(&mut st, exe_path, Candidate { path: exe_path.to_string(), object: exe }, None, Provenance::Executable);

        let mut queue: VecDeque<(usize, String)> =
            st.objects[0].object.needed.iter().map(|n| (0usize, n.clone())).collect();
        let mut next_obj = st.objects.len();
        while let Some((req, name)) = queue.pop_front() {
            let resolution = self.resolve(&mut st, req, &name);
            if let Resolution::NotFound = resolution {
                st.failures.push(Failure {
                    requester: st.objects[req].object.name.clone(),
                    name: name.clone(),
                });
            }
            st.events.push(LoadEvent { requester: req, name, resolution });
            while next_obj < st.objects.len() {
                for n in &st.objects[next_obj].object.needed {
                    queue.push_back((next_obj, n.clone()));
                }
                next_obj += 1;
            }
        }

        Ok(LoadResult {
            syscalls: self.fs.snapshot().since(&before),
            time_ns: self.fs.elapsed_ns() - t0,
            objects: st.objects,
            events: st.events,
            failures: st.failures,
        })
    }

    fn register(
        &self,
        st: &mut State,
        requested: &str,
        cand: Candidate,
        parent: Option<usize>,
        provenance: Provenance,
    ) -> usize {
        let idx = st.objects.len();
        let canonical = self.fs.canonicalize(&cand.path).unwrap_or_else(|_| cand.path.clone());
        let inode = self.fs.peek(&canonical).map(|m| m.inode).unwrap_or(Inode(0));
        st.by_name.entry(requested.to_string()).or_insert(idx);
        st.by_name.entry(cand.object.effective_soname().to_string()).or_insert(idx);
        st.by_name.entry(cand.path.clone()).or_insert(idx);
        st.by_inode.entry(inode).or_insert(idx);
        st.objects.push(LoadedObject {
            idx,
            path: cand.path,
            canonical,
            inode,
            object: cand.object,
            parent,
            requested_as: vec![requested.to_string()],
            provenance,
        });
        idx
    }

    fn resolve(&self, st: &mut State, requester: usize, name: &str) -> Resolution {
        let want_arch = st.objects[0].object.machine;

        // Pins first: the requester's own, then inherited ones. A pinned
        // path participates in dedup like any other request.
        // Pins are inheritable by default (the proposal leaves this open;
        // inheritance is the useful choice) with the nearest object winning.
        let mut pinned: Option<String> = None;
        let mut idx = Some(requester);
        while let Some(i) = idx {
            for p in &st.objects[i].object.pins {
                if p.soname == name && pinned.is_none() {
                    pinned = Some(expand_entry(&p.path, &st.objects[i].path));
                }
            }
            idx = st.objects[i].parent;
        }
        if let Some(path) = pinned {
            if let Some(&i) = st.by_name.get(&path) {
                return Resolution::Deduped { path: st.objects[i].path.clone() };
            }
            return match probe_exact(self.fs, &path, want_arch) {
                Some(cand) => self.commit(st, requester, name, cand, Provenance::DirectPath),
                None => Resolution::NotFound,
            };
        }

        if name.contains('/') {
            if let Some(&i) = st.by_name.get(name) {
                return Resolution::Deduped { path: st.objects[i].path.clone() };
            }
            return match probe_exact(self.fs, name, want_arch) {
                Some(cand) => self.commit(st, requester, name, cand, Provenance::DirectPath),
                None => Resolution::NotFound,
            };
        }

        if let Some(&i) = st.by_name.get(name) {
            return Resolution::Deduped { path: st.objects[i].path.clone() };
        }

        // Assemble the search list: prepends (own, then inherited), the
        // environment, appends (own, then inherited), defaults.
        let mut dirs: Vec<(String, Provenance)> = Vec::new();
        let collect = |st: &State, pos: SearchPosition, out: &mut Vec<(String, Provenance)>| {
            let mut idx = Some(requester);
            let mut own = true;
            while let Some(i) = idx {
                let obj = &st.objects[i];
                for sd in &obj.object.search_dirs {
                    if sd.position == pos && (own || sd.inherit) {
                        out.push((
                            expand_entry(&sd.dir, &obj.path),
                            Provenance::Rpath { owner: obj.object.name.clone() },
                        ));
                    }
                }
                idx = obj.parent;
                own = false;
            }
        };
        collect(st, SearchPosition::Prepend, &mut dirs);
        for d in &self.env.ld_library_path {
            dirs.push((d.clone(), Provenance::LdLibraryPath));
        }
        collect(st, SearchPosition::Append, &mut dirs);
        for d in &self.env.default_paths {
            dirs.push((d.clone(), Provenance::DefaultPath));
        }

        for (dir, prov) in dirs {
            if let Some(cand) = probe_dir(self.fs, &dir, name, want_arch, &self.env.hwcaps) {
                return self.commit(st, requester, name, cand, prov);
            }
        }
        Resolution::NotFound
    }

    fn commit(
        &self,
        st: &mut State,
        requester: usize,
        name: &str,
        cand: Candidate,
        provenance: Provenance,
    ) -> Resolution {
        let canonical = self.fs.canonicalize(&cand.path).unwrap_or_else(|_| cand.path.clone());
        if let Ok(meta) = self.fs.peek(&canonical) {
            if let Some(&i) = st.by_inode.get(&meta.inode) {
                return Resolution::Deduped { path: st.objects[i].path.clone() };
            }
        }
        let path = cand.path.clone();
        self.register(st, name, cand, Some(requester), provenance.clone());
        Resolution::Loaded { path, provenance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;
    use depchaos_elf::SearchPosition::{Append, Prepend};

    #[test]
    fn fig3_paradox_solved_by_pins() {
        let fs = Vfs::local();
        depchaos_workload_paradox(&fs);
        let exe = ElfObject::exe("app")
            .needs("liba.so")
            .needs("libb.so")
            .pin("liba.so", "/opt/dirA/liba.so")
            .pin("libb.so", "/opt/dirB/libb.so")
            .build();
        install(&fs, "/opt/bin/app", &exe).unwrap();
        let r = FutureLoader::new(&fs).with_env(Environment::bare()).load("/opt/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.find("liba.so").unwrap().path, "/opt/dirA/liba.so");
        assert_eq!(r.find("libb.so").unwrap().path, "/opt/dirB/libb.so");
    }

    fn depchaos_workload_paradox(fs: &Vfs) {
        for (dir, name) in
            [("/opt/dirA", "liba.so"), ("/opt/dirA", "libb.so"), ("/opt/dirB", "liba.so"), ("/opt/dirB", "libb.so")]
        {
            install(fs, &format!("{dir}/{name}"), &ElfObject::dso(name).build()).unwrap();
        }
    }

    #[test]
    fn qt_problem_solved_by_inheritable_prepend() {
        // RUNPATH's flaw: an app cannot hand search paths to a library's
        // internal loads. An inheritable prepend can.
        let fs = Vfs::local();
        install(
            &fs,
            "/qt/libqtgui.so",
            &ElfObject::dso("libqtgui.so").needs("libqtplugin.so").build(),
        )
        .unwrap();
        install(&fs, "/app/plugins/libqtplugin.so", &ElfObject::dso("libqtplugin.so").build())
            .unwrap();
        let exe = ElfObject::exe("app")
            .needs("libqtgui.so")
            .search_dir("/qt", Prepend, false) // for the direct dep only
            .search_dir("/app/plugins", Prepend, true) // inherited by QtGui
            .build();
        install(&fs, "/app/bin/app", &exe).unwrap();
        let r = FutureLoader::new(&fs).with_env(Environment::bare()).load("/app/bin/app").unwrap();
        assert!(r.success(), "{:?}", r.failures);
        assert_eq!(r.find("libqtplugin.so").unwrap().path, "/app/plugins/libqtplugin.so");
    }

    #[test]
    fn non_inherited_entry_stays_private() {
        // The flip side: a non-inherited prepend does NOT leak into
        // dependencies' searches (RUNPATH's one good property, kept).
        let fs = Vfs::local();
        install(&fs, "/priv/libleak.so", &ElfObject::dso("libleak.so").build()).unwrap();
        install(&fs, "/libs/libmid.so", &ElfObject::dso("libmid.so").needs("libleak.so").build())
            .unwrap();
        let exe = ElfObject::exe("app")
            .needs("libmid.so")
            .search_dir("/libs", Prepend, false)
            .search_dir("/priv", Prepend, false)
            .build();
        install(&fs, "/bin/app", &exe).unwrap();
        let r = FutureLoader::new(&fs).with_env(Environment::bare()).load("/bin/app").unwrap();
        assert!(!r.success(), "libleak must not be visible to libmid");
    }

    #[test]
    fn append_is_user_overridable_prepend_is_not() {
        // The admin-vs-packager tension from §III-A, resolved by choosing
        // the right position per entry.
        let fs = Vfs::local();
        install(&fs, "/pkg/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(&fs, "/override/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        let env = Environment::bare().with_ld_library_path("/override");

        let pinned = ElfObject::exe("pinned").needs("libx.so").search_dir("/pkg", Prepend, false).build();
        install(&fs, "/bin/pinned", &pinned).unwrap();
        let r = FutureLoader::new(&fs).with_env(env.clone()).load("/bin/pinned").unwrap();
        assert_eq!(r.objects[1].path, "/pkg/libx.so", "prepend beats the environment");

        let open = ElfObject::exe("open").needs("libx.so").search_dir("/pkg", Append, false).build();
        install(&fs, "/bin/open", &open).unwrap();
        let r = FutureLoader::new(&fs).with_env(env).load("/bin/open").unwrap();
        assert_eq!(r.objects[1].path, "/override/libx.so", "append lets the user override");
    }

    #[test]
    fn rocm_scenario_has_no_interference() {
        // Under glibc, the library's RUNPATH suppressed the app's RPATH and
        // let LD_LIBRARY_PATH hijack transitive loads. Here the library's
        // own (non-inherited) entry and the app's inheritable entry compose:
        // the app's prepend stays in force for the library's dependencies.
        let fs = Vfs::local();
        for v in ["4.3.0", "4.5.0"] {
            let dir = format!("/opt/rocm-{v}/lib");
            install(
                &fs,
                &format!("{dir}/libamdhip64.so"),
                &ElfObject::dso("libamdhip64.so")
                    .needs("libroctracer64.so")
                    .search_dir("$ORIGIN", Append, false)
                    .build(),
            )
            .unwrap();
            install(&fs, &format!("{dir}/libroctracer64.so"), &ElfObject::dso("libroctracer64.so").build())
                .unwrap();
        }
        let exe = ElfObject::exe("gpu_sim")
            .needs("libamdhip64.so")
            .search_dir("/opt/rocm-4.5.0/lib", Prepend, true)
            .build();
        install(&fs, "/bin/gpu_sim", &exe).unwrap();
        // Hostile module environment pointing at 4.3:
        let env = Environment::bare().with_ld_library_path("/opt/rocm-4.3.0/lib");
        let r = FutureLoader::new(&fs).with_env(env).load("/bin/gpu_sim").unwrap();
        assert!(r.success());
        assert!(
            r.objects.iter().skip(1).all(|o| o.path.starts_with("/opt/rocm-4.5.0")),
            "no mixed versions: {:?}",
            r.paths()
        );
    }

    #[test]
    fn soname_dedup_preserved() {
        // Shrinkwrap-style output still works under the future loader.
        let fs = Vfs::local();
        install(&fs, "/s/liba.so", &ElfObject::dso("liba.so").needs("libb.so").build()).unwrap();
        install(&fs, "/s/libb.so", &ElfObject::dso("libb.so").build()).unwrap();
        let exe = ElfObject::exe("app").needs("/s/liba.so").needs("/s/libb.so").build();
        install(&fs, "/bin/app", &exe).unwrap();
        let r = FutureLoader::new(&fs).with_env(Environment::bare()).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.objects.len(), 3);
    }
}

//! A Zircon-style loader service (§III-C) — resolution fully delegated to a
//! policy object, BFS driven by the shared [`crate::engine`].
//!
//! > "The Fuchsia kernel and Zircon system loader implement a service to
//! > request dynamic libraries at load time, allowing load configurations
//! > to be changed between libraries during loading. ... Given the option
//! > to change the way dependencies are encoded in binaries could allow a
//! > system like Nix or Spack to store the hash of the library being
//! > requested ... One can envision a system that would allow a user to
//! > take a binary set up that way and ask a tool to provide all of the
//! > dependencies it needs in place of distributing a static binary or a
//! > container."
//!
//! [`ServiceLoader`] delegates every needed-entry resolution to a
//! [`LoaderService`] policy object. [`HashStoreService`] implements the
//! paper's envisioned scheme: needed entries are `sha:<digest>` strings
//! resolved against a content-addressed index, and
//! [`HashStoreService::manifest`] answers the "provide all of the
//! dependencies it needs" question without running the binary.

use std::collections::HashMap;
use std::sync::Arc;

use depchaos_vfs::{intern, PathId, Vfs};

use crate::api::Loader;
use crate::engine::{Ctx, DedupPolicy, Engine, EngineConfig, SearchPolicy, State};
use crate::resolve::{probe_exact, Candidate, Provenance};
use crate::result::{LoadError, LoadResult};

/// A resolution policy consulted once per needed entry.
pub trait LoaderService {
    /// Map `(requester path, needed string)` to an absolute path, or `None`
    /// for "cannot supply".
    fn resolve(&self, requester: &str, name: &str) -> Option<String>;
}

/// Shared services work too — a backend factory can hand the same index to
/// many loader instances.
impl<S: LoaderService + ?Sized> LoaderService for Arc<S> {
    fn resolve(&self, requester: &str, name: &str) -> Option<String> {
        (**self).resolve(requester, name)
    }
}

/// Delegation as a [`SearchPolicy`]: symbolic requests — bare names, hash
/// references — go to the service; explicit paths (e.g. in shrinkwrapped
/// output) are opened directly, as a real loader service would. Either way
/// the answer is opened and ABI-checked like any other candidate.
pub struct ServiceSearch<S: LoaderService> {
    pub service: S,
}

impl<S: LoaderService> SearchPolicy for ServiceSearch<S> {
    fn locate(
        &self,
        cx: &Ctx,
        st: &State,
        requester: usize,
        name: &str,
    ) -> Option<(Candidate, Provenance)> {
        if name.contains('/') {
            return probe_exact(cx.fs, name, cx.want_arch).map(|c| (c, Provenance::DirectPath));
        }
        self.service
            .resolve(&st.objects[requester].path, name)
            .and_then(|p| probe_exact(cx.fs, &p, cx.want_arch))
            .map(|c| (c, Provenance::LdSoCache))
    }
}

/// Request-string + soname identity like glibc's front table, backed by
/// post-open inode identity so a hash reference and an explicit path to the
/// same store file dedup to one mapping.
pub struct ServiceDedup;

impl DedupPolicy for ServiceDedup {
    fn lookup(&self, _cx: &Ctx, st: &mut State, name: PathId) -> Option<usize> {
        st.by_name.get(&name).copied()
    }

    fn absorb(
        &self,
        cx: &Ctx,
        st: &mut State,
        name: &str,
        cand: &Candidate,
        _provenance: &Provenance,
    ) -> Option<usize> {
        let inode = cx.inode_of(&cand.path)?;
        let idx = *st.by_inode.get(&inode)?;
        st.by_name.insert(intern(name), idx);
        Some(idx)
    }

    fn index(&self, _cx: &Ctx, st: &mut State, idx: usize, requested: &str) {
        st.by_name.insert(intern(requested), idx);
        if !matches!(st.objects[idx].provenance, Provenance::Executable) {
            st.by_name.insert(intern(st.objects[idx].object.effective_soname()), idx);
        }
        st.by_inode.entry(st.objects[idx].inode).or_insert(idx);
    }
}

/// The loader half: BFS + dedup from the shared engine, resolution fully
/// delegated to the service.
pub struct ServiceLoader<'fs, S: LoaderService> {
    engine: Engine<'fs, ServiceSearch<S>, ServiceDedup>,
}

impl<'fs, S: LoaderService> ServiceLoader<'fs, S> {
    pub fn new(fs: &'fs Vfs, service: S) -> Self {
        ServiceLoader {
            engine: Engine::new(
                fs,
                ServiceSearch { service },
                ServiceDedup,
                EngineConfig::uncharged(),
            ),
        }
    }

    pub fn service(&self) -> &S {
        &self.engine.search.service
    }

    /// Simulate process startup with service-side resolution.
    pub fn load(&self, exe_path: &str) -> Result<LoadResult, LoadError> {
        self.engine.run(exe_path, false)
    }
}

impl<S: LoaderService> Loader for ServiceLoader<'_, S> {
    fn name(&self) -> &'static str {
        "service"
    }

    fn load(&self, exe: &str) -> Result<LoadResult, LoadError> {
        ServiceLoader::load(self, exe)
    }

    fn resolves_by_soname(&self) -> bool {
        true
    }

    fn honours_preload(&self) -> bool {
        false
    }
}

/// The paper's envisioned content-addressed scheme: needed entries are
/// `sha:<digest>`; the service owns the digest → store-path index. Binaries
/// not yet rewritten to `sha:` references can still resolve through the
/// store via [`HashStoreService::alias`] — the migration path for existing
/// soname-addressed needed lists.
#[derive(Debug, Default)]
pub struct HashStoreService {
    index: HashMap<String, String>,
    aliases: HashMap<String, String>,
}

impl HashStoreService {
    pub fn new() -> Self {
        Self::default()
    }

    /// A deterministic stand-in digest for `bytes` (FNV-1a hex).
    pub fn digest(bytes: &[u8]) -> String {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        format!("{h:016x}")
    }

    /// Register a store file under its content digest; returns the
    /// `sha:<digest>` needed-string to embed in dependents.
    pub fn register(&mut self, fs: &Vfs, path: &str) -> Result<String, String> {
        let bytes = fs.peek_file(path).map_err(|e| e.to_string())?;
        let d = Self::digest(&bytes);
        self.index.insert(d.clone(), path.to_string());
        Ok(format!("sha:{d}"))
    }

    /// "Ask a tool to provide all of the dependencies it needs": resolve the
    /// full transitive manifest of a binary without loading it.
    pub fn manifest(&self, fs: &Vfs, exe_path: &str) -> Result<Vec<(String, String)>, String> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut queue = vec![exe_path.to_string()];
        while let Some(p) = queue.pop() {
            let obj = depchaos_elf::io::peek_object(fs, &p).map_err(|e| e.to_string())?;
            for n in &obj.needed {
                if !seen.insert(n.clone()) {
                    continue;
                }
                match self.lookup(n) {
                    Some(path) => {
                        out.push((n.clone(), path.to_string()));
                        queue.push(path.to_string());
                    }
                    None => return Err(format!("unprovidable dependency: {n}")),
                }
            }
        }
        Ok(out)
    }

    /// Serve `name` requests (e.g. a bare soname) with the store file at
    /// `path` — how a binary whose needed list predates hash references
    /// still loads entirely through the service's index. Unlike digests,
    /// sonames can collide: the displaced mapping is returned so callers
    /// can detect that two store files claim the same name (the ambiguity
    /// content addressing exists to remove).
    pub fn alias(&mut self, name: impl Into<String>, path: impl Into<String>) -> Option<String> {
        self.aliases.insert(name.into(), path.into())
    }

    /// Register `path` under its content digest *and* under its basename,
    /// so both `sha:<digest>` and soname requests resolve to it. Errors —
    /// leaving the index untouched — if the basename already aliases a
    /// *different* store file.
    pub fn register_with_soname(&mut self, fs: &Vfs, path: &str) -> Result<String, String> {
        let base = path.rsplit('/').next();
        if let Some(base) = base {
            if let Some(existing) = self.aliases.get(base).filter(|old| old.as_str() != path) {
                return Err(format!("soname {base:?} already aliased to {existing}"));
            }
        }
        let r = self.register(fs, path)?;
        if let Some(base) = base {
            self.alias(base, path);
        }
        Ok(r)
    }

    fn lookup(&self, name: &str) -> Option<&str> {
        name.strip_prefix("sha:")
            .and_then(|d| self.index.get(d))
            .or_else(|| self.aliases.get(name))
            .map(String::as_str)
    }
}

impl LoaderService for HashStoreService {
    fn resolve(&self, _requester: &str, name: &str) -> Option<String> {
        self.lookup(name).map(String::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;
    use depchaos_elf::ElfObject;

    /// Build a hash-addressed world: libb, then liba needing sha(libb),
    /// then an exe needing sha(liba).
    fn world() -> (Vfs, HashStoreService, String) {
        let fs = Vfs::local();
        let mut svc = HashStoreService::new();
        install(&fs, "/store/bb/libb.so", &ElfObject::dso("libb.so").build()).unwrap();
        let b_ref = svc.register(&fs, "/store/bb/libb.so").unwrap();
        install(&fs, "/store/aa/liba.so", &ElfObject::dso("liba.so").needs(b_ref).build()).unwrap();
        let a_ref = svc.register(&fs, "/store/aa/liba.so").unwrap();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs(a_ref).build()).unwrap();
        (fs, svc, "/bin/app".to_string())
    }

    #[test]
    fn hash_addressed_load_works() {
        let (fs, svc, exe) = world();
        let r = ServiceLoader::new(&fs, svc).load(&exe).unwrap();
        assert!(r.success(), "{:?}", r.failures);
        assert_eq!(r.paths(), vec!["/bin/app", "/store/aa/liba.so", "/store/bb/libb.so"]);
    }

    #[test]
    fn missing_digest_is_a_precise_error() {
        let (fs, svc, exe) = world();
        // An exe requesting an unregistered digest fails with the digest in
        // hand — "determine with far greater detail which version is
        // expected if it is not available".
        install(&fs, "/bin/app2", &ElfObject::exe("app2").needs("sha:deadbeefdeadbeef").build())
            .unwrap();
        let r = ServiceLoader::new(&fs, svc).load("/bin/app2").unwrap();
        assert!(!r.success());
        assert_eq!(r.failures[0].name, "sha:deadbeefdeadbeef");
        let _ = exe;
    }

    #[test]
    fn manifest_without_loading() {
        let (fs, svc, exe) = world();
        let manifest = svc.manifest(&fs, &exe).unwrap();
        assert_eq!(manifest.len(), 2);
        assert!(manifest.iter().any(|(_, p)| p == "/store/bb/libb.so"));
        // No accounted loader work happened.
        assert_eq!(fs.snapshot().total(), 0);
    }

    #[test]
    fn manifest_reports_unprovidable() {
        let fs = Vfs::local();
        let svc = HashStoreService::new();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("sha:0000").build()).unwrap();
        let err = svc.manifest(&fs, "/bin/app").unwrap_err();
        assert!(err.contains("sha:0000"));
    }

    #[test]
    fn soname_aliases_serve_unmigrated_binaries() {
        let fs = Vfs::local();
        let mut svc = HashStoreService::new();
        install(&fs, "/store/bb/libb.so", &ElfObject::dso("libb.so").build()).unwrap();
        svc.register_with_soname(&fs, "/store/bb/libb.so").unwrap();
        // The exe still requests by bare soname — the index answers anyway.
        install(&fs, "/bin/old", &ElfObject::exe("old").needs("libb.so").build()).unwrap();
        let r = ServiceLoader::new(&fs, svc).load("/bin/old").unwrap();
        assert!(r.success(), "{:?}", r.failures);
        assert_eq!(r.paths(), vec!["/bin/old", "/store/bb/libb.so"]);
    }

    #[test]
    fn conflicting_soname_aliases_are_an_error() {
        let fs = Vfs::local();
        let mut svc = HashStoreService::new();
        install(&fs, "/store/aa/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(&fs, "/store/bb/libx.so", &ElfObject::dso("libx.so").soname("libx2").build())
            .unwrap();
        svc.register_with_soname(&fs, "/store/aa/libx.so").unwrap();
        // Re-registering the same file is fine; a different file under the
        // same basename is the ambiguity the store must reject.
        svc.register_with_soname(&fs, "/store/aa/libx.so").unwrap();
        let err = svc.register_with_soname(&fs, "/store/bb/libx.so").unwrap_err();
        assert!(err.contains("libx.so"), "{err}");
        // The rejection is a no-op: the original mapping still serves, and
        // the rejected file was not indexed under its digest either.
        assert_eq!(svc.resolve("", "libx.so").as_deref(), Some("/store/aa/libx.so"));
        let bb_digest = HashStoreService::digest(&fs.peek_file("/store/bb/libx.so").unwrap());
        assert_eq!(svc.resolve("", &format!("sha:{bb_digest}")), None);
    }

    #[test]
    fn digest_changes_with_content() {
        let a = HashStoreService::digest(b"one");
        let b = HashStoreService::digest(b"two");
        assert_ne!(a, b);
        assert_eq!(a, HashStoreService::digest(b"one"));
    }

    #[test]
    fn shared_service_through_arc_and_trait_object() {
        let (fs, svc, exe) = world();
        let shared = Arc::new(svc);
        let loader = ServiceLoader::new(&fs, shared.clone());
        let dyn_loader: &dyn Loader = &loader;
        assert_eq!(dyn_loader.name(), "service");
        assert!(dyn_loader.load(&exe).unwrap().success());
        // The same index keeps serving other instances.
        assert!(ServiceLoader::new(&fs, shared).load(&exe).unwrap().success());
    }
}

//! A Zircon-style loader service (§III-C).
//!
//! > "The Fuchsia kernel and Zircon system loader implement a service to
//! > request dynamic libraries at load time, allowing load configurations
//! > to be changed between libraries during loading. ... Given the option
//! > to change the way dependencies are encoded in binaries could allow a
//! > system like Nix or Spack to store the hash of the library being
//! > requested ... One can envision a system that would allow a user to
//! > take a binary set up that way and ask a tool to provide all of the
//! > dependencies it needs in place of distributing a static binary or a
//! > container."
//!
//! [`ServiceLoader`] delegates every needed-entry resolution to a
//! [`LoaderService`] policy object. [`HashStoreService`] implements the
//! paper's envisioned scheme: needed entries are `sha:<digest>` strings
//! resolved against a content-addressed index, and
//! [`HashStoreService::manifest`] answers the "provide all of the
//! dependencies it needs" question without running the binary.

use std::collections::{HashMap, VecDeque};

use depchaos_elf::ElfObject;
use depchaos_vfs::{Inode, Vfs};

use crate::resolve::{probe_exact, Provenance, Resolution};
use crate::result::{Failure, LoadError, LoadEvent, LoadResult, LoadedObject};

/// A resolution policy consulted once per needed entry.
pub trait LoaderService {
    /// Map `(requester path, needed string)` to an absolute path, or `None`
    /// for "cannot supply".
    fn resolve(&self, requester: &str, name: &str) -> Option<String>;
}

/// The loader half: BFS + dedup identical to glibc, resolution fully
/// delegated to the service.
pub struct ServiceLoader<'fs, S: LoaderService> {
    fs: &'fs Vfs,
    service: S,
}

impl<'fs, S: LoaderService> ServiceLoader<'fs, S> {
    pub fn new(fs: &'fs Vfs, service: S) -> Self {
        ServiceLoader { fs, service }
    }

    pub fn service(&self) -> &S {
        &self.service
    }

    /// Simulate process startup with service-side resolution.
    pub fn load(&self, exe_path: &str) -> Result<LoadResult, LoadError> {
        let before = self.fs.snapshot();
        let t0 = self.fs.elapsed_ns();
        let mut objects: Vec<LoadedObject> = Vec::new();
        let mut by_name: HashMap<String, usize> = HashMap::new();
        let mut events = Vec::new();
        let mut failures = Vec::new();

        if self.fs.try_open(exe_path).is_none() {
            return Err(LoadError::ExeNotFound(exe_path.to_string()));
        }
        let bytes = self
            .fs
            .read_file(exe_path)
            .map_err(|_| LoadError::ExeNotFound(exe_path.to_string()))?;
        let exe = ElfObject::parse(&bytes)
            .map_err(|_| LoadError::ExeUnparseable(exe_path.to_string()))?;
        let want_arch = exe.machine;
        objects.push(LoadedObject {
            idx: 0,
            path: exe_path.to_string(),
            canonical: self.fs.canonicalize(exe_path).unwrap_or_else(|_| exe_path.to_string()),
            inode: self.fs.peek(exe_path).map(|m| m.inode).unwrap_or(Inode(0)),
            object: exe,
            parent: None,
            requested_as: vec![exe_path.to_string()],
            provenance: Provenance::Executable,
        });
        by_name.insert(exe_path.to_string(), 0);

        let mut queue: VecDeque<(usize, String)> =
            objects[0].object.needed.iter().map(|n| (0usize, n.clone())).collect();
        let mut next_obj = objects.len();
        while let Some((req, name)) = queue.pop_front() {
            let resolution = if let Some(&i) = by_name.get(&name) {
                Resolution::Deduped { path: objects[i].path.clone() }
            } else {
                match self
                    .service
                    .resolve(&objects[req].path, &name)
                    .and_then(|p| probe_exact(self.fs, &p, want_arch))
                {
                    Some(cand) => {
                        let idx = objects.len();
                        let canonical = self
                            .fs
                            .canonicalize(&cand.path)
                            .unwrap_or_else(|_| cand.path.clone());
                        let inode =
                            self.fs.peek(&canonical).map(|m| m.inode).unwrap_or(Inode(0));
                        by_name.insert(name.clone(), idx);
                        by_name.insert(cand.object.effective_soname().to_string(), idx);
                        let path = cand.path.clone();
                        objects.push(LoadedObject {
                            idx,
                            path: cand.path,
                            canonical,
                            inode,
                            object: cand.object,
                            parent: Some(req),
                            requested_as: vec![name.clone()],
                            provenance: Provenance::LdSoCache,
                        });
                        Resolution::Loaded { path, provenance: Provenance::LdSoCache }
                    }
                    None => Resolution::NotFound,
                }
            };
            if let Resolution::NotFound = resolution {
                failures.push(Failure {
                    requester: objects[req].object.name.clone(),
                    name: name.clone(),
                });
            }
            events.push(LoadEvent { requester: req, name, resolution });
            while next_obj < objects.len() {
                for n in &objects[next_obj].object.needed {
                    queue.push_back((next_obj, n.clone()));
                }
                next_obj += 1;
            }
        }

        Ok(LoadResult {
            syscalls: self.fs.snapshot().since(&before),
            time_ns: self.fs.elapsed_ns() - t0,
            objects,
            events,
            failures,
        })
    }
}

/// The paper's envisioned content-addressed scheme: needed entries are
/// `sha:<digest>`; the service owns the digest → store-path index.
#[derive(Debug, Default)]
pub struct HashStoreService {
    index: HashMap<String, String>,
}

impl HashStoreService {
    pub fn new() -> Self {
        Self::default()
    }

    /// A deterministic stand-in digest for `bytes` (FNV-1a hex).
    pub fn digest(bytes: &[u8]) -> String {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        format!("{h:016x}")
    }

    /// Register a store file under its content digest; returns the
    /// `sha:<digest>` needed-string to embed in dependents.
    pub fn register(&mut self, fs: &Vfs, path: &str) -> Result<String, String> {
        let bytes = fs.peek_file(path).map_err(|e| e.to_string())?;
        let d = Self::digest(&bytes);
        self.index.insert(d.clone(), path.to_string());
        Ok(format!("sha:{d}"))
    }

    /// "Ask a tool to provide all of the dependencies it needs": resolve the
    /// full transitive manifest of a binary without loading it.
    pub fn manifest(&self, fs: &Vfs, exe_path: &str) -> Result<Vec<(String, String)>, String> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut queue = vec![exe_path.to_string()];
        while let Some(p) = queue.pop() {
            let obj = depchaos_elf::io::peek_object(fs, &p).map_err(|e| e.to_string())?;
            for n in &obj.needed {
                if !seen.insert(n.clone()) {
                    continue;
                }
                match self.lookup(n) {
                    Some(path) => {
                        out.push((n.clone(), path.to_string()));
                        queue.push(path.to_string());
                    }
                    None => return Err(format!("unprovidable dependency: {n}")),
                }
            }
        }
        Ok(out)
    }

    fn lookup(&self, name: &str) -> Option<&str> {
        name.strip_prefix("sha:").and_then(|d| self.index.get(d)).map(String::as_str)
    }
}

impl LoaderService for HashStoreService {
    fn resolve(&self, _requester: &str, name: &str) -> Option<String> {
        self.lookup(name).map(String::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;
    use depchaos_elf::ElfObject;

    /// Build a hash-addressed world: libb, then liba needing sha(libb),
    /// then an exe needing sha(liba).
    fn world() -> (Vfs, HashStoreService, String) {
        let fs = Vfs::local();
        let mut svc = HashStoreService::new();
        install(&fs, "/store/bb/libb.so", &ElfObject::dso("libb.so").build()).unwrap();
        let b_ref = svc.register(&fs, "/store/bb/libb.so").unwrap();
        install(&fs, "/store/aa/liba.so", &ElfObject::dso("liba.so").needs(b_ref).build())
            .unwrap();
        let a_ref = svc.register(&fs, "/store/aa/liba.so").unwrap();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs(a_ref).build()).unwrap();
        (fs, svc, "/bin/app".to_string())
    }

    #[test]
    fn hash_addressed_load_works() {
        let (fs, svc, exe) = world();
        let r = ServiceLoader::new(&fs, svc).load(&exe).unwrap();
        assert!(r.success(), "{:?}", r.failures);
        assert_eq!(r.paths(), vec!["/bin/app", "/store/aa/liba.so", "/store/bb/libb.so"]);
    }

    #[test]
    fn missing_digest_is_a_precise_error() {
        let (fs, svc, exe) = world();
        // An exe requesting an unregistered digest fails with the digest in
        // hand — "determine with far greater detail which version is
        // expected if it is not available".
        install(
            &fs,
            "/bin/app2",
            &ElfObject::exe("app2").needs("sha:deadbeefdeadbeef").build(),
        )
        .unwrap();
        let r = ServiceLoader::new(&fs, svc).load("/bin/app2").unwrap();
        assert!(!r.success());
        assert_eq!(r.failures[0].name, "sha:deadbeefdeadbeef");
        let _ = exe;
    }

    #[test]
    fn manifest_without_loading() {
        let (fs, svc, exe) = world();
        let manifest = svc.manifest(&fs, &exe).unwrap();
        assert_eq!(manifest.len(), 2);
        assert!(manifest.iter().any(|(_, p)| p == "/store/bb/libb.so"));
        // No accounted loader work happened.
        assert_eq!(fs.snapshot().total(), 0);
    }

    #[test]
    fn manifest_reports_unprovidable() {
        let fs = Vfs::local();
        let svc = HashStoreService::new();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("sha:0000").build()).unwrap();
        let err = svc.manifest(&fs, "/bin/app").unwrap_err();
        assert!(err.contains("sha:0000"));
    }

    #[test]
    fn digest_changes_with_content() {
        let a = HashStoreService::digest(b"one");
        let b = HashStoreService::digest(b"two");
        assert_ne!(a, b);
        assert_eq!(a, HashStoreService::digest(b"one"));
    }
}

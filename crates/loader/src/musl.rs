//! The musl `ld.so` model — the divergent semantics that make Shrinkwrap
//! glibc-only (§IV) — as an instantiation of the shared [`crate::engine`].
//!
//! Differences from glibc, all load-bearing for the paper and all encoded
//! in the two policy values below:
//!
//! * **No soname cache** ([`MuslDedup`]). Dedup happens by requested-name
//!   string (for bare names, against the *shortname* of libraries that were
//!   themselves loaded by bare name) and by `(dev,inode)` after opening a
//!   candidate. An object loaded via an absolute path does **not** satisfy
//!   a later bare-soname request unless the search happens to find the same
//!   file — so a shrinkwrapped binary may load duplicates or fail outright.
//! * **RPATH ≡ RUNPATH** ([`MuslSearch`]), both inherited through the
//!   `needed_by` chain but searched **after** `LD_LIBRARY_PATH` (musl
//!   `dynlink.c`: `env_path` first, then the requester chain's rpath, then
//!   the system path). The paper notes this meld "would actually solve a
//!   number of problems with RUNPATH, but ... is non-standard".
//! * No hwcaps subdirectories, no ld.so.cache.

use depchaos_vfs::{intern, PathId, Vfs};

use crate::api::Loader;
use crate::engine::{Ctx, DedupPolicy, Engine, EngineConfig, PreloadMode, SearchPolicy, State};
use crate::env::Environment;
use crate::resolve::{expand_entry, probe_dir, probe_exact, Candidate, Provenance};
use crate::result::{LoadError, LoadResult};

/// musl's probe plan: `LD_LIBRARY_PATH` first, then the requester chain's
/// melded RPATH+RUNPATH (inherited), then the system path. No hwcaps, no
/// cache.
pub struct MuslSearch;

impl SearchPolicy for MuslSearch {
    fn locate(
        &self,
        cx: &Ctx,
        st: &State,
        requester: usize,
        name: &str,
    ) -> Option<(Candidate, Provenance)> {
        if name.contains('/') {
            return probe_exact(cx.fs, name, cx.want_arch).map(|c| (c, Provenance::DirectPath));
        }

        // musl search order: env_path FIRST...
        for dir in &cx.env.ld_library_path {
            if let Some(cand) = probe_dir(cx.fs, dir, name, cx.want_arch, &[]) {
                return Some((cand, Provenance::LdLibraryPath));
            }
        }

        // ...then the requester chain's rpath (RPATH and RUNPATH melded,
        // both inherited)...
        let mut chain = Some(requester);
        while let Some(idx) = chain {
            let obj = &st.objects[idx];
            for entry in obj.object.rpath.iter().chain(obj.object.runpath.iter()) {
                let dir = expand_entry(entry, &obj.path);
                if let Some(cand) = probe_dir(cx.fs, &dir, name, cx.want_arch, &[]) {
                    return Some((cand, Provenance::Rpath { owner: obj.object.name.clone() }));
                }
            }
            chain = obj.parent;
        }

        // ...then the system path.
        for dir in &cx.env.default_paths {
            if let Some(cand) = probe_dir(cx.fs, dir, name, cx.want_arch, &[]) {
                return Some((cand, Provenance::DefaultPath));
            }
        }

        None
    }
}

/// musl's identity relation: shortnames (bare-name loads only) plus
/// `(dev,inode)` after open. Pathname requests are never pre-deduped — musl
/// opens first and compares inodes.
pub struct MuslDedup;

impl MuslDedup {
    /// musl sets a library's shortname only when the library was found by
    /// name *search* — an absolute needed entry never enters the table.
    fn by_search(provenance: &Provenance) -> bool {
        matches!(
            provenance,
            Provenance::Rpath { .. }
                | Provenance::Runpath { .. }
                | Provenance::LdLibraryPath
                | Provenance::LdSoCache
                | Provenance::DefaultPath
        )
    }
}

impl DedupPolicy for MuslDedup {
    fn lookup(&self, _cx: &Ctx, st: &mut State, name: PathId) -> Option<usize> {
        if name.as_str().contains('/') {
            // Direct path: open, then (dev,ino) dedup only.
            return None;
        }
        // Bare name: shortname dedup (absolute-loaded objects not indexed).
        let idx = *st.by_name.get(&name)?;
        st.alias(idx, name.as_str());
        Some(idx)
    }

    fn absorb(
        &self,
        cx: &Ctx,
        st: &mut State,
        name: &str,
        cand: &Candidate,
        provenance: &Provenance,
    ) -> Option<usize> {
        // (dev,ino) dedup after open — musl's only cross-name dedup.
        let inode = cx.inode_of(&cand.path)?;
        let idx = *st.by_inode.get(&inode)?;
        if Self::by_search(provenance) {
            st.by_name.entry(intern(name)).or_insert(idx);
        }
        st.alias(idx, name);
        Some(idx)
    }

    fn index(&self, _cx: &Ctx, st: &mut State, idx: usize, requested: &str) {
        if Self::by_search(&st.objects[idx].provenance) {
            st.by_name.entry(intern(requested)).or_insert(idx);
        }
        st.by_inode.entry(st.objects[idx].inode).or_insert(idx);
    }
}

/// A musl-semantics loader bound to one filesystem.
pub struct MuslLoader<'fs> {
    engine: Engine<'fs, MuslSearch, MuslDedup>,
}

impl<'fs> MuslLoader<'fs> {
    pub fn new(fs: &'fs Vfs) -> Self {
        MuslLoader {
            engine: Engine::new(
                fs,
                MuslSearch,
                MuslDedup,
                EngineConfig::charged(PreloadMode::Always),
            ),
        }
    }

    pub fn with_env(mut self, env: Environment) -> Self {
        self.engine.set_env(env);
        self
    }

    /// Simulate process startup under musl semantics.
    pub fn load(&self, exe_path: &str) -> Result<LoadResult, LoadError> {
        self.engine.run(exe_path, false)
    }
}

impl Loader for MuslLoader<'_> {
    fn name(&self) -> &'static str {
        "musl"
    }

    fn load(&self, exe: &str) -> Result<LoadResult, LoadError> {
        MuslLoader::load(self, exe)
    }

    fn resolves_by_soname(&self) -> bool {
        false
    }

    fn honours_preload(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::Resolution;
    use depchaos_elf::io::install;
    use depchaos_elf::ElfObject;

    #[test]
    fn env_path_beats_rpath_under_musl() {
        // Opposite priority from glibc's RPATH: Table I does not hold here.
        let fs = Vfs::local();
        install(&fs, "/rp/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(&fs, "/llp/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libx.so").rpath("/rp").build())
            .unwrap();
        let env = Environment::bare().with_ld_library_path("/llp");
        let r = MuslLoader::new(&fs).with_env(env).load("/bin/app").unwrap();
        assert_eq!(r.objects[1].path, "/llp/libx.so");
    }

    #[test]
    fn runpath_propagates_under_musl() {
        // glibc would fail this (RUNPATH does not propagate); musl inherits.
        let fs = Vfs::local();
        install(&fs, "/usr/lib/liba.so", &ElfObject::dso("liba.so").needs("libdeep.so").build())
            .unwrap();
        install(&fs, "/deep/libdeep.so", &ElfObject::dso("libdeep.so").build()).unwrap();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("liba.so").runpath("/deep").build())
            .unwrap();
        let r = MuslLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r.success(), "musl inherits runpath through the chain");
    }

    #[test]
    fn absolute_needed_does_not_satisfy_bare_request() {
        // The Shrinkwrap-on-musl incompatibility: /store/a/libac.so is
        // loaded by path; libxyz's bare request for libac.so is NOT deduped
        // by soname. With no search path to find it, the load fails.
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("/store/x/libxyz.so").needs("/store/a/libac.so").build(),
        )
        .unwrap();
        install(&fs, "/store/x/libxyz.so", &ElfObject::dso("libxyz.so").needs("libac.so").build())
            .unwrap();
        install(&fs, "/store/a/libac.so", &ElfObject::dso("libac.so").build()).unwrap();
        let r = MuslLoader::new(&fs).load("/bin/app").unwrap();
        assert!(!r.success(), "musl cannot resolve the bare libac.so");
        assert_eq!(r.failures[0].name, "libac.so");
    }

    #[test]
    fn inode_dedup_rescues_same_file() {
        // If the bare search finds the *same file* the absolute entry
        // loaded, musl dedups by inode and the program works.
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app")
                .needs("/store/x/libxyz.so")
                .needs("/store/a/libac.so")
                .rpath("/store/a")
                .build(),
        )
        .unwrap();
        install(
            &fs,
            "/store/x/libxyz.so",
            &ElfObject::dso("libxyz.so").needs("libac.so").rpath("/store/a").build(),
        )
        .unwrap();
        install(&fs, "/store/a/libac.so", &ElfObject::dso("libac.so").build()).unwrap();
        let r = MuslLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.objects.len(), 3, "no duplicate copy of libac.so");
        let e = r.events.iter().find(|e| e.name == "libac.so" && e.requester == 1).unwrap();
        assert!(matches!(e.resolution, Resolution::Deduped { .. }));
    }

    #[test]
    fn musl_preload_interposes_too() {
        use depchaos_elf::Symbol;
        let fs = Vfs::local();
        install(
            &fs,
            "/usr/lib/libreal.so",
            &ElfObject::dso("libreal.so").defines(Symbol::strong("write")).build(),
        )
        .unwrap();
        install(
            &fs,
            "/tools/libshim.so",
            &ElfObject::dso("libshim.so").defines(Symbol::strong("write")).build(),
        )
        .unwrap();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libreal.so").build()).unwrap();
        let env = Environment::default().with_preload("/tools/libshim.so");
        let r = MuslLoader::new(&fs).with_env(env).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.bindings()["write"], "/tools/libshim.so");
    }

    #[test]
    fn divergence_from_glibc_on_same_image() {
        // One filesystem, two loaders, different outcomes — the §IV claim.
        use crate::glibc::GlibcLoader;
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("/store/x/libxyz.so").needs("/store/a/libac.so").build(),
        )
        .unwrap();
        install(&fs, "/store/x/libxyz.so", &ElfObject::dso("libxyz.so").needs("libac.so").build())
            .unwrap();
        install(&fs, "/store/a/libac.so", &ElfObject::dso("libac.so").build()).unwrap();
        assert!(GlibcLoader::new(&fs).load("/bin/app").unwrap().success());
        assert!(!MuslLoader::new(&fs).load("/bin/app").unwrap().success());
    }

    #[test]
    fn loader_trait_reports_musl_capabilities() {
        let fs = Vfs::local();
        install(&fs, "/bin/app", &ElfObject::exe("app").build()).unwrap();
        let musl = MuslLoader::new(&fs);
        let dyn_loader: &dyn Loader = &musl;
        assert_eq!(dyn_loader.name(), "musl");
        assert!(!dyn_loader.resolves_by_soname(), "the §IV incompatibility, queryable");
        assert!(!dyn_loader.supports_dlopen_replay());
        assert!(dyn_loader.load("/bin/app").unwrap().success());
    }
}

//! The musl `ld.so` model — the divergent semantics that make Shrinkwrap
//! glibc-only (§IV).
//!
//! Differences from glibc, all load-bearing for the paper:
//!
//! * **No soname cache.** Dedup happens by requested-name string (for bare
//!   names, against the *shortname* of libraries that were themselves loaded
//!   by bare name) and by `(dev,inode)` after opening a candidate. An object
//!   loaded via an absolute path does **not** satisfy a later bare-soname
//!   request unless the search happens to find the same file — so a
//!   shrinkwrapped binary may load duplicates or fail outright.
//! * **RPATH ≡ RUNPATH**, both inherited through the `needed_by` chain but
//!   searched **after** `LD_LIBRARY_PATH` (musl `dynlink.c`: `env_path`
//!   first, then the requester chain's rpath, then the system path). The
//!   paper notes this meld "would actually solve a number of problems with
//!   RUNPATH, but ... is non-standard".
//! * No hwcaps subdirectories, no ld.so.cache.

use std::collections::{HashMap, VecDeque};

use depchaos_elf::ElfObject;
use depchaos_vfs::{Inode, Vfs};

use crate::env::Environment;
use crate::resolve::{expand_entry, probe_dir, probe_exact, Candidate, Provenance, Resolution};
use crate::result::{Failure, LoadError, LoadEvent, LoadResult, LoadedObject};

/// A musl-semantics loader bound to one filesystem.
pub struct MuslLoader<'fs> {
    fs: &'fs Vfs,
    env: Environment,
}

struct State {
    objects: Vec<LoadedObject>,
    /// Bare-name dedup: shortnames of objects loaded by search.
    by_shortname: HashMap<String, usize>,
    by_inode: HashMap<Inode, usize>,
    events: Vec<LoadEvent>,
    failures: Vec<Failure>,
}

impl State {
    fn new() -> Self {
        State {
            objects: Vec::new(),
            by_shortname: HashMap::new(),
            by_inode: HashMap::new(),
            events: Vec::new(),
            failures: Vec::new(),
        }
    }

    fn register(
        &mut self,
        fs: &Vfs,
        requested: &str,
        cand: Candidate,
        parent: Option<usize>,
        provenance: Provenance,
        loaded_by_search: bool,
    ) -> usize {
        let idx = self.objects.len();
        let canonical = fs.canonicalize(&cand.path).unwrap_or_else(|_| cand.path.clone());
        let inode = fs.peek(&canonical).map(|m| m.inode).unwrap_or(Inode(0));
        if loaded_by_search {
            // musl sets shortname only for libraries found by name search.
            self.by_shortname.entry(requested.to_string()).or_insert(idx);
        }
        self.by_inode.entry(inode).or_insert(idx);
        self.objects.push(LoadedObject {
            idx,
            path: cand.path,
            canonical,
            inode,
            object: cand.object,
            parent,
            requested_as: vec![requested.to_string()],
            provenance,
        });
        idx
    }
}

impl<'fs> MuslLoader<'fs> {
    pub fn new(fs: &'fs Vfs) -> Self {
        MuslLoader { fs, env: Environment::default() }
    }

    pub fn with_env(mut self, env: Environment) -> Self {
        self.env = env;
        self
    }

    /// Simulate process startup under musl semantics.
    pub fn load(&self, exe_path: &str) -> Result<LoadResult, LoadError> {
        let before = self.fs.snapshot();
        let t0 = self.fs.elapsed_ns();
        let mut st = State::new();

        if self.fs.try_open(exe_path).is_none() {
            return Err(LoadError::ExeNotFound(exe_path.to_string()));
        }
        let bytes = self
            .fs
            .read_file(exe_path)
            .map_err(|_| LoadError::ExeNotFound(exe_path.to_string()))?;
        let exe = ElfObject::parse(&bytes)
            .map_err(|_| LoadError::ExeUnparseable(exe_path.to_string()))?;
        if exe.virtual_size > 0 {
            self.fs.charge_read(exe_path, exe.virtual_size);
        }
        st.register(
            self.fs,
            exe_path,
            Candidate { path: exe_path.to_string(), object: exe },
            None,
            Provenance::Executable,
            false,
        );

        for entry in self.env.ld_preload.clone() {
            self.request(&mut st, 0, &entry);
        }

        let mut queue: VecDeque<(usize, String)> =
            st.objects[0].object.needed.iter().map(|n| (0usize, n.clone())).collect();
        let mut next_obj = st.objects.len();
        while let Some((req, name)) = queue.pop_front() {
            self.request(&mut st, req, &name);
            while next_obj < st.objects.len() {
                for n in &st.objects[next_obj].object.needed {
                    queue.push_back((next_obj, n.clone()));
                }
                next_obj += 1;
            }
        }

        Ok(LoadResult {
            syscalls: self.fs.snapshot().since(&before),
            time_ns: self.fs.elapsed_ns() - t0,
            objects: st.objects,
            events: st.events,
            failures: st.failures,
        })
    }

    fn request(&self, st: &mut State, requester: usize, name: &str) {
        let resolution = self.resolve(st, requester, name);
        if let Resolution::NotFound = resolution {
            st.failures.push(Failure {
                requester: st.objects[requester].object.name.clone(),
                name: name.to_string(),
            });
        }
        st.events.push(LoadEvent { requester, name: name.to_string(), resolution });
    }

    fn resolve(&self, st: &mut State, requester: usize, name: &str) -> Resolution {
        let want_arch = st.objects[0].object.machine;

        if name.contains('/') {
            // Direct path: open, then (dev,ino) dedup only.
            let Some(cand) = probe_exact(self.fs, name, want_arch) else {
                return Resolution::NotFound;
            };
            return self.commit(st, requester, name, cand, Provenance::DirectPath, false);
        }

        // Bare name: shortname dedup (absolute-loaded objects not indexed).
        if let Some(&idx) = st.by_shortname.get(name) {
            let path = st.objects[idx].path.clone();
            if !st.objects[idx].requested_as.iter().any(|r| r == name) {
                st.objects[idx].requested_as.push(name.to_string());
            }
            return Resolution::Deduped { path };
        }

        // musl search order: env_path FIRST...
        for dir in &self.env.ld_library_path {
            if let Some(cand) = probe_dir(self.fs, dir, name, want_arch, &[]) {
                return self.commit(st, requester, name, cand, Provenance::LdLibraryPath, true);
            }
        }

        // ...then the requester chain's rpath (RPATH and RUNPATH melded,
        // both inherited)...
        let mut chain = Some(requester);
        while let Some(idx) = chain {
            let owner = st.objects[idx].object.name.clone();
            let owner_path = st.objects[idx].path.clone();
            let mut dirs: Vec<String> = Vec::new();
            dirs.extend(st.objects[idx].object.rpath.iter().map(|e| expand_entry(e, &owner_path)));
            dirs.extend(
                st.objects[idx].object.runpath.iter().map(|e| expand_entry(e, &owner_path)),
            );
            for dir in &dirs {
                if let Some(cand) = probe_dir(self.fs, dir, name, want_arch, &[]) {
                    return self.commit(
                        st,
                        requester,
                        name,
                        cand,
                        Provenance::Rpath { owner: owner.clone() },
                        true,
                    );
                }
            }
            chain = st.objects[idx].parent;
        }

        // ...then the system path.
        for dir in &self.env.default_paths {
            if let Some(cand) = probe_dir(self.fs, dir, name, want_arch, &[]) {
                return self.commit(st, requester, name, cand, Provenance::DefaultPath, true);
            }
        }

        Resolution::NotFound
    }

    fn commit(
        &self,
        st: &mut State,
        requester: usize,
        name: &str,
        cand: Candidate,
        provenance: Provenance,
        by_search: bool,
    ) -> Resolution {
        // (dev,ino) dedup after open — musl's only cross-name dedup.
        let canonical = self.fs.canonicalize(&cand.path).unwrap_or_else(|_| cand.path.clone());
        if let Ok(meta) = self.fs.peek(&canonical) {
            if let Some(&idx) = st.by_inode.get(&meta.inode) {
                let path = st.objects[idx].path.clone();
                if by_search {
                    st.by_shortname.entry(name.to_string()).or_insert(idx);
                }
                if !st.objects[idx].requested_as.iter().any(|r| r == name) {
                    st.objects[idx].requested_as.push(name.to_string());
                }
                return Resolution::Deduped { path };
            }
        }
        let path = cand.path.clone();
        st.register(self.fs, name, cand, Some(requester), provenance.clone(), by_search);
        Resolution::Loaded { path, provenance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use depchaos_elf::io::install;

    #[test]
    fn env_path_beats_rpath_under_musl() {
        // Opposite priority from glibc's RPATH: Table I does not hold here.
        let fs = Vfs::local();
        install(&fs, "/rp/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(&fs, "/llp/libx.so", &ElfObject::dso("libx.so").build()).unwrap();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libx.so").rpath("/rp").build())
            .unwrap();
        let env = Environment::bare().with_ld_library_path("/llp");
        let r = MuslLoader::new(&fs).with_env(env).load("/bin/app").unwrap();
        assert_eq!(r.objects[1].path, "/llp/libx.so");
    }

    #[test]
    fn runpath_propagates_under_musl() {
        // glibc would fail this (RUNPATH does not propagate); musl inherits.
        let fs = Vfs::local();
        install(&fs, "/usr/lib/liba.so", &ElfObject::dso("liba.so").needs("libdeep.so").build())
            .unwrap();
        install(&fs, "/deep/libdeep.so", &ElfObject::dso("libdeep.so").build()).unwrap();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("liba.so").runpath("/deep").build(),
        )
        .unwrap();
        let r = MuslLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r.success(), "musl inherits runpath through the chain");
    }

    #[test]
    fn absolute_needed_does_not_satisfy_bare_request() {
        // The Shrinkwrap-on-musl incompatibility: /store/a/libac.so is
        // loaded by path; libxyz's bare request for libac.so is NOT deduped
        // by soname. With no search path to find it, the load fails.
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("/store/x/libxyz.so").needs("/store/a/libac.so").build(),
        )
        .unwrap();
        install(&fs, "/store/x/libxyz.so", &ElfObject::dso("libxyz.so").needs("libac.so").build())
            .unwrap();
        install(&fs, "/store/a/libac.so", &ElfObject::dso("libac.so").build()).unwrap();
        let r = MuslLoader::new(&fs).load("/bin/app").unwrap();
        assert!(!r.success(), "musl cannot resolve the bare libac.so");
        assert_eq!(r.failures[0].name, "libac.so");
    }

    #[test]
    fn inode_dedup_rescues_same_file() {
        // If the bare search finds the *same file* the absolute entry
        // loaded, musl dedups by inode and the program works.
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app")
                .needs("/store/x/libxyz.so")
                .needs("/store/a/libac.so")
                .rpath("/store/a")
                .build(),
        )
        .unwrap();
        install(
            &fs,
            "/store/x/libxyz.so",
            &ElfObject::dso("libxyz.so").needs("libac.so").rpath("/store/a").build(),
        )
        .unwrap();
        install(&fs, "/store/a/libac.so", &ElfObject::dso("libac.so").build()).unwrap();
        let r = MuslLoader::new(&fs).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.objects.len(), 3, "no duplicate copy of libac.so");
        let e = r.events.iter().find(|e| e.name == "libac.so" && e.requester == 1).unwrap();
        assert!(matches!(e.resolution, Resolution::Deduped { .. }));
    }

    #[test]
    fn musl_preload_interposes_too() {
        use depchaos_elf::Symbol;
        let fs = Vfs::local();
        install(
            &fs,
            "/usr/lib/libreal.so",
            &ElfObject::dso("libreal.so").defines(Symbol::strong("write")).build(),
        )
        .unwrap();
        install(
            &fs,
            "/tools/libshim.so",
            &ElfObject::dso("libshim.so").defines(Symbol::strong("write")).build(),
        )
        .unwrap();
        install(&fs, "/bin/app", &ElfObject::exe("app").needs("libreal.so").build()).unwrap();
        let env = Environment::default().with_preload("/tools/libshim.so");
        let r = MuslLoader::new(&fs).with_env(env).load("/bin/app").unwrap();
        assert!(r.success());
        assert_eq!(r.bindings()["write"], "/tools/libshim.so");
    }

    #[test]
    fn divergence_from_glibc_on_same_image() {
        // One filesystem, two loaders, different outcomes — the §IV claim.
        use crate::glibc::GlibcLoader;
        let fs = Vfs::local();
        install(
            &fs,
            "/bin/app",
            &ElfObject::exe("app").needs("/store/x/libxyz.so").needs("/store/a/libac.so").build(),
        )
        .unwrap();
        install(&fs, "/store/x/libxyz.so", &ElfObject::dso("libxyz.so").needs("libac.so").build())
            .unwrap();
        install(&fs, "/store/a/libac.so", &ElfObject::dso("libac.so").build()).unwrap();
        assert!(GlibcLoader::new(&fs).load("/bin/app").unwrap().success());
        assert!(!MuslLoader::new(&fs).load("/bin/app").unwrap().success());
    }
}

//! Property tests over random library worlds: the loader never panics, is
//! deterministic, and its dedup cache is sound.

use depchaos_elf::io::install;
use depchaos_elf::ElfObject;
use depchaos_loader::{Environment, GlibcLoader, MuslLoader, Resolution};
use depchaos_vfs::Vfs;
use proptest::prelude::*;

/// A random world: `n` libraries spread over `d` directories; library i may
/// need libraries with larger indices (acyclic); the executable needs a
/// random subset; search paths are a random mix of rpath/runpath on the exe.
#[derive(Debug, Clone)]
struct World {
    n: usize,
    dirs: usize,
    lib_dir: Vec<usize>,
    needs: Vec<Vec<usize>>,
    exe_needs: Vec<usize>,
    exe_rpath: bool,
}

fn world_strat() -> impl Strategy<Value = World> {
    (2usize..14, 1usize..5).prop_flat_map(|(n, dirs)| {
        (
            prop::collection::vec(0..dirs, n),
            prop::collection::vec(prop::collection::vec(0..n, 0..3), n),
            prop::collection::vec(0..n, 1..4),
            any::<bool>(),
        )
            .prop_map(move |(lib_dir, raw_needs, exe_needs, exe_rpath)| {
                let needs = raw_needs
                    .into_iter()
                    .enumerate()
                    .map(|(i, ds)| {
                        let mut ds: Vec<usize> =
                            ds.into_iter().filter(|&d| d > i && d < n).collect();
                        ds.sort();
                        ds.dedup();
                        ds
                    })
                    .collect();
                World { n, dirs, lib_dir, needs, exe_needs, exe_rpath }
            })
    })
}

fn build(w: &World) -> (Vfs, String) {
    let fs = Vfs::local();
    let dir_list: Vec<String> = (0..w.dirs).map(|d| format!("/libs{d}")).collect();
    for i in 0..w.n {
        let mut b = ElfObject::dso(format!("lib{i}.so"));
        for &d in &w.needs[i] {
            b = b.needs(format!("lib{d}.so"));
        }
        b = b.runpath_all(dir_list.clone());
        install(&fs, &format!("/libs{}/lib{i}.so", w.lib_dir[i]), &b.build()).unwrap();
    }
    let mut e = ElfObject::exe("app");
    for &i in &w.exe_needs {
        e = e.needs(format!("lib{i}.so"));
    }
    e = if w.exe_rpath { e.rpath_all(dir_list) } else { e.runpath_all(dir_list) };
    install(&fs, "/bin/app", &e.build()).unwrap();
    (fs, "/bin/app".to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Loads always succeed (everything is findable), never panic, and are
    /// deterministic.
    #[test]
    fn glibc_total_and_deterministic(w in world_strat()) {
        let (fs, exe) = build(&w);
        let a = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&exe).unwrap();
        prop_assert!(a.success(), "{:?}", a.failures);
        let b = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&exe).unwrap();
        prop_assert_eq!(a.paths(), b.paths());
    }

    /// No object is ever mapped twice: paths and inodes are unique.
    #[test]
    fn no_duplicate_mappings(w in world_strat()) {
        let (fs, exe) = build(&w);
        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&exe).unwrap();
        let mut paths: Vec<_> = r.objects.iter().map(|o| o.canonical.clone()).collect();
        let total = paths.len();
        paths.sort();
        paths.dedup();
        prop_assert_eq!(paths.len(), total);
        let mut inodes: Vec<_> = r.objects.iter().map(|o| o.inode).collect();
        inodes.sort();
        inodes.dedup();
        prop_assert_eq!(inodes.len(), total);
    }

    /// Every event resolves to a loaded object or a recorded failure, and
    /// every loaded object stems from exactly one Loaded event (or is the
    /// executable).
    #[test]
    fn events_account_for_everything(w in world_strat()) {
        let (fs, exe) = build(&w);
        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&exe).unwrap();
        let loaded_events = r.events.iter().filter(|e| matches!(e.resolution, Resolution::Loaded { .. })).count();
        prop_assert_eq!(loaded_events, r.objects.len() - 1);
        for e in &r.events {
            if let Some(p) = e.resolution.path() {
                prop_assert!(r.objects.iter().any(|o| o.path == p));
            }
        }
    }

    /// musl and glibc agree on *success* for these worlds (no absolute
    /// needed entries, everything on the search path) even though provenance
    /// ordering differs.
    #[test]
    fn musl_agrees_on_success(w in world_strat()) {
        let (fs, exe) = build(&w);
        let g = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&exe).unwrap();
        let m = MuslLoader::new(&fs).with_env(Environment::bare()).load(&exe).unwrap();
        prop_assert_eq!(g.success(), m.success());
        // And they load the same *set* of files.
        let mut gp: Vec<_> = g.objects.iter().map(|o| o.canonical.clone()).collect();
        let mut mp: Vec<_> = m.objects.iter().map(|o| o.canonical.clone()).collect();
        gp.sort();
        mp.sort();
        prop_assert_eq!(gp, mp);
    }

    /// Wrapping-by-hand invariant: rewriting every needed entry to the path
    /// the loader resolved yields the same load set with zero misses.
    #[test]
    fn freeze_resolution_reproduces_load(w in world_strat()) {
        let (fs, exe) = build(&w);
        let r = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&exe).unwrap();
        let frozen: Vec<String> = r.objects.iter().skip(1).map(|o| o.path.clone()).collect();
        depchaos_elf::ElfEditor::open(&fs, &exe).unwrap().set_needed(frozen).unwrap();
        let r2 = GlibcLoader::new(&fs).with_env(Environment::bare()).load(&exe).unwrap();
        prop_assert!(r2.success());
        prop_assert_eq!(r2.syscalls.misses, 0);
        let mut a: Vec<_> = r.objects.iter().map(|o| o.canonical.clone()).collect();
        let mut b: Vec<_> = r2.objects.iter().map(|o| o.canonical.clone()).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}

//! On-"disk" serialisation of [`ElfObject`].
//!
//! A deterministic line-oriented text format with a magic header, so that
//! objects stored in the VFS are inspectable in tests and dumps. Field
//! values may not contain newlines; path-like fields may not contain spaces
//! (enforced at serialisation time — the workloads never produce them).
//!
//! The `size` field inflates the stored blob with a run-length encoded
//! padding declaration rather than literal zero bytes, so a simulated
//! 213 MiB executable costs 30 bytes of RAM but reports its full size to the
//! VFS read-cost model via [`ElfObject::virtual_size`].

use std::fmt;

use crate::machine::Machine;
use crate::object::{DepPin, ElfObject, ObjectKind, SearchDir, SearchPosition};
use crate::symbols::{Symbol, SymbolBinding};

/// Magic first line of every serialised object.
pub const MAGIC: &str = "DELF1";

/// Parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    NotAnElf,
    BadLine(String),
    MissingField(&'static str),
    NotUtf8,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::NotAnElf => write!(f, "missing {MAGIC} magic"),
            ParseError::BadLine(l) => write!(f, "unparseable line: {l:?}"),
            ParseError::MissingField(n) => write!(f, "missing required field {n}"),
            ParseError::NotUtf8 => write!(f, "object bytes are not UTF-8"),
        }
    }
}

impl std::error::Error for ParseError {}

impl ElfObject {
    /// Serialise to bytes for storage in a VFS file.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut s = String::with_capacity(256);
        s.push_str(MAGIC);
        s.push('\n');
        s.push_str(&format!("name {}\n", self.name));
        s.push_str(&format!("kind {}\n", self.kind.as_str()));
        s.push_str(&format!("machine {}\n", self.machine.as_str()));
        if let Some(so) = &self.soname {
            s.push_str(&format!("soname {so}\n"));
        }
        if let Some(i) = &self.interp {
            s.push_str(&format!("interp {i}\n"));
        }
        for n in &self.needed {
            s.push_str(&format!("needed {n}\n"));
        }
        for p in &self.rpath {
            s.push_str(&format!("rpath {p}\n"));
        }
        for p in &self.runpath {
            s.push_str(&format!("runpath {p}\n"));
        }
        for sym in &self.symbols {
            s.push_str(&format!("sym {} {}\n", sym.binding.as_str(), sym.name));
        }
        for u in &self.undefined {
            s.push_str(&format!("undef {u}\n"));
        }
        for d in &self.dlopens {
            s.push_str(&format!("dlopen {d}\n"));
        }
        if self.virtual_size > 0 {
            s.push_str(&format!("size {}\n", self.virtual_size));
        }
        for sd in &self.search_dirs {
            let pos = match sd.position {
                SearchPosition::Prepend => "P",
                SearchPosition::Append => "A",
            };
            let inh = if sd.inherit { "I" } else { "N" };
            s.push_str(&format!("sdir {pos} {inh} {}\n", sd.dir));
        }
        for p in &self.pins {
            s.push_str(&format!("pin {} {}\n", p.soname, p.path));
        }
        s.into_bytes()
    }

    /// Parse bytes previously produced by [`ElfObject::to_bytes`].
    pub fn parse(bytes: &[u8]) -> Result<ElfObject, ParseError> {
        let text = std::str::from_utf8(bytes).map_err(|_| ParseError::NotUtf8)?;
        let mut lines = text.lines();
        if lines.next() != Some(MAGIC) {
            return Err(ParseError::NotAnElf);
        }
        let mut name: Option<String> = None;
        let mut kind: Option<ObjectKind> = None;
        let mut machine = Machine::default();
        let mut soname = None;
        let mut interp = None;
        let mut needed = Vec::new();
        let mut rpath = Vec::new();
        let mut runpath = Vec::new();
        let mut symbols = Vec::new();
        let mut undefined = Vec::new();
        let mut dlopens = Vec::new();
        let mut virtual_size = 0u64;
        let mut search_dirs = Vec::new();
        let mut pins = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (key, rest) =
                line.split_once(' ').ok_or_else(|| ParseError::BadLine(line.into()))?;
            match key {
                "name" => name = Some(rest.to_string()),
                "kind" => {
                    kind = Some(
                        ObjectKind::from_str_opt(rest)
                            .ok_or_else(|| ParseError::BadLine(line.into()))?,
                    )
                }
                "machine" => {
                    machine = Machine::from_str_opt(rest)
                        .ok_or_else(|| ParseError::BadLine(line.into()))?
                }
                "soname" => soname = Some(rest.to_string()),
                "interp" => interp = Some(rest.to_string()),
                "needed" => needed.push(rest.to_string()),
                "rpath" => rpath.push(rest.to_string()),
                "runpath" => runpath.push(rest.to_string()),
                "sym" => {
                    let (b, n) =
                        rest.split_once(' ').ok_or_else(|| ParseError::BadLine(line.into()))?;
                    let binding = SymbolBinding::from_str_opt(b)
                        .ok_or_else(|| ParseError::BadLine(line.into()))?;
                    symbols.push(Symbol { name: n.to_string(), binding });
                }
                "undef" => undefined.push(rest.to_string()),
                "dlopen" => dlopens.push(rest.to_string()),
                "size" => {
                    virtual_size = rest.parse().map_err(|_| ParseError::BadLine(line.into()))?
                }
                "sdir" => {
                    let mut parts = rest.splitn(3, ' ');
                    let pos = match parts.next() {
                        Some("P") => SearchPosition::Prepend,
                        Some("A") => SearchPosition::Append,
                        _ => return Err(ParseError::BadLine(line.into())),
                    };
                    let inherit = match parts.next() {
                        Some("I") => true,
                        Some("N") => false,
                        _ => return Err(ParseError::BadLine(line.into())),
                    };
                    let dir = parts.next().ok_or_else(|| ParseError::BadLine(line.into()))?;
                    search_dirs.push(SearchDir { dir: dir.to_string(), position: pos, inherit });
                }
                "pin" => {
                    let (soname, path) =
                        rest.split_once(' ').ok_or_else(|| ParseError::BadLine(line.into()))?;
                    pins.push(DepPin { soname: soname.to_string(), path: path.to_string() });
                }
                _ => return Err(ParseError::BadLine(line.into())),
            }
        }
        Ok(ElfObject {
            name: name.ok_or(ParseError::MissingField("name"))?,
            kind: kind.ok_or(ParseError::MissingField("kind"))?,
            machine,
            soname,
            needed,
            rpath,
            runpath,
            interp,
            symbols,
            undefined,
            dlopens,
            virtual_size,
            search_dirs,
            pins,
        })
    }

    /// True if the byte blob looks like one of our objects (magic check only,
    /// the loader's cheap format sniff).
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.starts_with(MAGIC.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Symbol;

    fn rich_object() -> ElfObject {
        ElfObject::exe("app")
            .machine(Machine::Ppc64le)
            .soname("app.so")
            .interp("/lib/ld.so")
            .needs("liba.so.1")
            .needs("/abs/libb.so")
            .rpath("/opt/lib")
            .runpath("$ORIGIN/../lib")
            .defines(Symbol::strong("main"))
            .defines(Symbol::weak("hook"))
            .imports("printf")
            .dlopens("libplugin.so")
            .virtual_size(213 * 1024 * 1024)
            .search_dir("/fancy/prepend", SearchPosition::Prepend, true)
            .search_dir("/fancy/append", SearchPosition::Append, false)
            .pin("liba.so.1", "/exact/liba.so.1")
            .build()
    }

    #[test]
    fn roundtrip_rich() {
        let o = rich_object();
        let parsed = ElfObject::parse(&o.to_bytes()).unwrap();
        assert_eq!(parsed, o);
    }

    #[test]
    fn roundtrip_minimal() {
        let o = ElfObject::dso("libx.so").build();
        assert_eq!(ElfObject::parse(&o.to_bytes()).unwrap(), o);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(ElfObject::parse(b"\x7fELF real elf"), Err(ParseError::NotAnElf));
        assert!(ElfObject::parse(&[0xff, 0xfe]).is_err());
        assert!(!ElfObject::sniff(b"not elf"));
        assert!(ElfObject::sniff(b"DELF1\n..."));
    }

    #[test]
    fn rejects_unknown_field() {
        let bad = format!("{MAGIC}\nname x\nkind exe\nwat 1\n");
        assert!(matches!(ElfObject::parse(bad.as_bytes()), Err(ParseError::BadLine(_))));
    }

    #[test]
    fn missing_name_is_error() {
        let bad = format!("{MAGIC}\nkind exe\n");
        assert_eq!(ElfObject::parse(bad.as_bytes()), Err(ParseError::MissingField("name")));
    }

    #[test]
    fn order_of_needed_preserved() {
        let o = ElfObject::exe("a").needs_all(["z", "a", "m"]).build();
        let parsed = ElfObject::parse(&o.to_bytes()).unwrap();
        assert_eq!(parsed.needed, vec!["z", "a", "m"]);
    }
}

//! Dynamic symbols and link-time duplicate checking.
//!
//! §V-B.2 of the paper: `libomp.so` and `libompstubs.so` define the same
//! strong symbols. At *run* time whichever loads first wins; on a *link*
//! line both together are a hard error. Shrinkwrap sidesteps the link line,
//! which is exactly why it works where the needy-executables workaround
//! fails. [`check_link`] reproduces the linker-side failure.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Symbol binding, reduced to the distinction that matters for duplicate
/// resolution: strong (GLOBAL) vs weak.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SymbolBinding {
    Strong,
    Weak,
}

impl SymbolBinding {
    pub fn as_str(&self) -> &'static str {
        match self {
            SymbolBinding::Strong => "T",
            SymbolBinding::Weak => "W",
        }
    }

    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "T" => Some(SymbolBinding::Strong),
            "W" => Some(SymbolBinding::Weak),
            _ => None,
        }
    }
}

/// A defined dynamic symbol.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Symbol {
    pub name: String,
    pub binding: SymbolBinding,
}

impl Symbol {
    pub fn strong(name: impl Into<String>) -> Self {
        Symbol { name: name.into(), binding: SymbolBinding::Strong }
    }

    pub fn weak(name: impl Into<String>) -> Self {
        Symbol { name: name.into(), binding: SymbolBinding::Weak }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.binding.as_str(), self.name)
    }
}

/// A duplicate strong symbol between two objects — a link failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkError {
    pub symbol: String,
    pub first: String,
    pub second: String,
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "multiple definition of `{}': first defined in {}, also in {}",
            self.symbol, self.first, self.second
        )
    }
}

impl std::error::Error for LinkError {}

/// Check whether a set of objects could appear together on a static link
/// line. Mirrors `ld`'s rule: two *strong* definitions of the same name are
/// an error; strong-over-weak and weak-weak are fine.
///
/// `objects` is `(label, defined-symbols)` — the label appears in the error.
pub fn check_link<'a, I>(objects: I) -> Result<(), LinkError>
where
    I: IntoIterator<Item = (&'a str, &'a [Symbol])>,
{
    let mut strong_owner: HashMap<&str, &str> = HashMap::new();
    for (label, syms) in objects {
        for sym in syms {
            if sym.binding == SymbolBinding::Strong {
                if let Some(first) = strong_owner.get(sym.name.as_str()) {
                    return Err(LinkError {
                        symbol: sym.name.clone(),
                        first: (*first).to_string(),
                        second: label.to_string(),
                    });
                }
                strong_owner.insert(sym.name.as_str(), label);
            }
        }
    }
    Ok(())
}

/// Runtime interposition: given objects in *load order*, return which object
/// provides each symbol (first definition wins; strong and weak behave the
/// same at runtime lookup for distinct objects, matching ELF lookup order).
pub fn runtime_bindings<'a, I>(objects: I) -> HashMap<String, String>
where
    I: IntoIterator<Item = (&'a str, &'a [Symbol])>,
{
    let mut out: HashMap<String, String> = HashMap::new();
    for (label, syms) in objects {
        for sym in syms {
            out.entry(sym.name.clone()).or_insert_with(|| label.to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_strong_fails_link() {
        let a = [Symbol::strong("omp_get_num_threads")];
        let b = [Symbol::strong("omp_get_num_threads")];
        let err = check_link([("libomp.so", &a[..]), ("libompstubs.so", &b[..])]).unwrap_err();
        assert_eq!(err.symbol, "omp_get_num_threads");
        assert_eq!(err.first, "libomp.so");
        assert_eq!(err.second, "libompstubs.so");
        assert!(err.to_string().contains("multiple definition"));
    }

    #[test]
    fn weak_never_conflicts() {
        let a = [Symbol::weak("sym")];
        let b = [Symbol::strong("sym")];
        let c = [Symbol::weak("sym")];
        assert!(check_link([("a", &a[..]), ("b", &b[..]), ("c", &c[..])]).is_ok());
    }

    #[test]
    fn runtime_first_load_wins() {
        let stubs = [Symbol::strong("omp_get_num_threads")];
        let real = [Symbol::strong("omp_get_num_threads")];
        let binds = runtime_bindings([("libompstubs.so", &stubs[..]), ("libomp.so", &real[..])]);
        assert_eq!(binds["omp_get_num_threads"], "libompstubs.so");
        let binds2 = runtime_bindings([("libomp.so", &real[..]), ("libompstubs.so", &stubs[..])]);
        assert_eq!(binds2["omp_get_num_threads"], "libomp.so");
    }

    #[test]
    fn disjoint_symbols_link_fine() {
        let a = [Symbol::strong("foo")];
        let b = [Symbol::strong("bar")];
        assert!(check_link([("a", &a[..]), ("b", &b[..])]).is_ok());
    }
}
